// Benchmarks regenerating every table and figure of the paper, plus
// ablations of the design choices DESIGN.md calls out. Each benchmark
// runs the corresponding experiment once per iteration and reports the
// headline quantities through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness. The sweeps use reduced
// measurement lengths; cmd/paperrepro runs the full-precision campaign.
package odbscale_test

import (
	"context"
	"testing"

	"odbscale"
	"odbscale/internal/experiment"
	"odbscale/internal/qstats"
	"odbscale/internal/system"
	"odbscale/internal/telemetry"
)

// benchOptions returns a campaign sized for benchmarking.
func benchOptions() experiment.Options {
	o := experiment.Defaults()
	o.MeasureTxns = 1000
	o.TuneTxns = 600
	o.WarmupTxns = 300
	o.AutoTune = false
	return o
}

var benchWs = []int{10, 25, 50, 100, 150, 200, 300, 500, 800}

// collect runs one sweep set per benchmark iteration.
func collect(b *testing.B, o experiment.Options, ws []int, ps []int) *experiment.SweepSet {
	b.Helper()
	set, err := o.CollectSweeps(ws, ps)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// BenchmarkTable1ClientTuning reproduces Table 1: the client counts
// needed to hold CPU utilization above 90% across the W x P grid.
func BenchmarkTable1ClientTuning(b *testing.B) {
	o := benchOptions()
	o.AutoTune = true
	ws := []int{10, 50, 100, 500, 800}
	for i := 0; i < b.N; i++ {
		set := collect(b, o, ws, []int{1, 2, 4})
		t := experiment.Table1(set)
		if i == 0 {
			b.Log("\n" + t.String())
			last := set.ByP[4][len(ws)-1]
			b.ReportMetric(float64(last.Clients), "clients@800W4P")
			b.ReportMetric(float64(set.ByP[1][0].Clients), "clients@10W1P")
		}
	}
}

// BenchmarkFigure2TPS reproduces Figure 2: TPS versus warehouses per
// processor count, including the I/O-bound 1200-warehouse point.
func BenchmarkFigure2TPS(b *testing.B) {
	o := benchOptions()
	ws := append(append([]int{}, benchWs...), 1200)
	for i := 0; i < b.N; i++ {
		set := collect(b, o, ws, []int{1, 2, 4})
		if i == 0 {
			b.Log("\n" + experiment.RenderSeries("Figure 2: TPS", experiment.Figure2(set), 0))
			s4 := set.ByP[4]
			b.ReportMetric(s4[0].TPS, "TPS@10W4P")
			b.ReportMetric(s4[len(s4)-2].TPS, "TPS@800W4P")
			b.ReportMetric(s4[len(s4)-1].CPUUtil, "util@1200W4P")
		}
	}
}

// BenchmarkFigure3UtilSplit reproduces Figure 3: the OS/user CPU split.
func BenchmarkFigure3UtilSplit(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		set := collect(b, o, benchWs, []int{4})
		if i == 0 {
			b.Log("\n" + experiment.RenderSeries("Figure 3: utilization split (4P)", experiment.Figure3(set), 3))
			ms := set.ByP[4]
			b.ReportMetric(ms[0].OSShare, "os-share@10W")
			b.ReportMetric(ms[len(ms)-1].OSShare, "os-share@800W")
		}
	}
}

// benchIPXFigure factors Figures 4-6 (IPX and its user/OS split).
func benchIPXFigure(b *testing.B, title string, fig func(*experiment.SweepSet) []odbscale.Series,
	metric func(system.Metrics) float64, unit string) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		set := collect(b, o, benchWs, []int{1, 2, 4})
		if i == 0 {
			b.Log("\n" + experiment.RenderSeries(title, fig(set), 0))
			ms := set.ByP[4]
			b.ReportMetric(metric(ms[0]), unit+"@10W")
			b.ReportMetric(metric(ms[len(ms)-1]), unit+"@800W")
		}
	}
}

// BenchmarkFigure4IPX reproduces Figure 4: instructions per transaction.
func BenchmarkFigure4IPX(b *testing.B) {
	benchIPXFigure(b, "Figure 4: IPX", experiment.Figure4,
		func(m system.Metrics) float64 { return m.IPX }, "IPX")
}

// BenchmarkFigure5UserIPX reproduces Figure 5: flat user-space IPX.
func BenchmarkFigure5UserIPX(b *testing.B) {
	benchIPXFigure(b, "Figure 5: user IPX", experiment.Figure5,
		func(m system.Metrics) float64 { return m.UserIPX }, "userIPX")
}

// BenchmarkFigure6OSIPX reproduces Figure 6: rising OS-space IPX.
func BenchmarkFigure6OSIPX(b *testing.B) {
	benchIPXFigure(b, "Figure 6: OS IPX", experiment.Figure6,
		func(m system.Metrics) float64 { return m.OSIPX }, "osIPX")
}

// BenchmarkFigure7DiskIO reproduces Figure 7: disk traffic per
// transaction (reads, data writes, log).
func BenchmarkFigure7DiskIO(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		set := collect(b, o, benchWs, []int{4})
		if i == 0 {
			b.Log("\n" + experiment.RenderSeries("Figure 7: disk KB/txn (4P)", experiment.Figure7(set), 2))
			ms := set.ByP[4]
			b.ReportMetric(ms[0].ReadKBPerTxn, "readKB@10W")
			b.ReportMetric(ms[len(ms)-1].ReadKBPerTxn, "readKB@800W")
			b.ReportMetric(ms[len(ms)-1].LogKBPerTxn, "logKB@800W")
		}
	}
}

// BenchmarkFigure8CtxSwitch reproduces Figure 8: the contention spike,
// dip and I/O-driven rise of context switches per transaction.
func BenchmarkFigure8CtxSwitch(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		set := collect(b, o, benchWs, []int{4})
		if i == 0 {
			b.Log("\n" + experiment.RenderSeries("Figure 8: ctx switches/txn", experiment.Figure8(set), 2))
			ms := set.ByP[4]
			b.ReportMetric(ms[0].CtxSwitchPerTxn, "cs@10W")
			b.ReportMetric(ms[2].CtxSwitchPerTxn, "cs@50W")
			b.ReportMetric(ms[len(ms)-1].CtxSwitchPerTxn, "cs@800W")
		}
	}
}

// benchCPIFigure factors Figures 9-11.
func benchCPIFigure(b *testing.B, title string, fig func(*experiment.SweepSet) []odbscale.Series,
	metric func(system.Metrics) float64, unit string) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		set := collect(b, o, benchWs, []int{1, 2, 4})
		if i == 0 {
			b.Log("\n" + experiment.RenderSeries(title, fig(set), 3))
			ms := set.ByP[4]
			b.ReportMetric(metric(ms[0]), unit+"@10W")
			b.ReportMetric(metric(ms[len(ms)-1]), unit+"@800W")
		}
	}
}

// BenchmarkFigure9CPI reproduces Figure 9: overall CPI.
func BenchmarkFigure9CPI(b *testing.B) {
	benchCPIFigure(b, "Figure 9: CPI", experiment.Figure9,
		func(m system.Metrics) float64 { return m.CPI }, "CPI")
}

// BenchmarkFigure10UserCPI reproduces Figure 10.
func BenchmarkFigure10UserCPI(b *testing.B) {
	benchCPIFigure(b, "Figure 10: user CPI", experiment.Figure10,
		func(m system.Metrics) float64 { return m.UserCPI }, "userCPI")
}

// BenchmarkFigure11OSCPI reproduces Figure 11.
func BenchmarkFigure11OSCPI(b *testing.B) {
	benchCPIFigure(b, "Figure 11: OS CPI", experiment.Figure11,
		func(m system.Metrics) float64 { return m.OSCPI }, "osCPI")
}

// BenchmarkFigure12Breakdown reproduces Figure 12: the CPI component
// breakdown (Tables 3 and 4 applied to measured event rates).
func BenchmarkFigure12Breakdown(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		set := collect(b, o, benchWs, []int{4})
		if i == 0 {
			t12 := experiment.Figure12(set)
			b.Log("\n" + t12.String())
			ms := set.ByP[4]
			last := ms[len(ms)-1].Breakdown
			b.ReportMetric(last.L3/last.Total(), "L3-share@800W")
			b.ReportMetric(last.Branch, "branchCPI@800W")
		}
	}
}

// benchMPIFigure factors Figures 13-15.
func benchMPIFigure(b *testing.B, title string, fig func(*experiment.SweepSet) []odbscale.Series,
	metric func(system.Metrics) float64, unit string) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		set := collect(b, o, benchWs, []int{1, 2, 4})
		if i == 0 {
			b.Log("\n" + experiment.RenderSeries(title, fig(set), 5))
			m4 := set.ByP[4]
			m1 := set.ByP[1]
			b.ReportMetric(metric(m4[0])*1000, unit+"e3@10W4P")
			b.ReportMetric(metric(m4[len(m4)-1])*1000, unit+"e3@800W4P")
			b.ReportMetric(metric(m4[len(m4)-1])/metric(m1[len(m1)-1]), unit+"-4P/1P")
		}
	}
}

// BenchmarkFigure13MPI reproduces Figure 13: L3 MPI (flat across P).
func BenchmarkFigure13MPI(b *testing.B) {
	benchMPIFigure(b, "Figure 13: MPI", experiment.Figure13,
		func(m system.Metrics) float64 { return m.MPI }, "MPI")
}

// BenchmarkFigure14UserMPI reproduces Figure 14.
func BenchmarkFigure14UserMPI(b *testing.B) {
	benchMPIFigure(b, "Figure 14: user MPI", experiment.Figure14,
		func(m system.Metrics) float64 { return m.UserMPI }, "userMPI")
}

// BenchmarkFigure15OSMPI reproduces Figure 15.
func BenchmarkFigure15OSMPI(b *testing.B) {
	benchMPIFigure(b, "Figure 15: OS MPI", experiment.Figure15,
		func(m system.Metrics) float64 { return m.OSMPI }, "osMPI")
}

// BenchmarkFigure16IOQ reproduces Figure 16: bus-transaction time in the
// IOQ, flat near 102 cycles at 1P and rising with utilization at 4P.
func BenchmarkFigure16IOQ(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		set := collect(b, o, benchWs, []int{1, 2, 4})
		if i == 0 {
			b.Log("\n" + experiment.RenderSeries("Figure 16: IOQ time (cycles)", experiment.Figure16(set), 1))
			m1 := set.ByP[1]
			m4 := set.ByP[4]
			b.ReportMetric(m1[len(m1)-1].BusTime, "bus@800W1P")
			b.ReportMetric(m4[len(m4)-1].BusTime, "bus@800W4P")
			b.ReportMetric(m4[len(m4)-1].BusUtil, "busutil@800W4P")
		}
	}
}

// BenchmarkFigure17CPIPivot reproduces Figure 17: the two-region fit of
// 4P CPI and its pivot point.
func BenchmarkFigure17CPIPivot(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		set := collect(b, o, benchWs, []int{4})
		char, err := set.Characterize(4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("cached %s / scaled %s", char.CPI.Fit.Cached, char.CPI.Fit.Scaled)
			b.ReportMetric(char.CPI.Pivot(), "pivot-W")
			b.ReportMetric(char.CPI.Fit.Cached.Slope/char.CPI.Fit.Scaled.Slope, "slope-ratio")
		}
	}
}

// BenchmarkFigure18MPIPivot reproduces Figure 18: the 4P MPI fit.
func BenchmarkFigure18MPIPivot(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		set := collect(b, o, benchWs, []int{4})
		char, err := set.Characterize(4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(char.MPI.Pivot(), "pivot-W")
		}
	}
}

// BenchmarkTable5Pivots reproduces Table 5: CPI and MPI pivots for all
// processor configurations.
func BenchmarkTable5Pivots(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		set := collect(b, o, benchWs, []int{1, 2, 4})
		t5, err := experiment.Table5(set)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t5.String())
			for _, p := range []int{1, 2, 4} {
				char, err := set.Characterize(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(char.CPI.Pivot(), map[int]string{1: "cpi-pivot-1P", 2: "cpi-pivot-2P", 4: "cpi-pivot-4P"}[p])
			}
		}
	}
}

// BenchmarkFigure19Itanium reproduces Figure 19: CPI scaling on the
// Itanium2 validation platform.
func BenchmarkFigure19Itanium(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		cpi, char, err := experiment.Figure19(o, benchWs, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiment.RenderSeries("Figure 19: Itanium2 CPI (4P)", []odbscale.Series{cpi}, 3))
			b.ReportMetric(char.CPI.Pivot(), "pivot-W")
			b.ReportMetric(cpi.Points[0].Y, "CPI@10W")
			b.ReportMetric(cpi.Points[len(cpi.Points)-1].Y, "CPI@800W")
		}
	}
}

// --- ablation benches: the design choices DESIGN.md section 5 lists ---

func runAblation(b *testing.B, mutate func(*system.Config)) system.Metrics {
	b.Helper()
	cfg := system.DefaultConfig(200, system.HeuristicClients(200, 4), 4)
	cfg.MeasureTxns = 1200
	cfg.WarmupTxns = 300
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := system.Run(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAblationCoherence toggles MESI snooping: the paper's claim is
// that coherence misses barely matter on this platform.
func BenchmarkAblationCoherence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := runAblation(b, nil)
		off := runAblation(b, func(c *system.Config) { c.Coherent = false })
		if i == 0 {
			b.ReportMetric(on.MPI/off.MPI, "MPI-ratio-coh/nocoh")
			b.ReportMetric(on.CoherenceShare, "coherence-share")
		}
	}
}

// BenchmarkAblationBusBandwidth scales the FSB: CPI falls with more
// bandwidth even though MPI does not (Figure 16's mechanism).
func BenchmarkAblationBusBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		slow := runAblation(b, nil)
		fast := runAblation(b, func(c *system.Config) { c.Machine.Bus.BandwidthScale = 2 })
		if i == 0 {
			b.ReportMetric(slow.BusTime-fast.BusTime, "bus-cycles-saved")
			b.ReportMetric(slow.CPI-fast.CPI, "CPI-saved")
			b.ReportMetric(fast.MPI/slow.MPI, "MPI-ratio")
		}
	}
}

// BenchmarkAblationL3Capacity grows the L3: the paper's recommended
// optimization direction.
func BenchmarkAblationL3Capacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := runAblation(b, nil)
		big := runAblation(b, func(c *system.Config) { c.Machine.Geometry.L3Size = 4 << 20 })
		if i == 0 {
			b.ReportMetric(small.MPI/big.MPI, "MPI-ratio-1MB/4MB")
			b.ReportMetric(big.TPS/small.TPS, "TPS-gain")
		}
	}
}

// BenchmarkAblationClients compares starved and saturated client counts:
// the masking methodology behind Table 1.
func BenchmarkAblationClients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		starved := runAblation(b, func(c *system.Config) { c.Clients = 8 })
		fed := runAblation(b, nil)
		if i == 0 {
			b.ReportMetric(starved.CPUUtil, "util-8-clients")
			b.ReportMetric(fed.CPUUtil, "util-tuned")
		}
	}
}

// BenchmarkAblationDisks shrinks the array: the I/O-bound region arrives
// earlier with less spindle bandwidth.
func BenchmarkAblationDisks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		many := runAblation(b, nil)
		few := runAblation(b, func(c *system.Config) { c.Machine.Disks.DataDisks = 6 })
		if i == 0 {
			b.ReportMetric(many.CPUUtil, "util-24-disks")
			b.ReportMetric(few.CPUUtil, "util-6-disks")
			b.ReportMetric(few.ReadLatencyMS, "read-ms-6-disks")
		}
	}
}

// BenchmarkAblationSwitchCost sweeps the context-switch path length,
// the OS overhead the paper ties to the scaled region's IPX slope.
func BenchmarkAblationSwitchCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cheap := runAblation(b, func(c *system.Config) { c.Tuning.CtxSwitchInstr = 3_000 })
		costly := runAblation(b, func(c *system.Config) { c.Tuning.CtxSwitchInstr = 30_000 })
		if i == 0 {
			b.ReportMetric(costly.OSIPX-cheap.OSIPX, "osIPX-delta")
			b.ReportMetric(cheap.TPS/costly.TPS, "TPS-ratio")
		}
	}
}

// BenchmarkAblationSMT enables the Hyper-Threading configuration the
// paper left unexplored: two hardware threads per core sharing the cache
// hierarchy and splitting core bandwidth when co-resident.
func BenchmarkAblationSMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off := runAblation(b, nil)
		on := runAblation(b, func(c *system.Config) { c.Machine.SMT = 2 })
		if i == 0 {
			b.ReportMetric(on.TPS/off.TPS, "TPS-gain-HT")
			b.ReportMetric(on.MPI/off.MPI, "MPI-ratio-HT")
		}
	}
}

// BenchmarkSingleConfiguration measures the simulator's own speed on one
// mid-sized configuration — the cost of one data point.
func BenchmarkSingleConfiguration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := runAblation(b, nil)
		if i == 0 {
			b.ReportMetric(m.TPS, "TPS")
		}
	}
}

// BenchmarkFlightRecorder measures the flight recorder's cost on the
// single-configuration workload: "off" is the plain simulator, "on" adds
// the 100 ms timeline sampler and per-transaction latency spans. The
// observability contract is that "on" stays within 2% of "off".
func BenchmarkFlightRecorder(b *testing.B) {
	cfg := system.DefaultConfig(200, system.HeuristicClients(200, 4), 4)
	cfg.MeasureTxns = 1200
	cfg.WarmupTxns = 300
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := system.Run(context.Background(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := telemetry.NewRecorder(telemetry.Config{})
			if _, err := system.Run(context.Background(), cfg, system.WithRecorder(rec)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFullRunAllocations is the committed bench trajectory's target
// workload (full-run-w200-p4 in BENCH_head.json) run under -benchmem:
// the W=200, P=4 full run whose wall clock and allocation count the CI
// bench job compares against BENCH_baseline.json.
func BenchmarkFullRunAllocations(b *testing.B) {
	cfg := system.DefaultConfig(200, system.HeuristicClients(200, 4), 4)
	cfg.MeasureTxns = 1200
	cfg.WarmupTxns = 300
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := system.Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnoopLanes measures the coherence domain's deterministic
// parallel snoop lanes against the sequential loop on the same
// configuration. At P=4 the fork/join barrier costs more than it saves
// — which is exactly why the MinParallelCPUs gate keeps small domains
// sequential; the benchmark documents that crossover. Metrics are
// bit-identical either way (see TestParallelSnoopBitIdentical).
func BenchmarkSnoopLanes(b *testing.B) {
	base := system.DefaultConfig(200, system.HeuristicClients(200, 4), 4)
	base.MeasureTxns = 1200
	base.WarmupTxns = 300
	for _, mode := range []struct {
		name  string
		lanes int
	}{{"sequential", -1}, {"parallel-4", 4}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := base
			cfg.Tuning.SnoopLanes = mode.lanes
			for i := 0; i < b.N; i++ {
				if _, err := system.Run(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunObservers measures the full observer stack — flight
// recorder plus cycle profiler through the one Run entry point —
// against the bare run, pinning the claim that observers are cheap
// attachments rather than separate code paths.
func BenchmarkRunObservers(b *testing.B) {
	cfg := system.DefaultConfig(200, system.HeuristicClients(200, 4), 4)
	cfg.MeasureTxns = 1200
	cfg.WarmupTxns = 300
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := system.Run(context.Background(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recorder+profiler", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := telemetry.NewRecorder(telemetry.Config{})
			col := odbscale.NewProfileCollector()
			if _, err := system.Run(context.Background(), cfg,
				system.WithRecorder(rec), system.WithProfiler(col)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueueStats measures the queueing observatory's cost on the
// bench trajectory workload: "off" is the plain simulator, "on" attaches
// WithQueueStats. The tentpole contract is that "on" stays within 2% of
// "off" — station accumulation is inline arithmetic at event sites the
// simulator already executes.
func BenchmarkQueueStats(b *testing.B) {
	cfg := system.DefaultConfig(200, system.HeuristicClients(200, 4), 4)
	cfg.MeasureTxns = 1200
	cfg.WarmupTxns = 300
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := system.Run(context.Background(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			col := qstats.NewCollector()
			if _, err := system.Run(context.Background(), cfg, system.WithQueueStats(col)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStationAccumulation pins the hot-path allocation contract of
// the accumulators themselves: Arrive/Complete/Visit and the derived
// Build must not allocate per call — they run inside the per-chunk
// event path of every run that attaches the observatory.
func BenchmarkStationAccumulation(b *testing.B) {
	var st qstats.Station
	in := new(qstats.Input)
	in.ElapsedCycles = 1e9
	in.CyclesPerMS = 1e6
	in.Commits = 1000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Arrive()
		st.Complete(100, 400)
		st.Visit(10, 50)
		in.Counts[qstats.Disk] = st.Counts()
	}
	if testing.AllocsPerRun(100, func() {
		st.Arrive()
		st.Complete(100, 400)
		st.Visit(10, 50)
	}) != 0 {
		b.Fatal("station accumulation allocates on the hot path")
	}
}
