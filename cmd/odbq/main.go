// Command odbq drives the queueing observatory: run a simulation with
// per-resource service-center accounting on, print the station table
// with the operational-law audit (Little's law N = X·R and the
// utilization law U = X·S, checked per station), rank the stations by
// the queueing delay they impose per transaction, diff two reports to
// expose demand shifts across a knob change, and sweep the warehouse
// axis to table where the primary bottleneck migrates across the
// cached→scaled pivot.
//
// Usage:
//
//	odbq report [-w warehouses] [-c clients] [-p processors] [-seed n]
//	            [-machine xeon|itanium2] [-engine name] [-txns n]
//	            [-warmup n] [-o file] [-check]
//	odbq rank   <report.json>
//	odbq diff   <a.json> <b.json>
//	odbq sweep  [-w list] [-p list] [-engines list] [-txns n] [-seed n]
//	            [-machine xeon|itanium2] [-json dir]
//
// report runs the simulator with WithQueueStats and prints the
// observatory table (-o also writes the report JSON; -check exits 1 if
// any operational-law residual exceeds 1e-6 or the ranking is empty —
// the CI smoke contract). rank prints just the wait-demand ranking of a
// saved report. diff compares two saved reports station by station.
// sweep measures every warehouse × processor × engine combination and
// prints one bottleneck-shift table per (engine, P) lane.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"odbscale/internal/qstats"
	"odbscale/internal/system"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("odbq: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "report":
		report(os.Args[2:])
	case "rank":
		rank(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	case "sweep":
		sweep(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: odbq report|rank|diff|sweep [args]")
	os.Exit(2)
}

// machineFor resolves the -machine flag.
func machineFor(name string) system.MachineConfig {
	switch name {
	case "xeon":
		return system.DefaultConfig(1, 1, 1).Machine
	case "itanium2":
		return system.Itanium2Quad()
	}
	log.Fatalf("unknown machine %q", name)
	panic("unreachable")
}

// capture runs one observed simulation and returns its station report.
func capture(w, c, p int, seed int64, machine, engine string, txns, warmup int) *qstats.Report {
	clients := c
	if clients <= 0 {
		clients = system.HeuristicClients(w, p)
	}
	cfg := system.DefaultConfig(w, clients, p)
	cfg.Seed = seed
	cfg.Engine = engine
	cfg.MeasureTxns = txns
	if warmup >= 0 {
		cfg.WarmupTxns = warmup
	}
	cfg.Machine = machineFor(machine)
	col := qstats.NewCollector()
	if _, err := system.Run(context.Background(), cfg, system.WithQueueStats(col)); err != nil {
		log.Fatal(err)
	}
	r := col.Report()
	if r == nil {
		log.Fatal("run published no report")
	}
	return r
}

// report runs one observed simulation and prints the observatory table.
func report(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	w := fs.Int("w", 100, "warehouses")
	c := fs.Int("c", 0, "concurrent clients (0 = heuristic)")
	p := fs.Int("p", 4, "processors")
	seed := fs.Int64("seed", 1, "random seed")
	machine := fs.String("machine", "xeon", "platform: xeon or itanium2")
	engine := fs.String("engine", "", "storage engine (empty = default B-tree)")
	txns := fs.Int("txns", 2400, "measured transactions")
	warmup := fs.Int("warmup", -1, "warm-up transactions (-1 = default)")
	out := fs.String("o", "", "also write the report JSON to this file (- = stdout)")
	check := fs.Bool("check", false, "exit 1 on an operational-law violation or empty ranking")
	fs.Parse(args)

	r := capture(*w, *c, *p, *seed, *machine, *engine, *txns, *warmup)
	if *out != "" {
		dst := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			dst = f
		}
		if err := r.WriteJSON(dst); err != nil {
			log.Fatal(err)
		}
	}
	if *out != "-" {
		if err := r.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *check {
		if viol := r.Check(1e-6); len(viol) > 0 {
			for _, v := range viol {
				log.Printf("law violation: %s", v)
			}
			os.Exit(1)
		}
		if len(r.Ranking) == 0 {
			log.Fatal("empty bottleneck ranking")
		}
	}
}

// load reads one report from a path ("-" = stdin).
func load(path string) *qstats.Report {
	r := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	rep, err := qstats.ReadReport(r)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return rep
}

// rank prints the wait-demand ranking of a saved report.
func rank(args []string) {
	if len(args) != 1 {
		log.Fatal("expected exactly one report file (or - for stdin)")
	}
	r := load(args[0])
	for i, name := range r.Ranking {
		var d float64
		for j := range r.Stations {
			if r.Stations[j].Name == name {
				d = r.Stations[j].WaitDemandMS
				break
			}
		}
		fmt.Printf("%2d. %-10s Dwait=%.5fms\n", i+1, name, d)
	}
	if r.Bottleneck != "" {
		fmt.Printf("bottleneck: %s\n", r.Bottleneck)
	} else {
		fmt.Println("bottleneck: none")
	}
}

// diff compares two saved reports station by station. It always exits 0
// on a successful comparison — demand shifts are findings, not failures.
func diff(args []string) {
	if len(args) != 2 {
		log.Fatal("expected two report files")
	}
	if err := qstats.WriteDiff(os.Stdout, load(args[0]), load(args[1])); err != nil {
		log.Fatal(err)
	}
}

// parseInts parses a comma-separated integer list.
func parseInts(s, flagName string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad -%s entry %q: %v", flagName, f, err)
		}
		out = append(out, v)
	}
	return out
}

// sweep measures every warehouse × processor × engine combination and
// prints one bottleneck-shift table per (engine, P) lane.
func sweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	wList := fs.String("w", "10,50,100,200,300", "comma-separated warehouse counts")
	pList := fs.String("p", "1,4", "comma-separated processor counts")
	engines := fs.String("engines", "btree,lsm", "comma-separated storage engines")
	seed := fs.Int64("seed", 1, "random seed")
	machine := fs.String("machine", "xeon", "platform: xeon or itanium2")
	txns := fs.Int("txns", 2400, "measured transactions per point")
	warmup := fs.Int("warmup", -1, "warm-up transactions (-1 = default)")
	jsonDir := fs.String("json", "", "also write each point's report JSON into this directory")
	fs.Parse(args)

	ws := parseInts(*wList, "w")
	ps := parseInts(*pList, "p")
	for _, engine := range strings.Split(*engines, ",") {
		engine = strings.TrimSpace(engine)
		// The registry's default B-tree is the empty engine name.
		runEngine := engine
		if engine == "btree" {
			runEngine = ""
		}
		for _, p := range ps {
			reports := make([]*qstats.Report, 0, len(ws))
			for _, w := range ws {
				r := capture(w, 0, p, *seed, *machine, runEngine, *txns, *warmup)
				if *jsonDir != "" {
					path := filepath.Join(*jsonDir, fmt.Sprintf("%s-w%d-p%d.json", engine, w, p))
					f, err := os.Create(path)
					if err != nil {
						log.Fatal(err)
					}
					if err := r.WriteJSON(f); err != nil {
						f.Close()
						log.Fatal(err)
					}
					f.Close()
				}
				reports = append(reports, r)
			}
			if err := qstats.WriteShiftTable(os.Stdout, reports); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	}
}
