// Command odbbench measures the simulator's own performance and maintains
// the repository's committed bench trajectory (BENCH_baseline.json /
// BENCH_head.json). It runs a fixed suite of full-run and micro
// benchmarks through testing.Benchmark, writes the results as JSON, and
// can compare two result files benchstat-style, failing on regression.
//
// Usage:
//
//	odbbench [-count 5] [-out BENCH_head.json] [-note "..."] [-run regexp]
//	         [-engine btree|lsm]
//	odbbench -compare BENCH_baseline.json BENCH_head.json [-maxregress 0.10]
//
// The compare mode exits 1 when any benchmark's wall time regressed by
// more than maxregress (default 10%), which is how CI enforces the perf
// trajectory: every PR regenerates BENCH_head.json and compares it
// against the committed baseline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	"odbscale/internal/engine"
	"odbscale/internal/odb"
	"odbscale/internal/sim"
	"odbscale/internal/system"
	"odbscale/internal/xrand"
)

// Result is one benchmark's measurement: the minimum over count runs
// (minimum wall time is the standard noise-robust statistic for
// throughput benchmarks), with allocation counts from the same run.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Runs        int     `json:"runs"`
}

// File is the on-disk format of BENCH_*.json.
type File struct {
	Generated string   `json:"generated"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Note      string   `json:"note,omitempty"`
	Results   []Result `json:"results"`
}

// engineName selects the storage engine of the full-run benchmarks;
// the -engine flag sets it before the suite runs.
var engineName = engine.DefaultName

// fullRunConfig builds the standard full-run benchmark configuration.
func fullRunConfig(w, p, txns int) system.Config {
	cfg := system.DefaultConfig(w, system.HeuristicClients(w, p), p)
	cfg.MeasureTxns = txns
	cfg.WarmupTxns = 300
	cfg.Engine = engineName
	return cfg
}

// suite is the fixed benchmark set. full-run-w200-p4 is the acceptance
// benchmark the perf trajectory is judged on; the W=10 and W=1200 points
// bracket it with the cached and I/O-bound regimes.
var suite = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"full-run-w10-p1", func(b *testing.B) { benchFullRun(b, fullRunConfig(10, 1, 1200)) }},
	{"full-run-w200-p4", func(b *testing.B) { benchFullRun(b, fullRunConfig(200, 4, 1200)) }},
	{"full-run-w1200-p4", func(b *testing.B) { benchFullRun(b, fullRunConfig(1200, 4, 300)) }},
	{"event-dispatch", benchEventDispatch},
	{"txn-gen", benchTxnGen},
}

func benchFullRun(b *testing.B, cfg system.Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := system.Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEventDispatch measures the discrete-event core alone: a
// self-rescheduling event chain with interleaved cancels, the schedule /
// dispatch / cancel pattern the machine model produces.
func benchEventDispatch(b *testing.B) {
	b.ReportAllocs()
	const events = 1_000_000
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < events {
				eng.After(3, tick)
				if n%4 == 0 {
					ev := eng.After(10, func() {})
					ev.Cancel()
				}
			}
		}
		eng.After(1, tick)
		for eng.Step() {
		}
		if n != events {
			b.Fatalf("dispatched %d events", n)
		}
	}
}

// benchTxnGen measures transaction-program generation, the per-commit
// allocation path of the ODB engine model.
func benchTxnGen(b *testing.B) {
	b.ReportAllocs()
	layout := odb.NewLayout(100)
	gen := odb.NewGenerator(layout, xrand.New(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 10_000; j++ {
			txn := gen.Next(j % 32)
			if len(txn.Ops) == 0 {
				b.Fatal("empty transaction")
			}
			gen.Recycle(txn)
		}
	}
}

func measure(count int, filter *regexp.Regexp) []Result {
	var out []Result
	for _, bm := range suite {
		if filter != nil && !filter.MatchString(bm.name) {
			continue
		}
		best := Result{Name: bm.name, Runs: count}
		for i := 0; i < count; i++ {
			r := testing.Benchmark(bm.fn)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if i == 0 || ns < best.NsPerOp {
				best.NsPerOp = ns
				best.AllocsPerOp = r.AllocsPerOp()
				best.BytesPerOp = r.AllocedBytesPerOp()
			}
		}
		fmt.Fprintf(os.Stderr, "%-20s %14.0f ns/op %12d allocs/op %14d B/op\n",
			best.Name, best.NsPerOp, best.AllocsPerOp, best.BytesPerOp)
		out = append(out, best)
	}
	return out
}

func writeFile(path, note string, results []Result) error {
	f := File{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Note:      note,
		Results:   results,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	err = json.Unmarshal(data, &f)
	return f, err
}

// compare reports head against base and returns false when any shared
// benchmark's wall time regressed beyond maxRegress.
func compare(base, head File, maxRegress float64) bool {
	byName := map[string]Result{}
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	ok := true
	fmt.Printf("%-20s %14s %14s %9s %9s\n", "benchmark", "base ns/op", "head ns/op", "speedup", "allocs")
	for _, h := range head.Results {
		b, found := byName[h.Name]
		if !found {
			fmt.Printf("%-20s %14s %14.0f %9s %9d (new)\n", h.Name, "-", h.NsPerOp, "-", h.AllocsPerOp)
			continue
		}
		speed := b.NsPerOp / h.NsPerOp
		allocRatio := "-"
		if b.AllocsPerOp > 0 {
			allocRatio = fmt.Sprintf("%.2fx", float64(b.AllocsPerOp)/float64(h.AllocsPerOp+1))
		}
		flag := ""
		if h.NsPerOp > b.NsPerOp*(1+maxRegress) {
			flag = "  REGRESSION"
			ok = false
		}
		fmt.Printf("%-20s %14.0f %14.0f %8.2fx %9s%s\n", h.Name, b.NsPerOp, h.NsPerOp, speed, allocRatio, flag)
	}
	return ok
}

func main() {
	count := flag.Int("count", 3, "runs per benchmark; the minimum is kept")
	out := flag.String("out", "", "write results to this JSON file")
	note := flag.String("note", "", "free-form provenance note stored in the file")
	runFilter := flag.String("run", "", "regexp selecting benchmarks to run")
	engineFlag := flag.String("engine", engine.DefaultName,
		fmt.Sprintf("storage engine for the full-run benchmarks: %s", strings.Join(engine.Names(), " or ")))
	cmp := flag.String("compare", "", "baseline JSON; compare against the head file argument instead of measuring")
	maxRegress := flag.Float64("maxregress", 0.10, "fail when ns/op regresses beyond this fraction")
	flag.Parse()

	if _, ok := engine.Lookup(*engineFlag); !ok {
		fmt.Fprintf(os.Stderr, "odbbench: unknown engine %q (have %s)\n", *engineFlag, strings.Join(engine.Names(), ", "))
		os.Exit(2)
	}
	engineName = *engineFlag

	if *cmp != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: odbbench -compare base.json head.json")
			os.Exit(2)
		}
		base, err := readFile(*cmp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "odbbench:", err)
			os.Exit(2)
		}
		head, err := readFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "odbbench:", err)
			os.Exit(2)
		}
		if !compare(base, head, *maxRegress) {
			fmt.Fprintln(os.Stderr, "odbbench: performance regression beyond threshold")
			os.Exit(1)
		}
		return
	}

	var filter *regexp.Regexp
	if *runFilter != "" {
		var err error
		if filter, err = regexp.Compile(*runFilter); err != nil {
			fmt.Fprintln(os.Stderr, "odbbench:", err)
			os.Exit(2)
		}
	}
	results := measure(*count, filter)
	if *out != "" {
		if err := writeFile(*out, *note, results); err != nil {
			fmt.Fprintln(os.Stderr, "odbbench:", err)
			os.Exit(2)
		}
	}
}
