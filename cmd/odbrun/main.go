// Command odbrun executes one OLTP configuration on the simulated
// platform and prints its metrics, iron-law decomposition and CPI
// breakdown.
//
// Usage:
//
//	odbrun [-w warehouses] [-c clients] [-p processors] [-seed n]
//	       [-machine xeon|itanium2] [-txns n] [-nocoherence]
package main

import (
	"flag"
	"fmt"
	"log"

	"odbscale/internal/system"
)

func main() {
	w := flag.Int("w", 100, "warehouses")
	c := flag.Int("c", 16, "concurrent clients")
	p := flag.Int("p", 4, "processors")
	seed := flag.Int64("seed", 1, "random seed")
	machine := flag.String("machine", "xeon", "platform: xeon or itanium2")
	txns := flag.Int("txns", 2400, "measured transactions")
	nocoh := flag.Bool("nocoherence", false, "disable MESI coherence")
	flag.Parse()

	cfg := system.DefaultConfig(*w, *c, *p)
	cfg.Seed = *seed
	cfg.MeasureTxns = *txns
	cfg.Coherent = !*nocoh
	switch *machine {
	case "xeon":
	case "itanium2":
		cfg.Machine = system.Itanium2Quad()
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	m, err := system.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m)
	fmt.Printf("  user: IPX=%.2fM CPI=%.2f MPI=%.4f\n", m.UserIPX/1e6, m.UserCPI, m.UserMPI)
	fmt.Printf("  os:   IPX=%.2fM CPI=%.2f MPI=%.4f share=%.2f\n", m.OSIPX/1e6, m.OSCPI, m.OSMPI, m.OSShare)
	fmt.Printf("  io:   read=%.1fKB write=%.1fKB log=%.1fKB hit=%.3f diskUtil=%.2f lat=%.1fms\n",
		m.ReadKBPerTxn, m.WriteKBPerTxn, m.LogKBPerTxn, m.BufferHitRatio, m.DiskUtil, m.ReadLatencyMS)
	fmt.Printf("  bus:  time=%.0f util=%.2f coherShare=%.4f\n", m.BusTime, m.BusUtil, m.CoherenceShare)
	fmt.Printf("  cpi breakdown: %s\n", m.Breakdown)
	fmt.Printf("  iron law check: P*F/(IPX*CPI)*util = %.0f TPS (measured %.0f)\n",
		float64(m.Processors)*cfg.Machine.FreqHz/(m.IPX*m.CPI)*m.CPUUtil, m.TPS)
}
