// Command odbrun executes one OLTP configuration on the simulated
// platform and prints its metrics, iron-law decomposition and CPI
// breakdown.
//
// The flight recorder rides along on demand: -listen serves /metrics,
// /timeline and /progress over HTTP while the run simulates (and until
// Ctrl-C afterwards, so short runs stay inspectable), -timeline dumps
// the sampled timeline as JSON, and -json replaces the text report with
// a machine-readable document bundling the run manifest (config, seed,
// provenance, phase durations), the final metrics and per-transaction
// latency digests.
//
// The span tracer rides along the same way: -spans captures a
// deterministic sample of per-transaction span trees (head sampling
// plus the slowest per type) and writes the trace dump as JSON for
// cmd/odbspan; with -listen it is also served live on /traces.
//
// The queueing observatory rides along too: -qstats collects
// per-resource service-center metrics (arrivals, utilization, wait
// demand, operational-law audit) and writes the report as JSON for
// cmd/odbq ("-" prints the text report instead); with -listen the
// ranking is also served live on /bottlenecks. A -timeline path ending
// in .csv switches the dump from JSON to the flat CSV table.
//
// Usage:
//
//	odbrun [-w warehouses] [-c clients] [-p processors] [-seed n]
//	       [-machine xeon|itanium2] [-engine btree|lsm] [-txns n]
//	       [-nocoherence] [-json] [-listen addr] [-timeline file[.csv]]
//	       [-sample ms] [-spans file] [-spanhead n] [-qstats file]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"odbscale/cmd/internal/live"
	"odbscale/internal/engine"
	"odbscale/internal/qstats"
	"odbscale/internal/system"
	"odbscale/internal/telemetry"
	"odbscale/internal/txtrace"
)

// spannedSource serves the flight recorder plus the span tracer — the
// shape odbrun's live server takes when both -listen and -spans are on.
// The other observer combinations get their own concrete types below:
// a nil embedded field would still advertise its endpoint to the mux's
// type assertions, so each combination must only embed what it has.
type spannedSource struct {
	*telemetry.Recorder
	*txtrace.Tracer
}

// queuedSource adds the queueing observatory's /bottlenecks.
type queuedSource struct {
	*telemetry.Recorder
	*qstats.Collector
}

// observedSource is the full rig: spans and station metrics together.
type observedSource struct {
	*telemetry.Recorder
	*txtrace.Tracer
	*qstats.Collector
}

// report is the -json output document.
type report struct {
	Manifest *telemetry.Manifest                 `json:"manifest"`
	Metrics  system.Metrics                      `json:"metrics"`
	Latency  map[string]telemetry.LatencySummary `json:"latency,omitempty"`
	Timeline struct {
		Samples int    `json:"samples"`
		Dropped uint64 `json:"dropped"`
	} `json:"timeline"`
}

func main() {
	w := flag.Int("w", 100, "warehouses")
	c := flag.Int("c", 16, "concurrent clients")
	p := flag.Int("p", 4, "processors")
	seed := flag.Int64("seed", 1, "random seed")
	machine := flag.String("machine", "xeon", "platform: xeon or itanium2")
	engineName := flag.String("engine", engine.DefaultName,
		fmt.Sprintf("storage engine: %s", strings.Join(engine.Names(), " or ")))
	lsmMem := flag.Int("lsmmem", engine.DefaultLSMTuning().MemtableMB,
		"LSM memtable size in MB (ignored by btree)")
	txns := flag.Int("txns", 2400, "measured transactions")
	nocoh := flag.Bool("nocoherence", false, "disable MESI coherence")
	jsonOut := flag.Bool("json", false, "emit the run manifest, metrics and latency digests as JSON")
	listen := flag.String("listen", "", "serve the flight recorder on this address (e.g. :8090)")
	timelineOut := flag.String("timeline", "", "write the sampled timeline as JSON to this file")
	sampleMS := flag.Float64("sample", 100, "timeline sample interval in simulated milliseconds")
	spansOut := flag.String("spans", "", "trace transaction spans and write the dump as JSON to this file")
	spanHead := flag.Int("spanhead", txtrace.DefaultHeadEvery, "head-sample every Nth measured transaction (-1 disables head sampling)")
	qstatsOut := flag.String("qstats", "", "collect service-center metrics and write the report as JSON to this file (\"-\" prints the text report)")
	flag.Parse()

	cfg := system.DefaultConfig(*w, *c, *p)
	cfg.Seed = *seed
	cfg.MeasureTxns = *txns
	cfg.Coherent = !*nocoh
	if _, ok := engine.Lookup(*engineName); !ok {
		log.Fatalf("unknown engine %q (have %s)", *engineName, strings.Join(engine.Names(), ", "))
	}
	cfg.Engine = *engineName
	if *lsmMem < 1 {
		log.Fatalf("-lsmmem %d: memtable must be at least 1 MB", *lsmMem)
	}
	cfg.Tuning.LSM.MemtableMB = *lsmMem
	switch *machine {
	case "xeon":
	case "itanium2":
		cfg.Machine = system.Itanium2Quad()
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	rec := telemetry.NewRecorder(telemetry.Config{SampleIntervalMS: *sampleMS})
	var spans *txtrace.Tracer
	if *spansOut != "" {
		spans = txtrace.NewTracer(txtrace.Config{HeadEvery: *spanHead})
	}
	var qc *qstats.Collector
	if *qstatsOut != "" {
		qc = qstats.NewCollector()
	}
	var srv *live.Server
	if *listen != "" {
		var src live.Source = rec
		endpoints := "/metrics /timeline /progress /healthz"
		switch {
		case spans != nil && qc != nil:
			src = observedSource{rec, spans, qc}
			endpoints += " /traces /bottlenecks"
		case spans != nil:
			src = spannedSource{rec, spans}
			endpoints += " /traces"
		case qc != nil:
			src = queuedSource{rec, qc}
			endpoints += " /bottlenecks"
		}
		var err error
		srv, err = live.Serve(*listen, src)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("flight recorder on http://%s (%s)", srv.Addr(), endpoints)
	}

	opts := []system.Option{system.WithRecorder(rec)}
	if spans != nil {
		opts = append(opts, system.WithSpans(spans))
	}
	if qc != nil {
		opts = append(opts, system.WithQueueStats(qc))
	}
	started := time.Now()
	m, err := system.Run(context.Background(), cfg, opts...)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(started)

	if spans != nil {
		f, err := os.Create(*spansOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := spans.WriteTraces(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if *timelineOut != "" {
		f, err := os.Create(*timelineOut)
		if err != nil {
			log.Fatal(err)
		}
		// The extension picks the encoding: .csv gets the flat table
		// (one row per sample, stations flattened into columns), any
		// other path keeps the JSON sample series.
		dump := rec.WriteTimeline
		if strings.HasSuffix(*timelineOut, ".csv") {
			dump = rec.WriteTimelineCSV
		}
		if err := dump(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if qc != nil {
		rep := qc.Report()
		if rep == nil {
			log.Fatal("qstats: run finished without publishing a station report")
		}
		if *qstatsOut == "-" {
			if err := rep.WriteText(os.Stdout); err != nil {
				log.Fatal(err)
			}
		} else {
			f, err := os.Create(*qstatsOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := rep.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}

	if *jsonOut {
		man := telemetry.NewManifest("odbrun", *seed)
		man.Engine = m.Engine
		man.CreatedAt = started.UTC().Format(time.RFC3339)
		man.WallSeconds = wall.Seconds()
		man.Phases = rec.Phases()
		if err := man.SetConfig(cfg); err != nil {
			log.Fatal(err)
		}
		rep := report{Manifest: man, Metrics: m, Latency: telemetry.SummarizeAll(rec.Histograms(), true)}
		rep.Timeline.Samples = len(rec.Timeline())
		rep.Timeline.Dropped = rec.TimelineDropped()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println(m)
		fmt.Printf("  user: IPX=%.2fM CPI=%.2f MPI=%.4f\n", m.UserIPX/1e6, m.UserCPI, m.UserMPI)
		fmt.Printf("  os:   IPX=%.2fM CPI=%.2f MPI=%.4f share=%.2f\n", m.OSIPX/1e6, m.OSCPI, m.OSMPI, m.OSShare)
		fmt.Printf("  io:   read=%.1fKB write=%.1fKB log=%.1fKB hit=%.3f diskUtil=%.2f lat=%.1fms\n",
			m.ReadKBPerTxn, m.WriteKBPerTxn, m.LogKBPerTxn, m.BufferHitRatio, m.DiskUtil, m.ReadLatencyMS)
		fmt.Printf("  bus:  time=%.0f util=%.2f coherShare=%.4f\n", m.BusTime, m.BusUtil, m.CoherenceShare)
		fmt.Printf("  engine: %s wamp=%.2f ramp=%.2f samp=%.3f stalls=%.3f/txn\n",
			m.Engine, m.WriteAmp, m.ReadAmp, m.SpaceAmp, m.WriteStallsPerTxn)
		fmt.Printf("  cpi breakdown: %s\n", m.Breakdown)
		fmt.Printf("  iron law check: P*F/(IPX*CPI)*util = %.0f TPS (measured %.0f)\n",
			float64(m.Processors)*cfg.Machine.FreqHz/(m.IPX*m.CPI)*m.CPUUtil, m.TPS)
		for _, name := range rec.HistogramNames() {
			h := rec.HistogramSnapshot(name)
			p50, ok := h.QuantileOK(0.50)
			if !ok {
				fmt.Printf("  latency %-12s n=0     (no measured commits)\n", name)
				continue
			}
			p95, _ := h.QuantileOK(0.95)
			p99, _ := h.QuantileOK(0.99)
			fmt.Printf("  latency %-12s n=%-5d mean=%.1fms p50=%.1fms p95=%.1fms p99=%.1fms\n",
				name, h.Count(), h.Mean()/1e3, p50/1e3, p95/1e3, p99/1e3)
		}
	}

	if srv != nil {
		log.Printf("run done; flight recorder still on http://%s (Ctrl-C to exit)", srv.Addr())
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		<-ctx.Done()
		stop()
		srv.Close()
	}
}
