// Command paperrepro regenerates every table and figure of the paper's
// evaluation: Table 1 (tuned clients), Figures 2-16 (scaling behaviour),
// Figures 17/18 and Table 5 (piecewise fits and pivot points), and
// Figure 19 (the Itanium2 validation platform). Output is paper-style
// aligned text; -quick trades precision for speed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"odbscale/internal/campaign"
	"odbscale/internal/core"
	"odbscale/internal/experiment"
	"odbscale/internal/perfmon"
	"odbscale/internal/stats"
	"odbscale/internal/system"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sweeps and shorter runs")
	seed := flag.Int64("seed", 1, "random seed")
	noTune := flag.Bool("notune", false, "use the client heuristic instead of the 90% tuner")
	checkpoint := flag.String("checkpoint", "", "campaign checkpoint file: completed points persist here after every run")
	resume := flag.Bool("resume", false, "resume the main campaign from -checkpoint, re-executing only incomplete points")
	events := flag.String("events", "", "append a JSON campaign event log to this file")
	quiet := flag.Bool("quiet", false, "suppress the stderr progress line")
	flag.Parse()

	o := experiment.Defaults()
	o.Seed = *seed
	o.AutoTune = !*noTune
	ws := experiment.StandardWarehouses
	ps := experiment.StandardProcessors
	if *quick {
		o.MeasureTxns = 1200
		o.TuneTxns = 800
		o.WarmupTxns = 400
		ws = []int{10, 25, 50, 100, 150, 200, 300, 500, 800}
	}

	fmt.Println("== ODB scaling reproduction (Hankins et al., MICRO 2003) ==")
	fmt.Printf("platform: %s, sweep W=%v, P=%v, tuner=%v\n\n", o.Machine.Name, ws, ps, o.AutoTune)

	// Main campaign, with the I/O-bound 1200-warehouse point appended for
	// Figure 2 only. It runs through the campaign runner: every point and
	// tuner probe on one worker pool, with checkpoint/resume and a live
	// progress line; Ctrl-C stops cleanly with the checkpoint intact.
	withIOBound := append(append([]int{}, ws...), 1200)
	spec := o.CampaignSpec(withIOBound, ps)
	spec.CheckpointPath = *checkpoint
	spec.Resume = *resume
	if *resume && *checkpoint == "" {
		log.Fatal("-resume requires -checkpoint")
	}
	var observers []campaign.Observer
	if !*quiet {
		observers = append(observers, campaign.NewProgress(os.Stderr, len(withIOBound)*len(ps)))
	}
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		observers = append(observers, campaign.NewEventLog(f))
	}
	spec.Observer = campaign.Observers(observers...)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	res, err := campaign.Run(ctx, spec)
	if err != nil {
		if *checkpoint != "" {
			log.Printf("campaign stopped; completed points are in %s (rerun with -resume)", *checkpoint)
		}
		log.Fatal(err)
	}
	set := experiment.SweepSetFrom(res)

	fmt.Println(experiment.Table1(set))
	f2 := experiment.Figure2(set)
	fmt.Println(experiment.RenderSeries("Figure 2: ODB TPS vs warehouses (1200W is I/O bound)", f2, 0))
	fmt.Println(stats.Chart{Title: "Figure 2 (chart): TPS vs W"}.Render(f2...))
	fmt.Println(experiment.RenderSeries("Figure 3: CPU utilization split (4P)", experiment.Figure3(set), 3))
	fmt.Println(experiment.RenderSeries("Figure 4: instructions per transaction", experiment.Figure4(set), 0))
	fmt.Println(experiment.RenderSeries("Figure 5: user-space IPX", experiment.Figure5(set), 0))
	fmt.Println(experiment.RenderSeries("Figure 6: OS-space IPX", experiment.Figure6(set), 0))
	fmt.Println(experiment.RenderSeries("Figure 7: disk I/O per transaction (KB, 4P)", experiment.Figure7(set), 2))
	f8 := experiment.Figure8(set)
	fmt.Println(experiment.RenderSeries("Figure 8: context switches per transaction", f8, 2))
	fmt.Println(stats.Chart{Title: "Figure 8 (chart): contention spike, dip, I/O rise"}.Render(f8...))
	f9 := experiment.Figure9(set)
	fmt.Println(experiment.RenderSeries("Figure 9: CPI", f9, 3))
	fmt.Println(stats.Chart{Title: "Figure 9 (chart): CPI cached/scaled regions"}.Render(f9...))
	fmt.Println(experiment.RenderSeries("Figure 10: user-space CPI", experiment.Figure10(set), 3))
	fmt.Println(experiment.RenderSeries("Figure 11: OS-space CPI", experiment.Figure11(set), 3))

	printTables23()
	fmt.Println(experiment.Figure12(set))
	f13 := experiment.Figure13(set)
	fmt.Println(experiment.RenderSeries("Figure 13: L3 misses per instruction", f13, 5))
	fmt.Println(stats.Chart{Title: "Figure 13 (chart): MPI saturating, independent of P"}.Render(f13...))
	fmt.Println(experiment.RenderSeries("Figure 14: user-space MPI", experiment.Figure14(set), 5))
	fmt.Println(experiment.RenderSeries("Figure 15: OS-space MPI", experiment.Figure15(set), 5))
	f16 := experiment.Figure16(set)
	fmt.Println(experiment.RenderSeries("Figure 16: bus-transaction time in the IOQ (cycles)", f16, 1))
	fmt.Println(stats.Chart{Title: "Figure 16 (chart): IOQ latency flat at 1P, rising at 4P"}.Render(f16...))

	// Figures 17/18: the 4P fits.
	char, err := set.Characterize(4)
	if err != nil {
		log.Fatal(err)
	}
	printFit("Figure 17: two-region fit of 4P CPI", char.CPI)
	printFit("Figure 18: two-region fit of 4P MPI", char.MPI)

	t5, err := experiment.Table5(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t5)
	fmt.Printf("Representative scaled configuration (CPI pivot + 25%% margin): %d warehouses\n\n",
		char.MinimalConfiguration(0.25))

	// Figure 19: Itanium2 validation.
	cpi, itChar, err := experiment.Figure19(o, ws, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiment.RenderSeries("Figure 19: CPI scaling on the Itanium2 platform (4P)", []stats.Series{cpi}, 3))
	fmt.Printf("Itanium2 CPI pivot: %.0f warehouses (Xeon: %.0f)\n", itChar.CPI.Pivot(), char.CPI.Pivot())

	if err := verifyIronLaw(set); err != nil {
		fmt.Fprintf(os.Stderr, "iron law verification failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\niron law verified on every measured configuration")
}

// printTables23 prints the static Tables 2 and 3 from their definitions.
func printTables23() {
	t2 := stats.Table{Title: "Table 2: Performance-Monitoring Events Used in CPI Analysis",
		Header: []string{"Event Alias", "EMON Events Used", "Description"}}
	for _, e := range perfmon.Events() {
		d := perfmon.Table2[e]
		t2.AddRow(d.Alias, d.EMONEvent, d.Description)
	}
	fmt.Println(t2)

	c := system.XeonQuad().Stall
	t3 := stats.Table{Title: "Table 3: Clock Cycle Cost for Each Component",
		Header: []string{"Event Alias", "Cycles per Event"}}
	t3.AddRow("Instruction", stats.F(c.InstBase, 1))
	t3.AddRow("Branch Misprediction", stats.F(c.BranchMispred, 0))
	t3.AddRow("TLB Miss", stats.F(c.TLBMiss, 0))
	t3.AddRow("TC Miss", stats.F(c.TCMiss, 0))
	t3.AddRow("L2 Miss", stats.F(c.L2Miss, 0)+" (measured)")
	t3.AddRow("L3 Miss", stats.F(c.L3Miss, 0)+" (measured)")
	t3.AddRow("Bus-Transaction Time for 1P", stats.F(c.BusTime1P, 0)+" (measured)")
	fmt.Println(t3)
}

func printFit(title string, fit core.ScalingFit) {
	fmt.Println(title)
	fmt.Printf("  cached region: %s\n", fit.Fit.Cached)
	fmt.Printf("  scaled region: %s\n", fit.Fit.Scaled)
	fmt.Printf("  pivot point:   %.0f warehouses\n\n", fit.Pivot())
}

// verifyIronLaw checks TPS = util*P*F/(IPX*CPI) on every measured point.
func verifyIronLaw(set *experiment.SweepSet) error {
	for _, p := range set.Processors {
		for _, m := range set.ByP[p] {
			law := core.IronLaw{
				Processors:  m.Processors,
				FrequencyHz: system.XeonQuad().FreqHz,
				IPX:         m.IPX,
				CPI:         m.CPI,
				Utilization: m.CPUUtil,
			}
			if err := law.Verify(m.TPS, 0.02); err != nil {
				return fmt.Errorf("W=%d P=%d: %w", m.Warehouses, p, err)
			}
		}
	}
	return nil
}
