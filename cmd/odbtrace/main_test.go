package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseL3List(t *testing.T) {
	valid := []struct {
		in   string
		want []int
	}{
		{"1,2,4,8", []int{1, 2, 4, 8}},
		{" 16 , 32 ", []int{16, 32}},
		{"4", []int{4}},
	}
	for _, tc := range valid {
		got, err := parseL3List(tc.in)
		if err != nil {
			t.Errorf("parseL3List(%q) = %v, want %v", tc.in, err, tc.want)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseL3List(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}

	invalid := []struct {
		in     string
		errHas string
	}{
		{"", "empty"},
		{"   ", "empty"},
		{"1,,4", "entry 2 is empty"},
		{"1,2,", "entry 3 is empty"},
		{"1,x,4", "not an integer"},
		{"1,0,4", "must be positive"},
		{"1,-2", "must be positive"},
		{"1,2,1", "duplicate capacity 1"},
	}
	for _, tc := range invalid {
		got, err := parseL3List(tc.in)
		if err == nil {
			t.Errorf("parseL3List(%q) = %v, want error containing %q", tc.in, got, tc.errHas)
			continue
		}
		if !strings.Contains(err.Error(), tc.errHas) {
			t.Errorf("parseL3List(%q) error = %q, want it to mention %q", tc.in, err, tc.errHas)
		}
	}
}
