// Command odbtrace captures the simulated memory-reference trace of one
// OLTP configuration and replays it against a sweep of L3 capacities —
// the trace-driven cache-study workflow of the memory-system literature
// the paper builds on. Capture once, sweep offline.
//
//	odbtrace -w 200 -c 44 -p 4 -o /tmp/odb.trace
//	odbtrace -replay /tmp/odb.trace -l3 1,2,4,8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"odbscale/internal/cache"
	"odbscale/internal/system"
	"odbscale/internal/trace"
	"odbscale/internal/workload"
)

func main() {
	w := flag.Int("w", 200, "warehouses")
	c := flag.Int("c", 0, "clients (0 = heuristic)")
	p := flag.Int("p", 4, "processors")
	txns := flag.Int("txns", 1500, "measured transactions")
	out := flag.String("o", "odb.trace", "trace output file")
	replay := flag.String("replay", "", "replay an existing trace instead of capturing")
	l3s := flag.String("l3", "1,2,4,8", "L3 capacities (MB) for the replay sweep")
	flag.Parse()

	if *replay != "" {
		replaySweep(*replay, *l3s, *p)
		return
	}

	clients := *c
	if clients == 0 {
		clients = system.HeuristicClients(*w, *p)
	}
	cfg := system.DefaultConfig(*w, clients, *p)
	cfg.MeasureTxns = *txns
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	m, refs, err := system.RunTraced(cfg, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d references over %d transactions to %s\n", refs, m.Txns, *out)
	fmt.Printf("exact measurement: MPI=%.5f CPI=%.3f\n", m.MPI, m.CPI)
	fmt.Printf("replay with: odbtrace -replay %s -p %d\n", *out, *p)
}

func replaySweep(path, l3list string, p int) {
	scale := system.DefaultTuning().Scale
	for _, field := range strings.Split(l3list, ",") {
		mb, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			log.Fatalf("bad L3 size %q: %v", field, err)
		}
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		r, err := trace.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		geo := cache.XeonGeometry(1)
		geo.L3Size = mb << 20
		geo = workload.ScaledGeometry(geo, scale)
		stats, err := trace.Replay(r, cache.NewDomain(geo, p, true))
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L3=%dMB refs=%d L3miss=%d ratio=%.4f coher=%d writebacks=%d\n",
			mb, stats.Refs, stats.L3Misses, stats.L3MissRatio(), stats.CoherMiss, stats.Writebacks)
	}
}
