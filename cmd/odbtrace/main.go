// Command odbtrace captures the simulated memory-reference trace of one
// OLTP configuration and replays it against a sweep of L3 capacities —
// the trace-driven cache-study workflow of the memory-system literature
// the paper builds on. Capture once, sweep offline.
//
//	odbtrace -w 200 -c 44 -p 4 -o /tmp/odb.trace
//	odbtrace -replay /tmp/odb.trace -l3 1,2,4,8
package main

import (
	"context"

	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"odbscale/internal/cache"
	"odbscale/internal/system"
	"odbscale/internal/trace"
	"odbscale/internal/workload"
)

func main() {
	w := flag.Int("w", 200, "warehouses")
	c := flag.Int("c", 0, "clients (0 = heuristic)")
	p := flag.Int("p", 4, "processors")
	txns := flag.Int("txns", 1500, "measured transactions")
	out := flag.String("o", "odb.trace", "trace output file")
	replay := flag.String("replay", "", "replay an existing trace instead of capturing")
	l3s := flag.String("l3", "1,2,4,8", "L3 capacities (MB) for the replay sweep")
	flag.Parse()

	if *replay != "" {
		replaySweep(*replay, *l3s, *p)
		return
	}

	clients := *c
	if clients == 0 {
		clients = system.HeuristicClients(*w, *p)
	}
	cfg := system.DefaultConfig(*w, clients, *p)
	cfg.MeasureTxns = *txns
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var refs uint64
	m, err := system.Run(context.Background(), cfg, system.WithTrace(f, &refs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d references over %d transactions to %s\n", refs, m.Txns, *out)
	fmt.Printf("exact measurement: MPI=%.5f CPI=%.3f\n", m.MPI, m.CPI)
	fmt.Printf("replay with: odbtrace -replay %s -p %d\n", *out, *p)
}

// parseL3List parses the -l3 capacity list. Every entry must be a
// positive integer, blanks and duplicates are rejected — a sweep that
// silently skipped or repeated a capacity would misreport the study.
func parseL3List(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-l3 list is empty")
	}
	fields := strings.Split(s, ",")
	sizes := make([]int, 0, len(fields))
	seen := make(map[int]bool, len(fields))
	for i, field := range fields {
		field = strings.TrimSpace(field)
		if field == "" {
			return nil, fmt.Errorf("-l3 entry %d is empty (list %q)", i+1, s)
		}
		mb, err := strconv.Atoi(field)
		if err != nil {
			return nil, fmt.Errorf("-l3 entry %d: %q is not an integer", i+1, field)
		}
		if mb <= 0 {
			return nil, fmt.Errorf("-l3 entry %d: capacity must be positive, got %d", i+1, mb)
		}
		if seen[mb] {
			return nil, fmt.Errorf("-l3 entry %d: duplicate capacity %d", i+1, mb)
		}
		seen[mb] = true
		sizes = append(sizes, mb)
	}
	return sizes, nil
}

func replaySweep(path, l3list string, p int) {
	sizes, err := parseL3List(l3list)
	if err != nil {
		log.Fatal(err)
	}
	scale := system.DefaultTuning().Scale
	for _, mb := range sizes {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		r, err := trace.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		geo := cache.XeonGeometry(1)
		geo.L3Size = mb << 20
		geo = workload.ScaledGeometry(geo, scale)
		stats, err := trace.Replay(r, cache.NewDomain(geo, p, true))
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L3=%dMB refs=%d L3miss=%d ratio=%.4f coher=%d writebacks=%d\n",
			mb, stats.Refs, stats.L3Misses, stats.L3MissRatio(), stats.CoherMiss, stats.Writebacks)
	}
}
