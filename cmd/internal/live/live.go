// Package live serves a flight recorder over HTTP: /metrics
// (OpenMetrics text), /timeline (JSON sample series) and /progress
// (JSON position). It is the only place where the flight recorder meets
// the network — the telemetry, system and campaign packages stay under
// the determinism rule, while the HTTP server (and its wall clock) live
// here in cmd/ territory.
package live

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
)

// Source is the flight data a server exposes. Both *telemetry.Recorder
// (one run) and *telemetry.CampaignRecorder (a whole campaign) satisfy
// it.
type Source interface {
	WriteMetrics(io.Writer) error
	WriteTimeline(io.Writer) error
	WriteProgress(io.Writer) error
}

// ProfileSource is the optional fourth endpoint: sources that also
// carry cycle-attribution profiles (e.g. *profile.Store, or a combined
// source wrapping one) additionally get /profile. Detected by type
// assertion in NewMux, so plain flight sources keep working unchanged.
type ProfileSource interface {
	WriteProfiles(io.Writer) error
}

// TraceSource is the optional fifth endpoint: sources that also carry
// sampled transaction span traces (e.g. *txtrace.Tracer for one run,
// *txtrace.Store for a campaign, or a combined source wrapping either)
// additionally get /traces. Detected by type assertion in NewMux, like
// ProfileSource.
type TraceSource interface {
	WriteTraces(io.Writer) error
}

// contentTypeOM is the OpenMetrics exposition content type.
const contentTypeOM = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// handler renders one endpoint into a buffer first, so a render error
// becomes a clean 500 instead of a truncated body.
func handler(contentType string, write func(io.Writer) error) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(buf.Bytes())
	}
}

// NewMux routes the flight-recorder endpoints over src, adding
// /profile when src also carries cycle-attribution profiles and
// /traces when it carries sampled transaction spans.
func NewMux(src Source) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", handler(contentTypeOM, src.WriteMetrics))
	mux.HandleFunc("/timeline", handler("application/json", src.WriteTimeline))
	mux.HandleFunc("/progress", handler("application/json", src.WriteProgress))
	index := "odbscale flight recorder: /metrics /timeline /progress"
	if ps, ok := src.(ProfileSource); ok {
		mux.HandleFunc("/profile", handler("application/json", ps.WriteProfiles))
		index += " /profile"
	}
	if ts, ok := src.(TraceSource); ok {
		mux.HandleFunc("/traces", handler("application/json", ts.WriteTraces))
		index += " /traces"
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, index)
	})
	return mux
}

// Server is a running flight-recorder endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving src on addr (e.g. ":8090" or "127.0.0.1:0") in a
// background goroutine and returns once the listener is bound, so
// Addr() is immediately routable.
func Serve(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(src)}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its listener.
func (s *Server) Close() error { return s.srv.Close() }
