// Package live serves a flight recorder over HTTP: /metrics
// (OpenMetrics text), /timeline (JSON sample series) and /progress
// (JSON position). It is the only place where the flight recorder meets
// the network — the telemetry, system and campaign packages stay under
// the determinism rule, while the HTTP server (and its wall clock) live
// here in cmd/ territory.
package live

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
)

// Source is the flight data a server exposes. Both *telemetry.Recorder
// (one run) and *telemetry.CampaignRecorder (a whole campaign) satisfy
// it.
type Source interface {
	WriteMetrics(io.Writer) error
	WriteTimeline(io.Writer) error
	WriteProgress(io.Writer) error
}

// ProfileSource is the optional fourth endpoint: sources that also
// carry cycle-attribution profiles (e.g. *profile.Store, or a combined
// source wrapping one) additionally get /profile. Detected by type
// assertion in NewMux, so plain flight sources keep working unchanged.
type ProfileSource interface {
	WriteProfiles(io.Writer) error
}

// TraceSource is the optional fifth endpoint: sources that also carry
// sampled transaction span traces (e.g. *txtrace.Tracer for one run,
// *txtrace.Store for a campaign, or a combined source wrapping either)
// additionally get /traces. Detected by type assertion in NewMux, like
// ProfileSource.
type TraceSource interface {
	WriteTraces(io.Writer) error
}

// BottleneckSource is the optional queueing-observatory endpoint:
// sources that carry per-resource service-center reports (e.g.
// *qstats.Collector for one run, *qstats.Store for a campaign, or a
// combined source wrapping either) additionally get /bottlenecks.
type BottleneckSource interface {
	WriteBottlenecks(io.Writer) error
}

// HealthSource lets a source provide a richer /healthz payload (run
// state plus sample counts); sources without it get a minimal static
// one.
type HealthSource interface {
	WriteHealth(io.Writer) error
}

// TimelineCSVSource lets a source serve /timeline?format=csv; sources
// without it only speak JSON on that endpoint.
type TimelineCSVSource interface {
	WriteTimelineCSV(io.Writer) error
}

// Exposition content types.
const (
	contentTypeOM   = "application/openmetrics-text; version=1.0.0; charset=utf-8"
	contentTypeJSON = "application/json; charset=utf-8"
	contentTypeCSV  = "text/csv; charset=utf-8"
)

// handler renders one endpoint into a buffer first, so a render error
// becomes a clean 500 instead of a truncated body.
func handler(contentType string, write func(io.Writer) error) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(buf.Bytes())
	}
}

// NewMux routes the flight-recorder endpoints over src, adding
// /profile when src also carries cycle-attribution profiles, /traces
// when it carries sampled transaction spans, and /bottlenecks when it
// carries queueing-observatory reports. /healthz is always present.
func NewMux(src Source) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", handler(contentTypeOM, src.WriteMetrics))
	timelineJSON := handler(contentTypeJSON, src.WriteTimeline)
	if cs, ok := src.(TimelineCSVSource); ok {
		timelineCSV := handler(contentTypeCSV, cs.WriteTimelineCSV)
		mux.HandleFunc("/timeline", func(w http.ResponseWriter, req *http.Request) {
			if req.URL.Query().Get("format") == "csv" {
				timelineCSV(w, req)
				return
			}
			timelineJSON(w, req)
		})
	} else {
		mux.HandleFunc("/timeline", timelineJSON)
	}
	mux.HandleFunc("/progress", handler(contentTypeJSON, src.WriteProgress))
	if hs, ok := src.(HealthSource); ok {
		mux.HandleFunc("/healthz", handler(contentTypeJSON, hs.WriteHealth))
	} else {
		mux.HandleFunc("/healthz", handler(contentTypeJSON, func(w io.Writer) error {
			_, err := io.WriteString(w, "{\"status\":\"ok\"}\n")
			return err
		}))
	}
	index := "odbscale flight recorder: /metrics /timeline /progress /healthz"
	if ps, ok := src.(ProfileSource); ok {
		mux.HandleFunc("/profile", handler(contentTypeJSON, ps.WriteProfiles))
		index += " /profile"
	}
	if ts, ok := src.(TraceSource); ok {
		mux.HandleFunc("/traces", handler(contentTypeJSON, ts.WriteTraces))
		index += " /traces"
	}
	if bs, ok := src.(BottleneckSource); ok {
		mux.HandleFunc("/bottlenecks", handler(contentTypeJSON, bs.WriteBottlenecks))
		index += " /bottlenecks"
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, index)
	})
	return mux
}

// Server is a running flight-recorder endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving src on addr (e.g. ":8090" or "127.0.0.1:0") in a
// background goroutine and returns once the listener is bound, so
// Addr() is immediately routable.
func Serve(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(src)}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its listener.
func (s *Server) Close() error { return s.srv.Close() }
