package live

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"odbscale/internal/campaign"
	"odbscale/internal/odb"
	"odbscale/internal/profile"
	"odbscale/internal/system"
	"odbscale/internal/telemetry"
	"odbscale/internal/txtrace"
)

// httpGet fetches url and returns the body and content type; non-200
// statuses are errors.
func httpGet(url string) (body, contentType string, err error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b), resp.Header.Get("Content-Type"), nil
}

// gaugeValue scrapes one unlabeled gauge sample from OpenMetrics text.
func gaugeValue(t *testing.T, metrics, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("gauge %s: unparseable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("gauge %s missing from metrics:\n%s", name, metrics)
	return 0
}

// TestMuxEndpoints checks routing, content types and the 404 path over
// a single-run recorder.
func TestMuxEndpoints(t *testing.T) {
	rec := telemetry.NewRecorder(telemetry.Config{})
	rec.SetTarget(10)
	rec.ObserveSpan("Payment", 1200)
	rec.PushSample(telemetry.Sample{SimSeconds: 0.5, TPS: 100})

	ts := httptest.NewServer(NewMux(rec))
	defer ts.Close()

	metrics, ct, err := httpGet(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct != contentTypeOM {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(metrics, "# EOF") || !strings.Contains(metrics, "odb_tps") {
		t.Errorf("/metrics body incomplete:\n%s", metrics)
	}

	tl, ct, err := httpGet(ts.URL + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	if ct != contentTypeJSON {
		t.Errorf("/timeline content type = %q", ct)
	}
	var tlDoc struct {
		Samples []telemetry.Sample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(tl), &tlDoc); err != nil || len(tlDoc.Samples) != 1 {
		t.Errorf("/timeline = %q (err %v)", tl, err)
	}

	prog, _, err := httpGet(ts.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var p telemetry.RunProgress
	if err := json.Unmarshal([]byte(prog), &p); err != nil || p.TargetTxns != 10 {
		t.Errorf("/progress = %q (err %v)", prog, err)
	}

	if idx, _, err := httpGet(ts.URL + "/"); err != nil || !strings.Contains(idx, "/metrics") {
		t.Errorf("index = %q (err %v)", idx, err)
	}
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", resp.StatusCode)
	}
}

// profiledSource combines a flight source with a profile store — the
// shape odbsweep serves when both -listen and -profile are set.
type profiledSource struct {
	*telemetry.CampaignRecorder
	*profile.Store
}

// TestProfileEndpoint checks /profile appears exactly when the source
// carries profiles, and serves the store's JSON payload.
func TestProfileEndpoint(t *testing.T) {
	// A plain flight source must not expose /profile.
	plain := httptest.NewServer(NewMux(telemetry.NewRecorder(telemetry.Config{})))
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/profile on a plain source: status %d, want 404", resp.StatusCode)
	}

	st := profile.NewStore()
	col := profile.NewCollector()
	col.SetMeta(profile.Meta{Label: "W=10,P=1", Scale: 1})
	col.AddChunk(profile.User,
		[]profile.Share{{Kind: profile.KindOf(odb.NewOrder), Phase: odb.PhaseBTree, Instr: 1000}},
		1000, 2500, profile.Events{L3Miss: 4})
	st.Put("W=10,P=1", col.Profile())
	src := profiledSource{telemetry.NewCampaignRecorder(telemetry.Config{}), st}

	ts := httptest.NewServer(NewMux(src))
	defer ts.Close()
	body, ct, err := httpGet(ts.URL + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	if ct != contentTypeJSON {
		t.Errorf("/profile content type = %q", ct)
	}
	var entries []struct {
		Key     string           `json:"key"`
		Profile *profile.Profile `json:"profile"`
	}
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("/profile JSON: %v\n%s", err, body)
	}
	if len(entries) != 1 || entries[0].Key != "W=10,P=1" || len(entries[0].Profile.Frames) == 0 {
		t.Errorf("/profile payload = %s", body)
	}
	if idx, _, err := httpGet(ts.URL + "/"); err != nil || !strings.Contains(idx, "/profile") {
		t.Errorf("index should advertise /profile: %q (err %v)", idx, err)
	}
}

// TestMetricsResponseFormat pins the OpenMetrics exposition contract:
// the exact content type (version and charset included) and a body that
// ends with the "# EOF\n" terminator — scrapers reject anything else.
func TestMetricsResponseFormat(t *testing.T) {
	rec := telemetry.NewRecorder(telemetry.Config{})
	rec.ObserveSpan("NewOrder", 900)
	ts := httptest.NewServer(NewMux(rec))
	defer ts.Close()

	body, ct, err := httpGet(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if want := "application/openmetrics-text; version=1.0.0; charset=utf-8"; ct != want {
		t.Errorf("/metrics content type = %q, want %q", ct, want)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		tail := body
		if len(tail) > 40 {
			tail = tail[len(tail)-40:]
		}
		t.Errorf("/metrics body does not end with the EOF terminator; tail = %q", tail)
	}
	if strings.Count(body, "# EOF") != 1 {
		t.Errorf("/metrics body has %d EOF markers, want exactly 1", strings.Count(body, "# EOF"))
	}
	// An empty histogram must not emit quantile samples (OpenMetrics has
	// no NaN), while the recorder's observed type must.
	if !strings.Contains(body, `odb_txn_latency_us_quantile{txn_type="NewOrder"`) {
		t.Errorf("/metrics missing quantile samples for the observed type:\n%s", body)
	}
}

// spannedSource combines a flight source with a span tracer — the shape
// odbrun serves when both -listen and -spans are set.
type spannedSource struct {
	*telemetry.Recorder
	*txtrace.Tracer
}

// TestTraceEndpoint checks /traces appears exactly when the source
// carries span traces, and serves the tracer's dump payload.
func TestTraceEndpoint(t *testing.T) {
	// A plain flight source must not expose /traces.
	plain := httptest.NewServer(NewMux(telemetry.NewRecorder(telemetry.Config{})))
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/traces on a plain source: status %d, want 404", resp.StatusCode)
	}

	tr := txtrace.NewTracer(txtrace.Config{HeadEvery: 1})
	tr.SetMeta(txtrace.Meta{Label: "W=10,P=1", FreqHz: 2e9})
	ps := tr.NewProcState(0)
	ps.Begin(odb.NewOrder, 1000)
	ps.EndChunk(1000, 500, 0)
	tr.End(ps, 1500, true)
	src := spannedSource{telemetry.NewRecorder(telemetry.Config{}), tr}

	ts := httptest.NewServer(NewMux(src))
	defer ts.Close()
	body, ct, err := httpGet(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	if ct != contentTypeJSON {
		t.Errorf("/traces content type = %q", ct)
	}
	var d txtrace.Dump
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("/traces JSON: %v\n%s", err, body)
	}
	if d.Meta.Label != "W=10,P=1" || len(d.Traces) != 1 || d.Traces[0].Latency != 500 {
		t.Errorf("/traces payload = %s", body)
	}
	if idx, _, err := httpGet(ts.URL + "/"); err != nil || !strings.Contains(idx, "/traces") {
		t.Errorf("index should advertise /traces: %q (err %v)", idx, err)
	}
}

// TestServeClose checks the listener lifecycle: Serve binds before
// returning, and Close stops answering.
func TestServeClose(t *testing.T) {
	rec := telemetry.NewRecorder(telemetry.Config{})
	srv, err := Serve("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()
	if _, _, err := httpGet(base + "/progress"); err != nil {
		t.Fatalf("bound server not answering: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := httpGet(base + "/progress"); err == nil {
		t.Fatal("server still answering after Close")
	}
}

// killObserver counts finished points and triggers a callback on each
// executed success — the hook the kill/resume test uses to cancel the
// campaign at a chosen moment.
type killObserver struct {
	mu         sync.Mutex
	successes  int
	resumed    int
	onFinished func(successes int)
}

func (o *killObserver) PointStarted(campaign.Point)   {}
func (o *killObserver) TunerProbe(campaign.Probe)     {}
func (o *killObserver) CampaignDone(campaign.Summary) {}
func (o *killObserver) PointFinished(p campaign.PointResult) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if p.Err != nil {
		return
	}
	if p.Resumed {
		o.resumed++
		return
	}
	o.successes++
	if o.onFinished != nil {
		o.onFinished(o.successes)
	}
}

func (o *killObserver) counts() (successes, resumed int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.successes, o.resumed
}

// liveSpec is a small fixed-client campaign on the real simulator: six
// points, no tuner, serialized runs so the kill point is predictable.
func liveSpec(path string, flight *telemetry.CampaignRecorder) campaign.Spec {
	tun := system.DefaultTuning()
	tun.PrefillSampleTxns = 250
	return campaign.Spec{
		Machine:        system.XeonQuad(),
		Tuning:         tun,
		Seed:           7,
		WarmupTxns:     20,
		MeasureTxns:    40,
		Clients:        8,
		Parallelism:    1,
		Warehouses:     []int{2, 4, 6},
		Processors:     []int{1, 2},
		CheckpointPath: path,
		Flight:         flight,
	}
}

// TestCampaignLiveKillResume is the acceptance check for the live
// inspection endpoint, alongside the campaign package's kill/resume
// test: a campaign serving /metrics, /timeline and /progress is killed
// partway, then resumed behind a fresh server, and the endpoints must
// stay consistent — with each other (progress JSON vs. metrics gauges)
// and across the kill (phase A's completed points reappear as phase B's
// resumed count).
func TestCampaignLiveKillResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	const total = 6

	// The runs are tiny (~0.1 simulated seconds), so sample fast enough
	// that every completed run retains a timeline.
	flightCfg := telemetry.Config{SampleIntervalMS: 5}

	// Phase A: serve the campaign's flight recorder and kill the run
	// after two completed points.
	flightA := telemetry.NewCampaignRecorder(flightCfg)
	srvA, err := Serve("127.0.0.1:0", flightA)
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	baseA := "http://" + srvA.Addr()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	recA := &killObserver{}
	// Mid-run snapshot taken from inside the observer: the emitter's
	// mutex freezes campaign progress while the callback runs, so the
	// two GETs observe one consistent state.
	var midProgress, midMetrics string
	var midErr error
	recA.onFinished = func(n int) {
		if n == 1 {
			if midProgress, _, midErr = httpGet(baseA + "/progress"); midErr == nil {
				midMetrics, _, midErr = httpGet(baseA + "/metrics")
			}
		}
		if n == 2 {
			cancel()
		}
	}
	specA := liveSpec(path, flightA)
	specA.Observer = recA
	if _, err := campaign.Run(ctx, specA); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed campaign returned %v, want context.Canceled", err)
	}

	if midErr != nil {
		t.Fatalf("mid-run endpoints unreachable: %v", midErr)
	}
	var midP telemetry.CampaignProgress
	if err := json.Unmarshal([]byte(midProgress), &midP); err != nil {
		t.Fatalf("mid-run progress JSON: %v", err)
	}
	if midP.TotalPoints != total || midP.Done {
		t.Errorf("mid-run progress = %+v", midP)
	}
	if got := gaugeValue(t, midMetrics, "odb_campaign_points_done"); got != float64(midP.PointsDone) {
		t.Errorf("mid-run metrics points_done %v != progress %d", got, midP.PointsDone)
	}

	// After the kill the server still answers, and its counters agree
	// with the observer's event stream and the checkpoint on disk.
	doneA, _ := recA.counts()
	if doneA < 2 || doneA >= total {
		t.Fatalf("phase A completed %d points, want a strict subset of %d with ≥2", doneA, total)
	}
	killProgress, _, err := httpGet(baseA + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var killP telemetry.CampaignProgress
	if err := json.Unmarshal([]byte(killProgress), &killP); err != nil {
		t.Fatal(err)
	}
	if !killP.Done || killP.Err == "" {
		t.Errorf("post-kill progress should be done with an error: %+v", killP)
	}
	if killP.PointsDone-killP.PointsFailed != doneA {
		t.Errorf("post-kill progress %+v, observer saw %d successes", killP, doneA)
	}
	if len(killP.Active) != 0 {
		t.Errorf("post-kill active runs = %v, want none", killP.Active)
	}
	killMetrics, _, err := httpGet(baseA + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if got := gaugeValue(t, killMetrics, "odb_campaign_points_done"); got != float64(killP.PointsDone) {
		t.Errorf("post-kill metrics points_done %v != progress %d", got, killP.PointsDone)
	}
	cp, err := campaign.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("checkpoint unreadable after the kill: %v", err)
	}
	if len(cp.Points) != doneA {
		t.Errorf("checkpoint holds %d points, observer saw %d successes", len(cp.Points), doneA)
	}
	srvA.Close()

	// Phase B: resume behind a fresh recorder and server.
	flightB := telemetry.NewCampaignRecorder(flightCfg)
	srvB, err := Serve("127.0.0.1:0", flightB)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	baseB := "http://" + srvB.Addr()

	recB := &killObserver{}
	specB := liveSpec(path, flightB)
	specB.Resume = true
	specB.Observer = recB
	res, err := campaign.Run(context.Background(), specB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != total {
		t.Fatalf("resumed campaign finished %d points, want %d", len(res.Points), total)
	}

	doneB, resumedB := recB.counts()
	if resumedB != doneA {
		t.Errorf("resume restored %d points, phase A completed %d", resumedB, doneA)
	}
	if doneB != total-doneA {
		t.Errorf("resume executed %d points, want the %d-point complement", doneB, total-doneA)
	}

	finalProgress, _, err := httpGet(baseB + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var finalP telemetry.CampaignProgress
	if err := json.Unmarshal([]byte(finalProgress), &finalP); err != nil {
		t.Fatal(err)
	}
	if !finalP.Done || finalP.Err != "" {
		t.Errorf("final progress not cleanly done: %+v", finalP)
	}
	if finalP.PointsDone != total || finalP.PointsFailed != 0 {
		t.Errorf("final progress = %+v, want all %d points done", finalP, total)
	}
	// The cross-kill consistency contract: phase A's completed points
	// are exactly phase B's resumed count, and the executed runs are the
	// complement.
	if finalP.PointsResumed != doneA {
		t.Errorf("final resumed = %d, phase A completed %d", finalP.PointsResumed, doneA)
	}
	if finalP.Runs != total-doneA {
		t.Errorf("final runs = %d, want %d re-executed points", finalP.Runs, total-doneA)
	}

	finalMetrics, _, err := httpGet(baseB + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	for gauge, want := range map[string]float64{
		"odb_campaign_points_total":   total,
		"odb_campaign_points_done":    float64(finalP.PointsDone),
		"odb_campaign_points_resumed": float64(finalP.PointsResumed),
		"odb_campaign_done":           1,
	} {
		if got := gaugeValue(t, finalMetrics, gauge); got != want {
			t.Errorf("final %s = %v, want %v", gauge, got, want)
		}
	}
	if !strings.Contains(finalMetrics, `odb_txn_latency_us_count{txn_type=`) {
		t.Error("final metrics missing merged latency histograms")
	}

	finalTimeline, _, err := httpGet(baseB + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	var tlDoc struct {
		Points []struct {
			Point   string             `json:"point"`
			Live    bool               `json:"live"`
			Samples []telemetry.Sample `json:"samples"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(finalTimeline), &tlDoc); err != nil {
		t.Fatal(err)
	}
	if len(tlDoc.Points) != total-doneA {
		t.Errorf("final timeline has %d points, want the %d executed in phase B", len(tlDoc.Points), total-doneA)
	}
	for _, pt := range tlDoc.Points {
		if pt.Live || len(pt.Samples) == 0 {
			t.Errorf("timeline point %q: live=%v samples=%d", pt.Point, pt.Live, len(pt.Samples))
		}
	}

	// The run manifest sits next to the checkpoint and reloads.
	man, err := telemetry.LoadManifest(telemetry.ManifestPath(path))
	if err != nil {
		t.Fatalf("campaign manifest: %v", err)
	}
	if man.Tool != "odbscale-campaign" || man.Seed != specB.Seed {
		t.Errorf("manifest = %+v", man)
	}
}
