package live

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"odbscale/internal/profile"
	"odbscale/internal/qstats"
	"odbscale/internal/telemetry"
	"odbscale/internal/txtrace"
)

// fullSource carries every optional payload at once — the richest shape
// a CLI can serve.
type fullSource struct {
	*telemetry.Recorder
	*profile.Store
	*txtrace.Tracer
	*qstats.Collector
}

// TestContentTypeHeaders pins the Content-Type of every endpoint: the
// OpenMetrics exposition type on /metrics and one consistent JSON type
// (charset included) on every JSON endpoint.
func TestContentTypeHeaders(t *testing.T) {
	rec := telemetry.NewRecorder(telemetry.Config{})
	rec.PushSample(telemetry.Sample{SimSeconds: 0.5, TPS: 10})
	src := fullSource{rec, profile.NewStore(), txtrace.NewTracer(txtrace.Config{}), qstats.NewCollector()}
	ts := httptest.NewServer(NewMux(src))
	defer ts.Close()

	cases := map[string]string{
		"/metrics":     contentTypeOM,
		"/timeline":    contentTypeJSON,
		"/progress":    contentTypeJSON,
		"/profile":     contentTypeJSON,
		"/traces":      contentTypeJSON,
		"/healthz":     contentTypeJSON,
		"/bottlenecks": contentTypeJSON,
	}
	for path, want := range cases {
		_, ct, err := httpGet(ts.URL + path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if ct != want {
			t.Errorf("%s content type = %q, want %q", path, ct, want)
		}
	}
	if _, ct, err := httpGet(ts.URL + "/timeline?format=csv"); err != nil || ct != contentTypeCSV {
		t.Errorf("/timeline?format=csv content type = %q (err %v), want %q", ct, err, contentTypeCSV)
	}
}

// TestHealthzEndpoint checks the health payload carries run state and
// sample counts, and that sources without a HealthSource still answer.
func TestHealthzEndpoint(t *testing.T) {
	rec := telemetry.NewRecorder(telemetry.Config{})
	rec.SetTarget(50)
	rec.MarkPhase(telemetry.PhaseMeasure, 0.25)
	rec.PushSample(telemetry.Sample{SimSeconds: 0.5})
	rec.PushSample(telemetry.Sample{SimSeconds: 0.6})
	rec.ObserveSpan("NewOrder", 900)

	ts := httptest.NewServer(NewMux(rec))
	defer ts.Close()
	body, _, err := httpGet(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status          string `json:"status"`
		Phase           string `json:"phase"`
		TargetTxns      uint64 `json:"target_txns"`
		TimelineSamples int    `json:"timeline_samples"`
		LatencySpans    uint64 `json:"latency_spans"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Phase != "measure" || h.TargetTxns != 50 || h.TimelineSamples != 2 || h.LatencySpans != 1 {
		t.Errorf("/healthz payload = %+v", h)
	}

	// A source without WriteHealth still serves a minimal payload.
	bare := httptest.NewServer(NewMux(bareSource{rec}))
	defer bare.Close()
	body, ct, err := httpGet(bare.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if ct != contentTypeJSON || !strings.Contains(body, "\"status\":\"ok\"") {
		t.Errorf("fallback /healthz = %q (%s)", body, ct)
	}
}

// bareSource hides the recorder's optional interfaces behind the
// minimal Source shape.
type bareSource struct{ src Source }

func (b bareSource) WriteMetrics(w io.Writer) error  { return b.src.WriteMetrics(w) }
func (b bareSource) WriteTimeline(w io.Writer) error { return b.src.WriteTimeline(w) }
func (b bareSource) WriteProgress(w io.Writer) error { return b.src.WriteProgress(w) }

// TestBottlenecksEndpoint checks /bottlenecks appears exactly when the
// source carries queueing reports, serving the pending marker before the
// first publication and the report after it.
func TestBottlenecksEndpoint(t *testing.T) {
	plain := httptest.NewServer(NewMux(telemetry.NewRecorder(telemetry.Config{})))
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/bottlenecks")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/bottlenecks on a plain source: status %d, want 404", resp.StatusCode)
	}

	col := qstats.NewCollector()
	src := fullSource{telemetry.NewRecorder(telemetry.Config{}), profile.NewStore(), txtrace.NewTracer(txtrace.Config{}), col}
	ts := httptest.NewServer(NewMux(src))
	defer ts.Close()

	body, _, err := httpGet(ts.URL + "/bottlenecks")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "pending") {
		t.Errorf("pre-publish /bottlenecks = %q", body)
	}

	in := &qstats.Input{ElapsedCycles: 1e9, CyclesPerMS: 1e6, Commits: 100}
	in.Counts[qstats.Disk] = qstats.Counts{Arrivals: 10, Completions: 10, BusyCycles: 5e6, WaitCycles: 2e6}
	in.Servers[qstats.Disk] = 4
	col.Publish(qstats.Build(in))
	body, _, err = httpGet(ts.URL + "/bottlenecks")
	if err != nil {
		t.Fatal(err)
	}
	var r qstats.Report
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatalf("/bottlenecks JSON: %v\n%s", err, body)
	}
	if r.Bottleneck != "disk" {
		t.Errorf("/bottlenecks bottleneck = %q, want disk", r.Bottleneck)
	}
	if idx, _, err := httpGet(ts.URL + "/"); err != nil || !strings.Contains(idx, "/bottlenecks") {
		t.Errorf("index should advertise /bottlenecks: %q (err %v)", idx, err)
	}
}

// TestTimelineCSV pins the CSV exposition: header shape and one row per
// retained sample, stations included.
func TestTimelineCSV(t *testing.T) {
	rec := telemetry.NewRecorder(telemetry.Config{})
	rec.PushSample(telemetry.Sample{
		SimSeconds: 0.5, Measuring: true, TPS: 100, CPI: 2.5,
		CPUUtil: []float64{0.75, 0.5},
		Stations: []telemetry.StationSample{
			{Name: "cpu", Util: 0.8, QueueLen: 1.5, WaitMS: 0.1, Xps: 2000},
			{Name: "disk", Util: 0.25, QueueLen: 0.5, WaitMS: 1.25, Xps: 400},
		},
	})
	ts := httptest.NewServer(NewMux(rec))
	defer ts.Close()
	body, _, err := httpGet(ts.URL + "/timeline?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row:\n%s", len(lines), body)
	}
	wantHeader := "t,measuring,tps,cpi,user_ipx,os_ipx,l2_mpi,l3_mpi,buffer_hit,write_amp,read_amp,bus_util,run_queue,io_in_flight,space_amp,txns,cpu0_util,cpu1_util,cpu_util,cpu_queue_len,cpu_wait_ms,cpu_xps,disk_util,disk_queue_len,disk_wait_ms,disk_xps"
	if lines[0] != wantHeader {
		t.Errorf("CSV header = %q,\nwant %q", lines[0], wantHeader)
	}
	row := strings.Split(lines[1], ",")
	head := strings.Split(lines[0], ",")
	if len(row) != len(head) {
		t.Fatalf("CSV row has %d fields, header %d", len(row), len(head))
	}
	if row[0] != "0.5" || row[1] != "1" || row[2] != "100" {
		t.Errorf("CSV row = %v", row)
	}
	if row[len(row)-1] != "400" || row[len(row)-2] != "1.25" {
		t.Errorf("CSV station tail = %v", row[len(row)-4:])
	}

	// JSON stays the default.
	body, ct, err := httpGet(ts.URL + "/timeline")
	if err != nil || ct != contentTypeJSON || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/timeline default = %q (%s, err %v)", body, ct, err)
	}
}
