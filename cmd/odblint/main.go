// Command odblint runs the repository's static-analysis suite: five
// stdlib-only analyzers enforcing the determinism, cancellation, and
// numeric-safety invariants the paper reproduction rests on. See
// internal/lint for the rules and the suppression policy.
//
// Usage:
//
//	go run ./cmd/odblint ./...
//
// Exit status is 0 when the tree is clean, 1 when any rule fires, and
// 2 on usage or load errors.
package main

import (
	"os"

	"odbscale/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
