// Command odblint runs the repository's static-analysis suite: nine
// stdlib-only analyzers enforcing the determinism, cancellation,
// numeric-safety and allocation-discipline invariants the paper
// reproduction rests on. Six rules are intra-procedural; three —
// taintdet (transitive determinism taint), hotalloc (per-event
// allocation discipline) and laneshare (lane-worker ownership) — run
// over a module-wide call graph. See internal/lint for the rules and
// the suppression policy.
//
// Usage:
//
//	go run ./cmd/odblint [flags] ./...
//
//	-list             list the rules and exit
//	-json             emit findings as a JSON array
//	-sarif file       also write SARIF 2.1.0 ("-" for stdout)
//	-baseline file    subtract the committed waiver ledger
//	-update-baseline  rewrite the -baseline ledger and exit 0
//
// Exit status is 0 when the tree is clean (or every finding is covered
// by the baseline ledger), 1 when any new finding fires, and 2 on
// usage or load errors.
package main

import (
	"os"

	"odbscale/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
