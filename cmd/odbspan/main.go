// Command odbspan drives the per-transaction span tracer: capture a
// deterministic sample of span trees from a simulated run, render the
// wait-state breakdown report (per-type latency quantiles decomposed
// into cpu / lock / io / busy / queue shares plus the slowest
// exemplar's critical path), export Chrome trace-event JSON for
// chrome://tracing or Perfetto, list the slowest sampled transactions,
// and diff two dumps to expose wait-state shifts across configurations.
//
// Usage:
//
//	odbspan capture [-w warehouses] [-c clients] [-p processors]
//	                [-seed n] [-machine xeon|itanium2] [-txns n]
//	                [-warmup n] [-head n] [-tailk n] [-o file] [-report]
//	odbspan report <spans.json>
//	odbspan export <spans.json>
//	odbspan top    [-n count] <spans.json>
//	odbspan diff   <a.json> <b.json>
//
// capture runs the simulator with span tracing on and writes the dump
// as JSON (stdout with -o -); report prints the wait-state table;
// export emits Chrome trace-event JSON; top lists the N slowest
// retained traces with their critical paths; diff compares two dumps
// per transaction type, exiting 0 always — wait-state shifts are
// findings, not failures.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"odbscale/internal/system"
	"odbscale/internal/txtrace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("odbspan: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "capture":
		capture(os.Args[2:])
	case "report":
		render(os.Args[2:], func(d *txtrace.Dump) error { return d.WriteReport(os.Stdout) })
	case "export":
		render(os.Args[2:], func(d *txtrace.Dump) error { return d.WriteChromeTrace(os.Stdout) })
	case "top":
		top(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: odbspan capture|report|export|top|diff [args]")
	os.Exit(2)
}

// capture runs one span-traced simulation and writes the dump.
func capture(args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	w := fs.Int("w", 100, "warehouses")
	c := fs.Int("c", 0, "concurrent clients (0 = heuristic)")
	p := fs.Int("p", 4, "processors")
	seed := fs.Int64("seed", 1, "random seed")
	machine := fs.String("machine", "xeon", "platform: xeon or itanium2")
	txns := fs.Int("txns", 2400, "measured transactions")
	warmup := fs.Int("warmup", -1, "warm-up transactions (-1 = default)")
	head := fs.Int("head", txtrace.DefaultHeadEvery, "head-sample every Nth measured transaction (-1 disables)")
	tailk := fs.Int("tailk", txtrace.DefaultTailK, "keep the K slowest transactions per type (-1 disables)")
	out := fs.String("o", "-", "output file for the trace dump JSON (- = stdout)")
	report := fs.Bool("report", false, "also print the wait-state report to stderr")
	fs.Parse(args)

	clients := *c
	if clients <= 0 {
		clients = system.HeuristicClients(*w, *p)
	}
	cfg := system.DefaultConfig(*w, clients, *p)
	cfg.Seed = *seed
	cfg.MeasureTxns = *txns
	if *warmup >= 0 {
		cfg.WarmupTxns = *warmup
	}
	switch *machine {
	case "xeon":
	case "itanium2":
		cfg.Machine = system.Itanium2Quad()
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	tr := txtrace.NewTracer(txtrace.Config{HeadEvery: *head, TailK: *tailk})
	m, err := system.Run(context.Background(), cfg, system.WithSpans(tr))
	if err != nil {
		log.Fatal(err)
	}
	d := tr.Dump()
	d.Meta.Label = fmt.Sprintf("W=%d,C=%d,P=%d", *w, clients, *p)

	dst := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := d.Write(dst); err != nil {
		log.Fatal(err)
	}
	log.Printf("captured %s: %d txns measured, %d traces retained",
		d.Meta.Label, m.Txns, len(d.Traces))
	if *report {
		if err := d.WriteReport(os.Stderr); err != nil {
			log.Fatal(err)
		}
	}
}

// load reads one trace dump from a path ("-" = stdin).
func load(path string) *txtrace.Dump {
	r := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	d, err := txtrace.ReadDump(r)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return d
}

// render applies one output format to a single dump argument.
func render(args []string, write func(*txtrace.Dump) error) {
	if len(args) != 1 {
		log.Fatal("expected exactly one trace dump file (or - for stdin)")
	}
	if err := write(load(args[0])); err != nil {
		log.Fatal(err)
	}
}

// top lists the N slowest retained traces with their critical paths.
func top(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	n := fs.Int("n", 10, "number of traces to list")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("expected exactly one trace dump file (or - for stdin)")
	}
	if err := load(fs.Arg(0)).WriteTop(os.Stdout, *n); err != nil {
		log.Fatal(err)
	}
}

// diff compares two dumps per transaction type. It always exits 0 on a
// successful comparison — wait-state shifts are findings, not failures
// — so CI can run it against a golden baseline.
func diff(args []string) {
	if len(args) != 2 {
		log.Fatal("expected two trace dump files")
	}
	if err := txtrace.WriteDiff(os.Stdout, load(args[0]), load(args[1])); err != nil {
		log.Fatal(err)
	}
}
