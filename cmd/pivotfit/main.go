// Command pivotfit fits the paper's two-region piecewise-linear model to
// a CSV of (warehouses, value) pairs read from a file or stdin and
// reports the cached/scaled lines and the pivot point.
//
// Input format: one "warehouses,value" pair per line; lines starting
// with '#' and a header line are ignored.
//
//	odbsweep -p 4 -csv | cut -d, -f1,8 | pivotfit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"odbscale/internal/model"
)

func main() {
	file := flag.String("f", "-", "input file ('-' for stdin)")
	extrapolate := flag.Float64("x", 0, "also predict the metric at this warehouse count")
	flag.Parse()

	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	type pt struct{ x, y float64 }
	var pts []pt
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			log.Fatalf("bad line %q", line)
		}
		x, errX := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		y, errY := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if errX != nil || errY != nil {
			continue // header line
		}
		pts = append(pts, pt{x, y})
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(pts) < 4 {
		log.Fatalf("need at least 4 points, got %d", len(pts))
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.x, p.y
	}

	fit, err := model.FitPiecewise(xs, ys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cached region: %s\n", fit.Cached)
	fmt.Printf("scaled region: %s\n", fit.Scaled)
	fmt.Printf("pivot point:   %.1f warehouses\n", fit.Pivot)
	fmt.Printf("fit SSE:       %.6g\n", fit.SSE)
	if *extrapolate > 0 {
		fmt.Printf("extrapolation: metric(%.0fW) = %.6g\n", *extrapolate, fit.Extrapolate(*extrapolate))
	}
}
