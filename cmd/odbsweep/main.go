// Command odbsweep runs a warehouse × processor campaign and prints a
// metrics table per configuration — the raw data behind the paper's
// Figures 2-16. All runs go through the campaign runner: one bounded
// worker pool schedules every measurement point and tuner probe, a live
// progress line tracks the campaign on stderr, and -checkpoint/-resume
// make interrupted campaigns restartable (Ctrl-C is caught so the
// checkpoint stays valid).
//
// Client counts: -c 0 (the default) auto-tunes every point to the
// paper's ≥90% CPU-utilization target through the campaign runner's
// warm-started, memoized search. (Earlier versions silently fell back
// to a static heuristic for -c 0; use -heuristic for that behaviour.)
// A positive -c pins a fixed client count.
//
// Output: aligned text by default, -csv for CSV, -json for one JSON
// object per point; -events appends a machine-readable campaign event
// log. -listen turns on the campaign flight recorder and serves it over
// HTTP while the campaign runs: /metrics (OpenMetrics gauges plus
// merged per-transaction-type latency histograms), /timeline (per-point
// sampled timelines) and /progress (live point/probe counters). With
// -checkpoint, a run manifest (config, seed, provenance) is written
// next to the checkpoint file at campaign start and completion.
//
// -profile turns on the cycle-attribution profiler: every point runs
// under system.Run with WithProfiler, per-point profiles persist in the
// checkpoint (when one is configured), profiles are served on /profile
// alongside -listen, and after the campaign each processor lane prints
// the attribution shift across the cached-to-scaled pivot — the
// smallest-W profile diffed against the largest-W one. -profiledir
// additionally writes each point's profile JSON to a directory for
// offline odbprof analysis.
//
// -spans turns on the per-transaction span tracer the same way: every
// point runs under system.Run with WithSpans, per-point trace dumps
// persist in the checkpoint, the store is served on /traces alongside
// -listen, and after the campaign each processor lane prints the
// wait-state shift across the pivot. -spandir writes each point's dump
// JSON to a directory for offline odbspan analysis.
//
// -qstats turns on the queueing observatory: every point runs under
// system.Run with WithQueueStats, per-point station reports persist in
// the checkpoint, the store is served on /bottlenecks alongside
// -listen, and after the campaign each processor lane prints the
// bottleneck-shift table across the warehouse sweep. -qstatsdir writes
// each point's report JSON to a directory for offline odbq analysis.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"odbscale/cmd/internal/live"
	"odbscale/internal/campaign"
	"odbscale/internal/engine"
	"odbscale/internal/experiment"
	"odbscale/internal/profile"
	"odbscale/internal/qstats"
	"odbscale/internal/system"
	"odbscale/internal/telemetry"
	"odbscale/internal/txtrace"
)

// flightSource combines the campaign flight recorder with the profile
// store so the live server exposes /profile next to the flight
// endpoints.
type flightSource struct {
	*telemetry.CampaignRecorder
	*profile.Store
}

// spanSource adds the span-trace store, exposing /traces as well.
type spanSource struct {
	live.Source
	*txtrace.Store
}

// qstatSource adds the queueing-observatory store, exposing
// /bottlenecks as well.
type qstatSource struct {
	live.Source
	*qstats.Store
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad integer list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	ws := flag.String("w", "10,25,50,100,200,300,500,800", "warehouse counts")
	ps := flag.String("p", "4", "processor counts")
	clients := flag.Int("c", 0, "fixed client count (0 = auto-tune each point to the ≥90% utilization target via the campaign runner; was: static heuristic)")
	heuristic := flag.Bool("heuristic", false, "with -c 0, use the static client heuristic instead of the tuner (the old -c 0 behaviour)")
	txns := flag.Int("txns", 2400, "measured transactions per point")
	tuneTxns := flag.Int("tunetxns", 1200, "measured transactions per tuner probe")
	seed := flag.Int64("seed", 1, "random seed")
	machine := flag.String("machine", "xeon", "platform: xeon or itanium2")
	engineName := flag.String("engine", engine.DefaultName,
		fmt.Sprintf("storage engine: %s", strings.Join(engine.Names(), " or ")))
	par := flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: completed points persist here after every run")
	resume := flag.Bool("resume", false, "resume from -checkpoint, re-executing only incomplete points")
	events := flag.String("events", "", "append a JSON campaign event log to this file")
	listen := flag.String("listen", "", "serve the live campaign flight recorder on this address (/metrics /timeline /progress)")
	profileFlag := flag.Bool("profile", false, "run every point under the cycle-attribution profiler and print the attribution shift across the cached-to-scaled pivot")
	profileDir := flag.String("profiledir", "", "with -profile, write each point's profile JSON into this directory")
	spansFlag := flag.Bool("spans", false, "run every point under the span tracer and print the wait-state shift across the pivot")
	spanDir := flag.String("spandir", "", "with -spans, write each point's trace dump JSON into this directory")
	qstatsFlag := flag.Bool("qstats", false, "run every point under the queueing observatory and print the bottleneck-shift table across the sweep")
	qstatsDir := flag.String("qstatsdir", "", "with -qstats, write each point's station report JSON into this directory")
	csv := flag.Bool("csv", false, "CSV output")
	jsonOut := flag.Bool("json", false, "JSON output (one object per point)")
	quiet := flag.Bool("quiet", false, "suppress the stderr progress line")
	flag.Parse()

	o := experiment.Defaults()
	o.Seed = *seed
	if _, ok := engine.Lookup(*engineName); !ok {
		log.Fatalf("unknown engine %q (have %s)", *engineName, strings.Join(engine.Names(), ", "))
	}
	o.Engine = *engineName
	o.MeasureTxns = *txns
	o.TuneTxns = *tuneTxns
	o.AutoTune = *clients == 0 && !*heuristic
	o.Parallelism = *par
	switch *machine {
	case "xeon":
	case "itanium2":
		o.Machine = system.Itanium2Quad()
	default:
		log.Fatalf("unknown -machine %q (want xeon or itanium2)", *machine)
	}

	warehouses, processors := parseInts(*ws), parseInts(*ps)
	spec := o.CampaignSpec(warehouses, processors)
	spec.Clients = *clients
	spec.CheckpointPath = *checkpoint
	spec.Resume = *resume
	if *resume && *checkpoint == "" {
		log.Fatal("-resume requires -checkpoint")
	}

	var observers []campaign.Observer
	if !*quiet {
		observers = append(observers, campaign.NewProgress(os.Stderr, len(warehouses)*len(processors)))
	}
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		observers = append(observers, campaign.NewEventLog(f))
	}
	spec.Observer = campaign.Observers(observers...)

	var profiles *profile.Store
	if *profileFlag || *profileDir != "" {
		profiles = profile.NewStore()
		spec.Profiles = profiles
	}
	var spans *txtrace.Store
	if *spansFlag || *spanDir != "" {
		spans = txtrace.NewStore(txtrace.Config{})
		spec.Spans = spans
	}
	var stations *qstats.Store
	if *qstatsFlag || *qstatsDir != "" {
		stations = qstats.NewStore()
		spec.QueueStats = stations
	}

	if *listen != "" {
		flight := telemetry.NewCampaignRecorder(telemetry.Config{})
		spec.Flight = flight
		var src live.Source = flight
		endpoints := "/metrics /timeline /progress"
		if profiles != nil {
			src = flightSource{flight, profiles}
			endpoints += " /profile"
		}
		if spans != nil {
			src = spanSource{src, spans}
			endpoints += " /traces"
		}
		if stations != nil {
			src = qstatSource{src, stations}
			endpoints += " /bottlenecks"
		}
		srv, err := live.Serve(*listen, src)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("campaign flight recorder on http://%s (%s)", srv.Addr(), endpoints)
	}

	// Ctrl-C cancels the campaign cleanly: in-flight runs stop at the
	// next cancellation check and the checkpoint keeps completed points.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := campaign.Run(ctx, spec)
	if err != nil {
		if *checkpoint != "" {
			log.Printf("campaign stopped; completed points are in %s (rerun with -resume)", *checkpoint)
		}
		log.Fatal(err)
	}

	if *csv {
		fmt.Println("w,p,c,engine,tps,ipx,useripx,osipx,cpi,usercpi,oscpi,mpi,usermpi,osmpi,util,osshare,readkb,writekb,logkb,ctxsw,bustime,busutil,cohershare,bufferhit,diskutil,writeamp,readamp,spaceamp,writestalls")
	}
	enc := json.NewEncoder(os.Stdout)
	for _, p := range processors {
		for _, m := range res.Series(p) {
			switch {
			case *jsonOut:
				if err := enc.Encode(m); err != nil {
					log.Fatal(err)
				}
			case *csv:
				fmt.Printf("%d,%d,%d,%s,%.1f,%.0f,%.0f,%.0f,%.3f,%.3f,%.3f,%.5f,%.5f,%.5f,%.3f,%.3f,%.2f,%.2f,%.2f,%.2f,%.1f,%.3f,%.4f,%.4f,%.3f,%.3f,%.3f,%.3f,%.4f\n",
					m.Warehouses, m.Processors, m.Clients, m.Engine, m.TPS, m.IPX, m.UserIPX, m.OSIPX,
					m.CPI, m.UserCPI, m.OSCPI, m.MPI, m.UserMPI, m.OSMPI, m.CPUUtil, m.OSShare,
					m.ReadKBPerTxn, m.WriteKBPerTxn, m.LogKBPerTxn, m.CtxSwitchPerTxn,
					m.BusTime, m.BusUtil, m.CoherenceShare, m.BufferHitRatio, m.DiskUtil,
					m.WriteAmp, m.ReadAmp, m.SpaceAmp, m.WriteStallsPerTxn)
			default:
				fmt.Println(m)
			}
		}
	}

	if profiles != nil {
		emitProfiles(profiles, warehouses, processors, *profileDir)
	}
	if spans != nil {
		emitSpans(spans, warehouses, processors, *spanDir)
	}
	if stations != nil {
		emitQStats(stations, warehouses, processors, *qstatsDir)
	}
}

// emitProfiles post-processes the campaign's profile store: optionally
// write each point's profile JSON to dir, then print the attribution
// shift across the cached-to-scaled pivot — the smallest-W point diffed
// against the largest-W one — for each processor lane.
func emitProfiles(st *profile.Store, warehouses, processors []int, dir string) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, key := range st.Keys() {
			p := st.Get(key)
			name := strings.NewReplacer("=", "", ",", "-").Replace(key) + ".json"
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				log.Fatal(err)
			}
			if err := p.Encode(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("wrote %d profiles to %s", len(st.Keys()), dir)
	}
	if len(warehouses) < 2 {
		return
	}
	for _, p := range processors {
		lo := st.Get(telemetry.PointName(warehouses[0], p))
		hi := st.Get(telemetry.PointName(warehouses[len(warehouses)-1], p))
		if lo == nil || hi == nil {
			continue
		}
		fmt.Printf("\nattribution shift across the pivot, P=%d (%s -> %s):\n",
			p, lo.Meta.Label, hi.Meta.Label)
		if err := profile.Diff(lo, hi).Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// emitSpans post-processes the campaign's span-trace store: optionally
// write each point's dump JSON to dir, then print the wait-state shift
// across the pivot for each processor lane.
func emitSpans(st *txtrace.Store, warehouses, processors []int, dir string) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, key := range st.Keys() {
			d := st.Get(key)
			name := strings.NewReplacer("=", "", ",", "-").Replace(key) + ".json"
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				log.Fatal(err)
			}
			if err := d.Write(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("wrote %d trace dumps to %s", len(st.Keys()), dir)
	}
	if len(warehouses) < 2 {
		return
	}
	for _, p := range processors {
		lo := st.Get(telemetry.PointName(warehouses[0], p))
		hi := st.Get(telemetry.PointName(warehouses[len(warehouses)-1], p))
		if lo == nil || hi == nil {
			continue
		}
		fmt.Printf("\nwait-state shift across the pivot, P=%d (%s -> %s):\n",
			p, lo.Meta.Label, hi.Meta.Label)
		if err := txtrace.WriteDiff(os.Stdout, lo, hi); err != nil {
			log.Fatal(err)
		}
	}
}

// emitQStats post-processes the campaign's station-report store:
// optionally write each point's report JSON to dir, then print the
// bottleneck-shift table — wait demand per station down the warehouse
// sweep — for each processor lane.
func emitQStats(st *qstats.Store, warehouses, processors []int, dir string) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, key := range st.Keys() {
			r := st.Get(key)
			name := strings.NewReplacer("=", "", ",", "-").Replace(key) + ".json"
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				log.Fatal(err)
			}
			if err := r.WriteJSON(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("wrote %d station reports to %s", len(st.Keys()), dir)
	}
	if len(warehouses) < 2 {
		return
	}
	for _, p := range processors {
		var reports []*qstats.Report
		for _, w := range warehouses {
			if r := st.Get(telemetry.PointName(w, p)); r != nil {
				reports = append(reports, r)
			}
		}
		if len(reports) < 2 {
			continue
		}
		fmt.Println()
		if err := qstats.WriteShiftTable(os.Stdout, reports); err != nil {
			log.Fatal(err)
		}
	}
}
