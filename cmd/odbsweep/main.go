// Command odbsweep runs a warehouse sweep for one or more processor
// counts and prints a metrics table per configuration — the raw data
// behind the paper's Figures 2-16. With -csv it emits machine-readable
// output instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"odbscale/internal/system"
)

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad integer list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	ws := flag.String("w", "10,25,50,100,200,300,500,800", "warehouse counts")
	ps := flag.String("p", "4", "processor counts")
	clients := flag.Int("c", 0, "fixed client count (0 = heuristic per config)")
	txns := flag.Int("txns", 2400, "measured transactions")
	seed := flag.Int64("seed", 1, "random seed")
	machine := flag.String("machine", "xeon", "platform: xeon or itanium2")
	csv := flag.Bool("csv", false, "CSV output")
	flag.Parse()

	if *csv {
		fmt.Println("w,p,c,tps,ipx,useripx,osipx,cpi,usercpi,oscpi,mpi,usermpi,osmpi,util,osshare,readkb,writekb,logkb,ctxsw,bustime,busutil,cohershare,bufferhit,diskutil")
	}
	for _, p := range parseInts(*ps) {
		for _, w := range parseInts(*ws) {
			c := *clients
			if c == 0 {
				c = system.HeuristicClients(w, p)
			}
			cfg := system.DefaultConfig(w, c, p)
			cfg.Seed = *seed
			cfg.MeasureTxns = *txns
			if *machine == "itanium2" {
				cfg.Machine = system.Itanium2Quad()
			}
			m, err := system.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if *csv {
				fmt.Printf("%d,%d,%d,%.1f,%.0f,%.0f,%.0f,%.3f,%.3f,%.3f,%.5f,%.5f,%.5f,%.3f,%.3f,%.2f,%.2f,%.2f,%.2f,%.1f,%.3f,%.4f,%.4f,%.3f\n",
					m.Warehouses, m.Processors, m.Clients, m.TPS, m.IPX, m.UserIPX, m.OSIPX,
					m.CPI, m.UserCPI, m.OSCPI, m.MPI, m.UserMPI, m.OSMPI, m.CPUUtil, m.OSShare,
					m.ReadKBPerTxn, m.WriteKBPerTxn, m.LogKBPerTxn, m.CtxSwitchPerTxn,
					m.BusTime, m.BusUtil, m.CoherenceShare, m.BufferHitRatio, m.DiskUtil)
			} else {
				fmt.Println(m)
			}
		}
	}
}
