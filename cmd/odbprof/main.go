// Command odbprof drives the cycle-attribution profiler: capture a
// profile from a simulated run, render it as a per-phase CPI-breakdown
// table, folded flame-graph stacks or pprof-style text, and diff two
// profiles to expose attribution shifts (e.g. across the paper's
// cached-to-scaled pivot).
//
// Usage:
//
//	odbprof capture [-w warehouses] [-c clients] [-p processors]
//	                [-seed n] [-machine xeon|itanium2] [-txns n]
//	                [-o file] [-report]
//	odbprof report <profile.json>
//	odbprof folded <profile.json>
//	odbprof text   <profile.json>
//	odbprof diff   <a.json> <b.json>
//
// capture runs the simulator with profiling on and writes the profile
// as JSON (stdout with -o -); report prints the Figure 12-style event
// decomposition per engine phase; folded emits "txn;phase;mode cycles"
// lines for standard flame-graph tooling; text prints a flat pprof-like
// listing; diff compares two captured profiles frame by frame, largest
// attribution shift first.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"odbscale/internal/profile"
	"odbscale/internal/system"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("odbprof: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "capture":
		capture(os.Args[2:])
	case "report":
		render(os.Args[2:], func(p *profile.Profile) error { return p.WriteCPITable(os.Stdout) })
	case "folded":
		render(os.Args[2:], func(p *profile.Profile) error { return p.WriteFolded(os.Stdout) })
	case "text":
		render(os.Args[2:], func(p *profile.Profile) error { return p.WriteText(os.Stdout) })
	case "diff":
		diff(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: odbprof capture|report|folded|text|diff [args]")
	os.Exit(2)
}

// capture runs one profiled simulation and writes the profile.
func capture(args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	w := fs.Int("w", 100, "warehouses")
	c := fs.Int("c", 0, "concurrent clients (0 = heuristic)")
	p := fs.Int("p", 4, "processors")
	seed := fs.Int64("seed", 1, "random seed")
	machine := fs.String("machine", "xeon", "platform: xeon or itanium2")
	txns := fs.Int("txns", 2400, "measured transactions")
	warmup := fs.Int("warmup", -1, "warm-up transactions (-1 = default)")
	out := fs.String("o", "-", "output file for the profile JSON (- = stdout)")
	report := fs.Bool("report", false, "also print the CPI-breakdown table to stderr")
	fs.Parse(args)

	clients := *c
	if clients <= 0 {
		clients = system.HeuristicClients(*w, *p)
	}
	cfg := system.DefaultConfig(*w, clients, *p)
	cfg.Seed = *seed
	cfg.MeasureTxns = *txns
	if *warmup >= 0 {
		cfg.WarmupTxns = *warmup
	}
	switch *machine {
	case "xeon":
	case "itanium2":
		cfg.Machine = system.Itanium2Quad()
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	col := profile.NewCollector()
	m, err := system.Run(context.Background(), cfg, system.WithProfiler(col))
	if err != nil {
		log.Fatal(err)
	}
	prof := col.Profile()
	prof.Meta.Label = fmt.Sprintf("W=%d,C=%d,P=%d", *w, clients, *p)

	dst := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := prof.Encode(dst); err != nil {
		log.Fatal(err)
	}
	log.Printf("captured %s: %d txns, CPI=%.4f, L3 share=%.1f%%",
		prof.Meta.Label, m.Txns, prof.CPI(), prof.L3Share()*100)
	if *report {
		if err := prof.WriteCPITable(os.Stderr); err != nil {
			log.Fatal(err)
		}
	}
}

// load reads one profile from a path ("-" = stdin).
func load(path string) *profile.Profile {
	r := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	p, err := profile.Decode(r)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return p
}

// render applies one output format to a single profile argument.
func render(args []string, write func(*profile.Profile) error) {
	if len(args) != 1 {
		log.Fatal("expected exactly one profile file (or - for stdin)")
	}
	if err := write(load(args[0])); err != nil {
		log.Fatal(err)
	}
}

// diff compares two profiles. It always exits 0 on a successful
// comparison — attribution shifts are findings, not failures — so CI
// can run it against a golden baseline without breaking on the
// platform-dependent float drift Go permits across architectures.
func diff(args []string) {
	if len(args) != 2 {
		log.Fatal("expected two profile files")
	}
	d := profile.Diff(load(args[0]), load(args[1]))
	if err := d.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
