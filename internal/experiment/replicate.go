package experiment

import (
	"context"
	"fmt"

	"odbscale/internal/campaign"
	"odbscale/internal/stats"
	"odbscale/internal/system"
)

// Replication summarizes repeated measurements of one configuration
// under different seeds — the analogue of the paper's six-fold repeated
// EMON measurements, quantifying how much of any observed difference is
// run-to-run noise.
type Replication struct {
	Runs []system.Metrics

	TPS     stats.Summary
	CPI     stats.Summary
	MPI     stats.Summary
	IPX     stats.Summary
	CtxSw   stats.Summary
	BusTime stats.Summary
}

// CI95 returns the 95% confidence half-width of a metric's mean across
// the replicas.
func ci(xs []float64) float64 { return stats.CI95(xs) }

// TPSCI returns the 95% CI half-width of mean TPS.
func (r Replication) TPSCI() float64 { return ci(gather(r.Runs, tps)) }

// CPICI returns the 95% CI half-width of mean CPI.
func (r Replication) CPICI() float64 { return ci(gather(r.Runs, cpi)) }

// MPICI returns the 95% CI half-width of mean MPI.
func (r Replication) MPICI() float64 { return ci(gather(r.Runs, mpi)) }

func tps(m system.Metrics) float64 { return m.TPS }
func cpi(m system.Metrics) float64 { return m.CPI }
func mpi(m system.Metrics) float64 { return m.MPI }

func gather(ms []system.Metrics, f func(system.Metrics) float64) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = f(m)
	}
	return out
}

// Replicate runs one configuration n times with consecutive seeds and
// summarizes the spread. The configuration's own seed is the first.
func Replicate(cfg system.Config, n int) (Replication, error) {
	return ReplicateContext(context.Background(), cfg, n)
}

// ReplicateContext is Replicate under a context: the n seeded runs are
// submitted together through the campaign worker pool and execute
// concurrently (each run is an isolated deterministic simulation, so
// the summary is identical to the serial one).
func ReplicateContext(ctx context.Context, cfg system.Config, n int) (Replication, error) {
	if n < 2 {
		return Replication{}, fmt.Errorf("experiment: need at least 2 replicas, got %d", n)
	}
	cfgs := make([]system.Config, n)
	for i := range cfgs {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		cfgs[i] = c
	}
	runs, err := campaign.RunAll(ctx, 0, cfgs)
	if err != nil {
		return Replication{}, fmt.Errorf("experiment: replicate: %w", err)
	}
	r := Replication{Runs: runs}
	r.TPS = stats.Summarize(gather(r.Runs, tps))
	r.CPI = stats.Summarize(gather(r.Runs, cpi))
	r.MPI = stats.Summarize(gather(r.Runs, mpi))
	r.IPX = stats.Summarize(gather(r.Runs, func(m system.Metrics) float64 { return m.IPX }))
	r.CtxSw = stats.Summarize(gather(r.Runs, func(m system.Metrics) float64 { return m.CtxSwitchPerTxn }))
	r.BusTime = stats.Summarize(gather(r.Runs, func(m system.Metrics) float64 { return m.BusTime }))
	return r, nil
}

// String renders the key spreads.
func (r Replication) String() string {
	return fmt.Sprintf("n=%d TPS=%.0f±%.0f CPI=%.3f±%.3f MPI=%.5f±%.5f",
		len(r.Runs), r.TPS.Mean, r.TPSCI(), r.CPI.Mean, r.CPICI(), r.MPI.Mean, r.MPICI())
}
