package experiment

import (
	"strings"
	"testing"
)

// fastOptions returns a campaign small enough for unit tests.
func fastOptions() Options {
	o := Defaults()
	o.WarmupTxns = 200
	o.MeasureTxns = 500
	o.TuneTxns = 300
	o.MaxClients = 48
	return o
}

var testWs = []int{10, 40, 120, 360}

func collect(t *testing.T, o Options, ps []int) *SweepSet {
	t.Helper()
	set, err := o.CollectSweeps(testWs, ps)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestTuneClientsReachesTarget(t *testing.T) {
	o := fastOptions()
	c, err := o.TuneClients(40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c < o.MinClients || c > o.MaxClients {
		t.Fatalf("tuned clients = %d outside [%d, %d]", c, o.MinClients, o.MaxClients)
	}
	m, err := o.RunPoint(40, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The tuning measurement is shorter than the final one, so allow some
	// slack; a maxed-out client count means the point is I/O bound.
	if m.CPUUtil < o.TargetUtil-0.10 && m.Clients < o.MaxClients {
		t.Fatalf("tuned utilization = %v below target with %d clients", m.CPUUtil, m.Clients)
	}
}

func TestClientsGrowWithWarehousesAndProcessors(t *testing.T) {
	// The paper's Table 1 trend: more warehouses (more I/O) and more
	// processors require more clients to stay above 90% utilization.
	o := fastOptions()
	c10p1, err := o.TuneClients(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	c360p4, err := o.TuneClients(360, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c360p4 <= c10p1 {
		t.Fatalf("clients did not grow: 10W/1P=%d vs 360W/4P=%d", c10p1, c360p4)
	}
}

func TestSweepOrdering(t *testing.T) {
	o := fastOptions()
	o.AutoTune = false
	ms, err := o.Sweep(testWs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(testWs) {
		t.Fatalf("sweep returned %d points", len(ms))
	}
	for i, m := range ms {
		if m.Warehouses != testWs[i] || m.Processors != 2 {
			t.Fatalf("point %d = W%d P%d", i, m.Warehouses, m.Processors)
		}
		if m.Txns == 0 {
			t.Fatalf("point %d measured no transactions", i)
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	o := fastOptions()
	o.AutoTune = false
	a, err := o.Sweep([]int{25}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Sweep([]int{25}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].TPS != b[0].TPS || a[0].CPI != b[0].CPI {
		t.Fatalf("same seed produced different results: %v vs %v", a[0], b[0])
	}
}

func TestFiguresAssemble(t *testing.T) {
	o := fastOptions()
	o.AutoTune = false
	set := collect(t, o, []int{1, 4})

	t1 := Table1(set)
	if len(t1.Rows) != len(testWs) || len(t1.Header) != 3 {
		t.Fatalf("Table 1 shape: %d rows, %d cols", len(t1.Rows), len(t1.Header))
	}

	f2 := Figure2(set)
	if len(f2) != 2 || f2[0].Len() != len(testWs) {
		t.Fatalf("Figure 2 shape: %d series", len(f2))
	}

	f3 := Figure3(set)
	if len(f3) != 2 {
		t.Fatalf("Figure 3 series = %d", len(f3))
	}
	for i := range f3[0].Points {
		total := f3[0].Points[i].Y + f3[1].Points[i].Y
		if total > 1.001 {
			t.Fatalf("utilization split exceeds 1: %v", total)
		}
	}

	f7 := Figure7(set)
	if len(f7) != 3 {
		t.Fatalf("Figure 7 series = %d", len(f7))
	}

	f12 := Figure12(set)
	if len(f12.Rows) != len(testWs) {
		t.Fatalf("Figure 12 rows = %d", len(f12.Rows))
	}

	out := RenderSeries("Figure 2", f2, 1)
	if !strings.Contains(out, "Warehouses") || !strings.Contains(out, "TPS 1P") {
		t.Fatalf("render missing headers:\n%s", out)
	}
}

func TestCharacterizeAndTable5(t *testing.T) {
	o := fastOptions()
	o.AutoTune = false
	set := collect(t, o, []int{4})
	c, err := set.Characterize(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.CPI.Pivot() <= 0 || c.CPI.Pivot() > 400 {
		t.Fatalf("CPI pivot = %v", c.CPI.Pivot())
	}
	t5, err := Table5(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 1 {
		t.Fatalf("Table 5 rows = %d", len(t5.Rows))
	}
}

func TestFigure19Itanium(t *testing.T) {
	o := fastOptions()
	o.AutoTune = false
	cpi, char, err := Figure19(o, testWs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cpi.Len() != len(testWs) {
		t.Fatalf("series length = %d", cpi.Len())
	}
	if char.CPI.Pivot() <= 0 {
		t.Fatalf("pivot = %v", char.CPI.Pivot())
	}
	// The larger L3 keeps small configurations cheap: CPI at the smallest
	// point must undercut the Xeon platform's.
	xeon, err := o.RunPoint(testWs[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if cpi.Points[0].Y >= xeon.CPI {
		t.Fatalf("Itanium CPI %v >= Xeon %v at %dW", cpi.Points[0].Y, xeon.CPI, testWs[0])
	}
}
