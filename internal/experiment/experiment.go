// Package experiment drives the paper's evaluation: it tunes client
// counts to the ≥90% CPU-utilization methodology (Table 1), runs
// warehouse × processor sweeps, and assembles the data series behind
// every figure and table in Sections 4-6.
//
// The orchestration itself lives in the campaign package: Sweep and
// CollectSweeps are thin compatibility wrappers that convert Options
// into a campaign.Spec and run it through the shared worker pool, and
// Replicate submits its seeded runs through the same pool.
package experiment

import (
	"context"

	"odbscale/internal/campaign"
	"odbscale/internal/system"
)

// Options configures a measurement campaign.
type Options struct {
	Machine system.MachineConfig
	Tuning  system.Tuning
	// Engine names the storage engine every run executes on; empty means
	// the default B-tree engine.
	Engine      string
	Seed        int64
	WarmupTxns  int
	MeasureTxns int

	// TargetUtil is the CPU utilization the client tuner must reach
	// (the paper keeps every configuration above 90%).
	TargetUtil float64
	MinClients int
	MaxClients int

	// AutoTune enables the client tuner; otherwise the heuristic is used.
	AutoTune bool
	// TuneTxns is the (smaller) measurement length used during tuning.
	TuneTxns int

	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
}

// Defaults returns the paper-equivalent campaign settings on the Xeon
// platform.
func Defaults() Options {
	return Options{
		Machine:     system.XeonQuad(),
		Tuning:      system.DefaultTuning(),
		Seed:        1,
		WarmupTxns:  600,
		MeasureTxns: 2400,
		TargetUtil:  0.90,
		MinClients:  8,
		MaxClients:  64,
		AutoTune:    true,
		TuneTxns:    1200,
		Parallelism: 0,
	}
}

// StandardWarehouses is the sweep used for the paper's figures; the
// paper's measured range is 10 to 800 with the I/O-bound 1200 point shown
// only in Figure 2.
var StandardWarehouses = []int{10, 25, 50, 100, 150, 200, 300, 400, 500, 650, 800}

// StandardProcessors are the paper's three processor configurations.
var StandardProcessors = []int{1, 2, 4}

func (o Options) config(w, c, p, txns int) system.Config {
	return system.Config{
		Warehouses:  w,
		Clients:     c,
		Processors:  p,
		Seed:        o.Seed,
		Engine:      o.Engine,
		Machine:     o.Machine,
		Tuning:      o.Tuning,
		Coherent:    true,
		WarmupTxns:  o.WarmupTxns,
		MeasureTxns: txns,
	}
}

// CampaignSpec converts the options into a campaign specification over
// the given warehouse and processor axes — the redesigned entry point
// to sweeps. The spec warm-starts tuner searches and can be extended
// with a checkpoint path and an observer before handing it to
// campaign.Run (or the odbscale.RunCampaign facade).
func (o Options) CampaignSpec(ws, ps []int) campaign.Spec {
	return campaign.Spec{
		Machine:     o.Machine,
		Engine:      o.Engine,
		Tuning:      o.Tuning,
		Seed:        o.Seed,
		WarmupTxns:  o.WarmupTxns,
		MeasureTxns: o.MeasureTxns,
		TuneTxns:    o.TuneTxns,
		TargetUtil:  o.TargetUtil,
		MinClients:  o.MinClients,
		MaxClients:  o.MaxClients,
		AutoTune:    o.AutoTune,
		WarmStart:   true,
		Parallelism: o.Parallelism,
		Warehouses:  append([]int(nil), ws...),
		Processors:  append([]int(nil), ps...),
	}
}

// TuneClients finds the smallest client count in [MinClients, MaxClients]
// that reaches TargetUtil for the configuration, following the paper's
// methodology of masking disk latency with concurrency. If even
// MaxClients cannot reach the target (an I/O-bound setup), MaxClients is
// returned with its achieved utilization.
func (o Options) TuneClients(w, p int) (int, error) {
	probe := func(c int) (float64, error) {
		m, err := system.Run(context.Background(), o.config(w, c, p, o.TuneTxns))
		if err != nil {
			return 0, err
		}
		return m.CPUUtil, nil
	}
	return campaign.Tune(probe, campaign.Bounds{
		Min:    o.MinClients,
		Max:    o.MaxClients,
		Start:  o.MinClients,
		Target: o.TargetUtil,
	})
}

// RunPoint measures one (warehouses, processors) configuration with a
// tuned or heuristic client count.
func (o Options) RunPoint(w, p int) (system.Metrics, error) {
	c := system.HeuristicClients(w, p)
	if o.AutoTune {
		tuned, err := o.TuneClients(w, p)
		if err != nil {
			return system.Metrics{}, err
		}
		c = tuned
	}
	return system.Run(context.Background(), o.config(w, c, p, o.MeasureTxns))
}

// Sweep measures every warehouse count for one processor configuration.
// It is a compatibility wrapper over the campaign runner, which
// schedules the points (and any tuner probes) on one bounded pool.
func (o Options) Sweep(ws []int, p int) ([]system.Metrics, error) {
	set, err := o.CollectSweeps(ws, []int{p})
	if err != nil {
		return nil, err
	}
	return set.ByP[p], nil
}

// SweepSet is a full campaign: one sweep per processor configuration.
type SweepSet struct {
	Warehouses []int
	Processors []int
	ByP        map[int][]system.Metrics
}

// SweepSetFrom arranges a campaign result into the SweepSet container
// the figure and table assemblers consume.
func SweepSetFrom(res *campaign.Result) *SweepSet {
	set := &SweepSet{
		Warehouses: res.Warehouses,
		Processors: res.Processors,
		ByP:        make(map[int][]system.Metrics),
	}
	for _, p := range res.Processors {
		set.ByP[p] = res.Series(p)
	}
	return set
}

// CollectSweeps runs the full campaign. It is a compatibility wrapper
// over the campaign runner; use CollectSweepsContext (or campaign.Run
// directly) for cancellation, checkpointing and progress observation.
func (o Options) CollectSweeps(ws, ps []int) (*SweepSet, error) {
	return o.CollectSweepsContext(context.Background(), ws, ps)
}

// CollectSweepsContext runs the full campaign under a context.
func (o Options) CollectSweepsContext(ctx context.Context, ws, ps []int) (*SweepSet, error) {
	res, err := campaign.Run(ctx, o.CampaignSpec(ws, ps))
	if err != nil {
		return nil, err
	}
	return SweepSetFrom(res), nil
}
