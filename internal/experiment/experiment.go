// Package experiment drives the paper's evaluation: it tunes client
// counts to the ≥90% CPU-utilization methodology (Table 1), runs
// warehouse × processor sweeps, and assembles the data series behind
// every figure and table in Sections 4-6.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"odbscale/internal/system"
)

// Options configures a measurement campaign.
type Options struct {
	Machine     system.MachineConfig
	Tuning      system.Tuning
	Seed        int64
	WarmupTxns  int
	MeasureTxns int

	// TargetUtil is the CPU utilization the client tuner must reach
	// (the paper keeps every configuration above 90%).
	TargetUtil float64
	MinClients int
	MaxClients int

	// AutoTune enables the client tuner; otherwise the heuristic is used.
	AutoTune bool
	// TuneTxns is the (smaller) measurement length used during tuning.
	TuneTxns int

	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
}

// Defaults returns the paper-equivalent campaign settings on the Xeon
// platform.
func Defaults() Options {
	return Options{
		Machine:     system.XeonQuad(),
		Tuning:      system.DefaultTuning(),
		Seed:        1,
		WarmupTxns:  600,
		MeasureTxns: 2400,
		TargetUtil:  0.90,
		MinClients:  8,
		MaxClients:  64,
		AutoTune:    true,
		TuneTxns:    1200,
		Parallelism: 0,
	}
}

// StandardWarehouses is the sweep used for the paper's figures; the
// paper's measured range is 10 to 800 with the I/O-bound 1200 point shown
// only in Figure 2.
var StandardWarehouses = []int{10, 25, 50, 100, 150, 200, 300, 400, 500, 650, 800}

// StandardProcessors are the paper's three processor configurations.
var StandardProcessors = []int{1, 2, 4}

func (o Options) config(w, c, p, txns int) system.Config {
	return system.Config{
		Warehouses:  w,
		Clients:     c,
		Processors:  p,
		Seed:        o.Seed,
		Machine:     o.Machine,
		Tuning:      o.Tuning,
		Coherent:    true,
		WarmupTxns:  o.WarmupTxns,
		MeasureTxns: txns,
	}
}

// TuneClients finds the smallest client count in [MinClients, MaxClients]
// that reaches TargetUtil for the configuration, following the paper's
// methodology of masking disk latency with concurrency. If even
// MaxClients cannot reach the target (an I/O-bound setup), MaxClients is
// returned with its achieved utilization.
func (o Options) TuneClients(w, p int) (int, error) {
	util := func(c int) (float64, error) {
		m, err := system.Run(o.config(w, c, p, o.TuneTxns))
		if err != nil {
			return 0, err
		}
		return m.CPUUtil, nil
	}
	lo, hi := o.MinClients, o.MinClients
	u, err := util(hi)
	if err != nil {
		return 0, err
	}
	if u >= o.TargetUtil {
		return hi, nil
	}
	// Exponential search for an upper bound.
	for hi < o.MaxClients {
		lo = hi
		hi *= 2
		if hi > o.MaxClients {
			hi = o.MaxClients
		}
		if u, err = util(hi); err != nil {
			return 0, err
		}
		if u >= o.TargetUtil {
			break
		}
	}
	if u < o.TargetUtil {
		return o.MaxClients, nil // I/O bound: best effort
	}
	// Binary refinement for the minimal satisfying count.
	for lo+1 < hi {
		mid := (lo + hi) / 2
		u, err := util(mid)
		if err != nil {
			return 0, err
		}
		if u >= o.TargetUtil {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// RunPoint measures one (warehouses, processors) configuration with a
// tuned or heuristic client count.
func (o Options) RunPoint(w, p int) (system.Metrics, error) {
	c := system.HeuristicClients(w, p)
	if o.AutoTune {
		tuned, err := o.TuneClients(w, p)
		if err != nil {
			return system.Metrics{}, err
		}
		c = tuned
	}
	return system.Run(o.config(w, c, p, o.MeasureTxns))
}

// Sweep measures every warehouse count for one processor configuration,
// running points in parallel.
func (o Options) Sweep(ws []int, p int) ([]system.Metrics, error) {
	out := make([]system.Metrics, len(ws))
	errs := make([]error, len(ws))
	par := o.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i, w int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = o.RunPoint(w, p)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: W=%d P=%d: %w", ws[i], p, err)
		}
	}
	return out, nil
}

// SweepSet is a full campaign: one sweep per processor configuration.
type SweepSet struct {
	Warehouses []int
	Processors []int
	ByP        map[int][]system.Metrics
}

// CollectSweeps runs the full campaign.
func (o Options) CollectSweeps(ws, ps []int) (*SweepSet, error) {
	set := &SweepSet{Warehouses: ws, Processors: ps, ByP: make(map[int][]system.Metrics)}
	for _, p := range ps {
		ms, err := o.Sweep(ws, p)
		if err != nil {
			return nil, err
		}
		set.ByP[p] = ms
	}
	return set, nil
}
