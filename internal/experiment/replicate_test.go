package experiment

import (
	"strings"
	"testing"

	"odbscale/internal/system"
)

func TestReplicateSpread(t *testing.T) {
	cfg := system.DefaultConfig(40, 12, 2)
	cfg.WarmupTxns = 150
	cfg.MeasureTxns = 400
	r, err := Replicate(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 4 {
		t.Fatalf("replicas = %d", len(r.Runs))
	}
	// Different seeds must differ, but only by noise: the CI should be a
	// small fraction of the mean for a frequent metric.
	if r.TPS.StdDev == 0 {
		t.Fatal("replicas identical across seeds")
	}
	if r.TPSCI() > 0.1*r.TPS.Mean {
		t.Fatalf("TPS spread too large: %v ± %v", r.TPS.Mean, r.TPSCI())
	}
	if r.CPICI() > 0.1*r.CPI.Mean || r.MPICI() > 0.15*r.MPI.Mean {
		t.Fatalf("CPI/MPI spread too large: %s", r)
	}
	if !strings.Contains(r.String(), "n=4") {
		t.Fatalf("String = %q", r.String())
	}
}

func TestReplicateErrors(t *testing.T) {
	if _, err := Replicate(system.Config{}, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Replicate(system.Config{}, 3); err == nil {
		t.Fatal("bad config accepted")
	}
}
