package experiment

import (
	"fmt"

	"odbscale/internal/core"
	"odbscale/internal/stats"
	"odbscale/internal/system"
)

// MaxBalancedWarehouses is the largest configuration the paper keeps in
// its analysis: beyond it the system is I/O bound and CPU utilization
// cannot be held above 90% (their 1200-warehouse point appears only in
// Figure 2).
const MaxBalancedWarehouses = 800

// balanced filters a sweep to the ≤800-warehouse analysis range.
func balanced(ms []system.Metrics) []system.Metrics {
	out := ms[:0:0]
	for _, m := range ms {
		if m.Warehouses <= MaxBalancedWarehouses {
			out = append(out, m)
		}
	}
	return out
}

// series extracts one metric across a sweep.
func series(name string, ms []system.Metrics, f func(system.Metrics) float64) stats.Series {
	s := stats.Series{Name: name}
	for _, m := range ms {
		s.Add(float64(m.Warehouses), f(m))
	}
	s.Sort()
	return s
}

// perP builds one series per processor configuration.
func perP(set *SweepSet, metric string, f func(system.Metrics) float64, includeIOBound bool) []stats.Series {
	var out []stats.Series
	for _, p := range set.Processors {
		ms := set.ByP[p]
		if !includeIOBound {
			ms = balanced(ms)
		}
		out = append(out, series(fmt.Sprintf("%s %dP", metric, p), ms, f))
	}
	return out
}

// Table1 reports the tuned client counts per configuration — the paper's
// Table 1, "Number of Clients at 90% CPU Utilization".
func Table1(set *SweepSet) stats.Table {
	t := stats.Table{Title: "Table 1: Number of Clients at 90% CPU Utilization",
		Header: []string{"Warehouses"}}
	for _, p := range set.Processors {
		t.Header = append(t.Header, fmt.Sprintf("%dP", p))
	}
	for i, w := range set.Warehouses {
		if w > MaxBalancedWarehouses {
			continue
		}
		row := []string{fmt.Sprintf("%d", w)}
		for _, p := range set.Processors {
			row = append(row, fmt.Sprintf("%d", set.ByP[p][i].Clients))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure2 returns TPS versus warehouses per processor count, including
// any I/O-bound points in the sweep.
func Figure2(set *SweepSet) []stats.Series {
	return perP(set, "TPS", func(m system.Metrics) float64 { return m.TPS }, true)
}

// Figure3 returns the CPU utilization split between OS and user code for
// the largest processor configuration.
func Figure3(set *SweepSet) []stats.Series {
	p := set.Processors[len(set.Processors)-1]
	ms := balanced(set.ByP[p])
	osShare := series("OS share", ms, func(m system.Metrics) float64 { return m.CPUUtil * m.OSShare })
	userShare := series("User share", ms, func(m system.Metrics) float64 { return m.CPUUtil * (1 - m.OSShare) })
	return []stats.Series{userShare, osShare}
}

// Figure4 returns total IPX (instructions per transaction) per P.
func Figure4(set *SweepSet) []stats.Series {
	return perP(set, "IPX", func(m system.Metrics) float64 { return m.IPX }, false)
}

// Figure5 returns user-space IPX per P (flat in the paper).
func Figure5(set *SweepSet) []stats.Series {
	return perP(set, "UserIPX", func(m system.Metrics) float64 { return m.UserIPX }, false)
}

// Figure6 returns OS-space IPX per P (rising with I/O).
func Figure6(set *SweepSet) []stats.Series {
	return perP(set, "OSIPX", func(m system.Metrics) float64 { return m.OSIPX }, false)
}

// Figure7 returns disk traffic per transaction in KB: reads, data writes
// and log writes, for the largest processor configuration.
func Figure7(set *SweepSet) []stats.Series {
	p := set.Processors[len(set.Processors)-1]
	ms := balanced(set.ByP[p])
	return []stats.Series{
		series("Read KB/txn", ms, func(m system.Metrics) float64 { return m.ReadKBPerTxn }),
		series("Write KB/txn", ms, func(m system.Metrics) float64 { return m.WriteKBPerTxn }),
		series("Log KB/txn", ms, func(m system.Metrics) float64 { return m.LogKBPerTxn }),
	}
}

// Figure8 returns context switches per transaction per P.
func Figure8(set *SweepSet) []stats.Series {
	return perP(set, "CtxSw", func(m system.Metrics) float64 { return m.CtxSwitchPerTxn }, false)
}

// Figure9 returns overall CPI per P.
func Figure9(set *SweepSet) []stats.Series {
	return perP(set, "CPI", func(m system.Metrics) float64 { return m.CPI }, false)
}

// Figure10 returns user-space CPI per P.
func Figure10(set *SweepSet) []stats.Series {
	return perP(set, "UserCPI", func(m system.Metrics) float64 { return m.UserCPI }, false)
}

// Figure11 returns OS-space CPI per P.
func Figure11(set *SweepSet) []stats.Series {
	return perP(set, "OSCPI", func(m system.Metrics) float64 { return m.OSCPI }, false)
}

// Figure12 returns the CPI breakdown by microarchitectural component for
// the largest processor configuration, one row per warehouse count.
func Figure12(set *SweepSet) stats.Table {
	p := set.Processors[len(set.Processors)-1]
	t := stats.Table{
		Title:  fmt.Sprintf("Figure 12: CPI breakdown by event (%dP)", p),
		Header: []string{"Warehouses", "Inst", "Branch", "TLB", "TC", "L2", "L3", "Other", "Total", "L3 share"},
	}
	for _, m := range balanced(set.ByP[p]) {
		b := m.Breakdown
		t.AddRow(fmt.Sprintf("%d", m.Warehouses),
			stats.F(b.Inst, 3), stats.F(b.Branch, 3), stats.F(b.TLB, 3), stats.F(b.TC, 3),
			stats.F(b.L2, 3), stats.F(b.L3, 3), stats.F(b.Other, 3), stats.F(b.Total(), 3),
			stats.F(b.L3/b.Total(), 3))
	}
	return t
}

// Figure13 returns overall L3 MPI per P.
func Figure13(set *SweepSet) []stats.Series {
	return perP(set, "MPI", func(m system.Metrics) float64 { return m.MPI }, false)
}

// Figure14 returns user-space MPI per P.
func Figure14(set *SweepSet) []stats.Series {
	return perP(set, "UserMPI", func(m system.Metrics) float64 { return m.UserMPI }, false)
}

// Figure15 returns OS-space MPI per P.
func Figure15(set *SweepSet) []stats.Series {
	return perP(set, "OSMPI", func(m system.Metrics) float64 { return m.OSMPI }, false)
}

// Figure16 returns the mean IOQ bus-transaction time per P.
func Figure16(set *SweepSet) []stats.Series {
	return perP(set, "BusTime", func(m system.Metrics) float64 { return m.BusTime }, false)
}

// Characterize fits the two-region scaling model for one processor
// configuration (Figures 17 and 18).
func (set *SweepSet) Characterize(p int) (core.Characterization, error) {
	ms := balanced(set.ByP[p])
	cpi := series("CPI", ms, func(m system.Metrics) float64 { return m.CPI })
	mpi := series("MPI", ms, func(m system.Metrics) float64 { return m.MPI })
	return core.Characterize(p, cpi, mpi)
}

// Table5 reports the CPI and MPI pivot points for every processor
// configuration.
func Table5(set *SweepSet) (stats.Table, error) {
	t := stats.Table{Title: "Table 5: Number of Warehouses for Pivot Points",
		Header: []string{"Processors", "CPI", "MPI"}}
	for _, p := range set.Processors {
		c, err := set.Characterize(p)
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprintf("%dP", p), stats.F(c.CPI.Pivot(), 0), stats.F(c.MPI.Pivot(), 0))
	}
	return t, nil
}

// Figure19 runs the Itanium2 validation sweep (Section 6.3) at the
// largest processor count and returns the CPI series with its pivot.
func Figure19(o Options, ws []int, p int) (stats.Series, core.Characterization, error) {
	o.Machine = system.Itanium2Quad()
	ms, err := o.Sweep(ws, p)
	if err != nil {
		return stats.Series{}, core.Characterization{}, err
	}
	ms = balanced(ms)
	cpi := series(fmt.Sprintf("Itanium2 CPI %dP", p), ms, func(m system.Metrics) float64 { return m.CPI })
	mpi := series("MPI", ms, func(m system.Metrics) float64 { return m.MPI })
	c, err := core.Characterize(p, cpi, mpi)
	if err != nil {
		return cpi, core.Characterization{}, err
	}
	return cpi, c, nil
}

// RenderSeries formats figure series as an aligned table keyed by
// warehouse count.
func RenderSeries(title string, series []stats.Series, decimals int) string {
	t := stats.Table{Title: title, Header: []string{"Warehouses"}}
	for _, s := range series {
		t.Header = append(t.Header, s.Name)
	}
	if len(series) == 0 {
		return t.String()
	}
	for _, pt := range series[0].Points {
		row := []string{fmt.Sprintf("%.0f", pt.X)}
		for _, s := range series {
			if y, ok := s.At(pt.X); ok {
				row = append(row, stats.F(y, decimals))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}
