package workload

import (
	"testing"

	"odbscale/internal/bus"
	"odbscale/internal/cache"
	"odbscale/internal/odb"
	"odbscale/internal/xrand"
)

const testScale = 64

func testSynth(cpus int, seed int64) *Synth {
	g := ScaledGeometry(cache.XeonGeometry(1), testScale)
	d := cache.NewDomain(g, cpus, true)
	b := bus.New(bus.DefaultConfig(), float64(testScale))
	return New(DefaultConfig(testScale), d, b, xrand.New(seed))
}

func blocks(ids ...uint64) []odb.BlockID {
	out := make([]odb.BlockID, len(ids))
	for i, id := range ids {
		out[i] = odb.BlockID(id)
	}
	return out
}

func TestScaledGeometry(t *testing.T) {
	g := ScaledGeometry(cache.XeonGeometry(1), 64)
	if g.L3Size != (1<<20)/64 {
		t.Fatalf("scaled L3 = %d", g.L3Size)
	}
	if g.L2Size != (256<<10)/64 {
		t.Fatalf("scaled L2 = %d", g.L2Size)
	}
	if g.Sample != 1 {
		t.Fatal("scaled geometry must not hash-filter")
	}
	// Must construct without panicking, including the tiny TC.
	cache.NewDomain(g, 4, true)

	it := ScaledGeometry(cache.Itanium2Geometry(1), 64)
	if it.L3Size != 3<<20>>6 {
		t.Fatalf("scaled Itanium L3 = %d", it.L3Size)
	}
	cache.NewDomain(it, 4, true)
}

func TestEventCountsScale(t *testing.T) {
	s := testSynth(1, 1)
	ev := s.Run(ChunkSpec{Instr: 1_000_000, Blocks: blocks(1, 2, 3)})
	// Expected scaled counts: data = 1e6*0.3/64 ~ 4687, fetch ~977,
	// branches ~3125.
	approx := func(got uint64, want float64, name string) {
		if float64(got) < want*0.8 || float64(got) > want*1.2 {
			t.Fatalf("%s = %d, want ~%.0f", name, got, want)
		}
	}
	approx(ev.DataRefs, 1e6*0.045/testScale, "DataRefs")
	approx(ev.FetchRefs, 1e6/56.0/testScale, "FetchRefs")
	approx(ev.Branches, 1e6*0.20/testScale, "Branches")
}

func TestMispredictRateRealistic(t *testing.T) {
	s := testSynth(1, 2)
	var br, mp uint64
	for i := 0; i < 150; i++ {
		ev := s.Run(ChunkSpec{Instr: 200_000, Blocks: blocks(uint64(i))})
		if i < 50 {
			continue // predictor warm-up
		}
		br += ev.Branches
		mp += ev.Mispred
	}
	rate := float64(mp) / float64(br)
	if rate < 0.01 || rate > 0.15 {
		t.Fatalf("branch mispredict rate = %v, want a few percent", rate)
	}
}

func TestMPIGrowsWithHotSet(t *testing.T) {
	// The core mechanism of the paper's Figure 13: the structural hot set
	// grows with the warehouse count; once it exceeds the L3 capacity the
	// miss ratio climbs, then saturates.
	missRate := func(hotSetBytes int, seed int64) float64 {
		g := ScaledGeometry(cache.XeonGeometry(1), testScale)
		d := cache.NewDomain(g, 1, true)
		b := bus.New(bus.DefaultConfig(), float64(testScale))
		cfg := DefaultConfig(testScale)
		cfg.HotSetBytes = hotSetBytes
		s := New(cfg, d, b, xrand.New(seed))
		rng := xrand.New(seed + 100)
		var miss, refs uint64
		for i := 0; i < 400; i++ {
			bl := make([]odb.BlockID, 12)
			for j := range bl {
				bl[j] = odb.BlockID(rng.Intn(100000))
			}
			ev := s.Run(ChunkSpec{Instr: 100_000, Blocks: bl})
			if i < 100 {
				continue // warm up
			}
			miss += ev.L3Miss
			refs += ev.DataRefs + ev.FetchRefs
		}
		return float64(miss) / float64(refs)
	}
	small := missRate(200<<10, 3) // 10-warehouse-scale hot set: resident
	large := missRate(16<<20, 3)  // 800-warehouse-scale: far exceeds L3
	if large <= small*1.5 {
		t.Fatalf("L3 miss ratio did not grow with hot set: %v -> %v", small, large)
	}
}

func TestOSChunksMissLessThanUserAtScale(t *testing.T) {
	// Kernel footprint is small and hot: once warm, OS-mode chunks should
	// have a lower miss ratio than user chunks over a huge block universe.
	s := testSynth(1, 4)
	rng := xrand.New(5)
	warm := func(os bool, n int) float64 {
		var miss, refs uint64
		for i := 0; i < n; i++ {
			bl := make([]odb.BlockID, 10)
			for j := range bl {
				bl[j] = odb.BlockID(rng.Intn(100_000))
			}
			ev := s.Run(ChunkSpec{Instr: 50_000, OS: os, Blocks: bl})
			if i > n/4 { // skip cold start
				miss += ev.L3Miss
				refs += ev.DataRefs + ev.FetchRefs
			}
		}
		return float64(miss) / float64(refs)
	}
	user := warm(false, 300)
	os := warm(true, 300)
	if os >= user {
		t.Fatalf("OS miss ratio %v >= user %v", os, user)
	}
}

func TestCoherenceTrafficExists(t *testing.T) {
	// Two CPUs touching the same blocks' headers must produce some
	// coherence misses — but far fewer than capacity misses (the paper's
	// "unexpected" finding).
	s := testSynth(2, 6)
	rng := xrand.New(7)
	var coher, l3 uint64
	for i := 0; i < 600; i++ {
		bl := make([]odb.BlockID, 8)
		for j := range bl {
			bl[j] = odb.BlockID(rng.Intn(50_000))
		}
		ev := s.Run(ChunkSpec{CPU: i % 2, ProcID: i % 4, Instr: 50_000, Blocks: bl})
		coher += ev.CoherMiss
		l3 += ev.L3Miss
	}
	if coher == 0 {
		t.Fatal("no coherence misses at all")
	}
	if float64(coher)/float64(l3) > 0.15 {
		t.Fatalf("coherence misses %.1f%% of L3 misses, want small", 100*float64(coher)/float64(l3))
	}
}

func TestTLBFlushIncreasesMisses(t *testing.T) {
	s := testSynth(1, 8)
	spec := ChunkSpec{Instr: 100_000, Blocks: blocks(1, 2, 3, 4)}
	s.Run(spec) // warm
	warmEv := s.Run(spec)
	s.FlushTLB(0)
	coldEv := s.Run(spec)
	if coldEv.TLBMiss <= warmEv.TLBMiss {
		t.Fatalf("flush did not raise TLB misses: %d <= %d", coldEv.TLBMiss, warmEv.TLBMiss)
	}
}

func TestBusSeesL3Misses(t *testing.T) {
	g := ScaledGeometry(cache.XeonGeometry(1), testScale)
	d := cache.NewDomain(g, 1, true)
	b := bus.New(bus.DefaultConfig(), float64(testScale))
	s := New(DefaultConfig(testScale), d, b, xrand.New(9))
	b.ResetStats(0)
	rng := xrand.New(10)
	var l3 uint64
	for i := 0; i < 50; i++ {
		bl := make([]odb.BlockID, 10)
		for j := range bl {
			bl[j] = odb.BlockID(rng.Intn(100_000))
		}
		l3 += s.Run(ChunkSpec{Instr: 100_000, Blocks: bl}).L3Miss
	}
	st := b.StatsAt(1)
	if st.Transactions != l3 {
		t.Fatalf("bus transactions %d != L3 misses %d", st.Transactions, l3)
	}
	if l3 == 0 {
		t.Fatal("no L3 misses generated")
	}
}

func TestPGAIsolationBetweenProcesses(t *testing.T) {
	// Different processes must use disjoint PGA regions: alternating
	// processes should evict each other and miss more than one process
	// running alone.
	missOf := func(procs int, seed int64) uint64 {
		s := testSynth(1, seed)
		var miss uint64
		for i := 0; i < 200; i++ {
			ev := s.Run(ChunkSpec{ProcID: i % procs, Instr: 100_000})
			if i >= 50 {
				miss += ev.L3Miss
			}
		}
		return miss
	}
	alone := missOf(1, 11)
	many := missOf(16, 11)
	if many <= alone {
		t.Fatalf("process interleaving did not disturb caches: %d <= %d", many, alone)
	}
}

func TestZeroScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	g := ScaledGeometry(cache.XeonGeometry(1), 64)
	d := cache.NewDomain(g, 1, true)
	New(Config{}, d, bus.New(bus.DefaultConfig(), 1), xrand.New(1))
}

func TestAccessorCoverage(t *testing.T) {
	s := testSynth(2, 12)
	if s.Scale() != testScale {
		t.Fatalf("Scale = %d", s.Scale())
	}
	if len(s.TLBs()) != 2 || len(s.Predictors()) != 2 {
		t.Fatal("per-CPU model counts wrong")
	}
}
