// Package workload synthesizes the memory-reference, branch and TLB
// activity of executed instruction chunks and drives the cache hierarchy,
// bus, branch predictors and TLBs with it.
//
// Simulating every reference of a million-instruction transaction is
// infeasible, so the synthesizer uses scaled-system simulation: every
// footprint (code, SGA metadata, block payloads, private process memory)
// and every cache capacity is divided by the same scale factor S, and
// references are generated at 1/S of the real per-instruction rate.
// Capacity ratios and reuse behaviour are preserved, so miss *ratios* are
// unbiased; real event counts are recovered by multiplying observed
// counts by S. The bus model is told the same factor so utilization is
// accounted at full scale.
//
// The reference mixture reflects what an OLTP server process touches:
// the payload lines of the database blocks its current chunk accessed,
// shared SGA metadata (buffer headers and latches — the source of
// cross-processor sharing), and the process-private PGA. OS-mode chunks
// touch kernel code and data instead. The union of payload blocks grows
// with the warehouse count, which is what drives the paper's MPI curves.
package workload

import (
	"odbscale/internal/bus"
	"odbscale/internal/cache"
	"odbscale/internal/cpu"
	"odbscale/internal/odb"
	"odbscale/internal/sim"
	"odbscale/internal/xrand"
)

// Region bases, spaced so regions can never collide.
const (
	baseUserCode  uint64 = 1 << 40
	baseOSCode    uint64 = 2 << 40
	baseMeta      uint64 = 3 << 40
	baseKernel    uint64 = 4 << 40
	basePGA       uint64 = 5 << 40
	baseBlocks    uint64 = 8 << 40
	baseBlockTail uint64 = 16 << 40
)

// Config parameterizes the synthesizer. Sizes are real (unscaled) bytes.
type Config struct {
	Scale uint64 // S; footprints and rates are divided by this

	// DataRefsPerInstr and FetchLinesPerInstr are the rates of references
	// that reach the L2 (i.e. after first-level filtering, which the
	// NetBurst L1D and trace-cache hit paths absorb); the Table 4 CPI
	// formulas only charge stalls to L2-and-beyond events.
	DataRefsPerInstr   float64
	FetchLinesPerInstr float64
	BranchesPerInstr   float64

	UserCodeBytes int // hot database server code footprint
	OSCodeBytes   int
	MetaBytes     int // SGA metadata: buffer headers, latches, library cache
	KernelBytes   int // kernel data structures
	PGABytes      int // private memory per server process

	// HotSetBytes is the real byte size of the workload's structural hot
	// set: index roots and branch levels, district rows, insert points of
	// the append regions, and the buffer headers of hot blocks. It grows
	// linearly with the warehouse count (the system layer sets it), and
	// its crossing of the L3 capacity is the paper's cached-to-scaled
	// transition.
	HotSetBytes int

	// Data-reference mixture for user mode: PBlock of the references go
	// to the structural hot set (addressed through the touched blocks),
	// TailFrac to cold block payloads (a reuse-free floor), PMeta to SGA
	// latches and library-cache metadata; the remainder goes to the PGA.
	PBlock   float64
	PMeta    float64
	TailFrac float64

	// LogicalCPUs sizes the per-thread models (TLBs, branch predictors)
	// when hardware threads share a physical cache hierarchy; zero means
	// one thread per hierarchy.
	LogicalCPUs int

	// Store fractions per class. The structural set (index upper levels,
	// headers) is read-mostly; payload tails carry the row updates.
	StructStoreFrac float64
	BlockStoreFrac  float64
	MetaStoreFrac   float64
	PGAStoreFrac    float64
}

// DefaultConfig returns the calibrated defaults used by the system model.
func DefaultConfig(scale uint64) Config {
	return Config{
		Scale:              scale,
		DataRefsPerInstr:   0.045,
		FetchLinesPerInstr: 1.0 / 56,
		BranchesPerInstr:   0.20,
		UserCodeBytes:      512 << 10,
		OSCodeBytes:        128 << 10,
		MetaBytes:          16 << 20,
		KernelBytes:        128 << 10,
		PGABytes:           32 << 10,
		HotSetBytes:        2 << 20,
		PBlock:             0.50,
		PMeta:              0.20,
		TailFrac:           0.07,
		StructStoreFrac:    0.005,
		BlockStoreFrac:     0.30,
		MetaStoreFrac:      0.02,
		PGAStoreFrac:       0.40,
	}
}

// ScaledGeometry derives the cache geometry for the scaled address space
// from a real geometry: set counts are divided by Scale (rounded down to
// a power of two, minimum one set), associativity and line size are kept.
func ScaledGeometry(g cache.Geometry, scale uint64) cache.Geometry {
	shrink := func(size, ways int) int {
		sets := size / (ways * g.LineSize * int(scale))
		p := 1
		for p*2 <= sets {
			p *= 2
		}
		if sets < 1 {
			p = 1
		}
		return p * ways * g.LineSize
	}
	out := g
	out.Sample = 1 // addresses are pre-scaled; no hash filtering
	out.TCSize = shrink(g.TCSize, g.TCWays)
	out.L2Size = shrink(g.L2Size, g.L2Ways)
	out.L3Size = shrink(g.L3Size, g.L3Ways)
	return out
}

// ChunkSpec describes one executed chunk.
type ChunkSpec struct {
	Now    sim.Time
	CPU    int
	ProcID int
	OS     bool
	Instr  uint64
	Blocks []odb.BlockID // payload blocks this chunk touched
}

// Events are the scaled event counts of one chunk. Real counts are these
// multiplied by the scale factor.
type Events struct {
	FetchRefs  uint64
	DataRefs   uint64
	TCMiss     uint64
	L2Miss     uint64
	L3Miss     uint64
	CoherMiss  uint64
	Writebacks uint64
	TLBMiss    uint64
	Branches   uint64
	Mispred    uint64
	BusLatency float64 // summed IOQ latency over the chunk's L3 misses
}

// Synth drives the microarchitectural models for one machine.
type Synth struct {
	cfg Config
	rng *xrand.Rand

	domain *cache.Domain
	fsb    *bus.Bus
	cpuMap func(logical int) int // logical CPU -> cache hierarchy
	tap    func(cpu int, addr cache.Addr, kind cache.Kind)
	tlbs   []*cpu.TLB
	bps    []*cpu.BranchPredictor

	userCodeZ *xrand.Zipf
	osCodeZ   *xrand.Zipf
	metaZ     *xrand.Zipf
	kernelZ   *xrand.Zipf
	pgaZ      *xrand.Zipf
	branchZ   *xrand.Zipf

	scaledLines func(bytes int) uint64
	blockLines  uint64
	structLines uint64 // scaled size of the structural hot set
	structZ     *xrand.Zipf

	// Hoisted per-reference constants: the scaled region strides the data
	// reference helpers would otherwise recompute for every reference.
	kernelStride uint64
	kernelShared uint64
	pgaRegion    uint64
}

// branchBiasTab caches branchBias over the 512 branch sites the branch
// Zipf draws from, so the per-branch loop does one table read instead of
// a hash and switch.
var branchBiasTab = func() [512]float64 {
	var t [512]float64
	for i := range t {
		t[i] = branchBias(uint64(i))
	}
	return t
}()

// New builds a synthesizer over the given (already scaled) cache domain
// and bus. One TLB and branch predictor is created per CPU.
func New(cfg Config, domain *cache.Domain, fsb *bus.Bus, rng *xrand.Rand) *Synth {
	if cfg.Scale == 0 {
		panic("workload: zero scale")
	}
	s := &Synth{cfg: cfg, rng: rng, domain: domain, fsb: fsb, cpuMap: func(l int) int { return l }}
	n := len(domain.CPUs)
	if cfg.LogicalCPUs > n {
		n = cfg.LogicalCPUs
	}
	for i := 0; i < n; i++ {
		s.tlbs = append(s.tlbs, cpu.NewTLB(64, 4, 64)) // page = one scaled line
		s.bps = append(s.bps, cpu.NewBranchPredictor(13, 2))
	}
	s.scaledLines = func(bytes int) uint64 {
		l := uint64(bytes) / 64 / cfg.Scale
		if l < 2 {
			l = 2
		}
		return l
	}
	s.userCodeZ = xrand.NewZipf(rng.Split(1), 1.6, s.scaledLines(cfg.UserCodeBytes))
	s.osCodeZ = xrand.NewZipf(rng.Split(2), 1.6, s.scaledLines(cfg.OSCodeBytes))
	s.metaZ = xrand.NewZipf(rng.Split(3), 1.7, s.scaledLines(cfg.MetaBytes))
	s.kernelZ = xrand.NewZipf(rng.Split(4), 1.6, s.scaledLines(cfg.KernelBytes))
	s.pgaZ = xrand.NewZipf(rng.Split(5), 1.3, s.scaledLines(cfg.PGABytes))
	s.branchZ = xrand.NewZipf(rng.Split(6), 1.05, 512)
	s.blockLines = uint64(odb.BlockSize) / 64 / cfg.Scale
	if s.blockLines < 1 {
		s.blockLines = 1
	}
	s.structLines = s.scaledLines(cfg.HotSetBytes)
	s.structZ = xrand.NewZipf(rng.Split(7), 1.0, s.structLines)
	s.kernelStride = s.scaledLines(cfg.KernelBytes)
	s.kernelShared = uint64(len(s.tlbs)) * s.kernelStride
	s.pgaRegion = s.scaledLines(cfg.PGABytes)
	return s
}

// count converts a real per-instruction rate into a scaled event count
// with stochastic rounding.
func (s *Synth) count(instr uint64, rate float64) uint64 {
	x := float64(instr) * rate / float64(s.cfg.Scale)
	n := uint64(x)
	if s.rng.Float64() < x-float64(n) {
		n++
	}
	return n
}

// SetCPUMap installs the logical-to-physical CPU mapping used when
// hardware threads share a cache hierarchy (SMT). The default is the
// identity.
func (s *Synth) SetCPUMap(f func(logical int) int) { s.cpuMap = f }

// SetTap installs a per-reference callback (trace capture). The tap sees
// the physical CPU and the scaled address of every simulated reference.
func (s *Synth) SetTap(f func(cpu int, addr cache.Addr, kind cache.Kind)) { s.tap = f }

// Run synthesizes the activity of one chunk and returns its scaled event
// counts.
func (s *Synth) Run(spec ChunkSpec) Events {
	var ev Events
	ev.FetchRefs = s.count(spec.Instr, s.cfg.FetchLinesPerInstr)
	ev.DataRefs = s.count(spec.Instr, s.cfg.DataRefsPerInstr)
	ev.Branches = s.count(spec.Instr, s.cfg.BranchesPerInstr)

	// Instruction fetches.
	codeBase, codeZ := baseUserCode, s.userCodeZ
	if spec.OS {
		codeBase, codeZ = baseOSCode, s.osCodeZ
	}
	phys := s.cpuMap(spec.CPU)
	tlb := s.tlbs[spec.CPU]
	for i := uint64(0); i < ev.FetchRefs; i++ {
		addr := cache.Addr(codeBase + codeZ.Next()*64)
		if s.tap != nil {
			s.tap(phys, addr, cache.Fetch)
		}
		s.record(&ev, spec, s.domain.Access(phys, addr, cache.Fetch), false)
	}

	// Data references. User-mode chunks split them across the block,
	// metadata and PGA classes; block and header references cycle through
	// the chunk's visited-block list so that every visited block receives
	// its head-line touches — the chunk's cold blocks then miss according
	// to their true inter-chunk reuse distance, which is the mechanism
	// that couples MPI to the workload's block footprint.
	dataAccess := func(addr cache.Addr, store bool) {
		kind := cache.Load
		if store {
			kind = cache.Store
		}
		if !tlb.Access(uint64(addr)) {
			ev.TLBMiss++
		}
		if s.tap != nil {
			s.tap(phys, addr, kind)
		}
		s.record(&ev, spec, s.domain.Access(phys, addr, kind), true)
	}
	if spec.OS || len(spec.Blocks) == 0 {
		for i := uint64(0); i < ev.DataRefs; i++ {
			dataAccess(s.dataRef(spec))
		}
	} else {
		nStruct := uint64(float64(ev.DataRefs) * s.cfg.PBlock)
		nTail := uint64(float64(ev.DataRefs) * s.cfg.TailFrac)
		nMeta := uint64(float64(ev.DataRefs) * s.cfg.PMeta)
		for i := uint64(0); i < nStruct; i++ {
			dataAccess(s.structRef(), s.rng.Bernoulli(s.cfg.StructStoreFrac))
		}
		for i := uint64(0); i < nTail; i++ {
			b := uint64(spec.Blocks[s.rng.Intn(len(spec.Blocks))])
			line := uint64(s.rng.Intn(int(s.blockLines)))
			addr := cache.Addr(baseBlockTail + (b*s.blockLines+line)*64)
			dataAccess(addr, s.rng.Bernoulli(s.cfg.BlockStoreFrac))
		}
		for i := uint64(0); i < nMeta; i++ {
			dataAccess(cache.Addr(baseMeta+s.metaZ.Next()*64), s.rng.Bernoulli(s.cfg.MetaStoreFrac))
		}
		for i := nStruct + nTail + nMeta; i < ev.DataRefs; i++ {
			dataAccess(s.pgaRef(spec.ProcID), s.rng.Bernoulli(s.cfg.PGAStoreFrac))
		}
	}

	// Branches. The bias table is in (0, 1) for every site, so the direct
	// Float64 compare consumes the stream exactly as Bernoulli would.
	bp := s.bps[spec.CPU]
	for i := uint64(0); i < ev.Branches; i++ {
		site := s.branchZ.Next()
		taken := s.rng.Float64() < branchBiasTab[site]
		if !bp.Record(site, taken) {
			ev.Mispred++
		}
	}
	return ev
}

// branchBias gives each branch site a stable taken-probability: most
// sites are strongly biased (well-predicted), a minority are weakly
// biased (the residual mispredictions).
func branchBias(site uint64) float64 {
	h := (site * 0x9e3779b97f4a7c15) >> 33
	switch m := h % 100; {
	case m < 5:
		return 0.70 // hard branches
	case m < 7:
		return 0.50 // data-dependent
	default:
		if h%2 == 0 {
			return 0.97
		}
		return 0.03
	}
}

// dataRef picks a data address for the chunk.
func (s *Synth) dataRef(spec ChunkSpec) (cache.Addr, bool) {
	r := s.rng.Float64()
	if spec.OS {
		// Kernel structures dominate. Most kernel data is per-CPU (run
		// queues, slab magazines, stats) and never shared; a smaller slice
		// (global lists, the page cache radix tree) is shared read-mostly.
		switch {
		case r < 0.52:
			line := uint64(spec.CPU)*s.kernelStride + s.kernelZ.Next()
			return cache.Addr(baseKernel + line*64), s.rng.Bernoulli(0.40)
		case r < 0.70:
			return cache.Addr(baseKernel + (s.kernelShared+s.kernelZ.Next())*64), s.rng.Bernoulli(0.04)
		case r < 0.94:
			return cache.Addr(baseMeta + s.metaZ.Next()*64), s.rng.Bernoulli(s.cfg.MetaStoreFrac)
		default:
			return s.pgaRef(spec.ProcID), s.rng.Bernoulli(s.cfg.PGAStoreFrac)
		}
	}
	switch {
	case r < s.cfg.PMeta:
		// Blockless user chunks still touch SGA metadata.
		return cache.Addr(baseMeta + s.metaZ.Next()*64), s.rng.Bernoulli(s.cfg.MetaStoreFrac)
	default:
		return s.pgaRef(spec.ProcID), s.rng.Bernoulli(s.cfg.PGAStoreFrac)
	}
}

// structRef draws a reference from the structural hot set: the index
// roots and branch levels, district rows, append-region insert points and
// buffer headers every transaction walks. The set occupies HotSetBytes
// (growing with the warehouse count); popularity within it is mildly
// skewed — roots are hotter than individual branch lines or headers.
func (s *Synth) structRef() cache.Addr {
	return cache.Addr(baseBlocks + s.structZ.Next()*64)
}

func (s *Synth) pgaRef(proc int) cache.Addr {
	return cache.Addr(basePGA + (uint64(proc)*s.pgaRegion+s.pgaZ.Next())*64)
}

// record folds one access result into the chunk's events and drives the
// bus for L3 misses and writebacks.
func (s *Synth) record(ev *Events, spec ChunkSpec, res cache.AccessResult, data bool) {
	if res.TCMiss {
		ev.TCMiss++
	}
	if res.L2Miss {
		ev.L2Miss++
	}
	if res.L3Miss {
		ev.L3Miss++
		if res.Coherence {
			ev.CoherMiss++
		}
		ev.BusLatency += s.fsb.Transaction(spec.Now)
	}
	if res.Writeback {
		ev.Writebacks++
		s.fsb.Posted(spec.Now, float64(s.cfg.Scale))
	}
}

// Scale returns the configured scale factor.
func (s *Synth) Scale() uint64 { return s.cfg.Scale }

// FlushTLB flushes one CPU's TLB (address-space switch).
func (s *Synth) FlushTLB(cpuID int) { s.tlbs[cpuID].Flush() }

// TLBs and Predictors expose per-CPU models for statistics.
func (s *Synth) TLBs() []*cpu.TLB { return s.tlbs }

// Predictors returns the per-CPU branch predictors.
func (s *Synth) Predictors() []*cpu.BranchPredictor { return s.bps }
