// Package osker models the operating system's scheduling behaviour: a
// FIFO ready queue feeding P processors, round-robin time slices,
// blocking and wakeup for I/O and lock waits, and context-switch
// accounting. The paper attributes most OS-space path length to the disk
// I/O code path and the scheduler; this package provides the scheduling
// half, with the I/O path costs charged by the system layer through the
// run callbacks.
//
// The scheduler is driven by the discrete-event engine: the system layer
// supplies a RunFunc that executes one chunk of a process's work and
// reports how many cycles it took; the scheduler sequences chunks,
// charges context switches, enforces the time slice and tracks busy and
// idle cycles per CPU.
package osker

import (
	"fmt"

	"odbscale/internal/qstats"
	"odbscale/internal/sim"
)

// State is a process state.
type State uint8

// Process states.
const (
	Ready State = iota
	Running
	Blocked
)

// Proc is a schedulable process (an ODB server process).
type Proc struct {
	ID    int
	Data  any // the system layer's per-process payload
	state State

	quantumUsed uint64
	pendingWake bool
	readyAt     sim.Time // when the process last entered the ready queue

	// Episode accumulators for the queueing observatory: one episode
	// spans wake/admit to block, possibly through several dispatches and
	// preemptions. epWait sums ready-but-undispatched cycles, epBusy the
	// on-CPU cycles (including charged context switches); both fold into
	// the CPU station when the episode ends.
	epWait float64
	epBusy float64
}

// State returns the process's scheduling state.
func (p *Proc) State() State { return p.state }

// ReadyAt returns the simulated time the process last became ready —
// the boundary the span tracer uses to split a scheduling gap into
// resource wait (blocked, before readyAt) and run-queue wait (ready but
// undispatched, after readyAt).
func (p *Proc) ReadyAt() sim.Time { return p.readyAt }

// Outcome reports what one executed chunk did.
type Outcome struct {
	Cycles sim.Time // wall-cycle duration of the chunk
	Instr  uint64   // instructions consumed (counted against the quantum)
	Block  bool     // the process must block; Wake will be called later
}

// RunFunc executes the next chunk of p on cpu with at most budget
// instructions and returns its outcome. It must not call back into the
// scheduler synchronously.
type RunFunc func(p *Proc, cpu int, budget uint64) Outcome

// SwitchFunc charges one context switch on cpu (the system layer runs the
// OS switch path through the caches) and returns its duration in cycles.
type SwitchFunc func(p *Proc, cpu int) sim.Time

// Config parameterizes the scheduler.
type Config struct {
	CPUs         int
	QuantumInstr uint64 // time slice, in instructions
}

// Stats aggregates scheduler behaviour.
type Stats struct {
	ContextSwitches uint64
	Preemptions     uint64
	Blocks          uint64
	Wakeups         uint64
	IdleCycles      float64 // summed across CPUs
	BusyCycles      float64 // summed across CPUs
}

type cpuState struct {
	current   *Proc
	last      *Proc // process that ran most recently on this CPU
	idleSince sim.Time
	idle      bool
	busy      float64 // busy cycles on this CPU since the last ResetStats

	// At most one chunk is in flight per CPU, so its completion context
	// lives here instead of in a per-event closure: index identifies the
	// CPU to the typed engine callbacks, pendingOut carries the outcome
	// from step to finish.
	index      int
	pendingOut Outcome
}

// Scheduler sequences processes over CPUs.
type Scheduler struct {
	eng   *sim.Engine
	cfg   Config
	run   RunFunc
	sw    SwitchFunc
	cpus  []cpuState
	ready []*Proc

	// Method-value callbacks bound once so per-chunk scheduling through
	// the engine allocates nothing.
	stepCb   func(any)
	finishCb func(any)

	stats   Stats
	resetAt sim.Time
	stopped bool

	qs *qstats.Station // optional CPU service-center accumulator
}

// New builds a scheduler. All CPUs start idle.
func New(eng *sim.Engine, cfg Config, run RunFunc, sw SwitchFunc) *Scheduler {
	if cfg.CPUs < 1 || cfg.QuantumInstr == 0 {
		panic("osker: bad config")
	}
	if run == nil {
		panic("osker: nil RunFunc")
	}
	s := &Scheduler{eng: eng, cfg: cfg, run: run, sw: sw, cpus: make([]cpuState, cfg.CPUs)}
	for i := range s.cpus {
		s.cpus[i].idle = true
		s.cpus[i].index = i
	}
	s.stepCb = s.stepCall
	s.finishCb = s.finishCall
	return s
}

// SetStation attaches the queueing observatory's CPU station. Purely
// observational: the scheduler only accumulates into it, never reads
// it.
func (s *Scheduler) SetStation(st *qstats.Station) { s.qs = st }

// Admit adds a new process to the ready queue and kicks an idle CPU.
func (s *Scheduler) Admit(p *Proc) {
	p.state = Ready
	p.readyAt = s.eng.Now()
	if s.qs != nil {
		s.qs.Arrive()
	}
	s.ready = append(s.ready, p)
	s.kick()
}

// Wake moves a blocked process back to the ready queue. Waking a process
// whose blocking chunk has not finished yet (the resource came back
// faster than the chunk's simulated duration) marks it for immediate
// readiness when the block takes effect.
func (s *Scheduler) Wake(p *Proc) {
	s.stats.Wakeups++
	if p.state != Blocked {
		if p.pendingWake {
			panic(fmt.Sprintf("osker: double wake of process %d", p.ID))
		}
		p.pendingWake = true
		return
	}
	p.state = Ready
	p.readyAt = s.eng.Now()
	if s.qs != nil {
		s.qs.Arrive()
	}
	s.ready = append(s.ready, p)
	s.kick()
}

// Stop prevents any further dispatching (end of simulation).
func (s *Scheduler) Stop() { s.stopped = true }

// kick dispatches ready work onto idle CPUs.
func (s *Scheduler) kick() {
	for i := range s.cpus {
		if len(s.ready) == 0 {
			return
		}
		if s.cpus[i].idle && s.cpus[i].current == nil {
			s.dispatch(i, nil)
		}
	}
}

// dispatch pops the ready queue onto cpu and starts its first chunk,
// preferring the process that last ran here (cache affinity, as the Linux
// scheduler does). A just-preempted process is passed as except so that
// affinity cannot override round-robin fairness.
func (s *Scheduler) dispatch(cpu int, except *Proc) {
	if s.stopped {
		return
	}
	c := &s.cpus[cpu]
	if len(s.ready) == 0 {
		if !c.idle {
			c.idle = true
			c.idleSince = s.eng.Now()
		}
		return
	}
	wasIdle := c.idle
	if c.idle {
		s.stats.IdleCycles += float64(s.eng.Now() - c.idleSince)
		c.idle = false
	}
	pick := 0
	if c.last != except {
		for i, cand := range s.ready {
			if cand == c.last {
				pick = i
				break
			}
		}
	}
	p := s.ready[pick]
	s.ready = append(s.ready[:pick], s.ready[pick+1:]...)
	p.state = Running
	p.quantumUsed = 0
	c.current = p
	if s.qs != nil {
		// Run-queue wait since the process became ready, clamped to the
		// measurement window so episodes in flight at reset don't leak
		// pre-window cycles into the station.
		start := p.readyAt
		if start < s.resetAt {
			start = s.resetAt
		}
		p.epWait += float64(s.eng.Now() - start)
	}

	// A dispatch counts as a context switch when a different process
	// enters than the one that last ran here; the departure side of a
	// blocking process was already counted when it blocked.
	_ = wasIdle
	var switchCost sim.Time
	if c.last != p {
		s.stats.ContextSwitches++
		if s.sw != nil {
			switchCost = s.sw(p, cpu)
			s.stats.BusyCycles += float64(switchCost)
			c.busy += float64(switchCost)
			p.epBusy += float64(switchCost)
		}
	}
	c.last = p
	s.eng.AfterCall(switchCost, s.stepCb, c)
}

// stepCall is the typed-callback entry for a dispatched chunk: the CPU's
// current process starts its next chunk.
func (s *Scheduler) stepCall(arg any) {
	c := arg.(*cpuState)
	s.step(c.index, c.current)
}

// step runs one chunk of p on cpu and schedules the follow-up.
func (s *Scheduler) step(cpu int, p *Proc) {
	if s.stopped {
		return
	}
	budget := s.cfg.QuantumInstr - p.quantumUsed
	out := s.run(p, cpu, budget)
	s.stats.BusyCycles += float64(out.Cycles)
	c := &s.cpus[cpu]
	c.busy += float64(out.Cycles)
	p.epBusy += float64(out.Cycles)
	p.quantumUsed += out.Instr
	c.pendingOut = out
	s.eng.AfterCall(out.Cycles, s.finishCb, c)
}

// finishCall completes a chunk at its simulated end time: block, preempt
// or continue, per the outcome stashed on the CPU by step.
func (s *Scheduler) finishCall(arg any) {
	if s.stopped {
		return
	}
	c := arg.(*cpuState)
	cpu := c.index
	p := c.current
	out := c.pendingOut
	switch {
	case out.Block:
		s.stats.Blocks++
		s.stats.ContextSwitches++ // the process switches off the CPU
		c.current = nil
		if s.qs != nil {
			// The episode ends where the process leaves the CPU.
			s.qs.Complete(p.epWait, p.epBusy)
			p.epWait = 0
			p.epBusy = 0
		}
		if p.pendingWake {
			p.pendingWake = false
			p.state = Ready
			p.readyAt = s.eng.Now()
			if s.qs != nil {
				s.qs.Arrive()
			}
			s.ready = append(s.ready, p)
		} else {
			p.state = Blocked
		}
		s.dispatch(cpu, nil)
	case p.quantumUsed >= s.cfg.QuantumInstr && len(s.ready) > 0:
		// Time slice expired with competitors waiting: preempt.
		s.stats.Preemptions++
		p.state = Ready
		p.readyAt = s.eng.Now()
		c.current = nil
		s.ready = append(s.ready, p)
		s.dispatch(cpu, p)
	default:
		if p.quantumUsed >= s.cfg.QuantumInstr {
			p.quantumUsed = 0 // fresh slice, nobody waiting
		}
		s.step(cpu, p)
	}
}

// IdleCyclesAt returns the idle cycles accumulated across CPUs since
// the last ResetStats, closing out still-open idle periods at now. The
// cycle-attribution profiler reads it at finalize to form the idle
// frame; Utilization derives from the same sum.
func (s *Scheduler) IdleCyclesAt(now sim.Time) float64 {
	idle := s.stats.IdleCycles
	for i := range s.cpus {
		if s.cpus[i].idle {
			since := s.cpus[i].idleSince
			if since < s.resetAt {
				since = s.resetAt
			}
			idle += float64(now - since)
		}
	}
	return idle
}

// Utilization returns mean CPU utilization since the last ResetStats,
// requiring the current time to close out running idle periods.
func (s *Scheduler) Utilization() float64 {
	elapsed := float64(s.eng.Now()-s.resetAt) * float64(s.cfg.CPUs)
	if elapsed <= 0 {
		return 0
	}
	idle := s.IdleCyclesAt(s.eng.Now())
	u := 1 - idle/elapsed
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Stats returns a copy of the counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// ReadyLen returns the ready-queue length.
func (s *Scheduler) ReadyLen() int { return len(s.ready) }

// PerCPUBusyCycles returns each CPU's busy cycles since the last
// ResetStats. The flight recorder's sampler differences successive
// readings to derive per-CPU utilization.
func (s *Scheduler) PerCPUBusyCycles() []float64 {
	out := make([]float64, len(s.cpus))
	for i := range s.cpus {
		out[i] = s.cpus[i].busy
	}
	return out
}

// Busy reports whether a CPU is currently executing a process.
func (s *Scheduler) Busy(cpu int) bool { return !s.cpus[cpu].idle }

// ResetStats begins a new measurement period.
func (s *Scheduler) ResetStats() {
	s.stats = Stats{}
	s.resetAt = s.eng.Now()
	for i := range s.cpus {
		s.cpus[i].busy = 0
		if s.cpus[i].idle && s.cpus[i].idleSince < s.resetAt {
			s.cpus[i].idleSince = s.resetAt
		}
		// Episodes in flight at the boundary restart their accumulators
		// so pre-window cycles stay out of the CPU station — and count
		// as arrivals into the fresh window, since the customer is
		// present when observation starts (keeps completions ≤ arrivals
		// for the law audit).
		if p := s.cpus[i].current; p != nil {
			p.epWait = 0
			p.epBusy = 0
			if s.qs != nil {
				s.qs.Arrive()
			}
		}
	}
	for _, p := range s.ready {
		p.epWait = 0
		p.epBusy = 0
		if s.qs != nil {
			s.qs.Arrive()
		}
	}
}
