package osker

import (
	"testing"

	"odbscale/internal/sim"
)

// fixedRun returns a RunFunc where each process runs chunks of the given
// instruction count at 1 cycle per instruction, blocking or finishing
// according to the script map (chunk index -> block?).
func fixedRun(chunk uint64) RunFunc {
	return func(p *Proc, cpu int, budget uint64) Outcome {
		n := chunk
		if n > budget {
			n = budget
		}
		return Outcome{Cycles: sim.Time(n), Instr: n}
	}
}

func TestSingleProcessRuns(t *testing.T) {
	eng := sim.New()
	chunks := 0
	run := func(p *Proc, cpu int, budget uint64) Outcome {
		chunks++
		if chunks >= 5 {
			return Outcome{Cycles: 10, Instr: 10, Block: true}
		}
		return Outcome{Cycles: 10, Instr: 10}
	}
	s := New(eng, Config{CPUs: 1, QuantumInstr: 1000}, run, nil)
	s.Admit(&Proc{ID: 1})
	eng.RunUntil(1000)
	if chunks != 5 {
		t.Fatalf("chunks = %d, want 5 (stop at block)", chunks)
	}
	if s.Stats().Blocks != 1 {
		t.Fatalf("blocks = %d", s.Stats().Blocks)
	}
}

func TestRoundRobinPreemption(t *testing.T) {
	eng := sim.New()
	ran := map[int]int{}
	run := func(p *Proc, cpu int, budget uint64) Outcome {
		ran[p.ID]++
		n := uint64(100)
		if n > budget {
			n = budget
		}
		return Outcome{Cycles: sim.Time(n), Instr: n}
	}
	s := New(eng, Config{CPUs: 1, QuantumInstr: 100}, run, nil)
	s.Admit(&Proc{ID: 1})
	s.Admit(&Proc{ID: 2})
	eng.RunUntil(1000)
	if ran[1] == 0 || ran[2] == 0 {
		t.Fatalf("not round robin: %v", ran)
	}
	if s.Stats().Preemptions == 0 {
		t.Fatal("no preemptions with contending processes")
	}
	if s.Stats().ContextSwitches < 2 {
		t.Fatalf("switches = %d", s.Stats().ContextSwitches)
	}
}

func TestNoPreemptionWhenAlone(t *testing.T) {
	eng := sim.New()
	s := New(eng, Config{CPUs: 1, QuantumInstr: 100}, fixedRun(100), nil)
	s.Admit(&Proc{ID: 1})
	eng.RunUntil(5000)
	if s.Stats().Preemptions != 0 {
		t.Fatalf("preemptions = %d, want 0 for a lone process", s.Stats().Preemptions)
	}
}

func TestBlockAndWake(t *testing.T) {
	eng := sim.New()
	var proc *Proc
	phase := 0
	run := func(p *Proc, cpu int, budget uint64) Outcome {
		phase++
		if phase == 1 {
			return Outcome{Cycles: 50, Instr: 50, Block: true}
		}
		return Outcome{Cycles: 50, Instr: 50, Block: true}
	}
	s := New(eng, Config{CPUs: 1, QuantumInstr: 1000}, run, nil)
	proc = &Proc{ID: 1}
	s.Admit(proc)
	// Wake it well after it blocks.
	eng.At(500, func() { s.Wake(proc) })
	eng.RunUntil(2000)
	if phase != 2 {
		t.Fatalf("phase = %d, want resumed after wake", phase)
	}
	if s.Stats().Wakeups != 1 {
		t.Fatalf("wakeups = %d", s.Stats().Wakeups)
	}
}

func TestEarlyWakeBeforeBlockLands(t *testing.T) {
	// A wake arriving while the blocking chunk is still "executing" must
	// not be lost and must not panic.
	eng := sim.New()
	var s *Scheduler
	phase := 0
	var proc *Proc
	run := func(p *Proc, cpu int, budget uint64) Outcome {
		phase++
		if phase == 1 {
			// The resource comes back at cycle 10, chunk ends at 100.
			eng.At(10, func() { s.Wake(proc) })
			return Outcome{Cycles: 100, Instr: 100, Block: true}
		}
		return Outcome{Cycles: 10, Instr: 10, Block: true}
	}
	s = New(eng, Config{CPUs: 1, QuantumInstr: 1000}, run, nil)
	proc = &Proc{ID: 1}
	s.Admit(proc)
	eng.RunUntil(2000)
	if phase != 2 {
		t.Fatalf("phase = %d, want immediate resume", phase)
	}
}

func TestMultiCPUParallelism(t *testing.T) {
	eng := sim.New()
	cpusSeen := map[int]bool{}
	run := func(p *Proc, cpu int, budget uint64) Outcome {
		cpusSeen[cpu] = true
		return Outcome{Cycles: 100, Instr: 100, Block: true}
	}
	s := New(eng, Config{CPUs: 4, QuantumInstr: 1000}, run, nil)
	for i := 0; i < 4; i++ {
		s.Admit(&Proc{ID: i})
	}
	eng.RunUntil(50)
	if len(cpusSeen) != 4 {
		t.Fatalf("CPUs used = %d, want 4", len(cpusSeen))
	}
}

func TestContextSwitchCostCharged(t *testing.T) {
	eng := sim.New()
	switches := 0
	sw := func(p *Proc, cpu int) sim.Time {
		switches++
		return 7
	}
	s := New(eng, Config{CPUs: 1, QuantumInstr: 100}, fixedRun(100), sw)
	s.Admit(&Proc{ID: 1})
	s.Admit(&Proc{ID: 2})
	eng.RunUntil(1000)
	if switches == 0 {
		t.Fatal("switch callback never invoked")
	}
	if uint64(switches) != s.Stats().ContextSwitches {
		t.Fatalf("callback count %d != stat %d", switches, s.Stats().ContextSwitches)
	}
}

func TestUtilization(t *testing.T) {
	eng := sim.New()
	run := func(p *Proc, cpu int, budget uint64) Outcome {
		return Outcome{Cycles: 100, Instr: 100, Block: true}
	}
	s := New(eng, Config{CPUs: 2, QuantumInstr: 1000}, run, nil)
	p := &Proc{ID: 1}
	s.Admit(p)
	eng.RunUntil(100) // one CPU busy 100 cycles, the other idle
	if u := s.Utilization(); u < 0.45 || u > 0.55 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
	eng.RunUntil(200) // now both idle
	if u := s.Utilization(); u < 0.2 || u > 0.3 {
		t.Fatalf("utilization = %v, want ~0.25", u)
	}
}

func TestUtilizationAfterReset(t *testing.T) {
	eng := sim.New()
	s := New(eng, Config{CPUs: 1, QuantumInstr: 100}, fixedRun(100), nil)
	eng.RunUntil(1000) // idle the whole time
	s.ResetStats()
	s.Admit(&Proc{ID: 1})
	eng.RunUntil(2000) // busy the whole second period
	if u := s.Utilization(); u < 0.95 {
		t.Fatalf("post-reset utilization = %v, want ~1", u)
	}
}

func TestStopHaltsDispatch(t *testing.T) {
	eng := sim.New()
	chunks := 0
	run := func(p *Proc, cpu int, budget uint64) Outcome {
		chunks++
		return Outcome{Cycles: 10, Instr: 10}
	}
	s := New(eng, Config{CPUs: 1, QuantumInstr: 1000}, run, nil)
	s.Admit(&Proc{ID: 1})
	eng.At(35, func() { s.Stop() })
	eng.RunUntil(1000)
	if chunks > 5 {
		t.Fatalf("chunks after stop = %d", chunks)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{{CPUs: 0, QuantumInstr: 10}, {CPUs: 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("want panic for %+v", cfg)
				}
			}()
			New(sim.New(), cfg, fixedRun(1), nil)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for nil run")
		}
	}()
	New(sim.New(), Config{CPUs: 1, QuantumInstr: 1}, nil, nil)
}

func TestReadyLen(t *testing.T) {
	eng := sim.New()
	s := New(eng, Config{CPUs: 1, QuantumInstr: 100}, fixedRun(100), nil)
	s.Admit(&Proc{ID: 1})
	s.Admit(&Proc{ID: 2})
	s.Admit(&Proc{ID: 3})
	// One dispatched, two queued.
	if got := s.ReadyLen(); got != 2 {
		t.Fatalf("ReadyLen = %d", got)
	}
}
