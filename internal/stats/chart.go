package stats

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders one or more series as a text line chart — enough to see
// the shapes the paper's figures show (rising, falling, knees, spreads)
// directly in terminal output and EXPERIMENTS.md.
type Chart struct {
	Title  string
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	YFmt   string
}

var chartMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the series over a shared x/y range. Each series gets its
// own mark; overlapping points show the earlier series' mark.
func (c Chart) Render(series ...Series) string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	yfmt := c.YFmt
	if yfmt == "" {
		yfmt = "%10.4g"
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			any = true
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if !any {
		return c.Title + " (no data)\n"
	}
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	// Pad the y range slightly so extremes stay visible.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		mark := chartMarks[si%len(chartMarks)]
		for _, p := range s.Points {
			col := int(float64(w-1) * (p.X - minX) / (maxX - minX))
			row := int(float64(h-1) * (maxY - p.Y) / (maxY - minY))
			if grid[row][col] == ' ' {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	for i, row := range grid {
		label := strings.Repeat(" ", 10)
		switch i {
		case 0:
			label = fmt.Sprintf(yfmt, maxY)
		case h - 1:
			label = fmt.Sprintf(yfmt, minY)
		case (h - 1) / 2:
			label = fmt.Sprintf(yfmt, (maxY+minY)/2)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-10.4g%s%10.4g\n", strings.Repeat(" ", 10), minX,
		strings.Repeat(" ", max(0, w-20)), maxX)
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", chartMarks[si%len(chartMarks)], s.Name))
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 10), strings.Join(legend, "   "))
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
