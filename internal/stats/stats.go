// Package stats provides the small statistical toolkit used throughout the
// simulator: summary statistics, confidence intervals, x/y series
// containers for figure data, and aligned text-table rendering that mimics
// the paper's tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
// Slices with fewer than two elements have zero variance.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Summary holds the summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes summary statistics for xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

// CI95 returns the half-width of an approximate 95% confidence interval for
// the mean of xs, using the normal critical value (the paper repeats each
// measurement six times, so we follow the same small-sample convention).
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Close reports whether a and b are equal within the package's
// standard relative tolerance (1e-9, floored at an absolute scale of
// one). It is the sanctioned way to compare floats for equality — the
// floateq lint rule flags raw ==/!= on floating-point operands and
// exempts exactly this helper, whose fast path needs bitwise equality
// to accept infinities.
func Close(a, b float64) bool {
	if a == b {
		return true
	}
	return Within(a, b, 1e-9)
}

// Within reports whether a and b agree to the given relative
// tolerance, using an absolute floor of one so values near zero do not
// demand impossible precision. Like Close, it is exempt from the
// floateq lint rule.
func Within(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Point is a single (x, y) observation.
type Point struct {
	X, Y float64
}

// Series is an ordered collection of points with a name, used as the
// exchange format between the simulator and the model-fitting code.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Xs returns the x values in order.
func (s *Series) Xs() []float64 {
	xs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = p.X
	}
	return xs
}

// Ys returns the y values in order.
func (s *Series) Ys() []float64 {
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return ys
}

// Sort orders the points by increasing x.
func (s *Series) Sort() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// At returns the y value at the given x, and whether it is present.
func (s *Series) At(x float64) (float64, bool) {
	for _, p := range s.Points {
		if Close(p.X, x) {
			return p.Y, true
		}
	}
	return 0, false
}

// Table renders labelled rows of figures as an aligned text table, in the
// style of the paper's tables. Columns are the header names; each row is a
// label followed by one value per remaining column.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := ""
	if t.Title != "" {
		out += t.Title + "\n"
	}
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			if i > 0 {
				s += "  "
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			s += fmt.Sprintf("%-*s", w, c)
		}
		return s + "\n"
	}
	out += line(t.Header)
	for _, row := range t.Rows {
		out += line(row)
	}
	return out
}

// F formats a float for table cells with the given number of decimals.
func F(x float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, x)
}
