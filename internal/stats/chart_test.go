package stats

import (
	"strings"
	"testing"
)

func TestChartRendersShapes(t *testing.T) {
	var up, down Series
	up.Name = "up"
	down.Name = "down"
	for x := 0.0; x <= 10; x++ {
		up.Add(x, x*x)
		down.Add(x, 100-x*x)
	}
	out := Chart{Title: "shapes", Width: 40, Height: 10}.Render(up, down)
	if !strings.Contains(out, "shapes") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatalf("missing legend:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Title + 10 rows + axis + x labels + legend.
	if len(lines) < 14 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("no marks drawn")
	}
}

func TestChartMonotoneSeriesTopRight(t *testing.T) {
	var s Series
	s.Name = "rise"
	for x := 0.0; x < 8; x++ {
		s.Add(x, x)
	}
	out := Chart{Width: 32, Height: 8}.Render(s)
	rows := strings.Split(out, "\n")
	first := rows[0]
	last := rows[7]
	// Highest value appears on the top row to the right, lowest on the
	// bottom row to the left.
	if !strings.Contains(first, "*") || strings.Index(first, "*") < strings.Index(last, "*") {
		t.Fatalf("rising series not rendered rising:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart{Title: "empty"}.Render(Series{Name: "none"})
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	var s Series
	s.Name = "flat"
	s.Add(1, 5)
	s.Add(2, 5)
	out := Chart{Width: 20, Height: 6}.Render(s)
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series vanished:\n%s", out)
	}
}
