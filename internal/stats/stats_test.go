package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Known sample variance of this classic data set is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceSingleton(t *testing.T) {
	if got := Variance([]float64{42}); got != 0 {
		t.Fatalf("Variance of singleton = %v, want 0", got)
	}
}

func TestVarianceNonNegativeQuick(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBetweenMinMaxQuick(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("Summarize = %+v", s)
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	if got := CI95(xs); got != 0 {
		t.Fatalf("CI95 of constant sample = %v, want 0", got)
	}
	if got := CI95([]float64{1}); got != 0 {
		t.Fatalf("CI95 of singleton = %v, want 0", got)
	}
	xs = []float64{1, 2, 3, 4, 5, 6}
	want := 1.96 * StdDev(xs) / math.Sqrt(6)
	if got := CI95(xs); !almostEqual(got, want, 1e-12) {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(100, 2.0)
	s.Add(10, 1.0)
	s.Sort()
	if s.Len() != 2 || s.Points[0].X != 10 {
		t.Fatalf("Sort failed: %+v", s.Points)
	}
	if xs := s.Xs(); xs[0] != 10 || xs[1] != 100 {
		t.Fatalf("Xs = %v", xs)
	}
	if ys := s.Ys(); ys[0] != 1 || ys[1] != 2 {
		t.Fatalf("Ys = %v", ys)
	}
	if y, ok := s.At(100); !ok || y != 2 {
		t.Fatalf("At(100) = %v, %v", y, ok)
	}
	if _, ok := s.At(55); ok {
		t.Fatal("At(55) should be absent")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "Table X", Header: []string{"Warehouses", "1P", "2P"}}
	tab.AddRow("10", "8", "10")
	tab.AddRow("800", "13", "36")
	out := tab.String()
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "Warehouses") {
		t.Fatalf("missing title/header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	// Columns must be aligned: each data line at least as wide as the header start of col 2.
	if len(lines[2]) < len("Warehouses") {
		t.Fatalf("row not padded: %q", lines[2])
	}
}

func TestF(t *testing.T) {
	if got := F(3.14159, 2); got != "3.14" {
		t.Fatalf("F = %q", got)
	}
}
