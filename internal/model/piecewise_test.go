package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthPiecewise builds noiseless data from two lines meeting at pivot.
func synthPiecewise(xs []float64, s1, i1, s2 float64, pivot float64) []float64 {
	i2 := i1 + s1*pivot - s2*pivot // force intersection at pivot
	ys := make([]float64, len(xs))
	for i, x := range xs {
		if x <= pivot {
			ys[i] = i1 + s1*x
		} else {
			ys[i] = i2 + s2*x
		}
	}
	return ys
}

func TestFitPiecewiseExact(t *testing.T) {
	xs := []float64{10, 25, 50, 100, 150, 200, 300, 400, 500, 800}
	// Steep cached region up to 125, shallow scaled region after.
	ys := synthPiecewise(xs, 0.05, 1.0, 0.002, 125)
	p, err := FitPiecewise(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Pivot-125) > 1 {
		t.Fatalf("pivot = %v, want ~125 (%s)", p.Pivot, p)
	}
	if p.SSE > 1e-9 {
		t.Fatalf("SSE = %v, want ~0", p.SSE)
	}
	if math.Abs(p.Cached.Slope-0.05) > 1e-6 || math.Abs(p.Scaled.Slope-0.002) > 1e-6 {
		t.Fatalf("slopes = %v / %v", p.Cached.Slope, p.Scaled.Slope)
	}
}

func TestFitPiecewiseErrors(t *testing.T) {
	if _, err := FitPiecewise([]float64{1, 2, 3}, []float64{1, 2, 3}); err == nil {
		t.Fatal("want error on <4 points")
	}
	if _, err := FitPiecewise([]float64{1, 3, 2, 4}, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("want error on unsorted x")
	}
	if _, err := FitPiecewise([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want error on mismatched lengths")
	}
}

func TestFitPiecewiseEval(t *testing.T) {
	xs := []float64{10, 50, 100, 200, 400, 800}
	ys := synthPiecewise(xs, 0.02, 2.0, 0.001, 150)
	p, err := FitPiecewise(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Left of pivot uses the cached line, right of pivot the scaled line.
	if got, want := p.Eval(20), 2.0+0.02*20; math.Abs(got-want) > 1e-6 {
		t.Fatalf("Eval(20) = %v, want %v", got, want)
	}
	ext := p.Extrapolate(2000)
	want := p.Scaled.Eval(2000)
	if ext != want {
		t.Fatalf("Extrapolate = %v, want %v", ext, want)
	}
}

// Property: the pivot of a fit on exact two-segment data lies at the true
// intersection, for random steep/shallow slope pairs.
func TestFitPiecewisePivotQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s1 := 0.01 + rng.Float64()*0.1  // steep
		s2 := rng.Float64() * 0.003     // shallow
		pivot := 80 + rng.Float64()*120 // between 80 and 200
		xs := []float64{10, 25, 50, 75, 100, 150, 250, 350, 500, 650, 800}
		ys := synthPiecewise(xs, s1, 1+rng.Float64(), s2, pivot)
		p, err := FitPiecewise(xs, ys)
		if err != nil {
			return false
		}
		// The breakpoint grid is discrete so allow tolerance of the gap
		// between samples around the pivot.
		return math.Abs(p.Pivot-pivot) < 60
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: piecewise SSE never exceeds the single-line SSE (the model
// class is strictly richer).
func TestFitPiecewiseBeatsLinearQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := []float64{10, 25, 50, 100, 200, 300, 500, 800}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = rng.Float64() * 10
		}
		p, errP := FitPiecewise(xs, ys)
		l, errL := FitLinear(xs, ys)
		if errP != nil || errL != nil {
			return true // degenerate random data; nothing to compare
		}
		return p.SSE <= l.SSE+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMAPE(t *testing.T) {
	pred := func(x float64) float64 { return 2 * x }
	xs := []float64{1, 2}
	ys := []float64{2, 4}
	if got := MAPE(pred, xs, ys); got != 0 {
		t.Fatalf("MAPE = %v, want 0", got)
	}
	ys = []float64{4, 8} // predictions are half the observations -> 50% error
	if got := MAPE(pred, xs, ys); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MAPE = %v, want 0.5", got)
	}
	if got := MAPE(pred, nil, nil); got != 0 {
		t.Fatalf("MAPE of empty = %v", got)
	}
	// Zero observations are skipped, not divided by.
	if got := MAPE(pred, []float64{1}, []float64{0}); got != 0 {
		t.Fatalf("MAPE with zero obs = %v", got)
	}
}
