package model

import (
	"fmt"
	"math"

	"odbscale/internal/stats"
)

// Piecewise is a two-segment piecewise-linear model of the kind the paper
// fits to CPI(W) and MPI(W): a steep "cached region" line for small x and a
// shallow "scaled region" line for large x, intersecting at the pivot.
type Piecewise struct {
	Cached Linear  // fitted to points with x <= Break
	Scaled Linear  // fitted to points with x >= Break
	Break  float64 // the x of the last point assigned to the cached region
	Pivot  float64 // x coordinate where the two lines intersect
	SSE    float64 // combined sum of squared residuals
}

// Eval returns the model's prediction at x: the cached line left of the
// pivot and the scaled line right of it.
func (p Piecewise) Eval(x float64) float64 {
	if x <= p.Pivot {
		return p.Cached.Eval(x)
	}
	return p.Scaled.Eval(x)
}

// Extrapolate predicts the metric at a configuration size x beyond the
// measured range using the scaled-region line, which is the paper's method
// for projecting large setups from the pivot-point configuration.
func (p Piecewise) Extrapolate(x float64) float64 { return p.Scaled.Eval(x) }

func (p Piecewise) String() string {
	return fmt.Sprintf("cached[%s] scaled[%s] pivot=%.1f", p.Cached, p.Scaled, p.Pivot)
}

// FitPiecewise finds the two-segment piecewise-linear model minimizing the
// combined SSE over all breakpoint choices. Points must be sorted by
// increasing x. Each segment receives at least two points; the breakpoint
// candidate set is the measured x values themselves, matching the paper's
// least-squares-per-region procedure. When the fitted segments are
// (near-)parallel their intersection is meaningless, so the pivot falls
// back to the midpoint of the breakpoint interval.
func FitPiecewise(xs, ys []float64) (Piecewise, error) {
	if len(xs) != len(ys) {
		return Piecewise{}, fmt.Errorf("model: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 4 {
		return Piecewise{}, ErrTooFewPoints
	}
	for i := 1; i < n; i++ {
		if xs[i] < xs[i-1] {
			return Piecewise{}, fmt.Errorf("model: x values not sorted at index %d", i)
		}
	}
	best := Piecewise{SSE: math.Inf(1)}
	found := false
	// k is the index of the last point assigned to the cached region;
	// the segments are disjoint so that a point lying exactly on one line
	// never contaminates the other segment's fit.
	for k := 1; k <= n-3; k++ {
		cached, err := FitLinear(xs[:k+1], ys[:k+1])
		if err != nil {
			continue
		}
		scaled, err := FitLinear(xs[k+1:], ys[k+1:])
		if err != nil {
			continue
		}
		pivot, err := Intersection(cached, scaled)
		if err != nil || pivot < xs[0] || pivot > xs[n-1] {
			// Near-parallel segments put the intersection far outside the
			// measured range (or nowhere), where it has no physical
			// meaning as a regime boundary. The breakpoint search already
			// locates the regime change between xs[k] and xs[k+1]; use
			// that interval's midpoint as the data-driven pivot.
			pivot = (xs[k] + xs[k+1]) / 2
		}
		sse := cached.SSE + scaled.SSE
		if sse < best.SSE {
			best = Piecewise{Cached: cached, Scaled: scaled, Break: xs[k], Pivot: pivot, SSE: sse}
			found = true
		}
	}
	if !found {
		return Piecewise{}, fmt.Errorf("model: no valid piecewise fit (degenerate data)")
	}
	return best, nil
}

// MAPE returns the mean absolute percentage error of model predictions
// against the observations, a convenience for validating extrapolations.
func MAPE(predict func(float64) float64, xs, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	cnt := 0
	for i := range xs {
		if stats.Close(ys[i], 0) {
			continue // a (near-)zero actual has no defined relative error
		}
		sum += math.Abs(predict(xs[i])-ys[i]) / math.Abs(ys[i])
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
