package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	l, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-2) > 1e-12 || math.Abs(l.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", l)
	}
	if l.R2 < 1-1e-12 {
		t.Fatalf("R2 = %v, want 1", l.R2)
	}
	if l.SSE > 1e-12 {
		t.Fatalf("SSE = %v, want 0", l.SSE)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error for single point")
	}
	if _, err := FitLinear([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("want error for identical x")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
}

func TestFitLinearConstantData(t *testing.T) {
	l, err := FitLinear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope) > 1e-12 || math.Abs(l.Intercept-5) > 1e-12 {
		t.Fatalf("fit of constant = %+v", l)
	}
	if l.R2 != 1 {
		t.Fatalf("R2 of constant data = %v, want 1", l.R2)
	}
}

// Property: fitting recovers an arbitrary noiseless line exactly.
func TestFitLinearRecoversLineQuick(t *testing.T) {
	f := func(slope, intercept float64, seed int64) bool {
		if math.Abs(slope) > 1e6 || math.Abs(intercept) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 8)
		ys := make([]float64, 8)
		for i := range xs {
			xs[i] = float64(i)*10 + rng.Float64()
			ys[i] = intercept + slope*xs[i]
		}
		l, err := FitLinear(xs, ys)
		if err != nil {
			return false
		}
		scale := math.Max(1, math.Max(math.Abs(slope), math.Abs(intercept)))
		return math.Abs(l.Slope-slope) < 1e-6*scale && math.Abs(l.Intercept-intercept) < 1e-5*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: residuals of the OLS fit sum to ~zero.
func TestFitLinearResidualsSumZeroQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + rng.Float64()
			ys[i] = rng.NormFloat64() * 100
		}
		l, err := FitLinear(xs, ys)
		if err != nil {
			return false
		}
		sum := 0.0
		for i := range xs {
			sum += ys[i] - l.Eval(xs[i])
		}
		return math.Abs(sum) < 1e-6*float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersection(t *testing.T) {
	a := Linear{Slope: 2, Intercept: 0}
	b := Linear{Slope: 1, Intercept: 3}
	x, err := Intersection(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-3) > 1e-12 {
		t.Fatalf("intersection = %v, want 3", x)
	}
	if _, err := Intersection(a, a); err == nil {
		t.Fatal("parallel lines should not intersect")
	}
}

func TestLinearString(t *testing.T) {
	l := Linear{Slope: 1, Intercept: 2, R2: 0.5, N: 3}
	if l.String() == "" {
		t.Fatal("empty String()")
	}
}
