// Package model implements the regression machinery behind the paper's
// Section 6: ordinary least-squares linear fits and two-segment piecewise
// linear fits whose segment intersection is the "pivot point" separating
// the cached region from the scaled region of OLTP behaviour.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Linear is a fitted line y = Intercept + Slope*x.
type Linear struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination of the fit
	SSE       float64 // sum of squared residuals
	N         int     // number of points fitted
}

// Eval returns the model's prediction at x.
func (l Linear) Eval(x float64) float64 { return l.Intercept + l.Slope*x }

// String renders the line in slope-intercept form.
func (l Linear) String() string {
	return fmt.Sprintf("y = %.6g + %.6g*x (R2=%.4f, n=%d)", l.Intercept, l.Slope, l.R2, l.N)
}

// ErrTooFewPoints is returned when a fit is requested on fewer points than
// the model has degrees of freedom.
var ErrTooFewPoints = errors.New("model: too few points")

// FitLinear computes the ordinary least-squares line through (xs, ys).
// It requires at least two points with distinct x values.
func FitLinear(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, fmt.Errorf("model: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return Linear{}, ErrTooFewPoints
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx <= 0 {
		return Linear{}, errors.New("model: all x values identical")
	}
	l := Linear{N: n}
	l.Slope = sxy / sxx
	l.Intercept = my - l.Slope*mx
	for i := 0; i < n; i++ {
		r := ys[i] - l.Eval(xs[i])
		l.SSE += r * r
	}
	if syy > 0 {
		l.R2 = 1 - l.SSE/syy
	} else {
		l.R2 = 1 // constant data perfectly explained by a flat line
	}
	return l, nil
}

// Intersection returns the x coordinate where two lines cross.
// Parallel lines have no intersection.
func Intersection(a, b Linear) (float64, error) {
	ds := a.Slope - b.Slope
	if math.Abs(ds) < 1e-300 {
		return 0, errors.New("model: parallel lines do not intersect")
	}
	return (b.Intercept - a.Intercept) / ds, nil
}
