// Package cpu models the processor core: a gshare branch predictor, a data
// TLB, and the paper's CPI accounting — the fixed stall costs of Table 3
// and the component formulas of Table 4 that decompose measured CPI into
// instruction, branch, TLB, trace-cache, L2, L3 and "other" contributions.
package cpu

// BranchPredictor is a gselect predictor (Pan/So/Rahmeh): the branch PC
// concatenated with a short global history indexes a table of 2-bit
// saturating counters, so each branch site owns a private set of history
// contexts as long as the table is large enough. The history length is
// configurable; short histories limit destructive aliasing between
// unrelated branches.
type BranchPredictor struct {
	history  uint64
	bits     uint
	histBits uint
	table    []uint8

	predictions uint64
	mispredicts uint64
}

// NewBranchPredictor builds a gshare predictor with 2^bits counters and
// histBits bits of global history folded into the index.
func NewBranchPredictor(bits, histBits uint) *BranchPredictor {
	if bits == 0 || bits > 24 {
		panic("cpu: branch predictor bits out of range")
	}
	if histBits > bits {
		panic("cpu: history longer than index")
	}
	t := make([]uint8, 1<<bits)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &BranchPredictor{bits: bits, histBits: histBits, table: t}
}

// Record feeds one resolved branch (identified by its PC) with its actual
// outcome and reports whether the predictor had predicted it correctly.
func (b *BranchPredictor) Record(pc uint64, taken bool) bool {
	idx := ((pc << b.histBits) | (b.history & ((1 << b.histBits) - 1))) & ((1 << b.bits) - 1)
	ctr := b.table[idx]
	predictTaken := ctr >= 2
	correct := predictTaken == taken
	if taken && ctr < 3 {
		b.table[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		b.table[idx] = ctr - 1
	}
	b.history <<= 1
	if taken {
		b.history |= 1
	}
	b.predictions++
	if !correct {
		b.mispredicts++
	}
	return correct
}

// MispredictRate returns mispredictions per prediction.
func (b *BranchPredictor) MispredictRate() float64 {
	if b.predictions == 0 {
		return 0
	}
	return float64(b.mispredicts) / float64(b.predictions)
}

// Counts returns total predictions and mispredictions.
func (b *BranchPredictor) Counts() (predictions, mispredicts uint64) {
	return b.predictions, b.mispredicts
}

// ResetStats clears the counters, preserving predictor state.
func (b *BranchPredictor) ResetStats() { b.predictions, b.mispredicts = 0, 0 }
