package cpu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBranchPredictorLearnsBias(t *testing.T) {
	bp := NewBranchPredictor(12, 4)
	// A strongly biased branch should be predicted almost perfectly after
	// warm-up.
	for i := 0; i < 1000; i++ {
		bp.Record(0x400100, true)
	}
	bp.ResetStats()
	for i := 0; i < 1000; i++ {
		bp.Record(0x400100, true)
	}
	if r := bp.MispredictRate(); r > 0.01 {
		t.Fatalf("biased branch mispredict rate = %v", r)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	bp := NewBranchPredictor(14, 4)
	// A short repeating pattern is capturable by global history.
	pattern := []bool{true, true, true, false}
	for i := 0; i < 4000; i++ {
		bp.Record(0x8000, pattern[i%len(pattern)])
	}
	bp.ResetStats()
	for i := 0; i < 4000; i++ {
		bp.Record(0x8000, pattern[i%len(pattern)])
	}
	if r := bp.MispredictRate(); r > 0.05 {
		t.Fatalf("loop pattern mispredict rate = %v", r)
	}
}

func TestBranchPredictorRandomIsHard(t *testing.T) {
	bp := NewBranchPredictor(12, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		bp.Record(uint64(rng.Intn(64))<<2, rng.Intn(2) == 0)
	}
	if r := bp.MispredictRate(); r < 0.3 {
		t.Fatalf("random branches too predictable: %v", r)
	}
	p, m := bp.Counts()
	if p != 20000 || m == 0 {
		t.Fatalf("counts = %d, %d", p, m)
	}
}

func TestBranchPredictorPanics(t *testing.T) {
	for _, bits := range []uint{0, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("want panic for bits=%d", bits)
				}
			}()
			NewBranchPredictor(bits, 0)
		}()
	}
}

func TestTLBHitsAfterFill(t *testing.T) {
	tlb := NewTLB(64, 4, 4096)
	if tlb.Access(0x1000) {
		t.Fatal("cold TLB access hit")
	}
	if !tlb.Access(0x1fff) { // same page
		t.Fatal("same-page access missed")
	}
	if tlb.Access(0x2000) { // next page
		t.Fatal("new page hit")
	}
	a, m := tlb.Counts()
	if a != 3 || m != 2 {
		t.Fatalf("counts = %d, %d", a, m)
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(64, 4, 4096)
	tlb.Access(0x5000)
	tlb.Flush()
	if tlb.Access(0x5000) {
		t.Fatal("hit after flush")
	}
}

func TestTLBCapacity(t *testing.T) {
	tlb := NewTLB(16, 4, 4096)
	// Touch 64 pages round-robin: working set 4x capacity must thrash.
	for round := 0; round < 10; round++ {
		for p := 0; p < 64; p++ {
			tlb.Access(uint64(p) * 4096)
		}
	}
	if r := tlb.MissRate(); r < 0.9 {
		t.Fatalf("thrash miss rate = %v, want ~1", r)
	}
	// And a tiny working set must mostly hit.
	tlb2 := NewTLB(16, 4, 4096)
	for round := 0; round < 100; round++ {
		for p := 0; p < 8; p++ {
			tlb2.Access(uint64(p) * 4096)
		}
	}
	if r := tlb2.MissRate(); r > 0.05 {
		t.Fatalf("resident miss rate = %v", r)
	}
}

func TestTLBGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewTLB(48, 4, 4096) // 12 sets, not a power of two
}

func TestTable3Costs(t *testing.T) {
	c := Table3Costs()
	if c.InstBase != 0.5 || c.BranchMispred != 20 || c.TLBMiss != 20 ||
		c.TCMiss != 20 || c.L2Miss != 16 || c.L3Miss != 300 || c.BusTime1P != 102 {
		t.Fatalf("Table 3 costs = %+v", c)
	}
}

func TestAssembleFormulas(t *testing.T) {
	c := Table3Costs()
	r := EventRates{
		BranchMispredPI: 0.002,
		TLBMissPI:       0.001,
		TCMissPI:        0.003,
		L2MissPI:        0.010,
		L3MissPI:        0.006,
		BusTime:         150,
		OtherPI:         0.1,
	}
	b := Assemble(c, r)
	if b.Inst != 0.5 {
		t.Fatalf("Inst = %v", b.Inst)
	}
	if math.Abs(b.Branch-0.04) > 1e-12 {
		t.Fatalf("Branch = %v", b.Branch)
	}
	if math.Abs(b.L2-(0.010-0.006)*16) > 1e-12 {
		t.Fatalf("L2 = %v", b.L2)
	}
	// L3 = MPI * (300 + busTime - busTime1P) = 0.006 * (300 + 48)
	if math.Abs(b.L3-0.006*348) > 1e-12 {
		t.Fatalf("L3 = %v", b.L3)
	}
	if math.Abs(b.Total()-(0.5+0.04+0.02+0.06+0.064+2.088+0.1)) > 1e-9 {
		t.Fatalf("Total = %v", b.Total())
	}
}

func TestAssembleClamps(t *testing.T) {
	c := Table3Costs()
	// L3 misses exceeding L2 misses (possible with sampling noise) must
	// not produce a negative L2 component, and a bus time below the 1P
	// baseline must not discount the L3 cost.
	b := Assemble(c, EventRates{L2MissPI: 0.001, L3MissPI: 0.002, BusTime: 50})
	if b.L2 != 0 {
		t.Fatalf("L2 = %v, want 0", b.L2)
	}
	if math.Abs(b.L3-0.002*300) > 1e-12 {
		t.Fatalf("L3 = %v", b.L3)
	}
}

// Property: total equals the sum of components, and shares sum to 1.
func TestBreakdownTotalQuick(t *testing.T) {
	f := func(a, b, c, d, e, g, h float64) bool {
		abs := func(x float64) float64 {
			x = math.Abs(x)
			if math.IsNaN(x) || math.IsInf(x, 0) || x > 1e6 {
				return 1
			}
			return x
		}
		bd := Breakdown{Inst: abs(a), Branch: abs(b), TLB: abs(c), TC: abs(d), L2: abs(e), L3: abs(g), Other: abs(h)}
		sum := 0.0
		for _, comp := range bd.Components() {
			sum += comp.Value
		}
		if math.Abs(sum-bd.Total()) > 1e-9 {
			return false
		}
		shareSum := 0.0
		for _, s := range bd.Share() {
			shareSum += s
		}
		return bd.Total() == 0 || math.Abs(shareSum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Assemble(Table3Costs(), EventRates{L3MissPI: 0.005, BusTime: 102})
	if b.String() == "" {
		t.Fatal("empty String")
	}
}
