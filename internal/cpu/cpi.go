package cpu

import (
	"fmt"
	"sort"
)

// StallCosts are the fixed per-event CPU stall cycles of the paper's
// Table 3. The L3 cost is adjusted at assembly time by the bus-transaction
// overage relative to the 1P baseline (Table 4's L3 row).
type StallCosts struct {
	InstBase      float64 // cycles per instruction with no stalls
	BranchMispred float64
	TLBMiss       float64
	TCMiss        float64
	L2Miss        float64 // applied to L2 misses that hit in L3
	L3Miss        float64 // memory access portion of an L3 miss
	BusTime1P     float64 // measured IOQ transaction time on 1P
}

// Table3Costs returns the paper's measured/assigned costs.
func Table3Costs() StallCosts {
	return StallCosts{
		InstBase:      0.5,
		BranchMispred: 20,
		TLBMiss:       20,
		TCMiss:        20,
		L2Miss:        16,
		L3Miss:        300,
		BusTime1P:     102,
	}
}

// EventRates are per-instruction event frequencies measured over an
// interval — the inputs to the Table 4 formulas.
type EventRates struct {
	BranchMispredPI float64 // mispredicted branches per instruction
	TLBMissPI       float64
	TCMissPI        float64
	L2MissPI        float64 // all references missing L2
	L3MissPI        float64 // references missing L3 (MPI)
	BusTime         float64 // current mean IOQ bus-transaction time
	OtherPI         float64 // residual stall cycles per instruction
}

// Breakdown is the per-component CPI decomposition of Figure 12.
type Breakdown struct {
	Inst   float64
	Branch float64
	TLB    float64
	TC     float64
	L2     float64
	L3     float64
	Other  float64
}

// Assemble applies the Table 4 formulas to the measured event rates.
func Assemble(c StallCosts, r EventRates) Breakdown {
	l2NotL3 := r.L2MissPI - r.L3MissPI
	if l2NotL3 < 0 {
		l2NotL3 = 0
	}
	busDelta := r.BusTime - c.BusTime1P
	if busDelta < 0 {
		busDelta = 0
	}
	return Breakdown{
		Inst:   c.InstBase,
		Branch: r.BranchMispredPI * c.BranchMispred,
		TLB:    r.TLBMissPI * c.TLBMiss,
		TC:     r.TCMissPI * c.TCMiss,
		L2:     l2NotL3 * c.L2Miss,
		L3:     r.L3MissPI * (c.L3Miss + busDelta),
		Other:  r.OtherPI,
	}
}

// Total returns the computed CPI (sum of the components).
func (b Breakdown) Total() float64 {
	return b.Inst + b.Branch + b.TLB + b.TC + b.L2 + b.L3 + b.Other
}

// Components returns name/value pairs in the paper's Figure 12 order.
func (b Breakdown) Components() []struct {
	Name  string
	Value float64
} {
	return []struct {
		Name  string
		Value float64
	}{
		{"Inst", b.Inst},
		{"Branch", b.Branch},
		{"TLB", b.TLB},
		{"TC", b.TC},
		{"L2", b.L2},
		{"L3", b.L3},
		{"Other", b.Other},
	}
}

// Share returns each component's fraction of the total CPI, keyed by name.
func (b Breakdown) Share() map[string]float64 {
	total := b.Total()
	out := make(map[string]float64, 7)
	if total <= 0 {
		return out
	}
	for _, c := range b.Components() {
		out[c.Name] = c.Value / total
	}
	return out
}

// String renders the breakdown largest-first.
func (b Breakdown) String() string {
	cs := b.Components()
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Value > cs[j].Value })
	s := fmt.Sprintf("CPI %.3f:", b.Total())
	for _, c := range cs {
		s += fmt.Sprintf(" %s=%.3f", c.Name, c.Value)
	}
	return s
}
