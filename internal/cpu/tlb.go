package cpu

// TLB is a small set-associative translation lookaside buffer over 4 KB
// pages with LRU replacement. The Xeon MP's DTLB holds 64 entries.
type TLB struct {
	sets  [][]tlbEntry
	ways  int
	mask  uint64
	tick  uint64
	shift uint

	accesses uint64
	misses   uint64
}

type tlbEntry struct {
	page  uint64
	valid bool
	touch uint64
}

// NewTLB builds a TLB with the given total entries and associativity over
// pageSize-byte pages. entries/ways must be a power of two.
func NewTLB(entries, ways, pageSize int) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("cpu: bad TLB geometry")
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic("cpu: TLB set count not a power of two")
	}
	shift := uint(0)
	for 1<<shift < pageSize {
		shift++
	}
	t := &TLB{sets: make([][]tlbEntry, nsets), ways: ways, mask: uint64(nsets - 1), shift: shift}
	for i := range t.sets {
		t.sets[i] = make([]tlbEntry, ways)
	}
	return t
}

// Access translates the byte address addr, returning whether it hit.
func (t *TLB) Access(addr uint64) bool {
	t.accesses++
	t.tick++
	page := addr >> t.shift
	set := t.sets[page&t.mask]
	for i := range set {
		if set[i].valid && set[i].page == page {
			set[i].touch = t.tick
			return true
		}
	}
	t.misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].touch < set[victim].touch {
			victim = i
		}
	}
	set[victim] = tlbEntry{page: page, valid: true, touch: t.tick}
	return false
}

// Flush empties the TLB, as a context switch to a different address space
// does on a processor without tagged TLBs.
func (t *TLB) Flush() {
	for i := range t.sets {
		for j := range t.sets[i] {
			t.sets[i][j].valid = false
		}
	}
}

// MissRate returns misses per access.
func (t *TLB) MissRate() float64 {
	if t.accesses == 0 {
		return 0
	}
	return float64(t.misses) / float64(t.accesses)
}

// Counts returns accesses and misses.
func (t *TLB) Counts() (accesses, misses uint64) { return t.accesses, t.misses }

// ResetStats clears counters without flushing translations.
func (t *TLB) ResetStats() { t.accesses, t.misses = 0, 0 }
