// Package core implements the paper's primary contribution: the iron law
// of database performance and the piecewise-linear scaling methodology
// built on it.
//
// The classic iron law of processor performance, S = F / (PL × CPI), is
// adapted to transaction processing by letting the path length be the
// average instructions executed per transaction (IPX), giving, for a
// multiprocessor,
//
//	TPS = (P × F) / (IPX × CPI).
//
// Database throughput can thus only be improved by raising the clock or
// processor count, or by lowering IPX or CPI — and the paper's
// characterization shows how IPX and CPI move as the workload scales.
// The second half of the contribution is the observation that CPI(W) and
// MPI(W) are accurately described by two linear regions — a steep cached
// region and a shallow scaled region — whose intersection, the pivot
// point, is the smallest configuration that behaves like a scaled setup.
package core

import (
	"errors"
	"fmt"
	"math"

	"odbscale/internal/model"
	"odbscale/internal/stats"
)

// IronLaw holds the terms of the database iron law.
type IronLaw struct {
	Processors  int
	FrequencyHz float64
	IPX         float64 // instructions per transaction
	CPI         float64 // cycles per instruction
	Utilization float64 // fraction of CPU cycles doing work (1 for ideal)
}

// TPS evaluates the iron law: TPS = util × P × F / (IPX × CPI).
func (l IronLaw) TPS() float64 {
	if l.IPX <= 0 || l.CPI <= 0 {
		return 0
	}
	u := l.Utilization
	if u <= 0 {
		u = 1 // unset utilization: assume fully busy processors
	}
	return u * float64(l.Processors) * l.FrequencyHz / (l.IPX * l.CPI)
}

// CyclesPerTxn returns the per-processor cycle cost of one transaction.
func (l IronLaw) CyclesPerTxn() float64 { return l.IPX * l.CPI }

func (l IronLaw) String() string {
	return fmt.Sprintf("TPS = %.0f  (P=%d F=%.2gGHz IPX=%.3gM CPI=%.3g util=%.2f)",
		l.TPS(), l.Processors, l.FrequencyHz/1e9, l.IPX/1e6, l.CPI, l.Utilization)
}

// Verify checks that a measured throughput satisfies the iron law within
// the given relative tolerance, returning a descriptive error otherwise.
func (l IronLaw) Verify(measuredTPS, tolerance float64) error {
	predicted := l.TPS()
	if predicted <= 0 {
		return errors.New("core: iron law terms incomplete")
	}
	rel := math.Abs(measuredTPS-predicted) / predicted
	if rel > tolerance {
		return fmt.Errorf("core: measured %.1f TPS deviates %.1f%% from iron law %.1f",
			measuredTPS, rel*100, predicted)
	}
	return nil
}

// Speedup returns the throughput ratio of two iron-law operating points
// (for example, the same workload on more processors).
func Speedup(after, before IronLaw) float64 {
	b := before.TPS()
	if b <= 0 {
		return 0
	}
	return after.TPS() / b
}

// ScalingFit is the two-region characterization of one metric over the
// warehouse axis.
type ScalingFit struct {
	Metric string
	Fit    model.Piecewise
}

// Pivot returns the metric's pivot point in warehouses.
func (s ScalingFit) Pivot() float64 { return s.Fit.Pivot }

// Characterization bundles the CPI and MPI scaling fits of one processor
// configuration, as in the paper's Figures 17/18 and Table 5.
type Characterization struct {
	Processors int
	CPI        ScalingFit
	MPI        ScalingFit
}

// Characterize fits the two-region model to CPI(W) and MPI(W) series.
// Series must be sorted by warehouses.
func Characterize(p int, cpi, mpi stats.Series) (Characterization, error) {
	cpiFit, err := model.FitPiecewise(cpi.Xs(), cpi.Ys())
	if err != nil {
		return Characterization{}, fmt.Errorf("core: CPI fit: %w", err)
	}
	mpiFit, err := model.FitPiecewise(mpi.Xs(), mpi.Ys())
	if err != nil {
		return Characterization{}, fmt.Errorf("core: MPI fit: %w", err)
	}
	return Characterization{
		Processors: p,
		CPI:        ScalingFit{Metric: "CPI", Fit: cpiFit},
		MPI:        ScalingFit{Metric: "MPI", Fit: mpiFit},
	}, nil
}

// RepresentativePivot returns the pivot the paper recommends basing
// representative configurations on: the CPI pivot, because CPI accounts
// for the latency effects (growing bus-transaction time) that MPI cannot
// see, making its transition the more conservative of the two.
func (c Characterization) RepresentativePivot() float64 { return c.CPI.Pivot() }

// MinimalConfiguration returns the smallest warehouse count that exhibits
// scaled-setup behaviour: the representative pivot padded by the given
// safety margin (for example 0.25 for 25%), rounded up to a whole
// warehouse.
func (c Characterization) MinimalConfiguration(margin float64) int {
	w := c.RepresentativePivot() * (1 + margin)
	return int(math.Ceil(w))
}

// Extrapolate predicts the metric at warehouse count w using the
// scaled-region line — the paper's method for projecting configurations
// too large to measure or simulate.
func (s ScalingFit) Extrapolate(w float64) float64 { return s.Fit.Extrapolate(w) }

// ExtrapolationError reports the mean absolute percentage error of
// scaled-region extrapolation against observed points at or beyond the
// pivot.
func (s ScalingFit) ExtrapolationError(observed stats.Series) float64 {
	var xs, ys []float64
	for _, pt := range observed.Points {
		if pt.X >= s.Fit.Pivot {
			xs = append(xs, pt.X)
			ys = append(ys, pt.Y)
		}
	}
	return model.MAPE(s.Fit.Extrapolate, xs, ys)
}
