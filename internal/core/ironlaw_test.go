package core

import (
	"math"
	"testing"
	"testing/quick"

	"odbscale/internal/stats"
)

func TestIronLawTPS(t *testing.T) {
	l := IronLaw{Processors: 4, FrequencyHz: 1.6e9, IPX: 1.2e6, CPI: 4, Utilization: 1}
	// 4 * 1.6e9 / (1.2e6 * 4) = 1333.3
	want := 4 * 1.6e9 / (1.2e6 * 4)
	if math.Abs(l.TPS()-want) > 1e-9 {
		t.Fatalf("TPS = %v, want %v", l.TPS(), want)
	}
	if l.CyclesPerTxn() != 4.8e6 {
		t.Fatalf("CyclesPerTxn = %v", l.CyclesPerTxn())
	}
	if l.String() == "" {
		t.Fatal("empty String")
	}
}

func TestIronLawUtilization(t *testing.T) {
	base := IronLaw{Processors: 1, FrequencyHz: 1e9, IPX: 1e6, CPI: 2, Utilization: 1}
	half := base
	half.Utilization = 0.5
	if math.Abs(half.TPS()-base.TPS()/2) > 1e-9 {
		t.Fatal("utilization not applied")
	}
	zero := base
	zero.Utilization = 0 // treated as ideal
	if zero.TPS() != base.TPS() {
		t.Fatal("zero utilization should default to 1")
	}
}

func TestIronLawDegenerate(t *testing.T) {
	if (IronLaw{Processors: 1, FrequencyHz: 1e9}).TPS() != 0 {
		t.Fatal("degenerate law should give 0")
	}
	if err := (IronLaw{}).Verify(100, 0.1); err == nil {
		t.Fatal("Verify of incomplete law should error")
	}
}

func TestVerify(t *testing.T) {
	l := IronLaw{Processors: 2, FrequencyHz: 1e9, IPX: 1e6, CPI: 2, Utilization: 1}
	tps := l.TPS()
	if err := l.Verify(tps*1.01, 0.05); err != nil {
		t.Fatalf("within tolerance rejected: %v", err)
	}
	if err := l.Verify(tps*1.5, 0.05); err == nil {
		t.Fatal("50%% deviation accepted")
	}
}

// Property: the iron law is exactly inverse-proportional in IPX and CPI
// and proportional in P and F.
func TestIronLawProportionalityQuick(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		k := float64(2 + seed%5)
		l := IronLaw{Processors: 2, FrequencyHz: 1e9, IPX: 1e6, CPI: 3, Utilization: 1}
		double := l
		double.Processors *= 2
		if math.Abs(double.TPS()-2*l.TPS()) > 1e-6 {
			return false
		}
		slower := l
		slower.CPI *= k
		return math.Abs(slower.TPS()*k-l.TPS()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	a := IronLaw{Processors: 4, FrequencyHz: 1e9, IPX: 1e6, CPI: 4, Utilization: 1}
	b := IronLaw{Processors: 1, FrequencyHz: 1e9, IPX: 1e6, CPI: 3, Utilization: 1}
	// 4P at CPI 4 vs 1P at CPI 3: speedup = 4 * 3/4 = 3.
	if got := Speedup(a, b); math.Abs(got-3) > 1e-9 {
		t.Fatalf("Speedup = %v, want 3", got)
	}
	if Speedup(a, IronLaw{}) != 0 {
		t.Fatal("speedup over zero baseline should be 0")
	}
}

func synthSeries(name string, pivot, s1, s2, i1 float64) stats.Series {
	ser := stats.Series{Name: name}
	i2 := i1 + s1*pivot - s2*pivot
	for _, w := range []float64{10, 25, 50, 100, 150, 200, 300, 400, 500, 800} {
		if w <= pivot {
			ser.Add(w, i1+s1*w)
		} else {
			ser.Add(w, i2+s2*w)
		}
	}
	return ser
}

func TestCharacterize(t *testing.T) {
	cpi := synthSeries("cpi", 130, 0.02, 0.002, 2)
	mpi := synthSeries("mpi", 145, 0.00006, 0.000004, 0.004)
	c, err := Characterize(4, cpi, mpi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.CPI.Pivot()-130) > 5 {
		t.Fatalf("CPI pivot = %v, want ~130", c.CPI.Pivot())
	}
	if math.Abs(c.MPI.Pivot()-145) > 10 {
		t.Fatalf("MPI pivot = %v, want ~145", c.MPI.Pivot())
	}
	if c.RepresentativePivot() != c.CPI.Pivot() {
		t.Fatal("representative pivot must be the CPI pivot")
	}
	if min := c.MinimalConfiguration(0.25); min < 160 || min > 170 {
		t.Fatalf("MinimalConfiguration = %d, want ~163", min)
	}
}

func TestCharacterizeErrors(t *testing.T) {
	short := stats.Series{Name: "x"}
	short.Add(1, 1)
	if _, err := Characterize(1, short, short); err == nil {
		t.Fatal("want error for too few points")
	}
}

func TestExtrapolation(t *testing.T) {
	cpi := synthSeries("cpi", 130, 0.02, 0.002, 2)
	c, err := Characterize(4, cpi, synthSeries("mpi", 130, 0.0001, 0.00001, 0.004))
	if err != nil {
		t.Fatal(err)
	}
	// Extrapolating to 2000 warehouses follows the scaled line exactly.
	want := c.CPI.Fit.Scaled.Eval(2000)
	if got := c.CPI.Extrapolate(2000); got != want {
		t.Fatalf("Extrapolate = %v, want %v", got, want)
	}
	// Against its own (noiseless) observations, the error is ~zero.
	if e := c.CPI.ExtrapolationError(cpi); e > 1e-9 {
		t.Fatalf("extrapolation error = %v on noiseless data", e)
	}
}
