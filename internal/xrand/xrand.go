// Package xrand supplies the deterministic random-number utilities the
// simulator depends on: splittable per-component seeds, Zipf-distributed
// block selection (database buffer pools exhibit highly skewed reuse), the
// TPC-C NURand non-uniform key generator that ODB's transaction mix uses
// to pick customers and items, and exponential draws for service times.
//
// Every source of randomness in the repository flows through a *Rand
// constructed from an explicit seed, so all simulations are reproducible.
package xrand

import (
	"math"
	"math/bits"
	"math/rand"
)

// Rand wraps math/rand with the simulator's distributions. The hot
// uniform draws (Uint64, Int63, Float64, Intn) are shadowed with a
// splitmix64 counter generator: one add and three multiply-xor rounds per
// draw, with no interface indirection. The embedded math/rand generator
// still serves the cold ziggurat distributions (ExpFloat64, NormFloat64)
// and Perm as an independent stream derived from the same seed.
type Rand struct {
	*rand.Rand
	state uint64 // splitmix64 counter for the fast paths
}

// splitmix64 is the output stage of the splitmix64 generator.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a deterministic generator for the given seed.
func New(seed int64) *Rand {
	return &Rand{
		Rand:  rand.New(rand.NewSource(seed)),
		state: splitmix64(uint64(seed) + 0x9e3779b97f4a7c15),
	}
}

// Uint64 returns a uniform 64-bit draw (fast path).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return splitmix64(r.state)
}

// Int63 returns a uniform draw in [0, 2^63) (fast path).
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform draw in [0, 1) (fast path).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform draw in [0, n); it panics if n <= 0. The bound
// is applied with the fixed-point multiply method; its bias (< n/2^64) is
// far below anything a simulation can resolve.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	hi, _ := bits.Mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// Split derives an independent child generator identified by id. Children
// of the same parent with different ids produce uncorrelated streams, and
// the derivation is stable across runs.
func (r *Rand) Split(id uint64) *Rand {
	// Mix the id through splitmix64 so that small consecutive ids land far
	// apart in seed space.
	z := splitmix64(id + 0x9e3779b97f4a7c15)
	return New(r.Int63() ^ int64(z))
}

// Exp returns an exponentially distributed draw with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// UniformInt returns an integer uniformly distributed in [lo, hi]
// inclusive; it panics if hi < lo.
func (r *Rand) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("xrand: UniformInt with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// NURand implements the TPC-C non-uniform random function
// NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y-x+1)) + x,
// which concentrates accesses on a subset of keys — the access skew that
// makes small-warehouse OLTP configurations contend on hot blocks.
func (r *Rand) NURand(a, x, y, c int) int {
	return (((r.UniformInt(0, a) | r.UniformInt(x, y)) + c) % (y - x + 1)) + x
}

// Zipf draws from {0, 1, ..., n-1} with P(k) proportional to
// 1/(v+k)^s, the parameterization used in cache-behaviour studies (theta
// just below 1 models database block popularity well).
//
// The sampler is an alias table (Vose's method): construction is O(n) and
// each draw costs exactly one Uint64 from the underlying stream plus two
// array reads — no rejection loop, no Exp/Log calls. The reference
// synthesizer draws from these tables for every memory reference, so this
// is the single hottest function in a simulation.
type Zipf struct {
	r      *Rand
	prob   []float64 // scaled acceptance probability per slot
	alias  []uint32  // fallback item per slot
	n      uint64
	single bool // n == 1: every draw is 0, no stream consumption skew
}

// NewZipf builds a Zipf source over n items with skew theta in (0, ~4).
// The pmf matches math/rand's Zipf parameterization: s > 1 is required
// there, so theta <= 1 maps to s = 1.0001 with a larger v flattening the
// head to emulate sub-1 skew levels acceptably for cache modelling.
func NewZipf(r *Rand, theta float64, n uint64) *Zipf {
	if n == 0 {
		panic("xrand: Zipf over zero items")
	}
	if n > math.MaxUint32 {
		panic("xrand: Zipf table too large")
	}
	s := theta
	if s <= 1 {
		s = 1.0001
	}
	v := 1.0
	if theta < 1 {
		v = 1 + (1-theta)*float64(n)/4
	}
	z := &Zipf{r: r, n: n, single: n == 1}
	if z.single {
		return z
	}
	// Vose's alias method over w[k] = (v+k)^-s.
	w := make([]float64, n)
	total := 0.0
	for k := range w {
		w[k] = math.Pow(v+float64(k), -s)
		total += w[k]
	}
	scale := float64(n) / total
	z.prob = make([]float64, n)
	z.alias = make([]uint32, n)
	// Partition slots into under- and over-full; process deterministically
	// in index order so the table (and thus the stream mapping) is stable.
	small := make([]uint32, 0, n)
	large := make([]uint32, 0, n)
	for k := uint64(0); k < n; k++ {
		w[k] *= scale
		if w[k] < 1 {
			small = append(small, uint32(k))
		} else {
			large = append(large, uint32(k))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s0 := small[len(small)-1]
		small = small[:len(small)-1]
		l0 := large[len(large)-1]
		z.prob[s0] = w[s0]
		z.alias[s0] = l0
		w[l0] -= 1 - w[s0]
		if w[l0] < 1 {
			large = large[:len(large)-1]
			small = append(small, l0)
		}
	}
	for _, k := range large {
		z.prob[k] = 1
	}
	for _, k := range small {
		// Numerical leftovers: slot keeps itself.
		z.prob[k] = 1
	}
	return z
}

// Next returns the next draw. One 64-bit draw provides both the slot index
// (via the high half of the 128-bit product u*n) and an independent
// uniform fraction (the low half) for the accept/alias test.
func (z *Zipf) Next() uint64 {
	if z.single {
		return 0
	}
	u := z.r.Uint64()
	hi, lo := bits.Mul64(u, z.n)
	frac := float64(lo>>11) * (1.0 / (1 << 53))
	if frac < z.prob[hi] {
		return hi
	}
	return uint64(z.alias[hi])
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a normal draw with the given mean and standard deviation,
// truncated below at min to keep simulated quantities physical.
func (r *Rand) Normal(mean, stddev, min float64) float64 {
	x := mean + r.NormFloat64()*stddev
	return math.Max(x, min)
}
