// Package xrand supplies the deterministic random-number utilities the
// simulator depends on: splittable per-component seeds, Zipf-distributed
// block selection (database buffer pools exhibit highly skewed reuse), the
// TPC-C NURand non-uniform key generator that ODB's transaction mix uses
// to pick customers and items, and exponential draws for service times.
//
// Every source of randomness in the repository flows through a *Rand
// constructed from an explicit seed, so all simulations are reproducible.
package xrand

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand with the simulator's distributions.
type Rand struct {
	*rand.Rand
}

// New returns a deterministic generator for the given seed.
func New(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// Split derives an independent child generator identified by id. Children
// of the same parent with different ids produce uncorrelated streams, and
// the derivation is stable across runs.
func (r *Rand) Split(id uint64) *Rand {
	// Mix the id through splitmix64 so that small consecutive ids land far
	// apart in seed space.
	z := id + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return New(r.Int63() ^ int64(z))
}

// Exp returns an exponentially distributed draw with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// UniformInt returns an integer uniformly distributed in [lo, hi]
// inclusive; it panics if hi < lo.
func (r *Rand) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("xrand: UniformInt with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// NURand implements the TPC-C non-uniform random function
// NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y-x+1)) + x,
// which concentrates accesses on a subset of keys — the access skew that
// makes small-warehouse OLTP configurations contend on hot blocks.
func (r *Rand) NURand(a, x, y, c int) int {
	return (((r.UniformInt(0, a) | r.UniformInt(x, y)) + c) % (y - x + 1)) + x
}

// Zipf draws from {0, 1, ..., n-1} with P(k) proportional to
// 1/(k+1)^theta. It wraps math/rand's Zipf with the parameterization used
// in cache-behaviour studies (theta just below 1 models database block
// popularity well).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf source over n items with skew theta in (0, ~4).
// math/rand requires s > 1, so theta is mapped accordingly: theta is the
// exponent on rank, with theta -> 0 approaching uniform.
func NewZipf(r *Rand, theta float64, n uint64) *Zipf {
	if n == 0 {
		panic("xrand: Zipf over zero items")
	}
	s := theta
	if s <= 1 {
		// math/rand's Zipf needs s > 1; interpolate smaller skews by
		// flattening through a larger v parameter instead.
		s = 1.0001
	}
	v := 1.0
	if theta < 1 {
		// Larger v flattens the head of the distribution, emulating
		// theta < 1 skew levels acceptably for cache modelling.
		v = 1 + (1-theta)*float64(n)/4
	}
	return &Zipf{z: rand.NewZipf(r.Rand, s, v, n-1)}
}

// Next returns the next draw.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a normal draw with the given mean and standard deviation,
// truncated below at min to keep simulated quantities physical.
func (r *Rand) Normal(mean, stddev, min float64) float64 {
	x := mean + r.NormFloat64()*stddev
	return math.Max(x, min)
}
