package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(1)
	c1 := New(1).Split(1)
	c2 := New(1).Split(2)
	_ = r
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Intn(1000) == c2.Intn(1000) {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("children look correlated: %d/100 collisions", same)
	}
}

func TestSplitStable(t *testing.T) {
	x := New(5).Split(3).Int63()
	y := New(5).Split(3).Int63()
	if x != y {
		t.Fatal("Split not stable across runs")
	}
}

func TestUniformInt(t *testing.T) {
	r := New(2)
	for i := 0; i < 1000; i++ {
		v := r.UniformInt(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
	}
	if got := r.UniformInt(5, 5); got != 5 {
		t.Fatalf("degenerate range: %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for hi < lo")
		}
	}()
	r.UniformInt(7, 3)
}

func TestNURandRangeQuick(t *testing.T) {
	r := New(3)
	f := func(seed int64) bool {
		rr := New(seed)
		v := rr.NURand(255, 1, 3000, 123)
		return v >= 1 && v <= 3000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestNURandSkew(t *testing.T) {
	// NURand concentrates mass: the most popular 10% of the key space
	// should receive clearly more than 10% of draws.
	r := New(4)
	n := 3000
	counts := make([]int, n+1)
	for i := 0; i < 200000; i++ {
		counts[r.NURand(1023, 1, n, 7)]++
	}
	type kv struct{ k, c int }
	top := 0
	all := 0
	sorted := make([]int, 0, n)
	for k := 1; k <= n; k++ {
		sorted = append(sorted, counts[k])
		all += counts[k]
	}
	// Not sorting by popularity rank; instead count keys above the uniform
	// expectation times 2 — a skewed distribution has many such keys.
	uniform := all / n
	for _, c := range sorted {
		if c > 2*uniform {
			top += c
		}
	}
	if float64(top)/float64(all) < 0.2 {
		t.Fatalf("NURand looks uniform: hot share %.3f", float64(top)/float64(all))
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(5)
	z := NewZipf(r, 0.9, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 must be the modal item by a wide margin over the median item.
	if counts[0] < 5*counts[500]+1 {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestZipfHighTheta(t *testing.T) {
	r := New(6)
	z := NewZipf(r, 1.5, 100)
	head := 0
	for i := 0; i < 10000; i++ {
		if z.Next() < 10 {
			head++
		}
	}
	if head < 7000 {
		t.Fatalf("theta=1.5 head mass too small: %d/10000", head)
	}
}

func TestZipfZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for n=0")
		}
	}()
	NewZipf(New(1), 1, 0)
}

func TestExpMean(t *testing.T) {
	r := New(7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(8)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestNormalTruncation(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if v := r.Normal(1, 10, 0.5); v < 0.5 {
			t.Fatalf("Normal below floor: %v", v)
		}
	}
}
