package xrand

import (
	"math/rand"
	"testing"
)

func TestAliasMatchesRejectionPMF(t *testing.T) {
	for _, tc := range []struct {
		theta float64
		n     uint64
	}{{1.6, 1000}, {1.05, 512}, {1.0, 200}, {1.45, 100000}, {0.6, 4096}} {
		s := tc.theta
		if s <= 1 {
			s = 1.0001
		}
		v := 1.0
		if tc.theta < 1 {
			v = 1 + (1-tc.theta)*float64(tc.n)/4
		}
		old := rand.NewZipf(rand.New(rand.NewSource(1)), s, v, tc.n-1)
		nz := NewZipf(New(2), tc.theta, tc.n)
		const draws = 1_000_000
		const buckets = 10
		var ho, hn [buckets]int
		bucket := func(k uint64) int {
			b := 0
			lim := uint64(1)
			for k >= lim && b < buckets-1 {
				b++
				lim *= 3
			}
			return b
		}
		for i := 0; i < draws; i++ {
			ho[bucket(old.Uint64())]++
			hn[bucket(nz.Next())]++
		}
		for b := 0; b < buckets; b++ {
			po := float64(ho[b]) / draws
			pn := float64(hn[b]) / draws
			if po < 0.005 && pn < 0.005 {
				continue
			}
			if diff := pn - po; diff > 0.01 || diff < -0.01 {
				t.Errorf("theta=%.2f n=%d bucket %d: old=%.5f new=%.5f", tc.theta, tc.n, b, po, pn)
			}
		}
	}
}
