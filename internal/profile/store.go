package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Store retains one profile per sweep point so a campaign can be
// profiled end to end. Keys are the campaign's point names
// ("W=10,P=1"); insertion order is preserved for deterministic output.
type Store struct {
	mu    sync.Mutex
	keys  []string
	byKey map[string]*Profile
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{byKey: map[string]*Profile{}} }

// Put stores a point's profile, replacing any previous one.
func (s *Store) Put(key string, p *Profile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byKey[key]; !ok {
		s.keys = append(s.keys, key)
	}
	s.byKey[key] = p
}

// Get returns the profile stored for key, or nil.
func (s *Store) Get(key string) *Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKey[key]
}

// Keys returns the stored point names in insertion order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.keys))
	copy(out, s.keys)
	return out
}

// Merged sums every stored profile into one campaign-wide profile.
func (s *Store) Merged(label string) *Profile {
	s.mu.Lock()
	profiles := make([]*Profile, 0, len(s.keys))
	for _, k := range s.keys {
		profiles = append(profiles, s.byKey[k])
	}
	s.mu.Unlock()
	return Merge(label, profiles...)
}

// WriteProfiles writes every stored profile as one JSON object keyed by
// point name — the payload of the live server's /profile endpoint.
func (s *Store) WriteProfiles(w io.Writer) error {
	s.mu.Lock()
	type entry struct {
		Key     string   `json:"key"`
		Profile *Profile `json:"profile"`
	}
	entries := make([]entry, 0, len(s.keys))
	for _, k := range s.keys {
		entries = append(entries, entry{Key: k, Profile: s.byKey[k]})
	}
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(entries); err != nil {
		return fmt.Errorf("profile: encoding store: %w", err)
	}
	return nil
}
