package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"odbscale/internal/cpu"
	"odbscale/internal/odb"
)

// TestAddChunkConserves checks the apportionment invariant: whatever
// the share split, per-frame pieces sum exactly to the chunk totals —
// integer counts exactly, cycles by telescoping.
func TestAddChunkConserves(t *testing.T) {
	c := NewCollector()
	c.SetMeta(Meta{Scale: 1})
	shares := []Share{
		{Kind: KindOf(odb.NewOrder), Phase: odb.PhaseParse, Instr: 1},
		{Kind: KindOf(odb.NewOrder), Phase: odb.PhaseBTree, Instr: 3333},
		{Kind: KindOf(odb.NewOrder), Phase: odb.PhaseBuffer, Instr: 77},
		{Kind: KindOf(odb.Payment), Phase: odb.PhaseLock, Instr: 58_589},
	}
	var total uint64
	for _, s := range shares {
		total += s.Instr
	}
	ev := Events{TCMiss: 7, L2Miss: 13, L3Miss: 5, CoherMiss: 1, TLBMiss: 3, Mispred: 11, BusLatency: 1234.5}
	c.AddChunk(User, shares, total, 98765.4321, ev)
	p := c.Profile()

	if got := p.TotalInstr(); got != total {
		t.Errorf("instr sum %d != %d", got, total)
	}
	if got := p.TotalCycles(); math.Abs(got-98765.4321) > 1e-9 {
		t.Errorf("cycles sum %f != 98765.4321", got)
	}
	var tc, l2, l3, coher, tlb, mp uint64
	var bus float64
	for _, f := range p.Frames {
		tc += f.TCMiss
		l2 += f.L2Miss
		l3 += f.L3Miss
		coher += f.CoherMiss
		tlb += f.TLBMiss
		mp += f.Mispred
		bus += f.BusLatency
	}
	if tc != ev.TCMiss || l2 != ev.L2Miss || l3 != ev.L3Miss || coher != ev.CoherMiss || tlb != ev.TLBMiss || mp != ev.Mispred {
		t.Errorf("event counts not conserved: got tc=%d l2=%d l3=%d coher=%d tlb=%d mispred=%d", tc, l2, l3, coher, tlb, mp)
	}
	if math.Abs(bus-ev.BusLatency) > 1e-9 {
		t.Errorf("bus latency %f != %f", bus, ev.BusLatency)
	}
}

// TestProfileScalesEvents checks real counts are scaled counts × Scale.
func TestProfileScalesEvents(t *testing.T) {
	c := NewCollector()
	c.SetMeta(Meta{Scale: 64})
	c.AddChunk(OS, []Share{{Kind: KindKernel, Phase: odb.PhaseSched, Instr: 100}}, 100, 50, Events{L3Miss: 3, BusLatency: 10})
	p := c.Profile()
	if len(p.Frames) != 1 {
		t.Fatalf("frames = %+v", p.Frames)
	}
	f := p.Frames[0]
	if f.L3Miss != 3*64 || f.BusLatency != 10*64 {
		t.Errorf("scaling wrong: %+v", f)
	}
	if f.Txn != "(kernel)" || f.Phase != "sched" || f.Mode != "os" {
		t.Errorf("frame identity wrong: %+v", f)
	}
}

// TestIdleFrame checks SetIdle lands in the idle frame and stays out of
// the CPI accounting.
func TestIdleFrame(t *testing.T) {
	c := NewCollector()
	c.AddChunk(User, []Share{{Kind: KindOf(odb.Payment), Phase: odb.PhaseBuffer, Instr: 10}}, 10, 40, Events{})
	c.SetIdle(1e6)
	p := c.Profile()
	var idle *FrameCounters
	for i := range p.Frames {
		if p.Frames[i].Idle() {
			idle = &p.Frames[i]
		}
	}
	if idle == nil || idle.Cycles != 1e6 {
		t.Fatalf("idle frame missing or wrong: %+v", p.Frames)
	}
	if got := p.TotalCycles(); got != 40 {
		t.Errorf("idle cycles leaked into busy total: %f", got)
	}
	if got := p.CPI(); got != 4 {
		t.Errorf("CPI = %f, want 4", got)
	}
}

func sampleProfile(cyclesA, cyclesB float64) *Profile {
	c := NewCollector()
	c.SetMeta(Meta{Label: "sample", Scale: 1, Stall: cpu.Table3Costs(), OtherCPI: 0.35})
	c.AddChunk(User, []Share{{Kind: KindOf(odb.NewOrder), Phase: odb.PhaseBTree, Instr: 1000}}, 1000, cyclesA, Events{L2Miss: 8, L3Miss: 4, BusLatency: 500})
	c.AddChunk(OS, []Share{{Kind: KindOf(odb.NewOrder), Phase: odb.PhaseLogCommit, Instr: 500}}, 500, cyclesB, Events{Mispred: 2})
	c.Finalize(1.5, 10)
	return c.Profile()
}

// TestPhaseBreakdownSums checks the table rows reproduce the profile
// CPI and each row's components sum to its cycles.
func TestPhaseBreakdownSums(t *testing.T) {
	p := sampleProfile(5000, 1200)
	var sum float64
	for _, r := range p.PhaseBreakdown() {
		sum += r.CPI
		if math.Abs(r.Comp.Total()-r.Cycles) > 1e-9 {
			t.Errorf("phase %s: components %f != cycles %f", r.Phase, r.Comp.Total(), r.Cycles)
		}
	}
	if math.Abs(sum-p.CPI()) > 1e-12 {
		t.Errorf("row sum %.15f != CPI %.15f", sum, p.CPI())
	}
	var buf bytes.Buffer
	if err := p.WriteCPITable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"btree", "logcommit", "total", "L3 share"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestFoldedAndText checks the two flame-graph-facing formats.
func TestFoldedAndText(t *testing.T) {
	p := sampleProfile(5000, 1200)
	var folded bytes.Buffer
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	want := "NewOrder;btree;user 5000\n"
	if !strings.Contains(folded.String(), want) {
		t.Errorf("folded output missing %q:\n%s", want, folded.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(folded.String()), "\n") {
		if parts := strings.Split(line, " "); len(parts) != 2 || strings.Count(parts[0], ";") != 2 {
			t.Errorf("malformed folded line %q", line)
		}
	}
	var text bytes.Buffer
	if err := p.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "flat%") || !strings.Contains(text.String(), "NewOrder/btree (user)") {
		t.Errorf("text output malformed:\n%s", text.String())
	}
}

// TestEncodeDecodeRoundTrip checks the JSON form is lossless.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sampleProfile(5000, 1200)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Meta != p.Meta {
		t.Errorf("meta mismatch:\n%+v\n%+v", q.Meta, p.Meta)
	}
	if len(q.Frames) != len(p.Frames) {
		t.Fatalf("frame count %d != %d", len(q.Frames), len(p.Frames))
	}
	for i := range p.Frames {
		if q.Frames[i] != p.Frames[i] {
			t.Errorf("frame %d mismatch:\n%+v\n%+v", i, q.Frames[i], p.Frames[i])
		}
	}
}

// TestMerge checks frame-wise summation and metadata handling.
func TestMerge(t *testing.T) {
	a := sampleProfile(5000, 1200)
	b := sampleProfile(3000, 800)
	m := Merge("merged", a, b, nil)
	if m.Meta.Label != "merged" || m.Meta.Txns != 20 || m.Meta.ElapsedSeconds != 3 {
		t.Errorf("meta = %+v", m.Meta)
	}
	if got := m.TotalCycles(); got != 10000 {
		t.Errorf("merged cycles %f, want 10000", got)
	}
	if got := m.TotalInstr(); got != 3000 {
		t.Errorf("merged instr %d, want 3000", got)
	}
}

// TestDiff checks share deltas and deterministic ordering.
func TestDiff(t *testing.T) {
	a := sampleProfile(5000, 1200) // btree share 5000/6200
	b := sampleProfile(1200, 5000) // btree share 1200/6200
	d := Diff(a, b)
	if len(d.Entries) != 2 {
		t.Fatalf("entries = %+v", d.Entries)
	}
	e := d.Entries[0]
	if e.Phase != "btree" && e.Phase != "logcommit" {
		t.Errorf("unexpected top entry %+v", e)
	}
	if math.Abs(math.Abs(e.Delta)-(5000.0/6200-1200.0/6200)) > 1e-12 {
		t.Errorf("delta = %f", e.Delta)
	}
	// Deterministic across repeats.
	d2 := Diff(a, b)
	for i := range d.Entries {
		if d.Entries[i] != d2.Entries[i] {
			t.Errorf("diff not deterministic at %d", i)
		}
	}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "delta") {
		t.Errorf("diff output malformed:\n%s", buf.String())
	}
}

// TestStore checks ordering, merge and the /profile payload.
func TestStore(t *testing.T) {
	s := NewStore()
	s.Put("W=10,P=1", sampleProfile(5000, 1200))
	s.Put("W=2,P=1", sampleProfile(3000, 800))
	if got := s.Keys(); len(got) != 2 || got[0] != "W=10,P=1" {
		t.Errorf("keys = %v", got)
	}
	if s.Get("W=2,P=1") == nil || s.Get("missing") != nil {
		t.Error("Get misbehaves")
	}
	merged := s.Merged("campaign")
	if merged.TotalCycles() != 10000 {
		t.Errorf("merged cycles %f", merged.TotalCycles())
	}
	var buf bytes.Buffer
	if err := s.WriteProfiles(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "W=10,P=1") {
		t.Errorf("payload missing key:\n%s", buf.String())
	}
}

// TestKindAndPhaseNames pins the frame vocabulary the folded output and
// diff keys depend on.
func TestKindAndPhaseNames(t *testing.T) {
	for _, tc := range []struct {
		k    Kind
		want string
	}{
		{KindOf(odb.NewOrder), "NewOrder"},
		{KindOf(odb.StockLevel), "StockLevel"},
		{KindDBWriter, "DBWriter"},
		{KindKernel, "(kernel)"},
		{KindIdle, "(idle)"},
	} {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("Kind %d = %q, want %q", tc.k, got, tc.want)
		}
	}
	for ph := odb.Phase(0); ph < odb.NumPhases; ph++ {
		name := ph.String()
		back, ok := odb.PhaseFromString(name)
		if !ok || back != ph {
			t.Errorf("phase %d round-trip via %q failed", ph, name)
		}
	}
}
