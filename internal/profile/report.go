package profile

import (
	"fmt"
	"io"
	"math"
	"sort"

	"odbscale/internal/odb"
)

// ComponentCycles decomposes a frame's cycles into the Table 3/4 event
// contributions, in real cycles. Residual is what the event model does
// not explain — SMT expansion and apportionment rounding — so the
// eight components always sum exactly to the frame's cycles.
type ComponentCycles struct {
	Inst     float64 `json:"inst"`
	Branch   float64 `json:"branch"`
	TLB      float64 `json:"tlb"`
	TC       float64 `json:"tc"`
	L2       float64 `json:"l2"`
	L3       float64 `json:"l3"`
	Other    float64 `json:"other"`
	Residual float64 `json:"residual"`
}

func (c *ComponentCycles) add(o ComponentCycles) {
	c.Inst += o.Inst
	c.Branch += o.Branch
	c.TLB += o.TLB
	c.TC += o.TC
	c.L2 += o.L2
	c.L3 += o.L3
	c.Other += o.Other
	c.Residual += o.Residual
}

// Total sums the components; equals the frame cycles it was built from.
func (c ComponentCycles) Total() float64 {
	return c.Inst + c.Branch + c.TLB + c.TC + c.L2 + c.L3 + c.Other + c.Residual
}

// components applies the same stall model the pricing path uses, per
// frame, with the frame's real event counts.
func (p *Profile) components(f *FrameCounters) ComponentCycles {
	st := p.Meta.Stall
	var c ComponentCycles
	c.Inst = float64(f.Instr) * st.InstBase
	c.Other = float64(f.Instr) * p.Meta.OtherCPI
	c.Branch = float64(f.Mispred) * st.BranchMispred
	c.TLB = float64(f.TLBMiss) * st.TLBMiss
	c.TC = float64(f.TCMiss) * st.TCMiss
	if f.L2Miss > f.L3Miss {
		c.L2 = float64(f.L2Miss-f.L3Miss) * st.L2Miss
	}
	c.L3 = float64(f.L3Miss)*(st.L3Miss-st.BusTime1P) + f.BusLatency
	c.Residual = f.Cycles - c.Inst - c.Other - c.Branch - c.TLB - c.TC - c.L2 - c.L3
	return c
}

// PhaseRow is one engine phase's aggregate in the CPI-breakdown table.
type PhaseRow struct {
	Phase  string
	Instr  uint64
	Cycles float64
	CPI    float64 // contribution to whole-run CPI: Cycles / total instructions
	Comp   ComponentCycles
}

// PhaseBreakdown aggregates non-idle frames by engine phase, in phase
// order. Each row's CPI field is the phase's contribution to the
// whole-run CPI, so the rows sum to Profile.CPI exactly.
func (p *Profile) PhaseBreakdown() []PhaseRow {
	totalInstr := p.TotalInstr()
	byPhase := map[string]*PhaseRow{}
	var order []string
	for i := range p.Frames {
		f := &p.Frames[i]
		if f.Idle() {
			continue
		}
		row := byPhase[f.Phase]
		if row == nil {
			row = &PhaseRow{Phase: f.Phase}
			byPhase[f.Phase] = row
			order = append(order, f.Phase)
		}
		row.Instr += f.Instr
		row.Cycles += f.Cycles
		row.Comp.add(p.components(f))
	}
	sort.Slice(order, func(i, j int) bool {
		a, _ := odb.PhaseFromString(order[i])
		b, _ := odb.PhaseFromString(order[j])
		return a < b
	})
	rows := make([]PhaseRow, 0, len(order))
	for _, name := range order {
		row := byPhase[name]
		if totalInstr > 0 {
			row.CPI = row.Cycles / float64(totalInstr)
		}
		rows = append(rows, *row)
	}
	return rows
}

// L3Share is the fraction of all busy cycles the event model attributes
// to L3 misses (memory access plus bus time) — the paper's headline
// ~60% number.
func (p *Profile) L3Share() float64 {
	var l3, total float64
	for i := range p.Frames {
		f := &p.Frames[i]
		if f.Idle() {
			continue
		}
		l3 += p.components(f).L3
		total += f.Cycles
	}
	if total <= 0 {
		return 0
	}
	return l3 / total
}

// WriteCPITable renders the per-phase CPI-breakdown table — the
// profiler's reproduction of the paper's Figure 12 event decomposition,
// resolved to engine phases instead of whole runs.
func (p *Profile) WriteCPITable(w io.Writer) error {
	totalInstr := p.TotalInstr()
	if _, err := fmt.Fprintf(w, "%s  W=%d C=%d P=%d  txns=%d  CPI=%.4f  L3 share=%.1f%%\n",
		labelOr(p.Meta.Label, "profile"), p.Meta.Warehouses, p.Meta.Clients, p.Meta.Processors,
		p.Meta.Txns, p.CPI(), p.L3Share()*100); err != nil {
		return err
	}
	const hdr = "%-10s %7s %8s | %7s %7s %7s %7s %7s %7s %7s %7s\n"
	const row = "%-10s %6.1f%% %8.4f | %7.4f %7.4f %7.4f %7.4f %7.4f %7.4f %7.4f %7.4f\n"
	if _, err := fmt.Fprintf(w, hdr, "phase", "instr", "cpi",
		"inst", "branch", "tlb", "tc", "l2", "l3", "other", "resid"); err != nil {
		return err
	}
	var totCPI float64
	var tot ComponentCycles
	for _, r := range p.PhaseBreakdown() {
		instrPct := 0.0
		if totalInstr > 0 {
			instrPct = 100 * float64(r.Instr) / float64(totalInstr)
		}
		div := float64(totalInstr)
		//lint:ignore floateq zero guard on an integer-derived divisor
		if div == 0 {
			div = 1
		}
		if _, err := fmt.Fprintf(w, row, r.Phase, instrPct, r.CPI,
			r.Comp.Inst/div, r.Comp.Branch/div, r.Comp.TLB/div, r.Comp.TC/div,
			r.Comp.L2/div, r.Comp.L3/div, r.Comp.Other/div, r.Comp.Residual/div); err != nil {
			return err
		}
		totCPI += r.CPI
		tot.add(r.Comp)
	}
	div := float64(totalInstr)
	//lint:ignore floateq zero guard on an integer-derived divisor
	if div == 0 {
		div = 1
	}
	_, err := fmt.Fprintf(w, row, "total", 100.0, totCPI,
		tot.Inst/div, tot.Branch/div, tot.TLB/div, tot.TC/div,
		tot.L2/div, tot.L3/div, tot.Other/div, tot.Residual/div)
	return err
}

// WriteFolded emits folded-stack lines — "txn;phase;mode cycles" — the
// input format of standard flame-graph tooling.
func (p *Profile) WriteFolded(w io.Writer) error {
	sortFrames(p.Frames)
	for i := range p.Frames {
		f := &p.Frames[i]
		n := uint64(math.Round(f.Cycles))
		if n == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s;%s;%s %d\n", f.Txn, f.Phase, f.Mode, n); err != nil {
			return err
		}
	}
	return nil
}

// WriteText emits a pprof-style plain-text listing: frames sorted by
// flat cycles with flat/cumulative percentages. No protobuf involved —
// the listing matches what `pprof -text` prints for a cycles profile.
func (p *Profile) WriteText(w io.Writer) error {
	frames := make([]FrameCounters, len(p.Frames))
	copy(frames, p.Frames)
	sort.SliceStable(frames, func(i, j int) bool { return frames[i].Cycles > frames[j].Cycles })
	var total float64
	for i := range frames {
		total += frames[i].Cycles
	}
	if _, err := fmt.Fprintf(w, "Showing nodes accounting for %.0f cycles, 100%% of %.0f total\n", total, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%12s %7s %7s  %s\n", "flat", "flat%", "sum%", "name"); err != nil {
		return err
	}
	if total <= 0 {
		return nil
	}
	var cum float64
	for i := range frames {
		f := &frames[i]
		cum += f.Cycles
		if _, err := fmt.Fprintf(w, "%12.0f %6.2f%% %6.2f%%  %s/%s (%s)\n",
			f.Cycles, 100*f.Cycles/total, 100*cum/total, f.Txn, f.Phase, f.Mode); err != nil {
			return err
		}
	}
	return nil
}

func labelOr(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}
