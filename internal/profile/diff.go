package profile

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// DiffEntry compares one frame across two profiles. Shares are each
// side's fraction of its own total busy cycles, so profiles of
// different lengths compare on attribution, not magnitude.
type DiffEntry struct {
	Txn   string `json:"txn"`
	Phase string `json:"phase"`
	Mode  string `json:"mode"`

	CyclesA float64 `json:"cycles_a"`
	CyclesB float64 `json:"cycles_b"`
	ShareA  float64 `json:"share_a"`
	ShareB  float64 `json:"share_b"`
	Delta   float64 `json:"delta"` // ShareB - ShareA
}

// DiffResult is the frame-by-frame comparison of two profiles.
type DiffResult struct {
	LabelA   string      `json:"label_a"`
	LabelB   string      `json:"label_b"`
	CPIA     float64     `json:"cpi_a"`
	CPIB     float64     `json:"cpi_b"`
	L3ShareA float64     `json:"l3_share_a"`
	L3ShareB float64     `json:"l3_share_b"`
	Entries  []DiffEntry `json:"entries"`
}

// Diff compares two profiles — two runs, or two sweep points across the
// cached-to-scaled pivot. Entries are sorted by |share delta|, largest
// attribution shift first; ties break on frame identity so the result
// is deterministic.
func Diff(a, b *Profile) *DiffResult {
	d := &DiffResult{
		LabelA:   labelOr(a.Meta.Label, "A"),
		LabelB:   labelOr(b.Meta.Label, "B"),
		CPIA:     a.CPI(),
		CPIB:     b.CPI(),
		L3ShareA: a.L3Share(),
		L3ShareB: b.L3Share(),
	}
	totalA, totalB := a.TotalCycles(), b.TotalCycles()
	type side struct{ a, b float64 }
	byKey := map[[3]string]*side{}
	var keys [][3]string
	collect := func(p *Profile, set func(s *side, cycles float64)) {
		for i := range p.Frames {
			f := &p.Frames[i]
			if f.Idle() {
				continue
			}
			key := [3]string{f.Txn, f.Phase, f.Mode}
			s := byKey[key]
			if s == nil {
				s = &side{}
				byKey[key] = s
				keys = append(keys, key)
			}
			set(s, f.Cycles)
		}
	}
	collect(a, func(s *side, c float64) { s.a += c })
	collect(b, func(s *side, c float64) { s.b += c })
	for _, key := range keys {
		s := byKey[key]
		e := DiffEntry{Txn: key[0], Phase: key[1], Mode: key[2], CyclesA: s.a, CyclesB: s.b}
		if totalA > 0 {
			e.ShareA = s.a / totalA
		}
		if totalB > 0 {
			e.ShareB = s.b / totalB
		}
		e.Delta = e.ShareB - e.ShareA
		d.Entries = append(d.Entries, e)
	}
	sort.SliceStable(d.Entries, func(i, j int) bool {
		x, y := &d.Entries[i], &d.Entries[j]
		ax, ay := math.Abs(x.Delta), math.Abs(y.Delta)
		//lint:ignore floateq sort tiebreak needs any total order, not a tolerance
		if ax != ay {
			return ax > ay
		}
		if x.Txn != y.Txn {
			return x.Txn < y.Txn
		}
		if x.Phase != y.Phase {
			return x.Phase < y.Phase
		}
		return x.Mode < y.Mode
	})
	return d
}

// Write renders the diff as a table, largest attribution shift first.
func (d *DiffResult) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "A=%s  CPI=%.4f  L3 share=%.1f%%\nB=%s  CPI=%.4f  L3 share=%.1f%%\n",
		d.LabelA, d.CPIA, d.L3ShareA*100, d.LabelB, d.CPIB, d.L3ShareB*100); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-32s %8s %8s %8s\n", "frame", "A", "B", "delta"); err != nil {
		return err
	}
	for _, e := range d.Entries {
		name := fmt.Sprintf("%s/%s (%s)", e.Txn, e.Phase, e.Mode)
		if _, err := fmt.Fprintf(w, "%-32s %7.2f%% %7.2f%% %+7.2f%%\n",
			name, e.ShareA*100, e.ShareB*100, e.Delta*100); err != nil {
			return err
		}
	}
	return nil
}
