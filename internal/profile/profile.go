// Package profile is the deterministic cycle-attribution profiler: it
// tags every simulated cycle and cache/TLB/branch event with a
// (transaction type, engine phase, user/OS mode) frame and accumulates
// them into a hierarchical profile alongside the flight recorder.
//
// Attribution is observational: the system layer synthesizes and prices
// each executed chunk exactly as it would without profiling, then hands
// the collector the chunk's instruction shares per frame together with
// the chunk's total cycles and event counts. The collector apportions
// the totals across the frames with cumulative (largest-remainder)
// rounding, so per-frame counts sum exactly to the chunk totals and a
// profiled run's metrics stay bit-identical to an unprofiled one — the
// profiler draws no randomness and perturbs no simulation state.
//
// Frames aggregate into a Profile that exports three ways: a per-phase
// CPI-breakdown table reproducing the paper's Figure 12-style event
// decomposition, folded-stack output for standard flame-graph tooling,
// and a pprof-style plain-text listing. Diff compares two profiles —
// two runs, or two sweep points across the cached-to-scaled pivot.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"odbscale/internal/cpu"
	"odbscale/internal/odb"
)

// Mode separates user-space database work from OS-space kernel work.
type Mode uint8

// The two execution modes.
const (
	User Mode = iota
	OS
	numModes
)

func (m Mode) String() string {
	if m == User {
		return "user"
	}
	return "os"
}

// Kind is the transaction context of a frame: the five ODB transaction
// types, the background DB writer, anonymous kernel work with no
// transaction attached (context switches, completions between
// transactions), and idle.
type Kind uint8

// Kinds beyond the five odb.TxnType values.
const (
	KindDBWriter Kind = Kind(odb.StockLevel) + 1 + iota
	KindKernel
	KindIdle
	numKinds
)

// KindOf maps a transaction type onto its frame kind.
func KindOf(t odb.TxnType) Kind { return Kind(t) }

func (k Kind) String() string {
	switch {
	case k < KindDBWriter:
		return odb.TxnType(k).String()
	case k == KindDBWriter:
		return "DBWriter"
	case k == KindKernel:
		return "(kernel)"
	default:
		return "(idle)"
	}
}

// Events are the scaled microarchitectural event counts of one chunk,
// as the workload synthesizer reports them (real counts are these
// multiplied by the scale factor).
type Events struct {
	TCMiss     uint64
	L2Miss     uint64
	L3Miss     uint64
	CoherMiss  uint64
	TLBMiss    uint64
	Mispred    uint64
	BusLatency float64
}

// Share is one frame's instruction share of a chunk.
type Share struct {
	Kind  Kind
	Phase odb.Phase
	Instr uint64
}

// acc is one frame's running totals (events still scaled).
type acc struct {
	instr  uint64
	cycles float64
	ev     Events
}

// Meta describes the run a profile was captured from.
type Meta struct {
	Label          string         `json:"label"`
	Warehouses     int            `json:"warehouses"`
	Clients        int            `json:"clients"`
	Processors     int            `json:"processors"`
	Seed           int64          `json:"seed"`
	Scale          uint64         `json:"scale"`
	FreqHz         float64        `json:"freq_hz"`
	OtherCPI       float64        `json:"other_cpi"`
	Stall          cpu.StallCosts `json:"stall"`
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	Txns           uint64         `json:"txns"`
}

// Collector accumulates frames during a run. The system layer writes on
// simulated time; HTTP handlers may snapshot concurrently.
type Collector struct {
	mu     sync.Mutex
	meta   Meta
	frames [numKinds][odb.NumPhases][numModes]acc
	idle   float64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// SetMeta installs the run description; the system layer calls it
// before the run so mid-run snapshots are labelled.
func (c *Collector) SetMeta(m Meta) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed, txns := c.meta.ElapsedSeconds, c.meta.Txns
	c.meta = m
	//lint:ignore floateq zero is the unset sentinel, not a computed value
	if m.ElapsedSeconds == 0 {
		c.meta.ElapsedSeconds = elapsed
	}
	if m.Txns == 0 {
		c.meta.Txns = txns
	}
}

// AddChunk apportions one priced chunk across its frames. shares must
// sum to totalInstr; cycles and every event count are distributed
// proportionally to the instruction shares with cumulative rounding, so
// the per-frame pieces sum exactly to the chunk totals (integer counts
// exactly, floats by telescoping). Shares are processed in slice order,
// which the caller keeps deterministic.
func (c *Collector) AddChunk(mode Mode, shares []Share, totalInstr uint64, cycles float64, ev Events) {
	if totalInstr == 0 || len(shares) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var cum uint64
	var prevCycles, prevBus float64
	var prevEv [6]uint64
	counts := [6]uint64{ev.TCMiss, ev.L2Miss, ev.L3Miss, ev.CoherMiss, ev.TLBMiss, ev.Mispred}
	for _, s := range shares {
		cum += s.Instr
		a := &c.frames[s.Kind][s.Phase][mode]
		a.instr += s.Instr
		frac := float64(cum) / float64(totalInstr)
		cutCycles := cycles * frac
		a.cycles += cutCycles - prevCycles
		prevCycles = cutCycles
		cutBus := ev.BusLatency * frac
		a.ev.BusLatency += cutBus - prevBus
		prevBus = cutBus
		var cut [6]uint64
		for i, n := range counts {
			cut[i] = n * cum / totalInstr
		}
		a.ev.TCMiss += cut[0] - prevEv[0]
		a.ev.L2Miss += cut[1] - prevEv[1]
		a.ev.L3Miss += cut[2] - prevEv[2]
		a.ev.CoherMiss += cut[3] - prevEv[3]
		a.ev.TLBMiss += cut[4] - prevEv[4]
		a.ev.Mispred += cut[5] - prevEv[5]
		prevEv = cut
	}
}

// SetIdle records the measurement period's idle cycles (summed across
// CPUs); they become the (idle, idle, os) frame.
func (c *Collector) SetIdle(cycles float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idle = cycles
}

// Finalize closes the profile with the run's measured length.
func (c *Collector) Finalize(elapsedSeconds float64, txns uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.meta.ElapsedSeconds = elapsedSeconds
	c.meta.Txns = txns
}

// FrameCounters is one frame of a finished profile. Event counts are
// real (the collector's scaled counts multiplied by the scale factor),
// so per-instruction rates divide directly.
type FrameCounters struct {
	Txn   string `json:"txn"`
	Phase string `json:"phase"`
	Mode  string `json:"mode"`

	Instr      uint64  `json:"instr"`
	Cycles     float64 `json:"cycles"`
	TCMiss     uint64  `json:"tc_miss"`
	L2Miss     uint64  `json:"l2_miss"`
	L3Miss     uint64  `json:"l3_miss"`
	CoherMiss  uint64  `json:"coher_miss"`
	TLBMiss    uint64  `json:"tlb_miss"`
	Mispred    uint64  `json:"mispred"`
	BusLatency float64 `json:"bus_latency"`
}

// Profile is the hierarchical cycle-attribution result of one run.
type Profile struct {
	Meta   Meta            `json:"meta"`
	Frames []FrameCounters `json:"frames"`
}

// Profile snapshots the collector into a Profile: non-empty frames in
// deterministic (kind, phase, mode) order, scaled event counts
// converted to real ones.
func (c *Collector) Profile() *Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	scale := c.meta.Scale
	if scale == 0 {
		scale = 1
	}
	p := &Profile{Meta: c.meta}
	for k := Kind(0); k < numKinds; k++ {
		for ph := odb.Phase(0); ph < odb.NumPhases; ph++ {
			for m := Mode(0); m < numModes; m++ {
				a := c.frames[k][ph][m]
				if k == KindIdle && ph == odb.PhaseIdle && m == OS {
					a.cycles += c.idle
				}
				//lint:ignore floateq an untouched accumulator is exactly zero
				if a.instr == 0 && a.cycles == 0 {
					continue
				}
				p.Frames = append(p.Frames, FrameCounters{
					Txn:        k.String(),
					Phase:      ph.String(),
					Mode:       m.String(),
					Instr:      a.instr,
					Cycles:     a.cycles,
					TCMiss:     a.ev.TCMiss * scale,
					L2Miss:     a.ev.L2Miss * scale,
					L3Miss:     a.ev.L3Miss * scale,
					CoherMiss:  a.ev.CoherMiss * scale,
					TLBMiss:    a.ev.TLBMiss * scale,
					Mispred:    a.ev.Mispred * scale,
					BusLatency: a.ev.BusLatency * float64(scale),
				})
			}
		}
	}
	return p
}

// Idle reports whether a frame is the idle frame (no instructions, not
// part of the CPI accounting).
func (f *FrameCounters) Idle() bool { return f.Phase == odb.PhaseIdle.String() }

// TotalInstr sums instructions over every frame.
func (p *Profile) TotalInstr() uint64 {
	var n uint64
	for i := range p.Frames {
		n += p.Frames[i].Instr
	}
	return n
}

// TotalCycles sums busy cycles over every non-idle frame.
func (p *Profile) TotalCycles() float64 {
	var c float64
	for i := range p.Frames {
		if !p.Frames[i].Idle() {
			c += p.Frames[i].Cycles
		}
	}
	return c
}

// CPI is the profile's whole-run cycles per instruction; by
// construction it reproduces the run's measured CPI.
func (p *Profile) CPI() float64 {
	instr := p.TotalInstr()
	if instr == 0 {
		return 0
	}
	return p.TotalCycles() / float64(instr)
}

// sortFrames orders frames deterministically for encoding and merge.
func sortFrames(frames []FrameCounters) {
	sort.Slice(frames, func(i, j int) bool {
		a, b := &frames[i], &frames[j]
		if a.Txn != b.Txn {
			return a.Txn < b.Txn
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		return a.Mode < b.Mode
	})
}

// Merge sums profiles frame by frame; metadata is taken from the first
// profile with the label overridden and run lengths summed. Sweep-point
// profiles with the same machine and tuning merge into a campaign-wide
// profile.
func Merge(label string, profiles ...*Profile) *Profile {
	out := &Profile{}
	byKey := map[[3]string]int{}
	first := true
	var elapsed float64
	var txns uint64
	for _, p := range profiles {
		if p == nil {
			continue
		}
		if first {
			out.Meta = p.Meta
			first = false
		}
		elapsed += p.Meta.ElapsedSeconds
		txns += p.Meta.Txns
		for i := range p.Frames {
			f := p.Frames[i]
			key := [3]string{f.Txn, f.Phase, f.Mode}
			idx, ok := byKey[key]
			if !ok {
				byKey[key] = len(out.Frames)
				out.Frames = append(out.Frames, f)
				continue
			}
			dst := &out.Frames[idx]
			dst.Instr += f.Instr
			dst.Cycles += f.Cycles
			dst.TCMiss += f.TCMiss
			dst.L2Miss += f.L2Miss
			dst.L3Miss += f.L3Miss
			dst.CoherMiss += f.CoherMiss
			dst.TLBMiss += f.TLBMiss
			dst.Mispred += f.Mispred
			dst.BusLatency += f.BusLatency
		}
	}
	sortFrames(out.Frames)
	out.Meta.Label = label
	out.Meta.ElapsedSeconds = elapsed
	out.Meta.Txns = txns
	return out
}

// Encode writes the profile as indented JSON.
func (p *Profile) Encode(w io.Writer) error {
	sortFrames(p.Frames)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// Decode reads a profile written by Encode.
func Decode(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: decoding: %w", err)
	}
	return &p, nil
}
