package cache

// Kind classifies a memory reference.
type Kind uint8

// Reference kinds: instruction fetch, data load, data store.
const (
	Fetch Kind = iota
	Load
	Store
)

// Geometry describes one machine's cache hierarchy. The zero value is not
// usable; use XeonGeometry or Itanium2Geometry, or build your own.
type Geometry struct {
	LineSize int
	TCSize   int // trace/instruction cache capacity in bytes
	TCWays   int
	L2Size   int
	L2Ways   int
	L3Size   int
	L3Ways   int
	Sample   uint64 // line-hash sampling factor; 1 simulates every line
}

// XeonGeometry models the paper's Intel Xeon MP: an execution trace cache
// (modelled as a 16 KB instruction cache), 256 KB L2 and 1 MB L3, 64-byte
// lines.
func XeonGeometry(sample uint64) Geometry {
	return Geometry{LineSize: 64, TCSize: 16 << 10, TCWays: 8, L2Size: 256 << 10, L2Ways: 8, L3Size: 1 << 20, L3Ways: 8, Sample: sample}
}

// Itanium2Geometry models the follow-on validation machine in the paper's
// Section 6.3: same front end, 3 MB L3.
func Itanium2Geometry(sample uint64) Geometry {
	g := XeonGeometry(sample)
	g.L3Size = 3 << 20
	// 3 MB with 8 ways and 64 B lines has a non-power-of-two set count;
	// use 12 ways (the real Itanium2 L3 is 12-way).
	g.L3Ways = 12
	return g
}

// scale divides a capacity by the sampling factor, keeping at least one
// set per way group.
func (g Geometry) scale(size, ways int) int {
	s := size / int(g.Sample)
	min := ways * g.LineSize
	// Round down to a power-of-two number of sets, at least one.
	nsets := s / (ways * g.LineSize)
	p := 1
	for p*2 <= nsets {
		p *= 2
	}
	if nsets < 1 {
		return min
	}
	return p * ways * g.LineSize
}

// AccessResult reports which levels missed for one reference.
type AccessResult struct {
	Sampled   bool // false when the line hash fell outside the sample
	TCMiss    bool // only meaningful for Fetch references
	L2Miss    bool
	L3Miss    bool
	Coherence bool // the L3 miss was caused by a remote invalidation
	Writeback bool // the L3 fill displaced a dirty line onto the bus
}

// Hierarchy is the private cache stack of one CPU.
type Hierarchy struct {
	CPU    int
	tc     *Cache
	l2     *Cache
	l3     *Cache
	domain *Domain
}

// TC, L2 and L3 expose the individual levels for statistics.
func (h *Hierarchy) TC() *Cache { return h.tc }

// L2 returns the second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// L3 returns the third-level cache.
func (h *Hierarchy) L3() *Cache { return h.l3 }

// Domain couples the L3 caches of all CPUs with MESI snooping. Coherence
// may be disabled to ablate its cost (every fill is then Exclusive and no
// remote copies are invalidated).
type Domain struct {
	Geometry  Geometry
	Coherent  bool
	CPUs      []*Hierarchy
	sampleMod uint64
	par       *lanes // non-nil when parallel snoop lanes are enabled
}

// NewDomain builds hierarchies for n CPUs sharing one coherence domain.
func NewDomain(g Geometry, n int, coherent bool) *Domain {
	if g.Sample == 0 {
		g.Sample = 1
	}
	d := &Domain{Geometry: g, Coherent: coherent, sampleMod: g.Sample}
	for i := 0; i < n; i++ {
		h := &Hierarchy{
			CPU:    i,
			tc:     NewCache("tc", g.scale(g.TCSize, g.TCWays), g.TCWays, g.LineSize),
			l2:     NewCache("l2", g.scale(g.L2Size, g.L2Ways), g.L2Ways, g.LineSize),
			l3:     NewCache("l3", g.scale(g.L3Size, g.L3Ways), g.L3Ways, g.LineSize),
			domain: d,
		}
		d.CPUs = append(d.CPUs, h)
	}
	return d
}

// sampled reports whether a line is inside the simulated sample. The hash
// spreads consecutive lines so that any dense region is sampled evenly.
func (d *Domain) sampled(line uint64) bool {
	if d.sampleMod == 1 {
		return true
	}
	z := line * 0x9e3779b97f4a7c15
	z ^= z >> 29
	return z%d.sampleMod == 0
}

// Access sends one reference through cpu's hierarchy. Addresses are byte
// addresses; the hierarchy handles line extraction and sampling.
func (d *Domain) Access(cpu int, addr Addr, kind Kind) AccessResult {
	h := d.CPUs[cpu]
	line := h.l3.Line(addr)
	if !d.sampled(line) {
		return AccessResult{}
	}
	res := AccessResult{Sampled: true}
	write := kind == Store

	if kind == Fetch {
		hit, _, _ := h.tc.Access(line, false, Exclusive)
		if hit {
			return res
		}
		res.TCMiss = true
	}

	// L2: a hit is local unless it is a store to a Shared line, which
	// must broadcast an upgrade to invalidate remote copies.
	if st, ok := h.l2.Probe(line); ok {
		h.l2.Access(line, write, st)
		if write && st == Shared && d.Coherent {
			d.invalidateOthers(cpu, line)
			h.l3.SetState(line, Modified)
		}
		return res
	}
	res.L2Miss = true

	// L3: hit fills L2 with the (possibly upgraded) coherence state.
	if st, ok := h.l3.Probe(line); ok {
		h.l3.Access(line, write, st)
		newState := st
		if write {
			if st == Shared && d.Coherent {
				d.invalidateOthers(cpu, line)
			}
			newState = Modified
		}
		_, l2victim, _ := h.l2.Access(line, write, newState)
		h.l2WritebackToL3(l2victim)
		return res
	}

	// Full miss: snoop the other CPUs, fill L3 then L2.
	fill := Exclusive
	if d.Coherent {
		fill = d.snoop(cpu, line, write)
	}
	_, victim, coher := h.l3.Access(line, write, fill)
	st := fill
	if write {
		st = Modified
	}
	_, l2victim, _ := h.l2.Access(line, write, st)
	h.l2WritebackToL3(l2victim)
	res.L3Miss = true
	res.Coherence = coher
	res.Writeback = victim.Valid && victim.Dirty
	return res
}

// l2WritebackToL3 propagates a dirty L2 eviction into the L3 copy so the
// eventual L3 eviction produces the bus writeback.
func (h *Hierarchy) l2WritebackToL3(victim Evicted) {
	if victim.Valid && victim.Dirty {
		h.l3.SetState(victim.Line, Modified)
	}
}

// snoop implements the bus-side MESI transitions for a fill on cpu and
// returns the state the line should be installed in.
func (d *Domain) snoop(cpu int, line uint64, write bool) State {
	anyOther := false
	if d.par != nil {
		anyOther = d.par.broadcast(cpu, line, write)
		switch {
		case write:
			return Modified
		case anyOther:
			return Shared
		default:
			return Exclusive
		}
	}
	for i, other := range d.CPUs {
		if i == cpu {
			continue
		}
		if write {
			if present, _ := other.l3.Invalidate(line); present {
				anyOther = true
				other.l2.Invalidate(line)
				other.tc.Invalidate(line)
			}
		} else {
			if present, _ := other.l3.Downgrade(line); present {
				anyOther = true
			}
		}
	}
	switch {
	case write:
		return Modified
	case anyOther:
		return Shared
	default:
		return Exclusive
	}
}

func (d *Domain) invalidateOthers(cpu int, line uint64) {
	if d.par != nil {
		d.par.broadcast(cpu, line, true)
		return
	}
	for i, other := range d.CPUs {
		if i == cpu {
			continue
		}
		if present, _ := other.l3.Invalidate(line); present {
			other.l2.Invalidate(line)
			other.tc.Invalidate(line)
		}
	}
}

// ResetStats zeroes every cache's counters across the domain.
func (d *Domain) ResetStats() {
	for _, h := range d.CPUs {
		h.tc.ResetStats()
		h.l2.ResetStats()
		h.l3.ResetStats()
	}
}

// SampleFactor returns the line-sampling divisor; observed event counts
// represent SampleFactor times as many unsampled events.
func (d *Domain) SampleFactor() uint64 { return d.sampleMod }
