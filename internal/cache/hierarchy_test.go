package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testGeometry() Geometry {
	return Geometry{LineSize: 64, TCSize: 2 << 10, TCWays: 2, L2Size: 8 << 10, L2Ways: 2, L3Size: 32 << 10, L3Ways: 4, Sample: 1}
}

func TestHierarchyMissFlow(t *testing.T) {
	d := NewDomain(testGeometry(), 1, true)
	res := d.Access(0, 0x1000, Load)
	if !res.Sampled || !res.L2Miss || !res.L3Miss {
		t.Fatalf("cold load = %+v, want L2+L3 miss", res)
	}
	res = d.Access(0, 0x1000, Load)
	if res.L2Miss || res.L3Miss {
		t.Fatalf("warm load = %+v, want hit", res)
	}
}

func TestFetchUsesTC(t *testing.T) {
	d := NewDomain(testGeometry(), 1, true)
	res := d.Access(0, 0x2000, Fetch)
	if !res.TCMiss {
		t.Fatalf("cold fetch = %+v, want TC miss", res)
	}
	res = d.Access(0, 0x2000, Fetch)
	if res.TCMiss {
		t.Fatalf("warm fetch = %+v", res)
	}
	// Loads never report TC misses.
	if res := d.Access(0, 0x3000, Load); res.TCMiss {
		t.Fatalf("load reported TC miss: %+v", res)
	}
}

func TestCoherenceInvalidation(t *testing.T) {
	d := NewDomain(testGeometry(), 2, true)
	d.Access(0, 0x4000, Load)  // CPU0 reads -> Exclusive
	d.Access(1, 0x4000, Store) // CPU1 writes -> invalidates CPU0
	res := d.Access(0, 0x4000, Load)
	if !res.L3Miss || !res.Coherence {
		t.Fatalf("re-read after remote write = %+v, want coherence miss", res)
	}
}

func TestWriteHitSharedUpgrades(t *testing.T) {
	d := NewDomain(testGeometry(), 2, true)
	d.Access(0, 0x5000, Load) // CPU0: Exclusive
	d.Access(1, 0x5000, Load) // CPU1 read -> both Shared
	if st, ok := d.CPUs[0].l3.Probe(d.CPUs[0].l3.Line(0x5000)); !ok || st != Shared {
		t.Fatalf("CPU0 state = %v %v, want Shared", st, ok)
	}
	// CPU1 writes: hits its Shared copy, must invalidate CPU0's copy.
	res := d.Access(1, 0x5000, Store)
	if res.L3Miss {
		// CPU1's L2 had it too; either way the end state matters most.
		t.Logf("store result: %+v", res)
	}
	if _, ok := d.CPUs[0].l3.Probe(d.CPUs[0].l3.Line(0x5000)); ok {
		t.Fatal("CPU0 still holds the line after remote write")
	}
}

func TestNoCoherenceWhenDisabled(t *testing.T) {
	d := NewDomain(testGeometry(), 2, false)
	d.Access(0, 0x6000, Load)
	d.Access(1, 0x6000, Store)
	res := d.Access(0, 0x6000, Load)
	if res.L3Miss {
		t.Fatalf("coherence disabled but line was invalidated: %+v", res)
	}
}

func TestSampling(t *testing.T) {
	g := testGeometry()
	g.Sample = 4
	d := NewDomain(g, 1, true)
	sampled, skipped := 0, 0
	for i := 0; i < 4096; i++ {
		res := d.Access(0, Addr(i*64), Load)
		if res.Sampled {
			sampled++
		} else {
			skipped++
		}
	}
	if sampled == 0 || skipped == 0 {
		t.Fatalf("sampling degenerate: %d sampled, %d skipped", sampled, skipped)
	}
	// Roughly a quarter sampled.
	frac := float64(sampled) / 4096
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("sample fraction = %v, want ~0.25", frac)
	}
	if d.SampleFactor() != 4 {
		t.Fatalf("SampleFactor = %d", d.SampleFactor())
	}
}

func TestSamplingDeterministicPerLine(t *testing.T) {
	g := testGeometry()
	g.Sample = 8
	d := NewDomain(g, 1, true)
	for i := 0; i < 100; i++ {
		a := d.Access(0, 0x7777, Load).Sampled
		b := d.Access(0, 0x7777, Load).Sampled
		if a != b {
			t.Fatal("sampling decision not stable per line")
		}
	}
}

// Property: MESI single-writer invariant — after any access sequence, a
// line Modified in one L3 is absent from all other L3s.
func TestMESISingleWriterQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDomain(testGeometry(), 4, true)
		for i := 0; i < 3000; i++ {
			cpu := rng.Intn(4)
			addr := Addr(rng.Intn(64) * 64)
			kind := Load
			if rng.Intn(3) == 0 {
				kind = Store
			}
			d.Access(cpu, addr, kind)
		}
		for line := uint64(0); line < 64; line++ {
			owners, holders := 0, 0
			for _, h := range d.CPUs {
				if st, ok := h.l3.Probe(line); ok {
					holders++
					if st == Modified || st == Exclusive {
						owners++
					}
				}
			}
			if owners > 1 {
				return false
			}
			if owners == 1 && holders > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Larger L3 must not increase the L3 miss count on an identical skewed
// trace (capacity effect the paper's Section 6.3 relies on).
func TestLargerL3FewerMisses(t *testing.T) {
	run := func(l3 int) uint64 {
		g := testGeometry()
		g.L3Size = l3
		d := NewDomain(g, 1, true)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 50000; i++ {
			d.Access(0, Addr(rng.Intn(4096)*64), Load)
		}
		return d.CPUs[0].l3.Stats().Misses
	}
	small := run(32 << 10)
	big := run(128 << 10)
	if big >= small {
		t.Fatalf("bigger L3 missed more: %d >= %d", big, small)
	}
}

func TestXeonAndItaniumGeometries(t *testing.T) {
	x := XeonGeometry(1)
	if x.L3Size != 1<<20 {
		t.Fatalf("Xeon L3 = %d", x.L3Size)
	}
	it := Itanium2Geometry(1)
	if it.L3Size != 3<<20 || it.L3Ways != 12 {
		t.Fatalf("Itanium2 geometry = %+v", it)
	}
	// Both must construct without panicking.
	NewDomain(x, 4, true)
	NewDomain(it, 4, true)
}

func TestDomainResetStats(t *testing.T) {
	d := NewDomain(testGeometry(), 2, true)
	d.Access(0, 0x100, Load)
	d.Access(1, 0x100, Load)
	d.ResetStats()
	for _, h := range d.CPUs {
		if h.L3().Stats().Accesses != 0 || h.L2().Stats().Accesses != 0 || h.TC().Stats().Accesses != 0 {
			t.Fatal("stats survive reset")
		}
	}
}
