package cache

import (
	"runtime"
	"sync"
)

// MinParallelCPUs is the domain size at which the parallel snoop lanes
// pay for their fork/join barrier. Below it the per-transaction signal
// and wait cost more than the snoop work they spread out, so callers
// should keep small domains sequential (the system layer does).
const MinParallelCPUs = 16

// lanes parallelizes the remote side of bus transactions (snoops and
// upgrade invalidations) across a fixed set of worker goroutines.
//
// Determinism: each worker owns a fixed, disjoint subset of the domain's
// hierarchies (cpu ≡ worker mod workers), so any given cache is only ever
// mutated by its owning lane. Transactions are serialized by the
// fork/join barrier — the next one cannot start until every lane has
// finished the current one — so each cache observes exactly the same
// operation sequence as under the sequential loop. The per-CPU presence
// bits are merged in ascending CPU order after the join. The result is
// bit-identical to sequential execution for any worker count.
type lanes struct {
	d       *Domain
	workers int
	start   []chan struct{} // one wake channel per worker

	// The transaction being broadcast. Written by the bus side before the
	// fork and read by the lanes after it; the channel send/receive pair
	// and the WaitGroup provide the happens-before edges in both
	// directions.
	line  uint64
	write bool
	skip  int    // requesting CPU; its hierarchy is not snooped
	found []bool // per-CPU presence bits; each lane writes only its own CPUs

	wg sync.WaitGroup
}

// EnableParallelLanes turns on parallel snoop lanes with the given worker
// count (0 selects GOMAXPROCS, capped at the CPU count). It is a no-op on
// single-CPU domains and when lanes are already running. Callers must
// Close the domain when done with it to release the workers.
func (d *Domain) EnableParallelLanes(workers int) {
	if d.par != nil || len(d.CPUs) < 2 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(d.CPUs) {
		workers = len(d.CPUs)
	}
	l := &lanes{
		d:       d,
		workers: workers,
		start:   make([]chan struct{}, workers),
		found:   make([]bool, len(d.CPUs)),
	}
	for i := range l.start {
		l.start[i] = make(chan struct{}, 1)
		go l.run(i)
	}
	d.par = l
}

// ParallelLanes returns the active worker count, 0 when sequential.
func (d *Domain) ParallelLanes() int {
	if d.par == nil {
		return 0
	}
	return d.par.workers
}

// Close releases the lane workers. It is safe on sequential domains and
// may be called more than once.
func (d *Domain) Close() {
	if d.par == nil {
		return
	}
	for _, ch := range d.par.start {
		close(ch)
	}
	d.par = nil
}

// run is one lane: it services its CPUs for every broadcast transaction
// until its wake channel is closed.
func (l *lanes) run(worker int) {
	d := l.d
	for range l.start[worker] {
		for cpu := worker; cpu < len(d.CPUs); cpu += l.workers {
			if cpu == l.skip {
				continue
			}
			h := d.CPUs[cpu]
			if l.write {
				if present, _ := h.l3.Invalidate(l.line); present {
					h.l2.Invalidate(l.line)
					h.tc.Invalidate(l.line)
					l.found[cpu] = true
				}
			} else {
				if present, _ := h.l3.Downgrade(l.line); present {
					l.found[cpu] = true
				}
			}
		}
		l.wg.Done()
	}
}

// broadcast runs one bus transaction across the lanes and reports whether
// any remote hierarchy held the line, merging the per-CPU presence bits
// in fixed CPU order after the join.
func (l *lanes) broadcast(skip int, line uint64, write bool) bool {
	l.skip, l.line, l.write = skip, line, write
	l.wg.Add(l.workers)
	for _, ch := range l.start {
		ch <- struct{}{}
	}
	l.wg.Wait()
	any := false
	for cpu := range l.found {
		if l.found[cpu] {
			any = true
			l.found[cpu] = false
		}
	}
	return any
}
