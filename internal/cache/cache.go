// Package cache implements the processor cache hierarchy used to measure
// the paper's MPI (L3 misses per instruction) behaviour: generic
// set-associative caches with LRU replacement and MESI states, a
// three-level per-CPU hierarchy (trace cache, L2, L3 — the Xeon MP's
// 16 KB-equivalent TC, 256 KB L2 and 1 MB L3), and a snooping coherence
// domain connecting the L3s of all processors.
//
// For simulation speed the hierarchy supports line-hash sampling: only
// lines whose address hash falls in 1/Sample of the space are simulated,
// against caches scaled down by the same factor, which is the standard
// set-sampling technique and leaves miss ratios unbiased for the skewed
// reference streams OLTP produces.
package cache

import "fmt"

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// State is a MESI coherence state.
type State uint8

// MESI states. Invalid lines are not present.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Stats counts the events observed by one cache.
type Stats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Writebacks  uint64 // evictions of Modified lines
	Invalidates uint64 // lines killed by remote writes
	CoherMisses uint64 // misses to lines previously invalidated remotely
}

// MissRatio returns misses per access.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type way struct {
	tag   uint64 // full line address (not just the tag bits) for simplicity
	state State
	touch uint64
}

// Cache is a single set-associative cache with LRU replacement.
type Cache struct {
	name     string
	sets     [][]way
	ways     int
	lineBits uint
	setMask  uint64
	tick     uint64
	stats    Stats
	// invalidated remembers lines removed by remote writes so the next
	// miss on them can be classified as a coherence miss. Entries are
	// consumed on the classifying miss.
	invalidated map[uint64]struct{}
}

// NewCache builds a cache of the given total size in bytes, associativity
// and line size. Size must be an exact multiple of ways*lineSize and the
// set count must be a power of two.
func NewCache(name string, size, ways, lineSize int) *Cache {
	if size <= 0 || ways <= 0 || lineSize <= 0 {
		panic("cache: non-positive geometry")
	}
	if size%(ways*lineSize) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by ways*line %d", name, size, ways*lineSize))
	}
	nsets := size / (ways * lineSize)
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, nsets))
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	c := &Cache{
		name:        name,
		sets:        make([][]way, nsets),
		ways:        ways,
		lineBits:    lineBits,
		setMask:     uint64(nsets - 1),
		invalidated: make(map[uint64]struct{}),
	}
	for i := range c.sets {
		c.sets[i] = make([]way, ways)
	}
	return c
}

// Line returns the line address containing addr.
func (c *Cache) Line(addr Addr) uint64 { return uint64(addr) >> c.lineBits }

func (c *Cache) setOf(line uint64) []way { return c.sets[line&c.setMask] }

// Probe reports whether line is present and in what state, without
// touching LRU or statistics.
func (c *Cache) Probe(line uint64) (State, bool) {
	for i := range c.setOf(line) {
		w := &c.setOf(line)[i]
		if w.state != Invalid && w.tag == line {
			return w.state, true
		}
	}
	return Invalid, false
}

// Evicted describes a line displaced by an insertion.
type Evicted struct {
	Line  uint64
	Dirty bool // the line was Modified and needs a writeback
	Valid bool // false when the insertion used an empty way
}

// Access looks up a line, updating LRU and hit/miss statistics. On a miss
// the line is inserted in the given state and the victim (if any) is
// returned. write upgrades the final state to Modified.
// coherMiss reports that the miss hit a line previously invalidated by a
// remote writer.
func (c *Cache) Access(line uint64, write bool, fillState State) (hit bool, victim Evicted, coherMiss bool) {
	c.stats.Accesses++
	c.tick++
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.state != Invalid && w.tag == line {
			c.stats.Hits++
			w.touch = c.tick
			if write {
				w.state = Modified
			}
			return true, Evicted{}, false
		}
	}
	c.stats.Misses++
	// The empty-map guard keeps the single-processor (and low-sharing)
	// fast path free of a per-miss map probe.
	if len(c.invalidated) != 0 {
		if _, ok := c.invalidated[line]; ok {
			delete(c.invalidated, line)
			c.stats.CoherMisses++
			coherMiss = true
		}
	}
	// Choose a victim: an invalid way if available, else LRU.
	victimIdx := 0
	for i := range set {
		if set[i].state == Invalid {
			victimIdx = i
			goto fill
		}
		if set[i].touch < set[victimIdx].touch {
			victimIdx = i
		}
	}
	victim = Evicted{Line: set[victimIdx].tag, Dirty: set[victimIdx].state == Modified, Valid: true}
	c.stats.Evictions++
	if victim.Dirty {
		c.stats.Writebacks++
	}
fill:
	st := fillState
	if write {
		st = Modified
	}
	set[victimIdx] = way{tag: line, state: st, touch: c.tick}
	return false, victim, coherMiss
}

// Invalidate removes line if present, recording it for coherence-miss
// classification. It reports whether the line was present and dirty.
func (c *Cache) Invalidate(line uint64) (present, dirty bool) {
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.state != Invalid && w.tag == line {
			dirty = w.state == Modified
			w.state = Invalid
			c.stats.Invalidates++
			c.invalidated[line] = struct{}{}
			return true, dirty
		}
	}
	return false, false
}

// Downgrade moves line to Shared if present (a remote reader snooped it),
// reporting presence and whether it was dirty (requiring a writeback).
func (c *Cache) Downgrade(line uint64) (present, dirty bool) {
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.state != Invalid && w.tag == line {
			dirty = w.state == Modified
			w.state = Shared
			return true, dirty
		}
	}
	return false, false
}

// SetState forces the state of line if present, reporting whether it was.
// The coherence domain uses it for upgrades and L2→L3 writebacks.
func (c *Cache) SetState(line uint64, st State) bool {
	set := c.setOf(line)
	for i := range set {
		w := &set[i]
		if w.state != Invalid && w.tag == line {
			w.state = st
			return true
		}
	}
	return false
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without disturbing cache contents, used
// at the end of the warm-up period.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }
