package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryPanics(t *testing.T) {
	for _, tc := range []struct{ size, ways, line int }{
		{0, 1, 64},
		{100, 8, 64},     // not divisible
		{64 * 24, 8, 64}, // 3 sets, not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("want panic for %+v", tc)
				}
			}()
			NewCache("x", tc.size, tc.ways, tc.line)
		}()
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := NewCache("t", 8*64*4, 4, 64) // 8 sets, 4 ways
	hit, _, _ := c.Access(1, false, Exclusive)
	if hit {
		t.Fatal("cold access hit")
	}
	hit, _, _ = c.Access(1, false, Exclusive)
	if !hit {
		t.Fatal("second access missed")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewCache("t", 1*64*2, 2, 64) // 1 set, 2 ways
	c.Access(0, false, Exclusive)
	c.Access(1, false, Exclusive)
	c.Access(0, false, Exclusive) // touch 0 so 1 becomes LRU
	_, victim, _ := c.Access(2, false, Exclusive)
	if !victim.Valid || victim.Line != 1 {
		t.Fatalf("victim = %+v, want line 1", victim)
	}
	if _, present := c.Probe(0); !present {
		t.Fatal("MRU line was evicted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := NewCache("t", 1*64*1, 1, 64) // direct-mapped single set
	c.Access(5, true, Exclusive)      // write -> Modified
	_, victim, _ := c.Access(9, false, Exclusive)
	if !victim.Dirty {
		t.Fatalf("victim of dirty line not marked dirty: %+v", victim)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestInvalidateAndCoherenceMiss(t *testing.T) {
	c := NewCache("t", 4*64*2, 2, 64)
	c.Access(3, false, Shared)
	present, dirty := c.Invalidate(3)
	if !present || dirty {
		t.Fatalf("Invalidate = %v, %v", present, dirty)
	}
	_, _, coher := c.Access(3, false, Shared)
	if !coher {
		t.Fatal("miss after invalidation not classified as coherence miss")
	}
	if c.Stats().CoherMisses != 1 {
		t.Fatalf("CoherMisses = %d", c.Stats().CoherMisses)
	}
	// Once consumed, the classification does not repeat.
	c.Invalidate(99)
	if present, _ := c.Invalidate(98); present {
		t.Fatal("absent line reported present")
	}
}

func TestDowngrade(t *testing.T) {
	c := NewCache("t", 4*64*2, 2, 64)
	c.Access(7, true, Exclusive) // Modified
	present, dirty := c.Downgrade(7)
	if !present || !dirty {
		t.Fatalf("Downgrade = %v, %v, want present dirty", present, dirty)
	}
	if st, _ := c.Probe(7); st != Shared {
		t.Fatalf("state after downgrade = %v", st)
	}
	if present, _ := c.Downgrade(1234); present {
		t.Fatal("absent line downgraded")
	}
}

// Property: hits + misses == accesses, and a hit never reports a victim.
func TestAccountingQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache("t", 16*64*4, 4, 64)
		for i := 0; i < 2000; i++ {
			line := uint64(rng.Intn(200))
			hit, victim, _ := c.Access(line, rng.Intn(2) == 0, Exclusive)
			if hit && victim.Valid {
				return false
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a cache never holds two copies of the same line, and never
// holds more lines than its capacity.
func TestNoDuplicatesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache("t", 8*64*2, 2, 64)
		for i := 0; i < 1000; i++ {
			c.Access(uint64(rng.Intn(64)), rng.Intn(2) == 0, Exclusive)
			if rng.Intn(10) == 0 {
				c.Invalidate(uint64(rng.Intn(64)))
			}
		}
		seen := map[uint64]int{}
		total := 0
		for _, set := range c.sets {
			for _, w := range set {
				if w.state != Invalid {
					seen[w.tag]++
					total++
				}
			}
		}
		for _, n := range seen {
			if n > 1 {
				return false
			}
		}
		return total <= 8*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Inclusion-style stack property: doubling the associativity with the same
// set count never decreases the hit count on the same trace (LRU stack
// property per set).
func TestStackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trace := make([]uint64, 20000)
	for i := range trace {
		trace[i] = uint64(rng.Intn(500))
	}
	small := NewCache("s", 16*64*2, 2, 64)
	big := NewCache("b", 16*64*4, 4, 64)
	for _, line := range trace {
		small.Access(line, false, Exclusive)
		big.Access(line, false, Exclusive)
	}
	if big.Stats().Hits < small.Stats().Hits {
		t.Fatalf("bigger cache hit less: %d < %d", big.Stats().Hits, small.Stats().Hits)
	}
}

func TestResetStats(t *testing.T) {
	c := NewCache("t", 4*64*2, 2, 64)
	c.Access(1, false, Exclusive)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Fatal("stats not reset")
	}
	// Contents preserved: next access is a hit.
	if hit, _, _ := c.Access(1, false, Exclusive); !hit {
		t.Fatal("reset disturbed contents")
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Fatal("zero accesses should have ratio 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRatio() != 0.25 {
		t.Fatalf("ratio = %v", s.MissRatio())
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", State(9): "?"} {
		if st.String() != want {
			t.Fatalf("State(%d).String() = %q", st, st.String())
		}
	}
}
