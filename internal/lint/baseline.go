package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The waiver ledger: a committed lint-baseline.json records the
// findings a repository has accepted, so CI fails (and annotates) only
// on *new* findings. Entries are keyed by (file, rule, message) with a
// count — line numbers are deliberately excluded so unrelated edits
// that shift code do not invalidate the ledger. A finding is new when
// its key's occurrence count exceeds the baselined count; the excess
// findings (highest line numbers first within the key) are reported.
//
// The ledger is regenerated with `odblint -update-baseline`; shrinking
// it (fixing waived findings) is always safe, growing it is a reviewed
// change like any other.

// BaselineEntry is one accepted finding class.
type BaselineEntry struct {
	File  string `json:"file"`
	Rule  string `json:"rule"`
	Msg   string `json:"msg"`
	Count int    `json:"count"`
}

// Baseline is the committed waiver ledger.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

type baselineKey struct {
	file, rule, msg string
}

// LoadBaseline reads a ledger file. A missing file is not an error: it
// loads as an empty ledger, so a repository adopts the workflow simply
// by running -update-baseline once.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s has unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// NewBaseline aggregates findings into a ledger.
func NewBaseline(findings []Finding) *Baseline {
	counts := make(map[baselineKey]int)
	for _, f := range findings {
		counts[baselineKey{f.File, f.Rule, f.Msg}]++
	}
	b := &Baseline{Version: 1, Findings: make([]BaselineEntry, 0, len(counts))}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{File: k.file, Rule: k.rule, Msg: k.msg, Count: n})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Msg < c.Msg
	})
	return b
}

// Save writes the ledger.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter returns the findings not covered by the ledger: for each
// (file, rule, msg) key, the first `count` findings in sorted order
// are suppressed and any excess is kept.
func (b *Baseline) Filter(findings []Finding) []Finding {
	budget := make(map[baselineKey]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[baselineKey{e.File, e.Rule, e.Msg}] += e.Count
	}
	var kept []Finding
	for _, f := range findings {
		k := baselineKey{f.File, f.Rule, f.Msg}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
