package lint

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Run lints the packages matched by the patterns (resolved against the
// module containing start) with the full rule set and returns the
// findings, sorted, with file paths relative to start when possible.
func Run(start string, patterns []string) ([]Finding, error) {
	c := NewChecker()
	mod, err := LoadModule(c, start)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var dirs []string
	for _, pat := range patterns {
		expanded, err := mod.Expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	analyzers := All()
	var findings []Finding
	for _, dir := range dirs {
		units, err := mod.LoadUnits(dir)
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			findings = append(findings, runUnit(u, analyzers)...)
		}
	}
	if abs, err := filepath.Abs(start); err == nil {
		for i := range findings {
			if rel, err := filepath.Rel(abs, findings[i].File); err == nil && !filepath.IsAbs(rel) {
				findings[i].File = rel
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

// Main is the odblint command: lint the given package patterns
// (default ./...) and print findings to stdout. The exit code is 0 for
// a clean tree, 1 when there are findings, and 2 on usage or load
// errors.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("odblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the rules and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: odblint [-list] [packages]\n\nRules:\n")
		for _, a := range All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "odblint:", err)
		return 2
	}
	findings, err := Run(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "odblint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "odblint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
