package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// writeJSONFindings emits findings as an indented JSON array — the
// machine-readable face CI scripts consume. An empty result encodes as
// [] rather than null so consumers can always range over it.
func writeJSONFindings(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// Run lints the packages matched by the patterns (resolved against the
// module containing start) with the full rule set and returns the
// findings, sorted, with file paths relative to start when possible.
// The module-wide call graph is built only when an analyzed package is
// in an interprocedural rule's scope, so linting a leaf fixture stays
// cheap.
func Run(start string, patterns []string) ([]Finding, error) {
	c := NewChecker()
	return runWithChecker(c, start, patterns)
}

// runWithChecker is Run with a caller-owned Checker, letting tests
// share one stdlib type-check across many module loads.
func runWithChecker(c *Checker, start string, patterns []string) ([]Finding, error) {
	mod, err := LoadModule(c, start)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var dirs []string
	for _, pat := range patterns {
		expanded, err := mod.Expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	var prog *Program
	for _, dir := range dirs {
		if path := mod.importPath(dir); determinismScope[path] || hotAllocScope[path] {
			if prog, err = buildProgram(mod); err != nil {
				return nil, err
			}
			break
		}
	}
	analyzers := All()
	var findings []Finding
	for _, dir := range dirs {
		units, err := mod.LoadUnits(dir)
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			findings = append(findings, runUnit(u, analyzers, prog)...)
		}
	}
	if abs, err := filepath.Abs(start); err == nil {
		for i := range findings {
			if rel, err := filepath.Rel(abs, findings[i].File); err == nil && !filepath.IsAbs(rel) {
				findings[i].File = rel
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

// Main is the odblint command: lint the given package patterns
// (default ./...) and print findings to stdout. The exit code is 0 for
// a clean tree (or one whose findings are all covered by the baseline
// ledger), 1 when there are new findings, and 2 on usage or load
// errors.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("odblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the rules and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text lines")
	sarifPath := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to `file` (\"-\" for stdout)")
	baselinePath := fs.String("baseline", "", "subtract the waiver ledger at `file` from the findings")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the -baseline ledger from the current findings and exit 0")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: odblint [flags] [packages]\n\nRules:\n")
		for _, a := range All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "odblint: -update-baseline requires -baseline <file>")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "odblint:", err)
		return 2
	}
	findings, err := Run(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "odblint:", err)
		return 2
	}
	if *updateBaseline {
		if err := NewBaseline(findings).Save(*baselinePath); err != nil {
			fmt.Fprintln(stderr, "odblint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "odblint: wrote %s (%d finding(s) waived)\n", *baselinePath, len(findings))
		return 0
	}
	if *baselinePath != "" {
		base, err := LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "odblint:", err)
			return 2
		}
		findings = base.Filter(findings)
	}
	if *sarifPath != "" {
		w := stdout
		var f *os.File
		if *sarifPath != "-" {
			if f, err = os.Create(*sarifPath); err != nil {
				fmt.Fprintln(stderr, "odblint:", err)
				return 2
			}
			w = f
		}
		err = WriteSARIF(w, findings, All())
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "odblint:", err)
			return 2
		}
	}
	if *jsonOut {
		if err := writeJSONFindings(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "odblint:", err)
			return 2
		}
	} else if *sarifPath != "-" {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "odblint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
