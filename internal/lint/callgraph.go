package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer under taintdet and hotalloc:
// a module-wide call graph built from the import-facing type-check of
// every package in the module. Nodes are keyed by the stable
// types.Func full name ("odbscale/internal/sim.New",
// "(*odbscale/internal/cache.Domain).Close"), so a function resolved
// through an import and the same function type-checked as part of its
// own analysis unit land on the same node even though they are
// distinct types.Func objects.
//
// The graph carries two edge kinds:
//
//   - call edges: static calls the type-checker can resolve. Dynamic
//     dispatch (interface methods, calls through function-typed
//     variables) produces no edge; the analyzers are deliberately
//     conservative rather than complete there.
//   - ref edges: a function value referenced without being called —
//     registering a callback, storing a method into a struct field,
//     passing a handler to a constructor. Reachability over call+ref
//     edges approximates "running F may eventually run G" even when
//     the actual invocation happens through a stored function value.
//
// Each node also records two facts the analyzers consume: whether the
// function directly draws banned entropy (a taint source) and whether
// it returns a slice built by unsorted map iteration (order entropy).

// A graphEdge points at a callee or referenced function.
type graphEdge struct {
	callee string    // node key
	name   string    // display name
	pos    token.Pos // call or reference site
}

// A graphNode is one module function with a body.
type graphNode struct {
	key     string
	name    string // short display name
	pkgPath string

	calls []graphEdge
	refs  []graphEdge

	// entropy names the banned entropy source this function calls
	// directly ("" when clean); mapOrdered marks a function returning
	// a slice assembled in map-iteration order without a sort.
	entropy    string
	mapOrdered bool
}

// taintCause explains why a function is determinism-tainted: the
// ultimate source and the call path from the function down to it.
type taintCause struct {
	source string
	path   []string // display names, caller-to-source order
}

// Program is the module-wide analysis state shared by the
// interprocedural analyzers.
type Program struct {
	mod   *Module
	nodes map[string]*graphNode
	taint map[string]*taintCause // memo; present-and-nil means clean
	hot   map[string]bool        // per-event reachability, built lazily
}

// funcKey returns the stable cross-universe key for fn.
func funcKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// shortName compresses a node key for finding messages: package paths
// are cut down to the last element, so
// "(*odbscale/internal/cache.Domain).Close" reads "(*cache.Domain).Close".
func shortName(key string) string {
	var b strings.Builder
	start := -1 // start of the current path-ish token
	flushUpto := func(end int) {
		if start < 0 {
			return
		}
		tok := key[start:end]
		if i := strings.LastIndexByte(tok, '/'); i >= 0 {
			tok = tok[i+1:]
		}
		b.WriteString(tok)
		start = -1
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c == '/' || c == '.' || c == '_' || c == '-' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			if start < 0 {
				start = i
			}
			continue
		}
		flushUpto(i)
		b.WriteByte(c)
	}
	flushUpto(len(key))
	return b.String()
}

// taintSourceOf classifies fn as a determinism-taint source: the
// banned entropy set of the determinism rule plus hardware entropy
// from crypto/rand. The returned label names the source in findings.
func taintSourceOf(fn *types.Func) (string, bool) {
	if msg, bad := bannedEntropy(fn); bad {
		// Reuse the determinism classification but label compactly:
		// "time.Now (wall-clock entropy)".
		kind := msg
		if i := strings.IndexByte(msg, '('); i > 0 {
			kind = strings.TrimSpace(msg[:i])
		}
		return fn.Pkg().Name() + "." + fn.Name() + " (" + kind + ")", true
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "crypto/rand" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			return "crypto/rand." + fn.Name() + " (hardware entropy)", true
		}
	}
	return "", false
}

// buildProgram type-checks every package of the module (import-facing,
// non-test files) and assembles the call graph. Packages are processed
// in sorted import-path order and bodies in source order, so node and
// edge order — and therefore every reported taint path — is
// deterministic.
func buildProgram(m *Module) (*Program, error) {
	p := &Program{mod: m, nodes: make(map[string]*graphNode), taint: make(map[string]*taintCause)}
	paths := make([]string, 0, len(m.dirs))
	for path := range m.dirs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if _, err := m.importPkg(path); err != nil {
			return nil, err
		}
	}
	for _, path := range paths {
		info := m.facingInfo[path]
		src := m.srcs[m.dirs[path]]
		if info == nil || src == nil {
			continue
		}
		for _, f := range src.nonTest {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(obj)
				n := &graphNode{key: key, name: shortName(key), pkgPath: path}
				p.scanBody(n, info, fd)
				p.nodes[key] = n
			}
		}
	}
	return p, nil
}

// scanBody records fd's call edges, ref edges and taint-source facts
// on n. Function literals nested in fd attribute their calls and
// references to fd's node: a callback defined inline still taints (and
// is reached through) the function that created it.
func (p *Program) scanBody(n *graphNode, info *types.Info, fd *ast.FuncDecl) {
	// Expressions in call position: excluded from ref-edge scanning.
	called := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		called[fun] = true
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			called[sel.Sel] = true
		}
		if fn := calleeOf(info, call); fn != nil {
			key := funcKey(fn)
			n.calls = append(n.calls, graphEdge{callee: key, name: shortName(key), pos: call.Pos()})
			if src, bad := taintSourceOf(fn); bad && n.entropy == "" {
				n.entropy = src
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		var fn *types.Func
		var pos token.Pos
		switch e := node.(type) {
		case *ast.Ident:
			if called[e] {
				return true
			}
			fn, _ = info.Uses[e].(*types.Func)
			pos = e.Pos()
		case *ast.SelectorExpr:
			if called[e] || called[e.Sel] {
				return true
			}
			fn, _ = info.Uses[e.Sel].(*types.Func)
			pos = e.Pos()
		default:
			return true
		}
		if fn == nil {
			return true
		}
		key := funcKey(fn)
		n.refs = append(n.refs, graphEdge{callee: key, name: shortName(key), pos: pos})
		return true
	})
	if pos := mapOrderedResult(info, fd); pos.IsValid() {
		n.mapOrdered = true
	}
}

// Taint reports whether the function behind key transitively draws
// banned entropy through static call edges, and if so how. The result
// is memoized; nil means clean (or unknown — a function the graph has
// no body for).
func (p *Program) Taint(key string) *taintCause {
	return p.taintOf(key, make(map[string]bool))
}

func (p *Program) taintOf(key string, visiting map[string]bool) *taintCause {
	if c, ok := p.taint[key]; ok {
		return c
	}
	n := p.nodes[key]
	if n == nil || visiting[key] {
		return nil
	}
	visiting[key] = true
	defer delete(visiting, key)
	var cause *taintCause
	switch {
	case n.entropy != "":
		cause = &taintCause{source: n.entropy, path: []string{n.name}}
	case n.mapOrdered:
		cause = &taintCause{
			source: "a map-iteration-ordered result",
			path:   []string{n.name},
		}
	default:
		for _, e := range n.calls {
			if sub := p.taintOf(e.callee, visiting); sub != nil {
				cause = &taintCause{
					source: sub.source,
					path:   append([]string{n.name}, sub.path...),
				}
				break
			}
		}
	}
	if len(visiting) == 1 {
		// Memoize only at the recursion root: deeper results computed
		// while an ancestor is in `visiting` may be incomplete for
		// cyclic call chains.
		p.taint[key] = cause
	}
	return cause
}

// hotRootKey is the per-event analysis root: everything the unified
// Run entry point can reach, minus construction-time code, is the
// steady-state path the allocation discipline protects.
const hotRootKey = "odbscale/internal/system.Run"

// coldFunc classifies a function name as construction/teardown-time:
// allocation there is expected (arenas and pools are carved at New)
// and reachability is not propagated through its body.
func coldFunc(name string) bool {
	switch {
	case strings.HasPrefix(name, "New"),
		strings.HasPrefix(name, "Enable"),
		strings.HasPrefix(name, "Marshal"),
		strings.HasPrefix(name, "Unmarshal"):
		return true
	}
	switch name {
	case "init", "Close", "String", "GoString", "Error", "Format", "validate":
		return true
	}
	return false
}

// Hot reports whether key is on the per-event path: reachable from
// system.Run over call+ref edges without passing through a cold
// (construction-time) function.
func (p *Program) Hot(key string) bool {
	if p.hot == nil {
		p.hot = make(map[string]bool)
		p.markHot(hotRootKey)
	}
	return p.hot[key]
}

func (p *Program) markHot(key string) {
	if p.hot[key] {
		return
	}
	n := p.nodes[key]
	if n == nil {
		return
	}
	p.hot[key] = true
	for _, e := range n.calls {
		p.expandHot(e.callee)
	}
	for _, e := range n.refs {
		p.expandHot(e.callee)
	}
}

// expandHot descends into a reachable function unless it is cold:
// cold functions stay out of the hot set and their callees are only
// reached if some warm path also leads there.
func (p *Program) expandHot(key string) {
	if n := p.nodes[key]; n != nil && coldFunc(baseFuncName(key)) {
		return
	}
	p.markHot(key)
}

// baseFuncName extracts the bare function or method name from a node
// key: "(*odbscale/internal/cache.Domain).Close" -> "Close".
func baseFuncName(key string) string {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		return key[i+1:]
	}
	return key
}
