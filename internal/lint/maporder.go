package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `for range` loops over maps whose body feeds ordered
// output — appending to a slice, printing, or encoding — with no sort
// later in the same function. Go randomizes map iteration order, so
// such loops make output (figures, tables, checkpoints, JSON events)
// differ run to run even under a fixed seed.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration that appends to slices or writes output " +
		"without a subsequent sort",
	Run: runMapOrder,
}

// outputSink classifies a call inside a map-range body as one that
// makes iteration order observable.
func outputSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	if isAppend(info, call) {
		return "appends to a slice", true
	}
	fn := calleeOf(info, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return "writes formatted output", true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Encode", "Write", "WriteString", "WriteByte", "WriteRune":
			return "writes encoded output", true
		}
	}
	return "", false
}

// sortsAfter reports whether the function body contains a sort call
// positioned after the loop: sort.* / slices.* package functions, or
// any method named Sort.
func sortsAfter(info *types.Info, body *ast.BlockStmt, loop *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < loop.End() {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
			found = true
		} else if fn.Name() == "Sort" {
			found = true
		}
		return !found
	})
	return found
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		forEachFunc(f, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				// Nested functions get their own forEachFunc visit with
				// their own body as the sort horizon.
				if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
					return false
				}
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				sink, sinkPos := "", rs.Pos()
				ast.Inspect(rs.Body, func(n ast.Node) bool {
					if sink != "" {
						return false
					}
					if call, ok := n.(*ast.CallExpr); ok {
						if s, bad := outputSink(pass.Info, call); bad {
							sink, sinkPos = s, call.Pos()
						}
					}
					return sink == ""
				})
				if sink == "" || sortsAfter(pass.Info, body, rs) {
					return true
				}
				pass.Reportf(sinkPos,
					"map iteration order %s; collect the keys and sort before emitting, or sort after the loop", sink)
				return true
			})
		})
	}
}
