package lint

import (
	"go/ast"
	"go/types"
)

// calleeOf returns the *types.Func a call statically resolves to, or
// nil for builtins, conversions, and dynamic calls.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isAppend reports whether a call is the append builtin.
func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// forEachFunc visits every function in the file that has a body —
// declarations and literals alike — reporting the declared name
// ("" for literals).
func forEachFunc(f *ast.File, visit func(name string, ftype *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Name.Name, fn.Type, fn.Body)
			}
		case *ast.FuncLit:
			visit("", fn.Type, fn.Body)
		}
		return true
	})
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isFloat reports whether t's core type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()
