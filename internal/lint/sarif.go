package lint

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output, minimal but valid: one run, one driver, one rule
// per analyzer (plus the "lint" pseudo-rule for malformed suppression
// directives), one result per finding. GitHub code scanning ingests
// this shape directly, which is how CI annotates PRs with new
// findings.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF encodes findings as a SARIF 2.1.0 log. The rule table is
// taken from analyzers (usually All()) so tools can show rule help
// even for rules that produced no findings this run.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "lint",
		ShortDescription: sarifText{Text: "malformed //lint:ignore suppression directive"},
	})
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifText{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "odblint", Rules: rules}},
			Results: results,
		}},
	})
}
