package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONOutput drives -json end to end: a dirty fixture emits a
// parseable array carrying file/line/col/rule/msg, a clean one emits
// [] rather than null.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-json", "testdata/sentinelerr"}, &stdout, &stderr); code != 1 {
		t.Fatalf("Main(-json, dirty) = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var findings []Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json output is empty for a dirty fixture")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Col == 0 || f.Rule == "" || f.Msg == "" {
			t.Errorf("finding with missing fields: %+v", f)
		}
	}

	stdout.Reset()
	if code := Main([]string{"-json", "testdata/suppress"}, &stdout, &stderr); code != 0 {
		t.Fatalf("Main(-json, clean) = %d, want 0", code)
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestSARIFOutput checks the -sarif surface: version, the full rule
// table (all nine analyzers plus the lint pseudo-rule), and one result
// per finding with a physical location.
func TestSARIFOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-sarif", "-", "testdata/sentinelerr"}, &stdout, &stderr); code != 1 {
		t.Fatalf("Main(-sarif -, dirty) = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var log sarifLog
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "odblint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range All() {
		if !ruleIDs[a.Name] {
			t.Errorf("SARIF rule table missing %q", a.Name)
		}
	}
	if !ruleIDs["lint"] {
		t.Error("SARIF rule table missing the lint pseudo-rule")
	}
	if len(run.Results) == 0 {
		t.Fatal("SARIF results empty for a dirty fixture")
	}
	for _, r := range run.Results {
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine == 0 {
			t.Errorf("SARIF result without a physical location: %+v", r)
		}
	}
}

// TestSARIFToFile checks that -sarif <file> writes the log without
// eating the text findings.
func TestSARIFToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "odblint.sarif")
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-sarif", path, "testdata/sentinelerr"}, &stdout, &stderr); code != 1 {
		t.Fatalf("Main(-sarif file, dirty) = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "[sentinelerr]") {
		t.Errorf("text findings suppressed when -sarif writes to a file:\n%s", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "2.1.0") {
		t.Errorf("SARIF file content unexpected:\n%s", data)
	}
}

// TestBaselineWorkflow drives the waiver-ledger loop end to end:
// -update-baseline waives the current findings, a -baseline run exits
// 0, and a finding beyond the ledgered count is still reported.
func TestBaselineWorkflow(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "lint-baseline.json")
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-baseline", ledger, "-update-baseline", "testdata/sentinelerr"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-update-baseline = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := Main([]string{"-baseline", ledger, "testdata/sentinelerr"}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run = %d, want 0\nstdout: %s", code, stdout.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "" {
		t.Errorf("baselined run still prints findings:\n%s", got)
	}
	// The ledger must not leak across keys: a different fixture's
	// findings stay fatal.
	stdout.Reset()
	if code := Main([]string{"-baseline", ledger, "testdata/floateq"}, &stdout, &stderr); code != 1 {
		t.Fatalf("baselined run on a different fixture = %d, want 1", code)
	}
}

// TestBaselineFilterExcess pins the per-key counting: the ledger
// covers exactly Count findings per (file, rule, msg) key and the
// excess is kept.
func TestBaselineFilterExcess(t *testing.T) {
	f := func(line int) Finding {
		return Finding{File: "x.go", Line: line, Rule: "hotalloc", Msg: "m"}
	}
	base := NewBaseline([]Finding{f(10)})
	kept := base.Filter([]Finding{f(10), f(20)})
	if len(kept) != 1 || kept[0].Line != 20 {
		t.Errorf("Filter kept %v, want the single line-20 excess finding", kept)
	}
	if kept := base.Filter([]Finding{f(12)}); len(kept) != 0 {
		t.Errorf("line-number drift broke the ledger match: %v", kept)
	}
}

// TestBaselineLoad covers the adoption path (missing file loads empty)
// and version rejection.
func TestBaselineLoad(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || len(b.Findings) != 0 {
		t.Fatalf("missing ledger: %v, %v", b, err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":2,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Fatal("unsupported ledger version accepted")
	}
}

// TestUpdateBaselineRequiresPath pins the flag contract.
func TestUpdateBaselineRequiresPath(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-update-baseline", "testdata/sentinelerr"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-update-baseline without -baseline = %d, want 2", code)
	}
}
