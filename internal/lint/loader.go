package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Checker owns the shared state of a lint run: one FileSet covering
// every parsed file and one stdlib source importer (Go distributions no
// longer ship compiled export data, so the standard library is
// type-checked from $GOROOT/src on first use and cached).
type Checker struct {
	fset *token.FileSet
	std  types.Importer
}

// NewChecker builds a checker with a fresh FileSet.
func NewChecker() *Checker {
	fset := token.NewFileSet()
	return &Checker{fset: fset, std: importer.ForCompiler(fset, "source", nil)}
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// check type-checks files as import path path, resolving imports with
// imp.
func (c *Checker) check(path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, c.fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// parseDir parses every .go file in dir, split into the non-test
// files, in-package test files, and external (package foo_test) test
// files.
func (c *Checker) parseDir(dir string) (nonTest, inTest, extTest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	pkgName := ""
	for _, name := range names {
		f, perr := parser.ParseFile(c.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		if buildConstraintExcluded(f) {
			continue
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			if pkgName == "" {
				pkgName = f.Name.Name
			}
			nonTest = append(nonTest, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return nonTest, inTest, extTest, nil
}

// buildConstraintExcluded reports whether f carries a //go:build (or
// legacy // +build) constraint that evaluates false in the default
// configuration the linter analyzes: no build tags set, release Go
// version assumed. Files gated behind tags like `race` are skipped the
// same way an untagged `go build` skips them; their tag-pair twins
// (`!race`) stay in, so each package still type-checks as one
// consistent file set.
func buildConstraintExcluded(f *ast.File) bool {
	defaultTags := func(tag string) bool {
		return strings.HasPrefix(tag, "go1")
	}
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(defaultTags) {
				return true
			}
		}
	}
	return false
}

// CheckDir type-checks the files of a single directory as import path
// asPath — imports resolve against the standard library only — and
// runs the analyzers over all of them (test files included). It is the
// entry point the fixture tests use.
func (c *Checker) CheckDir(dir, asPath string, analyzers []*Analyzer) ([]Finding, error) {
	nonTest, inTest, extTest, err := c.parseDir(dir)
	if err != nil {
		return nil, err
	}
	files := append(append(nonTest, inTest...), extTest...)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, info, err := c.check(asPath, files, c.std)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	fs := runUnit(&unit{path: asPath, fset: c.fset, files: files, pkg: pkg, info: info}, analyzers, nil)
	sortFindings(fs)
	return fs, nil
}

// Module is a loaded Go module: the root directory, the module path,
// and the lazily type-checked packages inside it.
type Module struct {
	c    *Checker
	Root string
	Path string

	// dirs maps import path -> directory for every discoverable
	// package directory (testdata and hidden directories excluded).
	dirs map[string]string

	facing     map[string]*types.Package // import-facing (non-test) packages
	facingInfo map[string]*types.Info    // their retained type info, for the call graph
	srcs       map[string]*dirSrc        // parse cache, keyed by directory
	checking   map[string]bool           // import cycle detection
}

// dirSrc caches one directory's parsed files so the import resolver,
// the unit loader and the call-graph builder never re-parse a file.
type dirSrc struct {
	nonTest, inTest, extTest []*ast.File
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// LoadModule locates the module containing start (walking up to the
// nearest go.mod) and indexes its package directories.
func LoadModule(c *Checker, start string) (*Module, error) {
	root, err := filepath.Abs(start)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", start)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	m := &Module{
		c:          c,
		Root:       root,
		Path:       modPath,
		dirs:       make(map[string]string),
		facing:     make(map[string]*types.Package),
		facingInfo: make(map[string]*types.Info),
		srcs:       make(map[string]*dirSrc),
		checking:   make(map[string]bool),
	}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				m.dirs[m.importPath(path)] = path
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// importPath derives the import path of a directory inside the module.
func (m *Module) importPath(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// inModule reports whether path names a package of this module.
func (m *Module) inModule(path string) bool {
	return path == m.Path || strings.HasPrefix(path, m.Path+"/")
}

// sources returns dir's parsed files, parsing on first use.
func (m *Module) sources(dir string) (*dirSrc, error) {
	if s, ok := m.srcs[dir]; ok {
		return s, nil
	}
	nonTest, inTest, extTest, err := m.c.parseDir(dir)
	if err != nil {
		return nil, err
	}
	s := &dirSrc{nonTest: nonTest, inTest: inTest, extTest: extTest}
	m.srcs[dir] = s
	return s, nil
}

// importPkg resolves one import for the type-checker: module-internal
// packages type-check recursively from source (non-test files only, as
// the compiler would export them); everything else falls through to
// the stdlib source importer. The type info of module packages is
// retained for the call-graph layer.
func (m *Module) importPkg(path string) (*types.Package, error) {
	if !m.inModule(path) {
		return m.c.std.Import(path)
	}
	if pkg, ok := m.facing[path]; ok {
		return pkg, nil
	}
	if m.checking[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	dir, ok := m.dirs[path]
	if !ok {
		return nil, fmt.Errorf("package %s is not in module %s", path, m.Path)
	}
	m.checking[path] = true
	defer delete(m.checking, path)
	src, err := m.sources(dir)
	if err != nil {
		return nil, err
	}
	if len(src.nonTest) == 0 {
		return nil, fmt.Errorf("package %s has no non-test Go files", path)
	}
	info := newInfo()
	conf := types.Config{Importer: importerFunc(m.importPkg)}
	pkg, err := conf.Check(path, m.c.fset, src.nonTest, info)
	if err != nil {
		return nil, err
	}
	m.facing[path] = pkg
	m.facingInfo[path] = info
	return pkg, nil
}

// LoadUnits parses and type-checks the package in dir as its analysis
// units: the package with its in-package test files, plus — when one
// exists — the external _test package.
func (m *Module) LoadUnits(dir string) ([]*unit, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := m.importPath(abs)
	src, err := m.sources(abs)
	if err != nil {
		return nil, err
	}
	nonTest, inTest, extTest := src.nonTest, src.inTest, src.extTest
	var units []*unit
	if files := append(append([]*ast.File(nil), nonTest...), inTest...); len(files) > 0 {
		pkg, info, err := m.c.check(path, files, importerFunc(m.importPkg))
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", path, err)
		}
		units = append(units, &unit{path: path, fset: m.c.fset, files: files, pkg: pkg, info: info})
	}
	if len(extTest) > 0 {
		tpath := path + "_test"
		pkg, info, err := m.c.check(tpath, extTest, importerFunc(m.importPkg))
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", tpath, err)
		}
		units = append(units, &unit{path: path, fset: m.c.fset, files: extTest, pkg: pkg, info: info})
	}
	return units, nil
}

// Expand resolves a command-line package pattern to directories:
// "./..." (every package in the module), "dir/..." (every package
// under dir), or a single directory.
func (m *Module) Expand(pat string) ([]string, error) {
	all := func(under string) []string {
		var dirs []string
		for _, d := range m.dirs {
			if d == under || strings.HasPrefix(d, under+string(filepath.Separator)) {
				dirs = append(dirs, d)
			}
		}
		sort.Strings(dirs)
		return dirs
	}
	switch {
	case pat == "./..." || pat == "...":
		return all(m.Root), nil
	case strings.HasSuffix(pat, "/..."):
		base, err := filepath.Abs(strings.TrimSuffix(pat, "/..."))
		if err != nil {
			return nil, err
		}
		dirs := all(base)
		if len(dirs) == 0 {
			return nil, fmt.Errorf("no packages match %s", pat)
		}
		return dirs, nil
	default:
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if st, err := os.Stat(abs); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("%s is not a package directory", pat)
		}
		return []string{abs}, nil
	}
}
