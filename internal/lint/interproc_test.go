package lint

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

// runModuleFixture lints a testdata mini-module (its own go.mod names
// it "odbscale" so the scope maps match) through the full driver,
// interprocedural layer included, and returns "path:line: [rule] msg"
// lines with slash-separated paths.
func runModuleFixture(t *testing.T, mod string) []string {
	t.Helper()
	start := filepath.Join("testdata", mod)
	findings, err := runWithChecker(checker, start, []string{"./..."})
	if err != nil {
		t.Fatalf("lint %s: %v", mod, err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s:%d: [%s] %s", filepath.ToSlash(f.File), f.Line, f.Rule, f.Msg))
	}
	return got
}

// TestTaintFixture pins the transitive-determinism corpus: wrappers in
// an unscoped package do not defeat the rule, reported paths name the
// hops, and the injectable-clock pattern (returning time.Now as a
// value) stays clean.
func TestTaintFixture(t *testing.T) {
	got := runModuleFixture(t, "mod_taint")
	checkGolden(t, "mod_taint", got)
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "timeutil.Stamp") || !strings.Contains(joined, "time.Now") {
		t.Errorf("taintdet missed the two-hop clock wrapper:\n%s", joined)
	}
	if !strings.Contains(joined, "->") {
		t.Errorf("taintdet findings carry no call path:\n%s", joined)
	}
	for _, clean := range []string{"Scale", "Inject", "Clock"} {
		if strings.Contains(joined, clean) {
			t.Errorf("taintdet flagged the clean function %s:\n%s", clean, joined)
		}
	}
}

// TestHotAllocFixture pins the allocation-discipline corpus: the four
// allocation classes fire on the event path, and construction-time
// code, unreachable code, panic assertions and perf-waived fallbacks
// stay exempt.
func TestHotAllocFixture(t *testing.T) {
	got := runModuleFixture(t, "mod_hotalloc")
	checkGolden(t, "mod_hotalloc", got)
}

// TestSimEventPathAllocRegression is the acceptance pin: a seeded heap
// allocation on the sim event path must be caught, in each of the four
// classes — including one reached only through a callback reference.
func TestSimEventPathAllocRegression(t *testing.T) {
	joined := strings.Join(runModuleFixture(t, "mod_hotalloc"), "\n")
	wantLines := map[string]string{
		"escaping composite": "composite literal escapes",
		"two-step escape":    "holds this composite literal's address",
		"fresh append":       "append grows ids",
		"loop closure":       "allocated on every loop iteration",
		"interface boxing":   "boxed into an interface argument",
		"ref-edge reach":     "append grows out",
	}
	for class, marker := range wantLines {
		if !strings.Contains(joined, marker) {
			t.Errorf("hotalloc missed the %s class (no %q):\n%s", class, marker, joined)
		}
	}
	for _, exempt := range []string{"NewEngine", "Orphan", "guard", "spill"} {
		for _, line := range strings.Split(joined, "\n") {
			if strings.Contains(line, exempt) {
				t.Errorf("hotalloc flagged exempt function %s: %s", exempt, line)
			}
		}
	}
}

// TestLaneShareFixture pins the ownership corpus under the scoped
// import path.
func TestLaneShareFixture(t *testing.T) {
	checkGolden(t, "laneshare", runFixture(t, "laneshare", "odbscale/internal/cache"))
}

// TestLaneShareScope loads the same corpus outside the lane-worker
// packages: nothing may fire.
func TestLaneShareScope(t *testing.T) {
	if got := runFixture(t, "laneshare", "odbscale/internal/lint/fixture/lanes"); len(got) != 0 {
		t.Errorf("laneshare fired outside its package scope:\n%s", strings.Join(got, "\n"))
	}
}

// TestLaneOwnershipRegression is the acceptance pin: a write to a
// non-owned slot inside a lane worker must be caught, and the real
// owned-range stride (cpu := worker; cpu += workers) must not be.
func TestLaneOwnershipRegression(t *testing.T) {
	got := runFixture(t, "laneshare", "odbscale/internal/cache")
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "without indexing") {
		t.Errorf("laneshare missed the non-owned write:\n%s", joined)
	}
	for _, line := range got {
		if strings.Contains(line, "neg.go") {
			t.Errorf("laneshare flagged the compliant worker: %s", line)
		}
	}
}

// TestFindingOrderDeterministic runs the same-line corpus twice and
// requires byte-identical findings, in the total (file, line, column,
// rule, message) order — the cross-analyzer ordering regression test.
func TestFindingOrderDeterministic(t *testing.T) {
	load := func() []Finding {
		findings, err := checker.CheckDir(filepath.Join("testdata", "order"), simScope, All())
		if err != nil {
			t.Fatal(err)
		}
		return findings
	}
	first, second := load(), load()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("two identical runs disagree:\n%v\nvs\n%v", first, second)
	}
	if len(first) < 4 {
		t.Fatalf("order corpus produced %d findings, want at least 4:\n%v", len(first), first)
	}
	if !sort.SliceIsSorted(first, func(i, j int) bool {
		a, b := first[i], first[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	}) {
		t.Errorf("findings are not in total order:\n%v", first)
	}
	var got []string
	for _, f := range first {
		got = append(got, fmt.Sprintf("%s:%d:%d: [%s] %s", filepath.Base(f.File), f.Line, f.Col, f.Rule, f.Msg))
	}
	checkGolden(t, "order", got)
}

// TestSortFindingsTotalOrder drives the comparator directly on ties a
// real corpus cannot force: same position, different rule and message.
func TestSortFindingsTotalOrder(t *testing.T) {
	fs := []Finding{
		{File: "a.go", Line: 1, Col: 5, Rule: "zeta", Msg: "m"},
		{File: "a.go", Line: 1, Col: 5, Rule: "alpha", Msg: "n"},
		{File: "a.go", Line: 1, Col: 5, Rule: "alpha", Msg: "m"},
		{File: "a.go", Line: 1, Col: 2, Rule: "zeta", Msg: "m"},
	}
	sortFindings(fs)
	want := []Finding{
		{File: "a.go", Line: 1, Col: 2, Rule: "zeta", Msg: "m"},
		{File: "a.go", Line: 1, Col: 5, Rule: "alpha", Msg: "m"},
		{File: "a.go", Line: 1, Col: 5, Rule: "alpha", Msg: "n"},
		{File: "a.go", Line: 1, Col: 5, Rule: "zeta", Msg: "m"},
	}
	if !reflect.DeepEqual(fs, want) {
		t.Errorf("sortFindings order:\ngot  %v\nwant %v", fs, want)
	}
}

// lintBudget is the CI wall-clock ceiling for one whole-repository
// lint run. The suite runs in a few seconds; the ceiling guards the
// call-graph layer against superlinear regressions, not noise.
const lintBudget = 30 * time.Second

// TestRepoLintsClean pins two acceptance criteria at once: the
// repository lints clean under all nine analyzers, and one whole-repo
// run fits the CI budget.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo lint in -short mode")
	}
	begin := time.Now()
	findings, err := runWithChecker(checker, filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(begin)
	for _, f := range findings {
		t.Errorf("repository finding: %s", f)
	}
	if elapsed > lintBudget && !raceEnabled {
		t.Errorf("whole-repo lint took %v, over the %v CI budget", elapsed, lintBudget)
	}
}

// BenchmarkLintWholeRepo measures one full nine-analyzer pass over the
// repository, the number the CI budget assertion above is pinned to.
func BenchmarkLintWholeRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		findings, err := runWithChecker(checker, filepath.Join("..", ".."), []string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("repository is not clean: %v", findings)
		}
	}
}
