package lint

import (
	"go/ast"
	"strings"
)

// TaintDet is the interprocedural extension of the determinism rule.
// Determinism flags a direct time.Now (or global math/rand, pid,
// crypto/rand) use inside a simulator package — but a one-level
// wrapper defeats it: sim code calling util.Stamp(), where util (not
// in the determinism scope) calls time.Now, went unflagged. TaintDet
// closes that hole: any call from simulator non-test code whose callee
// transitively reaches a banned entropy source over static call edges
// is a finding, with the full call path in the message. Functions that
// return a slice assembled in map-iteration order without sorting are
// sources too — order entropy propagates exactly like clock entropy.
//
// The analysis is conservative where Go is dynamic: calls through
// interfaces or stored function values produce no static edge and are
// not traced. Passing entropy *references* (the sanctioned
// clock.Wall() pattern, which returns time.Now uninvoked for later
// injection) is deliberately not a taint edge — inside the determinism
// scope the direct rule already forbids the reference itself.
var TaintDet = &Analyzer{
	Name: "taintdet",
	Doc: "flag calls from simulator packages whose callee transitively " +
		"reaches wall-clock, global-rand, or map-order entropy",
	Run: runTaintDet,
}

func runTaintDet(pass *Pass) {
	if pass.Prog == nil || !determinismScope[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Info, call)
			if fn == nil {
				return true
			}
			if _, direct := taintSourceOf(fn); direct {
				return true // the determinism rule owns direct call sites
			}
			cause := pass.Prog.Taint(funcKey(fn))
			if cause == nil {
				return true
			}
			pass.Reportf(call.Pos(), "call to %s eventually draws %s (path: %s)",
				shortName(funcKey(fn)), cause.source, strings.Join(cause.path, " -> "))
			return true
		})
	}
}
