package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotAllocScope is the set of packages PR 5 made allocation-free in
// steady state: the event engine, the cache hierarchy and its snoop
// lanes, the buffer-cache arena, the RNG fast paths, and the odb chunk
// path. The committed bench trajectory pins a −97.8% allocation win
// across them; HotAlloc protects it statically instead of only through
// the 25%-regression bench gate.
var hotAllocScope = map[string]bool{
	"odbscale/internal/sim":          true,
	"odbscale/internal/cache":        true,
	"odbscale/internal/buffercache":  true,
	"odbscale/internal/xrand":        true,
	"odbscale/internal/odb":          true,
	"odbscale/internal/engine":       true, // planner seam rides the per-op path
	"odbscale/internal/engine/btree": true,
	"odbscale/internal/engine/lsm":   true, // read-path draws and MemWrite run per op
	"odbscale/internal/txtrace":      true, // per-commit span path pools trace records
	"odbscale/internal/qstats":       true, // station accumulation rides every event
}

// HotAlloc flags allocation patterns inside functions on the per-event
// path: the call-graph closure of system.Run (over call and
// callback-reference edges) minus construction-time code — New*,
// Enable*, Close and friends legitimately carve arenas and pools. Four
// allocation classes are findings:
//
//   - a composite literal taken by address that escapes (returned,
//     stored to a field or package variable, passed to a call, sent on
//     a channel) — a guaranteed heap allocation per event;
//   - append growth on a slice allocated fresh in the same function —
//     the pooled idiom reuses a field or caller-provided buffer;
//   - a closure that captures variables, created inside a loop — one
//     heap allocation per iteration;
//   - a struct, array or float value passed where an interface is
//     expected — boxing allocates (pointers and small integers do
//     not, and stay exempt).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag escaping composite literals, fresh-slice append growth, " +
		"per-iteration closures, and interface boxing on the per-event path",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	if pass.Prog == nil || !hotAllocScope[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok || !pass.Prog.Hot(funcKey(obj)) {
				continue
			}
			checkEscapingComposites(pass, fd)
			checkFreshAppends(pass, fd)
			checkLoopClosures(pass, fd)
			checkInterfaceBoxing(pass, fd)
		}
	}
}

// addrOfComposite returns the composite literal when expr is
// (&T{...}), possibly parenthesized.
func addrOfComposite(expr ast.Expr) *ast.CompositeLit {
	un, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return nil
	}
	lit, _ := ast.Unparen(un.X).(*ast.CompositeLit)
	return lit
}

// checkEscapingComposites flags &T{...} in escaping positions, plus
// the two-step form where the pointer lands in a local that later
// escapes.
func checkEscapingComposites(pass *Pass, fd *ast.FuncDecl) {
	body := fd.Body
	// locals holding an address-of-composite, for the two-step check.
	ptrLocals := make(map[types.Object]*ast.CompositeLit)
	report := func(lit *ast.CompositeLit, how string) {
		pass.Reportf(lit.Pos(), "composite literal escapes to the heap (%s); "+
			"allocate it once at construction time or reuse a pooled slot", how)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if lit := addrOfComposite(r); lit != nil {
					report(lit, "returned")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				lit := addrOfComposite(rhs)
				if lit == nil {
					continue
				}
				if i >= len(st.Lhs) {
					break
				}
				base, _ := chainBase(st.Lhs[i])
				if id, ok := base.(*ast.Ident); ok && ast.Unparen(st.Lhs[i]) == base {
					obj := pass.Info.ObjectOf(id)
					if declaredWithin(obj, body.Pos(), body.End()) {
						// p := &T{} — stack-allocatable until p escapes.
						ptrLocals[obj] = lit
						continue
					}
				}
				report(lit, "stored outside the function's frame")
			}
		case *ast.CallExpr:
			for _, arg := range st.Args {
				if lit := addrOfComposite(arg); lit != nil {
					report(lit, "passed to a call")
				}
			}
		case *ast.SendStmt:
			if lit := addrOfComposite(st.Value); lit != nil {
				report(lit, "sent on a channel")
			}
		}
		return true
	})
	if len(ptrLocals) == 0 {
		return
	}
	// Second step: does any pointer-holding local escape?
	ast.Inspect(body, func(n ast.Node) bool {
		escapes := func(e ast.Expr, how string) {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				obj := pass.Info.ObjectOf(id)
				if lit := ptrLocals[obj]; lit != nil {
					// Report at the literal, where the allocation (and any
					// waiver) belongs, naming the escape that forces it.
					pass.Reportf(lit.Pos(), "local %s holds this composite literal's address and %s; "+
						"the literal is heap-allocated per call", id.Name, how)
					delete(ptrLocals, obj)
				}
			}
		}
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				escapes(r, "is returned")
			}
		case *ast.CallExpr:
			for _, arg := range st.Args {
				escapes(arg, "is passed to a call")
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				base, _ := chainBase(st.Lhs[i])
				if id, ok := base.(*ast.Ident); ok && ast.Unparen(st.Lhs[i]) == base {
					if declaredWithin(pass.Info.ObjectOf(id), body.Pos(), body.End()) {
						continue // local-to-local copy
					}
				}
				escapes(rhs, "is stored outside the function's frame")
			}
		case *ast.SendStmt:
			escapes(st.Value, "is sent on a channel")
		}
		return true
	})
}

// freshSliceInit reports whether an initializer expression denotes a
// freshly allocated slice: absent (zero value), a slice literal, or
// make(). Reslicing a field or parameter (buf[:0], the pooled idiom)
// is not fresh.
func freshSliceInit(info *types.Info, init ast.Expr) bool {
	if init == nil {
		return true
	}
	switch e := ast.Unparen(init).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				return true
			}
		}
	}
	return false
}

// checkFreshAppends flags x = append(x, ...) where x is a local slice
// allocated fresh in the same function: steady-state growth the pooled
// buffers exist to avoid.
func checkFreshAppends(pass *Pass, fd *ast.FuncDecl) {
	body := fd.Body
	// First pass: how is each local slice initialized?
	fresh := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok.String() != ":=" {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(st.Rhs) {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || !isSliceType(obj.Type()) {
					continue
				}
				if freshSliceInit(pass.Info, st.Rhs[i]) {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, nm := range st.Names {
				obj := pass.Info.ObjectOf(nm)
				if obj == nil || !isSliceType(obj.Type()) {
					continue
				}
				var init ast.Expr
				if i < len(st.Values) {
					init = st.Values[i]
				}
				if freshSliceInit(pass.Info, init) {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	if len(fresh) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isAppend(pass.Info, call) {
			return true
		}
		if obj := pass.Info.ObjectOf(id); obj != nil && fresh[obj] {
			pass.Reportf(as.Pos(), "append grows %s, a slice allocated fresh in this function; "+
				"reuse a pooled buffer or a caller-provided one (the AppendPath idiom)", id.Name)
			delete(fresh, obj) // one finding per slice
		}
		return true
	})
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// checkLoopClosures flags capturing closures created inside loops: one
// heap allocation per iteration. Capture-free literals compile to a
// static function value and stay exempt.
func checkLoopClosures(pass *Pass, fd *ast.FuncDecl) {
	seen := make(map[*ast.FuncLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch st := n.(type) {
		case *ast.ForStmt:
			loopBody = st.Body
		case *ast.RangeStmt:
			loopBody = st.Body
		default:
			return true
		}
		ast.Inspect(loopBody, func(inner ast.Node) bool {
			lit, ok := inner.(*ast.FuncLit)
			if !ok || seen[lit] {
				return true
			}
			seen[lit] = true
			if v := funcLitCaptures(pass.Info, fd, lit); v != nil {
				pass.Reportf(lit.Pos(), "closure capturing %s is allocated on every loop iteration; "+
					"hoist it out of the loop or use the prebound-callback idiom", v.Name())
			}
			return true
		})
		return true
	})
}

// boxes reports whether passing a value of type t to an interface
// parameter forces a heap allocation: struct, array, float and complex
// values do; pointers, channels, maps, funcs and interfaces fit the
// word directly, and small integers, booleans and strings are either
// cached or accepted noise.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		return u.NumFields() > 0
	case *types.Array:
		return u.Len() > 0
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	}
	return false
}

// panicArgRanges collects the source ranges of arguments to the panic
// builtin. Boxing inside them is exempt: a panic is a model-invariant
// assertion that aborts the run, so its formatting cost is never part
// of steady state.
func panicArgRanges(info *types.Info, body *ast.BlockStmt) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			ranges = append(ranges, [2]token.Pos{call.Lparen, call.Rparen})
		}
		return true
	})
	return ranges
}

// checkInterfaceBoxing flags struct/array/float arguments passed to
// interface-typed parameters inside hot functions.
func checkInterfaceBoxing(pass *Pass, fd *ast.FuncDecl) {
	panicRanges := panicArgRanges(pass.Info, fd.Body)
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicRanges {
			if pos > r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || inPanic(call.Pos()) {
			return !ok // no boxing findings under a panic argument
		}
		tv, ok := pass.Info.Types[call.Fun]
		if ok && tv.IsType() {
			// Conversion: T(x). Flag conversions to interface types.
			if len(call.Args) == 1 && types.IsInterface(tv.Type.Underlying()) && boxes(pass.Info.TypeOf(call.Args[0])) {
				pass.Reportf(call.Pos(), "conversion to interface boxes a %s value on the heap",
					pass.Info.TypeOf(call.Args[0]).String())
			}
			return true
		}
		sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
		if !ok {
			return true
		}
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = s.Elem()
				}
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if pt == nil || !types.IsInterface(pt.Underlying()) {
				continue
			}
			at := pass.Info.TypeOf(arg)
			if boxes(at) {
				pass.Reportf(arg.Pos(), "%s value boxed into an interface argument allocates; "+
					"pass a pointer or restructure the callback payload", at.String())
			}
		}
		return true
	})
}
