package lint

import "strings"

// hotPathScope is the set of packages on the simulator's per-chunk hot
// path: the event engine, the RNG fast paths, the cache hierarchy and
// buffer cache pools, the transaction generator, the scheduler and the
// machine layer. These packages carry the committed bench trajectory
// (BENCH_baseline.json / BENCH_head.json), so a lint waiver here is
// almost always protecting a performance invariant — and its reason
// must say which one.
var hotPathScope = map[string]bool{
	"odbscale/internal/sim":          true,
	"odbscale/internal/xrand":        true,
	"odbscale/internal/cache":        true,
	"odbscale/internal/buffercache":  true,
	"odbscale/internal/odb":          true,
	"odbscale/internal/engine":       true,
	"odbscale/internal/engine/btree": true,
	"odbscale/internal/engine/lsm":   true,
	"odbscale/internal/osker":        true,
	"odbscale/internal/workload":     true,
	"odbscale/internal/system":       true,
	"odbscale/internal/txtrace":      true,
	"odbscale/internal/qstats":       true, // station accumulation rides every event
}

// perfReasonMarkers are the substrings (matched case-insensitively) that
// qualify a waiver reason as perf-specific: it names the allocation,
// pooling, cycle or fast-path concern the waived construct serves.
var perfReasonMarkers = []string{
	"alloc", "pool", "scratch", "reuse", "recycl", "arena", "free list",
	"free-list", "hot path", "hot-path", "fast path", "fast-path",
	"perf", "cycle", "inline", "inlining", "zero-copy", "bench",
}

// HotWaiver requires //lint:ignore waivers in hot-path packages to
// carry perf-specific reasons. The suppression machinery already makes
// reasons mandatory; this rule makes them meaningful where the bench
// trajectory is at stake, so a waiver can be audited against the
// optimization it protects.
var HotWaiver = &Analyzer{
	Name: "hotwaiver",
	Doc: "require //lint:ignore reasons in hot-path packages to name the " +
		"perf concern (allocation, pooling, cycles) the waiver protects",
	Run: runHotWaiver,
}

// perfSpecific reports whether a waiver reason names a performance
// concern.
func perfSpecific(reason string) bool {
	r := strings.ToLower(reason)
	for _, m := range perfReasonMarkers {
		if strings.Contains(r, m) {
			return true
		}
	}
	return false
}

func runHotWaiver(pass *Pass) {
	if !hotPathScope[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				const prefix = "//lint:ignore"
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, prefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // malformed; the driver reports it as [lint]
				}
				reason := strings.Join(fields[1:], " ")
				if !perfSpecific(reason) {
					pass.Reportf(c.Pos(),
						"hot-path waiver reason %q names no perf concern; say which allocation, pool, or cycle cost it protects", reason)
				}
			}
		}
	}
}
