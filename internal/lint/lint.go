// Package lint implements odblint, the repository's stdlib-only static
// analysis driver. The paper's pivot-point methodology assumes every
// (W, P) measurement is exactly reproducible, so the simulator enforces
// a handful of hygiene invariants — all entropy flows through
// internal/xrand, map iteration never orders output, sentinel errors
// are matched with errors.Is, floats are never compared with ==, and
// context-taking loops observe cancellation. odblint turns those
// conventions into machine-checked rules.
//
// The driver is written only against the standard library (go/parser,
// go/ast, go/types, go/token): the module has zero dependencies and
// must stay that way, so packages are loaded and type-checked with a
// custom module-aware importer that falls back to the stdlib source
// importer.
//
// Findings print as "file:line: [rule] message" and any finding makes
// the driver exit non-zero. A finding may be suppressed by a
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// comment on the offending line or the line directly above it; the
// reason is mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Finding is one rule violation at a source position. Col is the
// 1-based column; it participates in the deterministic sort order and
// in machine-readable output but not in the one-line text format.
type Finding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col,omitempty"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// String renders the finding in the driver's one-line format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// An Analyzer is one lint rule: a named check run over a type-checked
// package unit.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full rule set in reporting order: the six
// intra-procedural rules plus the three interprocedural analyzers
// built on the call-graph layer (see callgraph.go).
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, MapOrder, SentinelErr, FloatEq, CtxLoop, HotWaiver,
		TaintDet, HotAlloc, LaneShare,
	}
}

// A Pass hands one type-checked unit to an analyzer and collects its
// findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the unit's import path; scoped rules (determinism) key
	// off it.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Prog is the module-wide call graph and dataflow layer. It is nil
	// when the unit was loaded standalone (CheckDir) or when no
	// analyzed package needs interprocedural facts; analyzers that
	// require it must no-op on nil.
	Prog     *Program
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		File: position.Filename,
		Line: position.Line,
		Col:  position.Column,
		Rule: p.Analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos sits in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// unit is one analysis target: a parsed, fully type-checked set of
// files belonging to a single package.
type unit struct {
	path  string
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// runUnit applies the analyzers to a unit and filters the result
// through the unit's //lint:ignore directives.
func runUnit(u *unit, analyzers []*Analyzer, prog *Program) []Finding {
	var fs []Finding
	for _, a := range analyzers {
		a.Run(&Pass{
			Analyzer: a,
			Fset:     u.fset,
			Path:     u.path,
			Files:    u.files,
			Pkg:      u.pkg,
			Info:     u.info,
			Prog:     prog,
			findings: &fs,
		})
	}
	idx, bad := collectDirectives(u.fset, u.files)
	fs = filterSuppressed(fs, idx)
	fs = append(fs, bad...)
	return fs
}

// sortFindings orders findings for deterministic output. The order is
// total — (file, line, column, rule, message) — so two analyzers
// firing on the same file:line always report in the same sequence, no
// matter which analyzer or unit produced which finding first.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// directiveIndex maps file -> line -> set of rule names ignored there.
type directiveIndex map[string]map[int]map[string]bool

// collectDirectives scans the unit's comments for //lint:ignore
// directives. Malformed directives (missing rule or reason) are
// returned as findings under the pseudo-rule "lint".
func collectDirectives(fset *token.FileSet, files []*ast.File) (directiveIndex, []Finding) {
	idx := make(directiveIndex)
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				const prefix = "//lint:ignore"
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, prefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						File: pos.Filename,
						Line: pos.Line,
						Rule: "lint",
						Msg:  "malformed //lint:ignore directive: want \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx[pos.Filename] = byLine
				}
				rules := byLine[pos.Line]
				if rules == nil {
					rules = make(map[string]bool)
					byLine[pos.Line] = rules
				}
				for _, r := range strings.Split(fields[0], ",") {
					rules[r] = true
				}
			}
		}
	}
	return idx, bad
}

// filterSuppressed drops findings covered by a directive on the same
// line (trailing comment) or the line directly above.
func filterSuppressed(fs []Finding, idx directiveIndex) []Finding {
	if len(idx) == 0 {
		return fs
	}
	kept := fs[:0]
	for _, f := range fs {
		byLine := idx[f.File]
		if byLine != nil && (byLine[f.Line][f.Rule] || byLine[f.Line-1][f.Rule]) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
