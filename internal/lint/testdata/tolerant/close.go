// Package stats mirrors the real internal/stats tolerance helpers.
// Loaded under the odbscale/internal/stats path, Close and Within are
// exempt from the floateq rule — their exact fast path is the one
// sanctioned use of float equality — while every other function in the
// package stays linted.
package stats

// Close is the tolerance helper itself: exempt.
func Close(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9
}

// Within is the parameterized tolerance helper: exempt.
func Within(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// Leaky is an ordinary function in the same package: still flagged.
func Leaky(a, b float64) bool { return a == b }
