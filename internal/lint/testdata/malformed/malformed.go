// Package fixture holds a malformed suppression directive: it names a
// rule but gives no reason, so the directive itself is reported and
// the violation it hoped to hide stays reported too.
package fixture

//lint:ignore floateq
func Same(a, b float64) bool { return a == b }
