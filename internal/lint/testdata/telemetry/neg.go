package fixture

import "time"

// manifest mimics the run manifest: formatting a caller-supplied wall
// timestamp is fine — only reading the clock is banned.
type manifest struct {
	createdAt string
}

// stamp formats a timestamp the caller read through an injected clock.
func stamp(t time.Time) manifest {
	return manifest{createdAt: t.UTC().Format(time.RFC3339)}
}

// simSeconds converts engine cycles to seconds — the sanctioned time
// source for samples.
func simSeconds(cycles uint64, freqHz float64) float64 {
	return float64(cycles) / freqHz
}
