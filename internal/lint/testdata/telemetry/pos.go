// Package fixture is a lint test corpus for the telemetry determinism
// scope: a flight-recorder sampler that stamps samples from the wall
// clock instead of simulated time. Loaded as odbscale/internal/telemetry,
// every entropy call below must be flagged.
package fixture

import "time"

// sample mimics a timeline sample.
type sample struct {
	at      time.Time
	elapsed time.Duration
}

// snap is the regression the rule must catch: a sampler reading the
// wall clock. Timeline timestamps must be simulated seconds supplied by
// the system layer.
func snap(start time.Time) sample {
	return sample{
		at:      time.Now(),
		elapsed: time.Since(start),
	}
}
