// Package sim seeds one violation of each hotalloc class on the event
// path, plus the exempt shapes: construction-time allocation, an
// unreachable function, a perf-reasoned waiver, and boxing inside a
// panic assertion.
package sim

import "fmt"

// Event is the per-event payload.
type Event struct {
	ID   uint64
	Tick uint64
}

// Engine is a miniature of the real event engine.
type Engine struct {
	pending []*Event
	last    *Event
	scratch []uint64
}

// NewEngine is construction-time: its allocations are exempt even
// though Run calls nothing before it in this module.
func NewEngine(capacity int) *Engine {
	return &Engine{
		pending: make([]*Event, 0, capacity),
		scratch: make([]uint64, 0, capacity),
	}
}

// Step is the per-event body reached from system.Run.
func (e *Engine) Step() bool {
	e.emit(1)
	e.publish()
	e.grow(3)
	e.fanout(2)
	e.box(1.5)
	e.each(e.consume)
	e.guard(Event{ID: 1})
	_ = e.spill()
	return len(e.pending) > 0
}

// emit allocates a composite literal that escapes into the pending
// queue: the direct single-step finding.
func (e *Engine) emit(id uint64) {
	e.pending = append(e.pending, &Event{ID: id})
}

// publish allocates through a local that is then stored to a field:
// the two-step finding, reported at the literal.
func (e *Engine) publish() {
	ev := &Event{ID: 2}
	e.last = ev
}

// grow builds and grows a fresh slice per event.
func (e *Engine) grow(n int) uint64 {
	ids := []uint64{}
	for i := 0; i < n; i++ {
		ids = append(ids, uint64(i))
	}
	var acc uint64
	for _, v := range ids {
		acc += v
	}
	return acc
}

// fanout creates a capturing closure on every loop iteration.
func (e *Engine) fanout(n int) {
	for i := 0; i < n; i++ {
		ev := Event{ID: uint64(i)}
		e.observe(func() uint64 { return ev.ID })
	}
}

// observe is hot but allocation-free.
func (e *Engine) observe(f func() uint64) { _ = f() }

// box passes a float where an interface is expected.
func (e *Engine) box(x float64) {
	e.log("tick", x)
}

// log is the interface sink.
func (e *Engine) log(msg string, v any) { _, _ = msg, v }

// each reaches its argument only through a function value: consume
// below is hot via the ref edge, not a call edge.
func (e *Engine) each(f func(*Event)) {
	for _, ev := range e.pending {
		f(ev)
	}
}

// consume is never called directly — only passed to each — and still
// must obey the allocation discipline.
func (e *Engine) consume(ev *Event) {
	out := []uint64{}
	out = append(out, ev.ID)
	e.scratch = append(e.scratch, out...)
}

// guard boxes an Event into fmt's variadic interface slice, but only
// inside a panic assertion: exempt.
func (e *Engine) guard(ev Event) {
	if ev.ID == 0 {
		panic(fmt.Sprintf("sim: bad event %v", ev))
	}
}

// spill allocates on its fallback path under a perf-reasoned waiver.
func (e *Engine) spill() *Event {
	if n := len(e.pending); n > 0 {
		return e.pending[n-1]
	}
	//lint:ignore hotalloc pool-miss fallback: the pending free list covers steady state, this allocates only while warming
	return &Event{ID: 7}
}

// Orphan is not reachable from system.Run; its allocation is exempt.
func Orphan() *Event { return &Event{ID: 9} }
