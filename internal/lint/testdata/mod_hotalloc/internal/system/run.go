// Package system provides the hot-path root of the hotalloc fixture:
// everything sim code reachable from Run is per-event.
package system

import "odbscale/internal/sim"

// Run drives the per-event path.
func Run(e *sim.Engine) {
	for e.Step() {
	}
}
