// Negative corpus: waivers whose reasons name the perf concern they
// protect contribute no findings.
package fixture

// PerfReason names the allocation the waiver protects.
func PerfReason(a, b float64) bool {
	//lint:ignore floateq exact compare avoids the epsilon helper's allocation on the hot pricing path
	return a == b
}

// PoolReason names the pooling invariant.
func PoolReason(a float64) bool {
	return a == 0 //lint:ignore floateq zero marks a recycled pool slot, never a computed value
}
