// Package fixture exercises the hotwaiver rule's positive corpus:
// loaded under a hot-path import path, these waivers carry reasons that
// name no performance concern, so each directive is a finding. The
// floateq violations they cover stay suppressed either way — hotwaiver
// audits the reason, it does not un-suppress the underlying rule.
package fixture

// VagueReason waives with a reason that explains nothing about perf.
func VagueReason(a, b float64) bool {
	//lint:ignore floateq this is fine
	return a == b
}

// WrongConcern waives with a correctness rationale where a perf one is
// required.
func WrongConcern(a float64) bool {
	return a == 0 //lint:ignore floateq zero guard on a computed value
}
