package fixture

import (
	"errors"
	"io"
)

// Ok and Failed use the idiomatic nil comparison, which stays legal.
func Ok(err error) bool     { return err == nil }
func Failed(err error) bool { return err != nil }

// AtEOF matches through the wrap chain.
func AtEOF(err error) bool { return errors.Is(err, io.EOF) }
