// Package fixture is a lint test corpus for the sentinelerr rule.
package fixture

import (
	"errors"
	"io"
)

// ErrBad is a local sentinel.
var ErrBad = errors.New("fixture: bad")

// Classify compares errors by identity, which breaks once a caller
// wraps the sentinel with fmt.Errorf("%w").
func Classify(err error) int {
	if err == io.EOF {
		return 0
	}
	if err != ErrBad {
		return 1
	}
	return 2
}
