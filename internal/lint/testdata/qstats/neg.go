package fixture

// counts mimics the exported accumulator snapshot: pure arithmetic on
// caller-supplied cycle counts is the sanctioned form.
type counts struct {
	arrivals    uint64
	completions uint64
	busyCycles  float64
	waitCycles  float64
}

// visit folds one completed visit from simulated cycle counts — no
// clock, no entropy.
func (c *counts) visit(wait, service float64) {
	c.arrivals++
	c.completions++
	c.busyCycles += service
	c.waitCycles += wait
}

// utilization derives U from the accumulators and the elapsed window.
func (c *counts) utilization(elapsedCycles float64, servers int) float64 {
	if servers <= 0 || elapsedCycles <= 0 {
		return 0
	}
	return c.busyCycles / (elapsedCycles * float64(servers))
}
