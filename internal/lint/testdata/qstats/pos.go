// Package fixture is a lint test corpus for the qstats determinism
// scope: a service-center accumulator that stamps visits from the wall
// clock instead of simulated cycles. Loaded as odbscale/internal/qstats,
// every entropy call below must be flagged.
package fixture

import (
	"math/rand"
	"time"
)

// station mimics a service-center accumulator.
type station struct {
	arrivals uint64
	busy     float64
	lastAt   time.Time
}

// arrive is the regression the rule must catch: station timestamps must
// be simulated cycles supplied by the caller, never the wall clock, and
// sampling decisions must draw from the seeded xrand source.
func (s *station) arrive(started time.Time) {
	s.arrivals++
	s.lastAt = time.Now()
	s.busy += time.Since(started).Seconds()
	if rand.Float64() < 0.01 {
		s.arrivals++ // "sampled" visit — nondeterministic across reruns
	}
}
