// Package fixture is a lint test corpus for the profile determinism
// scope: a cycle-attribution collector that stamps profiles from the
// wall clock and salts frame order with global randomness. Loaded as
// odbscale/internal/profile, every entropy call below must be flagged —
// a profile must be a pure function of (W, P, seed), or diffing two
// captures turns noise into findings.
package fixture

import (
	"math/rand"
	"time"
)

// meta mimics profile metadata.
type meta struct {
	capturedAt time.Time
	salt       int
}

// finalize is the regression the rule must catch: stamping the profile
// with the wall clock and salting it from the global rand source.
// Capture timestamps belong to the caller (cmd/ territory); frame
// identity must come from the (txn, phase, mode) key alone.
func finalize() meta {
	return meta{
		capturedAt: time.Now(),
		salt:       rand.Intn(1 << 16),
	}
}
