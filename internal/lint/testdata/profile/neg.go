package fixture

// frame mimics one profile frame: cycles attributed to a (txn, phase,
// mode) key — pure accumulation, nothing ambient.
type frame struct {
	instr  uint64
	cycles float64
}

// addChunk apportions a priced chunk across frames — deterministic
// arithmetic on caller-supplied counts is exactly what the scope
// permits.
func addChunk(f *frame, instr uint64, cycles float64) {
	f.instr += instr
	f.cycles += cycles
}

// cpi derives cycles-per-instruction from accumulated frames; derived
// ratios are fine, entropy is not.
func cpi(f frame) float64 {
	if f.instr == 0 {
		return 0
	}
	return f.cycles / float64(f.instr)
}
