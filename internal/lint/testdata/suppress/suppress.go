// Package fixture exercises //lint:ignore suppression: both
// violations below carry a well-formed directive, so the package lints
// clean.
package fixture

import "io"

// AtEOF suppresses with a directive on the line above.
func AtEOF(err error) bool {
	//lint:ignore sentinelerr io.EOF identity is the io.Reader contract here
	return err == io.EOF
}

// AlsoEOF suppresses with a trailing directive on the same line.
func AlsoEOF(err error) bool {
	return err == io.EOF //lint:ignore sentinelerr reader contract
}
