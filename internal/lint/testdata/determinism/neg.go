package fixture

import (
	"math/rand"
	"time"
)

// Seeded uses only explicitly seeded sources and duration arithmetic:
// constructors and methods on a seeded *rand.Rand are allowed, and
// time values handed in from outside carry no ambient entropy.
func Seeded(seed int64, t time.Time) (float64, time.Time) {
	r := rand.New(rand.NewSource(seed))
	return r.Float64(), t.Add(5 * time.Millisecond)
}
