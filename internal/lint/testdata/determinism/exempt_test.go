package fixture

import "time"

// Test files are exempt from the determinism rule: wall time in test
// scaffolding does not touch simulated results.
func wallClockInTest() time.Time { return time.Now() }
