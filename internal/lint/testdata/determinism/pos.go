// Package fixture is a lint test corpus. Loaded as a simulator
// package path, every call below violates the determinism rule.
package fixture

import (
	"math/rand"
	"os"
	"time"
)

// Entropy draws from every banned ambient source.
func Entropy() (int, float64, time.Duration, int) {
	n := rand.Intn(10)
	f := rand.Float64()
	now := time.Now()
	el := time.Since(now)
	pid := os.Getpid()
	return n + pid, f, el, pid
}
