// The positive laneshare corpus: lane workers violating the ownership
// discipline in every way the rule knows about. The shapes mirror the
// real snoop lanes in internal/cache/lanes.go, with the bugs the rule
// exists to catch seeded back in.
package lanes

import "sync"

type pool struct {
	found []bool
	line  uint64
	n     int
	mu    sync.Mutex
	wg    sync.WaitGroup
	out   chan int
	wake  []chan struct{}
}

func (p *pool) start() {
	for i := 0; i < p.n; i++ {
		go p.run(i)
		go p.alias(i)
	}
	go func(w int) {
		p.found[w] = true // fine: w is the literal's own lane parameter
		p.line = 2        // finding: captured shared write, unindexed
	}(0)
}

// run seeds one violation per rule clause.
func (p *pool) run(worker int) {
	p.found[0] = true // finding: constant index, not the owned range
	p.line = 7        // finding: unindexed shared write
	p.out <- worker   // finding: channel send
	p.mu.Lock()       // finding: mutex lock
	p.mu.Unlock()     // finding: mutex unlock
	p.wg.Add(1)       // finding: grows the join barrier
	p.wg.Done()       // allowed: the join half of the barrier
}

// alias launders the receiver through a local before writing.
func (p *pool) alias(worker int) {
	q := p
	q.found[worker] = true // allowed: owned index through the alias
	q.line = 1             // finding: unindexed write through a shared alias
}
