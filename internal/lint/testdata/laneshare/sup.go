// The suppressed laneshare corpus: a waived violation whose reason
// names the fast-path concern hotwaiver demands in this package.
package lanes

func (p *pool) spawnSolo() {
	go p.solo(0)
}

func (p *pool) solo(worker int) {
	//lint:ignore laneshare single-worker fast path: with one lane the merge order cannot be perturbed
	p.line = 9
	_ = worker
}
