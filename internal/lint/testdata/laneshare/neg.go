// The negative laneshare corpus: workers that follow the ownership
// discipline exactly as the real snoop lanes do. Nothing here may be
// flagged.
package lanes

func (p *pool) spawn() {
	for i := 0; i < p.n; i++ {
		go p.work(i)
	}
}

// work mirrors internal/cache/lanes.go: it strides its owned lane
// range, writes only owned-indexed slots (including through a local
// alias of the shared slice), and signals completion through the join
// barrier.
func (p *pool) work(worker int) {
	for range p.wake[worker] {
		for cpu := worker; cpu < len(p.found); cpu += p.n {
			row := p.found
			row[cpu] = true
			local := 0
			local++
			_ = local
		}
		p.wg.Done()
	}
}
