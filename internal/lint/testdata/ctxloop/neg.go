package fixture

import "context"

// Polite checks ctx.Err() every iteration.
func Polite(ctx context.Context, step func() bool) error {
	for step() {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Derived checks a channel obtained from the context before the loop —
// the drive-loop shape the campaign runner uses.
func Derived(ctx context.Context, step func() bool) {
	done := ctx.Done()
	for step() {
		select {
		case <-done:
			return
		default:
		}
	}
}

// Selected blocks on ctx.Done() directly.
func Selected(ctx context.Context, ch <-chan int) int {
	total := 0
	for {
		select {
		case v := <-ch:
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

// Bounded uses a three-clause loop, which terminates by construction.
func Bounded(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// NoCtx takes no context, so the rule does not apply.
func NoCtx(step func() bool) {
	for step() {
	}
}

// InnerOwns delegates looping to a literal with its own context
// parameter, which is responsible for its own cancellation checks.
func InnerOwns(ctx context.Context) func(context.Context, func() bool) {
	return func(inner context.Context, step func() bool) {
		for step() {
			if inner.Err() != nil {
				return
			}
		}
	}
}
