// Package fixture is a lint test corpus for the ctxloop rule.
package fixture

import "context"

// Spin loops forever without ever consulting its context.
func Spin(ctx context.Context, work func() bool) {
	for {
		if !work() {
			return
		}
	}
}

// Drain runs a condition-only loop that ignores cancellation.
func Drain(ctx context.Context, step func() bool) {
	for step() {
	}
}

// Discarded accepts a context only to throw it away.
func Discarded(_ context.Context, step func() bool) {
	for step() {
	}
}
