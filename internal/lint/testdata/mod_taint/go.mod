module odbscale

go 1.22
