// Package timeutil is the cross-package wrapper layer of the taint
// fixture: it is outside the determinism scope, so nothing here is
// flagged directly — the point is that calling into it from a scoped
// package must be.
package timeutil

import "time"

// Stamp wraps the wall clock one level deep.
func Stamp() int64 { return now() }

// now adds a second hop so the reported path has depth.
func now() int64 { return time.Now().UnixNano() }

// Clock is the sanctioned injection pattern: it returns the wall-clock
// function as a value without calling it. A reference is not a call
// edge, so callers stay clean.
func Clock() func() time.Time { return time.Now }

// Pure is entropy-free.
func Pure(x int64) int64 { return x * 2 }

// Keys returns map keys in iteration order: an order-entropy source
// even though it never touches a clock or RNG.
func Keys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
