// Package sim is the scoped side of the taint fixture: it never names
// time or math/rand, yet two of its functions draw entropy through the
// timeutil wrappers and must be flagged.
package sim

import (
	"time"

	"odbscale/internal/timeutil"
)

// Tick draws wall-clock entropy through two wrapper hops.
func Tick() int64 { return timeutil.Stamp() }

// Order returns a map-iteration-ordered slice built elsewhere.
func Order(m map[int]int) []int { return timeutil.Keys(m) }

// Scale is pure and stays clean.
func Scale(x int64) int64 { return timeutil.Pure(x) }

// Inject retains the clock as an injectable value without calling it:
// the sanctioned pattern, clean.
func Inject() func() time.Time { return timeutil.Clock() }
