// Package telemetry holds the suppressed case of the taint fixture: a
// scoped package waiving a transitive clock read with a reasoned
// directive.
package telemetry

import "odbscale/internal/timeutil"

// Sample reads the host clock for a display-only annotation.
func Sample() int64 {
	//lint:ignore taintdet host-clock annotation is display-only and never enters results
	return timeutil.Stamp()
}
