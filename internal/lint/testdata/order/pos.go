// The ordering corpus: several analyzers firing on one line. The
// golden file pins the cross-analyzer reporting order — (file, line,
// column, rule, message) — so no refactor of the driver can make two
// same-line findings swap places between runs.
package order

import "time"

// Mixed trips floateq and determinism on the same line.
func Mixed(a, b float64) bool { return a == b && time.Now().Nanosecond() > 0 }

// Chrono trips determinism twice on one line, disambiguated by column.
func Chrono() int64 { return time.Now().UnixNano() - time.Now().Unix() }
