package fixture

const eps = 1e-9

// SameInt compares integers, which is exact.
func SameInt(a, b int) bool { return a == b }

// ConstCheck is decided at compile time: both operands are constants.
func ConstCheck() bool { return eps == 1e-9 }

// CloseEnough is the sanctioned shape: an explicit tolerance.
func CloseEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
