package fixture

// Test files are exempt from the floateq rule: asserting an exact
// expected value in a test is deliberate.
func exactInTest(got float64) bool { return got == 42.0 }
