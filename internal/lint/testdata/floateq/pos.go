// Package fixture is a lint test corpus for the floateq rule.
package fixture

// Same compares floats bit-exactly.
func Same(a, b float64) bool { return a == b }

// NotZero compares a float variable against a constant.
func NotZero(x float64) bool { return x != 0 }

// Ratio is a defined floating-point type; equality on it is equally
// fragile.
type Ratio float64

// Equal compares defined float types.
func Equal(r, s Ratio) bool { return r == s }
