package fixture

import (
	"fmt"
	"sort"
)

// KeysSorted collects then sorts, so the emitted order is
// deterministic.
func KeysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Total only reduces; iteration order cannot be observed.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SliceRange iterates a slice, not a map.
func SliceRange(xs []int) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
