// Package fixture is a lint test corpus for the maporder rule.
package fixture

import "fmt"

// KeysUnsorted feeds map iteration order straight into a slice.
func KeysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// PrintUnsorted writes map entries in iteration order.
func PrintUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
