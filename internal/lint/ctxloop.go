package lint

import (
	"go/ast"
	"go/types"
)

// CtxLoop enforces the campaign drive-loop contract: a function that
// accepts a context.Context must not contain an unbounded for loop —
// `for { ... }` or `for cond { ... }` — that never consults the
// context. Such a loop keeps simulating after the campaign is
// cancelled, which is exactly the hang the context plumbing exists to
// prevent. A loop passes when its body references the context
// parameter (ctx.Err(), ctx.Done(), passing ctx on) or a value derived
// from it (done := ctx.Done()).
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "flag unbounded for loops in context-taking functions that " +
		"never check ctx.Err()/ctx.Done()",
	Run: runCtxLoop,
}

// ctxParams returns the objects of the context.Context parameters, and
// whether any context parameter is unnamed or blank (accepted but
// unobservable).
func ctxParams(info *types.Info, ftype *ast.FuncType) (objs []types.Object, discarded bool) {
	if ftype.Params == nil {
		return nil, false
	}
	for _, field := range ftype.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		if len(field.Names) == 0 {
			discarded = true
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				discarded = true
				continue
			}
			if obj := info.Defs[name]; obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs, discarded
}

// derivedFrom grows the seed object set with every variable assigned
// from an expression that references a tracked object, to a fixpoint:
// done := ctx.Done() makes done count as a context check.
func derivedFrom(info *types.Info, body *ast.BlockStmt, seeds []types.Object) map[types.Object]bool {
	tracked := make(map[types.Object]bool, len(seeds))
	for _, o := range seeds {
		tracked[o] = true
	}
	refs := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && tracked[info.ObjectOf(id)] {
				found = true
			}
			return !found
		})
		return found
	}
	for grew := true; grew; {
		grew = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				fromCtx := false
				for _, rhs := range st.Rhs {
					if refs(rhs) {
						fromCtx = true
						break
					}
				}
				if !fromCtx {
					return true
				}
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil && !tracked[obj] {
							tracked[obj] = true
							grew = true
						}
					}
				}
			case *ast.ValueSpec:
				fromCtx := false
				for _, v := range st.Values {
					if refs(v) {
						fromCtx = true
						break
					}
				}
				if !fromCtx {
					return true
				}
				for _, name := range st.Names {
					if obj := info.ObjectOf(name); obj != nil && !tracked[obj] {
						tracked[obj] = true
						grew = true
					}
				}
			}
			return true
		})
	}
	return tracked
}

func runCtxLoop(pass *Pass) {
	for _, f := range pass.Files {
		forEachFunc(f, func(_ string, ftype *ast.FuncType, body *ast.BlockStmt) {
			objs, discarded := ctxParams(pass.Info, ftype)
			if len(objs) == 0 && !discarded {
				return
			}
			tracked := derivedFrom(pass.Info, body, objs)
			ast.Inspect(body, func(n ast.Node) bool {
				// A nested function with its own context parameter is
				// responsible for its own loops.
				if fl, ok := n.(*ast.FuncLit); ok {
					if inner, innerDiscarded := ctxParams(pass.Info, fl.Type); len(inner) > 0 || innerDiscarded {
						return false
					}
					return true
				}
				loop, ok := n.(*ast.ForStmt)
				if !ok {
					return true
				}
				unbounded := loop.Cond == nil || (loop.Init == nil && loop.Post == nil)
				if !unbounded {
					return true
				}
				checked := false
				check := func(e ast.Node) {
					ast.Inspect(e, func(n ast.Node) bool {
						if id, ok := n.(*ast.Ident); ok && tracked[pass.Info.ObjectOf(id)] {
							checked = true
						}
						return !checked
					})
				}
				if loop.Cond != nil {
					check(loop.Cond)
				}
				if !checked {
					check(loop.Body)
				}
				if !checked {
					if discarded && len(objs) == 0 {
						pass.Reportf(loop.Pos(), "unbounded for loop in a function that discards its context.Context parameter")
					} else {
						pass.Reportf(loop.Pos(), "unbounded for loop never checks ctx.Err()/ctx.Done(); cancellation cannot stop it")
					}
				}
				return true
			})
		})
	}
}
