package lint

import (
	"go/ast"
	"go/types"
)

// laneShareScope is the set of packages that run deterministic
// parallel lane workers today (the coherence domain's snoop lanes) or
// will under the NUMA/hardware-islands topology work (the bus layer).
var laneShareScope = map[string]bool{
	"odbscale/internal/cache": true,
	"odbscale/internal/bus":   true,
}

// LaneShare enforces the ownership discipline that makes the parallel
// snoop lanes bit-identical to sequential execution: each worker owns
// a fixed, disjoint slice of the domain (cpu ≡ worker mod workers) and
// may only write state indexed by that owned range. Concretely, inside
// any function launched with `go` in a scoped package:
//
//   - a write to shared state (receiver fields, captured variables,
//     package variables, or aliases of them) is a finding unless the
//     written lvalue is indexed by a variable derived from the
//     worker's own integer lane parameter;
//   - channel sends, close, mutex Lock/Unlock and WaitGroup.Add are
//     findings — any ad-hoc synchronization inside a worker can
//     reorder the deterministic CPU-order merge that the fork/join
//     barrier guarantees. WaitGroup.Done (the join half of the
//     barrier) and channel receives (the fork half) stay allowed.
//
// Locals initialized through an owned-indexed access (h :=
// d.CPUs[cpu]) inherit ownership, so mutating the owned hierarchy
// through such an alias is fine; locals initialized from shared state
// without an owned index are shared aliases and writes through them
// are findings.
var LaneShare = &Analyzer{
	Name: "laneshare",
	Doc: "restrict lane-worker writes to lane-owned (index-derived) state " +
		"and forbid merge-reordering sync primitives inside workers",
	Run: runLaneShare,
}

// varClass is the ownership classification of one variable inside a
// lane worker.
type varClass int

const (
	classShared varClass = iota // receiver, captured, package-level, or alias thereof
	classOwned                  // lane parameter or derived from an owned-indexed access
	classFresh                  // worker-local, no shared aliasing
)

// laneWorker is one `go`-launched function in scope: its body, its
// parameter objects, and the position range of its declaration.
type laneWorker struct {
	body       *ast.BlockStmt
	params     []types.Object
	start, end ast.Node // declaration range for capture tests
}

func runLaneShare(pass *Pass) {
	if !laneShareScope[pass.Path] {
		return
	}
	// Map function objects to their declarations so `go l.run(i)`
	// resolves to run's body.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	seen := make(map[*ast.BlockStmt]bool)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			w := resolveWorker(pass.Info, decls, gs)
			if w == nil || seen[w.body] {
				return true
			}
			seen[w.body] = true
			checkWorker(pass, w)
			return true
		})
	}
}

// resolveWorker maps a go statement to the launched function's body
// and parameters: a func literal launched inline, or a same-package
// function or method declaration.
func resolveWorker(info *types.Info, decls map[types.Object]*ast.FuncDecl, gs *ast.GoStmt) *laneWorker {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		w := &laneWorker{body: fun.Body, start: fun, end: fun}
		for _, field := range fun.Type.Params.List {
			for _, nm := range field.Names {
				if obj := info.Defs[nm]; obj != nil {
					w.params = append(w.params, obj)
				}
			}
		}
		return w
	default:
		fn := calleeOf(info, gs.Call)
		if fn == nil {
			return nil
		}
		fd := decls[fn]
		if fd == nil {
			return nil
		}
		w := &laneWorker{body: fd.Body, start: fd, end: fd}
		if fd.Type.Params != nil {
			for _, field := range fd.Type.Params.List {
				for _, nm := range field.Names {
					if obj := info.Defs[nm]; obj != nil {
						w.params = append(w.params, obj)
					}
				}
			}
		}
		return w
	}
}

// isIntType reports whether t's core type is an integer kind — the
// shape of a lane id.
func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// aliasCapable reports whether a value of type t can alias shared
// state: reference shapes (pointers, slices, maps, channels, funcs,
// interfaces) and aggregates containing them. Basic values cannot —
// `cpu += l.workers` reads a shared count but leaves cpu a plain
// integer, not an alias.
func aliasCapable(t types.Type) bool {
	return aliasCapableRec(t, 0)
}

func aliasCapableRec(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasCapableRec(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return aliasCapableRec(u.Elem(), depth+1)
	}
	return true
}

// classify runs the ownership fixpoint over the worker body: integer
// parameters seed the owned set, everything declared outside the body
// is shared, and each assignment propagates — an owned-indexed access
// transfers ownership, any other shared-referencing initializer
// creates a shared alias.
func classify(pass *Pass, w *laneWorker) map[types.Object]varClass {
	class := make(map[types.Object]varClass)
	owned := func(e ast.Expr) bool {
		return refsTrackedClass(pass.Info, e, class, classOwned)
	}
	shared := func(e ast.Expr) bool {
		if refsTrackedClass(pass.Info, e, class, classShared) {
			return true
		}
		// References to anything declared outside the worker body are
		// shared by definition.
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return !found
			}
			v, ok := pass.Info.ObjectOf(id).(*types.Var)
			if ok && !v.IsField() && class[v] == classShared &&
				!declaredWithin(v, w.body.Pos(), w.body.End()) && !isParam(w, v) {
				found = true
			}
			return !found
		})
		return found
	}
	for _, p := range w.params {
		if isIntType(p.Type()) {
			class[p] = classOwned
		} else {
			class[p] = classShared
		}
	}
	assignClass := func(rhs ast.Expr) varClass {
		if rhs == nil {
			return classFresh
		}
		if ix, ok := ast.Unparen(rhs).(*ast.IndexExpr); ok && owned(ix.Index) {
			return classOwned // ownership transfer: h := d.CPUs[cpu]
		}
		switch {
		case shared(rhs):
			return classShared
		case owned(rhs):
			return classOwned // arithmetic on the lane id stays owned
		default:
			return classFresh
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(w.body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || i >= len(st.Rhs) && len(st.Rhs) != 1 {
						continue
					}
					obj := pass.Info.ObjectOf(id)
					if obj == nil || !declaredWithin(obj, w.body.Pos(), w.body.End()) {
						continue
					}
					rhs := st.Rhs[0]
					if i < len(st.Rhs) {
						rhs = st.Rhs[i]
					}
					c := assignClass(rhs)
					if c == classShared && !aliasCapable(obj.Type()) {
						continue // value copy of shared data, not an alias
					}
					cur, tracked := class[obj]
					if tracked && cur == classShared {
						continue // shared is sticky; owned/fresh can be promoted
					}
					if c != classFresh && (!tracked || cur != c) {
						class[obj] = c
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, nm := range st.Names {
					obj := pass.Info.ObjectOf(nm)
					if obj == nil {
						continue
					}
					var init ast.Expr
					if i < len(st.Values) {
						init = st.Values[i]
					}
					c := assignClass(init)
					if c == classShared && !aliasCapable(obj.Type()) {
						continue
					}
					cur, tracked := class[obj]
					if tracked && cur == classShared {
						continue
					}
					if c != classFresh && (!tracked || cur != c) {
						class[obj] = c
						changed = true
					}
				}
			case *ast.RangeStmt:
				// for cpu := range ... over an owned expression keeps
				// cpu fresh; key/value over shared state is shared-read
				// only, which is fine — reads are unrestricted.
			}
			return true
		})
	}
	return class
}

// refsTrackedClass reports whether e references a variable currently
// classified as c.
func refsTrackedClass(info *types.Info, e ast.Expr, class map[types.Object]varClass, c varClass) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		if obj := info.ObjectOf(id); obj != nil {
			if got, ok := class[obj]; ok && got == c {
				found = true
			}
		}
		return !found
	})
	return found
}

func isParam(w *laneWorker, obj types.Object) bool {
	for _, p := range w.params {
		if p == obj {
			return true
		}
	}
	return false
}

// checkWorker applies the write and sync rules to one lane worker.
func checkWorker(pass *Pass, w *laneWorker) {
	class := classify(pass, w)
	classOf := func(obj types.Object) varClass {
		if c, ok := class[obj]; ok {
			return c
		}
		if declaredWithin(obj, w.body.Pos(), w.body.End()) {
			return classFresh
		}
		return classShared
	}
	checkWrite := func(lhs ast.Expr) {
		base, indexes := chainBase(ast.Unparen(lhs))
		id, ok := base.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); !ok || v.IsField() {
			return
		}
		// Rebinding a local (plain ident, no chain) is always fine.
		if ast.Unparen(lhs) == base {
			if classOf(obj) != classShared || declaredWithin(obj, w.body.Pos(), w.body.End()) || isParam(w, obj) {
				return
			}
			pass.Reportf(lhs.Pos(), "lane worker writes captured variable %s; "+
				"workers may only write state indexed by their owned lane range", id.Name)
			return
		}
		switch classOf(obj) {
		case classFresh, classOwned:
			return
		}
		for _, ix := range indexes {
			if refsTrackedClass(pass.Info, ix, class, classOwned) {
				return // indexed by the owned lane range
			}
		}
		pass.Reportf(lhs.Pos(), "lane worker writes shared state through %s without indexing "+
			"by its owned lane range; another lane may own that slot", id.Name)
	}
	ast.Inspect(w.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(st.X)
		case *ast.SendStmt:
			pass.Reportf(st.Pos(), "channel send inside a lane worker can reorder the "+
				"deterministic CPU-order merge; communicate through the fork/join barrier")
		case *ast.CallExpr:
			checkSyncCall(pass, st)
		}
		return true
	})
}

// checkSyncCall flags merge-reordering synchronization: close, mutex
// locking, and WaitGroup.Add. Done and Wait — the join barrier itself
// — stay allowed.
func checkSyncCall(pass *Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
			pass.Reportf(call.Pos(), "close inside a lane worker tears down shared signaling; "+
				"lifecycle belongs to the owner of the lanes, not a worker")
		}
		return
	}
	fn := calleeOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock", "Add":
		pass.Reportf(call.Pos(), "sync.%s inside a lane worker can reorder the deterministic "+
			"CPU-order merge; lanes must only touch state they own", fn.Name())
	}
}
