package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the expected-findings golden files")

// checker is shared across tests so the standard library is
// type-checked from source only once.
var checker = NewChecker()

// runFixture lints one testdata directory under the given import path
// and returns the findings formatted as "base:line: [rule] msg".
func runFixture(t *testing.T, dir, asPath string) []string {
	t.Helper()
	findings, err := checker.CheckDir(filepath.Join("testdata", dir), asPath, All())
	if err != nil {
		t.Fatalf("CheckDir(%s): %v", dir, err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s:%d: [%s] %s", filepath.Base(f.File), f.Line, f.Rule, f.Msg))
	}
	return got
}

// checkGolden compares findings against testdata/<dir>/expected.txt,
// rewriting the file under -update.
func checkGolden(t *testing.T, dir string, got []string) {
	t.Helper()
	golden := filepath.Join("testdata", dir, "expected.txt")
	if *update {
		data := strings.Join(got, "\n")
		if data != "" {
			data += "\n"
		}
		if err := os.WriteFile(golden, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	var want []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			want = append(want, line)
		}
	}
	if gotJoined, wantJoined := strings.Join(got, "\n"), strings.Join(want, "\n"); gotJoined != wantJoined {
		t.Errorf("findings mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", dir, gotJoined, wantJoined)
	}
}

// simScope is a determinism-scoped package path the fixtures borrow.
const simScope = "odbscale/internal/sim"

func TestFixtures(t *testing.T) {
	cases := []struct {
		dir    string
		asPath string
	}{
		// Each rule's positive and negative corpus: pos.go lines land
		// in the golden file, neg.go (and *_test.go exemptions)
		// contribute nothing.
		{"determinism", simScope},
		{"telemetry", "odbscale/internal/telemetry"},
		{"qstats", "odbscale/internal/qstats"},
		{"profile", "odbscale/internal/profile"},
		{"maporder", "odbscale/internal/lint/fixture/maporder"},
		{"sentinelerr", "odbscale/internal/lint/fixture/sentinelerr"},
		{"floateq", "odbscale/internal/lint/fixture/floateq"},
		{"tolerant", "odbscale/internal/stats"},
		{"ctxloop", "odbscale/internal/lint/fixture/ctxloop"},
		{"hotwaiver", simScope},
		{"suppress", "odbscale/internal/lint/fixture/suppress"},
		{"malformed", "odbscale/internal/lint/fixture/malformed"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			checkGolden(t, tc.dir, runFixture(t, tc.dir, tc.asPath))
		})
	}
}

// TestDeterminismScope loads the determinism corpus outside the
// simulator packages: the same entropy calls must not be flagged.
func TestDeterminismScope(t *testing.T) {
	if got := runFixture(t, "determinism", "odbscale/internal/lint/fixture/unscoped"); len(got) != 0 {
		t.Errorf("determinism fired outside its package scope:\n%s", strings.Join(got, "\n"))
	}
}

// TestEngineScopeCovered pins the storage-engine packages into the
// determinism and hot-path scopes: the same corpora that fire under
// internal/sim must fire when loaded as the engine seam and both
// engine implementations. An engine that read the wall clock or leaked
// allocations into the per-op path would break bit-identity pins and
// the bench trajectory exactly like core simulator code.
func TestEngineScopeCovered(t *testing.T) {
	for _, path := range []string{
		"odbscale/internal/engine",
		"odbscale/internal/engine/btree",
		"odbscale/internal/engine/lsm",
	} {
		if !determinismScope[path] {
			t.Errorf("%s missing from determinismScope", path)
		}
		if !hotAllocScope[path] {
			t.Errorf("%s missing from hotAllocScope", path)
		}
		if !hotPathScope[path] {
			t.Errorf("%s missing from hotPathScope", path)
		}
		if got := runFixture(t, "determinism", path); len(got) == 0 {
			t.Errorf("determinism corpus produced no findings under %s", path)
		} else {
			checkGolden(t, "determinism", got)
		}
		if got := runFixture(t, "hotwaiver", path); len(got) == 0 {
			t.Errorf("hotwaiver corpus produced no findings under %s", path)
		}
	}
}

// TestQStatsScopeCovered pins the queueing-observatory package into the
// determinism, hot-alloc and hot-path scopes, and checks its corpus: a
// station accumulator that read the wall clock or drew ambient entropy
// would silently break the bit-identity pin of WithQueueStats, and an
// allocation on the accumulation path would break the observation-only
// overhead contract.
func TestQStatsScopeCovered(t *testing.T) {
	const path = "odbscale/internal/qstats"
	if !determinismScope[path] {
		t.Errorf("%s missing from determinismScope", path)
	}
	if !hotAllocScope[path] {
		t.Errorf("%s missing from hotAllocScope", path)
	}
	if !hotPathScope[path] {
		t.Errorf("%s missing from hotPathScope", path)
	}
	if got := runFixture(t, "qstats", path); len(got) == 0 {
		t.Error("qstats corpus produced no findings under its scope")
	} else {
		checkGolden(t, "qstats", got)
	}
	// The same corpus outside the simulator scopes stays clean.
	if got := runFixture(t, "qstats", "odbscale/internal/lint/fixture/unscoped"); len(got) != 0 {
		t.Errorf("qstats rules fired outside their package scope:\n%s", strings.Join(got, "\n"))
	}
}

// TestHotWaiverScope loads the hotwaiver corpus outside the hot-path
// packages: the same vague waivers must not be flagged there.
func TestHotWaiverScope(t *testing.T) {
	if got := runFixture(t, "hotwaiver", "odbscale/internal/lint/fixture/coldpath"); len(got) != 0 {
		t.Errorf("hotwaiver fired outside its package scope:\n%s", strings.Join(got, "\n"))
	}
}

// TestTelemetrySamplerRegression pins the flight-recorder guarantee: a
// time.Now sneaking into the telemetry package's sampler path is a lint
// failure, while the same corpus loaded as a cmd/ package (where the
// HTTP server's wall clock legitimately lives) stays clean.
func TestTelemetrySamplerRegression(t *testing.T) {
	got := runFixture(t, "telemetry", "odbscale/internal/telemetry")
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "time.Now") || !strings.Contains(joined, "time.Since") {
		t.Errorf("determinism missed the wall-clock sampler regression:\n%s", joined)
	}
	if unscoped := runFixture(t, "telemetry", "odbscale/cmd/internal/live"); len(unscoped) != 0 {
		t.Errorf("determinism fired on a cmd/ package:\n%s", strings.Join(unscoped, "\n"))
	}
}

// TestToleranceHelperScope loads the tolerance-helper corpus outside
// internal/stats: with the exemption gone, Close and Within are
// flagged like any other function.
func TestToleranceHelperScope(t *testing.T) {
	got := runFixture(t, "tolerant", "odbscale/internal/lint/fixture/tolerant")
	// close.go holds three == comparisons (Close, Within, Leaky); all
	// must fire outside the stats package.
	if len(got) != 3 {
		t.Errorf("want 3 floateq findings outside internal/stats, got %d:\n%s",
			len(got), strings.Join(got, "\n"))
	}
}

// TestSuppressionRequiresReason double-checks the malformed corpus:
// the bad directive is itself a finding and does not suppress.
func TestSuppressionRequiresReason(t *testing.T) {
	got := runFixture(t, "malformed", "odbscale/internal/lint/fixture/malformed")
	var rules []string
	for _, line := range got {
		rules = append(rules, line[strings.Index(line, "["):])
	}
	joined := strings.Join(got, "\n")
	if len(got) != 2 || !strings.Contains(joined, "[lint]") || !strings.Contains(joined, "[floateq]") {
		t.Errorf("want one [lint] and one [floateq] finding, got %v", rules)
	}
}

// TestMainExitCodes drives the odblint entry point end to end: a
// fixture with violations exits 1 and prints findings, a suppressed
// fixture exits 0, and a bad pattern exits 2.
func TestMainExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"testdata/sentinelerr"}, &stdout, &stderr); code != 1 {
		t.Fatalf("Main on a dirty fixture = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[sentinelerr]") {
		t.Errorf("findings missing from stdout:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := Main([]string{"testdata/suppress"}, &stdout, &stderr); code != 0 {
		t.Fatalf("Main on a suppressed fixture = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := Main([]string{"testdata/does-not-exist"}, &stdout, &stderr); code != 2 {
		t.Fatalf("Main on a missing dir = %d, want 2", code)
	}
}

// TestListRules keeps the -list surface alive for the CI wiring.
func TestListRules(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("Main(-list) = %d, want 0", code)
	}
	for _, a := range All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing rule %q", a.Name)
		}
	}
}
