package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzSuppressionDirective hammers the //lint:ignore parser with
// arbitrary comment text. The invariants: collectDirectives never
// panics, a directive missing its rule or reason is always reported as
// a [lint] finding (and suppresses nothing), and a well-formed
// directive is always indexed.
func FuzzSuppressionDirective(f *testing.F) {
	// Seeds: the shapes from testdata/suppress and testdata/malformed,
	// plus the edge cases the grammar invites.
	f.Add("//lint:ignore sentinelerr io.EOF identity is the io.Reader contract here")
	f.Add("//lint:ignore sentinelerr reader contract")
	f.Add("//lint:ignore floateq")
	f.Add("//lint:ignore")
	f.Add("//lint:ignore hotalloc,taintdet shared scratch reuse")
	f.Add("//lint:ignore , empty rule list")
	f.Add("//lint:ignorefloateq glued rule")
	f.Add("//lint:ignore\tfloateq\ttabs as separators")
	f.Add("//lint:ignore floateq  ")
	f.Add("// lint:ignore floateq leading space disarms")
	f.Fuzz(func(t *testing.T, comment string) {
		if strings.ContainsAny(comment, "\n\r") || !strings.HasPrefix(comment, "//") {
			t.Skip()
		}
		src := "package p\n\n" + comment + "\nvar X = 1\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip() // comment text the scanner rejects is out of scope
		}
		idx, bad := collectDirectives(fset, []*ast.File{file})
		if !strings.HasPrefix(comment, "//lint:ignore") {
			if len(bad) != 0 || len(idx) != 0 {
				t.Fatalf("non-directive %q produced findings %v / index %v", comment, bad, idx)
			}
			return
		}
		rest := strings.TrimSpace(strings.TrimPrefix(comment, "//lint:ignore"))
		if len(strings.Fields(rest)) < 2 {
			// Malformed: must be a [lint] finding and must not index.
			if len(bad) != 1 || bad[0].Rule != "lint" {
				t.Fatalf("malformed directive %q: want one [lint] finding, got %v", comment, bad)
			}
			if len(idx) != 0 {
				t.Fatalf("malformed directive %q still suppresses: %v", comment, idx)
			}
			return
		}
		if len(bad) != 0 {
			t.Fatalf("well-formed directive %q reported as malformed: %v", comment, bad)
		}
		if len(idx) != 1 {
			t.Fatalf("well-formed directive %q not indexed: %v", comment, idx)
		}
	})
}
