package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between floating-point operands outside test
// files. Utilizations, CPIs, and miss ratios come out of long
// accumulation chains, so exact equality is either vacuous or a
// latent off-by-one-ulp bug; compare through the sanctioned tolerance
// helpers in internal/stats (stats.Close), which are themselves exempt.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= between floating-point operands outside tests; " +
		"compare with stats.Close",
	Run: runFloatEq,
}

// toleranceHelpers names the functions allowed to compare floats
// exactly: the internal/stats helpers that implement the tolerance
// itself (an exact fast path before the epsilon test).
var toleranceHelpers = map[string]bool{"Close": true, "Within": true}

func runFloatEq(pass *Pass) {
	statsPkg := pass.Path == "odbscale/internal/stats"
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		// Collect the source ranges of exempt tolerance helpers.
		type span struct{ lo, hi token.Pos }
		var exempt []span
		if statsPkg {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if ok && fd.Recv == nil && toleranceHelpers[fd.Name.Name] {
					exempt = append(exempt, span{fd.Pos(), fd.End()})
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := pass.Info.Types[be.X], pass.Info.Types[be.Y]
			if !isFloat(tx.Type) || !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // both constant: decided at compile time
			}
			for _, s := range exempt {
				if be.Pos() >= s.lo && be.Pos() < s.hi {
					return true
				}
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison; use a tolerance (stats.Close) or restructure the check", be.Op)
			return true
		})
	}
}
