//go:build race

package lint

// raceEnabled relaxes wall-clock budget assertions: the race detector
// slows the whole-repo load far past its production cost.
const raceEnabled = true
