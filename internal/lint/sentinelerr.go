package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SentinelErr flags `err == ErrX` / `err != ErrX` comparisons between
// error values. Callers up the stack wrap sentinels with fmt.Errorf
// ("%w") — the campaign runner wraps system.ErrBadConfig and
// system.ErrNoTxns that way — so identity comparison silently stops
// matching; errors.Is follows the wrap chain.
var SentinelErr = &Analyzer{
	Name: "sentinelerr",
	Doc:  "flag ==/!= between error values; match sentinels with errors.Is",
	Run:  runSentinelErr,
}

func runSentinelErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := pass.Info.Types[be.X], pass.Info.Types[be.Y]
			if tx.IsNil() || ty.IsNil() {
				return true // err == nil is the idiomatic success check
			}
			if !types.Identical(tx.Type, errorType) || !types.Identical(ty.Type, errorType) {
				return true
			}
			pass.Reportf(be.OpPos, "error compared with %s; use errors.Is to match wrapped sentinels", be.Op)
			return true
		})
	}
}
