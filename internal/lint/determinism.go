package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// determinismScope is the set of simulator packages whose non-test
// code must be bit-reproducible from an explicit seed: every CPI(W) /
// MPI(W) regression and every campaign checkpoint fingerprint assumes
// a rerun of the same (W, P, seed) reproduces the same metrics.
var determinismScope = map[string]bool{
	"odbscale/internal/sim":          true,
	"odbscale/internal/odb":          true,
	"odbscale/internal/engine":       true,
	"odbscale/internal/engine/btree": true,
	"odbscale/internal/engine/lsm":   true,
	"odbscale/internal/workload":     true,
	"odbscale/internal/osker":        true,
	"odbscale/internal/system":       true,
	"odbscale/internal/campaign":     true,
	"odbscale/internal/telemetry":    true,
	"odbscale/internal/profile":      true,
	"odbscale/internal/cache":        true, // incl. the parallel snoop lanes
	"odbscale/internal/buffercache":  true, // entry arena + free-list pooling
	"odbscale/internal/xrand":        true, // the seeded entropy source itself
	"odbscale/internal/bus":          true,
	"odbscale/internal/storage":      true,
	"odbscale/internal/txtrace":      true, // span sampling must be seed-reproducible
	"odbscale/internal/qstats":       true, // station reports feed checkpointed campaigns
}

// Determinism forbids ambient entropy — wall clocks, the global
// math/rand source, process ids — inside the simulator packages. All
// randomness must flow through internal/xrand (seeded, splittable) and
// wall-clock observability timing through internal/clock (injectable).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/time.Since, global math/rand, and process-id entropy " +
		"in simulator packages; use internal/xrand and internal/clock",
	Run: runDeterminism,
}

// bannedEntropy classifies a package-level function as an entropy
// source the simulator packages must not touch.
func bannedEntropy(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false // methods (e.g. (*rand.Rand).Intn) are seeded and fine
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return "wall-clock entropy (time." + name + "); inject a clock via internal/clock", true
		}
	case "os":
		switch name {
		case "Getpid", "Getppid":
			return "process-id entropy (os." + name + ")", true
		}
	case "math/rand", "math/rand/v2":
		// Constructors taking an explicit source stay allowed; the
		// package-level convenience functions draw from the global,
		// unseeded source.
		if !strings.HasPrefix(name, "New") {
			return "global math/rand entropy (rand." + name + "); route randomness through internal/xrand", true
		}
	}
	return "", false
}

func runDeterminism(pass *Pass) {
	if !determinismScope[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if msg, bad := bannedEntropy(fn); bad {
				pass.Reportf(id.Pos(), "%s", msg)
			}
			return true
		})
	}
}
