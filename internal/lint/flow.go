package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the SSA-lite value-flow helpers shared by the
// interprocedural analyzers: no real SSA form is built — the helpers
// answer targeted questions (does this expression reference a tracked
// variable, does this function return a map-ordered slice, what does
// this closure capture) over the type-checked AST, with small
// fixpoints where assignment chains matter.

// refsAny reports whether expr references any object in tracked.
func refsAny(info *types.Info, expr ast.Expr, tracked map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && tracked[info.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// mapOrderedResult reports whether fd builds a returned slice by
// appending inside a `for range` over a map with no sort after the
// loop — the function's result then carries Go's randomized map
// iteration order. It returns the offending range statement's
// position, or token.NoPos.
//
// This is the interprocedural face of the maporder rule: a function
// with this shape is a determinism-taint source for every caller, even
// callers in other packages that never see the map.
func mapOrderedResult(info *types.Info, fd *ast.FuncDecl) token.Pos {
	body := fd.Body
	results := make(map[types.Object]bool)
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, nm := range f.Names {
				if obj := info.Defs[nm]; obj != nil {
					results[obj] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					results[obj] = true
				}
			}
		}
		return true
	})
	if len(results) == 0 {
		return token.NoPos
	}
	bad := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if bad.IsValid() {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		feeds := false
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			if feeds {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok || !isAppend(info, call) {
				return true
			}
			if obj := info.ObjectOf(id); obj != nil && results[obj] {
				feeds = true
			}
			return true
		})
		if feeds && !sortsAfter(info, body, rs) {
			bad = rs.Pos()
		}
		return true
	})
	return bad
}

// funcLitCaptures returns the first variable lit's body captures from
// its enclosing function — a variable (parameter, receiver or local,
// never a field or package-level name) declared inside host but
// outside lit. A capturing closure forces a heap allocation at every
// evaluation of the literal.
func funcLitCaptures(info *types.Info, host ast.Node, lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable, not a capture
		}
		if v.Pos() < lit.Pos() && v.Pos() >= host.Pos() {
			captured = v
		}
		return true
	})
	return captured
}

// declaredWithin reports whether obj's declaration lies inside the
// [from, to] source range.
func declaredWithin(obj types.Object, from, to token.Pos) bool {
	return obj != nil && obj.Pos() >= from && obj.Pos() <= to
}

// chainBase walks an lvalue chain (selectors, indexes, derefs,
// parens) down to its base expression and reports every index
// expression seen along the way.
func chainBase(expr ast.Expr) (base ast.Expr, indexes []ast.Expr) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			indexes = append(indexes, e.Index)
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return expr, indexes
		}
	}
}
