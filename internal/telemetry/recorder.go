package telemetry

import (
	"sort"
	"sync"
)

// Config sizes the flight recorder of one simulator run.
type Config struct {
	// SampleIntervalMS is the simulated time between timeline samples,
	// in milliseconds (default 100).
	SampleIntervalMS float64 `json:"sample_interval_ms"`
	// RingCap bounds the retained timeline samples (default 600 — one
	// minute of simulated time at the default interval).
	RingCap int `json:"ring_cap"`
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.SampleIntervalMS <= 0 {
		c.SampleIntervalMS = 100
	}
	if c.RingCap <= 0 {
		c.RingCap = 600
	}
	return c
}

// RunPhase names a run's lifecycle stage.
type RunPhase string

// The phases a run moves through.
const (
	PhaseWarmup  RunPhase = "warmup"
	PhaseMeasure RunPhase = "measure"
	PhaseDone    RunPhase = "done"
)

// RunProgress is the live position of one simulator run.
type RunProgress struct {
	Phase        RunPhase `json:"phase"`
	TotalTxns    uint64   `json:"total_txns"`    // commits since simulation start
	MeasuredTxns uint64   `json:"measured_txns"` // commits inside the measurement period
	TargetTxns   uint64   `json:"target_txns"`   // MeasureTxns goal
	SimSeconds   float64  `json:"sim_seconds"`   // simulated time at the last update
}

// PhaseSpan records one completed lifecycle phase.
type PhaseSpan struct {
	Name       string  `json:"name"`
	SimSeconds float64 `json:"sim_seconds"`
	Txns       uint64  `json:"txns"`
}

// Recorder is the flight recorder of one simulator run: the timeline
// ring, per-transaction-type latency histograms, and run progress. The
// system layer writes on simulated time; HTTP handlers and campaign
// aggregation read snapshots concurrently.
type Recorder struct {
	cfg Config

	mu       sync.Mutex
	timeline *Timeline
	hists    map[string]*Histogram
	progress RunProgress
	phases   []PhaseSpan
	phaseAt  float64 // sim seconds when the current phase began
	phaseTxn uint64  // total txns when the current phase began
}

// NewRecorder builds a recorder; zero-valued config fields take their
// defaults.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:      cfg,
		timeline: NewTimeline(cfg.RingCap),
		hists:    make(map[string]*Histogram),
	}
}

// Interval returns the configured sampling interval in simulated
// milliseconds.
func (r *Recorder) Interval() float64 { return r.cfg.SampleIntervalMS }

// SetTarget declares the run's measured-transaction goal.
func (r *Recorder) SetTarget(txns uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.progress.TargetTxns = txns
	r.progress.Phase = PhaseWarmup
}

// ObserveSpan records one completed transaction of the given type with
// its latency in simulated microseconds.
func (r *Recorder) ObserveSpan(txnType string, latencyUS uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[txnType]
	if h == nil {
		h = &Histogram{}
		r.hists[txnType] = h
	}
	h.Observe(latencyUS)
}

// NoteCommit advances the progress counters.
func (r *Recorder) NoteCommit(measuring bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.progress.TotalTxns++
	if measuring {
		r.progress.MeasuredTxns++
	}
}

// PushSample appends a timeline sample and refreshes the progress
// clock.
func (r *Recorder) PushSample(s Sample) {
	r.timeline.Push(s)
	r.mu.Lock()
	r.progress.SimSeconds = s.SimSeconds
	r.mu.Unlock()
}

// MarkPhase closes the current phase at the given simulated time and
// enters the next one. The system layer calls it at the warm-up reset
// and at run end.
func (r *Recorder) MarkPhase(next RunPhase, simSeconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := string(r.progress.Phase)
	if name == "" {
		name = string(PhaseWarmup)
	}
	r.phases = append(r.phases, PhaseSpan{
		Name:       name,
		SimSeconds: simSeconds - r.phaseAt,
		Txns:       r.progress.TotalTxns - r.phaseTxn,
	})
	r.phaseAt = simSeconds
	r.phaseTxn = r.progress.TotalTxns
	r.progress.Phase = next
	r.progress.SimSeconds = simSeconds
}

// Progress returns the live run position.
func (r *Recorder) Progress() RunProgress {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.progress
}

// Phases returns the completed phase spans.
func (r *Recorder) Phases() []PhaseSpan {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]PhaseSpan(nil), r.phases...)
}

// Timeline returns the retained samples oldest-first.
func (r *Recorder) Timeline() []Sample { return r.timeline.Snapshot() }

// TimelineDropped returns how many samples the ring evicted.
func (r *Recorder) TimelineDropped() uint64 { return r.timeline.Dropped() }

// HistogramNames returns the observed transaction types, sorted.
func (r *Recorder) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HistogramSnapshot returns a deep copy of one transaction type's
// histogram, or nil when the type was never observed.
func (r *Recorder) HistogramSnapshot(txnType string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[txnType]
	if h == nil {
		return nil
	}
	return h.Clone()
}

// Histograms returns deep copies of every per-type histogram.
func (r *Recorder) Histograms() map[string]*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.Clone()
	}
	return out
}
