package telemetry

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestTimelineRing(t *testing.T) {
	tl := NewTimeline(3)
	for i := 0; i < 5; i++ {
		tl.Push(Sample{SimSeconds: float64(i)})
	}
	if tl.Len() != 3 {
		t.Fatalf("len = %d, want 3", tl.Len())
	}
	if tl.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tl.Dropped())
	}
	got := tl.Snapshot()
	for i, want := range []float64{2, 3, 4} {
		if got[i].SimSeconds != want {
			t.Fatalf("snapshot[%d].t = %f, want %f (oldest-first)", i, got[i].SimSeconds, want)
		}
	}
}

// TestTimelineWraparound pushes far past the ring capacity — several
// full wraps — and checks the ring keeps exactly the newest samples
// with a monotone simulated-time axis and an exact dropped count.
func TestTimelineWraparound(t *testing.T) {
	const cap, pushes = 4, 23
	r := NewRecorder(Config{RingCap: cap})
	for i := 0; i < pushes; i++ {
		r.PushSample(Sample{SimSeconds: float64(i), Txns: uint64(i)})
	}
	if got := r.TimelineDropped(); got != pushes-cap {
		t.Fatalf("dropped = %d, want %d", got, pushes-cap)
	}
	got := r.Timeline()
	if len(got) != cap {
		t.Fatalf("retained %d samples, want %d", len(got), cap)
	}
	for i, s := range got {
		if want := float64(pushes - cap + i); s.SimSeconds != want {
			t.Fatalf("sample %d has t=%f, want %f (newest %d, oldest-first)", i, s.SimSeconds, want, cap)
		}
		if i > 0 && got[i].SimSeconds <= got[i-1].SimSeconds {
			t.Fatalf("sim-time axis not monotone at %d: %f after %f", i, got[i].SimSeconds, got[i-1].SimSeconds)
		}
	}
}

func TestRecorderLifecycle(t *testing.T) {
	r := NewRecorder(Config{SampleIntervalMS: 10, RingCap: 100})
	if r.Interval() != 10 {
		t.Fatalf("interval = %f, want 10", r.Interval())
	}
	r.SetTarget(50)

	// Warm-up: 20 commits, then the phase mark at the reset.
	for i := 0; i < 20; i++ {
		r.NoteCommit(false)
		r.ObserveSpan("NewOrder", 1000)
	}
	r.MarkPhase(PhaseMeasure, 1.5)
	for i := 0; i < 50; i++ {
		r.NoteCommit(true)
		r.ObserveSpan("NewOrder", 2000)
	}
	r.MarkPhase(PhaseDone, 4.0)

	p := r.Progress()
	if p.Phase != PhaseDone || p.TotalTxns != 70 || p.MeasuredTxns != 50 || p.TargetTxns != 50 {
		t.Fatalf("progress = %+v", p)
	}
	phases := r.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %+v, want 2 spans", phases)
	}
	if phases[0].Name != string(PhaseWarmup) || phases[0].SimSeconds != 1.5 || phases[0].Txns != 20 {
		t.Fatalf("warmup span = %+v", phases[0])
	}
	if phases[1].Name != string(PhaseMeasure) || phases[1].SimSeconds != 2.5 || phases[1].Txns != 50 {
		t.Fatalf("measure span = %+v", phases[1])
	}

	if names := r.HistogramNames(); len(names) != 1 || names[0] != "NewOrder" {
		t.Fatalf("histogram names = %v", names)
	}
	h := r.HistogramSnapshot("NewOrder")
	if h == nil || h.Count() != 70 {
		t.Fatalf("snapshot count = %v", h)
	}
	// Snapshots are deep copies: mutating one must not affect the recorder.
	h.Observe(5)
	if r.HistogramSnapshot("NewOrder").Count() != 70 {
		t.Fatal("HistogramSnapshot returned a shared histogram")
	}
	if r.HistogramSnapshot("missing") != nil {
		t.Fatal("snapshot of unobserved type should be nil")
	}
}

func TestWriteMetricsOpenMetrics(t *testing.T) {
	r := NewRecorder(Config{})
	r.SetTarget(100)
	r.MarkPhase(PhaseMeasure, 1.0)
	r.ObserveSpan("Payment", 1500)
	r.ObserveSpan("Payment", 2500)
	r.PushSample(Sample{SimSeconds: 1.25, Measuring: true, TPS: 640, CPI: 2.4, CPUUtil: []float64{0.95, 0.91}})

	var sb strings.Builder
	if err := r.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE odb_tps gauge",
		"odb_tps 640",
		"odb_run_measuring 1",
		`odb_cpu_util{cpu="0"} 0.95`,
		`odb_cpu_util{cpu="1"} 0.91`,
		`odb_txn_latency_us_bucket{txn_type="Payment",le="+Inf"} 2`,
		`odb_txn_latency_us_count{txn_type="Payment"} 2`,
		`odb_txn_latency_us_quantile{txn_type="Payment",quantile="0.5"}`,
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimRight(out, "\n"), "# EOF") {
		t.Error("metrics output must end with # EOF")
	}

	// The JSON endpoints parse back.
	sb.Reset()
	if err := r.WriteTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	var tl struct {
		Dropped uint64   `json:"dropped"`
		Samples []Sample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &tl); err != nil {
		t.Fatalf("timeline JSON: %v", err)
	}
	if len(tl.Samples) != 1 || tl.Samples[0].TPS != 640 {
		t.Fatalf("timeline = %+v", tl)
	}

	sb.Reset()
	if err := r.WriteProgress(&sb); err != nil {
		t.Fatal(err)
	}
	var p RunProgress
	if err := json.Unmarshal([]byte(sb.String()), &p); err != nil {
		t.Fatalf("progress JSON: %v", err)
	}
	if p.Phase != PhaseMeasure || p.TargetTxns != 100 {
		t.Fatalf("progress = %+v", p)
	}
}

func TestSummarize(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := Summarize(&h, true)
	if s.Count != 100 || s.MinUS != 1 || s.MaxUS != 100 {
		t.Fatalf("summary = %+v", s)
	}
	dec, err := DecodeHistogram(s.Encoded)
	if err != nil || dec.Count() != 100 {
		t.Fatalf("encoded summary does not decode: %v", err)
	}
	if Summarize(&h, false).Encoded != nil {
		t.Fatal("encoded=false must omit the wire form")
	}
}

func TestManifestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "sweep.ck.json")
	path := ManifestPath(ckPath)
	if !strings.HasSuffix(path, ".manifest.json") {
		t.Fatalf("manifest path = %q", path)
	}

	man := NewManifest("odbrun", 42)
	man.CreatedAt = "2026-08-05T00:00:00Z"
	man.WallSeconds = 1.5
	man.Checkpoint = ckPath
	man.Phases = []PhaseSpan{{Name: "warmup", SimSeconds: 0.2, Txns: 100}}
	if err := man.SetConfig(map[string]int{"w": 100}); err != nil {
		t.Fatal(err)
	}
	if err := man.Save(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "odbrun" || got.Seed != 42 || got.CreatedAt != man.CreatedAt {
		t.Fatalf("loaded = %+v", got)
	}
	if got.Provenance.GoVersion == "" || got.Provenance.Module != "odbscale" {
		t.Fatalf("provenance = %+v", got.Provenance)
	}
	if len(got.Phases) != 1 || got.Phases[0].Txns != 100 {
		t.Fatalf("phases = %+v", got.Phases)
	}

	// A version bump must be rejected, not silently accepted.
	got.Version = ManifestVersion + 1
	if err := got.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("version mismatch not rejected")
	}
}

func TestCampaignRecorder(t *testing.T) {
	cr := NewCampaignRecorder(Config{})
	cr.SetTotalPoints(4)

	if name := PointName(100, 4); name != "W=100,P=4" {
		t.Fatalf("point name = %q", name)
	}

	recA := cr.StartRun("W=10,P=1")
	recA.ObserveSpan("NewOrder", 1000)
	recA.ObserveSpan("NewOrder", 3000)
	recA.PushSample(Sample{SimSeconds: 0.1, TPS: 500})

	recB := cr.StartRun("W=25,P=1")
	recB.ObserveSpan("NewOrder", 2000)

	p := cr.Progress()
	if len(p.Active) != 2 || p.Active[0] != "W=10,P=1" {
		t.Fatalf("active = %v (want sorted keys)", p.Active)
	}

	cr.FinishRun("W=10,P=1", true)
	cr.FinishRun("W=25,P=1", false) // failed run: dropped from the merge

	merged := cr.MergedHistograms()
	if h := merged["NewOrder"]; h == nil || h.Count() != 2 {
		t.Fatalf("merged = %v, want 2 observations from the successful run", merged)
	}

	cr.Event(func(cp *CampaignProgress) { cp.PointsDone++; cp.Runs++ })
	if got := cr.Progress(); got.PointsDone != 1 || got.TotalPoints != 4 {
		t.Fatalf("progress = %+v", got)
	}

	var sb strings.Builder
	if err := cr.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"odb_campaign_points_total 4",
		"odb_campaign_points_done 1",
		`odb_txn_latency_us_count{txn_type="NewOrder"} 2`,
		"# EOF",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("campaign metrics missing %q:\n%s", want, sb.String())
		}
	}

	sb.Reset()
	if err := cr.WriteTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	var tl struct {
		Points []struct {
			Point   string   `json:"point"`
			Live    bool     `json:"live"`
			Samples []Sample `json:"samples"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Points) != 1 || tl.Points[0].Point != "W=10,P=1" || tl.Points[0].Live {
		t.Fatalf("timeline points = %+v", tl.Points)
	}
	if len(tl.Points[0].Samples) != 1 || tl.Points[0].Samples[0].TPS != 500 {
		t.Fatalf("retained samples = %+v", tl.Points[0].Samples)
	}
}
