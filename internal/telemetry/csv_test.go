package telemetry

import (
	"strings"
	"testing"
)

// TestWriteTimelineCSVGolden pins the CSV exposition byte for byte: the
// header is derived from the first sample's shape (per-CPU columns,
// then four columns per station when the queueing observatory rode
// along), and %g keeps values round-trippable. Downstream spreadsheet
// and plotting pipelines key on these exact column names.
func TestWriteTimelineCSVGolden(t *testing.T) {
	rec := NewRecorder(Config{SampleIntervalMS: 100})
	rec.PushSample(Sample{
		SimSeconds: 0.1, Measuring: false,
		TPS: 480, CPI: 2.5, UserIPX: 1.5e6, OSIPX: 2e5,
		L2MPI: 0.01, L3MPI: 0.0025, BufferHit: 0.96,
		WriteAmp: 1.5, ReadAmp: 0.25,
		CPUUtil: []float64{0.75, 0.5},
		BusUtil: 0.125, RunQueue: 3, IOInFlight: 2, SpaceAmp: 1.125, Txns: 48,
		Stations: []StationSample{
			{Name: "cpu", Util: 0.75, QueueLen: 2.5, WaitMS: 1.25, Xps: 960},
			{Name: "disk", Util: 0.25, QueueLen: 0.5, WaitMS: 4.5, Xps: 120},
		},
	})
	rec.PushSample(Sample{
		SimSeconds: 0.2, Measuring: true,
		TPS: 500, CPI: 2.25, UserIPX: 1.25e6, OSIPX: 1.5e5,
		L2MPI: 0.0125, L3MPI: 0.003125, BufferHit: 0.975,
		WriteAmp: 1.25, ReadAmp: 0.5,
		CPUUtil: []float64{1, 0.875},
		BusUtil: 0.25, RunQueue: 1, IOInFlight: 0, SpaceAmp: 1.25, Txns: 98,
		Stations: []StationSample{
			{Name: "cpu", Util: 1, QueueLen: 3.5, WaitMS: 2.5, Xps: 1000},
			{Name: "disk", Util: 0.125, QueueLen: 0.25, WaitMS: 3.75, Xps: 60},
		},
	})

	const want = "t,measuring,tps,cpi,user_ipx,os_ipx,l2_mpi,l3_mpi,buffer_hit,write_amp,read_amp,bus_util,run_queue,io_in_flight,space_amp,txns" +
		",cpu0_util,cpu1_util" +
		",cpu_util,cpu_queue_len,cpu_wait_ms,cpu_xps" +
		",disk_util,disk_queue_len,disk_wait_ms,disk_xps\n" +
		"0.1,0,480,2.5,1.5e+06,200000,0.01,0.0025,0.96,1.5,0.25,0.125,3,2,1.125,48,0.75,0.5,0.75,2.5,1.25,960,0.25,0.5,4.5,120\n" +
		"0.2,1,500,2.25,1.25e+06,150000,0.0125,0.003125,0.975,1.25,0.5,0.25,1,0,1.25,98,1,0.875,1,3.5,2.5,1000,0.125,0.25,3.75,60\n"

	var b strings.Builder
	if err := rec.WriteTimelineCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("CSV exposition drifted:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestWriteTimelineCSVEmpty keeps the zero-sample dump parseable: just
// the scalar header, no per-CPU or station columns to derive.
func TestWriteTimelineCSVEmpty(t *testing.T) {
	rec := NewRecorder(Config{})
	var b strings.Builder
	if err := rec.WriteTimelineCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "t,measuring,tps,cpi,user_ipx,os_ipx,l2_mpi,l3_mpi,buffer_hit,write_amp,read_amp,bus_util,run_queue,io_in_flight,space_amp,txns\n"
	if b.String() != want {
		t.Errorf("empty dump = %q, want header only", b.String())
	}
}
