package telemetry

import "sync"

// Sample is one timeline observation: the state of the simulated
// machine over one sampler interval (rates) or at its closing instant
// (levels). All times are simulated; nothing here touches wall time.
type Sample struct {
	// SimSeconds is the simulated time of the sample, measured from
	// simulation start.
	SimSeconds float64 `json:"t"`
	// Measuring reports whether the measurement period (post warm-up)
	// was active at the sample.
	Measuring bool `json:"measuring"`

	// Interval rates.
	TPS       float64   `json:"tps"`        // commits per simulated second
	CPI       float64   `json:"cpi"`        // cycles per instruction, all modes
	UserIPX   float64   `json:"user_ipx"`   // user instructions per transaction
	OSIPX     float64   `json:"os_ipx"`     // OS instructions per transaction
	L2MPI     float64   `json:"l2_mpi"`     // L2 misses per instruction
	L3MPI     float64   `json:"l3_mpi"`     // L3 misses per instruction
	BufferHit float64   `json:"buffer_hit"` // buffer-cache hit ratio
	WriteAmp  float64   `json:"write_amp"`  // interval physical/logical write bytes
	ReadAmp   float64   `json:"read_amp"`   // interval block reads per logical row read
	CPUUtil   []float64 `json:"cpu_util"`   // per-CPU busy fraction

	// Levels at the sample instant.
	BusUtil    float64 `json:"bus_util"`     // FSB utilization
	RunQueue   int     `json:"run_queue"`    // ready-queue depth
	IOInFlight int     `json:"io_in_flight"` // outstanding data-block reads
	SpaceAmp   float64 `json:"space_amp"`    // on-disk blocks per live-data block
	Txns       uint64  `json:"txns"`         // cumulative commits since simulation start

	// Stations carries the queueing observatory's per-interval station
	// readings; empty unless the run attached WithQueueStats.
	Stations []StationSample `json:"stations,omitempty"`
}

// StationSample is one service center's interval reading: interval
// utilization, time-averaged queue length, mean wait per completed
// visit, and completion throughput.
type StationSample struct {
	Name     string  `json:"name"`
	Util     float64 `json:"util"`
	QueueLen float64 `json:"queue_len"`
	WaitMS   float64 `json:"wait_ms"`
	Xps      float64 `json:"xps"`
}

// Timeline is a bounded ring of samples: pushes beyond the capacity
// overwrite the oldest entries, and Dropped counts how many were lost.
// One writer (the simulation) and any number of snapshot readers may
// use it concurrently.
type Timeline struct {
	mu      sync.Mutex
	buf     []Sample
	head    int // next write position
	n       int // live entries
	dropped uint64
}

// NewTimeline returns a ring holding at most capacity samples.
func NewTimeline(capacity int) *Timeline {
	if capacity < 1 {
		capacity = 1
	}
	return &Timeline{buf: make([]Sample, capacity)}
}

// Push appends a sample, evicting the oldest when full.
func (tl *Timeline) Push(s Sample) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.buf[tl.head] = s
	tl.head = (tl.head + 1) % len(tl.buf)
	if tl.n < len(tl.buf) {
		tl.n++
	} else {
		tl.dropped++
	}
}

// Snapshot returns the retained samples oldest-first.
func (tl *Timeline) Snapshot() []Sample {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]Sample, 0, tl.n)
	start := tl.head - tl.n
	if start < 0 {
		start += len(tl.buf)
	}
	for i := 0; i < tl.n; i++ {
		out = append(out, tl.buf[(start+i)%len(tl.buf)])
	}
	return out
}

// Len returns the number of retained samples.
func (tl *Timeline) Len() int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.n
}

// Dropped returns how many samples the ring has evicted.
func (tl *Timeline) Dropped() uint64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.dropped
}
