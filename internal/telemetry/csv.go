package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTimelineCSV renders the retained samples as a CSV table, one row
// per sample. The column set is derived from the first sample: the
// scalar fields, one cpu<N>_util column per CPU, and — when the run
// attached the queueing observatory — four columns per station. Every
// retained sample of one run has the same shape, so the header is
// stable across the dump.
func (r *Recorder) WriteTimelineCSV(w io.Writer) error {
	samples := r.Timeline()
	var b strings.Builder
	b.WriteString("t,measuring,tps,cpi,user_ipx,os_ipx,l2_mpi,l3_mpi,buffer_hit,write_amp,read_amp,bus_util,run_queue,io_in_flight,space_amp,txns")
	if len(samples) > 0 {
		for i := range samples[0].CPUUtil {
			fmt.Fprintf(&b, ",cpu%d_util", i)
		}
		for _, st := range samples[0].Stations {
			fmt.Fprintf(&b, ",%s_util,%s_queue_len,%s_wait_ms,%s_xps", st.Name, st.Name, st.Name, st.Name)
		}
	}
	b.WriteByte('\n')
	for _, s := range samples {
		measuring := "0"
		if s.Measuring {
			measuring = "1"
		}
		fmt.Fprintf(&b, "%g,%s,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%d,%d,%g,%d",
			s.SimSeconds, measuring, s.TPS, s.CPI, s.UserIPX, s.OSIPX,
			s.L2MPI, s.L3MPI, s.BufferHit, s.WriteAmp, s.ReadAmp,
			s.BusUtil, s.RunQueue, s.IOInFlight, s.SpaceAmp, s.Txns)
		for _, u := range s.CPUUtil {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(u, 'g', -1, 64))
		}
		for _, st := range s.Stations {
			fmt.Fprintf(&b, ",%g,%g,%g,%g", st.Util, st.QueueLen, st.WaitMS, st.Xps)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
