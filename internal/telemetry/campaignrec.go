package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// CampaignProgress is the live position of a campaign: point and run
// counters maintained by the campaign runner's flight observer.
type CampaignProgress struct {
	TotalPoints   int      `json:"total_points"`
	PointsDone    int      `json:"points_done"`
	PointsResumed int      `json:"points_resumed"`
	PointsFailed  int      `json:"points_failed"`
	Runs          int      `json:"runs"`          // simulator runs executed
	Probes        int      `json:"probes"`        // tuner probes, cached included
	ProbesCached  int      `json:"probes_cached"` //
	Active        []string `json:"active"`        // keys of in-flight measurement runs
	Done          bool     `json:"done"`
	Err           string   `json:"err,omitempty"`
	LastEvent     string   `json:"last_event,omitempty"`
}

// runFlight is one completed run's retained flight data.
type runFlight struct {
	timeline []Sample
	dropped  uint64
	phases   []PhaseSpan
}

// CampaignRecorder aggregates flight data across a campaign's runs: it
// hands each measurement run a fresh Recorder, merges the per-type
// latency histograms as runs finish (the mergeable encoding makes this
// order-independent), retains completed timelines per point, and keeps
// the live campaign progress. All methods are safe for concurrent use
// by the campaign's worker pool and the HTTP endpoints.
type CampaignRecorder struct {
	cfg Config

	mu        sync.Mutex
	progress  CampaignProgress
	active    map[string]*Recorder
	completed map[string]runFlight
	merged    map[string]*Histogram
}

// NewCampaignRecorder builds the aggregator; cfg sizes each run's
// recorder (zero fields take defaults).
func NewCampaignRecorder(cfg Config) *CampaignRecorder {
	return &CampaignRecorder{
		cfg:       cfg.withDefaults(),
		active:    make(map[string]*Recorder),
		completed: make(map[string]runFlight),
		merged:    make(map[string]*Histogram),
	}
}

// PointName renders the canonical key of a measurement point.
func PointName(w, p int) string { return fmt.Sprintf("W=%d,P=%d", w, p) }

// SetTotalPoints declares the campaign size.
func (cr *CampaignRecorder) SetTotalPoints(n int) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	cr.progress.TotalPoints = n
}

// StartRun registers a measurement run and returns its recorder.
func (cr *CampaignRecorder) StartRun(key string) *Recorder {
	rec := NewRecorder(cr.cfg)
	cr.mu.Lock()
	defer cr.mu.Unlock()
	cr.active[key] = rec
	return rec
}

// FinishRun retires a run's recorder. Successful runs contribute their
// histograms to the campaign-wide merge and retain their timeline for
// the /timeline endpoint; failed runs are dropped.
func (cr *CampaignRecorder) FinishRun(key string, ok bool) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	rec := cr.active[key]
	delete(cr.active, key)
	if rec == nil || !ok {
		return
	}
	for name, h := range rec.Histograms() {
		m := cr.merged[name]
		if m == nil {
			m = &Histogram{}
			cr.merged[name] = m
		}
		m.Merge(h)
	}
	cr.completed[key] = runFlight{
		timeline: rec.Timeline(),
		dropped:  rec.TimelineDropped(),
		phases:   rec.Phases(),
	}
}

// RestoreRun reinstates a completed run's flight data from a campaign
// checkpoint: the per-type latency histograms merge into the
// campaign-wide aggregate exactly as FinishRun would have merged the
// live recorder's, so a killed-and-resumed campaign converges on the
// same merged histograms as an uninterrupted one. Timelines are not
// persisted in checkpoints, so the restored point has no timeline
// entry.
func (cr *CampaignRecorder) RestoreRun(key string, hists map[string]*Histogram) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	for name, h := range hists {
		m := cr.merged[name]
		if m == nil {
			m = &Histogram{}
			cr.merged[name] = m
		}
		m.Merge(h)
	}
}

// Event updates the campaign progress counters; the campaign package's
// flight observer is the only intended caller.
func (cr *CampaignRecorder) Event(update func(*CampaignProgress)) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	update(&cr.progress)
}

// Progress returns the live campaign position, including the in-flight
// run keys.
func (cr *CampaignRecorder) Progress() CampaignProgress {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	p := cr.progress
	p.Active = make([]string, 0, len(cr.active))
	for key := range cr.active {
		p.Active = append(p.Active, key)
	}
	sort.Strings(p.Active)
	return p
}

// MergedHistograms returns deep copies of the campaign-wide per-type
// latency histograms.
func (cr *CampaignRecorder) MergedHistograms() map[string]*Histogram {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	out := make(map[string]*Histogram, len(cr.merged))
	for name, h := range cr.merged {
		out[name] = h.Clone()
	}
	return out
}

// pointTimeline is the JSON wire form of one point's timeline.
type pointTimeline struct {
	Point   string      `json:"point"`
	Live    bool        `json:"live"` // still running when snapshotted
	Dropped uint64      `json:"dropped"`
	Phases  []PhaseSpan `json:"phases,omitempty"`
	Samples []Sample    `json:"samples"`
}

// timelines snapshots every retained timeline — completed runs plus
// live ones — sorted by point key.
func (cr *CampaignRecorder) timelines() []pointTimeline {
	cr.mu.Lock()
	live := make(map[string]*Recorder, len(cr.active))
	for key, rec := range cr.active {
		live[key] = rec
	}
	done := make(map[string]runFlight, len(cr.completed))
	for key, fl := range cr.completed {
		done[key] = fl
	}
	cr.mu.Unlock()

	keys := make([]string, 0, len(live)+len(done))
	for key := range done {
		keys = append(keys, key)
	}
	for key := range live {
		if _, dup := done[key]; !dup {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	out := make([]pointTimeline, 0, len(keys))
	for _, key := range keys {
		if rec, ok := live[key]; ok {
			out = append(out, pointTimeline{
				Point: key, Live: true,
				Dropped: rec.TimelineDropped(),
				Phases:  rec.Phases(),
				Samples: rec.Timeline(),
			})
			continue
		}
		fl := done[key]
		out = append(out, pointTimeline{
			Point:   key,
			Dropped: fl.dropped,
			Phases:  fl.phases,
			Samples: fl.timeline,
		})
	}
	return out
}

// WriteMetrics renders the campaign state as OpenMetrics text: progress
// gauges plus the merged per-transaction-type latency histograms.
func (cr *CampaignRecorder) WriteMetrics(w io.Writer) error {
	p := cr.Progress()
	o := &omWriter{w: w}
	o.gauge("odb_campaign_points_total", "measurement points in the campaign", float64(p.TotalPoints))
	o.gauge("odb_campaign_points_done", "points finished, resumed included", float64(p.PointsDone))
	o.gauge("odb_campaign_points_resumed", "points restored from the checkpoint", float64(p.PointsResumed))
	o.gauge("odb_campaign_points_failed", "points that returned an error", float64(p.PointsFailed))
	o.gauge("odb_campaign_runs_total", "simulator runs executed", float64(p.Runs))
	o.gauge("odb_campaign_probes_total", "tuner probes, cached included", float64(p.Probes))
	o.gauge("odb_campaign_probes_cached", "tuner probes served from the memo", float64(p.ProbesCached))
	o.gauge("odb_campaign_active_runs", "measurement runs in flight", float64(len(p.Active)))
	doneVal := 0.0
	if p.Done {
		doneVal = 1
	}
	o.gauge("odb_campaign_done", "1 once the campaign has finished", doneVal)
	hists := cr.MergedHistograms()
	o.histogram("odb_txn_latency_us", "transaction latency in simulated microseconds, merged across runs", hists)
	o.quantiles("odb_txn_latency_us_quantile", "merged transaction latency quantiles in simulated microseconds", hists)
	o.printf("# EOF\n")
	return o.err
}

// WriteTimeline renders every retained point timeline as JSON.
func (cr *CampaignRecorder) WriteTimeline(w io.Writer) error {
	return json.NewEncoder(w).Encode(struct {
		Points []pointTimeline `json:"points"`
	}{cr.timelines()})
}

// WriteProgress renders the campaign progress as JSON.
func (cr *CampaignRecorder) WriteProgress(w io.Writer) error {
	return json.NewEncoder(w).Encode(cr.Progress())
}

// WriteHealth renders the campaign's health summary as JSON: run state
// plus retained-sample counts across every point.
func (cr *CampaignRecorder) WriteHealth(w io.Writer) error {
	p := cr.Progress()
	samples := 0
	var dropped uint64
	for _, pt := range cr.timelines() {
		samples += len(pt.Samples)
		dropped += pt.Dropped
	}
	status := "ok"
	if p.Err != "" {
		status = "error"
	}
	return json.NewEncoder(w).Encode(struct {
		Status          string `json:"status"`
		Done            bool   `json:"done"`
		PointsDone      int    `json:"points_done"`
		TotalPoints     int    `json:"total_points"`
		ActiveRuns      int    `json:"active_runs"`
		TimelineSamples int    `json:"timeline_samples"`
		TimelineDropped uint64 `json:"timeline_dropped"`
		Err             string `json:"err,omitempty"`
	}{status, p.Done, p.PointsDone, p.TotalPoints, len(p.Active), samples, dropped, p.Err})
}
