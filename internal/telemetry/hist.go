// Package telemetry is the flight recorder of the simulator: bounded
// in-run timelines sampled on simulated time, per-transaction latency
// histograms with a mergeable encoding, OpenMetrics/JSON exposition,
// and the run manifest emitted next to campaign checkpoints.
//
// The package is under the odblint determinism rule: nothing here may
// read the wall clock. Sample timestamps are simulated seconds supplied
// by the system layer, and manifest wall-time fields are stamped by
// callers (cmd/ binaries, or the campaign runner through its injected
// clock). All types are safe for one writer plus concurrent readers —
// the live HTTP endpoints read snapshots while the simulation runs.
package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Histogram buckets are log-linear: values below 2^histSubBits land in
// exact unit buckets; above that, each power-of-two octave is split into
// 2^histSubBits sub-buckets, bounding the relative bucket width at
// 1/2^histSubBits (12.5%). The layout is fixed — independent of the
// data — so any two histograms merge by adding counts bucket-wise, and
// the campaign runner can aggregate worker histograms associatively.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	histNumBkts = (64-histSubBits)*histSub + histSub // indexes for all uint64 values
	histVersion = 1
)

// ErrCorruptHistogram reports a serialized histogram that cannot be
// decoded. Match it with errors.Is.
var ErrCorruptHistogram = errors.New("telemetry: corrupt histogram encoding")

// Histogram is a fixed log-bucket histogram of non-negative integer
// observations (the recorder feeds it transaction latencies in
// microseconds). The zero value is ready to use.
type Histogram struct {
	counts [histNumBkts]uint64
	count  uint64
	sum    uint64
	min    uint64 // valid when count > 0
	max    uint64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	e := uint(bits.Len64(v)) - 1 // 2^e <= v < 2^(e+1), e >= histSubBits
	m := (v >> (e - histSubBits)) & (histSub - 1)
	return int(e-histSubBits+1)<<histSubBits + int(m)
}

// bucketLower returns the smallest value mapping to bucket i.
func bucketLower(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	e := uint(i>>histSubBits) + histSubBits - 1
	m := uint64(i & (histSub - 1))
	return (histSub + m) << (e - histSubBits)
}

// bucketUpper returns the exclusive upper bound of bucket i.
func bucketUpper(i int) uint64 {
	if i+1 < histNumBkts {
		return bucketLower(i + 1)
	}
	return math.MaxUint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) as the midpoint of
// the bucket holding the q-th observation, clamped to the observed
// min/max. Empty histograms and NaN quantiles return 0; callers that
// need to distinguish "no data" from a true zero use QuantileOK.
func (h *Histogram) Quantile(q float64) float64 {
	v, _ := h.QuantileOK(q)
	return v
}

// QuantileOK is Quantile with an explicit validity report: ok is false
// — and the value 0 — when the histogram is empty or q is NaN, so
// formatting call sites can print a placeholder instead of garbage.
// (A NaN q slips through plain min/max clamps: every comparison with
// NaN is false, and converting NaN*count to a rank is unspecified.)
func (h *Histogram) QuantileOK(q float64) (float64, bool) {
	if h.count == 0 || math.IsNaN(q) {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			lo, hi := bucketLower(i), bucketUpper(i)
			mid := lo + (hi-lo)/2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return float64(mid), true
		}
	}
	return float64(h.max), true
}

// Merge adds other's observations into h. Merging is associative and
// commutative: any grouping of worker histograms yields identical
// buckets, counts and sums.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// Encode serializes the histogram compactly: a version byte, the count,
// sum, min and max, then (bucket-index delta, count) varint pairs for
// the non-zero buckets in index order. The format is self-contained and
// safe to ship between campaign workers.
func (h *Histogram) Encode() []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, histVersion)
	buf = binary.AppendUvarint(buf, h.count)
	buf = binary.AppendUvarint(buf, h.sum)
	buf = binary.AppendUvarint(buf, h.min)
	buf = binary.AppendUvarint(buf, h.max)
	nonZero := uint64(0)
	for _, c := range h.counts {
		if c != 0 {
			nonZero++
		}
	}
	buf = binary.AppendUvarint(buf, nonZero)
	prev := 0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(i-prev))
		buf = binary.AppendUvarint(buf, c)
		prev = i
	}
	return buf
}

// DecodeHistogram parses an Encode result. Corrupt input — truncated,
// version-mismatched, out-of-range buckets, or inconsistent totals —
// returns an error wrapping ErrCorruptHistogram; it never panics.
func DecodeHistogram(data []byte) (*Histogram, error) {
	fail := func(what string) (*Histogram, error) {
		return nil, fmt.Errorf("%w: %s", ErrCorruptHistogram, what)
	}
	if len(data) == 0 {
		return fail("empty input")
	}
	if data[0] != histVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorruptHistogram, data[0], histVersion)
	}
	rest := data[1:]
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	h := &Histogram{}
	var ok bool
	if h.count, ok = next(); !ok {
		return fail("truncated count")
	}
	if h.sum, ok = next(); !ok {
		return fail("truncated sum")
	}
	if h.min, ok = next(); !ok {
		return fail("truncated min")
	}
	if h.max, ok = next(); !ok {
		return fail("truncated max")
	}
	nonZero, ok := next()
	if !ok {
		return fail("truncated bucket count")
	}
	if nonZero > histNumBkts {
		return fail("bucket count out of range")
	}
	idx := 0
	var total uint64
	for i := uint64(0); i < nonZero; i++ {
		delta, ok := next()
		if !ok {
			return fail("truncated bucket index")
		}
		c, ok := next()
		if !ok {
			return fail("truncated bucket value")
		}
		if c == 0 {
			return fail("zero bucket encoded")
		}
		if i > 0 && delta == 0 {
			return fail("duplicate bucket index")
		}
		if delta > uint64(histNumBkts) || idx+int(delta) >= histNumBkts {
			return fail("bucket index out of range")
		}
		idx += int(delta)
		h.counts[idx] = c
		sum := total + c
		if sum < total {
			return fail("bucket count overflow")
		}
		total = sum
	}
	if len(rest) != 0 {
		return fail("trailing bytes")
	}
	if total != h.count {
		return fail("bucket totals disagree with count")
	}
	if h.count > 0 {
		if h.min > h.max {
			return fail("min exceeds max")
		}
		if bucketIndex(h.min) > bucketIndex(h.max) {
			return fail("min/max bucket order")
		}
	}
	return h, nil
}
