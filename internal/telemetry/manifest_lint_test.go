package telemetry

import (
	"testing"

	"odbscale/internal/lint"
)

// TestManifestLintRulesInSync pins the manifest's hardcoded provenance
// rule list to lint.All(): the list is duplicated so production
// binaries don't link go/types, and this test is the synchronization.
func TestManifestLintRulesInSync(t *testing.T) {
	got := NewManifest("test", 0).Provenance.LintRules
	want := lint.All()
	if len(got) != len(want) {
		t.Fatalf("manifest lists %d lint rules, lint.All() has %d — update NewManifest", len(got), len(want))
	}
	for i, a := range want {
		if got[i] != a.Name {
			t.Errorf("rule %d: manifest says %q, lint.All() says %q", i, got[i], a.Name)
		}
	}
}
