package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// LatencySummary is the JSON-friendly digest of one latency histogram;
// quantile values are simulated microseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MinUS  uint64  `json:"min_us"`
	MaxUS  uint64  `json:"max_us"`
	// Encoded is the mergeable wire form (base64 via encoding/json),
	// so downstream aggregators can reconstruct and merge the buckets.
	Encoded []byte `json:"encoded,omitempty"`
}

// Summarize digests a histogram. Quantiles of an empty histogram
// report 0 (QuantileOK keeps the zero distinguishable from data at the
// call sites that need it; the digest's Count already disambiguates).
func Summarize(h *Histogram, encoded bool) LatencySummary {
	p50, _ := h.QuantileOK(0.50)
	p95, _ := h.QuantileOK(0.95)
	p99, _ := h.QuantileOK(0.99)
	s := LatencySummary{
		Count:  h.Count(),
		MeanUS: h.Mean(),
		P50US:  p50,
		P95US:  p95,
		P99US:  p99,
		MinUS:  h.Min(),
		MaxUS:  h.Max(),
	}
	if encoded {
		s.Encoded = h.Encode()
	}
	return s
}

// SummarizeAll digests a histogram set keyed by transaction type.
func SummarizeAll(hists map[string]*Histogram, encoded bool) map[string]LatencySummary {
	out := make(map[string]LatencySummary, len(hists))
	for name, h := range hists {
		out[name] = Summarize(h, encoded)
	}
	return out
}

// omWriter accumulates OpenMetrics text lines, remembering the first
// write error so call sites stay linear.
type omWriter struct {
	w   io.Writer
	err error
}

func (o *omWriter) printf(format string, args ...any) {
	if o.err != nil {
		return
	}
	_, o.err = fmt.Fprintf(o.w, format, args...)
}

// header emits the TYPE/HELP preamble of one metric family.
func (o *omWriter) header(name, typ, help string) {
	o.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// gauge emits one unlabelled gauge.
func (o *omWriter) gauge(name, help string, v float64) {
	o.header(name, "gauge", help)
	o.printf("%s %g\n", name, v)
}

// histogram emits one classic cumulative-bucket histogram family with a
// txn_type label. Only non-empty buckets produce le lines, plus +Inf.
func (o *omWriter) histogram(name, help string, byType map[string]*Histogram) {
	o.header(name, "histogram", help)
	names := make([]string, 0, len(byType))
	for t := range byType {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		h := byType[t]
		var cum uint64
		for i, c := range h.counts {
			if c == 0 {
				continue
			}
			cum += c
			o.printf("%s_bucket{txn_type=%q,le=\"%g\"} %d\n", name, t, float64(bucketUpper(i)), cum)
		}
		o.printf("%s_bucket{txn_type=%q,le=\"+Inf\"} %d\n", name, t, h.Count())
		o.printf("%s_sum{txn_type=%q} %d\n", name, t, h.Sum())
		o.printf("%s_count{txn_type=%q} %d\n", name, t, h.Count())
	}
}

// quantiles emits p50/p95/p99 gauges per transaction type.
func (o *omWriter) quantiles(name, help string, byType map[string]*Histogram) {
	o.header(name, "gauge", help)
	names := make([]string, 0, len(byType))
	for t := range byType {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		h := byType[t]
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}} {
			// Empty histograms carry no quantile; OpenMetrics has no NaN,
			// so the sample is omitted rather than formatted as garbage.
			if v, ok := h.QuantileOK(q.q); ok {
				o.printf("%s{txn_type=%q,quantile=%q} %g\n", name, t, q.label, v)
			}
		}
	}
}

// WriteMetrics renders the recorder's live state as OpenMetrics text:
// gauges from the most recent timeline sample, run-progress counters,
// and the per-transaction-type latency histograms.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	o := &omWriter{w: w}
	p := r.Progress()
	o.gauge("odb_run_sim_seconds", "simulated seconds since run start", p.SimSeconds)
	o.gauge("odb_run_txns_total", "commits since simulation start", float64(p.TotalTxns))
	o.gauge("odb_run_measured_txns", "commits inside the measurement period", float64(p.MeasuredTxns))
	o.gauge("odb_run_target_txns", "measured-transaction goal", float64(p.TargetTxns))
	measuring := 0.0
	if p.Phase == PhaseMeasure {
		measuring = 1
	}
	o.gauge("odb_run_measuring", "1 while the measurement period is active", measuring)

	if samples := r.Timeline(); len(samples) > 0 {
		s := samples[len(samples)-1]
		o.gauge("odb_tps", "interval transaction throughput", s.TPS)
		o.gauge("odb_cpi", "interval cycles per instruction", s.CPI)
		o.gauge("odb_user_ipx", "interval user instructions per transaction", s.UserIPX)
		o.gauge("odb_os_ipx", "interval OS instructions per transaction", s.OSIPX)
		o.gauge("odb_l2_mpi", "interval L2 misses per instruction", s.L2MPI)
		o.gauge("odb_l3_mpi", "interval L3 misses per instruction", s.L3MPI)
		o.gauge("odb_bus_util", "front-side bus utilization", s.BusUtil)
		o.gauge("odb_buffer_hit_ratio", "interval buffer-cache hit ratio", s.BufferHit)
		o.gauge("odb_write_amp", "interval physical/logical write-byte ratio", s.WriteAmp)
		o.gauge("odb_read_amp", "interval block reads per logical row read", s.ReadAmp)
		o.gauge("odb_space_amp", "on-disk blocks per live-data block", s.SpaceAmp)
		o.gauge("odb_run_queue", "ready-queue depth", float64(s.RunQueue))
		o.gauge("odb_io_in_flight", "outstanding data-block reads", float64(s.IOInFlight))
		o.header("odb_cpu_util", "gauge", "per-CPU interval busy fraction")
		for cpu, u := range s.CPUUtil {
			o.printf("odb_cpu_util{cpu=\"%d\"} %g\n", cpu, u)
		}
		if len(s.Stations) > 0 {
			o.header("odb_station_util", "gauge", "per-station interval utilization")
			for _, st := range s.Stations {
				o.printf("odb_station_util{station=%q} %g\n", st.Name, st.Util)
			}
			o.header("odb_station_queue_len", "gauge", "per-station time-averaged customers present")
			for _, st := range s.Stations {
				o.printf("odb_station_queue_len{station=%q} %g\n", st.Name, st.QueueLen)
			}
			o.header("odb_station_wait_ms", "gauge", "per-station mean wait per completed visit, simulated ms")
			for _, st := range s.Stations {
				o.printf("odb_station_wait_ms{station=%q} %g\n", st.Name, st.WaitMS)
			}
			o.header("odb_station_xps", "gauge", "per-station completions per simulated second")
			for _, st := range s.Stations {
				o.printf("odb_station_xps{station=%q} %g\n", st.Name, st.Xps)
			}
		}
	}
	hists := r.Histograms()
	o.histogram("odb_txn_latency_us", "transaction latency in simulated microseconds", hists)
	o.quantiles("odb_txn_latency_us_quantile", "transaction latency quantiles in simulated microseconds", hists)
	o.printf("# EOF\n")
	return o.err
}

// timelineDump is the JSON wire form of a timeline endpoint response.
type timelineDump struct {
	Dropped uint64   `json:"dropped"`
	Samples []Sample `json:"samples"`
}

// WriteTimeline renders the retained samples as a JSON document.
func (r *Recorder) WriteTimeline(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(timelineDump{Dropped: r.TimelineDropped(), Samples: r.Timeline()})
}

// WriteProgress renders the live run position as a JSON document.
func (r *Recorder) WriteProgress(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Progress())
}

// healthDump is the JSON wire form of the /healthz endpoint: run state
// plus sample counts.
type healthDump struct {
	Status          string  `json:"status"`
	Phase           string  `json:"phase,omitempty"`
	SimSeconds      float64 `json:"sim_seconds"`
	TotalTxns       uint64  `json:"total_txns"`
	MeasuredTxns    uint64  `json:"measured_txns"`
	TargetTxns      uint64  `json:"target_txns"`
	TimelineSamples int     `json:"timeline_samples"`
	TimelineDropped uint64  `json:"timeline_dropped"`
	LatencySpans    uint64  `json:"latency_spans"`
}

// WriteHealth renders the run's health summary as a JSON document.
func (r *Recorder) WriteHealth(w io.Writer) error {
	p := r.Progress()
	var spans uint64
	for _, h := range r.Histograms() {
		spans += h.Count()
	}
	return json.NewEncoder(w).Encode(healthDump{
		Status:          "ok",
		Phase:           string(p.Phase),
		SimSeconds:      p.SimSeconds,
		TotalTxns:       p.TotalTxns,
		MeasuredTxns:    p.MeasuredTxns,
		TargetTxns:      p.TargetTxns,
		TimelineSamples: r.timeline.Len(),
		TimelineDropped: r.TimelineDropped(),
		LatencySpans:    spans,
	})
}
