package telemetry

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestBucketLayout pins the log-linear geometry: every value lands in a
// bucket whose bounds contain it, and above the unit-bucket region the
// relative bucket width never exceeds 1/2^histSubBits.
func TestBucketLayout(t *testing.T) {
	values := []uint64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxUint64}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		values = append(values, rng.Uint64()>>uint(rng.Intn(64)))
	}
	for _, v := range values {
		i := bucketIndex(v)
		if i < 0 || i >= histNumBkts {
			t.Fatalf("bucketIndex(%d) = %d, out of range", v, i)
		}
		lo, hi := bucketLower(i), bucketUpper(i)
		// The final bucket's upper bound saturates at MaxUint64 (2^64 is
		// unrepresentable) and is inclusive; every other bound is exclusive.
		if v < lo || (i+1 < histNumBkts && v >= hi) {
			t.Fatalf("value %d outside its bucket %d: [%d, %d)", v, i, lo, hi)
		}
		if v >= histSub && i+1 < histNumBkts {
			if width := float64(hi-lo) / float64(lo); width > 1.0/histSub+1e-9 {
				t.Fatalf("bucket %d width %.4f exceeds %.4f (lo=%d hi=%d)", i, width, 1.0/histSub, lo, hi)
			}
		}
	}
	// Buckets tile the axis: each bucket's exclusive upper bound is the
	// next bucket's lower bound.
	for i := 0; i+1 < histNumBkts; i++ {
		if bucketUpper(i) != bucketLower(i+1) {
			t.Fatalf("bucket %d upper %d != bucket %d lower %d", i, bucketUpper(i), i+1, bucketLower(i+1))
		}
	}
}

// TestGoldenQuantiles checks quantile estimates against a known
// distribution: the uniform integers 1..N have exactly computable
// quantiles, and the log-bucket estimate must land within the bucket's
// 12.5% relative width.
func TestGoldenQuantiles(t *testing.T) {
	const n = 10_000
	var h Histogram
	for v := uint64(1); v <= n; v++ {
		h.Observe(v)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if h.Min() != 1 || h.Max() != n {
		t.Fatalf("min/max = %d/%d, want 1/%d", h.Min(), h.Max(), n)
	}
	if mean := h.Mean(); math.Abs(mean-(n+1)/2.0) > 0.5 {
		t.Fatalf("mean = %f, want %f", mean, (n+1)/2.0)
	}
	for _, tc := range []struct {
		q     float64
		exact float64
	}{
		{0.50, 5000}, {0.90, 9000}, {0.95, 9500}, {0.99, 9900}, {1.0, 10000},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.exact) / tc.exact; rel > 1.0/histSub {
			t.Errorf("q%.2f = %f, want %f within %.1f%% (off by %.1f%%)",
				tc.q, got, tc.exact, 100.0/histSub, 100*rel)
		}
	}
	// Values below 2^histSubBits live in exact unit buckets: quantiles
	// over small values are exact, not approximate.
	var small Histogram
	for _, v := range []uint64{1, 2, 3, 4, 5, 6, 7} {
		small.Observe(v)
	}
	if got := small.Quantile(0.5); got != 4 {
		t.Errorf("small p50 = %f, want exactly 4", got)
	}
	if got := small.Quantile(1.0); got != 7 {
		t.Errorf("small p100 = %f, want exactly 7", got)
	}
}

// TestQuantileEdge pins the empty and single-observation cases.
func TestQuantileEdge(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %f, want 0", got)
	}
	h.Observe(42)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("single-value q%.1f = %f, want 42", q, got)
		}
	}
}

// TestQuantileOK pins the guarded variant: an empty histogram and a NaN
// rank both report ok=false (NaN comparisons are all false, so it would
// otherwise slip past the rank clamps), and valid lookups report the
// same value as Quantile with ok=true.
func TestQuantileOK(t *testing.T) {
	var h Histogram
	if v, ok := h.QuantileOK(0.5); ok || v != 0 {
		t.Errorf("empty QuantileOK = %f, %v; want 0, false", v, ok)
	}
	h.Observe(42)
	if v, ok := h.QuantileOK(math.NaN()); ok || v != 0 {
		t.Errorf("NaN QuantileOK = %f, %v; want 0, false", v, ok)
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		v, ok := h.QuantileOK(q)
		if !ok || v != h.Quantile(q) {
			t.Errorf("QuantileOK(%.1f) = %f, %v; want %f, true", q, v, ok, h.Quantile(q))
		}
	}
}

// randomHist builds a histogram of n observations drawn from rng with a
// heavy-tailed spread across many octaves.
func randomHist(rng *rand.Rand, n int) *Histogram {
	h := &Histogram{}
	for i := 0; i < n; i++ {
		h.Observe(rng.Uint64() >> uint(rng.Intn(60)))
	}
	return h
}

// equalHist compares full histogram state.
func equalHist(a, b *Histogram) bool {
	return a.counts == b.counts && a.count == b.count && a.sum == b.sum &&
		a.min == b.min && a.max == b.max
}

// TestMergeAssociativity is the property test behind campaign
// aggregation: any grouping and ordering of worker histograms must
// merge to the identical result.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 50; trial++ {
		a := randomHist(rng, rng.Intn(200))
		b := randomHist(rng, rng.Intn(200))
		c := randomHist(rng, rng.Intn(200))

		// (a ⊕ b) ⊕ c
		left := a.Clone()
		left.Merge(b)
		left.Merge(c)

		// a ⊕ (b ⊕ c)
		bc := b.Clone()
		bc.Merge(c)
		right := a.Clone()
		right.Merge(bc)

		if !equalHist(left, right) {
			t.Fatalf("trial %d: merge not associative", trial)
		}

		// c ⊕ b ⊕ a — commutativity.
		rev := c.Clone()
		rev.Merge(b)
		rev.Merge(a)
		if !equalHist(left, rev) {
			t.Fatalf("trial %d: merge not commutative", trial)
		}

		// Identity: merging an empty histogram changes nothing.
		id := left.Clone()
		id.Merge(&Histogram{})
		if !equalHist(left, id) {
			t.Fatalf("trial %d: empty merge not identity", trial)
		}

		// The encoding is canonical: equal state encodes to equal bytes.
		if !bytes.Equal(left.Encode(), right.Encode()) {
			t.Fatalf("trial %d: equal histograms encode differently", trial)
		}
	}
}

// TestEncodeDecodeRoundTrip checks that decode inverts encode exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	hists := []*Histogram{
		{}, // empty
		randomHist(rng, 1),
		randomHist(rng, 1000),
	}
	var one Histogram
	one.Observe(0)
	hists = append(hists, &one)
	for i, h := range hists {
		dec, err := DecodeHistogram(h.Encode())
		if err != nil {
			t.Fatalf("hist %d: decode: %v", i, err)
		}
		if !equalHist(h, dec) {
			t.Fatalf("hist %d: round trip mismatch", i)
		}
	}
}

// TestDecodeCorrupt feeds broken encodings to the decoder: every one
// must return an error wrapping ErrCorruptHistogram — never panic,
// never succeed.
func TestDecodeCorrupt(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 5, 100, 10_000, 1 << 30} {
		h.Observe(v)
	}
	valid := h.Encode()

	cases := map[string][]byte{
		"empty":           {},
		"bad version":     append([]byte{99}, valid[1:]...),
		"truncated":       valid[:len(valid)-1],
		"header only":     valid[:3],
		"trailing bytes":  append(append([]byte{}, valid...), 0x01),
		"all 0xff":        bytes.Repeat([]byte{0xff}, 40),
		"version only":    {histVersion},
		"count mismatch":  nil, // built below
		"zero bucket":     {histVersion, 1, 1, 1, 1, 1, 0, 0},
		"index overflow":  {histVersion, 1, 1, 1, 1, 1, 0xff, 0xff, 0x7f, 1},
		"min exceeds max": {histVersion, 1, 9, 9, 1, 1, 9, 1},
	}
	// count says 2, buckets sum to 1.
	bad := []byte{histVersion}
	bad = append(bad, 2, 5, 5, 5, 1, 5, 1)
	cases["count mismatch"] = bad

	for name, data := range cases {
		got, err := DecodeHistogram(data)
		if err == nil {
			t.Errorf("%s: decode succeeded (count=%d), want error", name, got.Count())
			continue
		}
		if !errors.Is(err, ErrCorruptHistogram) {
			t.Errorf("%s: error %v does not wrap ErrCorruptHistogram", name, err)
		}
	}
}

// FuzzHistogramDecode asserts the decoder's safety contract on
// arbitrary bytes: it returns a value or an ErrCorruptHistogram error,
// never panics, and anything it accepts re-encodes canonically.
func FuzzHistogramDecode(f *testing.F) {
	var h Histogram
	for _, v := range []uint64{0, 1, 7, 8, 1000, 123456, 1 << 40} {
		h.Observe(v)
	}
	valid := h.Encode()
	f.Add(valid)
	f.Add((&Histogram{}).Encode())
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{histVersion})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeHistogram(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptHistogram) {
				t.Fatalf("error %v does not wrap ErrCorruptHistogram", err)
			}
			return
		}
		// Accepted input must re-encode to a decodable, equal histogram.
		again, err := DecodeHistogram(dec.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if !equalHist(dec, again) {
			t.Fatal("accepted input did not round-trip canonically")
		}
	})
}
