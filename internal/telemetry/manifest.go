package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
)

// ManifestVersion guards the manifest schema.
const ManifestVersion = 1

// Provenance records how the emitting binary was built and which
// invariants its tree is expected to satisfy. Wall-clock fields are
// stamped by callers: this package may not read the clock.
type Provenance struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Module    string `json:"module"`
	// LintRules lists the odblint analyzers the tree is held to; CI
	// fails on any finding, so a released manifest implies a clean run.
	LintRules []string `json:"lint_rules,omitempty"`
	// Tier1 is the verification command gating the tree.
	Tier1 string `json:"tier1"`
}

// Manifest is the machine-readable record written next to every
// checkpoint and emitted by odbrun -json: the full configuration and
// seeds that produced a result, build provenance, and per-phase
// durations — enough to reproduce or audit the run without the binary.
type Manifest struct {
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	// CreatedAt is an RFC3339 wall timestamp stamped by the caller
	// (cmd/ binaries, or the campaign runner via its injected clock).
	CreatedAt string `json:"created_at,omitempty"`

	Seed int64 `json:"seed"`
	// Engine names the storage engine the run executed on (internal/
	// engine registry name); empty in manifests predating the field.
	Engine      string          `json:"engine,omitempty"`
	Config      json.RawMessage `json:"config,omitempty"` // full system/campaign configuration
	Provenance  Provenance      `json:"provenance"`
	Phases      []PhaseSpan     `json:"phases,omitempty"`       // per-phase sim durations
	WallSeconds float64         `json:"wall_seconds,omitempty"` // total wall time, caller-stamped
	Checkpoint  string          `json:"checkpoint,omitempty"`   // sibling checkpoint path
	Notes       string          `json:"notes,omitempty"`
}

// NewManifest builds a manifest skeleton with build provenance filled
// from the running binary.
func NewManifest(tool string, seed int64) *Manifest {
	return &Manifest{
		Version: ManifestVersion,
		Tool:    tool,
		Seed:    seed,
		Provenance: Provenance{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			Module:    "odbscale",
			// Mirrors lint.All(); a telemetry test pins the two in sync
			// without linking go/types into every binary.
			LintRules: []string{
				"determinism", "maporder", "sentinelerr", "floateq", "ctxloop", "hotwaiver",
				"taintdet", "hotalloc", "laneshare",
			},
			Tier1: "go build ./... && go test ./... && odblint ./...",
		},
	}
}

// SetConfig marshals the full run configuration into the manifest.
func (m *Manifest) SetConfig(cfg any) error {
	data, err := json.Marshal(cfg)
	if err != nil {
		return fmt.Errorf("telemetry: marshaling manifest config: %w", err)
	}
	m.Config = data
	return nil
}

// WriteJSON renders the manifest with stable indentation.
func (m *Manifest) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Save writes the manifest atomically (temp file + rename), matching
// the checkpoint writer's crash discipline.
func (m *Manifest) Save(path string) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ManifestPath returns the manifest path written next to a checkpoint.
func ManifestPath(checkpointPath string) string {
	return checkpointPath + ".manifest.json"
}

// LoadManifest reads a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("telemetry: corrupt manifest %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("telemetry: manifest %s has version %d, want %d", path, m.Version, ManifestVersion)
	}
	return &m, nil
}
