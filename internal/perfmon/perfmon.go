// Package perfmon reproduces the paper's measurement methodology: the
// Xeon MP's 18 performance counters are organized in 9 pairs, each pair
// restricted to a subset of events, so EMON samples event groups in a
// round-robin schedule — each event measured for a fixed window, the
// whole rotation repeated several times — rather than reading everything
// at once. The rotation is what gives rare events (like OS-space cycles
// at small warehouse counts) their sampling error, which the paper calls
// out in Section 5.1.
package perfmon

import (
	"fmt"

	"odbscale/internal/sim"
	"odbscale/internal/stats"
)

// Event identifies a performance-monitoring event.
type Event int

// The events of the paper's Table 2.
const (
	Instructions Event = iota
	BranchMispredictions
	TLBMiss
	TCMiss
	L2Miss
	L3Miss
	ClockCycles
	BusUtilization
	BusTransactionTime
	numEvents
)

// Def describes one event as Table 2 does.
type Def struct {
	Alias       string
	EMONEvent   string
	Description string
}

// Table2 lists the performance-monitoring events used in the CPI
// analysis, with the EMON event names the paper reports.
var Table2 = map[Event]Def{
	Instructions:         {"Instructions", "instr_retired", "The number of instructions retired"},
	BranchMispredictions: {"Branch Mispredictions", "mispred_branch_retired", "The number of mispredicted branches"},
	TLBMiss:              {"TLB Miss", "page_walk_type", "The number of misses in the TLB"},
	TCMiss:               {"TC Miss", "BPU_fetch_request", "The number of misses in the Trace Cache"},
	L2Miss:               {"L2 Miss", "BSU_cache_reference", "The number of misses in the L2 cache"},
	L3Miss:               {"L3 Miss", "BSU_cache_reference", "The number of misses in the L3 cache"},
	ClockCycles:          {"Clock Cycles", "Global_power_events", "The number of unhalted clock cycles"},
	BusUtilization:       {"Bus Utilization", "FSB_data_activity", "The percentage of time the processor bus is transferring data"},
	BusTransactionTime:   {"Bus-Transaction Time", "IOQ_active_entries & IOQ_allocation", "The average amount of time to complete a bus transaction once it enters the IOQ"},
}

// Events returns all defined events in Table 2 order.
func Events() []Event {
	out := make([]Event, 0, int(numEvents))
	for e := Event(0); e < numEvents; e++ {
		out = append(out, e)
	}
	return out
}

func (e Event) String() string {
	if d, ok := Table2[e]; ok {
		return d.Alias
	}
	return fmt.Sprintf("event(%d)", int(e))
}

// Source supplies cumulative event counts; the sampler differences
// successive readings. Instructions and ClockCycles are free-running and
// read alongside every group (as the fixed counters allow).
type Source func(e Event) uint64

// Sample is one measured rate observation: events per retired instruction
// (or per cycle for the bus events).
type Sample struct {
	Event Event
	Value float64
}

// Result summarizes the repeated observations of one event.
type Result struct {
	Event   Event
	Mean    float64
	CI95    float64
	Samples []float64
}

// Config controls the sampling schedule.
type Config struct {
	Groups  [][]Event // counter-pair-compatible event groups
	Window  sim.Time  // per-group measurement window (the paper: 10 s)
	Repeats int       // rotations (the paper: 6)
}

// DefaultConfig mirrors the paper's schedule: events grouped by counter
// compatibility, ten seconds per event group, six repetitions.
func DefaultConfig(cyclesPerSecond float64) Config {
	return Config{
		Groups: [][]Event{
			{BranchMispredictions, TLBMiss},
			{TCMiss, L2Miss},
			{L3Miss, BusUtilization},
			{BusTransactionTime},
		},
		Window:  sim.Time(10 * cyclesPerSecond),
		Repeats: 6,
	}
}

// Sampler drives the round-robin schedule on a simulation engine.
type Sampler struct {
	cfg    Config
	src    Source
	engine *sim.Engine

	samples map[Event][]float64
	done    bool
}

// NewSampler builds a sampler; Start schedules the measurement.
func NewSampler(eng *sim.Engine, cfg Config, src Source) *Sampler {
	if len(cfg.Groups) == 0 || cfg.Repeats < 1 || cfg.Window == 0 {
		panic("perfmon: bad config")
	}
	return &Sampler{cfg: cfg, src: src, engine: eng, samples: make(map[Event][]float64)}
}

// Start schedules the full rotation beginning at the current simulation
// time; onDone (if non-nil) runs when the last window closes.
func (s *Sampler) Start(onDone func()) {
	type reading struct {
		counts map[Event]uint64
		instr  uint64
	}
	read := func(group []Event) reading {
		r := reading{counts: make(map[Event]uint64, len(group)), instr: s.src(Instructions)}
		for _, e := range group {
			r.counts[e] = s.src(e)
		}
		return r
	}
	var at sim.Time
	total := s.cfg.Repeats * len(s.cfg.Groups)
	n := 0
	for rep := 0; rep < s.cfg.Repeats; rep++ {
		for _, group := range s.cfg.Groups {
			group := group
			start := at
			s.engine.At(s.engine.Now()+start, func() {
				begin := read(group)
				s.engine.After(s.cfg.Window, func() {
					end := read(group)
					dInstr := float64(end.instr - begin.instr)
					for _, e := range group {
						delta := float64(end.counts[e] - begin.counts[e])
						var rate float64
						switch e {
						case BusUtilization, BusTransactionTime:
							// Already a level metric: sample the end value.
							rate = float64(end.counts[e])
						default:
							if dInstr > 0 {
								rate = delta / dInstr
							}
						}
						s.samples[e] = append(s.samples[e], rate)
					}
					n++
					if n == total {
						s.done = true
						if onDone != nil {
							onDone()
						}
					}
				})
			})
			at += s.cfg.Window
		}
	}
}

// Done reports whether every window has closed.
func (s *Sampler) Done() bool { return s.done }

// Result returns the aggregated observations for one event.
func (s *Sampler) Result(e Event) Result {
	xs := s.samples[e]
	return Result{Event: e, Mean: stats.Mean(xs), CI95: stats.CI95(xs), Samples: xs}
}

// Duration returns the simulated time one full rotation takes.
func (s *Sampler) Duration() sim.Time {
	return sim.Time(s.cfg.Repeats*len(s.cfg.Groups)) * s.cfg.Window
}
