package perfmon

import (
	"math"
	"testing"

	"odbscale/internal/sim"
	"odbscale/internal/xrand"
)

// fakeMachine advances counters at configurable rates per cycle with
// optional noise, driven by explicit Advance calls.
type fakeMachine struct {
	counts map[Event]uint64
	rates  map[Event]float64
	rng    *xrand.Rand
	noise  float64
}

func newFake(noise float64) *fakeMachine {
	return &fakeMachine{
		counts: make(map[Event]uint64),
		rates: map[Event]float64{
			Instructions:         0.5, // per cycle
			BranchMispredictions: 0.002,
			TLBMiss:              0.0005,
			TCMiss:               0.001,
			L2Miss:               0.004,
			L3Miss:               0.0025,
			ClockCycles:          1,
		},
		rng:   xrand.New(1),
		noise: noise,
	}
}

func (f *fakeMachine) Advance(cycles uint64) {
	for e, r := range f.rates {
		jitter := 1.0
		if f.noise > 0 {
			jitter = 1 + f.noise*(f.rng.Float64()*2-1)
		}
		f.counts[e] += uint64(float64(cycles) * r * jitter)
	}
	f.counts[BusTransactionTime] = 110
	f.counts[BusUtilization] = 25
}

func (f *fakeMachine) Source(e Event) uint64 { return f.counts[e] }

func TestTable2Complete(t *testing.T) {
	for _, e := range Events() {
		d, ok := Table2[e]
		if !ok || d.Alias == "" || d.EMONEvent == "" || d.Description == "" {
			t.Fatalf("Table 2 entry incomplete for %v", e)
		}
	}
	if len(Events()) != 9 {
		t.Fatalf("Table 2 has %d events, want 9", len(Events()))
	}
	if Event(99).String() == "" {
		t.Fatal("unknown event name empty")
	}
}

func TestSamplerMeasuresRates(t *testing.T) {
	eng := sim.New()
	fake := newFake(0)
	cfg := DefaultConfig(1000) // tiny "second" for test speed
	s := NewSampler(eng, cfg, fake.Source)
	finished := false
	s.Start(func() { finished = true })

	// Drive the machine forward in lockstep with the engine.
	deadline := s.Duration()
	var now sim.Time
	for now < deadline {
		eng.RunUntil(now + 1000)
		fake.Advance(1000)
		now += 1000
	}
	eng.RunUntil(deadline + 1)
	if !finished || !s.Done() {
		t.Fatal("sampler never finished")
	}

	// Mispredict rate per instruction = 0.002/0.5 = 0.004.
	r := s.Result(BranchMispredictions)
	if math.Abs(r.Mean-0.004) > 1e-6 {
		t.Fatalf("mispredict rate = %v, want 0.004", r.Mean)
	}
	if len(r.Samples) != cfg.Repeats {
		t.Fatalf("samples = %d, want %d", len(r.Samples), cfg.Repeats)
	}
	if r.CI95 > 1e-9 {
		t.Fatalf("noiseless CI = %v, want 0", r.CI95)
	}
	// Level metrics sample the instantaneous value.
	if bt := s.Result(BusTransactionTime); bt.Mean != 110 {
		t.Fatalf("bus time = %v", bt.Mean)
	}
}

func TestSamplerNoiseProducesCI(t *testing.T) {
	eng := sim.New()
	fake := newFake(0.3)
	s := NewSampler(eng, DefaultConfig(1000), fake.Source)
	s.Start(nil)
	deadline := s.Duration()
	var now sim.Time
	for now < deadline {
		eng.RunUntil(now + 1000)
		fake.Advance(1000)
		now += 1000
	}
	eng.RunUntil(deadline + 1)
	r := s.Result(L3Miss)
	if r.CI95 <= 0 {
		t.Fatalf("noisy source produced zero CI: %+v", r)
	}
}

func TestSamplerSchedule(t *testing.T) {
	eng := sim.New()
	fake := newFake(0)
	cfg := Config{Groups: [][]Event{{L3Miss}, {TCMiss}}, Window: 100, Repeats: 3}
	s := NewSampler(eng, cfg, fake.Source)
	s.Start(nil)
	if s.Duration() != 600 {
		t.Fatalf("Duration = %d, want 600", s.Duration())
	}
	var now sim.Time
	for now < 600 {
		eng.RunUntil(now + 100)
		fake.Advance(100)
		now += 100
	}
	eng.RunUntil(601)
	if got := len(s.Result(L3Miss).Samples); got != 3 {
		t.Fatalf("L3 samples = %d, want 3", got)
	}
	if got := len(s.Result(TCMiss).Samples); got != 3 {
		t.Fatalf("TC samples = %d, want 3", got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewSampler(sim.New(), Config{}, func(Event) uint64 { return 0 })
}
