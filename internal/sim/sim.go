// Package sim provides the discrete-event simulation core that drives the
// whole machine model. Time is measured in CPU clock cycles (the paper's
// Xeon runs at 1.6 GHz, so one simulated second is 1.6e9 cycles). Events
// are callbacks scheduled at absolute cycle times and dispatched in time
// order; ties are broken by scheduling order so runs are deterministic.
//
// The engine is allocation-free in steady state: events live in a pooled,
// index-addressed node arena ordered by a 4-ary heap of indices keyed on
// (when, seq), with a free list recycling fired slots. Cancel marks nodes
// lazily — no reheapify — and canceled nodes are discarded when they reach
// the heap head. Hot callers avoid per-event closure captures with the
// typed-callback forms AtCall/AfterCall, which carry a static func(any)
// plus one payload word.
package sim

import "fmt"

// Time is an absolute simulation time in CPU cycles.
type Time uint64

// node is one pooled event slot. fn1/arg is the typed-callback form used
// by hot paths; fn0 is the closure form of At/After.
type node struct {
	when     Time
	seq      uint64
	gen      uint32
	canceled bool
	fn0      func()
	fn1      func(any)
	arg      any
}

// Event is a handle to a scheduled callback. It is a small value: handles
// stay valid after the event fires (Cancel then becomes a no-op) because
// each pooled slot carries a generation counter that invalidates stale
// handles when the slot is recycled.
type Event struct {
	eng  *Engine
	idx  int32
	gen  uint32
	when Time
}

// Cancel prevents a pending event from running. Canceling an event that
// has already fired (or was already canceled) is a no-op. The node stays
// queued — lazy deletion — and is discarded without dispatch when it
// reaches the heap head, so Cancel never reheapifies.
func (e Event) Cancel() {
	eng := e.eng
	if eng == nil || e.idx < 0 || int(e.idx) >= len(eng.nodes) {
		return
	}
	nd := &eng.nodes[e.idx]
	if nd.gen != e.gen || nd.canceled {
		return
	}
	nd.canceled = true
	// Drop captured references now; the slot itself is reclaimed when the
	// heap pops it.
	nd.fn0, nd.fn1, nd.arg = nil, nil, nil
	eng.live--
}

// When returns the time the event is scheduled for.
func (e Event) When() Time { return e.when }

// Engine is a discrete-event simulator instance.
type Engine struct {
	now   Time
	seq   uint64
	nodes []node  // index-addressed event arena
	heap  []int32 // 4-ary heap of node indices ordered by (when, seq)
	free  []int32 // recycled node slots
	live  int     // queued, non-canceled events
}

// New returns an empty engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// less orders two nodes by (when, seq).
func (e *Engine) less(a, b int32) bool {
	na, nb := &e.nodes[a], &e.nodes[b]
	if na.when != nb.when {
		return na.when < nb.when
	}
	return na.seq < nb.seq
}

// siftUp restores heap order upward from position i.
func (e *Engine) siftUp(i int) {
	idx := e.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(idx, e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		i = parent
	}
	e.heap[i] = idx
}

// siftDown restores heap order downward from the root.
func (e *Engine) siftDown() {
	n := len(e.heap)
	idx := e.heap[0]
	i := 0
	for {
		first := i*4 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.less(e.heap[best], idx) {
			break
		}
		e.heap[i] = e.heap[best]
		i = best
	}
	e.heap[i] = idx
}

// popHead removes the heap head (the caller has already read it).
func (e *Engine) popHead() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown()
	}
}

// release recycles a node slot onto the free list, invalidating handles.
func (e *Engine) release(idx int32) {
	nd := &e.nodes[idx]
	nd.gen++
	nd.fn0, nd.fn1, nd.arg = nil, nil, nil
	e.free = append(e.free, idx)
}

// schedule allocates a node from the pool and pushes it onto the heap.
func (e *Engine) schedule(t Time, fn0 func(), fn1 func(any), arg any) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.nodes = append(e.nodes, node{})
		idx = int32(len(e.nodes) - 1)
	}
	nd := &e.nodes[idx]
	nd.when, nd.seq, nd.canceled = t, e.seq, false
	nd.fn0, nd.fn1, nd.arg = fn0, fn1, arg
	e.seq++
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
	e.live++
	return Event{eng: e, idx: idx, gen: nd.gen, when: t}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, never a recoverable condition.
func (e *Engine) At(t Time, fn func()) Event { return e.schedule(t, fn, nil, nil) }

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) Event { return e.schedule(e.now+d, fn, nil, nil) }

// AtCall schedules fn(arg) at absolute time t. Unlike At, the callback is
// a static function plus one payload word, so hot paths schedule without
// allocating a closure; pointer-shaped args (and integers under 256) do
// not allocate when boxed.
func (e *Engine) AtCall(t Time, fn func(any), arg any) Event {
	return e.schedule(t, nil, fn, arg)
}

// AfterCall schedules fn(arg) to run d cycles from now, closure-free.
func (e *Engine) AfterCall(d Time, fn func(any), arg any) Event {
	return e.schedule(e.now+d, nil, fn, arg)
}

// Step dispatches the next pending event, if any, and reports whether one
// ran. Canceled events are discarded without running.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		idx := e.heap[0]
		e.popHead()
		nd := &e.nodes[idx]
		if nd.canceled {
			e.release(idx)
			continue
		}
		e.now = nd.when
		fn0, fn1, arg := nd.fn0, nd.fn1, nd.arg
		e.live--
		e.release(idx)
		if fn1 != nil {
			fn1(arg)
		} else {
			fn0()
		}
		return true
	}
	return false
}

// RunUntil dispatches events until the queue is empty or the next event is
// after the deadline; the clock is then advanced to the deadline. It
// returns the number of events dispatched. Canceled heads are discarded
// without being counted.
func (e *Engine) RunUntil(deadline Time) int {
	n := 0
	for len(e.heap) > 0 {
		idx := e.heap[0]
		nd := &e.nodes[idx]
		if nd.canceled {
			e.popHead()
			e.release(idx)
			continue
		}
		if nd.when > deadline {
			break
		}
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// Pending returns the number of queued, non-canceled events. Canceled
// events awaiting lazy discard are not counted.
func (e *Engine) Pending() int { return e.live }
