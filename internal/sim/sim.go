// Package sim provides the discrete-event simulation core that drives the
// whole machine model. Time is measured in CPU clock cycles (the paper's
// Xeon runs at 1.6 GHz, so one simulated second is 1.6e9 cycles). Events
// are callbacks scheduled at absolute cycle times and dispatched in time
// order; ties are broken by scheduling order so runs are deterministic.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is an absolute simulation time in CPU cycles.
type Time uint64

// Event is a scheduled callback.
type Event struct {
	when     Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when not queued
}

// Cancel prevents a pending event from running. Canceling an event that
// has already fired is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// When returns the time the event is scheduled for.
func (e *Event) When() Time { return e.when }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator instance.
type Engine struct {
	now   Time
	seq   uint64
	queue eventQueue
}

// New returns an empty engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, never a recoverable condition.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	ev := &Event{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) *Event { return e.At(e.now+d, fn) }

// Step dispatches the next pending event, if any, and reports whether one ran.
// Canceled events are discarded without running.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.when
		ev.fn()
		return true
	}
	return false
}

// RunUntil dispatches events until the queue is empty or the next event is
// after the deadline; the clock is then advanced to the deadline. It
// returns the number of events dispatched.
func (e *Engine) RunUntil(deadline Time) int {
	n := 0
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.when > deadline {
			break
		}
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// Pending returns the number of queued (non-dispatched) events, including
// canceled ones not yet discarded.
func (e *Engine) Pending() int { return len(e.queue) }
