package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	for e.Step() {
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	for e.Step() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	e := New()
	fired := Time(0)
	e.At(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	for e.Step() {
	}
	if fired != 150 {
		t.Fatalf("After fired at %d, want 150", fired)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	ev := e.At(10, func() { ran = true })
	ev.Cancel()
	for e.Step() {
	}
	if ran {
		t.Fatal("canceled event ran")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic scheduling in the past")
		}
	}()
	e.At(50, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i*10), func() { count++ })
	}
	n := e.RunUntil(35)
	if n != 3 || count != 3 {
		t.Fatalf("RunUntil dispatched %d (count %d), want 3", n, count)
	}
	if e.Now() != 35 {
		t.Fatalf("Now = %d, want 35 (advance to deadline)", e.Now())
	}
	n = e.RunUntil(100)
	if n != 2 || count != 5 {
		t.Fatalf("second RunUntil dispatched %d, want 2", n)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestRunUntilDiscardsCanceled(t *testing.T) {
	e := New()
	ev := e.At(10, func() { t.Fatal("canceled event ran") })
	ev.Cancel()
	if n := e.RunUntil(100); n != 0 {
		t.Fatalf("dispatched %d canceled events", n)
	}
}

// Property: events fire in nondecreasing time order regardless of the
// insertion order, including events scheduled from inside events.
func TestMonotonicDispatchQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var times []Time
		record := func() { times = append(times, e.Now()) }
		for i := 0; i < 50; i++ {
			when := Time(rng.Intn(1000))
			e.At(when, func() {
				record()
				if rng.Intn(3) == 0 {
					e.After(Time(rng.Intn(100)), record)
				}
			})
		}
		for e.Step() {
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEventWhen(t *testing.T) {
	e := New()
	ev := e.At(42, func() {})
	if ev.When() != 42 {
		t.Fatalf("When = %d", ev.When())
	}
}
