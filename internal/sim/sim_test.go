package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	for e.Step() {
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	for e.Step() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	e := New()
	fired := Time(0)
	e.At(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	for e.Step() {
	}
	if fired != 150 {
		t.Fatalf("After fired at %d, want 150", fired)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	ev := e.At(10, func() { ran = true })
	ev.Cancel()
	for e.Step() {
	}
	if ran {
		t.Fatal("canceled event ran")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic scheduling in the past")
		}
	}()
	e.At(50, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i*10), func() { count++ })
	}
	n := e.RunUntil(35)
	if n != 3 || count != 3 {
		t.Fatalf("RunUntil dispatched %d (count %d), want 3", n, count)
	}
	if e.Now() != 35 {
		t.Fatalf("Now = %d, want 35 (advance to deadline)", e.Now())
	}
	n = e.RunUntil(100)
	if n != 2 || count != 5 {
		t.Fatalf("second RunUntil dispatched %d, want 2", n)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestRunUntilDiscardsCanceled(t *testing.T) {
	e := New()
	ev := e.At(10, func() { t.Fatal("canceled event ran") })
	ev.Cancel()
	if n := e.RunUntil(100); n != 0 {
		t.Fatalf("dispatched %d canceled events", n)
	}
}

// Property: events fire in nondecreasing time order regardless of the
// insertion order, including events scheduled from inside events.
func TestMonotonicDispatchQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var times []Time
		record := func() { times = append(times, e.Now()) }
		for i := 0; i < 50; i++ {
			when := Time(rng.Intn(1000))
			e.At(when, func() {
				record()
				if rng.Intn(3) == 0 {
					e.After(Time(rng.Intn(100)), record)
				}
			})
		}
		for e.Step() {
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEventWhen(t *testing.T) {
	e := New()
	ev := e.At(42, func() {})
	if ev.When() != 42 {
		t.Fatalf("When = %d", ev.When())
	}
}

func TestPendingExcludesCanceled(t *testing.T) {
	e := New()
	keep := e.At(10, func() {})
	drop := e.At(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	drop.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1 (canceled-but-queued must not count)", e.Pending())
	}
	drop.Cancel() // double cancel is a no-op
	if e.Pending() != 1 {
		t.Fatalf("Pending after double cancel = %d, want 1", e.Pending())
	}
	keep.Cancel()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
	if e.Step() {
		t.Fatal("Step dispatched a canceled event")
	}
}

func TestRunUntilDoesNotCountCanceledHeads(t *testing.T) {
	e := New()
	ran := 0
	for i := 1; i <= 6; i++ {
		ev := e.At(Time(i*10), func() { ran++ })
		if i%2 == 1 {
			ev.Cancel()
		}
	}
	if n := e.RunUntil(100); n != 3 {
		t.Fatalf("RunUntil counted %d dispatches, want 3 (canceled heads discarded uncounted)", n)
	}
	if ran != 3 {
		t.Fatalf("ran %d events, want 3", ran)
	}
}

// A handle that survived its event firing must not cancel the new event
// that recycled the pooled slot.
func TestStaleHandleCancelIsNoOp(t *testing.T) {
	e := New()
	stale := e.At(10, func() {})
	if !e.Step() {
		t.Fatal("no event dispatched")
	}
	ran := false
	e.At(20, func() { ran = true }) // reuses the freed slot
	stale.Cancel()
	for e.Step() {
	}
	if !ran {
		t.Fatal("stale Cancel killed the slot's new occupant")
	}
}

func TestZeroEventCancelIsNoOp(t *testing.T) {
	var ev Event
	ev.Cancel() // must not panic
}

func TestTypedCallbacks(t *testing.T) {
	e := New()
	var got []int
	fn := func(arg any) { got = append(got, arg.(int)) }
	e.AtCall(20, fn, 2)
	e.AtCall(10, fn, 1)
	e.AfterCall(30, fn, 3)
	ev := e.AtCall(15, fn, 99)
	ev.Cancel()
	for e.Step() {
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("typed callback order = %v", got)
	}
}

// Steady-state scheduling through the typed-callback path must not
// allocate: nodes come from the free list and small-int payloads use the
// runtime's static boxes.
func TestAfterCallSteadyStateAllocFree(t *testing.T) {
	e := New()
	fn := func(any) {}
	// Warm the pool and the heap backing array.
	for i := 0; i < 64; i++ {
		e.AfterCall(Time(i+1), fn, i%8)
	}
	for e.Step() {
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			e.AfterCall(Time(i+1), fn, i%8)
		}
		for e.Step() {
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state AfterCall allocates %.1f allocs/run, want 0", avg)
	}
}

// Cancel must be O(1): it never reheapifies, only marks. This exercises a
// large queue with heavy cancellation and verifies ordering still holds.
func TestLazyCancelKeepsOrdering(t *testing.T) {
	e := New()
	var got []Time
	var evs []Event
	for i := 0; i < 500; i++ {
		when := Time((i*7919)%1000 + 1)
		evs = append(evs, e.At(when, func() { got = append(got, e.Now()) }))
	}
	for i := 0; i < len(evs); i += 2 {
		evs[i].Cancel()
	}
	if e.Pending() != 250 {
		t.Fatalf("Pending = %d, want 250", e.Pending())
	}
	for e.Step() {
	}
	if len(got) != 250 {
		t.Fatalf("dispatched %d, want 250", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("dispatch order not monotonic under heavy cancellation")
	}
}
