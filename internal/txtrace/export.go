package txtrace

import (
	"encoding/json"
	"fmt"
	"io"

	"odbscale/internal/odb"
	"odbscale/internal/sim"
)

// chromeEvent is one Trace Event Format record (the JSON loaded by
// about:tracing and Perfetto). Durations use complete events (ph "X");
// thread metadata uses ph "M".
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// usPerCycle returns simulated microseconds per cycle.
func (d *Dump) usPerCycle() float64 {
	if d.Meta.FreqHz <= 0 {
		return 1
	}
	return 1e6 / d.Meta.FreqHz
}

// segName labels a segment for the trace viewer.
func segName(s *Segment) string {
	if s.Kind == KindLockWait && int(s.Class) < odb.NumLockClasses {
		return "lock:" + odb.LockClass(s.Class).String()
	}
	return s.Kind.String()
}

// WriteChromeTrace exports the retained traces in Chrome trace-event
// JSON. Timestamps are simulated microseconds; each server process is a
// thread, every sampled transaction is an enclosing slice with its
// segments nested inside it.
func (d *Dump) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(d.Traces)*8)
	us := d.usPerCycle()

	seenProc := map[int]bool{}
	for i := range d.Traces {
		tr := &d.Traces[i]
		if !seenProc[tr.Proc] {
			seenProc[tr.Proc] = true
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: tr.Proc,
				Args: map[string]any{"name": fmt.Sprintf("server proc %d", tr.Proc)},
			})
		}
		b := tr.Breakdown()
		cpu, lock, ioW, busy, queue, other := shares(&b, tr.Latency)
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%s#%d", tr.Name, tr.Seq),
			Cat:  "txn", Ph: "X",
			TS: float64(tr.Start) * us, Dur: float64(tr.Latency) * us,
			PID: 1, TID: tr.Proc,
			Args: map[string]any{
				"seq": tr.Seq, "latency_cycles": tr.Latency,
				"cpu_share": cpu, "lock_share": lock, "io_share": ioW,
				"busy_share": busy, "queue_share": queue, "other_share": other,
			},
		})
		for j := range tr.Segs {
			s := &tr.Segs[j]
			if s.Dur == 0 {
				continue
			}
			ev := chromeEvent{
				Name: segName(s), Cat: "seg", Ph: "X",
				TS: float64(s.Start) * us, Dur: float64(s.Dur) * us,
				PID: 1, TID: tr.Proc,
			}
			if s.Kind == KindCPU {
				args := make(map[string]any, 2)
				args["instr"] = s.Instr
				var attributed sim.Time
				for p, c := range s.Phases {
					if c > 0 {
						args["cycles_"+odb.Phase(p).String()] = c
						attributed += c
					}
				}
				if rem := s.Dur - attributed; rem > 0 {
					args["cycles_other"] = rem
				}
				ev.Args = args
			}
			events = append(events, ev)
		}
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		Metadata        Meta          `json:"metadata"`
	}{TraceEvents: events, DisplayTimeUnit: "ms", Metadata: d.Meta}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("txtrace: encoding chrome trace: %w", err)
	}
	return nil
}
