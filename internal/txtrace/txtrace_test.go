package txtrace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"odbscale/internal/odb"
	"odbscale/internal/sim"
)

// TestProcStateTiling drives one transaction through a realistic chunk
// sequence — generation chunk, a lock block, a preemption, the commit
// chunk — and checks the built segments tile the latency window exactly
// and the breakdown reconstructs it component by component.
func TestProcStateTiling(t *testing.T) {
	tr := NewTracer(Config{HeadEvery: 1, TailK: -1})
	ps := tr.NewProcState(3)

	// Generation chunk: [1000, 1200), 400 total instructions of which
	// 100 are this transaction's parse work.
	ps.Begin(odb.NewOrder, 1000)
	ps.AddInstr(odb.PhaseParse, 100)
	ps.EndChunk(1000, 200, 400)

	// Lock block: ready again at 1350, dispatched at 1500.
	ps.SetBlock(KindLockWait, uint8(odb.LockDistrict))
	ps.StartChunk(1500, 1350)
	ps.AddInstr(odb.PhaseBTree, 300)
	ps.EndChunk(1500, 300, 300)

	// Preemption: requeued at chunk end (readyAt == lastEnd), so the
	// whole gap is run-queue wait.
	ps.StartChunk(2000, 1800)
	ps.EndChunk(2000, 100, 0)

	// Commit chunk: the tracer ends the window at its start time; the
	// commit chunk's own cycles are excluded.
	ps.StartChunk(2300, 2100)
	tr.End(ps, 2300, true)

	d := tr.Dump()
	if len(d.Traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(d.Traces))
	}
	got := d.Traces[0]
	if got.Latency != 1300 || got.Start != 1000 || got.Proc != 3 {
		t.Fatalf("trace window = start %d latency %d proc %d, want 1000/1300/3",
			got.Start, got.Latency, got.Proc)
	}

	want := []Segment{
		{Kind: KindCPU, Start: 1000, Dur: 200, Instr: 100,
			Phases: phaseCycles(odb.PhaseParse, 50)}, // 100*200/400
		{Kind: KindLockWait, Class: uint8(odb.LockDistrict), Start: 1200, Dur: 150},
		{Kind: KindQueue, Start: 1350, Dur: 150},
		{Kind: KindCPU, Start: 1500, Dur: 300, Instr: 300,
			Phases: phaseCycles(odb.PhaseBTree, 300)},
		{Kind: KindQueue, Start: 1800, Dur: 200},
		{Kind: KindCPU, Start: 2000, Dur: 100},
		{Kind: KindQueue, Start: 2100, Dur: 200},
	}
	if !reflect.DeepEqual(got.Segs, want) {
		t.Fatalf("segments:\n got %+v\nwant %+v", got.Segs, want)
	}
	assertTiles(t, &got)

	b := got.Breakdown()
	if b.CPUPhase[odb.PhaseParse] != 50 || b.CPUPhase[odb.PhaseBTree] != 300 {
		t.Errorf("phase cycles parse=%d btree=%d, want 50/300",
			b.CPUPhase[odb.PhaseParse], b.CPUPhase[odb.PhaseBTree])
	}
	if b.CPUOther != 250 || b.Lock[odb.LockDistrict] != 150 || b.Queue != 550 {
		t.Errorf("other=%d lock=%d queue=%d, want 250/150/550",
			b.CPUOther, b.Lock[odb.LockDistrict], b.Queue)
	}
	if b.Total() != got.Latency {
		t.Errorf("breakdown total %d != latency %d", b.Total(), got.Latency)
	}
}

// phaseCycles builds a phase array with one non-zero entry.
func phaseCycles(p odb.Phase, c sim.Time) [odb.NumPhases]sim.Time {
	var out [odb.NumPhases]sim.Time
	out[p] = c
	return out
}

// assertTiles checks the trace's segments cover [Start, Start+Latency)
// contiguously with no gaps or overlaps.
func assertTiles(t *testing.T, tr *Trace) {
	t.Helper()
	at := tr.Start
	for i, s := range tr.Segs {
		if s.Start != at {
			t.Fatalf("seg %d starts at %d, want %d (gap or overlap)", i, s.Start, at)
		}
		at += s.Dur
	}
	if at != tr.Start+tr.Latency {
		t.Fatalf("segments end at %d, want %d", at, tr.Start+tr.Latency)
	}
}

// endSynthetic runs one whole synthetic transaction of the given type
// and latency through the proc state and tracer.
func endSynthetic(tr *Tracer, ps *ProcState, typ odb.TxnType, start, lat sim.Time) {
	ps.Begin(typ, start)
	ps.EndChunk(start, lat, 0)
	tr.End(ps, start+lat, true)
}

// TestTailReservoirKeepsSlowest injects latency outliers at known
// positions and checks the reservoir retains exactly the K slowest of
// each type, regardless of arrival order.
func TestTailReservoirKeepsSlowest(t *testing.T) {
	tr := NewTracer(Config{HeadEvery: -1, TailK: 3})
	ps := tr.NewProcState(0)
	lats := []sim.Time{5, 100, 3, 50, 7, 99, 101, 2, 42, 10}
	var at sim.Time
	for _, lat := range lats {
		endSynthetic(tr, ps, odb.Payment, at, lat)
		at += lat
	}
	d := tr.Dump()
	got := map[sim.Time]bool{}
	for _, x := range d.Traces {
		got[x.Latency] = true
	}
	want := map[sim.Time]bool{101: true, 100: true, 99: true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reservoir latencies %v, want %v", got, want)
	}

	// The aggregates still cover the whole population.
	var stat *TypeStat
	for i := range d.Types {
		if d.Types[i].Type == odb.Payment.String() {
			stat = &d.Types[i]
		}
	}
	if stat == nil || stat.Count != uint64(len(lats)) {
		t.Fatalf("population count = %+v, want %d", stat, len(lats))
	}
}

// TestTailReservoirTies checks equal latencies keep the earliest
// transactions, so the sample set is deterministic.
func TestTailReservoirTies(t *testing.T) {
	tr := NewTracer(Config{HeadEvery: -1, TailK: 2})
	ps := tr.NewProcState(0)
	for i := 0; i < 4; i++ {
		endSynthetic(tr, ps, odb.Delivery, sim.Time(i*100), 10)
	}
	d := tr.Dump()
	if len(d.Traces) != 2 || d.Traces[0].Seq != 0 || d.Traces[1].Seq != 1 {
		t.Fatalf("tie-broken reservoir = %+v, want seqs 0 and 1", d.Traces)
	}
}

// TestTailReservoirPerType checks the reservoir is independent per
// transaction type.
func TestTailReservoirPerType(t *testing.T) {
	tr := NewTracer(Config{HeadEvery: -1, TailK: 1})
	ps := tr.NewProcState(0)
	endSynthetic(tr, ps, odb.NewOrder, 0, 100)
	endSynthetic(tr, ps, odb.Payment, 100, 5)
	endSynthetic(tr, ps, odb.NewOrder, 200, 7)
	d := tr.Dump()
	if len(d.Traces) != 2 {
		t.Fatalf("retained %d traces, want one per type", len(d.Traces))
	}
}

// TestHeadRingKeepsNewest overflows the head ring and checks the newest
// samples survive, in commit order.
func TestHeadRingKeepsNewest(t *testing.T) {
	tr := NewTracer(Config{HeadEvery: 1, HeadCap: 4, TailK: -1})
	ps := tr.NewProcState(0)
	for i := 0; i < 10; i++ {
		endSynthetic(tr, ps, odb.OrderStatus, sim.Time(i*10), 5)
	}
	d := tr.Dump()
	var seqs []uint64
	for _, x := range d.Traces {
		seqs = append(seqs, x.Seq)
	}
	if !reflect.DeepEqual(seqs, []uint64{6, 7, 8, 9}) {
		t.Fatalf("head ring seqs %v, want [6 7 8 9]", seqs)
	}
}

// TestHeadSamplingStride checks HeadEvery keeps exactly every Nth
// measured commit.
func TestHeadSamplingStride(t *testing.T) {
	tr := NewTracer(Config{HeadEvery: 3, TailK: -1})
	ps := tr.NewProcState(0)
	for i := 0; i < 10; i++ {
		endSynthetic(tr, ps, odb.StockLevel, sim.Time(i*10), 5)
	}
	d := tr.Dump()
	var seqs []uint64
	for _, x := range d.Traces {
		seqs = append(seqs, x.Seq)
	}
	if !reflect.DeepEqual(seqs, []uint64{0, 3, 6, 9}) {
		t.Fatalf("head stride seqs %v, want [0 3 6 9]", seqs)
	}
}

// TestWarmupDiscarded checks unmeasured commits neither count nor
// retain.
func TestWarmupDiscarded(t *testing.T) {
	tr := NewTracer(Config{HeadEvery: 1})
	ps := tr.NewProcState(0)
	ps.Begin(odb.NewOrder, 0)
	ps.EndChunk(0, 10, 0)
	tr.End(ps, 10, false)
	if tr.MeasuredTxns() != 0 {
		t.Fatalf("warm-up commit counted: %d", tr.MeasuredTxns())
	}
	if d := tr.Dump(); len(d.Traces) != 0 {
		t.Fatalf("warm-up commit retained: %d traces", len(d.Traces))
	}
}

// TestDumpRoundTrip checks Write/ReadDump reproduce the dump exactly.
func TestDumpRoundTrip(t *testing.T) {
	tr := NewTracer(Config{HeadEvery: 1, TailK: 2})
	tr.SetMeta(Meta{Label: "test", Warehouses: 10, Clients: 8, Processors: 2, Seed: 7, FreqHz: 2e9})
	ps := tr.NewProcState(1)
	for i := 0; i < 5; i++ {
		ps.Begin(odb.Payment, sim.Time(i*1000))
		ps.AddInstr(odb.PhaseBuffer, 40)
		ps.EndChunk(sim.Time(i*1000), 100, 80)
		ps.SetBlock(KindBusyWait, 0)
		ps.StartChunk(sim.Time(i*1000)+300, sim.Time(i*1000)+250)
		tr.End(ps, sim.Time(i*1000)+300, true)
	}
	d := tr.Dump()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, d)
	}
}

// TestDumpDedupsHeadAndTail checks a trace in both sample sets appears
// once in the dump.
func TestDumpDedupsHeadAndTail(t *testing.T) {
	tr := NewTracer(Config{HeadEvery: 1, TailK: 8})
	ps := tr.NewProcState(0)
	endSynthetic(tr, ps, odb.NewOrder, 0, 100)
	if d := tr.Dump(); len(d.Traces) != 1 {
		t.Fatalf("head∩tail trace duplicated: %d entries", len(d.Traces))
	}
}

// TestCriticalPathSums checks the extracted path entries sum to the
// measured latency exactly and come out cost-ordered.
func TestCriticalPathSums(t *testing.T) {
	tr := Trace{Latency: 1300, Segs: []Segment{
		{Kind: KindCPU, Start: 0, Dur: 500, Phases: phaseCycles(odb.PhaseBTree, 450)},
		{Kind: KindLockWait, Class: uint8(odb.LockWarehouse), Start: 500, Dur: 300},
		{Kind: KindIOWait, Start: 800, Dur: 100},
		{Kind: KindQueue, Start: 900, Dur: 400},
	}}
	path := CriticalPath(&tr)
	var total sim.Time
	var share float64
	for i, e := range path {
		total += e.Cycles
		share += e.Share
		if i > 0 && e.Cycles > path[i-1].Cycles {
			t.Fatalf("path not cost-ordered at %d: %+v", i, path)
		}
	}
	if total != tr.Latency {
		t.Fatalf("path cycles sum to %d, want %d", total, tr.Latency)
	}
	if share < 0.999999 || share > 1.000001 {
		t.Fatalf("path shares sum to %g, want 1", share)
	}
	if path[0].Label != "cpu:btree" || path[0].Cycles != 450 {
		t.Fatalf("dominant entry = %+v, want cpu:btree 450", path[0])
	}
}

// TestChromeExportParses checks the export is valid trace-event JSON
// with the expected structure.
func TestChromeExportParses(t *testing.T) {
	tr := NewTracer(Config{HeadEvery: 1})
	tr.SetMeta(Meta{FreqHz: 2e9})
	ps := tr.NewProcState(2)
	ps.Begin(odb.NewOrder, 1000)
	ps.AddInstr(odb.PhaseParse, 50)
	ps.EndChunk(1000, 100, 50)
	ps.SetBlock(KindIOWait, 0)
	ps.StartChunk(1500, 1400)
	tr.End(ps, 1500, true)

	var buf bytes.Buffer
	if err := tr.Dump().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	// Thread metadata + txn slice + 3 segment slices (cpu, io, queue).
	var meta, slices int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			slices++
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta != 1 || slices != 4 {
		t.Fatalf("events = %d metadata + %d slices, want 1 + 4", meta, slices)
	}
}

// TestPoolRecycles checks evicted traces return to the pool and their
// memory is reused rather than reallocated.
func TestPoolRecycles(t *testing.T) {
	tr := NewTracer(Config{HeadEvery: 1, HeadCap: 2, TailK: -1})
	ps := tr.NewProcState(0)
	for i := 0; i < 8; i++ {
		endSynthetic(tr, ps, odb.NewOrder, sim.Time(i*10), 5)
	}
	tr.mu.Lock()
	pooled := len(tr.pool)
	tr.mu.Unlock()
	if pooled == 0 {
		t.Fatal("evicted traces were not recycled to the pool")
	}
}

// TestConfigDefaults checks zero and negative values resolve per the
// documented contract.
func TestConfigDefaults(t *testing.T) {
	got := NewTracer(Config{}).Config()
	want := Config{HeadEvery: DefaultHeadEvery, HeadCap: DefaultHeadCap, TailK: DefaultTailK}
	if got != want {
		t.Fatalf("zero config resolved to %+v, want %+v", got, want)
	}
	got = NewTracer(Config{HeadEvery: -1, HeadCap: -1, TailK: -1}).Config()
	if got.HeadEvery != 0 || got.HeadCap != 0 || got.TailK != 0 {
		t.Fatalf("negative config resolved to %+v, want all disabled", got)
	}
}

// TestStoreRoundTrip checks the per-point store preserves insertion
// order and serves a well-formed /traces payload.
func TestStoreRoundTrip(t *testing.T) {
	st := NewStore(Config{})
	st.Put("W=10,P=1", &Dump{Meta: Meta{Label: "W=10,P=1"}})
	st.Put("W=20,P=1", &Dump{Meta: Meta{Label: "W=20,P=1"}})
	if !reflect.DeepEqual(st.Keys(), []string{"W=10,P=1", "W=20,P=1"}) {
		t.Fatalf("keys = %v", st.Keys())
	}
	if st.Get("W=10,P=1") == nil || st.Get("missing") != nil {
		t.Fatal("Get misbehaves")
	}
	var buf bytes.Buffer
	if err := st.WriteTraces(&buf); err != nil {
		t.Fatal(err)
	}
	var entries []struct {
		Key  string `json:"key"`
		Dump *Dump  `json:"dump"`
	}
	if err := json.Unmarshal(buf.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Key != "W=10,P=1" {
		t.Fatalf("store payload = %+v", entries)
	}
}
