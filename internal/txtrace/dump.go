package txtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"odbscale/internal/odb"
	"odbscale/internal/sim"
)

// TypeStat summarizes every measured transaction of one type — not
// just the sampled ones — so the wait-state report's shares and
// quantiles cover the full population.
type TypeStat struct {
	Type  string `json:"type"`
	Count uint64 `json:"count"`
	// Latency quantiles in cycles, from the per-type log-linear
	// histogram (≤12.5% relative bucket width).
	P50 float64 `json:"p50Cycles"`
	P95 float64 `json:"p95Cycles"`
	P99 float64 `json:"p99Cycles"`
	// Sum is the component-wise total over every measured transaction;
	// SumLatency is the matching latency total, so mean shares are
	// exact ratios.
	Sum        Breakdown `json:"sum"`
	SumLatency sim.Time  `json:"sumLatency"`
}

// Dump is a self-contained snapshot of a tracer: run identity, per-type
// aggregates, and the retained traces sorted by commit order. It is the
// payload of the /traces endpoint, the odbspan trace file, and the
// campaign checkpoint's per-point span record.
type Dump struct {
	Meta   Meta       `json:"meta"`
	Types  []TypeStat `json:"types"`
	Traces []Trace    `json:"traces"`
}

// Dump snapshots the tracer. The traces are deep copies — the tracer's
// pooled memory is never aliased — deduplicated across the head and
// tail sample sets and sorted by commit order.
func (t *Tracer) Dump() *Dump {
	t.mu.Lock()
	defer t.mu.Unlock()

	d := &Dump{Meta: t.meta}
	d.Meta.MeasuredTxns = t.seq

	d.Types = make([]TypeStat, 0, len(t.types))
	for i := range t.types {
		ta := &t.types[i]
		d.Types = append(d.Types, TypeStat{
			Type:       odb.TxnType(i).String(),
			Count:      ta.count,
			P50:        ta.hist.Quantile(0.50),
			P95:        ta.hist.Quantile(0.95),
			P99:        ta.hist.Quantile(0.99),
			Sum:        ta.sum,
			SumLatency: ta.sumLatency,
		})
	}

	retained := make([]*Trace, 0, len(t.heads)+odb.NumTxnTypes*t.cfg.TailK)
	retained = append(retained, t.heads...)
	for i := range t.types {
		for _, tr := range t.types[i].tail {
			if !tr.head { // already in the head set
				retained = append(retained, tr)
			}
		}
	}
	sort.Slice(retained, func(i, j int) bool { return retained[i].Seq < retained[j].Seq })

	d.Traces = make([]Trace, len(retained))
	for i, tr := range retained {
		d.Traces[i] = *tr
		d.Traces[i].Segs = make([]Segment, len(tr.Segs))
		copy(d.Traces[i].Segs, tr.Segs)
		d.Traces[i].head = false
		d.Traces[i].tail = false
	}
	return d
}

// WriteTraces writes the tracer's snapshot as indented JSON — the live
// /traces payload for a single run.
func (t *Tracer) WriteTraces(w io.Writer) error {
	return t.Dump().Write(w)
}

// Write serializes the dump as indented JSON.
func (d *Dump) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("txtrace: encoding dump: %w", err)
	}
	return nil
}

// ReadDump parses a Write result.
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("txtrace: decoding dump: %w", err)
	}
	return &d, nil
}

// Store retains one trace dump per sweep point so a campaign can carry
// span samples through checkpoint/resume. Keys are the campaign's point
// names ("W=10,P=1"); insertion order is preserved.
type Store struct {
	mu    sync.Mutex
	cfg   Config
	keys  []string
	byKey map[string]*Dump
}

// NewStore returns an empty store whose NewTracer builds tracers with
// the given sampling configuration.
func NewStore(cfg Config) *Store {
	return &Store{cfg: cfg.withDefaults(), byKey: map[string]*Dump{}}
}

// NewTracer builds a tracer with the store's sampling configuration.
func (s *Store) NewTracer() *Tracer { return NewTracer(s.cfg) }

// Put stores a point's dump, replacing any previous one.
func (s *Store) Put(key string, d *Dump) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byKey[key]; !ok {
		s.keys = append(s.keys, key)
	}
	s.byKey[key] = d
}

// Get returns the dump stored for key, or nil.
func (s *Store) Get(key string) *Dump {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKey[key]
}

// Keys returns the stored point names in insertion order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.keys))
	copy(out, s.keys)
	return out
}

// WriteTraces writes every stored dump as one JSON array keyed by point
// name — the /traces payload when a campaign is being served.
func (s *Store) WriteTraces(w io.Writer) error {
	s.mu.Lock()
	type entry struct {
		Key  string `json:"key"`
		Dump *Dump  `json:"dump"`
	}
	entries := make([]entry, 0, len(s.keys))
	for _, k := range s.keys {
		entries = append(entries, entry{Key: k, Dump: s.byKey[k]})
	}
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(entries); err != nil {
		return fmt.Errorf("txtrace: encoding store: %w", err)
	}
	return nil
}
