// Package txtrace is the per-transaction span tracer: it records each
// sampled transaction's lifecycle as a tree of simulated-time spans —
// run-queue wait, per-phase CPU, lock wait per lock class, buffer-cache
// miss I/O, buffer busy wait — and retains a deterministic sample of
// them (head sampling by commit counter plus a tail reservoir of the K
// slowest per transaction type, so p99+ outliers are always captured).
//
// The tracer is strictly observational: it draws no randomness,
// schedules no events, and a run with tracing attached is bit-identical
// to a plain run. It is also exact: a retained trace's segments tile
// the transaction's measured latency window with no gaps or overlaps,
// so the wait-state breakdown sums to the measured latency in integer
// cycles.
//
// Time attribution works at chunk granularity, matching the flight
// recorder's latency definition (both endpoints are chunk start times):
// a chunk's CPU segment belongs to the transaction active at the
// chunk's end, the commit chunk is excluded symmetrically with the
// generating chunk's lead-in, and scheduling gaps between chunks split
// at the scheduler's ready timestamp into resource wait (lock, I/O,
// busy) and run-queue wait. Run-queue wait includes the dispatch
// context-switch cost, which runs before the chunk starts.
//
// The package is under the odblint determinism and hot-path allocation
// rules: the per-commit path allocates nothing in steady state — span
// records and segment slices come from pools and are recycled when
// their trace leaves both sample sets.
package txtrace

import (
	"sync"

	"odbscale/internal/odb"
	"odbscale/internal/sim"
	"odbscale/internal/telemetry"
)

// Kind classifies one span segment.
type Kind uint8

// Segment kinds. KindCPU segments carry a per-phase cycle
// apportionment; KindLockWait segments carry the lock class.
const (
	KindCPU Kind = iota
	KindLockWait
	KindIOWait
	KindBusyWait
	KindQueue
	numKinds
)

var kindNames = [numKinds]string{"cpu", "lock", "io", "busy", "queue"}

func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "kind(?)"
}

// Segment is one leaf span: a half-open window [Start, Start+Dur) of
// the transaction's lifecycle, classified by what the transaction was
// doing. CPU segments additionally record the transaction's instruction
// count in the chunk and the chunk cycles apportioned to each engine
// phase; cycles not attributable to a phase (other processes'
// instructions in the chunk, interrupt-context work, rounding) are the
// segment's unattributed remainder.
type Segment struct {
	Kind   Kind                    `json:"kind"`
	Class  uint8                   `json:"class,omitempty"` // lock class for KindLockWait
	Start  sim.Time                `json:"start"`
	Dur    sim.Time                `json:"dur"`
	Instr  uint64                  `json:"instr,omitempty"`
	Phases [odb.NumPhases]sim.Time `json:"phases"`
}

// Trace is one sampled transaction's span tree: the root span is the
// measured latency window [Start, Start+Latency), and Segs are its leaf
// spans in time order, tiling the window exactly.
type Trace struct {
	Type    odb.TxnType `json:"type"`
	Name    string      `json:"name"`
	Seq     uint64      `json:"seq"` // commit order among measured transactions
	Proc    int         `json:"proc"`
	Start   sim.Time    `json:"start"`
	Latency sim.Time    `json:"latency"`
	Segs    []Segment   `json:"segs"`

	head, tail bool // retention flags; a trace may be in both sets
}

// Breakdown decomposes a latency window into wait states: CPU cycles
// per engine phase, unattributed CPU remainder, lock wait per class,
// I/O wait, buffer busy wait and run-queue wait. All fields are integer
// cycles and Total reconstructs the window exactly.
type Breakdown struct {
	CPUPhase [odb.NumPhases]sim.Time      `json:"cpuPhase"`
	CPUOther sim.Time                     `json:"cpuOther"`
	Lock     [odb.NumLockClasses]sim.Time `json:"lock"`
	IO       sim.Time                     `json:"io"`
	Busy     sim.Time                     `json:"busy"`
	Queue    sim.Time                     `json:"queue"`
}

// add accumulates the segments into b.
func (b *Breakdown) add(segs []Segment) {
	for i := range segs {
		s := &segs[i]
		switch s.Kind {
		case KindCPU:
			var attributed sim.Time
			for p, c := range s.Phases {
				b.CPUPhase[p] += c
				attributed += c
			}
			b.CPUOther += s.Dur - attributed
		case KindLockWait:
			if int(s.Class) < odb.NumLockClasses {
				b.Lock[s.Class] += s.Dur
			} else {
				b.CPUOther += s.Dur
			}
		case KindIOWait:
			b.IO += s.Dur
		case KindBusyWait:
			b.Busy += s.Dur
		case KindQueue:
			b.Queue += s.Dur
		}
	}
}

// merge adds o into b component-wise.
func (b *Breakdown) merge(o *Breakdown) {
	for p := range b.CPUPhase {
		b.CPUPhase[p] += o.CPUPhase[p]
	}
	b.CPUOther += o.CPUOther
	for c := range b.Lock {
		b.Lock[c] += o.Lock[c]
	}
	b.IO += o.IO
	b.Busy += o.Busy
	b.Queue += o.Queue
}

// CPU returns the phase-attributed CPU cycles.
func (b *Breakdown) CPU() sim.Time {
	var t sim.Time
	for _, c := range b.CPUPhase {
		t += c
	}
	return t
}

// LockTotal returns the lock-wait cycles summed over classes.
func (b *Breakdown) LockTotal() sim.Time {
	var t sim.Time
	for _, c := range b.Lock {
		t += c
	}
	return t
}

// Total returns the sum of every component — the reconstructed latency.
func (b *Breakdown) Total() sim.Time {
	return b.CPU() + b.CPUOther + b.LockTotal() + b.IO + b.Busy + b.Queue
}

// Breakdown computes the trace's wait-state decomposition. Because the
// segments tile the latency window exactly, the result's Total equals
// Latency in integer cycles.
func (tr *Trace) Breakdown() Breakdown {
	var b Breakdown
	b.add(tr.Segs)
	return b
}

// Config parameterizes the sampler. The zero value means defaults;
// negative values disable the corresponding sample set.
type Config struct {
	// HeadEvery keeps every Nth measured commit (1 = every one,
	// 0 = DefaultHeadEvery, negative = head sampling off).
	HeadEvery int `json:"headEvery"`
	// HeadCap bounds the head sample set; when full the oldest head
	// sample is evicted, so the newest are kept (0 = DefaultHeadCap).
	HeadCap int `json:"headCap"`
	// TailK is the tail reservoir size: the K slowest measured
	// transactions of each type are always retained (0 = DefaultTailK,
	// negative = tail reservoir off).
	TailK int `json:"tailK"`
}

// Sampler defaults.
const (
	DefaultHeadEvery = 64
	DefaultHeadCap   = 512
	DefaultTailK     = 8
)

func (c Config) withDefaults() Config {
	switch {
	case c.HeadEvery == 0:
		c.HeadEvery = DefaultHeadEvery
	case c.HeadEvery < 0:
		c.HeadEvery = 0
	}
	if c.HeadCap == 0 {
		c.HeadCap = DefaultHeadCap
	}
	if c.HeadCap < 0 {
		c.HeadCap = 0
	}
	switch {
	case c.TailK == 0:
		c.TailK = DefaultTailK
	case c.TailK < 0:
		c.TailK = 0
	}
	return c
}

// Meta identifies the traced run.
type Meta struct {
	Label        string  `json:"label,omitempty"`
	Warehouses   int     `json:"warehouses"`
	Clients      int     `json:"clients"`
	Processors   int     `json:"processors"`
	Seed         int64   `json:"seed"`
	FreqHz       float64 `json:"freqHz"`
	HeadEvery    int     `json:"headEvery"`
	HeadCap      int     `json:"headCap"`
	TailK        int     `json:"tailK"`
	MeasuredTxns uint64  `json:"measuredTxns"`
}

// typeAgg accumulates per-type statistics over every measured
// transaction (not just the sampled ones) plus the tail reservoir.
type typeAgg struct {
	count      uint64
	hist       telemetry.Histogram // latency in cycles
	sum        Breakdown
	sumLatency sim.Time
	tail       []*Trace
}

// ProcState is the per-process span builder. It is owned by the
// simulation thread: the system layer calls its methods from the chunk
// execution path without locking, and hands it to Tracer.End at commit.
type ProcState struct {
	proc    int
	active  bool
	typ     odb.TxnType
	start   sim.Time
	lastEnd sim.Time // end of the last priced chunk

	// pend is the block kind recorded when the current chunk blocked;
	// KindCPU means no block is pending (a plain preemption or
	// continuation gap is pure run-queue wait).
	pend      Kind
	pendClass uint8

	segs []Segment

	// Per-chunk instruction scratch: this transaction's instructions in
	// the current chunk, by phase, for the CPU segment's apportionment.
	chunkInstr  uint64
	chunkPhases [odb.NumPhases]uint64
}

// Begin starts a new transaction window at the current chunk's start
// time (latency endpoints are chunk start times, matching the flight
// recorder). The segment scratch from any earlier transaction in the
// same chunk is discarded: its share of the chunk's cycles lands in the
// unattributed remainder.
func (ts *ProcState) Begin(typ odb.TxnType, now sim.Time) {
	ts.active = true
	ts.typ = typ
	ts.start = now
	ts.lastEnd = now
	ts.pend = KindCPU
	ts.segs = ts.segs[:0]
	ts.chunkInstr = 0
	ts.chunkPhases = [odb.NumPhases]uint64{}
}

// AddInstr charges instructions of the current chunk to an engine phase
// on behalf of the active transaction.
func (ts *ProcState) AddInstr(ph odb.Phase, instr uint64) {
	if !ts.active {
		return
	}
	ts.chunkInstr += instr
	ts.chunkPhases[ph] += instr
}

// SetBlock records why the current chunk is blocking; the gap before
// the next chunk will be classified accordingly.
func (ts *ProcState) SetBlock(k Kind, class uint8) {
	if !ts.active {
		return
	}
	ts.pend = k
	ts.pendClass = class
}

// StartChunk classifies the gap since the last chunk end: time up to
// readyAt (clamped into the gap) is the pending block's wait, the rest
// is run-queue wait. readyAt is the scheduler's ready-queue entry
// stamp, so dispatch context-switch cost counts as queue wait.
func (ts *ProcState) StartChunk(now, readyAt sim.Time) {
	if !ts.active {
		return
	}
	r := readyAt
	if r < ts.lastEnd {
		r = ts.lastEnd
	}
	if r > now {
		r = now
	}
	if ts.pend != KindCPU && r > ts.lastEnd {
		ts.segs = append(ts.segs, Segment{Kind: ts.pend, Class: ts.pendClass, Start: ts.lastEnd, Dur: r - ts.lastEnd})
	}
	if now > r {
		ts.segs = append(ts.segs, Segment{Kind: KindQueue, Start: r, Dur: now - r})
	}
	ts.pend = KindCPU
}

// EndChunk closes the chunk that started at start and cost cycles,
// appending the active transaction's CPU segment. The transaction's
// per-phase instruction scratch apportions the chunk's cycles
// (integer floor); the rest of the segment is the unattributed
// remainder picked up by Breakdown.
func (ts *ProcState) EndChunk(start, cycles sim.Time, totalInstr uint64) {
	if ts.active && cycles > 0 {
		seg := Segment{Kind: KindCPU, Start: start, Dur: cycles, Instr: ts.chunkInstr}
		if totalInstr > 0 {
			var attributed sim.Time
			for p := range seg.Phases {
				c := sim.Time(ts.chunkPhases[p] * uint64(cycles) / totalInstr)
				seg.Phases[p] = c
				attributed += c
			}
			// The floor division can only under-attribute, but guard the
			// invariant anyway: phase cycles never exceed the segment.
			if attributed > cycles {
				seg.Phases = [odb.NumPhases]sim.Time{}
			}
		}
		ts.segs = append(ts.segs, seg)
	}
	ts.lastEnd = start + cycles
	ts.chunkInstr = 0
	ts.chunkPhases = [odb.NumPhases]uint64{}
}

// Tracer retains sampled transaction traces and per-type aggregates.
// The simulation thread is the single writer; the live HTTP endpoints
// read consistent snapshots through Dump, serialized by the mutex.
type Tracer struct {
	mu      sync.Mutex
	cfg     Config
	meta    Meta
	seq     uint64 // measured commits so far
	types   [odb.NumTxnTypes]typeAgg
	heads   []*Trace // head-sample ring, oldest at headIdx
	headIdx int
	pool    []*Trace
}

// NewTracer builds a tracer with the given sampling configuration.
func NewTracer(cfg Config) *Tracer {
	return &Tracer{cfg: cfg.withDefaults()}
}

// Config returns the effective (default-resolved) configuration.
func (t *Tracer) Config() Config { return t.cfg }

// SetMeta stamps the run's identity; sampler fields and the measured
// count are filled in by the tracer itself.
func (t *Tracer) SetMeta(meta Meta) {
	t.mu.Lock()
	defer t.mu.Unlock()
	meta.HeadEvery = t.cfg.HeadEvery
	meta.HeadCap = t.cfg.HeadCap
	meta.TailK = t.cfg.TailK
	t.meta = meta
}

// NewProcState returns a fresh per-process span builder.
func (t *Tracer) NewProcState(proc int) *ProcState {
	return &ProcState{proc: proc}
}

// take pops a recycled trace or grows the pool.
func (t *Tracer) take() *Trace {
	if n := len(t.pool); n > 0 {
		tr := t.pool[n-1]
		t.pool = t.pool[:n-1]
		return tr
	}
	//lint:ignore hotalloc pool growth: allocates only until the pool covers the retained-sample working set, steady state recycles evicted traces
	return &Trace{}
}

// release recycles a trace no longer referenced by either sample set.
func (t *Tracer) release(tr *Trace) {
	if tr.head || tr.tail {
		return
	}
	tr.Segs = tr.Segs[:0]
	t.pool = append(t.pool, tr)
}

// End closes the process's active transaction window at now (the commit
// chunk's start time). Warm-up transactions are discarded; measured
// ones feed the per-type aggregates and the deterministic sample sets.
func (t *Tracer) End(ts *ProcState, now sim.Time, measured bool) {
	if ts == nil || !ts.active {
		return
	}
	ts.active = false
	if !measured {
		return
	}
	lat := now - ts.start

	t.mu.Lock()
	defer t.mu.Unlock()
	seq := t.seq
	t.seq++

	ta := &t.types[ts.typ]
	ta.count++
	ta.hist.Observe(uint64(lat))
	ta.sumLatency += lat
	var b Breakdown
	b.add(ts.segs)
	ta.sum.merge(&b)

	keepHead := t.cfg.HeadEvery > 0 && t.cfg.HeadCap > 0 && seq%uint64(t.cfg.HeadEvery) == 0
	// Tail reservoir: keep if the reservoir has room, or the new trace
	// is strictly slower than its slot's current minimum (ties keep the
	// earlier transaction, so the sample set is deterministic).
	evict := -1
	keepTail := false
	if t.cfg.TailK > 0 {
		if len(ta.tail) < t.cfg.TailK {
			keepTail = true
		} else {
			min := 0
			for i := 1; i < len(ta.tail); i++ {
				if ta.tail[i].Latency < ta.tail[min].Latency ||
					(ta.tail[i].Latency == ta.tail[min].Latency && ta.tail[i].Seq > ta.tail[min].Seq) {
					min = i
				}
			}
			if lat > ta.tail[min].Latency {
				keepTail = true
				evict = min
			}
		}
	}
	if !keepHead && !keepTail {
		return
	}

	tr := t.take()
	tr.Type = ts.typ
	tr.Name = ts.typ.String()
	tr.Seq = seq
	tr.Proc = ts.proc
	tr.Start = ts.start
	tr.Latency = lat
	// Slice swap: the trace takes the built segments; the proc state
	// gets the trace's recycled capacity for its next transaction.
	tr.Segs, ts.segs = ts.segs, tr.Segs[:0]

	if keepHead {
		tr.head = true
		if len(t.heads) < t.cfg.HeadCap {
			t.heads = append(t.heads, tr)
		} else {
			old := t.heads[t.headIdx]
			t.heads[t.headIdx] = tr
			t.headIdx = (t.headIdx + 1) % t.cfg.HeadCap
			old.head = false
			t.release(old)
		}
	}
	if keepTail {
		tr.tail = true
		if evict >= 0 {
			old := ta.tail[evict]
			ta.tail[evict] = tr
			old.tail = false
			t.release(old)
		} else {
			ta.tail = append(ta.tail, tr)
		}
	}
}

// MeasuredTxns returns the number of measured commits observed.
func (t *Tracer) MeasuredTxns() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
