package txtrace

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"odbscale/internal/odb"
	"odbscale/internal/sim"
)

// msPerCycle returns the milliseconds per cycle for the dump's machine,
// falling back to 1 (raw cycles) when the meta carries no frequency.
func (d *Dump) msPerCycle() float64 {
	if d.Meta.FreqHz <= 0 {
		return 1
	}
	return 1e3 / d.Meta.FreqHz
}

// shares converts a breakdown into fractional component shares of the
// given total: cpu, lock, io, busy, queue, other (unattributed CPU).
func shares(b *Breakdown, total sim.Time) (cpu, lock, io, busy, queue, other float64) {
	if total == 0 {
		return
	}
	t := float64(total)
	return float64(b.CPU()) / t, float64(b.LockTotal()) / t, float64(b.IO) / t,
		float64(b.Busy) / t, float64(b.Queue) / t, float64(b.CPUOther) / t
}

// WriteReport renders the wait-state breakdown: per transaction type,
// the measured population's latency quantiles and its mean latency
// decomposition into cpu / lock / io / busy / queue / other shares,
// followed by the critical path of the slowest sampled transaction of
// each type.
func (d *Dump) WriteReport(w io.Writer) error {
	m := d.Meta
	fmt.Fprintf(w, "Wait-state breakdown — W=%d C=%d P=%d seed=%d (%d measured txns)\n",
		m.Warehouses, m.Clients, m.Processors, m.Seed, m.MeasuredTxns)
	fmt.Fprintf(w, "sampling: head 1/%d (cap %d) + %d slowest per type; %d traces retained\n\n",
		m.HeadEvery, m.HeadCap, m.TailK, len(d.Traces))

	ms := d.msPerCycle()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "type\tcount\tp50ms\tp95ms\tp99ms\tcpu%\tlock%\tio%\tbusy%\tqueue%\tother%\t")
	var totalSum Breakdown
	var totalLat sim.Time
	var totalCount uint64
	for _, ts := range d.Types {
		if ts.Count == 0 {
			continue
		}
		cpu, lock, io, busy, queue, other := shares(&ts.Sum, ts.SumLatency)
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
			ts.Type, ts.Count, ts.P50*ms, ts.P95*ms, ts.P99*ms,
			cpu*100, lock*100, io*100, busy*100, queue*100, other*100)
		totalSum.merge(&ts.Sum)
		totalLat += ts.SumLatency
		totalCount += ts.Count
	}
	if totalCount > 0 {
		cpu, lock, io, busy, queue, other := shares(&totalSum, totalLat)
		fmt.Fprintf(tw, "all\t%d\t\t\t\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
			totalCount, cpu*100, lock*100, io*100, busy*100, queue*100, other*100)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// One exemplar per type: the slowest sampled transaction's critical
	// path, each entry's decomposition summing to its measured latency.
	for ti := range d.Types {
		var slow *Trace
		for i := range d.Traces {
			tr := &d.Traces[i]
			if tr.Name != d.Types[ti].Type {
				continue
			}
			if slow == nil || tr.Latency > slow.Latency ||
				(tr.Latency == slow.Latency && tr.Seq < slow.Seq) {
				slow = tr
			}
		}
		if slow == nil {
			continue
		}
		fmt.Fprintf(w, "\nslowest %s (seq %d, proc %d): %.3f ms\n",
			slow.Name, slow.Seq, slow.Proc, float64(slow.Latency)*ms)
		for _, e := range CriticalPath(slow) {
			fmt.Fprintf(w, "  %6.1f%%  %10.3f ms  %s\n", e.Share*100, float64(e.Cycles)*ms, e.Label)
		}
	}
	return nil
}

// PathEntry is one critical-path component of a span tree.
type PathEntry struct {
	Label  string   `json:"label"`
	Cycles sim.Time `json:"cycles"`
	Share  float64  `json:"share"`
}

// CriticalPath extracts the trace's critical path. A transaction is a
// single chain of spans, so the critical path is the whole window; the
// extraction aggregates it by component label and orders by cost, which
// answers "what would shortening help most". Entries sum to the
// measured latency exactly.
func CriticalPath(tr *Trace) []PathEntry {
	b := tr.Breakdown()
	entries := make([]PathEntry, 0, int(odb.NumPhases)+odb.NumLockClasses+4)
	add := func(label string, c sim.Time) {
		if c > 0 {
			entries = append(entries, PathEntry{Label: label, Cycles: c})
		}
	}
	for p := range b.CPUPhase {
		add("cpu:"+odb.Phase(p).String(), b.CPUPhase[p])
	}
	add("cpu:other", b.CPUOther)
	for c := range b.Lock {
		add("lock:"+odb.LockClass(c).String(), b.Lock[c])
	}
	add("io", b.IO)
	add("busy", b.Busy)
	add("queue", b.Queue)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Cycles != entries[j].Cycles {
			return entries[i].Cycles > entries[j].Cycles
		}
		return entries[i].Label < entries[j].Label
	})
	if tr.Latency > 0 {
		for i := range entries {
			entries[i].Share = float64(entries[i].Cycles) / float64(tr.Latency)
		}
	}
	return entries
}

// TopSlowest returns up to n retained traces by descending latency
// (ties by commit order).
func (d *Dump) TopSlowest(n int) []*Trace {
	idx := make([]*Trace, len(d.Traces))
	for i := range d.Traces {
		idx[i] = &d.Traces[i]
	}
	sort.Slice(idx, func(i, j int) bool {
		if idx[i].Latency != idx[j].Latency {
			return idx[i].Latency > idx[j].Latency
		}
		return idx[i].Seq < idx[j].Seq
	})
	if n < len(idx) {
		idx = idx[:n]
	}
	return idx
}

// WriteTop renders the n slowest sampled transactions with their
// critical-path head.
func (d *Dump) WriteTop(w io.Writer, n int) error {
	ms := d.msPerCycle()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "seq\ttype\tproc\tlatency ms\tsegs\tdominant\t")
	for _, tr := range d.TopSlowest(n) {
		dom := "-"
		if path := CriticalPath(tr); len(path) > 0 {
			dom = fmt.Sprintf("%s %.1f%%", path[0].Label, path[0].Share*100)
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%.3f\t%d\t%s\t\n",
			tr.Seq, tr.Name, tr.Proc, float64(tr.Latency)*ms, len(tr.Segs), dom)
	}
	return tw.Flush()
}

// WriteDiff compares two dumps per transaction type: latency quantile
// movement and wait-state share deltas. Attribution shifts are
// findings, not failures — callers should report and exit zero.
func WriteDiff(w io.Writer, a, b *Dump) error {
	amap := make(map[string]*TypeStat, len(a.Types))
	for i := range a.Types {
		amap[a.Types[i].Type] = &a.Types[i]
	}
	msA, msB := a.msPerCycle(), b.msPerCycle()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "type\tp99ms A\tp99ms B\tΔcpu%\tΔlock%\tΔio%\tΔbusy%\tΔqueue%\tΔother%\t")
	for i := range b.Types {
		tb := &b.Types[i]
		ta, ok := amap[tb.Type]
		if !ok || ta.Count == 0 || tb.Count == 0 {
			continue
		}
		ac, al, ai, abz, aq, ao := shares(&ta.Sum, ta.SumLatency)
		bc, bl, bi, bbz, bq, bo := shares(&tb.Sum, tb.SumLatency)
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%+.1f\t%+.1f\t%+.1f\t%+.1f\t%+.1f\t%+.1f\t\n",
			tb.Type, ta.P99*msA, tb.P99*msB,
			(bc-ac)*100, (bl-al)*100, (bi-ai)*100, (bbz-abz)*100, (bq-aq)*100, (bo-ao)*100)
	}
	return tw.Flush()
}
