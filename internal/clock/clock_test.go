package clock

import (
	"testing"
	"time"
)

func TestWallAdvances(t *testing.T) {
	c := Wall()
	t0 := c.Now()
	if since := c.Since(t0); since < 0 {
		t.Fatalf("wall clock ran backwards: %v", since)
	}
}

func TestFixedIsFrozen(t *testing.T) {
	at := time.Date(2003, 12, 3, 0, 0, 0, 0, time.UTC) // MICRO-36
	c := Fixed(at)
	if !c.Now().Equal(at) {
		t.Fatalf("Fixed clock reads %v, want %v", c.Now(), at)
	}
	if d := c.Since(at.Add(-time.Hour)); d != time.Hour {
		t.Fatalf("Since on a fixed clock = %v, want 1h", d)
	}
}
