// Package clock is the sanctioned wall-clock funnel for the simulator
// packages. The determinism lint rule (odblint) forbids direct
// time.Now/time.Since calls inside internal/{sim,odb,workload,osker,
// system,campaign}: simulated time must come only from the event
// engine, and the one legitimate use of wall time — observability
// (elapsed-time fields on campaign progress events) — must be
// injectable so tests can fake it. A Clock is that injection point.
package clock

import "time"

// A Clock supplies wall time. A nil Clock is not usable; take Wall()
// as the default, or install a fake in tests.
type Clock func() time.Time

// Wall returns the real wall clock.
func Wall() Clock { return time.Now }

// Now returns the clock's current time.
func (c Clock) Now() time.Time { return c() }

// Since returns the elapsed time between t and the clock's current
// time.
func (c Clock) Since(t time.Time) time.Duration { return c().Sub(t) }

// Fixed returns a clock frozen at t — the simplest test fake.
func Fixed(t time.Time) Clock { return func() time.Time { return t } }
