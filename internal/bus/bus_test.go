package bus

import (
	"math"
	"testing"
	"testing/quick"

	"odbscale/internal/sim"
)

func TestZeroLoadLatency(t *testing.T) {
	b := New(DefaultConfig(), 1)
	lat := b.Transaction(0)
	if lat != 102 {
		t.Fatalf("zero-load latency = %v, want 102", lat)
	}
}

func TestLatencyGrowsWithUtilization(t *testing.T) {
	cfg := DefaultConfig()
	b := New(cfg, 1)
	// Saturate a full window, then roll into the next one.
	var now sim.Time
	for now = 0; now < cfg.WindowCycles; now += 100 {
		b.Transaction(now) // 32 cycles busy per 100 -> ~32% utilization
	}
	lat := b.Transaction(cfg.WindowCycles + 1)
	if lat <= 102 {
		t.Fatalf("loaded latency = %v, want > 102", lat)
	}
	util := b.Utilization()
	if util < 0.25 || util > 0.40 {
		t.Fatalf("utilization = %v, want ~0.32", util)
	}
}

func TestUtilizationCapped(t *testing.T) {
	cfg := DefaultConfig()
	b := New(cfg, 1)
	var now sim.Time
	for now = 0; now < 2*cfg.WindowCycles; now += 10 {
		b.Transaction(now) // would exceed 100%
	}
	if u := b.Utilization(); u > 0.98 {
		t.Fatalf("utilization = %v, want capped at 0.98", u)
	}
	if lat := b.Latency(); math.IsInf(lat, 0) || math.IsNaN(lat) {
		t.Fatalf("latency not finite at saturation: %v", lat)
	}
}

func TestBandwidthScaleReducesOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	slow := New(cfg, 1)
	cfg.BandwidthScale = 1.5
	fast := New(cfg, 1)
	var now sim.Time
	for now = 0; now < cfg.WindowCycles; now += 100 {
		slow.Transaction(now)
		fast.Transaction(now)
	}
	slow.roll(cfg.WindowCycles)
	fast.roll(cfg.WindowCycles)
	if fast.Utilization() >= slow.Utilization() {
		t.Fatalf("faster bus not less utilized: %v >= %v", fast.Utilization(), slow.Utilization())
	}
}

func TestPostedConsumesBandwidthOnly(t *testing.T) {
	b := New(DefaultConfig(), 1)
	b.ResetStats(0)
	b.Posted(0, 128) // 128 lines of DMA
	s := b.StatsAt(1000)
	if s.Transactions != 0 || s.Posted != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BusyCycles == 0 {
		t.Fatal("posted transfer consumed no bandwidth")
	}
	if s.MeanLatency() != 0 {
		t.Fatalf("MeanLatency with no transactions = %v", s.MeanLatency())
	}
}

func TestStatsWindow(t *testing.T) {
	b := New(DefaultConfig(), 1)
	b.ResetStats(1000)
	b.Transaction(2000)
	b.Transaction(3000)
	s := b.StatsAt(11000)
	if s.Transactions != 2 {
		t.Fatalf("Transactions = %d", s.Transactions)
	}
	if s.ElapsedCycles != 10000 {
		t.Fatalf("Elapsed = %v", s.ElapsedCycles)
	}
	if s.Utilization() <= 0 {
		t.Fatal("zero utilization after transactions")
	}
	if s.MeanLatency() < 102 {
		t.Fatalf("MeanLatency = %v", s.MeanLatency())
	}
}

func TestSampleMultiplier(t *testing.T) {
	cfg := DefaultConfig()
	plain := New(cfg, 1)
	sampled := New(cfg, 8)
	var now sim.Time
	for now = 0; now < cfg.WindowCycles; now += 800 {
		plain.Transaction(now)
		sampled.Transaction(now)
	}
	plain.roll(cfg.WindowCycles)
	sampled.roll(cfg.WindowCycles)
	ratio := sampled.Utilization() / math.Max(plain.Utilization(), 1e-12)
	if ratio < 6 || ratio > 10 {
		t.Fatalf("sampled/plain utilization ratio = %v, want ~8", ratio)
	}
}

// Property: latency is monotone in utilization and always at least the
// base latency.
func TestLatencyMonotoneQuick(t *testing.T) {
	f := func(u1, u2 float64) bool {
		clamp := func(u float64) float64 {
			u = math.Abs(u)
			return math.Min(u-math.Floor(u), 0.98) // into [0, 0.98)
		}
		a, bb := clamp(u1), clamp(u2)
		if a > bb {
			a, bb = bb, a
		}
		bus := New(DefaultConfig(), 1)
		bus.util = a
		la := bus.Latency()
		bus.util = bb
		lb := bus.Latency()
		return la >= 102 && lb >= la
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationZeroElapsed(t *testing.T) {
	var s Stats
	if s.Utilization() != 0 {
		t.Fatal("want 0 for zero elapsed")
	}
	s = Stats{BusyCycles: 500, ElapsedCycles: 100}
	if s.Utilization() != 1 {
		t.Fatalf("over-busy utilization = %v, want clamp to 1", s.Utilization())
	}
}
