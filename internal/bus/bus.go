// Package bus models the shared front-side bus and its In-Order Queue
// (IOQ), the mechanism behind the paper's Figure 16: the average time to
// complete a bus transaction once it enters the IOQ is flat (~102 CPU
// cycles) on a lightly loaded 1P system but grows dramatically on 4P as
// utilization approaches 45%, because every L3 miss from every processor
// shares the same address/data path.
//
// Each transaction occupies the data bus for OccupancyCycles; the IOQ
// latency is the zero-load base latency plus an M/G/1-style queueing term
// driven by the utilization observed over the previous window. Writebacks
// and disk DMA occupy bandwidth (raising utilization) without adding a
// direct CPU stall.
package bus

import (
	"odbscale/internal/qstats"
	"odbscale/internal/sim"
)

// Config sets the bus parameters. The defaults model the paper's
// ServerWorks Grand Champion HE chipset with PC200 DDR memory.
type Config struct {
	// OccupancyCycles is the data-bus occupancy per 64-byte transaction,
	// in CPU cycles (3.2 GB/s at 1.6 GHz -> 64 B / 2 B-per-cycle = 32).
	OccupancyCycles float64
	// BaseLatency is the zero-load IOQ transaction time in CPU cycles;
	// the paper measures 102 for the 1P configuration (Table 3).
	BaseLatency float64
	// QueueFactor scales the queueing delay term; larger values model
	// extra arbitration and snoop-stall costs per unit of utilization.
	QueueFactor float64
	// WindowCycles is the utilization-averaging window.
	WindowCycles sim.Time
	// BandwidthScale multiplies effective bandwidth (divides occupancy);
	// the Itanium2 validation platform has ~1.5x the bus bandwidth.
	BandwidthScale float64
}

// DefaultConfig returns the Xeon-platform parameters.
func DefaultConfig() Config {
	return Config{
		OccupancyCycles: 32,
		BaseLatency:     102,
		QueueFactor:     8,
		WindowCycles:    400_000,
		BandwidthScale:  1,
	}
}

// Stats aggregates bus behaviour over the measurement period.
type Stats struct {
	Transactions  uint64  // CPU-stalling transactions (L3 miss fills)
	Posted        uint64  // writebacks and DMA transfers (non-stalling)
	BusyCycles    float64 // total data-bus occupancy
	LatencySum    float64 // sum of IOQ latencies over Transactions
	ElapsedCycles float64 // measurement period length
}

// MeanLatency returns the average IOQ transaction time (Figure 16's
// metric) in CPU cycles.
func (s Stats) MeanLatency() float64 {
	if s.Transactions == 0 {
		return 0
	}
	return s.LatencySum / float64(s.Transactions)
}

// Utilization returns the fraction of cycles the data bus was busy.
func (s Stats) Utilization() float64 {
	if s.ElapsedCycles <= 0 {
		return 0
	}
	u := s.BusyCycles / s.ElapsedCycles
	if u > 1 {
		return 1
	}
	return u
}

// Bus is a shared front-side bus instance.
type Bus struct {
	cfg       Config
	occupancy float64 // effective occupancy after bandwidth scaling

	windowStart sim.Time
	windowBusy  float64
	util        float64 // utilization of the last completed window

	stats      Stats
	resetAt    sim.Time
	sampleMult float64 // each observed transaction stands for this many

	qs *qstats.Station // optional bus service-center accumulator
}

// New builds a bus. sampleMult compensates for cache line sampling: when
// the cache domain simulates 1/N of all lines, every reported transaction
// represents N real ones for utilization purposes.
func New(cfg Config, sampleMult float64) *Bus {
	if cfg.BandwidthScale <= 0 {
		cfg.BandwidthScale = 1
	}
	if sampleMult <= 0 {
		sampleMult = 1
	}
	return &Bus{cfg: cfg, occupancy: cfg.OccupancyCycles / cfg.BandwidthScale, sampleMult: sampleMult}
}

// SetStation attaches the queueing observatory's bus station. The
// station is defined over observed transactions: each one's service is
// its full sampled-up occupancy (matching the BusyCycles ledger, so the
// utilization law closes) and its wait is the IOQ latency beyond the
// zero-load base — the M/G/1 queueing term.
func (b *Bus) SetStation(st *qstats.Station) { b.qs = st }

func (b *Bus) roll(now sim.Time) {
	if b.cfg.WindowCycles == 0 {
		return
	}
	for now >= b.windowStart+b.cfg.WindowCycles {
		b.util = b.windowBusy / float64(b.cfg.WindowCycles)
		if b.util > 0.98 {
			b.util = 0.98
		}
		b.windowBusy = 0
		b.windowStart += b.cfg.WindowCycles
	}
}

func (b *Bus) occupy(now sim.Time, cycles float64) {
	b.roll(now)
	b.windowBusy += cycles
	b.stats.BusyCycles += cycles
}

// Transaction records a CPU-stalling bus transaction (an L3 miss fill)
// entering the IOQ at time now and returns its latency in CPU cycles.
func (b *Bus) Transaction(now sim.Time) float64 {
	b.occupy(now, b.occupancy*b.sampleMult)
	lat := b.Latency()
	b.stats.Transactions++
	b.stats.LatencySum += lat
	if b.qs != nil {
		b.qs.Visit(lat-b.cfg.BaseLatency, b.occupancy*b.sampleMult)
	}
	return lat
}

// Posted records a non-stalling transfer (writeback or DMA) of the given
// number of 64-byte lines; it consumes bandwidth but returns no latency.
func (b *Bus) Posted(now sim.Time, lines float64) {
	b.occupy(now, b.occupancy*lines)
	b.stats.Posted++
	if b.qs != nil {
		b.qs.Visit(0, b.occupancy*lines)
	}
}

// Latency returns the current IOQ transaction time estimate without
// recording a transaction.
func (b *Bus) Latency() float64 {
	u := b.util
	return b.cfg.BaseLatency + b.occupancy*b.cfg.QueueFactor*u/(1-u)
}

// Utilization returns the most recent completed window's utilization.
func (b *Bus) Utilization() float64 { return b.util }

// ResetStats begins a new measurement period at time now.
func (b *Bus) ResetStats(now sim.Time) {
	b.stats = Stats{}
	b.resetAt = now
}

// StatsAt returns the measurement-period statistics as of time now.
func (b *Bus) StatsAt(now sim.Time) Stats {
	s := b.stats
	s.ElapsedCycles = float64(now - b.resetAt)
	return s
}
