package odb

// AccessPlanner turns logical row accesses into the op-stream fragments
// a storage engine executes for them. The transaction bodies in this
// package describe *what* they touch — (table, ordinal) pairs and index
// probes — and the planner owned by the selected engine decides *how*:
// which blocks are read through the buffer cache, which phases the work
// is attributed to, and whether a write lands on a heap page (B-tree
// engine) or in an in-memory buffer (LSM memtable). Planners append to
// the caller's op slice and return it so transaction recycling keeps
// its capacity; they may keep internal scratch but must be deterministic
// functions of their construction-time RNG stream and their inputs.
type AccessPlanner interface {
	// ReadRow plans a read of row (t, ord).
	ReadRow(ops []Op, t TableID, ord uint64) []Op
	// WriteRow plans a read-modify-write of row (t, ord). A non-zero
	// delta is the logical effect applied by the functional engine.
	WriteRow(ops []Op, t TableID, ord uint64, delta int64) []Op
	// IndexLookup plans a secondary-index probe for ordinal ord. Engines
	// without materialized index trees may emit nothing.
	IndexLookup(ops []Op, idx TableID, ord uint64) []Op
}

// BTreePlanner is the paper's engine: heap rows behind a buffer cache,
// secondary lookups as root-to-leaf B-tree descents. It reproduces the
// op streams the transaction bodies emitted before the planner seam
// existed, bit for bit — the engine/btree bit-identity pin depends on
// that.
type BTreePlanner struct {
	L    *Layout
	path []BlockID // index-descent scratch
}

// NewBTreePlanner builds the default planner over layout l.
func NewBTreePlanner(l *Layout) *BTreePlanner { return &BTreePlanner{L: l} }

// ReadRow is a buffer-cache get of the row's heap block.
func (p *BTreePlanner) ReadRow(ops []Op, t TableID, ord uint64) []Op {
	return append(ops, Op{Kind: OpRead, Phase: PhaseBuffer, Block: p.L.Heap(t).Block(ord), Table: t, Ord: ord})
}

// WriteRow is a buffer-cache get plus dirty of the row's heap block.
func (p *BTreePlanner) WriteRow(ops []Op, t TableID, ord uint64, delta int64) []Op {
	return append(ops, Op{Kind: OpWrite, Phase: PhaseBuffer, Block: p.L.Heap(t).Block(ord), Table: t, Ord: ord, Delta: delta})
}

// IndexLookup walks the B-tree from the root to the leaf; every touched
// block is index-descent work.
func (p *BTreePlanner) IndexLookup(ops []Op, idx TableID, ord uint64) []Op {
	p.path = p.L.Index(idx).AppendPath(p.path[:0], ord)
	for _, bl := range p.path {
		ops = append(ops, Op{Kind: OpRead, Phase: PhaseBTree, Block: bl})
	}
	return ops
}
