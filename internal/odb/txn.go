package odb

import (
	"odbscale/internal/xrand"
)

// TxnType enumerates the five ODB transaction types.
type TxnType int

// The ODB transaction mix.
const (
	NewOrder TxnType = iota
	Payment
	OrderStatus
	Delivery
	StockLevel
	numTxnTypes
)

// NumTxnTypes is the size of the TxnType enum, for per-type tables.
const NumTxnTypes = int(numTxnTypes)

var txnNames = [...]string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}

func (t TxnType) String() string { return txnNames[t] }

// MixWeights is the standard transaction mix (percent).
var MixWeights = [numTxnTypes]int{45, 43, 4, 4, 4}

// Phase tags where in the engine an operation's work happens — the
// frames of the cycle-attribution profiler. The first seven are the
// storage-engine phases (statement setup, index descent, buffer-cache
// access, lock-manager traffic, redo generation and commit, memtable
// probes and appends, background compaction); the last three are the
// OS-side phases charged by the system layer through the scheduler
// callbacks (context switching, kernel syscall paths, idle). The
// memtable and compact phases are empty under the B-tree engine and
// carry the LSM engine's in-memory write path and background merges.
type Phase uint8

// Engine and OS phases.
const (
	PhaseParse Phase = iota
	PhaseBTree
	PhaseBuffer
	PhaseLock
	PhaseLogCommit
	PhaseMemtable
	PhaseCompact
	PhaseSched
	PhaseSyscall
	PhaseIdle
	NumPhases
)

var phaseNames = [NumPhases]string{
	"parse", "btree", "buffer", "lock", "logcommit", "memtable", "compact", "sched", "syscall", "idle",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "phase(?)"
}

// PhaseFromString inverts String; unknown names report false.
func PhaseFromString(s string) (Phase, bool) {
	for i, name := range phaseNames {
		if name == s {
			return Phase(i), true
		}
	}
	return 0, false
}

// OpKind enumerates operations in a transaction's execution program.
type OpKind uint8

// Operation kinds.
const (
	OpCompute  OpKind = iota // burn Instr user-mode instructions
	OpRead                   // read Block (buffer cache get)
	OpWrite                  // read-modify-write Block (get + mark dirty)
	OpLock                   // acquire Res, may block
	OpUnlock                 // release Res
	OpLog                    // emit Bytes of redo to the log writer
	OpCommit                 // transaction end: force the log, release CPU
	OpMemWrite               // append Bytes to the engine's in-memory write buffer (LSM memtable)
)

// Op is one step of a transaction program. Instr user instructions of
// compute are charged before the op's action for every kind, modelling
// the code executed between block touches.
type Op struct {
	Kind  OpKind
	Phase Phase // engine phase the op (and its lead-in compute) belongs to
	Block BlockID
	Res   LockID
	Instr uint64
	Bytes int
	// Row-level effect for the functional (payload) engine: add Delta to
	// the counter row (Table, Ord). Zero Delta means no logical effect.
	Table TableID
	Ord   uint64
	Delta int64
}

// Txn is a generated transaction instance.
type Txn struct {
	Type     TxnType
	Home     int // home warehouse (zero-based)
	District int
	Ops      []Op
	UserIPX  uint64 // total user instructions across ops
	LogBytes int
}

// instruction budgets per transaction type (user space). These are the
// flat per-transaction path lengths of the paper's Figure 5 — they do not
// depend on the warehouse count. The mix-weighted mean is ~1.06 M.
var instrBudget = [numTxnTypes]uint64{
	NewOrder:    1_200_000,
	Payment:     850_000,
	OrderStatus: 600_000,
	Delivery:    1_900_000,
	StockLevel:  1_400_000,
}

// logBytesFor gives mean redo bytes per type; the mix average is ~6 KB,
// the paper's reported log volume per transaction.
var logBytesFor = [numTxnTypes]int{
	NewOrder:    9_500,
	Payment:     2_600,
	OrderStatus: 0,
	Delivery:    7_000,
	StockLevel:  0,
}

// Generator produces transaction programs for a fixed layout. Each
// transaction picks a home warehouse uniformly (the workload exercises
// the whole database, as the paper's ODB client population does); a
// small fraction of NewOrder stock updates and Payment customers are
// remote, producing genuine cross-warehouse sharing.
type Generator struct {
	L       *Layout
	rng     *xrand.Rand
	planner AccessPlanner // engine-owned access planner; defaults to BTreePlanner

	item        *xrand.Zipf // item popularity
	nextOrderID []int       // per district, cycling append cursor

	// StockLevelScan bounds the stock-level item scan (the full TPC-C
	// examines 200; the default trims it to keep op streams compact).
	StockLevelScan int

	free []*Txn    // recycled transactions; their Ops capacity is reused
	seen []BlockID // duplicate-block scratch for scan loops
	ob   opBuilder // builder scratch, rebound per Next so no builder escapes
}

// NewGenerator builds a generator over layout l with its own RNG stream.
// Transactions plan their accesses through the default B-tree planner
// until SetPlanner installs an engine-specific one.
func NewGenerator(l *Layout, rng *xrand.Rand) *Generator {
	return &Generator{
		L:              l,
		rng:            rng,
		planner:        NewBTreePlanner(l),
		item:           xrand.NewZipf(rng.Split(101), 1.45, Items),
		nextOrderID:    make([]int, l.Warehouses*DistrictsPerWarehouse),
		StockLevelScan: 60,
	}
}

// SetPlanner installs the storage engine's access planner. A nil planner
// keeps the current one. The generator's own RNG stream is untouched, so
// engines whose planners draw no randomness (B-tree) generate op streams
// bit-identical to the pre-seam generator.
func (g *Generator) SetPlanner(p AccessPlanner) {
	if p != nil {
		g.planner = p
	}
}

// pickType draws a transaction type from the mix.
func (g *Generator) pickType() TxnType {
	v := g.rng.Intn(100)
	acc := 0
	for t := NewOrder; t < numTxnTypes; t++ {
		acc += MixWeights[t]
		if v < acc {
			return t
		}
	}
	return NewOrder
}

// Recycle returns a finished transaction to the generator's pool so the
// next Next reuses its op slice. The caller must not retain txn (or any
// Op pointer into it) afterwards.
func (g *Generator) Recycle(txn *Txn) {
	if txn == nil {
		return
	}
	g.free = append(g.free, txn)
}

// Next generates the next transaction for the given client.
func (g *Generator) Next(client int) *Txn {
	w := g.rng.Intn(g.L.Warehouses)
	_ = client
	d := g.rng.Intn(DistrictsPerWarehouse)
	t := g.pickType()
	var txn *Txn
	if n := len(g.free); n > 0 {
		txn = g.free[n-1]
		g.free = g.free[:n-1]
		*txn = Txn{Type: t, Home: w, District: d, Ops: txn.Ops[:0]}
	} else {
		//lint:ignore hotalloc pool-miss fallback: Recycle warms the free list, steady state reuses transactions
		txn = &Txn{Type: t, Home: w, District: d}
	}
	g.ob = opBuilder{g: g, txn: txn, budget: g.jitter(instrBudget[t])}
	b := &g.ob
	switch t {
	case NewOrder:
		g.newOrder(b, w, d)
	case Payment:
		g.payment(b, w, d)
	case OrderStatus:
		g.orderStatus(b, w, d)
	case Delivery:
		g.delivery(b, w)
	case StockLevel:
		g.stockLevel(b, w, d)
	}
	b.finish()
	return txn
}

// jitter spreads a budget ±15% so transactions are not identical.
func (g *Generator) jitter(n uint64) uint64 {
	f := 0.85 + g.rng.Float64()*0.30
	return uint64(float64(n) * f)
}

// opBuilder accumulates ops and spreads the instruction budget across
// them. Ops accumulate directly into txn.Ops so a recycled transaction's
// capacity is reused.
type opBuilder struct {
	g      *Generator
	txn    *Txn
	budget uint64
}

func (b *opBuilder) add(op Op) { b.txn.Ops = append(b.txn.Ops, op) }

func (b *opBuilder) read(t TableID, ord uint64) {
	b.txn.Ops = b.g.planner.ReadRow(b.txn.Ops, t, ord)
}
func (b *opBuilder) write(t TableID, ord uint64) {
	b.txn.Ops = b.g.planner.WriteRow(b.txn.Ops, t, ord, 0)
}

// writeRow is a write carrying a logical row effect for the payload engine.
func (b *opBuilder) writeRow(t TableID, ord uint64, delta int64) {
	b.txn.Ops = b.g.planner.WriteRow(b.txn.Ops, t, ord, delta)
}

func (b *opBuilder) lock(res LockID)   { b.add(Op{Kind: OpLock, Phase: PhaseLock, Res: res}) }
func (b *opBuilder) unlock(res LockID) { b.add(Op{Kind: OpUnlock, Phase: PhaseLock, Res: res}) }

// indexPath plans a secondary-index probe for ordinal ord.
func (b *opBuilder) indexPath(idx TableID, ord uint64) {
	b.txn.Ops = b.g.planner.IndexLookup(b.txn.Ops, idx, ord)
}

// finish distributes the instruction budget over the ops and appends the
// log write and commit.
func (b *opBuilder) finish() {
	logBytes := 0
	if base := logBytesFor[b.txn.Type]; base > 0 {
		logBytes = int(b.g.jitter(uint64(base)))
		b.add(Op{Kind: OpLog, Phase: PhaseLogCommit, Bytes: logBytes})
	}
	b.add(Op{Kind: OpCommit, Phase: PhaseLogCommit})
	ops := b.txn.Ops
	n := uint64(len(ops))
	per := b.budget / n
	rem := b.budget - per*n
	for i := range ops {
		ops[i].Instr = per
	}
	ops[len(ops)-1].Instr += rem
	b.txn.UserIPX = b.budget
	b.txn.LogBytes = logBytes
}

// containsBlock reports whether bl is already in the (tiny, <=20 entry)
// dedup scratch; a linear scan beats a map at this size and allocates
// nothing.
func containsBlock(s []BlockID, bl BlockID) bool {
	for _, v := range s {
		if v == bl {
			return true
		}
	}
	return false
}

// --- transaction bodies ---

func (g *Generator) newOrder(b *opBuilder, w, d int) {
	l := g.L
	b.read(TableWarehouse, uint64(w))

	dres := LockID{LockDistrict, DistrictOrdinal(w, d)}
	b.lock(dres)
	b.write(TableDistrict, DistrictOrdinal(w, d))

	c := g.rng.NURand(1023, 0, CustomersPerDistrict-1, 259)
	cOrd := CustomerOrdinal(w, d, c)
	b.indexPath(IndexCustomer, cOrd)
	b.read(TableCustomer, cOrd)

	nItems := g.rng.UniformInt(5, 15)
	for i := 0; i < nItems; i++ {
		item := int(g.item.Next())
		b.indexPath(IndexItem, uint64(item))
		b.read(TableItem, uint64(item))
		sw := w
		if l.Warehouses > 1 && g.rng.Bernoulli(0.01) {
			for sw == w {
				sw = g.rng.Intn(l.Warehouses)
			}
		}
		sOrd := StockOrdinal(sw, item)
		b.indexPath(IndexStock, sOrd)
		b.write(TableStock, sOrd)
	}

	// Insert order, new-order and order lines in the district's append
	// region (cycling within the fixed extent).
	perDistrict := OrdersPerWarehouse / DistrictsPerWarehouse
	dOrd := DistrictOrdinal(w, d)
	oid := g.nextOrderID[dOrd]
	g.nextOrderID[dOrd] = (oid + 1) % perDistrict
	oOrd := OrderOrdinal(w, d, oid)
	b.write(TableOrder, oOrd)
	b.indexPath(IndexOrder, oOrd)
	noHeap := l.Heap(TableNewOrder)
	b.write(TableNewOrder, oOrd%noHeap.Rows)
	// Dedup order-line touches by heap block so the B-tree engine writes
	// each block once; the representative ordinal stands in for the run.
	olHeap := l.Heap(TableOrderLine)
	olBase := oOrd * OrderLinesPerOrder
	seen := g.seen[:0]
	for i := 0; i < nItems; i++ {
		ord := (olBase + uint64(i)) % olHeap.Rows
		bl := olHeap.Block(ord)
		if !containsBlock(seen, bl) {
			seen = append(seen, bl)
			b.write(TableOrderLine, ord)
		}
	}
	g.seen = seen
	b.unlock(dres)
}

func (g *Generator) payment(b *opBuilder, w, d int) {
	l := g.L
	amount := int64(g.rng.UniformInt(100, 500000)) // cents

	wres := LockID{LockWarehouse, uint64(w)}
	b.lock(wres)
	b.writeRow(TableWarehouse, uint64(w), amount)

	dres := LockID{LockDistrict, DistrictOrdinal(w, d)}
	b.lock(dres)
	b.writeRow(TableDistrict, DistrictOrdinal(w, d), amount)

	// 15% of payments are for a customer of a remote warehouse.
	cw, cd := w, d
	if l.Warehouses > 1 && g.rng.Bernoulli(0.15) {
		for cw == w {
			cw = g.rng.Intn(l.Warehouses)
		}
		cd = g.rng.Intn(DistrictsPerWarehouse)
	}
	c := g.rng.NURand(1023, 0, CustomersPerDistrict-1, 259)
	cOrd := CustomerOrdinal(cw, cd, c)
	b.indexPath(IndexCustomer, cOrd)
	b.writeRow(TableCustomer, cOrd, -amount)

	hHeap := l.Heap(TableHistory)
	b.write(TableHistory, cOrd%hHeap.Rows)

	b.unlock(dres)
	b.unlock(wres)
}

func (g *Generator) orderStatus(b *opBuilder, w, d int) {
	l := g.L
	c := g.rng.NURand(1023, 0, CustomersPerDistrict-1, 259)
	cOrd := CustomerOrdinal(w, d, c)
	b.indexPath(IndexCustomer, cOrd)
	b.read(TableCustomer, cOrd)

	// OrderStatus reads the customer's most recent order, so the touched
	// order blocks stay within the hot append region.
	perDistrict := OrdersPerWarehouse / DistrictsPerWarehouse
	dOrd := DistrictOrdinal(w, d)
	recent := g.nextOrderID[dOrd]
	oid := recent - 1 - g.rng.Intn(20)
	if oid < 0 {
		oid = 0
	}
	oOrd := OrderOrdinal(w, d, oid%perDistrict)
	b.indexPath(IndexOrder, oOrd)
	b.read(TableOrder, oOrd)
	olHeap := l.Heap(TableOrderLine)
	b.read(TableOrderLine, (oOrd*OrderLinesPerOrder)%olHeap.Rows)
}

func (g *Generator) delivery(b *opBuilder, w int) {
	l := g.L
	perDistrict := OrdersPerWarehouse / DistrictsPerWarehouse
	for d := 0; d < DistrictsPerWarehouse; d++ {
		dOrd := DistrictOrdinal(w, d)
		oid := g.nextOrderID[dOrd]
		oOrd := OrderOrdinal(w, d, oid%perDistrict)
		noHeap := l.Heap(TableNewOrder)
		b.write(TableNewOrder, oOrd%noHeap.Rows)
		b.write(TableOrder, oOrd)
		olHeap := l.Heap(TableOrderLine)
		b.write(TableOrderLine, (oOrd*OrderLinesPerOrder)%olHeap.Rows)
		c := g.rng.NURand(1023, 0, CustomersPerDistrict-1, 259)
		cOrd := CustomerOrdinal(w, d, c)
		b.write(TableCustomer, cOrd)
	}
}

func (g *Generator) stockLevel(b *opBuilder, w, d int) {
	l := g.L
	b.read(TableDistrict, DistrictOrdinal(w, d))
	// Scan recent order lines, then probe the stock of the referenced
	// items. Recently ordered items follow the popularity distribution.
	// The scan dedups by heap block; the representative ordinal stands in
	// for the run.
	olHeap := l.Heap(TableOrderLine)
	perDistrict := OrdersPerWarehouse / DistrictsPerWarehouse
	dOrd := DistrictOrdinal(w, d)
	base := OrderOrdinal(w, d, g.nextOrderID[dOrd]%perDistrict) * OrderLinesPerOrder
	seen := g.seen[:0]
	for i := 0; i < 20; i++ {
		ord := (base + uint64(i)) % olHeap.Rows
		bl := olHeap.Block(ord)
		if !containsBlock(seen, bl) {
			seen = append(seen, bl)
			b.read(TableOrderLine, ord)
		}
	}
	g.seen = seen
	for i := 0; i < g.StockLevelScan; i++ {
		item := int(g.item.Next())
		sOrd := StockOrdinal(w, item)
		b.indexPath(IndexStock, sOrd)
		b.read(TableStock, sOrd)
	}
}
