package odb

import (
	"testing"

	"odbscale/internal/xrand"
)

func TestStoreCounterRoundTrip(t *testing.T) {
	s := NewStore(NewLayout(1), 64)
	s.AddCounter(TableWarehouse, 0, 100)
	s.AddCounter(TableWarehouse, 0, 23)
	if got := s.Counter(TableWarehouse, 0); got != 123 {
		t.Fatalf("counter = %d", got)
	}
	if s.LogLen() != 2 {
		t.Fatalf("log length = %d", s.LogLen())
	}
}

func TestStoreSurvivesEviction(t *testing.T) {
	// A cache of 2 blocks forces dirty evictions between updates.
	s := NewStore(NewLayout(1), 2)
	for i := 0; i < 50; i++ {
		s.AddCounter(TableDistrict, uint64(i%10), 1)
		s.AddCounter(TableStock, uint64(i*37%1000), 1)
	}
	for d := 0; d < 10; d++ {
		if got := s.Counter(TableDistrict, uint64(d)); got != 5 {
			t.Fatalf("district %d = %d, want 5", d, got)
		}
	}
}

func TestCrashWithoutCheckpointRecoversFromRedo(t *testing.T) {
	s := NewStore(NewLayout(1), 64)
	s.AddCounter(TableWarehouse, 0, 500)
	s.AddCounter(TableCustomer, 7, -500)
	s.Crash() // all dirty buffers lost
	if got := s.Counter(TableWarehouse, 0); got != 0 {
		t.Fatalf("pre-recovery counter = %d, want 0 (lost)", got)
	}
	s.Crash() // reset the cache again after peeking
	applied := s.Recover()
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if got := s.Counter(TableWarehouse, 0); got != 500 {
		t.Fatalf("recovered warehouse = %d", got)
	}
	if got := s.Counter(TableCustomer, 7); got != -500 {
		t.Fatalf("recovered customer = %d", got)
	}
}

func TestRecoverIdempotentAfterCheckpoint(t *testing.T) {
	s := NewStore(NewLayout(1), 64)
	s.AddCounter(TableWarehouse, 0, 100)
	s.Checkpoint() // LSN reaches disk
	s.AddCounter(TableWarehouse, 0, 50)
	s.Crash()
	applied := s.Recover()
	// Only the post-checkpoint record needs replay.
	if applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}
	if got := s.Counter(TableWarehouse, 0); got != 150 {
		t.Fatalf("recovered = %d, want 150", got)
	}
	// Running recovery again must change nothing.
	s.Crash()
	if again := s.Recover(); again != 0 {
		t.Fatalf("second recovery applied %d records", again)
	}
	if got := s.Counter(TableWarehouse, 0); got != 150 {
		t.Fatalf("after second recovery = %d", got)
	}
}

func TestApplyTxnMoneyConservation(t *testing.T) {
	// Run a real generated workload through the functional engine; the
	// money moved by payments must balance: sum(warehouse ytd) +
	// sum(district ytd) == -2 * sum(customer balances).
	layout := NewLayout(3)
	s := NewStore(layout, 256)
	g := NewGenerator(layout, xrand.New(11))
	for i := 0; i < 2000; i++ {
		s.ApplyTxn(g.Next(i % 3))
	}
	var wSum, dSum, cSum int64
	for w := 0; w < 3; w++ {
		wSum += s.Counter(TableWarehouse, uint64(w))
		for d := 0; d < DistrictsPerWarehouse; d++ {
			dSum += s.Counter(TableDistrict, DistrictOrdinal(w, d))
		}
	}
	if wSum == 0 {
		t.Fatal("no payments applied")
	}
	if wSum != dSum {
		t.Fatalf("warehouse ytd %d != district ytd %d", wSum, dSum)
	}
	// Customer balances: scan every customer block via counters would be
	// slow; instead recover from scratch and re-check conservation.
	s.Checkpoint()
	s.Crash()
	s.Recover()
	var wSum2 int64
	for w := 0; w < 3; w++ {
		wSum2 += s.Counter(TableWarehouse, uint64(w))
	}
	if wSum2 != wSum {
		t.Fatalf("post-recovery ytd %d != %d", wSum2, wSum)
	}
	_ = cSum
}

func TestCrashRecoveryUnderEvictionPressure(t *testing.T) {
	// With a tiny cache, some updates reach disk via evictions before the
	// crash; recovery must not double-apply them (LSN check).
	layout := NewLayout(1)
	s := NewStore(layout, 2)
	for i := 0; i < 200; i++ {
		s.AddCounter(TableDistrict, uint64(i%10), 1)
		s.AddCounter(TableCustomer, uint64(i*131%30000), 3)
	}
	s.Crash()
	s.Recover()
	for d := 0; d < 10; d++ {
		if got := s.Counter(TableDistrict, uint64(d)); got != 20 {
			t.Fatalf("district %d = %d, want 20", d, got)
		}
	}
}

func TestCheckpointReturnsCount(t *testing.T) {
	s := NewStore(NewLayout(1), 64)
	s.AddCounter(TableWarehouse, 0, 1)
	s.AddCounter(TableDistrict, 3, 1)
	if n := s.Checkpoint(); n != 2 {
		t.Fatalf("checkpointed %d pages, want 2", n)
	}
	if n := s.Checkpoint(); n != 0 {
		t.Fatalf("second checkpoint wrote %d pages", n)
	}
}
