package odb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLockGrantAndRelease(t *testing.T) {
	m := NewLockManager()
	res := LockID{LockDistrict, 5}
	if !m.Acquire(res, 1, nil) {
		t.Fatal("free lock not granted")
	}
	if !m.HeldBy(res, 1) {
		t.Fatal("HeldBy false after grant")
	}
	m.Release(res, 1)
	if m.HeldBy(res, 1) {
		t.Fatal("held after release")
	}
}

func TestLockConflictQueuesFIFO(t *testing.T) {
	m := NewLockManager()
	res := LockID{LockDistrict, 1}
	m.Acquire(res, 1, nil)
	var order []int
	if m.Acquire(res, 2, func() { order = append(order, 2) }) {
		t.Fatal("conflicting acquire granted")
	}
	if m.Acquire(res, 3, func() { order = append(order, 3) }) {
		t.Fatal("conflicting acquire granted")
	}
	if m.Waiters(res) != 2 {
		t.Fatalf("Waiters = %d", m.Waiters(res))
	}
	m.Release(res, 1)
	if len(order) != 1 || order[0] != 2 || !m.HeldBy(res, 2) {
		t.Fatalf("grant order = %v", order)
	}
	m.Release(res, 2)
	if len(order) != 2 || order[1] != 3 || !m.HeldBy(res, 3) {
		t.Fatalf("grant order = %v", order)
	}
	m.Release(res, 3)
	s := m.Stats()
	if s.Acquires != 3 || s.Conflicts != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReacquirePanics(t *testing.T) {
	m := NewLockManager()
	res := LockID{LockWarehouse, 0}
	m.Acquire(res, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	m.Acquire(res, 1, nil)
}

func TestReleaseNotHeldPanics(t *testing.T) {
	m := NewLockManager()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	m.Release(LockID{LockDistrict, 9}, 1)
}

func TestLockIDOrdering(t *testing.T) {
	a := LockID{LockWarehouse, 5}
	b := LockID{LockDistrict, 1}
	if !a.Less(b) {
		t.Fatal("warehouse locks must order before district locks")
	}
	c := LockID{LockDistrict, 2}
	if !b.Less(c) || c.Less(b) {
		t.Fatal("ordinal ordering wrong")
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: at most one holder per resource, and every grant callback
// fires exactly once, in queue order.
func TestSingleHolderQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewLockManager()
		held := map[LockID]int{} // resource -> owner
		owns := map[int][]LockID{}
		waiting := map[int]map[LockID]bool{}
		pendingGrants := 0
		for step := 0; step < 500; step++ {
			owner := rng.Intn(8)
			res := LockID{LockDistrict, uint64(rng.Intn(4))}
			if locks := owns[owner]; len(locks) > 0 && rng.Intn(2) == 0 {
				// Release a random held lock.
				r := locks[rng.Intn(len(locks))]
				m.Release(r, owner)
				// Remove from owns; if a waiter was granted, the grant
				// callback already updated the maps.
				rest := owns[owner][:0]
				for _, x := range owns[owner] {
					if x != r {
						rest = append(rest, x)
					}
				}
				owns[owner] = rest
				if h, ok := held[r]; ok && h == owner {
					delete(held, r)
				}
				continue
			}
			// Skip if this owner already holds or waits on res (the
			// workload never does that).
			if h, ok := held[res]; ok && h == owner {
				continue
			}
			if waiting[owner][res] {
				continue
			}
			if m.Acquire(res, owner, func() {
				held[res] = owner
				owns[owner] = append(owns[owner], res)
				delete(waiting[owner], res)
				pendingGrants--
			}) {
				held[res] = owner
				owns[owner] = append(owns[owner], res)
			} else {
				if waiting[owner] == nil {
					waiting[owner] = map[LockID]bool{}
				}
				waiting[owner][res] = true
				pendingGrants++
			}
			// Invariant: the manager's holder agrees with ours.
			if h, ok := held[res]; ok && !m.HeldBy(res, h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
