package odb

import (
	"fmt"

	"odbscale/internal/buffercache"
)

// BlockID aliases the buffer cache's block naming so the engine and cache
// agree on identities.
type BlockID = buffercache.BlockID

// Btree models the block-access shape of a B-tree index: a root block,
// interior branch levels and a leaf level, sized from the entry count and
// fanout. Only the blocks matter; keys map deterministically onto leaves
// so that co-located keys share leaf blocks exactly as a real index would.
type Btree struct {
	Name    string
	Entries uint64
	Fanout  uint64 // children per branch block
	LeafCap uint64 // entries per leaf block

	base   BlockID  // first block of this index's extent
	levels []uint64 // block count per level, root first
	total  uint64
}

// NewBtree sizes a tree for the given entry count.
func NewBtree(name string, entries, fanout, leafCap uint64) *Btree {
	if entries == 0 || fanout < 2 || leafCap < 1 {
		panic("odb: bad btree geometry for " + name)
	}
	leaves := (entries + leafCap - 1) / leafCap
	levels := []uint64{leaves}
	for levels[0] > 1 {
		next := (levels[0] + fanout - 1) / fanout
		levels = append([]uint64{next}, levels...)
	}
	t := &Btree{Name: name, Entries: entries, Fanout: fanout, LeafCap: leafCap, levels: levels}
	for _, n := range levels {
		t.total += n
	}
	return t
}

// Blocks returns the total block count of the index.
func (t *Btree) Blocks() uint64 { return t.total }

// Height returns the number of levels including the leaf level.
func (t *Btree) Height() int { return len(t.levels) }

// Path returns the root-to-leaf block IDs visited when looking up the
// entry with ordinal position ord (0 <= ord < Entries).
func (t *Btree) Path(ord uint64) []BlockID {
	return t.AppendPath(make([]BlockID, 0, len(t.levels)), ord)
}

// AppendPath appends the root-to-leaf path for ordinal ord to dst and
// returns it, letting per-transaction callers reuse one scratch buffer
// instead of allocating a path per index descent.
func (t *Btree) AppendPath(dst []BlockID, ord uint64) []BlockID {
	if ord >= t.Entries {
		panic(fmt.Sprintf("odb: ordinal %d out of range for %s (%d entries)", ord, t.Name, t.Entries))
	}
	leaf := ord / t.LeafCap
	offset := uint64(0)
	nLeaves := t.levels[len(t.levels)-1]
	for lvl, count := range t.levels {
		// The block at this level covering the leaf, by proportional
		// position (uniform fanout).
		var idx uint64
		if lvl == len(t.levels)-1 {
			idx = leaf
		} else {
			idx = leaf * count / nLeaves
		}
		dst = append(dst, t.base+BlockID(offset+idx))
		offset += count
	}
	return dst
}

// Heap is the block extent of a heap table.
type Heap struct {
	Table TableID
	Rows  uint64
	base  BlockID
	perBl uint64
	total uint64
}

// Block returns the block holding the row with ordinal position ord.
func (h *Heap) Block(ord uint64) BlockID {
	if ord >= h.Rows {
		panic(fmt.Sprintf("odb: row %d out of range for %s (%d rows)", ord, h.Table, h.Rows))
	}
	return h.base + BlockID(ord/h.perBl)
}

// Slot returns the within-block row slot of ordinal ord.
func (h *Heap) Slot(ord uint64) int { return int(ord % h.perBl) }

// RowsPerBlock returns the heap's rows-per-block factor.
func (h *Heap) RowsPerBlock() uint64 { return h.perBl }

// Blocks returns the heap's total block count.
func (h *Heap) Blocks() uint64 { return h.total }

// Layout assigns every table and index a disjoint extent of the block
// address space for a given warehouse count.
type Layout struct {
	Warehouses int
	heaps      map[TableID]*Heap
	trees      map[TableID]*Btree
	next       BlockID
}

// indexGeometry gives fanout and leaf capacity per index.
var indexGeometry = map[TableID]struct{ fanout, leafCap uint64 }{
	IndexCustomer: {400, 160},
	IndexStock:    {400, 200},
	IndexItem:     {400, 250},
	IndexOrder:    {400, 220},
}

// indexEntries returns the entry count of an index for w warehouses.
func indexEntries(t TableID, w int) uint64 {
	switch t {
	case IndexCustomer:
		return uint64(CustomersPerWarehouse) * uint64(w)
	case IndexStock:
		return uint64(StockPerWarehouse) * uint64(w)
	case IndexItem:
		return Items
	case IndexOrder:
		return uint64(OrdersPerWarehouse) * uint64(w)
	}
	panic("odb: not an index: " + t.String())
}

// NewLayout lays out the database for w warehouses.
func NewLayout(w int) *Layout {
	if w < 1 {
		panic("odb: need at least one warehouse")
	}
	l := &Layout{Warehouses: w, heaps: make(map[TableID]*Heap), trees: make(map[TableID]*Btree)}
	for t := TableWarehouse; t <= TableNewOrder; t++ {
		var rows uint64
		if t == TableItem {
			rows = Items
		} else {
			rows = uint64(rowsPerWarehouse[t]) * uint64(w)
		}
		h := &Heap{Table: t, Rows: rows, base: l.next, perBl: uint64(RowsPerBlock(t))}
		h.total = heapBlocks(t, w)
		l.next += BlockID(h.total)
		l.heaps[t] = h
	}
	for t := IndexCustomer; t <= IndexOrder; t++ {
		g := indexGeometry[t]
		bt := NewBtree(t.String(), indexEntries(t, w), g.fanout, g.leafCap)
		bt.base = l.next
		l.next += BlockID(bt.Blocks())
		l.trees[t] = bt
	}
	return l
}

// Heap returns the extent of a heap table.
func (l *Layout) Heap(t TableID) *Heap { return l.heaps[t] }

// TableOf returns the table or index whose extent contains block.
func (l *Layout) TableOf(block BlockID) TableID {
	for t := TableWarehouse; t <= TableNewOrder; t++ {
		h := l.heaps[t]
		if block >= h.base && block < h.base+BlockID(h.total) {
			return t
		}
	}
	for t := IndexCustomer; t <= IndexOrder; t++ {
		bt := l.trees[t]
		if block >= bt.base && block < bt.base+BlockID(bt.total) {
			return t
		}
	}
	panic(fmt.Sprintf("odb: block %d outside every extent", block))
}

// Index returns a B-tree index.
func (l *Layout) Index(t TableID) *Btree { return l.trees[t] }

// TotalBlocks returns the database size in blocks.
func (l *Layout) TotalBlocks() uint64 { return uint64(l.next) }

// SizeMB returns the database size in megabytes.
func (l *Layout) SizeMB() float64 {
	return float64(l.TotalBlocks()) * BlockSize / (1 << 20)
}

// Ordinals for composite keys.

// CustomerOrdinal maps (warehouse, district, customer) to the customer
// heap/index ordinal. Inputs are zero-based.
func CustomerOrdinal(w, d, c int) uint64 {
	return uint64(w)*uint64(CustomersPerWarehouse) + uint64(d)*uint64(CustomersPerDistrict) + uint64(c)
}

// StockOrdinal maps (warehouse, item) to the stock ordinal.
func StockOrdinal(w, i int) uint64 {
	return uint64(w)*uint64(StockPerWarehouse) + uint64(i)
}

// DistrictOrdinal maps (warehouse, district) to the district ordinal.
func DistrictOrdinal(w, d int) uint64 {
	return uint64(w)*uint64(DistrictsPerWarehouse) + uint64(d)
}

// OrderOrdinal maps (warehouse, district, order) to the order ordinal.
func OrderOrdinal(w, d, o int) uint64 {
	perDistrict := OrdersPerWarehouse / DistrictsPerWarehouse
	return uint64(w)*uint64(OrdersPerWarehouse) + uint64(d)*uint64(perDistrict) + uint64(o)
}
