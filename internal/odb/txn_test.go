package odb

import (
	"testing"

	"odbscale/internal/xrand"
)

func testGen(w int, seed int64) *Generator {
	return NewGenerator(NewLayout(w), xrand.New(seed))
}

func TestMixDistribution(t *testing.T) {
	g := testGen(5, 1)
	counts := map[TxnType]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next(i%5).Type]++
	}
	check := func(tt TxnType, want float64) {
		got := float64(counts[tt]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Fatalf("%v frequency = %.3f, want ~%.2f", tt, got, want)
		}
	}
	check(NewOrder, 0.45)
	check(Payment, 0.43)
	check(OrderStatus, 0.04)
	check(Delivery, 0.04)
	check(StockLevel, 0.04)
}

func TestHomeWarehouseCoverage(t *testing.T) {
	// Transactions must exercise every warehouse roughly uniformly: the
	// working set is a property of the database size, not the client
	// count.
	g := testGen(4, 2)
	counts := make([]int, 4)
	const n = 8000
	for i := 0; i < n; i++ {
		counts[g.Next(i%2).Home]++ // only 2 clients, all 4 warehouses
	}
	for w, c := range counts {
		if c < n/8 || c > n/2 {
			t.Fatalf("warehouse %d drew %d of %d", w, c, n)
		}
	}
}

func TestOpsWellFormed(t *testing.T) {
	g := testGen(10, 3)
	total := g.L.TotalBlocks()
	for i := 0; i < 2000; i++ {
		txn := g.Next(i % 10)
		if len(txn.Ops) == 0 {
			t.Fatal("empty transaction")
		}
		if txn.Ops[len(txn.Ops)-1].Kind != OpCommit {
			t.Fatalf("last op = %v, want commit", txn.Ops[len(txn.Ops)-1].Kind)
		}
		locked := map[LockID]bool{}
		var instr uint64
		for _, op := range txn.Ops {
			instr += op.Instr
			switch op.Kind {
			case OpRead, OpWrite:
				if uint64(op.Block) >= total {
					t.Fatalf("block %d outside database (%d)", op.Block, total)
				}
			case OpLock:
				if locked[op.Res] {
					t.Fatalf("double lock of %v", op.Res)
				}
				locked[op.Res] = true
			case OpUnlock:
				if !locked[op.Res] {
					t.Fatalf("unlock of unheld %v", op.Res)
				}
				delete(locked, op.Res)
			}
		}
		if len(locked) != 0 {
			t.Fatalf("%v leaked locks: %v", txn.Type, locked)
		}
		if instr != txn.UserIPX {
			t.Fatalf("instruction sum %d != UserIPX %d", instr, txn.UserIPX)
		}
	}
}

func TestLockOrderingDeadlockFree(t *testing.T) {
	g := testGen(8, 4)
	for i := 0; i < 5000; i++ {
		txn := g.Next(i % 8)
		var last *LockID
		for _, op := range txn.Ops {
			if op.Kind == OpLock {
				op := op
				if last != nil && !last.Less(op.Res) {
					t.Fatalf("%v acquires %v after %v", txn.Type, op.Res, *last)
				}
				last = &op.Res
			}
		}
	}
}

func TestUserIPXFlatAcrossW(t *testing.T) {
	// The paper's Figure 5: user-space path length does not vary with the
	// warehouse count.
	mean := func(w int) float64 {
		g := testGen(w, 5)
		var sum uint64
		const n = 5000
		for i := 0; i < n; i++ {
			sum += g.Next(i % w).UserIPX
		}
		return float64(sum) / n
	}
	small, large := mean(10), mean(400)
	ratio := large / small
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("user IPX not flat: 10W=%.0f 400W=%.0f", small, large)
	}
	if small < 0.8e6 || small > 1.4e6 {
		t.Fatalf("mean user IPX = %.0f, want ~1.06M", small)
	}
}

func TestLogBytesAverageAbout6KB(t *testing.T) {
	g := testGen(20, 6)
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		sum += g.Next(i % 20).LogBytes
	}
	mean := float64(sum) / n
	if mean < 4500 || mean > 7500 {
		t.Fatalf("mean log bytes = %.0f, want ~6000", mean)
	}
}

func TestDistinctBlocksGrowWithW(t *testing.T) {
	// The root cause of the paper's MPI growth: the union of blocks
	// touched grows with the warehouse count.
	distinct := func(w int) int {
		g := testGen(w, 7)
		seen := map[BlockID]bool{}
		for i := 0; i < 3000; i++ {
			for _, op := range g.Next(i % w).Ops {
				if op.Kind == OpRead || op.Kind == OpWrite {
					seen[op.Block] = true
				}
			}
		}
		return len(seen)
	}
	small, large := distinct(10), distinct(200)
	if large < 2*small {
		t.Fatalf("distinct blocks: 10W=%d 200W=%d, want strong growth", small, large)
	}
}

func TestNewOrderTouchesDistrictUnderLock(t *testing.T) {
	g := testGen(2, 8)
	for i := 0; i < 200; i++ {
		txn := g.Next(0)
		if txn.Type != NewOrder {
			continue
		}
		seenLock := false
		districtWrite := false
		for _, op := range txn.Ops {
			if op.Kind == OpLock && op.Res.Class == LockDistrict {
				seenLock = true
			}
			if op.Kind == OpWrite && seenLock && !districtWrite {
				districtWrite = true
			}
		}
		if !seenLock || !districtWrite {
			t.Fatal("NewOrder missing district lock/write")
		}
		return
	}
	t.Fatal("no NewOrder generated in 200 draws")
}

func TestPaymentCarriesRowEffects(t *testing.T) {
	g := testGen(2, 9)
	for i := 0; i < 500; i++ {
		txn := g.Next(0)
		if txn.Type != Payment {
			continue
		}
		var sum int64
		effects := 0
		for _, op := range txn.Ops {
			if op.Delta != 0 {
				effects++
				sum += op.Delta
			}
		}
		// warehouse +amt, district +amt, customer -amt.
		if effects != 3 || sum == 0 {
			t.Fatalf("payment effects = %d, sum = %d", effects, sum)
		}
		return
	}
	t.Fatal("no Payment generated")
}

func TestStockLevelScanConfigurable(t *testing.T) {
	g := testGen(2, 10)
	g.StockLevelScan = 5
	for i := 0; i < 500; i++ {
		txn := g.Next(0)
		if txn.Type == StockLevel {
			reads := 0
			for _, op := range txn.Ops {
				if op.Kind == OpRead {
					reads++
				}
			}
			if reads > 60 {
				t.Fatalf("trimmed stock level still reads %d blocks", reads)
			}
			return
		}
	}
	t.Fatal("no StockLevel generated")
}

func TestTxnTypeString(t *testing.T) {
	if NewOrder.String() != "NewOrder" || StockLevel.String() != "StockLevel" {
		t.Fatal("names wrong")
	}
}
