package odb

import (
	"encoding/binary"
	"fmt"
	"sort"

	"odbscale/internal/buffercache"
)

// Store is the functional (payload-mode) storage engine: real 8 KB pages
// behind a buffer cache, a persistent block image, and a physical redo
// log with LSNs. It executes the row-level effects carried on transaction
// ops, survives crashes that lose every dirty buffer, and recovers by
// replaying redo — the same write-ahead discipline the paper's log-writer
// process provides for ODB.
//
// Page format: bytes [0,8) hold the page LSN; row slot s occupies bytes
// [8+8s, 16+8s) as a big-endian int64 counter. Only counter rows are
// materialized — enough to express the monetary invariants the recovery
// tests check.
type Store struct {
	L     *Layout
	cache *buffercache.Cache
	disk  map[BlockID][]byte
	redo  []RedoRecord
	lsn   uint64
}

// RedoRecord is one physical redo entry.
type RedoRecord struct {
	LSN   uint64
	Block BlockID
	Slot  int
	Delta int64
}

const pageHeader = 8

// NewStore builds a store over layout l with a buffer cache of the given
// block capacity.
func NewStore(l *Layout, cacheBlocks int) *Store {
	return &Store{
		L: l,
		cache: buffercache.New(buffercache.Config{
			Blocks:    cacheBlocks,
			BlockSize: BlockSize,
			Payloads:  true,
		}),
		disk: make(map[BlockID][]byte),
	}
}

// Cache exposes the underlying buffer cache (for statistics).
func (s *Store) Cache() *buffercache.Cache { return s.cache }

// LogLen returns the redo log length.
func (s *Store) LogLen() int { return len(s.redo) }

// pin returns the entry for block, faulting it in from disk if needed.
func (s *Store) pin(block BlockID) *buffercache.Entry {
	if e := s.cache.Lookup(block); e != nil {
		return e
	}
	e, ev := s.cache.Install(block)
	if img, ok := s.disk[block]; ok {
		copy(e.Data, img)
	} else {
		for i := range e.Data {
			e.Data[i] = 0
		}
	}
	if ev.Valid && ev.Dirty {
		s.flushPage(ev.ID, ev.Data)
	}
	return e
}

func (s *Store) flushPage(id BlockID, data []byte) {
	img := make([]byte, len(data))
	copy(img, data)
	s.disk[id] = img
}

func pageLSN(p []byte) uint64       { return binary.BigEndian.Uint64(p[:pageHeader]) }
func setPageLSN(p []byte, v uint64) { binary.BigEndian.PutUint64(p[:pageHeader], v) }
func slotOffset(slot int) int       { return pageHeader + slot*8 }
func slotValue(p []byte, s int) int64 {
	return int64(binary.BigEndian.Uint64(p[slotOffset(s) : slotOffset(s)+8]))
}
func setSlotValue(p []byte, s int, v int64) {
	binary.BigEndian.PutUint64(p[slotOffset(s):slotOffset(s)+8], uint64(v))
}

// AddCounter applies delta to the row counter (t, ord), logging redo
// before the page is unpinned (write-ahead).
func (s *Store) AddCounter(t TableID, ord uint64, delta int64) {
	h := s.L.Heap(t)
	block := h.Block(ord)
	slot := h.Slot(ord)
	if slotOffset(slot)+8 > BlockSize {
		panic(fmt.Sprintf("odb: slot %d overflows page for %v", slot, t))
	}
	e := s.pin(block)
	s.lsn++
	s.redo = append(s.redo, RedoRecord{LSN: s.lsn, Block: block, Slot: slot, Delta: delta})
	setSlotValue(e.Data, slot, slotValue(e.Data, slot)+delta)
	setPageLSN(e.Data, s.lsn)
	s.cache.MarkDirty(e)
	s.cache.Release(e)
}

// Counter reads the current value of the row counter (t, ord).
func (s *Store) Counter(t TableID, ord uint64) int64 {
	h := s.L.Heap(t)
	e := s.pin(h.Block(ord))
	v := slotValue(e.Data, h.Slot(ord))
	s.cache.Release(e)
	return v
}

// ApplyTxn executes the row-level effects of a transaction program.
func (s *Store) ApplyTxn(t *Txn) {
	for i := range t.Ops {
		op := &t.Ops[i]
		if op.Kind == OpWrite && op.Delta != 0 {
			s.AddCounter(op.Table, op.Ord, op.Delta)
		}
	}
}

// Checkpoint writes every dirty page to the persistent image.
func (s *Store) Checkpoint() int {
	ids := s.cache.CleanAllDirty()
	for _, id := range ids {
		e := s.cache.Lookup(id)
		if e == nil {
			panic("odb: cleaned block vanished")
		}
		s.flushPage(id, e.Data)
		s.cache.Release(e)
	}
	return len(ids)
}

// Crash simulates an instant failure: every buffered page — clean or
// dirty — is lost; only the persistent image and the redo log survive.
func (s *Store) Crash() {
	s.cache = buffercache.New(buffercache.Config{
		Blocks:    s.cache.Capacity(),
		BlockSize: BlockSize,
		Payloads:  true,
	})
}

// Recover replays the redo log against the persistent image, skipping
// records already reflected in a page's LSN, and returns the number of
// records applied.
func (s *Store) Recover() int {
	// Replay in LSN order (the log is already ordered, but be explicit).
	recs := make([]RedoRecord, len(s.redo))
	copy(recs, s.redo)
	sort.Slice(recs, func(i, j int) bool { return recs[i].LSN < recs[j].LSN })
	applied := 0
	for _, r := range recs {
		img, ok := s.disk[r.Block]
		if !ok {
			img = make([]byte, BlockSize)
			s.disk[r.Block] = img
		}
		if pageLSN(img) >= r.LSN {
			continue
		}
		setSlotValue(img, r.Slot, slotValue(img, r.Slot)+r.Delta)
		setPageLSN(img, r.LSN)
		applied++
	}
	return applied
}
