package odb

import "fmt"

// LockClass distinguishes lockable resource types. Ordering matters:
// transactions acquire locks in increasing (class, ordinal) order, which
// makes deadlock impossible.
type LockClass uint8

// Lock classes used by the workload.
const (
	LockWarehouse LockClass = iota
	LockDistrict

	// NumLockClasses bounds the class enum for per-class accounting.
	NumLockClasses = int(iota)
)

// String names the lock class for reports and trace exports.
func (c LockClass) String() string {
	switch c {
	case LockWarehouse:
		return "warehouse"
	case LockDistrict:
		return "district"
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// LockID names one lockable resource.
type LockID struct {
	Class LockClass
	Ord   uint64
}

func (l LockID) String() string { return fmt.Sprintf("%d/%d", l.Class, l.Ord) }

// Less orders LockIDs for the deadlock-free acquisition order.
func (l LockID) Less(o LockID) bool {
	if l.Class != o.Class {
		return l.Class < o.Class
	}
	return l.Ord < o.Ord
}

type lockState struct {
	owner   int
	held    bool
	waiters []waiter
}

type waiter struct {
	owner int
	grant func()
}

// LockStats counts lock manager events.
type LockStats struct {
	Acquires  uint64
	Conflicts uint64 // acquisitions that had to wait
}

// LockManager is an exclusive-mode lock table with FIFO waiters. Owners
// are process identifiers; the grant callback runs when a blocked request
// is eventually granted (the scheduler uses it to wake the process).
type LockManager struct {
	locks map[LockID]*lockState
	free  []*lockState // recycled states; Release parks them, Acquire reuses
	stats LockStats
}

// NewLockManager returns an empty lock table.
func NewLockManager() *LockManager {
	return &LockManager{locks: make(map[LockID]*lockState)}
}

// Acquire requests res for owner. If the lock is free it is granted
// immediately and Acquire reports true; otherwise the request queues and
// grant runs later, after which the lock belongs to owner.
func (m *LockManager) Acquire(res LockID, owner int, grant func()) bool {
	m.stats.Acquires++
	st, ok := m.locks[res]
	if !ok {
		if n := len(m.free); n > 0 {
			st = m.free[n-1]
			m.free = m.free[:n-1]
		} else {
			//lint:ignore hotalloc pool growth: allocates only until the free list covers peak concurrent locks, steady state recycles
			st = &lockState{}
		}
		m.locks[res] = st
	}
	if !st.held {
		st.held = true
		st.owner = owner
		return true
	}
	if st.owner == owner {
		panic(fmt.Sprintf("odb: owner %d re-acquiring lock %v", owner, res))
	}
	m.stats.Conflicts++
	st.waiters = append(st.waiters, waiter{owner: owner, grant: grant})
	return false
}

// Release frees res, granting it to the first waiter if any.
func (m *LockManager) Release(res LockID, owner int) {
	st, ok := m.locks[res]
	if !ok || !st.held || st.owner != owner {
		panic(fmt.Sprintf("odb: release of lock %v not held by %d", res, owner))
	}
	if len(st.waiters) == 0 {
		st.held = false
		delete(m.locks, res)
		m.free = append(m.free, st) // waiters capacity rides along
		return
	}
	next := st.waiters[0]
	st.waiters = st.waiters[1:]
	st.owner = next.owner
	next.grant()
}

// HeldBy reports whether res is currently held by owner.
func (m *LockManager) HeldBy(res LockID, owner int) bool {
	st, ok := m.locks[res]
	return ok && st.held && st.owner == owner
}

// Waiters returns the queue length on res.
func (m *LockManager) Waiters(res LockID) int {
	if st, ok := m.locks[res]; ok {
		return len(st.waiters)
	}
	return 0
}

// Stats returns the counters.
func (m *LockManager) Stats() LockStats { return m.stats }

// ResetStats zeroes the counters.
func (m *LockManager) ResetStats() { m.stats = LockStats{} }
