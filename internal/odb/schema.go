// Package odb implements the Oracle Database Benchmark workload used by
// the paper: a TPC-C-like order-entry database where each warehouse
// supplies ten sales districts of three thousand customers, and clients
// run a mix of NewOrder, Payment, OrderStatus, Delivery and StockLevel
// transactions.
//
// The engine is built in two layers. The logical layer (schema, block
// layout, B-tree access paths, lock manager, transaction generator)
// produces, for any configured warehouse count, the exact sequence of
// block reads and writes, lock acquisitions, user-mode instruction
// budgets and redo bytes each transaction performs; the system simulator
// executes those operation streams against the buffer cache, disks and
// CPUs. The physical layer (store.go) optionally gives blocks real 8 KB
// payloads with row slots and a redo log with crash recovery, making the
// engine a genuinely functional small-scale database.
package odb

import "fmt"

// Block geometry. The paper's Oracle setup uses 8 KB database blocks and
// reports disk traffic in 1 KB units.
const (
	BlockSize   = 8192
	BlockSizeKB = BlockSize / 1024
)

// Cardinalities per warehouse, following the ODB/TPC-C schema the paper
// describes: ten districts per warehouse, three thousand customers per
// district.
const (
	DistrictsPerWarehouse = 10
	CustomersPerDistrict  = 3000
	CustomersPerWarehouse = DistrictsPerWarehouse * CustomersPerDistrict
	StockPerWarehouse     = 100_000
	OrdersPerWarehouse    = CustomersPerWarehouse
	OrderLinesPerOrder    = 10
	Items                 = 100_000 // shared across all warehouses
)

// TableID identifies a table or index in the layout.
type TableID int

// The tables and indices of the ODB schema.
const (
	TableWarehouse TableID = iota
	TableDistrict
	TableCustomer
	TableStock
	TableItem
	TableOrder
	TableOrderLine
	TableHistory
	TableNewOrder
	IndexCustomer // (w, d, c) -> customer row
	IndexStock    // (w, i) -> stock row
	IndexItem     // (i) -> item row
	IndexOrder    // (w, d, o) -> order row
	numTables
)

// NumHeapTables is the number of heap tables (TableWarehouse through
// TableNewOrder), for engine-side per-table arrays.
const NumHeapTables = int(IndexCustomer)

var tableNames = [...]string{
	"warehouse", "district", "customer", "stock", "item",
	"order", "orderline", "history", "neworder",
	"customer_idx", "stock_idx", "item_idx", "order_idx",
}

func (t TableID) String() string {
	if int(t) < len(tableNames) {
		return tableNames[t]
	}
	return fmt.Sprintf("table(%d)", int(t))
}

// rowBytes gives approximate row sizes; together with the cardinalities
// they make one warehouse about 100 MB including indices, matching the
// paper's Section 3.1.
var rowBytes = map[TableID]int{
	TableWarehouse: 96,
	TableDistrict:  112,
	TableCustomer:  680,
	TableStock:     320,
	TableItem:      88,
	TableOrder:     32,
	TableOrderLine: 56,
	TableHistory:   48,
	TableNewOrder:  16,
}

// rowsPerWarehouse gives heap cardinality per warehouse (TableItem is
// global and handled separately).
var rowsPerWarehouse = map[TableID]int{
	TableWarehouse: 1,
	TableDistrict:  DistrictsPerWarehouse,
	TableCustomer:  CustomersPerWarehouse,
	TableStock:     StockPerWarehouse,
	TableOrder:     OrdersPerWarehouse,
	TableOrderLine: OrdersPerWarehouse * OrderLinesPerOrder,
	TableHistory:   CustomersPerWarehouse,
	TableNewOrder:  OrdersPerWarehouse * 3 / 10,
}

// RowBytes returns the approximate row size of heap table t; engines use
// it to convert logical row writes into byte volumes (LSM memtable
// appends, write-amplification accounting). Panics for index tables.
func RowBytes(t TableID) int {
	b, ok := rowBytes[t]
	if !ok {
		panic("odb: not a heap table: " + t.String())
	}
	return b
}

// RowsPerBlock returns how many rows of table t fit in one block.
func RowsPerBlock(t TableID) int {
	b, ok := rowBytes[t]
	if !ok {
		panic("odb: not a heap table: " + t.String())
	}
	n := BlockSize / b
	if n < 1 {
		n = 1
	}
	return n
}

// heapBlocks returns the number of blocks table t occupies for w warehouses.
func heapBlocks(t TableID, w int) uint64 {
	var rows int
	if t == TableItem {
		rows = Items
	} else {
		rows = rowsPerWarehouse[t] * w
	}
	per := RowsPerBlock(t)
	return uint64((rows + per - 1) / per)
}
