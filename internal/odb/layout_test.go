package odb

import (
	"testing"
	"testing/quick"

	"odbscale/internal/xrand"
)

func TestWarehouseSizeAbout100MB(t *testing.T) {
	// The paper: one warehouse is about 100 MB including indices. Compare
	// the marginal size of adding warehouses (the shared item table is a
	// constant offset).
	small := NewLayout(10)
	big := NewLayout(110)
	perW := (big.SizeMB() - small.SizeMB()) / 100
	if perW < 70 || perW > 130 {
		t.Fatalf("marginal warehouse size = %.1f MB, want ~100", perW)
	}
}

func TestLayoutDisjointExtents(t *testing.T) {
	l := NewLayout(3)
	total := l.TotalBlocks()
	sum := uint64(0)
	for tb := TableWarehouse; tb <= TableNewOrder; tb++ {
		sum += l.Heap(tb).Blocks()
	}
	for idx := IndexCustomer; idx <= IndexOrder; idx++ {
		sum += l.Index(idx).Blocks()
	}
	if sum != total {
		t.Fatalf("extent sum %d != total %d", sum, total)
	}
}

func TestHeapBlockMapping(t *testing.T) {
	l := NewLayout(2)
	h := l.Heap(TableCustomer)
	per := h.RowsPerBlock()
	if h.Block(0) != h.Block(per-1) {
		t.Fatal("rows in same block mapped differently")
	}
	if h.Block(per-1) == h.Block(per) {
		t.Fatal("rows across block boundary mapped together")
	}
	if h.Slot(per+3) != 3 {
		t.Fatalf("Slot = %d", h.Slot(per+3))
	}
}

func TestHeapOutOfRangePanics(t *testing.T) {
	l := NewLayout(1)
	h := l.Heap(TableWarehouse)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	h.Block(h.Rows)
}

func TestBtreeShape(t *testing.T) {
	bt := NewBtree("t", 1_000_000, 400, 200)
	// 5000 leaves, 13 branch, 1 root -> height 3.
	if bt.Height() != 3 {
		t.Fatalf("height = %d", bt.Height())
	}
	if bt.Blocks() != 5000+13+1 {
		t.Fatalf("blocks = %d", bt.Blocks())
	}
}

func TestBtreeSingleLeaf(t *testing.T) {
	bt := NewBtree("t", 10, 400, 200)
	if bt.Height() != 1 || bt.Blocks() != 1 {
		t.Fatalf("tiny tree: height %d blocks %d", bt.Height(), bt.Blocks())
	}
	p := bt.Path(5)
	if len(p) != 1 {
		t.Fatalf("path = %v", p)
	}
}

// Property: every path starts at the root, has length Height, visits one
// block per level within that level's extent, and nearby ordinals share
// upper-level blocks.
func TestBtreePathQuick(t *testing.T) {
	bt := NewBtree("t", 500_000, 400, 200)
	root := bt.Path(0)[0]
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		ord := uint64(rng.Intn(500_000))
		p := bt.Path(ord)
		if len(p) != bt.Height() || p[0] != root {
			return false
		}
		// Same-leaf ordinals produce identical paths.
		ord2 := ord - ord%200
		p2 := bt.Path(ord2)
		for i := range p {
			if p[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBtreePathOutOfRangePanics(t *testing.T) {
	bt := NewBtree("t", 100, 400, 200)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	bt.Path(100)
}

func TestOrdinalHelpers(t *testing.T) {
	if CustomerOrdinal(0, 0, 0) != 0 {
		t.Fatal("first customer not ordinal 0")
	}
	if CustomerOrdinal(1, 0, 0) != uint64(CustomersPerWarehouse) {
		t.Fatal("warehouse stride wrong")
	}
	if DistrictOrdinal(2, 3) != 23 {
		t.Fatalf("DistrictOrdinal = %d", DistrictOrdinal(2, 3))
	}
	if StockOrdinal(1, 5) != uint64(StockPerWarehouse+5) {
		t.Fatal("StockOrdinal stride wrong")
	}
	if OrderOrdinal(0, 1, 0) != uint64(OrdersPerWarehouse/DistrictsPerWarehouse) {
		t.Fatal("OrderOrdinal stride wrong")
	}
}

func TestLayoutGrowsLinearly(t *testing.T) {
	l1 := NewLayout(100)
	l2 := NewLayout(200)
	ratio := float64(l2.TotalBlocks()) / float64(l1.TotalBlocks())
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("200W/100W block ratio = %v, want ~2", ratio)
	}
}

func TestBadLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewLayout(0)
}

func TestTableNames(t *testing.T) {
	if TableCustomer.String() != "customer" || IndexOrder.String() != "order_idx" {
		t.Fatal("table names wrong")
	}
	if TableID(99).String() == "" {
		t.Fatal("unknown table empty name")
	}
}

func TestRowsPerBlockPanicsOnIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	RowsPerBlock(IndexStock)
}
