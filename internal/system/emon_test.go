package system

import (
	"math"
	"testing"

	"odbscale/internal/perfmon"
)

func emonConfig() perfmon.Config {
	// Short windows keep the test fast: 20 ms per group, 4 repeats.
	cfg := perfmon.DefaultConfig(1.6e9)
	cfg.Window = 1.6e9 / 50
	cfg.Repeats = 4
	return cfg
}

func TestRunEMONSamplesRates(t *testing.T) {
	cfg := fastConfig(40, 12, 4)
	cfg.MeasureTxns = 800
	m, results, err := RunEMON(cfg, emonConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Txns < 800 {
		t.Fatalf("only %d transactions measured", m.Txns)
	}
	byEvent := map[perfmon.Event]perfmon.Result{}
	for _, r := range results {
		byEvent[r.Event] = r
	}
	// The sampled L3 miss rate must agree with the exact bookkeeping
	// within sampling error (windows see different phases of execution).
	l3 := byEvent[perfmon.L3Miss]
	if len(l3.Samples) == 0 {
		t.Fatal("no L3 samples")
	}
	if rel := math.Abs(l3.Mean-m.MPI) / m.MPI; rel > 0.25 {
		t.Fatalf("EMON L3 rate %v vs exact MPI %v (%.0f%% apart)", l3.Mean, m.MPI, rel*100)
	}
	// Sampling produces real spread: the CI is nonzero but well below the
	// mean for a frequent event.
	if l3.CI95 <= 0 || l3.CI95 > l3.Mean {
		t.Fatalf("L3 CI = %v for mean %v", l3.CI95, l3.Mean)
	}
	// Level metrics are in range.
	bt := byEvent[perfmon.BusTransactionTime]
	if bt.Mean < 100 || bt.Mean > 400 {
		t.Fatalf("bus-transaction time = %v", bt.Mean)
	}
}

func TestRunEMONBadConfig(t *testing.T) {
	if _, _, err := RunEMON(Config{}, emonConfig()); err == nil {
		t.Fatal("bad config accepted")
	}
	cfg := fastConfig(10, 8, 1)
	cfg.MeasureTxns = 0
	if _, _, err := RunEMON(cfg, emonConfig()); err == nil {
		t.Fatal("zero target accepted")
	}
}

func TestCountersMonotonic(t *testing.T) {
	// The free-running counters never decrease and track the exact
	// accounting: instructions per transaction derived from the counters
	// matches the Metrics value.
	cfg := fastConfig(25, 10, 2)
	m := build(cfg)
	m.prefill()
	m.start()
	src := m.counterSource()
	var prev uint64
	for i := 0; i < 50; i++ {
		m.eng.RunUntil(m.eng.Now() + 2_000_000)
		now := src(perfmon.Instructions)
		if now < prev {
			t.Fatalf("instruction counter decreased: %d -> %d", prev, now)
		}
		prev = now
	}
	if prev == 0 {
		t.Fatal("counters never advanced")
	}
	if src(perfmon.ClockCycles) == 0 || src(perfmon.L3Miss) == 0 {
		t.Fatal("cycle or miss counters stuck at zero")
	}
	if src(perfmon.Event(99)) != 0 {
		t.Fatal("unknown event should read zero")
	}
}
