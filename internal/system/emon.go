package system

import (
	"odbscale/internal/perfmon"
	"odbscale/internal/workload"
)

// counters are the machine's free-running event counters — the hardware
// counters EMON samples. They accumulate from simulation start (scaled
// events are expanded to real counts) and are never reset, exactly like
// the Xeon's counters; the sampler differences successive readings.
type counters struct {
	scale        uint64
	instructions uint64
	cycles       uint64
	mispred      uint64
	tlbMiss      uint64
	tcMiss       uint64
	l2Miss       uint64
	l3Miss       uint64
}

func (c *counters) note(instr uint64, cycles float64, ev workload.Events) {
	c.instructions += instr
	c.cycles += uint64(cycles)
	c.mispred += ev.Mispred * c.scale
	c.tlbMiss += ev.TLBMiss * c.scale
	c.tcMiss += ev.TCMiss * c.scale
	c.l2Miss += ev.L2Miss * c.scale
	c.l3Miss += ev.L3Miss * c.scale
}

// CounterSource adapts the machine's counters to the perfmon sampler.
// The two bus events are level metrics read from the bus model, as the
// IOQ-derived EMON events are.
func (m *machine) counterSource() perfmon.Source {
	return func(e perfmon.Event) uint64 {
		switch e {
		case perfmon.Instructions:
			return m.ctr.instructions
		case perfmon.BranchMispredictions:
			return m.ctr.mispred
		case perfmon.TLBMiss:
			return m.ctr.tlbMiss
		case perfmon.TCMiss:
			return m.ctr.tcMiss
		case perfmon.L2Miss:
			return m.ctr.l2Miss
		case perfmon.L3Miss:
			return m.ctr.l3Miss
		case perfmon.ClockCycles:
			return m.ctr.cycles
		case perfmon.BusUtilization:
			return uint64(m.fsb.Utilization() * 100)
		case perfmon.BusTransactionTime:
			return uint64(m.fsb.Latency())
		}
		return 0
	}
}

// RunEMON executes a configuration like Run, but additionally samples the
// performance counters with the paper's EMON schedule (grouped events,
// round-robin windows, repeated rotations) during the measurement period.
// The simulation runs until both the transaction target and the sampling
// schedule complete. Results are per-event rate observations with their
// sampling spread — including the noise the paper reports for rare events.
func RunEMON(cfg Config, emon perfmon.Config) (Metrics, []perfmon.Result, error) {
	if err := validate(cfg); err != nil {
		return Metrics{}, nil, err
	}
	m := build(cfg)
	m.prefill()
	m.start()

	// Arm the sampler when the measurement period begins.
	var sampler *perfmon.Sampler
	m.onReset = func() {
		sampler = perfmon.NewSampler(m.eng, emon, m.counterSource())
		sampler.Start(nil)
	}

	capCycles := capSimCycles(cfg)
	for m.eng.Step() {
		if m.txns >= uint64(cfg.MeasureTxns) && sampler != nil && sampler.Done() {
			break
		}
		if m.eng.Now() > capCycles {
			break
		}
	}
	m.sched.Stop()

	var results []perfmon.Result
	if sampler != nil {
		for _, e := range perfmon.Events() {
			results = append(results, sampler.Result(e))
		}
	}
	return m.metrics(), results, nil
}
