package system

import (
	"context"

	"odbscale/internal/perfmon"
	"odbscale/internal/workload"
)

// counters are the machine's free-running event counters — the hardware
// counters EMON samples. They accumulate from simulation start (scaled
// events are expanded to real counts) and are never reset, exactly like
// the Xeon's counters; the sampler differences successive readings.
type counters struct {
	scale        uint64
	instructions uint64
	cycles       uint64
	mispred      uint64
	tlbMiss      uint64
	tcMiss       uint64
	l2Miss       uint64
	l3Miss       uint64
}

func (c *counters) note(instr uint64, cycles float64, ev workload.Events) {
	c.instructions += instr
	c.cycles += uint64(cycles)
	c.mispred += ev.Mispred * c.scale
	c.tlbMiss += ev.TLBMiss * c.scale
	c.tcMiss += ev.TCMiss * c.scale
	c.l2Miss += ev.L2Miss * c.scale
	c.l3Miss += ev.L3Miss * c.scale
}

// CounterSource adapts the machine's counters to the perfmon sampler.
// The two bus events are level metrics read from the bus model, as the
// IOQ-derived EMON events are.
func (m *machine) counterSource() perfmon.Source {
	return func(e perfmon.Event) uint64 {
		switch e {
		case perfmon.Instructions:
			return m.ctr.instructions
		case perfmon.BranchMispredictions:
			return m.ctr.mispred
		case perfmon.TLBMiss:
			return m.ctr.tlbMiss
		case perfmon.TCMiss:
			return m.ctr.tcMiss
		case perfmon.L2Miss:
			return m.ctr.l2Miss
		case perfmon.L3Miss:
			return m.ctr.l3Miss
		case perfmon.ClockCycles:
			return m.ctr.cycles
		case perfmon.BusUtilization:
			return uint64(m.fsb.Utilization() * 100)
		case perfmon.BusTransactionTime:
			return uint64(m.fsb.Latency())
		}
		return 0
	}
}

// RunEMON executes a configuration while sampling the performance
// counters with the paper's EMON schedule.
//
// Deprecated: RunEMON is Run with WithEMON; use Run.
func RunEMON(cfg Config, emon perfmon.Config) (Metrics, []perfmon.Result, error) {
	var results []perfmon.Result
	met, err := Run(context.Background(), cfg, WithEMON(emon, &results))
	return met, results, err
}
