package system

import (
	"context"
	"errors"
	"math"
	"testing"

	"odbscale/internal/profile"
	"odbscale/internal/telemetry"
)

// lsmCfg is a small configuration on the LSM engine with a memtable
// sized so a short run still flushes and compacts (the default 8 MB
// memtable would absorb a 400-txn run without ever sealing).
func lsmCfg(w, p int) Config {
	cfg := determinismConfig(w, p)
	cfg.Engine = "lsm"
	cfg.Tuning.LSM.MemtableMB = 1
	return cfg
}

// TestLSMRunBitIdentical pins seed-stability of the LSM engine's
// read-path draws, memtable accounting and background compaction
// scheduling: two runs of the same configuration must agree on every
// metric bit.
func TestLSMRunBitIdentical(t *testing.T) {
	points := []struct{ w, p int }{{10, 1}, {10, 4}}
	if !testing.Short() {
		points = append(points, struct{ w, p int }{200, 4})
	}
	for _, pt := range points {
		cfg := lsmCfg(pt.w, pt.p)
		a, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("W=%d P=%d: runs differ:\n%+v\n%+v", pt.w, pt.p, a, b)
		}
	}
}

// TestLSMRunReportsAmplification checks the run-level engine
// characterization: the LSM run must identify itself, amplify writes
// beyond the logical volume once compaction reorganizes flushed runs,
// take more than one block read per logical row read (bloom false
// positives and level probes), and carry redundant run data on disk.
func TestLSMRunReportsAmplification(t *testing.T) {
	cfg := lsmCfg(10, 1)
	m, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine != "lsm" {
		t.Fatalf("engine = %q, want lsm", m.Engine)
	}
	if m.WriteAmp <= 1 {
		t.Errorf("write amplification %.3f, want > 1", m.WriteAmp)
	}
	if m.ReadAmp <= 0 {
		t.Errorf("read amplification %.3f, want > 0", m.ReadAmp)
	}
	if m.SpaceAmp < 1 {
		t.Errorf("space amplification %.3f, want >= 1", m.SpaceAmp)
	}

	// The B-tree engine reports in-place semantics: no write or space
	// amplification beyond the checkpoint traffic, one block read per
	// logical read is not guaranteed (index descents), but identity and
	// space amp are exact.
	bt, err := Run(context.Background(), determinismConfig(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if bt.Engine != "btree" {
		t.Fatalf("default engine = %q, want btree", bt.Engine)
	}
	if bt.SpaceAmp < 1 {
		t.Errorf("btree space amp %.3f, want >= 1 (heap includes index blocks)", bt.SpaceAmp)
	}
	if bt.WriteStallsPerTxn != 0 {
		t.Errorf("btree reported %.3f write stalls per txn, want 0", bt.WriteStallsPerTxn)
	}
}

// TestLSMWriteStallsUnderPressure squeezes the L0 stall threshold and
// background bandwidth until the engine throttles foreground writers,
// and checks the stalls surface in the metrics.
func TestLSMWriteStallsUnderPressure(t *testing.T) {
	cfg := lsmCfg(10, 1)
	cfg.Tuning.LSM.L0StallRuns = 1
	cfg.Tuning.LSM.CompactBatch = 2
	cfg.Tuning.DBWriterIntervalMS = 200 // starve maintenance
	m, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.WriteStallsPerTxn <= 0 {
		t.Fatalf("no write stalls under L0 pressure: %+v", m)
	}
}

// TestLSMProfiledExactSum is the profiler acceptance for the new engine
// phases: with memtable and compaction work in the mix, the per-phase
// CPI breakdown must still sum to the whole-run CPI within 1e-9, and
// profiling must not perturb the run.
func TestLSMProfiledExactSum(t *testing.T) {
	cfg := lsmCfg(10, 1)
	plain, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := profile.NewCollector()
	m, err := RunProfiled(context.Background(), cfg, nil, col)
	if err != nil {
		t.Fatal(err)
	}
	if plain != m {
		t.Errorf("profiler perturbed the LSM run:\nplain    %+v\nprofiled %+v", plain, m)
	}
	p := col.Profile()
	var sum float64
	seen := map[string]bool{}
	for _, r := range p.PhaseBreakdown() {
		sum += r.CPI
		if r.Cycles > 0 {
			seen[r.Phase] = true
		}
	}
	if rel := math.Abs(sum-m.CPI) / m.CPI; rel > 1e-9 {
		t.Errorf("phase CPI sum %.12f vs whole-run CPI %.12f (rel %.3g)", sum, m.CPI, rel)
	}
	for _, want := range []string{"memtable", "compact", "buffer", "logcommit", "sched"} {
		if !seen[want] {
			t.Errorf("phase %q missing from LSM breakdown", want)
		}
	}
	if seen["btree"] {
		t.Error("LSM run attributed cycles to the btree phase")
	}
}

// TestLSMFlightSamplesCarryAmplification checks the flight recorder's
// timeline exposes the engine's amplification: an LSM run's samples
// must show interval write-amp once compaction traffic flows and a
// space-amp at or above one throughout.
func TestLSMFlightSamplesCarryAmplification(t *testing.T) {
	cfg := lsmCfg(10, 1)
	rec := telemetry.NewRecorder(telemetry.Config{SampleIntervalMS: 20})
	if _, err := Run(context.Background(), cfg, WithRecorder(rec)); err != nil {
		t.Fatal(err)
	}
	samples := rec.Timeline()
	if len(samples) == 0 {
		t.Fatal("no timeline samples")
	}
	var sawWriteAmp, sawReadAmp bool
	for _, s := range samples {
		if s.SpaceAmp < 1 {
			t.Fatalf("sample space amp %.3f < 1: %+v", s.SpaceAmp, s)
		}
		if s.WriteAmp > 1 {
			sawWriteAmp = true
		}
		if s.Measuring && s.ReadAmp > 0 {
			sawReadAmp = true
		}
	}
	if !sawWriteAmp {
		t.Error("no sample showed interval write amplification > 1")
	}
	if !sawReadAmp {
		t.Error("no measuring sample showed read amplification")
	}
}

// TestBadEngineRejected checks engine-name validation fails fast with
// the sentinel error rather than deep in construction.
func TestBadEngineRejected(t *testing.T) {
	cfg := determinismConfig(10, 1)
	cfg.Engine = "isam"
	if _, err := Run(context.Background(), cfg); !errors.Is(err, ErrBadEngine) {
		t.Fatalf("err = %v, want ErrBadEngine", err)
	}
}
