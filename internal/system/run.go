package system

import (
	"context"
	"io"

	"odbscale/internal/cache"
	"odbscale/internal/perfmon"
	"odbscale/internal/profile"
	"odbscale/internal/qstats"
	"odbscale/internal/telemetry"
	"odbscale/internal/trace"
	"odbscale/internal/txtrace"
)

// Option attaches an optional observer to a Run. Observers are strictly
// that: none of them draws randomness or schedules simulation events, so
// metrics are bit-identical with any combination of options attached.
type Option func(*runOpts)

type runOpts struct {
	trace      io.Writer
	traceCount *uint64
	rec        *telemetry.Recorder
	emon       *perfmon.Config
	emonOut    *[]perfmon.Result
	prof       *profile.Collector
	spans      *txtrace.Tracer
	qs         *qstats.Collector
}

// WithTrace captures every simulated memory reference of the measurement
// period to w in the trace format (see package trace and cmd/odbtrace).
// If count is non-nil it receives the number of records written. A nil w
// is ignored.
func WithTrace(w io.Writer, count *uint64) Option {
	return func(o *runOpts) {
		o.trace = w
		o.traceCount = count
	}
}

// WithRecorder feeds the flight recorder: per-transaction latency spans,
// phase marks at the warm-up reset and at run end, and timeline samples
// every recorder interval of simulated time. A nil recorder is ignored.
func WithRecorder(rec *telemetry.Recorder) Option {
	return func(o *runOpts) { o.rec = rec }
}

// WithEMON samples the machine's performance counters with the paper's
// EMON schedule (grouped events, round-robin windows, repeated rotations)
// during the measurement period; the run continues until both the
// transaction target and the sampling schedule complete. If results is
// non-nil it receives one rate observation per event, with the sampling
// spread — including the noise the paper reports for rare events.
func WithEMON(cfg perfmon.Config, results *[]perfmon.Result) Option {
	return func(o *runOpts) {
		o.emon = &cfg
		o.emonOut = results
	}
}

// WithProfiler feeds the cycle-attribution profiler: every measured
// chunk's cycles and microarchitectural events are apportioned over
// (transaction type, engine phase, mode) frames as the pricing path
// retires them. A nil collector is ignored.
func WithProfiler(prof *profile.Collector) Option {
	return func(o *runOpts) { o.prof = prof }
}

// WithSpans feeds the per-transaction span tracer: each measured
// transaction's lifecycle is built as a tree of simulated-time spans
// (run-queue wait, per-phase CPU, lock wait per class, I/O, busy wait)
// and a deterministic sample — head sampling by commit counter plus the
// K slowest per type — is retained for reports and export. A nil tracer
// is ignored.
func WithSpans(tr *txtrace.Tracer) Option {
	return func(o *runOpts) { o.spans = tr }
}

// WithQueueStats feeds the queueing observatory: every shared service
// center (CPU run queues, bus, disk and log arrays, lock manager,
// buffer busy waits, engine writer throttles) accumulates arrivals,
// completions, busy and waiting time into the collector's stations, a
// derived report is published at every flight-recorder tick, and the
// final report — utilization, throughput, service/wait times, queue
// lengths, operational-law residuals, bottleneck ranking — is published
// when the run completes. Strictly observational: no randomness, no
// scheduled events, bit-identical metrics. A nil collector is ignored.
func WithQueueStats(c *qstats.Collector) Option {
	return func(o *runOpts) { o.qs = c }
}

// Run executes one configuration and returns its metrics. It is the
// single entry point for all simulations: options attach the trace
// capture, flight recorder, EMON sampler and cycle profiler that the
// deprecated Run* variants used to expose as separate functions.
//
// When ctx is cancelled mid-simulation the drive loop stops and the
// context's error is returned instead of metrics. A nil ctx is treated
// as context.Background().
func Run(ctx context.Context, cfg Config, opts ...Option) (Metrics, error) {
	var o runOpts
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	if err := validate(cfg); err != nil {
		return Metrics{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Machine construction and prefill are expensive at large warehouse
	// counts; a context that is already dead skips them entirely.
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}

	var tw *trace.Writer
	if o.trace != nil {
		var err error
		tw, err = trace.NewWriter(o.trace)
		if err != nil {
			return Metrics{}, err
		}
	}
	if o.rec != nil {
		o.rec.SetTarget(uint64(cfg.MeasureTxns))
	}
	if o.prof != nil {
		o.prof.SetMeta(profile.Meta{
			Warehouses: cfg.Warehouses,
			Clients:    cfg.Clients,
			Processors: cfg.Processors,
			Seed:       cfg.Seed,
			Scale:      cfg.Tuning.Scale,
			FreqHz:     cfg.Machine.FreqHz,
			OtherCPI:   cfg.Tuning.OtherCPI,
			Stall:      cfg.Machine.Stall,
		})
	}

	if o.spans != nil {
		o.spans.SetMeta(txtrace.Meta{
			Warehouses: cfg.Warehouses,
			Clients:    cfg.Clients,
			Processors: cfg.Processors,
			Seed:       cfg.Seed,
			FreqHz:     cfg.Machine.FreqHz,
		})
	}

	m := build(cfg)
	defer m.close()
	m.rec = o.rec
	m.prof = o.prof
	m.spans = o.spans
	if o.qs != nil {
		m.qs = o.qs
		m.sched.SetStation(o.qs.Station(qstats.CPU))
		m.fsb.SetStation(o.qs.Station(qstats.Bus))
		m.disks.SetStations(o.qs.Station(qstats.Disk), o.qs.Station(qstats.Log))
		m.qsLock = o.qs.Station(qstats.LockMgr)
		m.qsBusy = o.qs.Station(qstats.BufferPool)
		m.qsEngine = o.qs.Station(qstats.Engine)
		o.qs.SetServers(qstats.CPU, cfg.Processors*m.smt)
		o.qs.SetServers(qstats.Bus, 1)
		o.qs.SetServers(qstats.Disk, m.disks.DataDisks())
		o.qs.SetServers(qstats.Log, cfg.Machine.Disks.LogDisks)
	}

	// Observer hooks arm at the warm-up reset so they see exactly the
	// measurement period. Multiple observers chain on the same hook.
	var tapErr error
	if tw != nil {
		m.onReset = chainHook(m.onReset, func() {
			m.synth.SetTap(func(cpu int, addr cache.Addr, kind cache.Kind) {
				if tapErr == nil {
					tapErr = tw.Write(trace.Record{CPU: uint8(cpu), Kind: kind, Addr: uint64(addr)})
				}
			})
		})
	}
	var sampler *perfmon.Sampler
	if o.emon != nil {
		emonCfg := *o.emon
		m.onReset = chainHook(m.onReset, func() {
			sampler = perfmon.NewSampler(m.eng, emonCfg, m.counterSource())
			sampler.Start(nil)
		})
		m.extraDone = func() bool { return sampler != nil && sampler.Done() }
	}

	m.prefill()
	m.start()
	if o.rec != nil {
		m.startFlight()
	}
	if err := m.drive(ctx); err != nil {
		return Metrics{}, err
	}
	if tapErr != nil {
		return Metrics{}, tapErr
	}
	if tw != nil {
		if err := tw.Flush(); err != nil {
			return Metrics{}, err
		}
		if o.traceCount != nil {
			*o.traceCount = tw.Count()
		}
	}
	if o.rec != nil {
		o.rec.MarkPhase(telemetry.PhaseDone, float64(m.eng.Now())/cfg.Machine.FreqHz)
	}
	met := m.metrics()
	if o.qs != nil {
		o.qs.Publish(m.qsReport())
	}
	if o.prof != nil {
		o.prof.SetIdle(m.sched.IdleCyclesAt(m.eng.Now()))
		o.prof.Finalize(met.ElapsedSeconds, met.Txns)
	}
	if o.emonOut != nil && sampler != nil {
		results := make([]perfmon.Result, 0, len(perfmon.Events()))
		for _, e := range perfmon.Events() {
			results = append(results, sampler.Result(e))
		}
		*o.emonOut = results
	}
	return met, nil
}

// chainHook composes measurement-start hooks in registration order.
func chainHook(prev, next func()) func() {
	if prev == nil {
		return next
	}
	return func() {
		prev()
		next()
	}
}

// close releases run-scoped resources: the coherence domain's parallel
// snoop lane workers, when enabled.
func (m *machine) close() { m.domain.Close() }
