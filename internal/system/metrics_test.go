package system

import (
	"math"
	"testing"
)

// TestModeAccumZeroInstr pins the zero-instruction edge case: a mode
// that priced no instructions (e.g. an all-OS chunk mix, or a run too
// short for one mode to appear) must report 0, never NaN or Inf.
func TestModeAccumZeroInstr(t *testing.T) {
	var a modeAccum
	if got := a.cpi(); got != 0 {
		t.Errorf("empty cpi() = %v, want 0", got)
	}
	if got := a.ratePI(100, 25); got != 0 {
		t.Errorf("empty ratePI() = %v, want 0", got)
	}

	// Cycles without instructions (possible when only switch costs were
	// charged): still guarded.
	a.cycles = 5000
	if got := a.cpi(); math.IsNaN(got) || math.IsInf(got, 0) || got != 0 {
		t.Errorf("cycles-only cpi() = %v, want 0", got)
	}

	a.instr = 1000
	if got := a.cpi(); got != 5 {
		t.Errorf("cpi() = %v, want 5", got)
	}
	if got := a.ratePI(10, 25); got != 0.25 {
		t.Errorf("ratePI(10, 25) = %v, want 0.25", got)
	}
}

// TestMetricsZeroInstr drives metrics() with measured transactions but
// no priced instructions: every derived ratio must come out 0, not NaN.
// The condition arises when the measurement window closes before any
// chunk is priced (tiny MeasureTxns with carried-over commits).
func TestMetricsZeroInstr(t *testing.T) {
	cfg := DefaultConfig(1, 1, 1)
	m := build(cfg)
	// Advance simulated time without pricing anything, then pretend one
	// transaction committed during measurement.
	m.eng.After(1_600_000, func() {})
	for m.eng.Step() {
	}
	m.txns = 1
	out := m.metrics()
	if out.ElapsedSeconds <= 0 {
		t.Fatalf("elapsed = %v, want > 0", out.ElapsedSeconds)
	}
	for name, v := range map[string]float64{
		"CPI":     out.CPI,
		"UserCPI": out.UserCPI,
		"OSCPI":   out.OSCPI,
		"OSShare": out.OSShare,
		"MPI":     out.MPI,
		"UserMPI": out.UserMPI,
		"OSMPI":   out.OSMPI,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v with zero instructions, want a finite 0", name, v)
		}
		if v != 0 {
			t.Errorf("%s = %v with zero instructions, want 0", name, v)
		}
	}
	if out.TPS <= 0 {
		t.Errorf("TPS = %v, want > 0 (one txn in a positive window)", out.TPS)
	}
}
