package system

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"odbscale/internal/telemetry"
)

// flightCfg is a small configuration that exercises warm-up, the
// measurement reset and every transaction type.
func flightCfg() Config {
	cfg := DefaultConfig(2, 8, 1)
	cfg.WarmupTxns = 100
	cfg.MeasureTxns = 400
	return cfg
}

// TestRunRecordedDoesNotPerturb is the flight recorder's core
// guarantee: recording must not change the simulation. The same seed
// with and without the recorder must produce identical metrics.
func TestRunRecordedDoesNotPerturb(t *testing.T) {
	cfg := flightCfg()
	plain, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder(telemetry.Config{})
	recorded, err := RunRecorded(context.Background(), cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	if plain != recorded {
		t.Errorf("recorder perturbed the simulation:\nplain    %+v\nrecorded %+v", plain, recorded)
	}
	// Nil recorder degrades to RunContext.
	viaNil, err := RunRecorded(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if viaNil != plain {
		t.Error("RunRecorded(nil) differs from RunContext")
	}
}

// TestRunRecordedDeterministic re-runs the same seed and checks the
// flight data — timelines and histogram encodings — is bit-identical.
func TestRunRecordedDeterministic(t *testing.T) {
	run := func() (*telemetry.Recorder, Metrics) {
		rec := telemetry.NewRecorder(telemetry.Config{SampleIntervalMS: 20})
		m, err := RunRecorded(context.Background(), flightCfg(), rec)
		if err != nil {
			t.Fatal(err)
		}
		return rec, m
	}
	recA, mA := run()
	recB, mB := run()
	if mA != mB {
		t.Fatalf("metrics differ across reruns:\n%+v\n%+v", mA, mB)
	}
	tlA, tlB := recA.Timeline(), recB.Timeline()
	if len(tlA) == 0 || len(tlA) != len(tlB) {
		t.Fatalf("timeline lengths %d vs %d", len(tlA), len(tlB))
	}
	for i := range tlA {
		if !reflect.DeepEqual(tlA[i], tlB[i]) {
			t.Fatalf("sample %d differs:\n%+v\n%+v", i, tlA[i], tlB[i])
		}
	}
	for _, name := range recA.HistogramNames() {
		ha, hb := recA.HistogramSnapshot(name), recB.HistogramSnapshot(name)
		if hb == nil || !bytes.Equal(ha.Encode(), hb.Encode()) {
			t.Errorf("histogram %q differs across reruns", name)
		}
	}
}

// TestRunRecordedFlightData checks the recorder's contents after a run:
// phases, progress, monotonic samples and plausible interval rates.
func TestRunRecordedFlightData(t *testing.T) {
	cfg := flightCfg()
	rec := telemetry.NewRecorder(telemetry.Config{SampleIntervalMS: 20})
	m, err := RunRecorded(context.Background(), cfg, rec)
	if err != nil {
		t.Fatal(err)
	}

	p := rec.Progress()
	if p.Phase != telemetry.PhaseDone {
		t.Errorf("final phase = %q, want done", p.Phase)
	}
	if p.MeasuredTxns != uint64(cfg.MeasureTxns) || p.TargetTxns != uint64(cfg.MeasureTxns) {
		t.Errorf("progress = %+v, want measured == target == %d", p, cfg.MeasureTxns)
	}
	if p.TotalTxns < p.MeasuredTxns+uint64(cfg.WarmupTxns) {
		t.Errorf("total txns %d < measured %d + warmup %d", p.TotalTxns, p.MeasuredTxns, cfg.WarmupTxns)
	}

	phases := rec.Phases()
	if len(phases) != 2 || phases[0].Name != "warmup" || phases[1].Name != "measure" {
		t.Fatalf("phases = %+v, want [warmup measure]", phases)
	}
	if phases[0].SimSeconds <= 0 || phases[1].SimSeconds <= 0 {
		t.Errorf("non-positive phase durations: %+v", phases)
	}

	samples := rec.Timeline()
	if len(samples) < 5 {
		t.Fatalf("only %d samples; want several at 20ms over %0.2fs",
			len(samples), phases[0].SimSeconds+phases[1].SimSeconds)
	}
	var sawMeasuring bool
	for i, s := range samples {
		if i > 0 && s.SimSeconds <= samples[i-1].SimSeconds {
			t.Fatalf("sample times not increasing at %d: %f after %f", i, s.SimSeconds, samples[i-1].SimSeconds)
		}
		if i > 0 && s.Txns < samples[i-1].Txns {
			t.Fatalf("cumulative txns decreased at %d", i)
		}
		if len(s.CPUUtil) != cfg.Processors {
			t.Fatalf("sample %d has %d CPU utilizations, want %d", i, len(s.CPUUtil), cfg.Processors)
		}
		for _, u := range s.CPUUtil {
			if u < 0 || u > 1 {
				t.Fatalf("sample %d CPU util %f outside [0,1]", i, u)
			}
		}
		if s.BufferHit < 0 || s.BufferHit > 1 {
			t.Fatalf("sample %d buffer hit %f outside [0,1]", i, s.BufferHit)
		}
		if s.TPS < 0 || s.CPI < 0 {
			t.Fatalf("sample %d has negative rates: %+v", i, s)
		}
		sawMeasuring = sawMeasuring || s.Measuring
	}
	if !sawMeasuring {
		t.Error("no sample saw the measurement period")
	}

	// The mean of interval TPS over the measurement period should agree
	// with the final metric to within sampling noise.
	var sum float64
	var n int
	for _, s := range samples {
		if s.Measuring && s.TPS > 0 {
			sum += s.TPS
			n++
		}
	}
	if n > 0 {
		mean := sum / float64(n)
		if mean < m.TPS*0.5 || mean > m.TPS*1.5 {
			t.Errorf("mean sampled TPS %f far from final %f", mean, m.TPS)
		}
	}

	// Histograms cover every transaction committed since run start.
	var total uint64
	for _, name := range rec.HistogramNames() {
		total += rec.HistogramSnapshot(name).Count()
	}
	if total != p.TotalTxns {
		t.Errorf("histogram observations %d != total commits %d", total, p.TotalTxns)
	}
}
