package system

import (
	"context"

	"odbscale/internal/odb"
	"odbscale/internal/profile"
	"odbscale/internal/telemetry"
	"odbscale/internal/workload"
)

// RunProfiled executes a configuration while feeding the flight recorder
// and the cycle-attribution profiler. Nil observers are ignored.
//
// Deprecated: RunProfiled is Run with WithRecorder and WithProfiler; use
// Run.
func RunProfiled(ctx context.Context, cfg Config, rec *telemetry.Recorder, prof *profile.Collector) (Metrics, error) {
	return Run(ctx, cfg, WithRecorder(rec), WithProfiler(prof))
}

// addShare appends an instruction share, coalescing runs of the same
// frame so per-chunk share lists stay a handful of entries.
func addShare(shares []profile.Share, k profile.Kind, ph odb.Phase, instr uint64) []profile.Share {
	if instr == 0 {
		return shares
	}
	if n := len(shares); n > 0 && shares[n-1].Kind == k && shares[n-1].Phase == ph {
		shares[n-1].Instr += instr
		return shares
	}
	return append(shares, profile.Share{Kind: k, Phase: ph, Instr: instr})
}

// profEvents converts the synthesizer's event counts for the collector.
func profEvents(ev workload.Events) profile.Events {
	return profile.Events{
		TCMiss:     ev.TCMiss,
		L2Miss:     ev.L2Miss,
		L3Miss:     ev.L3Miss,
		CoherMiss:  ev.CoherMiss,
		TLBMiss:    ev.TLBMiss,
		Mispred:    ev.Mispred,
		BusLatency: ev.BusLatency,
	}
}
