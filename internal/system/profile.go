package system

import (
	"context"

	"odbscale/internal/odb"
	"odbscale/internal/profile"
	"odbscale/internal/telemetry"
	"odbscale/internal/workload"
)

// RunProfiled executes a configuration like RunRecorded while also
// feeding the cycle-attribution profiler: every measured chunk's cycles
// and microarchitectural events are apportioned over (transaction type,
// engine phase, mode) frames as the pricing path retires them. The
// profiler is observational — it draws no randomness and schedules no
// events — so metrics are bit-identical with profiling on or off, the
// same invariant RunRecorded pins for the flight recorder. A nil
// collector degrades to RunRecorded; nil collector and recorder degrade
// to RunContext.
func RunProfiled(ctx context.Context, cfg Config, rec *telemetry.Recorder, prof *profile.Collector) (Metrics, error) {
	if rec == nil && prof == nil {
		return RunContext(ctx, cfg)
	}
	if err := validate(cfg); err != nil {
		return Metrics{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	if rec != nil {
		rec.SetTarget(uint64(cfg.MeasureTxns))
	}
	if prof != nil {
		prof.SetMeta(profile.Meta{
			Warehouses: cfg.Warehouses,
			Clients:    cfg.Clients,
			Processors: cfg.Processors,
			Seed:       cfg.Seed,
			Scale:      cfg.Tuning.Scale,
			FreqHz:     cfg.Machine.FreqHz,
			OtherCPI:   cfg.Tuning.OtherCPI,
			Stall:      cfg.Machine.Stall,
		})
	}
	m := build(cfg)
	m.rec = rec
	m.prof = prof
	m.prefill()
	m.start()
	if rec != nil {
		m.startFlight()
	}
	if err := m.drive(ctx); err != nil {
		return Metrics{}, err
	}
	if rec != nil {
		rec.MarkPhase(telemetry.PhaseDone, float64(m.eng.Now())/cfg.Machine.FreqHz)
	}
	met := m.metrics()
	if prof != nil {
		prof.SetIdle(m.sched.IdleCyclesAt(m.eng.Now()))
		prof.Finalize(met.ElapsedSeconds, met.Txns)
	}
	return met, nil
}

// addShare appends an instruction share, coalescing runs of the same
// frame so per-chunk share lists stay a handful of entries.
func addShare(shares []profile.Share, k profile.Kind, ph odb.Phase, instr uint64) []profile.Share {
	if instr == 0 {
		return shares
	}
	if n := len(shares); n > 0 && shares[n-1].Kind == k && shares[n-1].Phase == ph {
		shares[n-1].Instr += instr
		return shares
	}
	return append(shares, profile.Share{Kind: k, Phase: ph, Instr: instr})
}

// profEvents converts the synthesizer's event counts for the collector.
func profEvents(ev workload.Events) profile.Events {
	return profile.Events{
		TCMiss:     ev.TCMiss,
		L2Miss:     ev.L2Miss,
		L3Miss:     ev.L3Miss,
		CoherMiss:  ev.CoherMiss,
		TLBMiss:    ev.TLBMiss,
		Mispred:    ev.Mispred,
		BusLatency: ev.BusLatency,
	}
}
