package system

import (
	"context"
	"math"
	"testing"

	"odbscale/internal/profile"
	"odbscale/internal/telemetry"
)

// TestRunProfiledDoesNotPerturb pins the profiler's core invariant:
// metrics are bit-identical with profiling on. Same seed, with and
// without the collector (and with and without the flight recorder
// alongside), must produce identical Metrics.
func TestRunProfiledDoesNotPerturb(t *testing.T) {
	cfg := flightCfg()
	plain, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := profile.NewCollector()
	profiled, err := RunProfiled(context.Background(), cfg, nil, col)
	if err != nil {
		t.Fatal(err)
	}
	if plain != profiled {
		t.Errorf("profiler perturbed the simulation:\nplain    %+v\nprofiled %+v", plain, profiled)
	}

	// Profiling alongside the flight recorder must match a recorded run.
	rec := telemetry.NewRecorder(telemetry.Config{})
	recorded, err := RunRecorded(context.Background(), cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	rec2 := telemetry.NewRecorder(telemetry.Config{})
	both, err := RunProfiled(context.Background(), cfg, rec2, profile.NewCollector())
	if err != nil {
		t.Fatal(err)
	}
	if recorded != both {
		t.Errorf("profiler perturbed a recorded run:\nrecorded %+v\nboth     %+v", recorded, both)
	}

	// Nil collector and recorder degrade to RunContext.
	viaNil, err := RunProfiled(context.Background(), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if viaNil != plain {
		t.Error("RunProfiled(nil, nil) differs from RunContext")
	}
}

// TestRunProfiledDeterministic checks the profile itself is reproducible
// bit for bit across reruns of the same seed.
func TestRunProfiledDeterministic(t *testing.T) {
	run := func() *profile.Profile {
		col := profile.NewCollector()
		if _, err := RunProfiled(context.Background(), flightCfg(), nil, col); err != nil {
			t.Fatal(err)
		}
		return col.Profile()
	}
	a, b := run(), run()
	if len(a.Frames) == 0 {
		t.Fatal("empty profile")
	}
	if len(a.Frames) != len(b.Frames) {
		t.Fatalf("frame counts differ: %d vs %d", len(a.Frames), len(b.Frames))
	}
	for i := range a.Frames {
		if a.Frames[i] != b.Frames[i] {
			t.Fatalf("frame %d differs:\n%+v\n%+v", i, a.Frames[i], b.Frames[i])
		}
	}
}

// TestProfileAccountsWholeRun checks conservation on a small run: the
// profile's instruction total and CPI must reproduce the measured
// metrics (the apportionment telescopes, so only float summation order
// separates them).
func TestProfileAccountsWholeRun(t *testing.T) {
	cfg := flightCfg()
	col := profile.NewCollector()
	m, err := RunProfiled(context.Background(), cfg, nil, col)
	if err != nil {
		t.Fatal(err)
	}
	p := col.Profile()

	wantInstr := uint64(math.Round(m.IPX * float64(m.Txns)))
	if got := p.TotalInstr(); got != wantInstr {
		t.Errorf("profile instructions = %d, metrics imply %d", got, wantInstr)
	}
	if rel := math.Abs(p.CPI()-m.CPI) / m.CPI; rel > 1e-9 {
		t.Errorf("profile CPI %.12f vs metrics CPI %.12f (rel %.3g)", p.CPI(), m.CPI, rel)
	}
	if p.Meta.Txns != m.Txns {
		t.Errorf("profile txns %d != metrics %d", p.Meta.Txns, m.Txns)
	}
	if p.Meta.ElapsedSeconds != m.ElapsedSeconds {
		t.Errorf("profile elapsed %f != metrics %f", p.Meta.ElapsedSeconds, m.ElapsedSeconds)
	}
}

// TestProfileCPIBreakdownAtScale is the acceptance configuration: at
// W=200/P=4 the per-phase CPI breakdown must sum to the whole-run CPI
// within 1e-9, with the L3-miss share of cycles in the paper's reported
// range (Section 5 attributes roughly 60% of CPI to L3 misses at scale).
func TestProfileCPIBreakdownAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large configuration")
	}
	cfg := DefaultConfig(200, HeuristicClients(200, 4), 4)
	cfg.WarmupTxns = 200
	cfg.MeasureTxns = 600
	col := profile.NewCollector()
	m, err := RunProfiled(context.Background(), cfg, nil, col)
	if err != nil {
		t.Fatal(err)
	}
	p := col.Profile()

	var sum float64
	rows := p.PhaseBreakdown()
	if len(rows) < 5 {
		t.Fatalf("only %d phases attributed: %+v", len(rows), rows)
	}
	for _, r := range rows {
		sum += r.CPI
		if total := r.Comp.Total(); math.Abs(total-r.Cycles) > 1e-6*math.Max(1, r.Cycles) {
			t.Errorf("phase %s components sum %.3f != cycles %.3f", r.Phase, total, r.Cycles)
		}
	}
	if rel := math.Abs(sum-m.CPI) / m.CPI; rel > 1e-9 {
		t.Errorf("phase CPI sum %.12f vs whole-run CPI %.12f (rel %.3g)", sum, m.CPI, rel)
	}

	l3 := p.L3Share()
	if l3 < 0.40 || l3 > 0.80 {
		t.Errorf("L3-miss cycle share %.3f outside the paper's reported range (~0.6)", l3)
	}
	// The profile's event-model view must agree with the whole-run
	// Figure 12 assembly from the metrics path.
	if metL3 := m.Breakdown.Share()["L3"]; math.Abs(l3-metL3) > 0.05 {
		t.Errorf("profile L3 share %.3f far from metrics breakdown %.3f", l3, metL3)
	}

	// Engine phases from both modes must be present at scale: B-tree
	// descent, buffer access, logging, scheduling and syscalls.
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Cycles > 0 {
			seen[r.Phase] = true
		}
	}
	for _, want := range []string{"parse", "btree", "buffer", "logcommit", "sched", "syscall"} {
		if !seen[want] {
			t.Errorf("phase %q missing from breakdown %v", want, rows)
		}
	}
}
