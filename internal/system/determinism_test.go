package system

import (
	"context"
	"reflect"
	"testing"
)

// determinismConfig builds a short configuration for bit-identity runs.
func determinismConfig(w, p int) Config {
	cfg := DefaultConfig(w, HeuristicClients(w, p), p)
	cfg.MeasureTxns = 400
	cfg.WarmupTxns = 150
	return cfg
}

// TestRunBitIdenticalAcrossRuns pins seed-stability of the optimized fast
// paths: the pooled event engine, the alias Zipf sampler, the splitmix64
// uniform draws, the recycled transaction and buffer-cache structures.
// Two runs of the same configuration must agree on every metric bit.
func TestRunBitIdenticalAcrossRuns(t *testing.T) {
	points := []struct{ w, p int }{
		{10, 1}, {10, 4},
		{200, 1}, {200, 4},
		{1200, 1}, {1200, 4},
	}
	if testing.Short() {
		points = points[:2]
	}
	for _, pt := range points {
		pt := pt
		t.Run("", func(t *testing.T) {
			t.Parallel()
			cfg := determinismConfig(pt.w, pt.p)
			a, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("W=%d P=%d first run: %v", pt.w, pt.p, err)
			}
			b, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("W=%d P=%d second run: %v", pt.w, pt.p, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("W=%d P=%d metrics differ across identical runs:\n%+v\n%+v", pt.w, pt.p, a, b)
			}
		})
	}
}

// TestParallelSnoopBitIdentical pins the deterministic-parallelism
// contract of the coherence domain's snoop lanes: forcing the parallel
// fork/join path (at a processor count far below the MinParallelCPUs
// gate, and with more lanes than CPUs to exercise lane assignment)
// produces metrics bit-identical to the sequential snoop loop. Run
// under -race this test also checks the lanes for data races.
func TestParallelSnoopBitIdentical(t *testing.T) {
	for _, lanes := range []int{2, 4, 8} {
		cfg := determinismConfig(40, 4)
		cfg.Tuning.SnoopLanes = -1
		seq, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("sequential run: %v", err)
		}
		cfg.Tuning.SnoopLanes = lanes
		par, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("parallel run (%d lanes): %v", lanes, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%d-lane metrics differ from sequential:\n%+v\n%+v", lanes, seq, par)
		}
	}
}
