package system

import "odbscale/internal/qstats"

// qsReport derives the queueing-observatory report for the measurement
// window so far: station accumulators, server counts and the absorbed
// background counters, handed to qstats.Build. Called at flight-recorder
// ticks and once at run end; nil-safe only behind a m.qs check.
func (m *machine) qsReport() *qstats.Report {
	bcs := m.bc.Stats()
	lms := m.lm.Stats()
	ecs := m.se.Counters()
	dss := m.disks.StatsNow()
	in := &qstats.Input{
		Meta: qstats.Meta{
			Engine:     m.se.Name(),
			Warehouses: m.cfg.Warehouses,
			Clients:    m.cfg.Clients,
			Processors: m.cfg.Processors,
			Seed:       m.cfg.Seed,
		},
		ElapsedCycles: float64(m.eng.Now() - m.resetAt),
		CyclesPerMS:   m.cyclesPerMS,
		Commits:       m.txns,
		Counts:        m.qs.Counts(),
		Servers:       m.qs.Servers(),
		Background: qstats.Background{
			BufferGets:    bcs.Gets,
			BufferHits:    bcs.Hits,
			LockAcquires:  lms.Acquires,
			LockConflicts: lms.Conflicts,
			LogWrites:     dss.LogWrites,
			Flushes:       ecs.Flushes,
			Compactions:   ecs.Compactions,
			WriteStalls:   ecs.WriteStalls,
		},
	}
	return qstats.Build(in)
}
