package system

import (
	"context"
	"reflect"
	"testing"

	"odbscale/internal/txtrace"
)

// spanCfg scales the pinned grid's points down to test-sized runs while
// still exercising warm-up, contention and multiprocessor scheduling.
func spanCfg(w, p int) Config {
	cfg := DefaultConfig(w, 8, p)
	cfg.WarmupTxns = 100
	cfg.MeasureTxns = 400
	return cfg
}

// TestRunSpannedDoesNotPerturb is the span tracer's core guarantee,
// pinned across the W × P grid the issue names: a run with WithSpans
// attached produces bit-identical Metrics to a plain run.
func TestRunSpannedDoesNotPerturb(t *testing.T) {
	for _, w := range []int{10, 200} {
		for _, p := range []int{1, 4} {
			cfg := spanCfg(w, p)
			plain, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			tr := txtrace.NewTracer(txtrace.Config{HeadEvery: 8})
			spanned, err := Run(context.Background(), cfg, WithSpans(tr))
			if err != nil {
				t.Fatal(err)
			}
			if plain != spanned {
				t.Errorf("W=%d P=%d: span tracer perturbed the simulation:\nplain   %+v\nspanned %+v",
					w, p, plain, spanned)
			}
			if got := tr.MeasuredTxns(); got != uint64(cfg.MeasureTxns) {
				t.Errorf("W=%d P=%d: tracer saw %d measured txns, want %d",
					w, p, got, cfg.MeasureTxns)
			}
		}
	}
}

// TestRunSpannedDeterministic re-runs the same seed and checks the
// retained span set — every trace, segment by segment — is identical.
func TestRunSpannedDeterministic(t *testing.T) {
	run := func() *txtrace.Dump {
		tr := txtrace.NewTracer(txtrace.Config{HeadEvery: 8})
		if _, err := Run(context.Background(), spanCfg(10, 2), WithSpans(tr)); err != nil {
			t.Fatal(err)
		}
		return tr.Dump()
	}
	a, b := run(), run()
	if len(a.Traces) == 0 {
		t.Fatal("no traces retained")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("span dumps differ across reruns: %d vs %d traces", len(a.Traces), len(b.Traces))
	}
}

// TestRunSpannedExactDecomposition checks, for every retained trace of
// a real run, that the segments tile the latency window contiguously
// and the wait-state breakdown sums back to the measured latency in
// integer cycles — the tracer's exactness invariant.
func TestRunSpannedExactDecomposition(t *testing.T) {
	tr := txtrace.NewTracer(txtrace.Config{HeadEvery: 4})
	if _, err := Run(context.Background(), spanCfg(10, 2), WithSpans(tr)); err != nil {
		t.Fatal(err)
	}
	d := tr.Dump()
	if len(d.Traces) < 20 {
		t.Fatalf("only %d traces retained; want a substantial sample", len(d.Traces))
	}
	for i := range d.Traces {
		x := &d.Traces[i]
		at := x.Start
		for j := range x.Segs {
			if x.Segs[j].Start != at {
				t.Fatalf("trace seq %d: segment %d starts at %d, want %d", x.Seq, j, x.Segs[j].Start, at)
			}
			at += x.Segs[j].Dur
		}
		if at != x.Start+x.Latency {
			t.Fatalf("trace seq %d: segments cover %d cycles, want %d", x.Seq, at-x.Start, x.Latency)
		}
		b := x.Breakdown()
		if b.Total() != x.Latency {
			t.Fatalf("trace seq %d: breakdown total %d != latency %d", x.Seq, b.Total(), x.Latency)
		}
	}

	// The per-type population aggregates obey the same exactness: the
	// summed breakdown reconstructs the summed latency.
	for _, ts := range d.Types {
		if ts.Count == 0 {
			continue
		}
		if ts.Sum.Total() != ts.SumLatency {
			t.Errorf("type %s: aggregate breakdown %d != aggregate latency %d",
				ts.Type, ts.Sum.Total(), ts.SumLatency)
		}
	}
}

// TestRunSpannedTailCatchesOutliers checks the tail reservoir of a real
// run retains the slowest transactions per type: every reservoir-only
// trace must be at least as slow as the type's measured p95.
func TestRunSpannedTailCatchesOutliers(t *testing.T) {
	tr := txtrace.NewTracer(txtrace.Config{HeadEvery: -1, TailK: 4})
	if _, err := Run(context.Background(), spanCfg(10, 2), WithSpans(tr)); err != nil {
		t.Fatal(err)
	}
	d := tr.Dump()
	p95 := map[string]float64{}
	big := map[string]bool{}
	for _, ts := range d.Types {
		p95[ts.Type] = ts.P95
		// Only well-populated types pin the p95 bound: 4 slowest of N
		// sit above p95 only when 4/N < 5%.
		big[ts.Type] = ts.Count >= 100
	}
	if len(d.Traces) == 0 {
		t.Fatal("no tail traces retained")
	}
	checked := 0
	for i := range d.Traces {
		x := &d.Traces[i]
		if !big[x.Name] {
			continue
		}
		checked++
		// The histogram quantile is bucket-resolution (≤12.5% relative
		// width), so compare with that slack.
		if float64(x.Latency) < p95[x.Name]*0.875 {
			t.Errorf("tail trace seq %d (%s) latency %d below the type's p95 %.0f — reservoir kept a non-outlier",
				x.Seq, x.Name, x.Latency, p95[x.Name])
		}
	}
	if checked == 0 {
		t.Fatal("no tail traces from well-populated types")
	}
}
