package system

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// fastConfig returns a configuration small enough for unit tests.
func fastConfig(w, c, p int) Config {
	cfg := DefaultConfig(w, c, p)
	cfg.WarmupTxns = 200
	cfg.MeasureTxns = 600
	return cfg
}

func run(t *testing.T, cfg Config) Metrics {
	t.Helper()
	m, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Txns == 0 {
		t.Fatal("no transactions measured")
	}
	return m
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero config: err = %v, want ErrBadConfig", err)
	}
	cfg := fastConfig(10, 8, 4)
	cfg.MeasureTxns = 0
	if _, err := Run(context.Background(), cfg); !errors.Is(err, ErrNoTxns) {
		t.Fatalf("zero MeasureTxns: err = %v, want ErrNoTxns", err)
	}
	if errors.Is(ErrBadConfig, ErrNoTxns) {
		t.Fatal("sentinels must be distinct")
	}
}

func TestRunContextCancellation(t *testing.T) {
	cfg := fastConfig(200, 30, 4)
	cfg.MeasureTxns = 200000 // minutes of simulation if cancellation failed

	// A context that is already dead returns before the machine is even
	// built.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-cancelled run took %v, want immediate return", elapsed)
	}

	// A deadline that expires during the run stops the drive loop at its
	// next poll — well before the 200k-transaction measurement would end
	// (the generous bound covers setup under the race detector).
	dctx, dcancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer dcancel()
	start = time.Now()
	_, err = RunContext(dctx, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Fatalf("mid-run cancellation took %v", elapsed)
	}

	a, err := RunContext(context.Background(), fastConfig(25, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	b := run(t, fastConfig(25, 10, 2))
	if a.TPS != b.TPS || a.CPI != b.CPI {
		t.Fatalf("RunContext diverged from Run: %v vs %v", a, b)
	}
}

func TestIronLawIdentity(t *testing.T) {
	// The measured quantities must satisfy TPS = util*P*F/(IPX*CPI)
	// exactly — instructions, cycles, time and transaction counts are all
	// drawn from the same bookkeeping.
	for _, p := range []int{1, 4} {
		m := run(t, fastConfig(40, 12, p))
		predicted := m.CPUUtil * float64(p) * 1.6e9 / (m.IPX * m.CPI)
		if rel := math.Abs(predicted-m.TPS) / m.TPS; rel > 0.02 {
			t.Fatalf("P=%d iron law off by %.2f%%: predicted %.1f measured %.1f",
				p, rel*100, predicted, m.TPS)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, fastConfig(25, 10, 2))
	b := run(t, fastConfig(25, 10, 2))
	if a.TPS != b.TPS || a.CPI != b.CPI || a.MPI != b.MPI || a.CtxSwitchPerTxn != b.CtxSwitchPerTxn {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	c := fastConfig(25, 10, 2)
	c.Seed = 99
	other := run(t, c)
	if other.TPS == a.TPS && other.CPI == a.CPI {
		t.Fatal("different seeds produced identical results")
	}
}

func TestUserIPXFlatOSIPXGrows(t *testing.T) {
	small := run(t, fastConfig(10, 8, 4))
	large := run(t, fastConfig(360, 48, 4))
	if r := large.UserIPX / small.UserIPX; r < 0.93 || r > 1.07 {
		t.Fatalf("user IPX not flat: %v -> %v", small.UserIPX, large.UserIPX)
	}
	if large.OSIPX <= small.OSIPX {
		t.Fatalf("OS IPX did not grow: %v -> %v", small.OSIPX, large.OSIPX)
	}
	if large.IPX <= small.IPX {
		t.Fatal("total IPX did not grow")
	}
}

func TestMPIAndCPIGrowWithWarehouses(t *testing.T) {
	small := run(t, fastConfig(10, 8, 4))
	large := run(t, fastConfig(360, 48, 4))
	if large.MPI <= small.MPI*1.5 {
		t.Fatalf("MPI growth too weak: %v -> %v", small.MPI, large.MPI)
	}
	if large.CPI <= small.CPI*1.2 {
		t.Fatalf("CPI growth too weak: %v -> %v", small.CPI, large.CPI)
	}
}

func TestMPIRoughlyFlatAcrossProcessors(t *testing.T) {
	// The paper's surprising result: MPI does not increase with the
	// processor count (coherence misses are negligible).
	p1 := run(t, fastConfig(120, 10, 1))
	p4 := run(t, fastConfig(120, 26, 4))
	if r := p4.MPI / p1.MPI; r > 1.35 {
		t.Fatalf("MPI grew %.2fx from 1P to 4P", r)
	}
	// CPI, however, does increase with P (bus queueing).
	if p4.BusTime <= p1.BusTime {
		t.Fatalf("bus time did not grow with P: %v -> %v", p1.BusTime, p4.BusTime)
	}
}

func TestCoherence(t *testing.T) {
	m := run(t, fastConfig(200, 30, 4))
	if m.CoherenceShare <= 0 {
		t.Fatal("no coherence misses on a 4P system")
	}
	if m.CoherenceShare > 0.25 {
		t.Fatalf("coherence share = %v, want small", m.CoherenceShare)
	}
	uni := run(t, fastConfig(200, 12, 1))
	if uni.CoherenceShare != 0 {
		t.Fatalf("1P system has coherence misses: %v", uni.CoherenceShare)
	}
	cfg := fastConfig(200, 30, 4)
	cfg.Coherent = false
	off := run(t, cfg)
	if off.CoherenceShare != 0 {
		t.Fatalf("coherence disabled but share = %v", off.CoherenceShare)
	}
}

func TestDiskTrafficRegions(t *testing.T) {
	cached := run(t, fastConfig(10, 8, 4))
	if cached.ReadKBPerTxn > 0.5 {
		t.Fatalf("cached setup reads %v KB/txn, want ~0", cached.ReadKBPerTxn)
	}
	if cached.BufferHitRatio < 0.999 {
		t.Fatalf("cached setup hit ratio = %v", cached.BufferHitRatio)
	}
	scaled := run(t, fastConfig(360, 48, 4))
	if scaled.ReadKBPerTxn < 5 {
		t.Fatalf("scaled setup reads %v KB/txn, want substantial", scaled.ReadKBPerTxn)
	}
	if scaled.LogKBPerTxn < 4 || scaled.LogKBPerTxn > 8 {
		t.Fatalf("log = %v KB/txn, want ~6", scaled.LogKBPerTxn)
	}
	if scaled.WriteKBPerTxn <= cached.WriteKBPerTxn {
		t.Fatalf("writes did not grow: %v -> %v", cached.WriteKBPerTxn, scaled.WriteKBPerTxn)
	}
}

func TestContextSwitchShape(t *testing.T) {
	// Figure 8: contention spike at 10W, dip in the middle, I/O-driven
	// growth at scale.
	spike := run(t, fastConfig(10, 8, 4))
	dip := run(t, fastConfig(50, 16, 4))
	io := run(t, fastConfig(360, 48, 4))
	if spike.CtxSwitchPerTxn <= dip.CtxSwitchPerTxn {
		t.Fatalf("no contention spike: 10W=%v 50W=%v", spike.CtxSwitchPerTxn, dip.CtxSwitchPerTxn)
	}
	if io.CtxSwitchPerTxn <= dip.CtxSwitchPerTxn {
		t.Fatalf("no I/O growth: 50W=%v 360W=%v", dip.CtxSwitchPerTxn, io.CtxSwitchPerTxn)
	}
	if spike.BusyWaitsPerTxn <= io.BusyWaitsPerTxn {
		t.Fatal("contention waits should concentrate at small W")
	}
}

func TestL3DominatesCPIBreakdown(t *testing.T) {
	m := run(t, fastConfig(200, 30, 4))
	share := m.Breakdown.Share()
	if share["L3"] < 0.4 {
		t.Fatalf("L3 share = %v, want dominant", share["L3"])
	}
	// The computed breakdown must reproduce the measured CPI (our timing
	// model is the Table 4 model, so the identity is exact up to bus-time
	// averaging).
	if rel := math.Abs(m.Breakdown.Total()-m.CPI) / m.CPI; rel > 0.02 {
		t.Fatalf("breakdown total %.3f vs measured CPI %.3f", m.Breakdown.Total(), m.CPI)
	}
}

func TestBranchAndComputeFlat(t *testing.T) {
	small := run(t, fastConfig(10, 8, 4))
	large := run(t, fastConfig(360, 48, 4))
	if small.Breakdown.Inst != large.Breakdown.Inst {
		t.Fatal("Inst component should be constant")
	}
	db := math.Abs(large.Breakdown.Branch - small.Breakdown.Branch)
	if db > 0.15*small.Breakdown.Branch+0.05 {
		t.Fatalf("branch component not flat: %v -> %v", small.Breakdown.Branch, large.Breakdown.Branch)
	}
}

func TestUtilizationNeedsClients(t *testing.T) {
	starved := run(t, fastConfig(360, 8, 4))
	fed := run(t, fastConfig(360, 48, 4))
	if starved.CPUUtil >= fed.CPUUtil {
		t.Fatalf("more clients did not raise utilization: %v -> %v", starved.CPUUtil, fed.CPUUtil)
	}
}

func TestItaniumPreset(t *testing.T) {
	xeon := fastConfig(200, 30, 4)
	it := xeon
	it.Machine = Itanium2Quad()
	mx := run(t, xeon)
	mi := run(t, it)
	// The 3 MB L3 must lower the miss rate and CPI at this size.
	if mi.MPI >= mx.MPI {
		t.Fatalf("Itanium2 MPI %v >= Xeon %v", mi.MPI, mx.MPI)
	}
	if mi.CPI >= mx.CPI {
		t.Fatalf("Itanium2 CPI %v >= Xeon %v", mi.CPI, mx.CPI)
	}
}

func TestHeuristicClients(t *testing.T) {
	if HeuristicClients(10, 1) < 8 {
		t.Fatal("floor violated")
	}
	if HeuristicClients(800, 4) > 64 {
		t.Fatal("cap violated")
	}
	if HeuristicClients(800, 4) <= HeuristicClients(10, 4) {
		t.Fatal("clients should grow with warehouses")
	}
	if HeuristicClients(500, 4) <= HeuristicClients(500, 1) {
		t.Fatal("clients should grow with processors")
	}
}

func TestMetricsString(t *testing.T) {
	m := run(t, fastConfig(10, 8, 1))
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunTraced(t *testing.T) {
	var buf testBuffer
	cfg := fastConfig(25, 10, 2)
	m, refs, err := RunTraced(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if refs == 0 || m.Txns == 0 {
		t.Fatalf("traced run captured refs=%d txns=%d", refs, m.Txns)
	}
	// Header (6 bytes) plus 10 bytes per record.
	if want := 6 + int(refs)*10; buf.n != want {
		t.Fatalf("trace size = %d, want %d", buf.n, want)
	}
	if _, _, err := RunTraced(Config{}, &buf); err == nil {
		t.Fatal("bad config accepted")
	}
}

// testBuffer counts bytes without storing them.
type testBuffer struct{ n int }

func (b *testBuffer) Write(p []byte) (int, error) {
	b.n += len(p)
	return len(p), nil
}
