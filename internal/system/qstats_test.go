package system

import (
	"context"
	"reflect"
	"testing"

	"odbscale/internal/qstats"
	"odbscale/internal/telemetry"
)

// TestRunQueueStatsDoesNotPerturb is the observatory's core guarantee,
// pinned across the W × P grid the issue names: a run with
// WithQueueStats attached produces bit-identical Metrics to a plain
// run.
func TestRunQueueStatsDoesNotPerturb(t *testing.T) {
	for _, w := range []int{10, 200} {
		for _, p := range []int{1, 4} {
			cfg := spanCfg(w, p)
			plain, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			col := qstats.NewCollector()
			observed, err := Run(context.Background(), cfg, WithQueueStats(col))
			if err != nil {
				t.Fatal(err)
			}
			if plain != observed {
				t.Errorf("W=%d P=%d: queue stats perturbed the simulation:\nplain    %+v\nobserved %+v",
					w, p, plain, observed)
			}
			if col.Report() == nil {
				t.Fatalf("W=%d P=%d: no report published", w, p)
			}
		}
	}
}

// TestRunQueueStatsLawResiduals audits the operational laws on a real
// contended multiprocessor run: every station's Little's-law and
// utilization-law residuals must stay below 1e-6 of the measured value,
// and the accumulator invariants (completions ≤ arrivals, U ≤ 1) must
// hold.
func TestRunQueueStatsLawResiduals(t *testing.T) {
	col := qstats.NewCollector()
	if _, err := Run(context.Background(), spanCfg(200, 4), WithQueueStats(col)); err != nil {
		t.Fatal(err)
	}
	r := col.Report()
	if r == nil {
		t.Fatal("no report published")
	}
	if viol := r.Check(1e-6); len(viol) != 0 {
		t.Fatalf("operational-law violations: %v", viol)
	}
	for i := range r.Stations {
		s := &r.Stations[i]
		if s.LittleResidual >= 1e-6 || s.UtilResidual >= 1e-6 {
			t.Errorf("%s: residuals little=%g util=%g, want < 1e-6", s.Name, s.LittleResidual, s.UtilResidual)
		}
	}
	// The run must actually exercise the sensors: CPU episodes and disk
	// visits both complete, and the driver's service demand is nonzero.
	byName := map[string]qstats.Counts{}
	for id := 0; id < qstats.NumStations; id++ {
		byName[qstats.StationName(id)] = col.Counts()[id]
	}
	if byName["cpu"].Completions == 0 || byName["disk"].Completions == 0 {
		t.Errorf("idle sensors: cpu=%d disk=%d completions", byName["cpu"].Completions, byName["disk"].Completions)
	}
	if len(r.Ranking) == 0 {
		t.Error("empty ranking")
	}
	if r.Meta.Warehouses != 200 || r.Meta.Processors != 4 || r.Meta.Engine == "" {
		t.Errorf("report meta = %+v", r.Meta)
	}
}

// TestRunQueueStatsDeterministic re-runs the same seed and checks the
// derived report is bit-identical.
func TestRunQueueStatsDeterministic(t *testing.T) {
	run := func() *qstats.Report {
		col := qstats.NewCollector()
		if _, err := Run(context.Background(), spanCfg(10, 2), WithQueueStats(col)); err != nil {
			t.Fatal(err)
		}
		return col.Report()
	}
	a, b := run(), run()
	if a == nil || b == nil {
		t.Fatal("missing report")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports differ across reruns:\n%+v\n%+v", a, b)
	}
}

// TestRunQueueStatsTimelineStations checks the flight recorder carries
// one per-interval sample row per station when the observatory rides
// along, with sane bounded values.
func TestRunQueueStatsTimelineStations(t *testing.T) {
	cfg := spanCfg(10, 2)
	rec := telemetry.NewRecorder(telemetry.Config{SampleIntervalMS: 20})
	col := qstats.NewCollector()
	if _, err := Run(context.Background(), cfg, WithRecorder(rec), WithQueueStats(col)); err != nil {
		t.Fatal(err)
	}
	samples := rec.Timeline()
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for i, s := range samples {
		if len(s.Stations) != qstats.NumStations {
			t.Fatalf("sample %d has %d stations, want %d", i, len(s.Stations), qstats.NumStations)
		}
		for _, st := range s.Stations {
			if st.Util < 0 || st.Util > 1 {
				t.Fatalf("sample %d station %s util %f outside [0,1]", i, st.Name, st.Util)
			}
			if st.QueueLen < 0 || st.WaitMS < 0 || st.Xps < 0 {
				t.Fatalf("sample %d station %s has negative rates: %+v", i, st.Name, st)
			}
		}
	}
	// Without the observatory the samples carry no station rows.
	rec2 := telemetry.NewRecorder(telemetry.Config{SampleIntervalMS: 20})
	if _, err := Run(context.Background(), cfg, WithRecorder(rec2)); err != nil {
		t.Fatal(err)
	}
	for _, s := range rec2.Timeline() {
		if len(s.Stations) != 0 {
			t.Fatal("plain run samples carry station rows")
		}
	}
}

// TestAmpGaugesResetSafe pins the interval amplification gauges across
// the warm-up measurement reset: the reset zeroes the cumulative
// write/read ledgers mid-run, and the snapshot differencing must
// restart the deltas from zero instead of wrapping, so every retained
// sample's amps stay non-negative for both engines.
func TestAmpGaugesResetSafe(t *testing.T) {
	for _, engine := range []string{"", "lsm"} {
		cfg := spanCfg(10, 1)
		cfg.Engine = engine
		// A long warm-up relative to the 5ms interval guarantees samples
		// straddle the reset.
		cfg.WarmupTxns = 300
		cfg.MeasureTxns = 300
		rec := telemetry.NewRecorder(telemetry.Config{SampleIntervalMS: 5})
		if _, err := Run(context.Background(), cfg, WithRecorder(rec)); err != nil {
			t.Fatal(err)
		}
		samples := rec.Timeline()
		if len(samples) < 4 {
			t.Fatalf("engine %q: only %d samples", engine, len(samples))
		}
		sawWarmup, sawMeasure := false, false
		for i, s := range samples {
			if s.WriteAmp < 0 || s.ReadAmp < 0 || s.SpaceAmp < 0 {
				t.Fatalf("engine %q sample %d: negative amp after reset: write=%g read=%g space=%g",
					engine, i, s.WriteAmp, s.ReadAmp, s.SpaceAmp)
			}
			sawWarmup = sawWarmup || !s.Measuring
			sawMeasure = sawMeasure || s.Measuring
		}
		if !sawWarmup || !sawMeasure {
			t.Fatalf("engine %q: samples did not straddle the reset (warmup=%v measure=%v)",
				engine, sawWarmup, sawMeasure)
		}
	}
}

// TestFlightDeltaResetSafe pins the differencing primitives directly: a
// counter that restarted mid-interval yields its post-reset value, never
// a wrapped huge delta or a negative one.
func TestFlightDeltaResetSafe(t *testing.T) {
	if got := deltaU64(5, 1000); got != 5 {
		t.Errorf("deltaU64(5, 1000) = %d, want 5 (restart, not wrap)", got)
	}
	if got := deltaU64(1000, 5); got != 995 {
		t.Errorf("deltaU64(1000, 5) = %d, want 995", got)
	}
	if got := deltaF64(2.5, 100); got != 2.5 {
		t.Errorf("deltaF64(2.5, 100) = %g, want 2.5", got)
	}
	if got := deltaF64(100, 2.5); got != 97.5 {
		t.Errorf("deltaF64(100, 2.5) = %g, want 97.5", got)
	}
}
