package system

import (
	"context"

	"odbscale/internal/odb"
	"odbscale/internal/qstats"
	"odbscale/internal/sim"
	"odbscale/internal/telemetry"
)

// flightSnap is one reading of the machine's cumulative counters, taken
// by the sampler so successive readings can be differenced — the same
// discipline perfmon applies to the EMON counters.
type flightSnap struct {
	at        sim.Time
	txns      uint64
	instr     uint64
	cycles    uint64
	l2Miss    uint64
	l3Miss    uint64
	userInstr uint64
	osInstr   uint64
	bcGets    uint64
	bcHits    uint64
	physW     uint64 // engine + eviction write bytes (write-amp numerator)
	logicalW  uint64 // logical row-write bytes (write-amp denominator)
	fgReads   uint64 // executed foreground block reads (read-amp numerator)
	logicalR  uint64 // logical row reads (read-amp denominator)
	busy      []float64
	qs        [qstats.NumStations]qstats.Counts // zero unless WithQueueStats
}

// snapFlight reads the cumulative counters at the current instant.
func (m *machine) snapFlight() flightSnap {
	bc := m.bc.Stats()
	ec := m.se.Counters()
	var qs [qstats.NumStations]qstats.Counts
	if m.qs != nil {
		qs = m.qs.Counts()
	}
	return flightSnap{
		qs:        qs,
		at:        m.eng.Now(),
		txns:      m.totalTxns,
		instr:     m.ctr.instructions,
		cycles:    m.ctr.cycles,
		l2Miss:    m.ctr.l2Miss,
		l3Miss:    m.ctr.l3Miss,
		userInstr: m.flUserInstr,
		osInstr:   m.flOSInstr,
		bcGets:    bc.Gets,
		bcHits:    bc.Hits,
		physW:     ec.PhysicalWriteBytes + m.evictWr*odb.BlockSize,
		logicalW:  ec.LogicalWriteBytes,
		fgReads:   m.fgReads,
		logicalR:  ec.LogicalReads,
		busy:      m.sched.PerCPUBusyCycles(),
	}
}

// deltaU64 differences a cumulative counter across an interval; counters
// that were reset mid-interval (the warm-up reset zeroes buffer-cache and
// scheduler statistics) restart the delta from zero instead of wrapping.
func deltaU64(cur, last uint64) uint64 {
	if cur < last {
		return cur
	}
	return cur - last
}

// deltaF64 is deltaU64 for float counters.
func deltaF64(cur, last float64) float64 {
	if cur < last {
		return cur
	}
	return cur - last
}

// flightSample converts two successive snapshots into a timeline sample.
func (m *machine) flightSample(last, cur flightSnap) telemetry.Sample {
	freq := m.cfg.Machine.FreqHz
	intervalCycles := float64(cur.at - last.at)
	intervalSec := intervalCycles / freq

	s := telemetry.Sample{
		SimSeconds: float64(cur.at) / freq,
		Measuring:  m.measuring,
		Txns:       cur.txns,
		BusUtil:    m.fsb.Utilization(),
		RunQueue:   m.sched.ReadyLen(),
		IOInFlight: len(m.inflight),
	}

	dTxns := deltaU64(cur.txns, last.txns)
	dInstr := deltaU64(cur.instr, last.instr)
	dCycles := deltaU64(cur.cycles, last.cycles)
	if intervalSec > 0 {
		s.TPS = float64(dTxns) / intervalSec
	}
	if dInstr > 0 {
		s.CPI = float64(dCycles) / float64(dInstr)
		s.L2MPI = float64(deltaU64(cur.l2Miss, last.l2Miss)) / float64(dInstr)
		s.L3MPI = float64(deltaU64(cur.l3Miss, last.l3Miss)) / float64(dInstr)
	}
	if dTxns > 0 {
		s.UserIPX = float64(deltaU64(cur.userInstr, last.userInstr)) / float64(dTxns)
		s.OSIPX = float64(deltaU64(cur.osInstr, last.osInstr)) / float64(dTxns)
	}
	if dGets := deltaU64(cur.bcGets, last.bcGets); dGets > 0 {
		s.BufferHit = float64(deltaU64(cur.bcHits, last.bcHits)) / float64(dGets)
	}
	if dLogW := deltaU64(cur.logicalW, last.logicalW); dLogW > 0 {
		s.WriteAmp = float64(deltaU64(cur.physW, last.physW)) / float64(dLogW)
	}
	if dLogR := deltaU64(cur.logicalR, last.logicalR); dLogR > 0 {
		s.ReadAmp = float64(deltaU64(cur.fgReads, last.fgReads)) / float64(dLogR)
	}
	s.SpaceAmp = m.se.Counters().SpaceAmp()

	s.CPUUtil = make([]float64, len(cur.busy))
	for i, b := range cur.busy {
		var prev float64
		if i < len(last.busy) {
			prev = last.busy[i]
		}
		if intervalCycles > 0 {
			u := deltaF64(b, prev) / intervalCycles
			if u < 0 {
				u = 0
			}
			if u > 1 {
				u = 1
			}
			s.CPUUtil[i] = u
		}
	}

	if m.qs != nil {
		servers := m.qs.Servers()
		s.Stations = make([]telemetry.StationSample, qstats.NumStations)
		for id := 0; id < qstats.NumStations; id++ {
			st := &s.Stations[id]
			st.Name = qstats.StationName(id)
			dBusy := deltaF64(cur.qs[id].BusyCycles, last.qs[id].BusyCycles)
			dWait := deltaF64(cur.qs[id].WaitCycles, last.qs[id].WaitCycles)
			dCompl := deltaU64(cur.qs[id].Completions, last.qs[id].Completions)
			if intervalCycles > 0 {
				st.QueueLen = (dBusy + dWait) / intervalCycles
				if n := servers[id]; n > 0 {
					u := dBusy / (intervalCycles * float64(n))
					if u > 1 {
						u = 1
					}
					st.Util = u
				}
			}
			if dCompl > 0 {
				st.WaitMS = dWait / float64(dCompl) / m.cyclesPerMS
			}
			if intervalSec > 0 {
				st.Xps = float64(dCompl) / intervalSec
			}
		}
	}
	return s
}

// startFlight arms the timeline sampler: a self-rescheduling event that
// fires every recorder interval of simulated time, differences the
// cumulative counters and pushes one sample. Entirely driven by the
// discrete-event engine — no wall clock is involved.
func (m *machine) startFlight() {
	interval := sim.Time(m.rec.Interval() * m.cyclesPerMS)
	if interval < 1 {
		interval = 1
	}
	last := m.snapFlight()
	var tick func()
	tick = func() {
		cur := m.snapFlight()
		m.rec.PushSample(m.flightSample(last, cur))
		if m.qs != nil {
			// Refresh the live /bottlenecks report on the recorder's
			// cadence — no extra events, the flight tick already exists.
			m.qs.Publish(m.qsReport())
		}
		last = cur
		m.eng.After(interval, tick)
	}
	m.eng.After(interval, tick)
}

// RunRecorded executes a configuration while feeding the flight
// recorder. A nil recorder degrades to a plain run.
//
// Deprecated: RunRecorded is Run with WithRecorder; use Run.
func RunRecorded(ctx context.Context, cfg Config, rec *telemetry.Recorder) (Metrics, error) {
	return Run(ctx, cfg, WithRecorder(rec))
}
