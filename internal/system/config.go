// Package system composes the substrates — the ODB engine, buffer cache,
// disk array, cache hierarchy, bus, OS scheduler and reference
// synthesizer — into a complete machine simulation. Run executes one OLTP
// configuration (warehouses, clients, processors) through warm-up and a
// measurement period and returns the metrics the paper's figures report.
package system

import (
	"odbscale/internal/bus"
	"odbscale/internal/cache"
	"odbscale/internal/cpu"
	"odbscale/internal/engine"
	"odbscale/internal/storage"
	"odbscale/internal/workload"
)

// MachineConfig describes the hardware platform.
type MachineConfig struct {
	Name     string
	FreqHz   float64 // CPU clock
	Geometry cache.Geometry
	Bus      bus.Config
	Disks    storage.Config
	// BufferCacheMB is the SGA database buffer cache capacity (the paper
	// uses 2.8 GB of the 4 GB system for it on the Xeon platform).
	BufferCacheMB int
	Stall         cpu.StallCosts

	// SMT is the number of hardware threads per processor. The paper runs
	// with Hyper-Threading disabled (1); setting 2 enables the NetBurst
	// HT configuration it leaves unexplored: threads share the cache
	// hierarchy and split core bandwidth when co-resident.
	SMT int
	// SMTSlowdown is the per-thread cycle multiplier when both threads of
	// a core are busy (1.55 means each runs at ~65% speed, an aggregate
	// ~1.3x over one thread).
	SMTSlowdown float64
}

// XeonQuad returns the paper's experimental platform: a 4-way 1.6 GHz
// Intel Xeon MP server with 1 MB L3s, a shared front-side bus and 26
// SCSI disks.
func XeonQuad() MachineConfig {
	return MachineConfig{
		Name:          "xeon-quad",
		FreqHz:        1.6e9,
		Geometry:      cache.XeonGeometry(1),
		Bus:           bus.DefaultConfig(),
		Disks:         storage.DefaultConfig(),
		BufferCacheMB: 2867, // 2.8 GB
		Stall:         cpu.Table3Costs(),
		SMT:           1,
		SMTSlowdown:   1.55,
	}
}

// Itanium2Quad returns the validation platform of Section 6.3: 3 MB L3s,
// about 50% more bus bandwidth, 16 GB of memory and 34 disks.
func Itanium2Quad() MachineConfig {
	m := XeonQuad()
	m.Name = "itanium2-quad"
	m.FreqHz = 1.5e9
	m.Geometry = cache.Itanium2Geometry(1)
	m.Bus.BandwidthScale = 1.5
	m.Disks.DataDisks = 32
	m.Disks.LogDisks = 2
	m.BufferCacheMB = 12288 // a 16 GB system leaves ~12 GB for the SGA
	return m
}

// Tuning holds the software-model parameters. They are calibration
// constants, not measurements; DESIGN.md documents the role of each.
type Tuning struct {
	Scale uint64 // scaled-system simulation factor

	QuantumInstr    uint64 // OS time slice in instructions (~10 ms)
	ChunkInstr      uint64 // simulation granularity: max chunk size
	CtxSwitchInstr  uint64 // OS path length per context switch
	IOIssueInstr    uint64 // OS path length to submit one disk read
	IOCompleteInstr uint64 // OS interrupt/completion path per read
	PerTxnOSInstr   uint64 // fixed OS work per transaction (IPC, syscalls)
	DBWriterInstr   uint64 // OS path per DB-writer page write
	LogInstrPerKB   uint64 // log-writer path per KB of redo

	DBWriterIntervalMS float64
	DBWriterBatch      int
	DirtyHighWater     float64 // dirty fraction that triggers the DB writer
	DBWriterAgeGets    uint64  // a dirty block must cool off this many gets before writing

	// Block-contention model ("buffer busy waits"): the probability a
	// hot-block access must wait is ContentionAlpha*(clients-1)/(hot
	// blocks), capped; hot blocks scale with the warehouse count.
	ContentionAlpha   float64
	ContentionCap     float64
	HotBlocksPerWhs   float64
	HotBytesPerWhs    int // structural hot-set growth per warehouse
	BusyWaitMS        float64
	OtherCPI          float64 // flat residual stall cycles per instruction
	StockLevelScan    int
	Synth             workload.Config
	PrefillSampleTxns int // generator draws used to rank blocks for prefill

	// LSM holds the LSM engine's shape and background-bandwidth knobs;
	// ignored by the B-tree engine.
	LSM engine.LSMTuning

	// SnoopLanes controls the coherence domain's deterministic parallel
	// snoop lanes: 0 enables them automatically at or above
	// cache.MinParallelCPUs processors, > 0 forces that many lanes on
	// (tests use this to exercise the parallel path at small P), and < 0
	// forces the sequential snoop loop. Metrics are bit-identical either
	// way.
	SnoopLanes int
}

// DefaultTuning returns the calibrated defaults.
func DefaultTuning() Tuning {
	return Tuning{
		Scale:              64,
		QuantumInstr:       16_000_000,
		ChunkInstr:         120_000,
		CtxSwitchInstr:     12_000,
		IOIssueInstr:       36_000,
		IOCompleteInstr:    26_000,
		PerTxnOSInstr:      32_000,
		DBWriterInstr:      9_000,
		LogInstrPerKB:      1_500,
		DBWriterIntervalMS: 20,
		DBWriterBatch:      64,
		DirtyHighWater:     0.002,
		DBWriterAgeGets:    50_000,
		ContentionAlpha:    35,
		ContentionCap:      0.75,
		HotBlocksPerWhs:    22,
		HotBytesPerWhs:     10 << 10,
		BusyWaitMS:         0.35,
		OtherCPI:           0.35,
		StockLevelScan:     60,
		Synth:              workload.DefaultConfig(64),
		PrefillSampleTxns:  12_000,
		LSM:                engine.DefaultLSMTuning(),
	}
}

// HeuristicClients estimates a client count that keeps CPU utilization
// high for a configuration, approximating Table 1's tuned values; the
// experiment package's auto-tuner refines it.
func HeuristicClients(w, p int) int {
	c := 2*p + w*p/22
	if c < 8 {
		c = 8
	}
	if c > 64 {
		c = 64
	}
	return c
}

// Config is one experiment configuration.
type Config struct {
	Warehouses int
	Clients    int
	Processors int
	Seed       int64

	// Engine names the storage engine (see internal/engine's registry);
	// empty means the default B-tree engine.
	Engine string

	Machine MachineConfig
	Tuning  Tuning

	Coherent bool // MESI snooping on (ablation switch)

	WarmupTxns  int
	MeasureTxns int
}

// DefaultConfig returns a ready-to-run configuration on the Xeon platform.
func DefaultConfig(w, c, p int) Config {
	return Config{
		Warehouses:  w,
		Clients:     c,
		Processors:  p,
		Seed:        1,
		Machine:     XeonQuad(),
		Tuning:      DefaultTuning(),
		Coherent:    true,
		WarmupTxns:  600,
		MeasureTxns: 2400,
	}
}
