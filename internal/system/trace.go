package system

import (
	"context"
	"io"
)

// RunTraced executes a configuration while capturing every simulated
// memory reference of the measurement period to w in the trace format.
//
// Deprecated: RunTraced is Run with WithTrace; use Run.
func RunTraced(cfg Config, w io.Writer) (Metrics, uint64, error) {
	var count uint64
	met, err := Run(context.Background(), cfg, WithTrace(w, &count))
	return met, count, err
}
