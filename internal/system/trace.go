package system

import (
	"context"
	"io"

	"odbscale/internal/cache"
	"odbscale/internal/trace"
)

// RunTraced executes a configuration like Run while capturing every
// simulated memory reference of the measurement period to w in the trace
// format. The returned metrics are the usual ones; the trace can then be
// replayed offline against alternative cache geometries (see package
// trace and cmd/odbtrace).
func RunTraced(cfg Config, w io.Writer) (Metrics, uint64, error) {
	if err := validate(cfg); err != nil {
		return Metrics{}, 0, err
	}
	tw, err := trace.NewWriter(w)
	if err != nil {
		return Metrics{}, 0, err
	}
	m := build(cfg)
	var tapErr error
	m.onReset = func() {
		m.synth.SetTap(func(cpu int, addr cache.Addr, kind cache.Kind) {
			if tapErr == nil {
				tapErr = tw.Write(trace.Record{CPU: uint8(cpu), Kind: kind, Addr: uint64(addr)})
			}
		})
	}
	m.prefill()
	m.start()
	if err := m.drive(context.Background()); err != nil {
		return Metrics{}, 0, err
	}
	if tapErr != nil {
		return Metrics{}, 0, tapErr
	}
	if err := tw.Flush(); err != nil {
		return Metrics{}, 0, err
	}
	return m.metrics(), tw.Count(), nil
}
