package system

import (
	"fmt"

	"odbscale/internal/cpu"
)

// Metrics are the measured quantities of one configuration run — the raw
// material of every figure and table in the paper.
type Metrics struct {
	Warehouses int
	Clients    int
	Processors int

	Txns           uint64  // transactions completed in the measurement period
	ElapsedSeconds float64 // simulated measurement time

	TPS float64 // transaction throughput

	// Path length (Figures 4-6), instructions per transaction.
	IPX     float64
	UserIPX float64
	OSIPX   float64

	// Cycles per instruction (Figures 9-11).
	CPI     float64
	UserCPI float64
	OSCPI   float64

	// L3 misses per instruction (Figures 13-15).
	MPI     float64
	UserMPI float64
	OSMPI   float64

	// Event rates per instruction feeding the Figure 12 breakdown.
	Rates     cpu.EventRates
	Breakdown cpu.Breakdown

	CPUUtil float64 // Figure 2's regions / Table 1's target
	OSShare float64 // Figure 3: fraction of busy cycles in OS code

	// Disk traffic per transaction in KB (Figure 7).
	ReadKBPerTxn  float64
	WriteKBPerTxn float64 // data writebacks
	LogKBPerTxn   float64

	CtxSwitchPerTxn float64 // Figure 8
	BlocksPerTxn    float64 // scheduler block events (I/O, locks, busy waits)
	BusyWaitsPerTxn float64 // block-contention waits

	BusTime float64 // Figure 16: mean IOQ bus-transaction time, cycles
	BusUtil float64

	CoherenceShare float64 // coherence misses / L3 misses
	BufferHitRatio float64
	DiskUtil       float64
	ReadLatencyMS  float64
	LockConflicts  float64 // per transaction

	// Storage-engine identity and amplification (engine comparisons).
	Engine            string
	WriteAmp          float64 // physical write bytes / logical row-write bytes
	ReadAmp           float64 // executed block reads / logical row reads
	SpaceAmp          float64 // on-disk blocks / live-data blocks
	WriteStallsPerTxn float64 // engine writer throttles (LSM L0 backpressure)
}

// String renders a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("W=%d C=%d P=%d: TPS=%.0f IPX=%.2fM CPI=%.2f MPI=%.4f util=%.2f os=%.2f rd=%.1fKB cs=%.2f bus=%.0f",
		m.Warehouses, m.Clients, m.Processors, m.TPS, m.IPX/1e6, m.CPI, m.MPI,
		m.CPUUtil, m.OSShare, m.ReadKBPerTxn, m.CtxSwitchPerTxn, m.BusTime)
}

// modeAccum accumulates per-mode (user or OS) instruction, cycle and
// event totals during the measurement period.
type modeAccum struct {
	instr  uint64
	cycles float64

	// Scaled event counts (multiply by Scale for real counts).
	tcMiss  uint64
	l2Miss  uint64
	l3Miss  uint64
	coher   uint64
	tlbMiss uint64
	mispred uint64
	busLat  float64
}

func (a *modeAccum) add(instr uint64, cycles float64, tc, l2, l3, coher, tlb, mis uint64, busLat float64) {
	a.instr += instr
	a.cycles += cycles
	a.tcMiss += tc
	a.l2Miss += l2
	a.l3Miss += l3
	a.coher += coher
	a.tlbMiss += tlb
	a.mispred += mis
	a.busLat += busLat
}

// cpi returns cycles per instruction for the mode.
func (a *modeAccum) cpi() float64 {
	if a.instr == 0 {
		return 0
	}
	return a.cycles / float64(a.instr)
}

// ratePI converts a scaled event count into a real per-instruction rate.
func (a *modeAccum) ratePI(count uint64, scale uint64) float64 {
	if a.instr == 0 {
		return 0
	}
	return float64(count) * float64(scale) / float64(a.instr)
}
