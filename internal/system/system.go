package system

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"odbscale/internal/buffercache"
	"odbscale/internal/bus"
	"odbscale/internal/cache"
	"odbscale/internal/cpu"
	"odbscale/internal/engine"
	_ "odbscale/internal/engine/btree" // register the default engine
	_ "odbscale/internal/engine/lsm"   // register the LSM engine
	"odbscale/internal/odb"
	"odbscale/internal/osker"
	"odbscale/internal/profile"
	"odbscale/internal/qstats"
	"odbscale/internal/sim"
	"odbscale/internal/storage"
	"odbscale/internal/telemetry"
	"odbscale/internal/txtrace"
	"odbscale/internal/workload"
	"odbscale/internal/xrand"
)

// serverProc is the per-process payload: the ODB server process state.
type serverProc struct {
	txn       *odb.Txn
	opIdx     int
	pendingOS uint64
	carry     []odb.BlockID      // blocks installed by I/O since the last chunk
	dbWriter  bool               // the engine-maintenance process (DB writer / compactor)
	startAt   sim.Time           // when the current transaction was generated (flight recorder)
	ts        *txtrace.ProcState // span builder (nil unless WithSpans)

	wake      func()        // prebound scheduler wakeup, shared by every wait site
	blocksBuf []odb.BlockID // per-chunk visited-block scratch, reused across chunks

	// Queueing-observatory block mark (nil unless WithQueueStats): the
	// delay-center station the current block was attributed to, completed
	// retro-dated at the next chunk start. qsBlockEnd is the simulated
	// time the blocking chunk's own cycles end — the wait starts there,
	// not at the block decision inside the chunk.
	qsSt       *qstats.Station
	qsBlockEnd sim.Time
}

// machine is one fully assembled simulation instance.
type machine struct {
	cfg    Config
	eng    *sim.Engine
	rng    *xrand.Rand
	layout *odb.Layout
	gen    *odb.Generator
	se     engine.Instance // the storage engine behind the op streams
	bc     *buffercache.Cache
	lm     *odb.LockManager
	disks  *storage.Array
	fsb    *bus.Bus
	domain *cache.Domain
	synth  *workload.Synth
	sched  *osker.Scheduler

	cyclesPerMS float64
	smt         int

	ctr       counters
	onReset   func()      // observer hooks armed at measurement start
	extraDone func() bool // extra completion condition (EMON's schedule)

	// Flight recorder (nil unless RunRecorded). flUserInstr/flOSInstr are
	// free-running per-mode instruction counters — unlike user/os they are
	// never gated on measuring, so the sampler can difference them across
	// the whole run, warm-up included.
	rec         *telemetry.Recorder
	flUserInstr uint64
	flOSInstr   uint64

	// Cycle-attribution profiler (nil unless RunProfiled). The chunk
	// execution paths append per-frame instruction shares to the scratch
	// lists; price apportions the chunk's cycles and events over them and
	// truncates. Purely observational: no randomness, no scheduling.
	prof       *profile.Collector
	userShares []profile.Share
	osShares   []profile.Share

	// Span tracer (nil unless WithSpans). Purely observational, like the
	// recorder and profiler: no randomness, no scheduling.
	spans *txtrace.Tracer

	// Queueing observatory (nil unless WithQueueStats). Purely
	// observational like the other observers: stations accumulate inline
	// arithmetic at existing event sites, so no randomness is drawn and
	// no events are scheduled. qsLock/qsBusy/qsEngine cache the
	// delay-center stations the chunk loop marks at its block sites;
	// procs lists every admitted server process so measurement reset can
	// clear in-flight block marks.
	qs       *qstats.Collector
	qsLock   *qstats.Station
	qsBusy   *qstats.Station
	qsEngine *qstats.Station
	procs    []*serverProc

	measuring bool
	wantReset bool
	resetAt   sim.Time
	txns      uint64 // measured commits
	totalTxns uint64
	user, os  modeAccum
	logBytes  float64
	evictWr   uint64
	busyWaits uint64
	fgReads   uint64 // executed foreground block reads (read-amplification numerator)

	// inflight tracks blocks with an outstanding disk read; later missers
	// join the waiter list instead of issuing a duplicate read.
	inflight map[odb.BlockID][]ioWaiter
	// waiterPool recycles the per-block waiter slices that inflight
	// entries use, and dbwScratch is the DB writer's reusable batch
	// buffer; both keep the steady-state I/O path allocation-free.
	waiterPool [][]ioWaiter
	dbwScratch []odb.BlockID
}

type ioWaiter struct {
	proc  *osker.Proc
	sp    *serverProc
	write bool
}

// Sentinel errors for configuration validation. They are wrapped with
// the offending values, so match them with errors.Is.
var (
	// ErrBadConfig reports a configuration whose warehouse, client or
	// processor count is not positive.
	ErrBadConfig = errors.New("bad configuration")
	// ErrNoTxns reports a configuration without a positive MeasureTxns.
	ErrNoTxns = errors.New("MeasureTxns must be positive")
	// ErrBadEngine reports a configuration naming an unregistered
	// storage engine.
	ErrBadEngine = errors.New("unknown storage engine")
)

// validate rejects configurations Run cannot execute.
func validate(cfg Config) error {
	if cfg.Warehouses < 1 || cfg.Clients < 1 || cfg.Processors < 1 {
		return fmt.Errorf("system: %w: W=%d C=%d P=%d",
			ErrBadConfig, cfg.Warehouses, cfg.Clients, cfg.Processors)
	}
	if cfg.MeasureTxns < 1 {
		return fmt.Errorf("system: %w", ErrNoTxns)
	}
	if _, ok := engine.Lookup(cfg.Engine); !ok {
		return fmt.Errorf("system: %w: %q (have %v)", ErrBadEngine, cfg.Engine, engine.Names())
	}
	return nil
}

// capSimCycles bounds a run to 300 simulated seconds, so I/O-bound
// configurations that cannot reach the transaction target still finish.
func capSimCycles(cfg Config) sim.Time {
	return sim.Time(300 * cfg.Machine.FreqHz)
}

// RunContext executes one configuration, honouring the context.
//
// Deprecated: RunContext is Run(ctx, cfg); use Run.
func RunContext(ctx context.Context, cfg Config) (Metrics, error) {
	return Run(ctx, cfg)
}

func build(cfg Config) *machine {
	t := cfg.Tuning
	eng := sim.New()
	rng := xrand.New(cfg.Seed)
	layout := odb.NewLayout(cfg.Warehouses)
	gen := odb.NewGenerator(layout, rng.Split(1))
	gen.StockLevelScan = t.StockLevelScan

	capBlocks := cfg.Machine.BufferCacheMB * (1 << 20) / odb.BlockSize
	bc := buffercache.New(buffercache.Config{Blocks: capBlocks})

	diskCfg := cfg.Machine.Disks
	diskCfg.CyclesPerMS = cfg.Machine.FreqHz / 1e3
	disks := storage.New(diskCfg, eng, rng.Split(2))

	smt := cfg.Machine.SMT
	if smt < 1 {
		smt = 1
	}
	logical := cfg.Processors * smt

	fsb := bus.New(cfg.Machine.Bus, float64(t.Scale))
	geo := workload.ScaledGeometry(cfg.Machine.Geometry, t.Scale)
	domain := cache.NewDomain(geo, cfg.Processors, cfg.Coherent)
	switch {
	case t.SnoopLanes > 0:
		domain.EnableParallelLanes(t.SnoopLanes)
	case t.SnoopLanes == 0 && cfg.Processors >= cache.MinParallelCPUs:
		domain.EnableParallelLanes(0)
	}
	synthCfg := t.Synth
	synthCfg.Scale = t.Scale
	synthCfg.HotSetBytes = t.HotBytesPerWhs * cfg.Warehouses
	synthCfg.LogicalCPUs = logical
	synth := workload.New(synthCfg, domain, fsb, rng.Split(3))
	if smt > 1 {
		synth.SetCPUMap(func(l int) int { return l / smt })
	}

	m := &machine{
		cfg:         cfg,
		eng:         eng,
		rng:         rng.Split(4),
		layout:      layout,
		gen:         gen,
		bc:          bc,
		lm:          odb.NewLockManager(),
		disks:       disks,
		fsb:         fsb,
		domain:      domain,
		synth:       synth,
		cyclesPerMS: cfg.Machine.FreqHz / 1e3,
	}
	m.ctr.scale = t.Scale
	m.smt = smt
	m.inflight = make(map[odb.BlockID][]ioWaiter)
	m.sched = osker.New(eng, osker.Config{CPUs: logical, QuantumInstr: t.QuantumInstr},
		m.runChunk, m.contextSwitch)

	// The storage engine, constructed last so its RNG splits (5 and 6)
	// come after the historical splits 1–4: the parent stream is never
	// drawn from again, so engine construction leaves every established
	// stream untouched and the B-tree engine stays bit-identical to the
	// pre-boundary system layer.
	fac, ok := engine.Lookup(cfg.Engine)
	if !ok {
		panic("system: unvalidated engine " + cfg.Engine)
	}
	m.se = fac.New(engine.Env{
		Layout:      layout,
		Cache:       bc,
		Disks:       disks,
		Sim:         eng,
		Rand:        rng.Split(5),
		CyclesPerMS: m.cyclesPerMS,
		Tuning: engine.Tuning{
			DBWriterBatch:   t.DBWriterBatch,
			DirtyHighWater:  t.DirtyHighWater,
			DBWriterAgeGets: t.DBWriterAgeGets,
			DBWriterInstr:   t.DBWriterInstr,
			LSM:             t.LSM,
		},
	})
	gen.SetPlanner(m.se.Planner(rng.Split(6)))
	return m
}

// smtFactor returns the per-thread cycle multiplier for a chunk running
// on the given logical CPU: hardware threads sharing a core split its
// issue bandwidth while both are busy.
func (m *machine) smtFactor(cpuID int) float64 {
	if m.smt < 2 {
		return 1
	}
	core := cpuID / m.smt
	for t := 0; t < m.smt; t++ {
		sibling := core*m.smt + t
		if sibling != cpuID && m.sched.Busy(sibling) {
			slow := m.cfg.Machine.SMTSlowdown
			if slow < 1 {
				slow = 1
			}
			return slow
		}
	}
	return 1
}

// contentionProb returns the probability that a hot-block access finds the
// block busy. Only processes actually on CPU or runnable contend for block
// latches — clients sleeping on disk I/O do not — so the probability uses
// the instantaneous runnable count over the warehouse-scaled hot-block
// population. This produces the paper's Figure 8 shape: severe contention
// when a cached setup concentrates all clients on few blocks, vanishing as
// warehouses grow and clients increasingly wait on I/O instead.
func (m *machine) contentionProb() float64 {
	t := &m.cfg.Tuning
	runnable := float64(m.cfg.Processors + m.sched.ReadyLen())
	hot := t.HotBlocksPerWhs * float64(m.cfg.Warehouses)
	p := t.ContentionAlpha * (runnable - 1) / hot
	if p > t.ContentionCap {
		p = t.ContentionCap
	}
	return p
}

// prefill loads the buffer cache with the blocks a steady-state run keeps
// resident: all of the engine's initial on-disk image when it fits,
// otherwise the most frequently touched blocks of a generator sample,
// ranked by frequency.
func (m *machine) prefill() {
	base, total := m.se.PrefillBlocks()
	capacity := uint64(m.bc.Capacity())
	install := func(b odb.BlockID) {
		e, _ := m.bc.Install(b)
		m.bc.Release(e)
	}
	if total <= capacity {
		for b := uint64(0); b < total; b++ {
			install(base + odb.BlockID(b))
		}
		m.bc.ResetStats()
		return
	}
	sample := odb.NewGenerator(m.layout, xrand.New(m.cfg.Seed).Split(77))
	sample.StockLevelScan = m.cfg.Tuning.StockLevelScan
	// The sampler plans through the engine too (its own planner stream),
	// so the ranked blocks are the ones this engine's op streams touch.
	sample.SetPlanner(m.se.Planner(xrand.New(m.cfg.Seed).Split(78)))
	freq := make(map[odb.BlockID]uint32)
	for i := 0; i < m.cfg.Tuning.PrefillSampleTxns; i++ {
		txn := sample.Next(i % m.cfg.Clients)
		for _, op := range txn.Ops {
			if op.Kind == odb.OpRead || op.Kind == odb.OpWrite {
				freq[op.Block]++
			}
		}
		sample.Recycle(txn)
	}
	type bf struct {
		b odb.BlockID
		f uint32
	}
	ranked := make([]bf, 0, len(freq))
	for b, f := range freq {
		ranked = append(ranked, bf{b, f})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].f != ranked[j].f {
			return ranked[i].f > ranked[j].f
		}
		return ranked[i].b < ranked[j].b
	})
	if uint64(len(ranked)) > capacity {
		ranked = ranked[:capacity]
	}
	// Fill any remaining capacity with unsampled blocks in extent order:
	// classes like customers have near-uniform popularity, so in steady
	// state the cache holds as many of them as fit — which subset does
	// not matter. Install these coldest first, then the ranked blocks,
	// least popular first, so the hottest end at the MRU end.
	if extra := capacity - uint64(len(ranked)); extra > 0 {
		for b := uint64(0); b < total && extra > 0; b++ {
			if _, seen := freq[base+odb.BlockID(b)]; !seen {
				install(base + odb.BlockID(b))
				extra--
			}
		}
	}
	for i := len(ranked) - 1; i >= 0; i-- {
		install(ranked[i].b)
	}
	m.bc.ResetStats()
}

// start admits the server processes and the DB writer. Every process gets
// one prebound wakeup closure reused by all of its wait sites, so
// blocking and unblocking never allocate.
func (m *machine) start() {
	admit := func(id int, sp *serverProc) *osker.Proc {
		p := &osker.Proc{ID: id, Data: sp}
		sp.wake = func() { m.sched.Wake(p) }
		m.procs = append(m.procs, sp)
		m.sched.Admit(p)
		return p
	}
	for i := 0; i < m.cfg.Clients; i++ {
		sp := &serverProc{}
		if m.spans != nil {
			sp.ts = m.spans.NewProcState(i)
		}
		admit(i, sp)
	}
	dbw := admit(m.cfg.Clients, &serverProc{dbWriter: true})
	interval := sim.Time(m.cfg.Tuning.DBWriterIntervalMS * m.cyclesPerMS)
	var tick func()
	tick = func() {
		if dbw.State() == osker.Blocked {
			m.sched.Wake(dbw)
		}
		m.eng.After(interval, tick)
	}
	m.eng.After(interval, tick)
}

// ctxCheckEvery is how many dispatched events pass between context
// polls in the drive loop — frequent enough that cancellation lands
// within microseconds of wall time, rare enough to stay off the hot
// path.
const ctxCheckEvery = 8192

// drive steps the simulation until the measurement target, the safety
// cap, or a context cancellation is reached.
func (m *machine) drive(ctx context.Context) error {
	capCycles := capSimCycles(m.cfg)
	done := ctx.Done()
	steps := 0
	for m.eng.Step() {
		if m.txns >= uint64(m.cfg.MeasureTxns) && (m.extraDone == nil || m.extraDone()) {
			break
		}
		if m.eng.Now() > capCycles {
			break
		}
		if steps++; steps%ctxCheckEvery == 0 && done != nil {
			select {
			case <-done:
				m.sched.Stop()
				return ctx.Err()
			default:
			}
		}
	}
	m.sched.Stop()
	return nil
}

// isHot reports whether a block op targets contended structures: district
// rows and the append regions of orders, order lines, new-orders and
// history — the block-level hot spots behind the paper's Figure 8 spike
// at small warehouse counts.
func (m *machine) isHot(op *odb.Op) bool {
	if op.Kind != odb.OpWrite {
		return false
	}
	switch m.layout.TableOf(op.Block) {
	case odb.TableWarehouse, odb.TableDistrict, odb.TableOrder,
		odb.TableNewOrder, odb.TableOrderLine, odb.TableHistory:
		return true
	}
	return false
}

// runChunk executes the next chunk of a process: it advances the
// transaction program until a blocking point or the chunk budget, then
// synthesizes the chunk's microarchitectural activity and prices it.
func (m *machine) runChunk(p *osker.Proc, cpuID int, budget uint64) osker.Outcome {
	if m.wantReset && !m.measuring {
		m.reset()
	}
	sp := p.Data.(*serverProc)
	if sp.dbWriter {
		return m.runMaint(p, cpuID)
	}
	t := &m.cfg.Tuning
	ts := sp.ts
	if ts != nil {
		// Classify the gap since the process's last chunk: resource wait
		// up to the scheduler's ready stamp, run-queue wait after it.
		ts.StartChunk(m.eng.Now(), p.ReadyAt())
	}
	if sp.qsSt != nil {
		// Retro-dated completion of the last block's station visit: the
		// wait ran from the blocking chunk's end to the scheduler's ready
		// stamp (a wake that landed inside the chunk reads as zero).
		w := float64(p.ReadyAt() - sp.qsBlockEnd)
		if w < 0 {
			w = 0
		}
		sp.qsSt.Complete(w, 0)
		sp.qsSt = nil
	}

	chunkCap := t.ChunkInstr
	if budget < chunkCap {
		chunkCap = budget
	}
	var userInstr uint64
	osInstr := sp.pendingOS
	sp.pendingOS = 0
	// Visit list for pricing: the carried I/O installs plus every block
	// touched this chunk, built in the proc's reusable scratch buffer.
	blocks := append(sp.blocksBuf[:0], sp.carry...)
	sp.carry = sp.carry[:0]
	blocked := false
	if m.prof != nil {
		// Deferred I/O-completion and writer-assist work charged to this
		// process executes in interrupt context, not the transaction.
		m.osShares = addShare(m.osShares, profile.KindKernel, odb.PhaseSyscall, osInstr)
	}

loop:
	for userInstr < chunkCap {
		if sp.txn == nil {
			sp.txn = m.gen.Next(p.ID)
			sp.opIdx = 0
			osInstr += t.PerTxnOSInstr
			if m.prof != nil {
				m.osShares = addShare(m.osShares, profile.KindOf(sp.txn.Type), odb.PhaseSyscall, t.PerTxnOSInstr)
			}
			if m.rec != nil {
				sp.startAt = m.eng.Now()
			}
			if ts != nil {
				ts.Begin(sp.txn.Type, m.eng.Now())
				ts.AddInstr(odb.PhaseSyscall, t.PerTxnOSInstr)
			}
		}
		op := &sp.txn.Ops[sp.opIdx]
		userInstr += op.Instr
		// The first op's lead-in compute is the parse/plan work of the
		// statement; later ops carry their builder-assigned phase.
		ph := op.Phase
		if sp.opIdx == 0 {
			ph = odb.PhaseParse
		}
		if m.prof != nil {
			m.userShares = addShare(m.userShares, profile.KindOf(sp.txn.Type), ph, op.Instr)
		}
		if ts != nil {
			ts.AddInstr(ph, op.Instr)
		}
		switch op.Kind {
		case odb.OpRead, odb.OpWrite:
			write := op.Kind == odb.OpWrite
			if m.measuring && !write {
				m.fgReads++
			}
			if e := m.bc.Lookup(op.Block); e != nil {
				if write {
					m.bc.MarkDirty(e)
				}
				m.bc.Release(e)
				blocks = append(blocks, op.Block)
				if m.isHot(op) && m.rng.Bernoulli(m.contentionProb()) {
					// Buffer busy wait: another process holds the block.
					if m.measuring {
						m.busyWaits++
					}
					sp.opIdx++
					wait := sim.Time(m.rng.Exp(t.BusyWaitMS) * m.cyclesPerMS)
					m.eng.After(wait, sp.wake)
					if ts != nil {
						ts.SetBlock(txtrace.KindBusyWait, 0)
					}
					if m.qsBusy != nil {
						m.qsBusy.Arrive()
						sp.qsSt = m.qsBusy
					}
					blocked = true
					break loop
				}
			} else {
				// Buffer cache miss: join or start a disk read, and sleep.
				sp.opIdx++
				block := op.Block
				waiters, pending := m.inflight[block]
				if !pending {
					if n := len(m.waiterPool); n > 0 {
						waiters = m.waiterPool[n-1]
						m.waiterPool = m.waiterPool[:n-1]
					}
				}
				m.inflight[block] = append(waiters, ioWaiter{proc: p, sp: sp, write: write})
				if !pending {
					osInstr += t.IOIssueInstr
					if m.prof != nil {
						m.osShares = addShare(m.osShares, profile.KindOf(sp.txn.Type), odb.PhaseSyscall, t.IOIssueInstr)
					}
					if ts != nil {
						ts.AddInstr(odb.PhaseSyscall, t.IOIssueInstr)
					}
					m.disks.Read(uint64(block), func() { m.readDone(block) })
				} else {
					osInstr += 2000 // buffer-wait path; the read is in flight
					if m.prof != nil {
						m.osShares = addShare(m.osShares, profile.KindOf(sp.txn.Type), odb.PhaseSyscall, 2000)
					}
					if ts != nil {
						ts.AddInstr(odb.PhaseSyscall, 2000)
					}
				}
				if ts != nil {
					ts.SetBlock(txtrace.KindIOWait, 0)
				}
				blocked = true
				break loop
			}
		case odb.OpMemWrite:
			// Engine in-memory write path (LSM memtable append). A
			// non-zero return is a writer throttle: the append is
			// admitted — the op is complete — but the writer sleeps.
			if stall := m.se.MemWrite(op.Bytes); stall > 0 {
				sp.opIdx++
				m.eng.After(stall, sp.wake)
				if ts != nil {
					ts.SetBlock(txtrace.KindBusyWait, 0)
				}
				if m.qsEngine != nil {
					m.qsEngine.Arrive()
					sp.qsSt = m.qsEngine
				}
				blocked = true
				break loop
			}
		case odb.OpLock:
			if !m.lm.Acquire(op.Res, p.ID, sp.wake) {
				sp.opIdx++
				osInstr += 2000 // semaphore sleep path
				if m.prof != nil {
					m.osShares = addShare(m.osShares, profile.KindOf(sp.txn.Type), odb.PhaseLock, 2000)
				}
				if ts != nil {
					ts.AddInstr(odb.PhaseLock, 2000)
					ts.SetBlock(txtrace.KindLockWait, uint8(op.Res.Class))
				}
				if m.qsLock != nil {
					m.qsLock.Arrive()
					sp.qsSt = m.qsLock
				}
				blocked = true
				break loop
			}
		case odb.OpUnlock:
			m.lm.Release(op.Res, p.ID)
		case odb.OpLog:
			kb := (op.Bytes + 1023) / 1024
			osInstr += t.LogInstrPerKB * uint64(kb)
			if m.prof != nil {
				m.osShares = addShare(m.osShares, profile.KindOf(sp.txn.Type), odb.PhaseLogCommit, t.LogInstrPerKB*uint64(kb))
			}
			if ts != nil {
				ts.AddInstr(odb.PhaseLogCommit, t.LogInstrPerKB*uint64(kb))
			}
			m.disks.LogWrite(1, nil)
			if m.measuring {
				m.logBytes += float64(op.Bytes)
			}
		case odb.OpCommit:
			if m.rec != nil {
				// Latency at chunk granularity: both endpoints are chunk
				// start times, so the commit chunk's own cycles are excluded
				// symmetrically with the generating chunk's.
				us := float64(m.eng.Now()-sp.startAt) * 1e3 / m.cyclesPerMS
				m.rec.ObserveSpan(sp.txn.Type.String(), uint64(us))
			}
			if ts != nil {
				// Same latency window as the recorder: both endpoints are
				// chunk start times, the commit chunk's cycles excluded.
				m.spans.End(ts, m.eng.Now(), m.measuring)
			}
			m.commit()
			m.gen.Recycle(sp.txn)
			sp.txn = nil
			sp.opIdx = 0
			continue loop // opIdx already reset; skip the increment
		}
		sp.opIdx++
	}

	cycles := m.price(cpuID, p.ID, userInstr, osInstr, blocks)
	sp.blocksBuf = blocks[:0] // price consumed the list synchronously
	if ts != nil {
		ts.EndChunk(m.eng.Now(), cycles, userInstr+osInstr)
	}
	if sp.qsSt != nil {
		sp.qsBlockEnd = m.eng.Now() + cycles
	}
	return osker.Outcome{Cycles: cycles, Instr: userInstr + osInstr, Block: blocked}
}

// readDone installs a completed disk read and wakes every waiter.
func (m *machine) readDone(block odb.BlockID) {
	t := &m.cfg.Tuning
	waiters := m.inflight[block]
	delete(m.inflight, block)
	e, ev := m.bc.Install(block)
	for _, w := range waiters {
		if w.write {
			m.bc.MarkDirty(e)
		}
	}
	m.bc.Release(e)
	if ev.Valid && ev.Dirty {
		m.disks.Write(uint64(ev.ID))
		m.evictWrite()
		if len(waiters) > 0 {
			waiters[0].sp.pendingOS += t.DBWriterInstr
		}
	}
	m.fsb.Posted(m.eng.Now(), float64(odb.BlockSize)/64) // DMA into the SGA
	for _, w := range waiters {
		w.sp.pendingOS += t.IOCompleteInstr
		w.sp.carry = append(w.sp.carry, block)
		m.sched.Wake(w.proc)
	}
	if cap(waiters) > 0 {
		m.waiterPool = append(m.waiterPool, waiters[:0])
	}
}

// runMaint executes one maintenance-process activation: the engine does
// its background work (DB-writer batch cleaning, memtable flushes,
// compaction) as simulated disk traffic and hands back the OS
// instruction bill, the profiler phase, and the visited blocks for
// pricing.
func (m *machine) runMaint(p *osker.Proc, cpuID int) osker.Outcome {
	res := m.se.Maintain(m.dbwScratch[:0])
	if res.Blocks != nil {
		m.dbwScratch = res.Blocks
	}
	if m.prof != nil {
		m.osShares = addShare(m.osShares, profile.KindDBWriter, res.Phase, res.OSInstr)
	}
	cycles := m.price(cpuID, p.ID, 0, res.OSInstr, res.Blocks)
	return osker.Outcome{Cycles: cycles, Instr: res.OSInstr, Block: true}
}

// evictWrite counts a foreground dirty-eviction write.
func (m *machine) evictWrite() {
	if m.measuring {
		m.evictWr++
	}
}

// commit records a completed transaction and arms the measurement reset
// at the end of warm-up.
func (m *machine) commit() {
	m.totalTxns++
	if m.measuring {
		m.txns++
	} else if m.totalTxns >= uint64(m.cfg.WarmupTxns) {
		m.wantReset = true
	}
	if m.rec != nil {
		m.rec.NoteCommit(m.measuring)
	}
}

// reset starts the measurement period: every component's statistics are
// zeroed while all state (caches, buffer pool, queues) is preserved.
func (m *machine) reset() {
	m.measuring = true
	if m.onReset != nil {
		m.onReset()
	}
	m.resetAt = m.eng.Now()
	if m.rec != nil {
		m.rec.MarkPhase(telemetry.PhaseMeasure, float64(m.resetAt)/m.cfg.Machine.FreqHz)
	}
	if m.qs != nil {
		// Reset the stations before the scheduler: osker's ResetStats
		// re-arrives mid-episode processes into the fresh window.
		m.qs.ResetStations()
		// Clear in-flight block marks so no completion lands in the
		// measurement window without its arrival.
		for _, sp := range m.procs {
			sp.qsSt = nil
		}
	}
	m.bc.ResetStats()
	m.disks.ResetStats()
	m.fsb.ResetStats(m.eng.Now())
	m.domain.ResetStats()
	m.sched.ResetStats()
	m.lm.ResetStats()
	m.se.ResetStats()
}

// price synthesizes the chunk's reference activity and converts the event
// counts into cycles using the Table 3/4 stall model.
func (m *machine) price(cpuID, procID int, userInstr, osInstr uint64, blocks []odb.BlockID) sim.Time {
	now := m.eng.Now()
	smt := m.smtFactor(cpuID)
	var userCycles, osCycles float64
	if userInstr > 0 {
		ev := m.synth.Run(workload.ChunkSpec{Now: now, CPU: cpuID, ProcID: procID, Instr: userInstr, Blocks: blocks})
		userCycles = m.eventCycles(userInstr, ev) * smt
		m.ctr.note(userInstr, userCycles, ev)
		if m.rec != nil {
			m.flUserInstr += userInstr
		}
		if m.measuring {
			m.user.add(userInstr, userCycles, ev.TCMiss, ev.L2Miss, ev.L3Miss, ev.CoherMiss, ev.TLBMiss, ev.Mispred, ev.BusLatency)
			if m.prof != nil {
				m.prof.AddChunk(profile.User, m.userShares, userInstr, userCycles, profEvents(ev))
			}
		}
	}
	if osInstr > 0 {
		ev := m.synth.Run(workload.ChunkSpec{Now: now, CPU: cpuID, ProcID: procID, OS: true, Instr: osInstr, Blocks: blocks})
		osCycles = m.eventCycles(osInstr, ev) * smt
		m.ctr.note(osInstr, osCycles, ev)
		if m.rec != nil {
			m.flOSInstr += osInstr
		}
		if m.measuring {
			m.os.add(osInstr, osCycles, ev.TCMiss, ev.L2Miss, ev.L3Miss, ev.CoherMiss, ev.TLBMiss, ev.Mispred, ev.BusLatency)
			if m.prof != nil {
				m.prof.AddChunk(profile.OS, m.osShares, osInstr, osCycles, profEvents(ev))
			}
		}
	}
	if m.prof != nil {
		// Shares are per chunk; truncate whether or not they flushed (the
		// warm-up period collects and discards).
		m.userShares = m.userShares[:0]
		m.osShares = m.osShares[:0]
	}
	return sim.Time(userCycles + osCycles)
}

// eventCycles applies the stall-cost model to one chunk's scaled events.
func (m *machine) eventCycles(instr uint64, ev workload.Events) float64 {
	c := m.cfg.Machine.Stall
	s := float64(m.cfg.Tuning.Scale)
	l2NotL3 := float64(0)
	if ev.L2Miss > ev.L3Miss {
		l2NotL3 = float64(ev.L2Miss - ev.L3Miss)
	}
	stalls := s * (float64(ev.Mispred)*c.BranchMispred +
		float64(ev.TLBMiss)*c.TLBMiss +
		float64(ev.TCMiss)*c.TCMiss +
		l2NotL3*c.L2Miss +
		float64(ev.L3Miss)*(c.L3Miss-c.BusTime1P) + ev.BusLatency)
	return float64(instr)*(c.InstBase+m.cfg.Tuning.OtherCPI) + stalls
}

// contextSwitch prices the OS switch path and flushes the TLB.
func (m *machine) contextSwitch(p *osker.Proc, cpuID int) sim.Time {
	m.synth.FlushTLB(cpuID)
	if m.prof != nil {
		m.osShares = addShare(m.osShares, profile.KindKernel, odb.PhaseSched, m.cfg.Tuning.CtxSwitchInstr)
	}
	return m.price(cpuID, p.ID, 0, m.cfg.Tuning.CtxSwitchInstr, nil)
}

// metrics assembles the final measurements.
func (m *machine) metrics() Metrics {
	cfg := m.cfg
	t := &cfg.Tuning
	out := Metrics{Warehouses: cfg.Warehouses, Clients: cfg.Clients, Processors: cfg.Processors}
	out.Txns = m.txns
	elapsed := float64(m.eng.Now() - m.resetAt)
	out.ElapsedSeconds = elapsed / cfg.Machine.FreqHz
	if m.txns == 0 || elapsed <= 0 {
		return out
	}
	txns := float64(m.txns)
	out.TPS = txns / out.ElapsedSeconds

	totalInstr := m.user.instr + m.os.instr
	totalCycles := m.user.cycles + m.os.cycles
	out.IPX = float64(totalInstr) / txns
	out.UserIPX = float64(m.user.instr) / txns
	out.OSIPX = float64(m.os.instr) / txns
	if totalInstr > 0 {
		out.CPI = totalCycles / float64(totalInstr)
	}
	out.UserCPI = m.user.cpi()
	out.OSCPI = m.os.cpi()

	scale := t.Scale
	combined := modeAccum{instr: totalInstr}
	combined.tcMiss = m.user.tcMiss + m.os.tcMiss
	combined.l2Miss = m.user.l2Miss + m.os.l2Miss
	combined.l3Miss = m.user.l3Miss + m.os.l3Miss
	combined.coher = m.user.coher + m.os.coher
	combined.tlbMiss = m.user.tlbMiss + m.os.tlbMiss
	combined.mispred = m.user.mispred + m.os.mispred

	out.MPI = combined.ratePI(combined.l3Miss, scale)
	out.UserMPI = m.user.ratePI(m.user.l3Miss, scale)
	out.OSMPI = m.os.ratePI(m.os.l3Miss, scale)

	busStats := m.fsb.StatsAt(m.eng.Now())
	out.BusTime = busStats.MeanLatency()
	out.BusUtil = busStats.Utilization()

	out.Rates = cpu.EventRates{
		BranchMispredPI: combined.ratePI(combined.mispred, scale),
		TLBMissPI:       combined.ratePI(combined.tlbMiss, scale),
		TCMissPI:        combined.ratePI(combined.tcMiss, scale),
		L2MissPI:        combined.ratePI(combined.l2Miss, scale),
		L3MissPI:        out.MPI,
		BusTime:         out.BusTime,
		OtherPI:         t.OtherCPI,
	}
	out.Breakdown = cpu.Assemble(cfg.Machine.Stall, out.Rates)

	out.CPUUtil = m.sched.Utilization()
	if totalCycles > 0 {
		out.OSShare = m.os.cycles / totalCycles
	}

	ds := m.disks.StatsNow()
	out.ReadKBPerTxn = float64(ds.Reads) * odb.BlockSizeKB / txns
	out.WriteKBPerTxn = float64(ds.Writes) * odb.BlockSizeKB / txns
	out.LogKBPerTxn = m.logBytes / 1024 / txns
	out.DiskUtil = ds.Utilization(m.disks.DataDisks())
	out.ReadLatencyMS = ds.MeanReadLatency() / m.cyclesPerMS

	out.CtxSwitchPerTxn = float64(m.sched.Stats().ContextSwitches) / txns
	out.BlocksPerTxn = float64(m.sched.Stats().Blocks) / txns
	out.BusyWaitsPerTxn = float64(m.busyWaits) / txns
	if combined.l3Miss > 0 {
		out.CoherenceShare = float64(combined.coher) / float64(combined.l3Miss)
	}
	out.BufferHitRatio = m.bc.Stats().HitRatio()
	out.LockConflicts = float64(m.lm.Stats().Conflicts) / txns

	// Per-engine amplification: physical write volume includes the
	// system layer's foreground dirty evictions, read volume is the
	// executed foreground block reads over the rows the workload asked
	// for, space is the instantaneous on-disk footprint over live data.
	out.Engine = m.se.Name()
	ec := m.se.Counters()
	if ec.LogicalWriteBytes > 0 {
		physW := float64(ec.PhysicalWriteBytes) + float64(m.evictWr)*odb.BlockSize
		out.WriteAmp = physW / float64(ec.LogicalWriteBytes)
	}
	if ec.LogicalReads > 0 {
		out.ReadAmp = float64(m.fgReads) / float64(ec.LogicalReads)
	}
	out.SpaceAmp = ec.SpaceAmp()
	out.WriteStallsPerTxn = float64(ec.WriteStalls) / txns
	return out
}
