package system

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestBTreeEngineGolden pins the B-tree engine to the metrics the
// simulator produced before the StorageEngine boundary existed. The
// golden file was generated from the pre-refactor tree at every
// W ∈ {10, 200, 1200} × P ∈ {1, 4} point of the determinism suite; the
// carve-out is only a refactor if every one of those runs is
// bit-identical. Comparison is keyed on the golden file's fields so
// Metrics may grow new fields (engine amplification counters) without
// invalidating the pin — but any drift in a pre-existing value fails.
//
// Go's encoding/json round-trips float64 exactly, so comparing the
// decoded values is still a bit-level check.
func TestBTreeEngineGolden(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "metrics-btree.json"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var golden map[string]map[string]any
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("decode golden: %v", err)
	}

	points := []struct{ w, p int }{{10, 1}, {10, 4}, {200, 1}, {200, 4}, {1200, 1}, {1200, 4}}
	if testing.Short() {
		points = points[:2]
	}
	for _, pt := range points {
		pt := pt
		key := fmt.Sprintf("[%d,%d]", pt.w, pt.p)
		want, ok := golden[key]
		if !ok {
			t.Fatalf("golden file has no point %s", key)
		}
		t.Run(key, func(t *testing.T) {
			cfg := determinismConfig(pt.w, pt.p)
			m, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			raw, err := json.Marshal(m)
			if err != nil {
				t.Fatalf("marshal metrics: %v", err)
			}
			var got map[string]any
			if err := json.Unmarshal(raw, &got); err != nil {
				t.Fatalf("decode metrics: %v", err)
			}
			compareOnGoldenKeys(t, "", want, got)
		})
	}
}

// compareOnGoldenKeys recursively checks that every field present in the
// golden value matches the run's value exactly. Fields the run has but
// the golden lacks are ignored (new Metrics fields are allowed; drift in
// old ones is not).
func compareOnGoldenKeys(t *testing.T, path string, want, got map[string]any) {
	t.Helper()
	for k, wv := range want {
		p := k
		if path != "" {
			p = path + "." + k
		}
		gv, ok := got[k]
		if !ok {
			t.Errorf("%s: missing from run metrics", p)
			continue
		}
		wm, wIsMap := wv.(map[string]any)
		gm, gIsMap := gv.(map[string]any)
		if wIsMap && gIsMap {
			compareOnGoldenKeys(t, p, wm, gm)
			continue
		}
		if wv != gv {
			t.Errorf("%s: golden %v, got %v", p, wv, gv)
		}
	}
}
