package system

import "testing"

// smtConfig enables two hardware threads per processor.
func smtConfig(w, c, p int) Config {
	cfg := fastConfig(w, c, p)
	cfg.Machine.SMT = 2
	return cfg
}

func TestSMTImprovesThroughput(t *testing.T) {
	// Hyper-Threading on a CPU-bound cached setup: two threads per core
	// hide stalls and should buy a meaningful but sub-2x gain.
	off := run(t, fastConfig(25, 16, 2))
	on := run(t, smtConfig(25, 16, 2))
	gain := on.TPS / off.TPS
	if gain < 1.02 {
		t.Fatalf("SMT gain = %.2fx, want an improvement", gain)
	}
	if gain > 1.9 {
		t.Fatalf("SMT gain = %.2fx, want clearly sub-linear", gain)
	}
}

func TestSMTSharesCaches(t *testing.T) {
	// Co-resident threads share the L3, so MPI should not drop and will
	// typically rise slightly from cross-thread interference.
	off := run(t, fastConfig(100, 24, 4))
	on := run(t, smtConfig(100, 24, 4))
	if on.MPI < off.MPI*0.9 {
		t.Fatalf("SMT lowered MPI: %v -> %v", off.MPI, on.MPI)
	}
}

func TestSMTIronLawStillHolds(t *testing.T) {
	m := run(t, smtConfig(40, 16, 2))
	// With 2 threads per core, the iron law's P counts logical contexts:
	// utilization and CPI are measured per logical CPU.
	predicted := m.CPUUtil * float64(2*2) * 1.6e9 / (m.IPX * m.CPI)
	if rel := (predicted - m.TPS) / m.TPS; rel > 0.02 || rel < -0.02 {
		t.Fatalf("iron law off by %.2f%% under SMT", rel*100)
	}
}

func TestSMTSlowdownAppliesOnlyWhenShared(t *testing.T) {
	// With a single client, the sibling thread is idle, so SMT mode must
	// not slow the lone process down materially.
	off := run(t, fastConfig(10, 1, 1))
	cfg := fastConfig(10, 1, 1)
	cfg.Machine.SMT = 2
	on := run(t, cfg)
	if ratio := on.TPS / off.TPS; ratio < 0.93 {
		t.Fatalf("idle sibling slowed the core: %.2fx", ratio)
	}
}
