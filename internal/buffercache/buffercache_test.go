package buffercache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTest(blocks int) *Cache {
	return New(Config{Blocks: blocks})
}

func TestMissThenHit(t *testing.T) {
	c := newTest(4)
	if e := c.Lookup(1); e != nil {
		t.Fatal("cold lookup hit")
	}
	e, ev := c.Install(1)
	if ev.Valid {
		t.Fatalf("eviction on non-full cache: %+v", ev)
	}
	c.Release(e)
	e = c.Lookup(1)
	if e == nil {
		t.Fatal("lookup after install missed")
	}
	c.Release(e)
	s := c.Stats()
	if s.Gets != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newTest(2)
	a, _ := c.Install(1)
	c.Release(a)
	b, _ := c.Install(2)
	c.Release(b)
	// Touch 1 so 2 is LRU.
	e := c.Lookup(1)
	c.Release(e)
	_, ev := c.Install(3)
	if !ev.Valid || ev.ID != 2 {
		t.Fatalf("evicted %+v, want block 2", ev)
	}
}

func TestPinnedBlocksSkipped(t *testing.T) {
	c := newTest(2)
	pinned, _ := c.Install(1) // keep pinned
	b, _ := c.Install(2)
	c.Release(b)
	_, ev := c.Install(3)
	if !ev.Valid || ev.ID != 2 {
		t.Fatalf("evicted %+v, want unpinned block 2", ev)
	}
	c.Release(pinned)
}

func TestAllPinnedPanics(t *testing.T) {
	c := newTest(1)
	c.Install(1) // stays pinned
	defer func() {
		if recover() == nil {
			t.Fatal("want panic when all blocks pinned")
		}
	}()
	c.Install(2)
}

func TestDoubleInstallPanics(t *testing.T) {
	c := newTest(2)
	e, _ := c.Install(1)
	c.Release(e)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on double install")
		}
	}()
	c.Install(1)
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := newTest(1)
	e, _ := c.Install(1)
	c.MarkDirty(e)
	c.Release(e)
	_, ev := c.Install(2)
	if !ev.Valid || !ev.Dirty {
		t.Fatalf("eviction = %+v, want dirty", ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestCleanBatchOldestFirst(t *testing.T) {
	c := newTest(4)
	for id := BlockID(1); id <= 3; id++ {
		e, _ := c.Install(id)
		c.MarkDirty(e)
		c.Release(e)
	}
	if c.DirtyCount() != 3 {
		t.Fatalf("DirtyCount = %d", c.DirtyCount())
	}
	batch := c.CleanBatch(2)
	if len(batch) != 2 || batch[0] != 1 || batch[1] != 2 {
		t.Fatalf("batch = %v, want oldest first [1 2]", batch)
	}
	if c.DirtyCount() != 1 {
		t.Fatalf("DirtyCount after clean = %d", c.DirtyCount())
	}
	// Cleaned blocks remain resident.
	if e := c.Lookup(1); e == nil || e.Dirty() {
		t.Fatal("cleaned block evicted or still dirty")
	}
}

func TestCleanBatchSkipsPinned(t *testing.T) {
	c := newTest(4)
	e, _ := c.Install(1)
	c.MarkDirty(e) // still pinned
	batch := c.CleanBatch(10)
	if len(batch) != 0 {
		t.Fatalf("pinned dirty block cleaned: %v", batch)
	}
	c.Release(e)
	if batch = c.CleanBatch(10); len(batch) != 1 {
		t.Fatalf("batch after release = %v", batch)
	}
}

func TestMarkDirtyIdempotent(t *testing.T) {
	c := newTest(2)
	e, _ := c.Install(1)
	c.MarkDirty(e)
	c.MarkDirty(e)
	if c.DirtyCount() != 1 {
		t.Fatalf("DirtyCount = %d", c.DirtyCount())
	}
	c.Release(e)
}

func TestMarkDirtyUnpinnedPanics(t *testing.T) {
	c := newTest(2)
	e, _ := c.Install(1)
	c.Release(e)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	c.MarkDirty(e)
}

func TestReleaseWithoutPinPanics(t *testing.T) {
	c := newTest(2)
	e, _ := c.Install(1)
	c.Release(e)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	c.Release(e)
}

func TestPayloadMode(t *testing.T) {
	c := New(Config{Blocks: 2, BlockSize: 64, Payloads: true})
	e, _ := c.Install(1)
	if len(e.Data) != 64 {
		t.Fatalf("payload size = %d", len(e.Data))
	}
	e.Data[0] = 0xAB
	c.MarkDirty(e)
	c.Release(e)
	e = c.Lookup(1)
	if e.Data[0] != 0xAB {
		t.Fatal("payload lost")
	}
	c.Release(e)
}

func TestPayloadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for payloads without block size")
		}
	}()
	New(Config{Blocks: 2, Payloads: true})
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(Config{})
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty ratio nonzero")
	}
	s = Stats{Gets: 10, Hits: 7}
	if s.HitRatio() != 0.7 {
		t.Fatalf("ratio = %v", s.HitRatio())
	}
}

// Property: under random workloads, residency never exceeds capacity,
// hits+misses = gets, and the dirty count matches a reference count.
func TestInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newTest(16)
		dirtyRef := map[BlockID]bool{}
		resident := map[BlockID]bool{}
		for i := 0; i < 3000; i++ {
			id := BlockID(rng.Intn(64))
			e := c.Lookup(id)
			if e == nil {
				var ev Evicted
				e, ev = c.Install(id)
				resident[id] = true
				if ev.Valid {
					delete(resident, ev.ID)
					delete(dirtyRef, ev.ID)
				}
			}
			if rng.Intn(3) == 0 {
				c.MarkDirty(e)
				dirtyRef[id] = true
			}
			c.Release(e)
			if rng.Intn(20) == 0 {
				for _, cleaned := range c.CleanBatch(3) {
					delete(dirtyRef, cleaned)
				}
			}
		}
		if c.Len() > c.Capacity() || c.Len() != len(resident) {
			return false
		}
		if c.DirtyCount() != len(dirtyRef) {
			return false
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Gets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a larger cache never has fewer hits on the same trace.
func TestLargerCacheMoreHitsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]BlockID, 2000)
		for i := range trace {
			trace[i] = BlockID(rng.Intn(50))
		}
		run := func(capacity int) uint64 {
			c := newTest(capacity)
			for _, id := range trace {
				if e := c.Lookup(id); e != nil {
					c.Release(e)
				} else {
					e, _ := c.Install(id)
					c.Release(e)
				}
			}
			return c.Stats().Hits
		}
		return run(32) >= run(8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestResetStatsPreservesContents(t *testing.T) {
	c := newTest(2)
	e, _ := c.Install(1)
	c.Release(e)
	c.ResetStats()
	if c.Stats().Gets != 0 {
		t.Fatal("stats not reset")
	}
	if e := c.Lookup(1); e == nil {
		t.Fatal("contents lost")
	} else {
		c.Release(e)
	}
}

// --- scan resistance ---

// warmHotSet installs blocks [0, n) and touches each a few times so they
// sit at the warm end of the LRU chain.
func warmHotSet(c *Cache, n int) {
	for i := 0; i < n; i++ {
		e, _ := c.Install(BlockID(i))
		c.Release(e)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			e := c.Lookup(BlockID(i))
			if e == nil {
				panic("hot block missing during warm-up")
			}
			c.Release(e)
		}
	}
}

// TestInstallScanPreservesHotSet is the scan-resistance guarantee: a
// sequential scan several times the cache size, installed with
// InstallScan, must not evict any member of the transactional hot set.
func TestInstallScanPreservesHotSet(t *testing.T) {
	const hot, capacity = 32, 64
	c := newTest(capacity)
	warmHotSet(c, hot)
	// A compaction-style sweep 8x the cache size in mixed mode: hot
	// lookups interleave with the scan's one-touch installs.
	for i := 0; i < 8*capacity; i++ {
		e, _ := c.InstallScan(BlockID(10_000 + i))
		c.Release(e)
		if i%7 == 0 { // the OLTP side keeps running
			h := c.Lookup(BlockID(i % hot))
			if h == nil {
				t.Fatalf("hot block %d evicted mid-scan after %d scan installs", i%hot, i+1)
			}
			c.Release(h)
		}
	}
	for i := 0; i < hot; i++ {
		e := c.Lookup(BlockID(i))
		if e == nil {
			t.Fatalf("hot block %d evicted by scan", i)
		}
		c.Release(e)
	}
}

// TestPlainInstallHasNoScanResistance pins the contrast: the same sweep
// through MRU-inserting Install flushes the hot set — which is exactly
// why the scan path must use InstallScan.
func TestPlainInstallHasNoScanResistance(t *testing.T) {
	const hot, capacity = 32, 64
	c := newTest(capacity)
	warmHotSet(c, hot)
	for i := 0; i < 8*capacity; i++ {
		e, _ := c.Install(BlockID(10_000 + i))
		c.Release(e)
	}
	for i := 0; i < hot; i++ {
		if e := c.Lookup(BlockID(i)); e != nil {
			c.Release(e)
			t.Fatalf("hot block %d survived an MRU-inserted sweep 8x the cache", i)
		}
	}
}

// TestInstallScanChurnsAmongItself checks the victims of a long scan are
// the scan's own earlier blocks, not the warm set: cold-end insertion
// makes the scan self-evicting.
func TestInstallScanChurnsAmongItself(t *testing.T) {
	const hot, capacity = 32, 64
	c := newTest(capacity)
	warmHotSet(c, hot)
	fill := capacity - hot // cold slots available before eviction starts
	for i := 0; i < 4*capacity; i++ {
		e, ev := c.InstallScan(BlockID(10_000 + i))
		c.Release(e)
		if i >= fill {
			if !ev.Valid {
				t.Fatalf("scan install %d evicted nothing with a full cache", i)
			}
			if ev.ID < 10_000 {
				t.Fatalf("scan install %d evicted workload block %d", i, ev.ID)
			}
		}
	}
}

// TestScanBlockPromotedOnReRead: a scanned block the workload re-reads
// is promoted to MRU by the hit and gains normal residence.
func TestScanBlockPromotedOnReRead(t *testing.T) {
	const capacity = 16
	c := newTest(capacity)
	e, _ := c.InstallScan(500)
	c.Release(e)
	// The workload touches the scanned block: promoted to MRU.
	e = c.Lookup(500)
	if e == nil {
		t.Fatal("scanned block missing immediately after install")
	}
	c.Release(e)
	// A follow-on scan as large as the cache cannot displace it now.
	for i := 0; i < capacity; i++ {
		s, _ := c.InstallScan(BlockID(600 + i))
		c.Release(s)
	}
	if e = c.Lookup(500); e == nil {
		t.Fatal("promoted block evicted by a subsequent scan")
	}
	c.Release(e)
}

// TestInstallScanDirtyEviction: dirty blocks displaced by a scan still
// surface through Evicted so the caller writes them back — cold-end
// insertion must not break the writeback contract.
func TestInstallScanDirtyEviction(t *testing.T) {
	c := newTest(2)
	a, _ := c.Install(1)
	c.MarkDirty(a)
	c.Release(a)
	b, _ := c.Install(2)
	c.MarkDirty(b)
	c.Release(b)
	_, ev := c.InstallScan(3)
	if !ev.Valid || !ev.Dirty {
		t.Fatalf("dirty victim not reported: %+v", ev)
	}
	if got := c.Stats().Writebacks; got != 1 {
		t.Fatalf("writebacks = %d, want 1", got)
	}
}
