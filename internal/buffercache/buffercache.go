// Package buffercache implements the database buffer cache held in the
// SGA — the paper's central memory structure. It tracks block usage with
// an LRU chain so the most recently and frequently used database blocks
// stay in memory, supports pinning while a server process operates on a
// block, records dirty state for modified blocks, and exposes the
// DB-writer's view: the set of aged dirty blocks that must be written
// back to disk before reuse.
//
// The cache operates on block identities; in payload mode it also owns an
// 8 KB page per cached block so a functional storage engine can read and
// write real bytes (used by the small-scale examples and recovery tests).
package buffercache

import "fmt"

// BlockID names a database block.
type BlockID uint64

// Config sizes the cache.
type Config struct {
	Blocks    int  // capacity in blocks
	BlockSize int  // bytes per block (payload mode only)
	Payloads  bool // allocate real pages
}

// Stats counts cache events.
type Stats struct {
	Gets       uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty blocks handed to the DB writer or evicted dirty
}

// HitRatio returns hits per get.
func (s Stats) HitRatio() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Entry is a cached block. Callers receive entries pinned and must
// Release them.
type Entry struct {
	ID    BlockID
	Data  []byte // nil unless payload mode
	dirty bool
	pins  int
	touch uint64 // get-counter value at the last Lookup/Install

	prev, next           *Entry // LRU chain
	dirtyPrev, dirtyNext *Entry // dirty chain (aged order)
	inDirty              bool
}

// Dirty reports whether the entry has unwritten modifications.
func (e *Entry) Dirty() bool { return e.dirty }

// Cache is the buffer cache.
type Cache struct {
	cfg   Config
	table map[BlockID]*Entry

	head, tail           *Entry // head = MRU, tail = LRU
	dirtyHead, dirtyTail *Entry // dirtyTail = oldest dirty
	free                 *Entry // recycled entries, chained through next
	size                 int
	dirtyCount           int

	stats Stats
}

// New builds an empty cache.
func New(cfg Config) *Cache {
	if cfg.Blocks <= 0 {
		panic("buffercache: non-positive capacity")
	}
	if cfg.Payloads && cfg.BlockSize <= 0 {
		panic("buffercache: payload mode needs a block size")
	}
	c := &Cache{cfg: cfg, table: make(map[BlockID]*Entry, cfg.Blocks)}
	// The cache runs at capacity in steady state, so carve all entries out
	// of one arena up front and hand them out through the free list.
	arena := make([]Entry, cfg.Blocks)
	for i := range arena {
		arena[i].next = c.free
		c.free = &arena[i]
	}
	return c
}

// --- intrusive LRU list ---

func (c *Cache) lruRemove(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) lruPushFront(e *Entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) lruPushBack(e *Entry) {
	e.prev, e.next = c.tail, nil
	if c.tail != nil {
		c.tail.next = e
	}
	c.tail = e
	if c.head == nil {
		c.head = e
	}
}

// --- dirty list (append new at head; tail is the oldest) ---

func (c *Cache) dirtyRemove(e *Entry) {
	if !e.inDirty {
		return
	}
	if e.dirtyPrev != nil {
		e.dirtyPrev.dirtyNext = e.dirtyNext
	} else {
		c.dirtyHead = e.dirtyNext
	}
	if e.dirtyNext != nil {
		e.dirtyNext.dirtyPrev = e.dirtyPrev
	} else {
		c.dirtyTail = e.dirtyPrev
	}
	e.dirtyPrev, e.dirtyNext = nil, nil
	e.inDirty = false
	c.dirtyCount--
}

func (c *Cache) dirtyPushFront(e *Entry) {
	if e.inDirty {
		return
	}
	e.dirtyPrev, e.dirtyNext = nil, c.dirtyHead
	if c.dirtyHead != nil {
		c.dirtyHead.dirtyPrev = e
	}
	c.dirtyHead = e
	if c.dirtyTail == nil {
		c.dirtyTail = e
	}
	e.inDirty = true
	c.dirtyCount++
}

// Lookup returns the entry for id pinned, or nil on a miss. A hit moves
// the block to the MRU position.
func (c *Cache) Lookup(id BlockID) *Entry {
	c.stats.Gets++
	e, ok := c.table[id]
	if !ok {
		c.stats.Misses++
		return nil
	}
	c.stats.Hits++
	c.lruRemove(e)
	c.lruPushFront(e)
	e.touch = c.stats.Gets
	e.pins++
	return e
}

// Evicted describes a block displaced by Install. Valid reports whether an
// eviction happened at all; it is a value, not a pointer, so the steady
// state of a full cache (every install evicts) does not allocate. In
// payload mode Data carries the victim's page so a dirty victim can be
// written to disk.
type Evicted struct {
	ID    BlockID
	Dirty bool
	Valid bool
	Data  []byte
}

// Install inserts a block just read from disk, pinned, evicting the
// least-recently-used unpinned block if the cache is full. Installing a
// block that is already present is a bug in the caller and panics.
// The second return reports the eviction, if one happened; a dirty victim
// must be written back by the caller (eviction write).
//
// Entry structs are pooled: an evicted block's entry is recycled for the
// incoming block, so a warmed-up cache installs without allocating. The
// victim's payload page (if any) is handed off in Evicted, never reused.
func (c *Cache) Install(id BlockID) (*Entry, Evicted) {
	return c.install(id, false)
}

// InstallScan inserts a block read by a sequential scan — a stock-level
// sweep, an engine's compaction pass — at the cold (LRU) end of the
// chain instead of the MRU position, the midpoint/NOCACHE discipline
// real servers apply to large scans. One-touch scan blocks then become
// the next victims and churn among themselves, so a scan longer than
// the cache cannot flush the transactional working set; a block the
// workload re-reads is promoted to MRU by the Lookup hit as usual.
// Everything else (pinning, eviction, entry pooling) matches Install.
func (c *Cache) InstallScan(id BlockID) (*Entry, Evicted) {
	return c.install(id, true)
}

func (c *Cache) install(id BlockID, scan bool) (*Entry, Evicted) {
	if _, ok := c.table[id]; ok {
		panic(fmt.Sprintf("buffercache: Install of resident block %d", id))
	}
	var ev Evicted
	if c.size >= c.cfg.Blocks {
		victim := c.tail
		for victim != nil && victim.pins > 0 {
			victim = victim.prev
		}
		if victim == nil {
			panic("buffercache: all blocks pinned, cannot install")
		}
		ev = Evicted{ID: victim.ID, Dirty: victim.dirty, Valid: true, Data: victim.Data}
		if victim.dirty {
			c.stats.Writebacks++
			c.dirtyRemove(victim)
		}
		c.lruRemove(victim)
		delete(c.table, victim.ID)
		c.size--
		c.stats.Evictions++
		victim.Data = nil
		victim.next = c.free
		c.free = victim
	}
	var e *Entry
	if c.free != nil {
		e = c.free
		c.free = e.next
		*e = Entry{ID: id, pins: 1, touch: c.stats.Gets}
	} else {
		//lint:ignore hotalloc arena-miss fallback: allocates only until the entry free list covers capacity, steady state reuses
		e = &Entry{ID: id, pins: 1, touch: c.stats.Gets}
	}
	if c.cfg.Payloads {
		e.Data = make([]byte, c.cfg.BlockSize)
	}
	c.table[id] = e
	if scan {
		c.lruPushBack(e)
	} else {
		c.lruPushFront(e)
	}
	c.size++
	return e, ev
}

// MarkDirty flags a pinned entry as modified.
func (c *Cache) MarkDirty(e *Entry) {
	if e.pins <= 0 {
		panic("buffercache: MarkDirty on unpinned entry")
	}
	if !e.dirty {
		e.dirty = true
		c.dirtyPushFront(e)
	}
}

// Release unpins an entry obtained from Lookup or Install.
func (c *Cache) Release(e *Entry) {
	if e.pins <= 0 {
		panic("buffercache: Release without pin")
	}
	e.pins--
}

// CleanBatch cleans up to max dirty unpinned blocks in oldest-dirtied
// order, returning their IDs for the DB writer. It is equivalent to
// CleanAged with no age requirement.
func (c *Cache) CleanBatch(max int) []BlockID { return c.CleanAged(max, 0) }

// CleanAged implements the DB writer's aging policy: walking the dirty
// list oldest-first, it cleans blocks that have not been touched for at
// least minAge gets. Hot blocks being re-dirtied stay dirty in memory
// instead of being written over and over, as with Oracle's LRU-W writer;
// only aged (cooled-off) dirty blocks reach the disk.
func (c *Cache) CleanAged(max int, minAge uint64) []BlockID {
	return c.CleanAgedInto(nil, max, minAge)
}

// CleanAgedInto is CleanAged appending into dst, so a periodic caller (the
// DB writer tick) can reuse one scratch buffer across calls.
func (c *Cache) CleanAgedInto(dst []BlockID, max int, minAge uint64) []BlockID {
	start := len(dst)
	e := c.dirtyTail
	for e != nil && len(dst)-start < max {
		prev := e.dirtyPrev
		if e.pins == 0 && c.stats.Gets-e.touch >= minAge {
			e.dirty = false
			c.dirtyRemove(e)
			c.stats.Writebacks++
			dst = append(dst, e.ID)
		}
		e = prev
	}
	return dst
}

// CleanAllDirty cleans every dirty unpinned block regardless of position
// (a checkpoint) and returns their IDs.
func (c *Cache) CleanAllDirty() []BlockID {
	var out []BlockID
	e := c.dirtyTail
	for e != nil {
		prev := e.dirtyPrev
		if e.pins == 0 {
			e.dirty = false
			c.dirtyRemove(e)
			c.stats.Writebacks++
			out = append(out, e.ID)
		}
		e = prev
	}
	return out
}

// DirtyCount returns the number of dirty blocks.
func (c *Cache) DirtyCount() int { return c.dirtyCount }

// Len returns the number of resident blocks.
func (c *Cache) Len() int { return c.size }

// Capacity returns the configured capacity in blocks.
func (c *Cache) Capacity() int { return c.cfg.Blocks }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes counters, preserving contents (end of warm-up).
func (c *Cache) ResetStats() { c.stats = Stats{} }
