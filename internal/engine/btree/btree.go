// Package btree is the paper's storage engine re-homed behind the
// StorageEngine boundary: heap rows and B-tree indexes on fixed
// extents, updates in place through the buffer cache, and a DB-writer
// that cleans aged dirty blocks in the background. Its behaviour is
// pinned bit-identical to the pre-boundary system layer: the planner
// reproduces the historical op streams and Maintain reproduces the
// historical DB-writer activation, draw for draw.
package btree

import (
	"odbscale/internal/engine"
	"odbscale/internal/odb"
	"odbscale/internal/sim"
	"odbscale/internal/xrand"
)

func init() { engine.Register(factory{}) }

type factory struct{}

func (factory) Name() string { return "btree" }

func (factory) New(env engine.Env) engine.Instance {
	return &instance{
		env:  env,
		live: engine.LiveDataBlocks(env.Layout),
	}
}

// instance is one B-tree engine bound to a machine.
type instance struct {
	env  engine.Env
	live uint64
	ctr  engine.Counters
}

func (in *instance) Name() string { return "btree" }

// Planner wraps the odb B-tree planner with logical-volume counting.
// It draws nothing from rng, so the generator's op streams stay
// bit-identical to the pre-boundary generator.
func (in *instance) Planner(rng *xrand.Rand) odb.AccessPlanner {
	_ = rng
	return &planner{in: in, bt: odb.NewBTreePlanner(in.env.Layout)}
}

type planner struct {
	in *instance
	bt *odb.BTreePlanner
}

func (p *planner) ReadRow(ops []odb.Op, t odb.TableID, ord uint64) []odb.Op {
	p.in.ctr.LogicalReads++
	return p.bt.ReadRow(ops, t, ord)
}

func (p *planner) WriteRow(ops []odb.Op, t odb.TableID, ord uint64, delta int64) []odb.Op {
	p.in.ctr.LogicalWriteBytes += uint64(odb.RowBytes(t))
	return p.bt.WriteRow(ops, t, ord, delta)
}

func (p *planner) IndexLookup(ops []odb.Op, idx odb.TableID, ord uint64) []odb.Op {
	return p.bt.IndexLookup(ops, idx, ord)
}

// PrefillBlocks: the whole database image, heaps and indexes.
func (in *instance) PrefillBlocks() (odb.BlockID, uint64) {
	return 0, in.env.Layout.TotalBlocks()
}

// MemWrite never runs: the B-tree planner emits no OpMemWrite.
func (in *instance) MemWrite(bytes int) sim.Time {
	_ = bytes
	return 0
}

// Maintain is the historical DB-writer activation: when the dirty pool
// crosses the high-water mark, clean one batch of aged blocks.
func (in *instance) Maintain(scratch []odb.BlockID) engine.MaintResult {
	t := &in.env.Tuning
	var osInstr uint64 = 2_000 // scan overhead
	var blocks []odb.BlockID
	dirtyTrigger := int(t.DirtyHighWater * float64(in.env.Cache.Capacity()))
	if in.env.Cache.DirtyCount() > dirtyTrigger {
		blocks = in.env.Cache.CleanAgedInto(scratch[:0], t.DBWriterBatch, t.DBWriterAgeGets)
		for _, id := range blocks {
			in.env.Disks.Write(uint64(id))
		}
		osInstr += uint64(len(blocks)) * t.DBWriterInstr
		in.ctr.PhysicalWriteBytes += uint64(len(blocks)) * odb.BlockSize
	}
	return engine.MaintResult{OSInstr: osInstr, Phase: odb.PhaseSyscall, Blocks: blocks}
}

// Counters reports the period ledger; the footprint is the static
// extent map, so space amplification is the index overhead over the
// heaps.
func (in *instance) Counters() engine.Counters {
	c := in.ctr
	c.DiskBlocks = in.env.Layout.TotalBlocks()
	c.LiveBlocks = in.live
	return c
}

func (in *instance) ResetStats() { in.ctr = engine.Counters{} }
