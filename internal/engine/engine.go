// Package engine defines the StorageEngine boundary: the contract
// between the system layer (scheduler, buffer cache, disk array,
// pricing) and a storage engine implementation (B-tree today, LSM
// beside it). An engine owns four things:
//
//   - access planning: how a logical row read/write/index probe becomes
//     an op-stream fragment (which blocks, which phases) — via
//     odb.AccessPlanner;
//   - the in-memory write path: OpMemWrite execution (memtable appends,
//     write stalls when flushing falls behind);
//   - background maintenance: the work one maintenance-process
//     activation performs (DB-writer batch cleaning, memtable flushes,
//     leveled compaction) expressed as simulated disk traffic plus an
//     OS instruction bill for the system layer to price;
//   - amplification accounting: logical vs physical read/write volumes
//     and on-disk vs live footprint.
//
// The system layer stays engine-agnostic: it executes whatever ops the
// planner emitted, activates Maintain on the maintenance timer, and
// reads Counters at metrics time. Engines register themselves by name
// in an init-time registry, so engine selection is a string in the run
// configuration.
package engine

import (
	"sort"

	"odbscale/internal/buffercache"
	"odbscale/internal/odb"
	"odbscale/internal/sim"
	"odbscale/internal/storage"
	"odbscale/internal/xrand"
)

// Env is the simulated machinery an engine instance operates against.
// The engine does not own any of it; the system layer wires the same
// buffer cache and disk array it prices against.
type Env struct {
	Layout      *odb.Layout
	Cache       *buffercache.Cache
	Disks       *storage.Array
	Sim         *sim.Engine
	Rand        *xrand.Rand // engine-private stream; B-tree never draws from it
	CyclesPerMS float64
	Tuning      Tuning
}

// Tuning is the engine-relevant slice of the system tuning knobs. The
// DB-writer fields reproduce the system layer's historical maintenance
// parameters exactly; LSM holds the LSM engine's own knobs.
type Tuning struct {
	DBWriterBatch   int     // max blocks cleaned per activation
	DirtyHighWater  float64 // dirty fraction that triggers cleaning
	DBWriterAgeGets uint64  // age threshold for CleanAgedInto
	DBWriterInstr   uint64  // OS instructions per block written back
	LSM             LSMTuning
}

// LSMTuning parameterizes the LSM engine's shape and its background
// bandwidth.
type LSMTuning struct {
	MemtableMB    int     // memtable capacity; also the size of one L0 run
	Fanout        int     // level size ratio cap_{i+1}/cap_i
	L0CompactRuns int     // L0 run count that triggers L0→L1 compaction
	L0StallRuns   int     // L0 run count (incl. sealed memtables) that stalls writers
	BloomFPRate   float64 // per-run bloom-filter false-positive rate on reads
	ObsoleteFrac  float64 // fraction of compacted-in bytes that are overwrites
	CompactBatch  int     // block units one maintenance activation processes
	StallMS       float64 // writer throttle per stalled memtable append
	KeyBytes      int     // per-row key + metadata overhead on memtable appends
}

// DefaultLSMTuning is a RocksDB-flavoured shape: 8 MB memtable, 10x
// fanout, compaction at 4 L0 runs, delayed-write throttling at 8.
func DefaultLSMTuning() LSMTuning {
	return LSMTuning{
		MemtableMB:    8,
		Fanout:        10,
		L0CompactRuns: 4,
		L0StallRuns:   8,
		BloomFPRate:   0.01,
		ObsoleteFrac:  0.35,
		CompactBatch:  512,
		StallMS:       2.0,
		KeyBytes:      24,
	}
}

// Counters is the per-engine amplification ledger. All volumes are
// engine-side: the system layer adds its own foreground contributions
// (dirty-eviction writes, executed foreground reads) when it derives
// the amplification metrics.
type Counters struct {
	LogicalReads       uint64 // rows the workload asked to read
	LogicalWriteBytes  uint64 // row bytes the workload asked to write
	PhysicalWriteBytes uint64 // bytes the engine wrote to disk (flush + compaction + writeback)
	CompactReadBlocks  uint64 // blocks re-read as compaction input
	DiskBlocks         uint64 // current on-disk footprint, blocks
	LiveBlocks         uint64 // blocks needed for exactly one copy of the live data
	WriteStalls        uint64 // writer throttles (memtable full while L0 backed up)
	Flushes            uint64 // memtable flushes completed
	Compactions        uint64 // compaction jobs completed
}

// SpaceAmp returns the on-disk footprint over the live data size.
func (c Counters) SpaceAmp() float64 {
	if c.LiveBlocks == 0 {
		return 0
	}
	return float64(c.DiskBlocks) / float64(c.LiveBlocks)
}

// MaintResult is what one maintenance activation did: the OS
// instruction bill for the system layer to price, the phase the work is
// attributed to in the profiler, and the visited blocks for the
// microarchitectural synthesizer (may alias the scratch passed to
// Maintain; nil when the activation found nothing to do).
type MaintResult struct {
	OSInstr uint64
	Phase   odb.Phase
	Blocks  []odb.BlockID
}

// Instance is one constructed engine bound to a machine's Env.
type Instance interface {
	// Name returns the registered engine name.
	Name() string
	// Planner returns an access planner feeding this instance's logical
	// counters. rng is the planner's private stream; planners that draw
	// no randomness (B-tree) ignore it, so handing them a stream is
	// free. Multiple planners may be live at once (the prefill sampler
	// uses its own).
	Planner(rng *xrand.Rand) odb.AccessPlanner
	// PrefillBlocks is the extent holding the engine's initial on-disk
	// data, for buffer-cache warming.
	PrefillBlocks() (base odb.BlockID, n uint64)
	// MemWrite executes an OpMemWrite of the given bytes and returns the
	// writer throttle to apply (0 = proceed immediately).
	MemWrite(bytes int) sim.Time
	// Maintain performs one maintenance activation. scratch is a
	// reusable block buffer the result's Blocks may alias.
	Maintain(scratch []odb.BlockID) MaintResult
	// Counters returns the amplification ledger for the current
	// measurement period.
	Counters() Counters
	// ResetStats zeroes the period counters, preserving engine state.
	ResetStats()
}

// Engine is a registered engine factory.
type Engine interface {
	Name() string
	New(env Env) Instance
}

// DefaultName is the engine used when the configuration names none.
const DefaultName = "btree"

var registry = map[string]Engine{}

// Register adds an engine to the registry; engine packages call it from
// init. Re-registering a name panics — it is always a wiring bug.
func Register(e Engine) {
	if _, dup := registry[e.Name()]; dup {
		panic("engine: duplicate registration: " + e.Name())
	}
	registry[e.Name()] = e
}

// Lookup resolves an engine by name; the empty string means the
// default.
func Lookup(name string) (Engine, bool) {
	if name == "" {
		name = DefaultName
	}
	e, ok := registry[name]
	return e, ok
}

// Names returns the registered engine names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LiveDataBlocks returns the block count of exactly one copy of the
// live heap data — the space-amplification denominator shared by all
// engines. Index structures are engine overhead, not live data, so the
// B-tree engine's space amplification reads as its index footprint over
// the heaps.
func LiveDataBlocks(l *odb.Layout) uint64 {
	var n uint64
	for t := odb.TableWarehouse; t <= odb.TableNewOrder; t++ {
		n += l.Heap(t).Blocks()
	}
	return n
}
