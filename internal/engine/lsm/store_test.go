package lsm

import (
	"testing"

	"odbscale/internal/odb"
	"odbscale/internal/xrand"
)

func TestStoreCounterRoundTrip(t *testing.T) {
	s := NewStore(odb.NewLayout(1))
	s.AddCounter(odb.TableWarehouse, 0, 100)
	s.AddCounter(odb.TableWarehouse, 0, 23)
	if got := s.Counter(odb.TableWarehouse, 0); got != 123 {
		t.Fatalf("counter = %d", got)
	}
	if s.LogLen() != 2 {
		t.Fatalf("log length = %d", s.LogLen())
	}
}

func TestStoreCrashLosesMemtableRecoverRebuildsIt(t *testing.T) {
	s := NewStore(odb.NewLayout(1))
	s.AddCounter(odb.TableWarehouse, 0, 500)
	s.AddCounter(odb.TableCustomer, 7, -500)
	s.Crash() // active memtable destroyed
	if got := s.Counter(odb.TableWarehouse, 0); got != 0 {
		t.Fatalf("pre-recovery counter = %d, want 0 (lost with the memtable)", got)
	}
	applied := s.Recover()
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if got := s.Counter(odb.TableWarehouse, 0); got != 500 {
		t.Fatalf("recovered warehouse = %d", got)
	}
	if got := s.Counter(odb.TableCustomer, 7); got != -500 {
		t.Fatalf("recovered customer = %d", got)
	}
}

func TestStoreFlushBoundsReplay(t *testing.T) {
	s := NewStore(odb.NewLayout(1))
	s.AddCounter(odb.TableWarehouse, 0, 100)
	if n := s.Flush(); n != 1 {
		t.Fatalf("flushed %d keys, want 1", n)
	}
	s.AddCounter(odb.TableWarehouse, 0, 50)
	s.Crash()
	// Only the post-flush record needs replay; the flushed run survives.
	if applied := s.Recover(); applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}
	if got := s.Counter(odb.TableWarehouse, 0); got != 150 {
		t.Fatalf("recovered = %d, want 150", got)
	}
	// Flushing the recovered memtable advances the horizon: a further
	// crash+recovery replays nothing and changes nothing.
	s.Flush()
	s.Crash()
	if again := s.Recover(); again != 0 {
		t.Fatalf("post-flush recovery applied %d records, want 0", again)
	}
	if got := s.Counter(odb.TableWarehouse, 0); got != 150 {
		t.Fatalf("after idle recovery = %d", got)
	}
}

func TestStoreRecoverIdempotent(t *testing.T) {
	s := NewStore(odb.NewLayout(1))
	for i := 0; i < 100; i++ {
		s.AddCounter(odb.TableDistrict, uint64(i%10), int64(i))
	}
	s.Flush()
	for i := 0; i < 50; i++ {
		s.AddCounter(odb.TableDistrict, uint64(i%10), 7)
	}
	s.Crash()
	first := s.Recover()
	snapshot := make([]int64, 10)
	for d := range snapshot {
		snapshot[d] = s.Counter(odb.TableDistrict, uint64(d))
	}
	// Recovering again — with or without another crash in between — must
	// converge on the identical state.
	second := s.Recover()
	if second != first {
		t.Fatalf("second recovery applied %d, first applied %d", second, first)
	}
	s.Crash()
	s.Recover()
	for d := range snapshot {
		if got := s.Counter(odb.TableDistrict, uint64(d)); got != snapshot[d] {
			t.Fatalf("district %d diverged after repeated recovery: %d != %d", d, got, snapshot[d])
		}
	}
}

// TestStoreMoneyConservationLSMPlans runs a real generated workload —
// planned by the LSM engine's planner, so row writes arrive as
// OpMemWrite — through the functional store, and checks the payment
// invariant (warehouse YTD == district YTD) holds before a crash and is
// restored exactly by recovery.
func TestStoreMoneyConservationLSMPlans(t *testing.T) {
	const warehouses = 3
	layout := odb.NewLayout(warehouses)
	in := newInstance(testEnv(t, warehouses, smallLSM()))
	g := odb.NewGenerator(layout, xrand.New(11))
	g.SetPlanner(in.Planner(xrand.New(11).Split(6)))
	s := NewStore(layout)

	conservation := func() (wSum, dSum int64) {
		for w := 0; w < warehouses; w++ {
			wSum += s.Counter(odb.TableWarehouse, uint64(w))
			for d := 0; d < odb.DistrictsPerWarehouse; d++ {
				dSum += s.Counter(odb.TableDistrict, odb.DistrictOrdinal(w, d))
			}
		}
		return wSum, dSum
	}

	for i := 0; i < 2000; i++ {
		s.ApplyTxn(g.Next(i % warehouses))
	}
	wSum, dSum := conservation()
	if wSum == 0 {
		t.Fatal("no payments applied — planner produced no row writes")
	}
	if wSum != dSum {
		t.Fatalf("conservation violated before crash: warehouse ytd %d != district ytd %d", wSum, dSum)
	}

	// Flush mid-stream, run more work, then crash: every post-flush
	// update lives only in the memtable and the WAL.
	s.Flush()
	for i := 0; i < 500; i++ {
		s.ApplyTxn(g.Next(i % warehouses))
	}
	preW, preD := conservation()
	if preW != preD {
		t.Fatalf("conservation violated pre-crash: %d != %d", preW, preD)
	}
	s.Crash()
	if lostW, _ := conservation(); lostW == preW {
		t.Fatal("crash lost nothing — memtable was not holding dirty state")
	}
	if applied := s.Recover(); applied == 0 {
		t.Fatal("recovery replayed nothing")
	}
	gotW, gotD := conservation()
	if gotW != preW || gotD != preD {
		t.Fatalf("state after recovery (%d, %d) != pre-crash state (%d, %d)", gotW, gotD, preW, preD)
	}
}
