package lsm

import (
	"testing"

	"odbscale/internal/buffercache"
	"odbscale/internal/engine"
	"odbscale/internal/odb"
	"odbscale/internal/sim"
	"odbscale/internal/storage"
	"odbscale/internal/xrand"
)

// testEnv wires a small but real environment: a live sim engine, a disk
// array and a buffer cache, so Maintain's disk traffic actually lands
// somewhere.
func testEnv(t *testing.T, warehouses int, lt engine.LSMTuning) engine.Env {
	t.Helper()
	eng := sim.New()
	diskCfg := storage.DefaultConfig()
	diskCfg.CyclesPerMS = 1.6e6
	return engine.Env{
		Layout:      odb.NewLayout(warehouses),
		Cache:       buffercache.New(buffercache.Config{Blocks: 1024}),
		Disks:       storage.New(diskCfg, eng, xrand.New(7).Split(2)),
		Sim:         eng,
		Rand:        xrand.New(7).Split(5),
		CyclesPerMS: 1.6e6,
		Tuning: engine.Tuning{
			DBWriterBatch:   64,
			DirtyHighWater:  0.002,
			DBWriterAgeGets: 50_000,
			DBWriterInstr:   9_000,
			LSM:             lt,
		},
	}
}

// smallLSM is a shape that flushes and compacts quickly under test
// drives: a 64 KB memtable and modest batches.
func smallLSM() engine.LSMTuning {
	lt := engine.DefaultLSMTuning()
	lt.MemtableMB = 1
	lt.CompactBatch = 256
	return lt
}

// drain runs maintenance activations until the engine reports nothing
// left to do (or the activation cap trips — a livelock guard).
func drain(t *testing.T, in engine.Instance) {
	t.Helper()
	var scratch []odb.BlockID
	for i := 0; i < 100_000; i++ {
		res := in.Maintain(scratch)
		if res.Blocks == nil {
			return
		}
		scratch = res.Blocks
	}
	t.Fatal("maintenance never drained")
}

// TestWriteAmplification drives enough logical bytes through the
// memtable to force flushes and compactions and checks the physical
// write volume is a growing multiple of the logical volume.
func TestWriteAmplification(t *testing.T) {
	lt := smallLSM()
	in := newInstance(testEnv(t, 2, lt))
	const rowBytes = 320
	var logical uint64
	// Push ~24 memtables' worth so L0 compacts several times.
	target := uint64(24) * in.memCap
	for logical < target {
		in.MemWrite(rowBytes + lt.KeyBytes)
		in.ctr.LogicalWriteBytes += rowBytes
		logical += rowBytes
		if in.sealed > 0 {
			drain(t, in)
		}
	}
	drain(t, in)
	c := in.Counters()
	if c.Flushes == 0 || c.Compactions == 0 {
		t.Fatalf("expected flushes and compactions, got %d / %d", c.Flushes, c.Compactions)
	}
	wamp := float64(c.PhysicalWriteBytes) / float64(c.LogicalWriteBytes)
	if wamp <= 1 {
		t.Fatalf("write amplification %.2f, want > 1 (phys=%d logical=%d)",
			wamp, c.PhysicalWriteBytes, c.LogicalWriteBytes)
	}
	t.Logf("levels=%d write-amp=%.2f flushes=%d compactions=%d", in.Levels(), wamp, c.Flushes, c.Compactions)
}

// TestWriteAmpGrowsWithLevels compares two databases whose live sizes
// differ by an order of magnitude (so their level hierarchies differ in
// depth) under the same *relative* churn — each absorbs updates worth a
// quarter of its live bytes. Every logical byte in the deeper hierarchy
// migrates through more levels, so it must amplify writes more.
func TestWriteAmpGrowsWithLevels(t *testing.T) {
	lt := smallLSM()
	run := func(warehouses int) (levels int, wamp float64) {
		in := newInstance(testEnv(t, warehouses, lt))
		const rowBytes = 320
		var logical uint64
		target := in.liveBytes / 4
		for logical < target {
			in.MemWrite(rowBytes + lt.KeyBytes)
			in.ctr.LogicalWriteBytes += rowBytes
			logical += rowBytes
			if in.sealed > 0 {
				drain(t, in)
			}
		}
		drain(t, in)
		c := in.Counters()
		return in.Levels(), float64(c.PhysicalWriteBytes) / float64(c.LogicalWriteBytes)
	}
	shallowLevels, shallowAmp := run(1)
	deepLevels, deepAmp := run(8)
	if deepLevels <= shallowLevels {
		t.Fatalf("level depth did not grow: %d vs %d", shallowLevels, deepLevels)
	}
	if deepAmp <= shallowAmp {
		t.Fatalf("write-amp did not grow with level count: %.2f (levels=%d) vs %.2f (levels=%d)",
			shallowAmp, shallowLevels, deepAmp, deepLevels)
	}
	t.Logf("write-amp %.2f @ %d levels -> %.2f @ %d levels", shallowAmp, shallowLevels, deepAmp, deepLevels)
}

// TestWriteStallsUnderL0Pressure starves maintenance so L0 backs up and
// checks that appends start returning non-zero throttles.
func TestWriteStallsUnderL0Pressure(t *testing.T) {
	lt := smallLSM()
	in := newInstance(testEnv(t, 1, lt))
	var stallTime sim.Time
	// No Maintain calls at all: sealed memtables pile up.
	for i := 0; i < int(in.memCap); i += 256 {
		stallTime += in.MemWrite(256 + lt.KeyBytes)
	}
	for s := 0; s < lt.L0StallRuns+2; s++ {
		for i := uint64(0); i < in.memCap; i += 256 {
			stallTime += in.MemWrite(256 + lt.KeyBytes)
		}
	}
	c := in.Counters()
	if c.WriteStalls == 0 || stallTime == 0 {
		t.Fatalf("no write stalls under L0 pressure (stalls=%d time=%d)", c.WriteStalls, stallTime)
	}
	// Maintenance drains the backlog and the stalls stop.
	drain(t, in)
	if got := in.MemWrite(256); got != 0 {
		t.Fatalf("still stalled after maintenance drained L0: %d", got)
	}
}

// TestPlannerDeterminism: identical rng seeds must plan identical op
// streams, state evolution included.
func TestPlannerDeterminism(t *testing.T) {
	lt := smallLSM()
	runOnce := func() []odb.Op {
		in := newInstance(testEnv(t, 2, lt))
		p := in.Planner(xrand.New(99).Split(6))
		var ops []odb.Op
		for i := uint64(0); i < 4000; i++ {
			ops = p.ReadRow(ops, odb.TableCustomer, i%100)
			ops = p.WriteRow(ops, odb.TableStock, i%500, int64(i))
			if in.sealed > 0 {
				drain(t, in)
			}
		}
		return ops
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("op stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestReadPlansProbeRuns checks the read path's shape: reads resolve in
// the memtable (compute only) or in a run/level (buffer-cache read),
// and bloom false positives add extra probes but never change the
// terminal read.
func TestReadPlansProbeRuns(t *testing.T) {
	lt := smallLSM()
	in := newInstance(testEnv(t, 1, lt))
	p := in.Planner(xrand.New(3).Split(6))
	var memHits, blockReads int
	var ops []odb.Op
	for i := uint64(0); i < 2000; i++ {
		ops = p.ReadRow(ops[:0], odb.TableCustomer, i%1000)
		sawRead := false
		for _, op := range ops {
			switch op.Kind {
			case odb.OpCompute:
				if op.Phase != odb.PhaseMemtable {
					t.Fatalf("compute op outside memtable phase: %+v", op)
				}
			case odb.OpRead:
				if op.Phase != odb.PhaseBuffer {
					t.Fatalf("read op outside buffer phase: %+v", op)
				}
				if op.Block < odb.BlockID(in.env.Layout.TotalBlocks()) {
					t.Fatalf("LSM read landed inside the B-tree address space: %+v", op)
				}
				sawRead = true
			default:
				t.Fatalf("unexpected op kind in read plan: %+v", op)
			}
		}
		if sawRead {
			blockReads++
		} else {
			memHits++
		}
	}
	if blockReads == 0 {
		t.Fatal("no read plan ever touched a block")
	}
	t.Logf("memtable resolutions=%d block reads=%d", memHits, blockReads)
}

// TestSpaceAmpTracksL0 checks the footprint counters: flushed runs
// raise DiskBlocks above LiveBlocks, and compaction brings the
// footprint back down.
func TestSpaceAmpTracksL0(t *testing.T) {
	lt := smallLSM()
	in := newInstance(testEnv(t, 1, lt))
	base := in.Counters()
	if base.SpaceAmp() < 1 {
		t.Fatalf("initial space amp %.3f < 1", base.SpaceAmp())
	}
	// Seal a few memtables and flush them without compacting: footprint
	// must grow.
	for s := 0; s < lt.L0CompactRuns-1; s++ {
		in.memBytes = in.memCap
		in.MemWrite(1)
		drain(t, in)
	}
	grown := in.Counters()
	if grown.DiskBlocks <= base.DiskBlocks {
		t.Fatalf("flushes did not grow the footprint: %d -> %d", base.DiskBlocks, grown.DiskBlocks)
	}
	if grown.SpaceAmp() <= base.SpaceAmp() {
		t.Fatalf("space amp did not grow: %.3f -> %.3f", base.SpaceAmp(), grown.SpaceAmp())
	}
}
