// Package lsm is a log-structured merge engine behind the
// StorageEngine boundary: writes append to an in-memory memtable (no
// in-place page updates, no index descents), sealed memtables flush to
// L0 runs, and leveled compaction merges runs down a geometric level
// hierarchy as background disk traffic. The model captures the three
// signatures that distinguish an LSM from the paper's B-tree engine:
//
//   - write amplification: every logical byte is rewritten once per
//     level it migrates through, so physical write volume is a multiple
//     of the logical volume that grows with the level count;
//   - read amplification: a point read may probe several sorted runs
//     (bloom-filter false positives) before finding its key;
//   - write stalls: when flushing and compaction fall behind, L0 backs
//     up and writers are throttled (RocksDB's delayed-write semantics —
//     the append is admitted, the writer sleeps).
//
// Blocks live on extents past the B-tree layout's address space; reads
// go through the shared buffer cache like any other block, while
// compaction streams bypass it entirely (sequential merge input is
// read once and would only pollute the LRU).
package lsm

import (
	"odbscale/internal/engine"
	"odbscale/internal/odb"
	"odbscale/internal/sim"
	"odbscale/internal/xrand"
)

func init() { engine.Register(factory{}) }

type factory struct{}

func (factory) Name() string { return "lsm" }

func (factory) New(env engine.Env) engine.Instance { return newInstance(env) }

// level is one sorted run level of the tree (L1..Ln). bytes is the
// current logical residency; the extent is sized with slack so
// compaction output never overruns it.
type level struct {
	base     odb.BlockID
	blocks   uint64 // extent size
	capBytes uint64
	bytes    uint64
}

// job kinds for the single active maintenance job.
const (
	jobNone = iota
	jobFlush
	jobCompact
	jobRewrite // bottom-level in-place rewrite reclaiming obsolete versions
)

type job struct {
	kind         int
	level        int    // source level for jobCompact/jobRewrite
	unitsLeft    uint64 // output blocks still to write
	readEvery    uint64 // issue one input read per readEvery output units (0 = none)
	readTick     uint64
	inBytes      uint64 // bytes leaving the source when the job finishes
	consumedRuns int    // L0 runs consumed (jobCompact from L0)
}

// instance is one LSM engine bound to a machine.
type instance struct {
	env engine.Env
	tun engine.LSMTuning
	ctr engine.Counters

	// Key space: rows of every heap table in one global sort order.
	tableOff  [odb.NumHeapTables]uint64
	totalKeys uint64

	liveBlocks uint64
	liveBytes  uint64

	memCap    uint64 // memtable capacity, bytes
	memBlocks uint64 // blocks per flushed run
	memBytes  uint64 // active memtable fill
	sealed    int    // sealed memtables awaiting flush

	l0Base  odb.BlockID
	l0Slots int
	l0Head  int // next slot a flush writes into
	l0Runs  int // flushed runs resident in L0

	levels []level // levels[0] unused; L1..Ln

	job    job
	wCur   uint64 // rotating output-block cursor within the destination extent
	rCur   uint64 // rotating input-block cursor within the source extent
	planRR uint64 // round-robin salt so repeated probes spread over a run
}

func newInstance(env engine.Env) *instance {
	in := &instance{env: env, tun: env.Tuning.LSM}
	l := env.Layout
	for t := odb.TableWarehouse; t <= odb.TableNewOrder; t++ {
		in.tableOff[int(t)] = in.totalKeys
		in.totalKeys += l.Heap(t).Rows
	}
	in.liveBlocks = engine.LiveDataBlocks(l)
	in.liveBytes = in.liveBlocks * odb.BlockSize

	in.memCap = uint64(in.tun.MemtableMB) << 20
	in.memBlocks = in.memCap / odb.BlockSize
	if in.memBlocks == 0 {
		in.memBlocks = 1
	}

	// Extent cursor starts past the B-tree layout so the two engines'
	// block address spaces never collide.
	next := odb.BlockID(l.TotalBlocks())
	in.l0Slots = in.tun.L0StallRuns + 4
	in.l0Base = next
	next += odb.BlockID(uint64(in.l0Slots) * in.memBlocks)

	// Level capacities grow geometrically from the memtable size until a
	// level can hold the whole live set; that level is the bottom and
	// starts out holding it.
	in.levels = []level{{}} // L0 is run-structured, not a level
	capBytes := in.memCap
	for {
		capBytes *= uint64(in.tun.Fanout)
		lv := level{base: next, capBytes: capBytes}
		lv.blocks = 2 * (capBytes / odb.BlockSize)
		next += odb.BlockID(lv.blocks)
		in.levels = append(in.levels, lv)
		if capBytes >= in.liveBytes {
			break
		}
	}
	in.levels[len(in.levels)-1].bytes = in.liveBytes
	return in
}

func (in *instance) Name() string { return "lsm" }

// Levels returns the depth of the level hierarchy (L1..Ln), for tests
// relating write amplification to level count.
func (in *instance) Levels() int { return len(in.levels) - 1 }

// keyFrac maps row (t, ord) to its fractional position in the global
// key order.
func (in *instance) keyFrac(t odb.TableID, ord uint64) float64 {
	return float64(in.tableOff[int(t)]+ord) / float64(in.totalKeys)
}

// l0RunBlock returns the probe block of the i-th newest L0 run for a
// key fraction.
func (in *instance) l0RunBlock(i int, frac float64) odb.BlockID {
	slot := ((in.l0Head-1-i)%in.l0Slots + in.l0Slots) % in.l0Slots
	off := uint64(frac * float64(in.memBlocks))
	if off >= in.memBlocks {
		off = in.memBlocks - 1
	}
	return in.l0Base + odb.BlockID(uint64(slot)*in.memBlocks+off)
}

// levelBlock returns the probe block of level lv for a key fraction.
func (in *instance) levelBlock(lv int, frac float64) odb.BlockID {
	l := &in.levels[lv]
	n := l.bytes / odb.BlockSize
	if n == 0 {
		n = 1
	}
	off := uint64(frac * float64(n))
	if off >= l.blocks {
		off = l.blocks - 1
	}
	return l.base + odb.BlockID(off)
}

// Planner returns an access planner drawing bloom/residence outcomes
// from its private rng stream.
func (in *instance) Planner(rng *xrand.Rand) odb.AccessPlanner {
	return &planner{in: in, rng: rng}
}

type planner struct {
	in  *instance
	rng *xrand.Rand
}

// ReadRow plans a point lookup: newest-to-oldest through the memtable,
// the L0 runs, then the levels. The key's resident container is drawn
// proportional to container sizes; every newer sorted run is guarded by
// a bloom filter, probed physically only on a false positive. Memtable
// work is pure compute; every physical probe is a buffer-cache read.
func (p *planner) ReadRow(ops []odb.Op, t odb.TableID, ord uint64) []odb.Op {
	in := p.in
	in.ctr.LogicalReads++
	frac := in.keyFrac(t, ord)

	memB := in.memBytes + uint64(in.sealed)*in.memCap
	l0B := uint64(in.l0Runs) * in.memCap
	total := memB + l0B
	for i := 1; i < len(in.levels); i++ {
		total += in.levels[i].bytes
	}
	r := uint64(p.rng.Float64() * float64(total))

	if r < memB {
		// Memtable hit: skiplist probe, no block touched.
		return append(ops, odb.Op{Kind: odb.OpCompute, Phase: odb.PhaseMemtable, Table: t, Ord: ord})
	}
	r -= memB
	// The memtable probe that missed still costs its lookup.
	ops = append(ops, odb.Op{Kind: odb.OpCompute, Phase: odb.PhaseMemtable, Table: t, Ord: ord})

	if r < l0B {
		home := int(r / in.memCap) // newest-first index of the resident run
		for i := 0; i < home; i++ {
			if p.rng.Bernoulli(in.tun.BloomFPRate) {
				ops = append(ops, odb.Op{Kind: odb.OpRead, Phase: odb.PhaseBuffer, Block: in.l0RunBlock(i, frac), Table: t, Ord: ord})
			}
		}
		return append(ops, odb.Op{Kind: odb.OpRead, Phase: odb.PhaseBuffer, Block: in.l0RunBlock(home, frac), Table: t, Ord: ord})
	}
	r -= l0B

	// Key lives in a level: bloom-check every L0 run and shallower level
	// on the way down.
	for i := 0; i < in.l0Runs; i++ {
		if p.rng.Bernoulli(in.tun.BloomFPRate) {
			ops = append(ops, odb.Op{Kind: odb.OpRead, Phase: odb.PhaseBuffer, Block: in.l0RunBlock(i, frac), Table: t, Ord: ord})
		}
	}
	home := len(in.levels) - 1
	for i := 1; i < len(in.levels); i++ {
		if r < in.levels[i].bytes {
			home = i
			break
		}
		r -= in.levels[i].bytes
	}
	for i := 1; i < home; i++ {
		if in.levels[i].bytes > 0 && p.rng.Bernoulli(in.tun.BloomFPRate) {
			ops = append(ops, odb.Op{Kind: odb.OpRead, Phase: odb.PhaseBuffer, Block: in.levelBlock(i, frac), Table: t, Ord: ord})
		}
	}
	return append(ops, odb.Op{Kind: odb.OpRead, Phase: odb.PhaseBuffer, Block: in.levelBlock(home, frac), Table: t, Ord: ord})
}

// WriteRow plans a blind write: key + row bytes appended to the
// memtable. No page is read, no index maintained — the engine
// difference that removes the B-tree's hot-block latch contention.
func (p *planner) WriteRow(ops []odb.Op, t odb.TableID, ord uint64, delta int64) []odb.Op {
	in := p.in
	row := odb.RowBytes(t)
	in.ctr.LogicalWriteBytes += uint64(row)
	return append(ops, odb.Op{
		Kind: odb.OpMemWrite, Phase: odb.PhaseMemtable,
		Bytes: row + in.tun.KeyBytes,
		Table: t, Ord: ord, Delta: delta,
	})
}

// IndexLookup emits nothing: the LSM keeps no materialized secondary
// trees; ReadRow's run probes already model the lookup cost.
func (p *planner) IndexLookup(ops []odb.Op, idx odb.TableID, ord uint64) []odb.Op {
	_, _ = idx, ord
	return ops
}

// PrefillBlocks: the bottom level's initial image.
func (in *instance) PrefillBlocks() (odb.BlockID, uint64) {
	bot := &in.levels[len(in.levels)-1]
	return bot.base, in.liveBytes / odb.BlockSize
}

// MemWrite appends to the memtable, sealing it at capacity. While L0
// (including sealed memtables) is at or past the stall threshold every
// append is throttled: the write is admitted but the writer sleeps —
// RocksDB's delayed-write behaviour.
func (in *instance) MemWrite(bytes int) sim.Time {
	in.memBytes += uint64(bytes)
	if in.memBytes >= in.memCap {
		in.memBytes = 0
		in.sealed++
	}
	if in.l0Runs+in.sealed >= in.tun.L0StallRuns {
		in.ctr.WriteStalls++
		return sim.Time(in.env.Rand.Exp(in.tun.StallMS) * in.env.CyclesPerMS)
	}
	return 0
}

// pickJob selects the next maintenance job: flushes beat compactions,
// L0 beats deeper levels, and the bottom rewrites itself when obsolete
// versions bloat it past 25% of the live size.
func (in *instance) pickJob() bool {
	t := &in.tun
	if in.sealed > 0 {
		in.job = job{kind: jobFlush, unitsLeft: in.memBlocks}
		return true
	}
	if in.l0Runs >= t.L0CompactRuns {
		inBytes := uint64(in.l0Runs) * in.memCap
		in.startCompact(0, inBytes, in.l0Runs)
		return true
	}
	for i := 1; i < len(in.levels)-1; i++ {
		if in.levels[i].bytes > in.levels[i].capBytes {
			in.startCompact(i, in.levels[i].bytes-in.levels[i].capBytes, 0)
			return true
		}
	}
	bot := len(in.levels) - 1
	if in.levels[bot].bytes > in.liveBytes+in.liveBytes/4 {
		inBytes := in.levels[bot].bytes - in.liveBytes
		units := 2 * (inBytes / odb.BlockSize)
		if units == 0 {
			units = 1
		}
		in.job = job{kind: jobRewrite, level: bot, unitsLeft: units, readEvery: 2, inBytes: inBytes}
		return true
	}
	return false
}

// startCompact sets up a merge of inBytes from level src into src+1.
// The merge rewrites the overlapping range of the destination too —
// that overlap, bounded by the destination's residency, is what makes
// deeper trees amplify writes more.
func (in *instance) startCompact(src int, inBytes uint64, runs int) {
	dst := &in.levels[src+1]
	overlap := inBytes * uint64(in.tun.Fanout)
	if overlap > dst.bytes {
		overlap = dst.bytes
	}
	units := (inBytes + overlap) / odb.BlockSize
	if units == 0 {
		units = 1
	}
	// One input-read per output-write unit: the merge reads what it
	// rewrites (source plus destination overlap).
	in.job = job{kind: jobCompact, level: src, unitsLeft: units, readEvery: 1, inBytes: inBytes, consumedRuns: runs}
}

// stepJob performs one block unit of the active job and returns the
// block written. Compaction streams bypass the buffer cache: input is
// an asynchronous background read, output an asynchronous write.
func (in *instance) stepJob() odb.BlockID {
	j := &in.job
	var src, dst *level
	switch j.kind {
	case jobFlush:
		slot := uint64(in.l0Head) * in.memBlocks
		bl := in.l0Base + odb.BlockID(slot+(in.memBlocks-j.unitsLeft))
		in.env.Disks.Write(uint64(bl))
		in.ctr.PhysicalWriteBytes += odb.BlockSize
		j.unitsLeft--
		if j.unitsLeft == 0 {
			in.finishJob()
		}
		return bl
	case jobCompact:
		if j.level == 0 {
			dst = &in.levels[1]
		} else {
			src = &in.levels[j.level]
			dst = &in.levels[j.level+1]
		}
	case jobRewrite:
		src = &in.levels[j.level]
		dst = src
	}
	if j.readEvery > 0 {
		j.readTick++
		if j.readTick >= j.readEvery {
			j.readTick = 0
			var rb odb.BlockID
			if src == nil {
				// L0 input: cycle across the resident runs.
				rb = in.l0Base + odb.BlockID(in.rCur%(uint64(in.l0Slots)*in.memBlocks))
			} else {
				rb = src.base + odb.BlockID(in.rCur%src.blocks)
			}
			in.rCur++
			in.env.Disks.BackgroundRead(uint64(rb))
			in.ctr.CompactReadBlocks++
		}
	}
	bl := dst.base + odb.BlockID(in.wCur%dst.blocks)
	in.wCur++
	in.env.Disks.Write(uint64(bl))
	in.ctr.PhysicalWriteBytes += odb.BlockSize
	j.unitsLeft--
	if j.unitsLeft == 0 {
		in.finishJob()
	}
	return bl
}

// finishJob applies the completed job's logical effect. ObsoleteFrac of
// migrated bytes are newer versions of keys already present below, so
// they vanish rather than accumulate.
func (in *instance) finishJob() {
	j := in.job
	switch j.kind {
	case jobFlush:
		in.sealed--
		in.l0Runs++
		in.l0Head = (in.l0Head + 1) % in.l0Slots
		in.ctr.Flushes++
	case jobCompact:
		kept := j.inBytes - uint64(float64(j.inBytes)*in.tun.ObsoleteFrac)
		if j.level == 0 {
			in.l0Runs -= j.consumedRuns
			in.levels[1].bytes += kept
		} else {
			in.levels[j.level].bytes -= j.inBytes
			in.levels[j.level+1].bytes += kept
		}
		in.ctr.Compactions++
	case jobRewrite:
		bot := &in.levels[j.level]
		if bot.bytes > in.liveBytes+j.inBytes {
			bot.bytes -= j.inBytes
		} else {
			bot.bytes = in.liveBytes
		}
		in.ctr.Compactions++
	}
	in.job = job{}
}

// Maintain runs one maintenance activation: up to CompactBatch block
// units of flush/compaction work, billed like DB-writer batches.
func (in *instance) Maintain(scratch []odb.BlockID) engine.MaintResult {
	var osInstr uint64 = 2_000 // scan/scheduling overhead
	blocks := scratch[:0]
	units := 0
	for units < in.tun.CompactBatch {
		if in.job.kind == jobNone && !in.pickJob() {
			break
		}
		blocks = append(blocks, in.stepJob())
		units++
	}
	osInstr += uint64(units) * in.env.Tuning.DBWriterInstr
	if units == 0 {
		return engine.MaintResult{OSInstr: osInstr, Phase: odb.PhaseCompact}
	}
	return engine.MaintResult{OSInstr: osInstr, Phase: odb.PhaseCompact, Blocks: blocks}
}

// Counters reports the period ledger plus the instantaneous footprint.
func (in *instance) Counters() engine.Counters {
	c := in.ctr
	c.DiskBlocks = uint64(in.l0Runs+in.sealed) * in.memBlocks
	for i := 1; i < len(in.levels); i++ {
		c.DiskBlocks += in.levels[i].bytes / odb.BlockSize
	}
	c.LiveBlocks = in.liveBlocks
	return c
}

func (in *instance) ResetStats() { in.ctr = engine.Counters{} }
