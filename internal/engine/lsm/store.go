package lsm

import (
	"sort"

	"odbscale/internal/odb"
)

// Store is the LSM engine's functional (payload-mode) counterpart to
// odb.Store: row counters live as merge operands in a memtable, sealed
// state flushes into the durable sorted-run image, and a write-ahead
// log makes the memtable recoverable. A crash destroys every in-memory
// structure — the active memtable included — and recovery replays the
// WAL suffix past the last flush, exactly the discipline a real LSM
// uses (RocksDB's WAL + MANIFEST).
//
// The durable image is modelled as the fully-merged view of all flushed
// runs: compaction only reorganizes that image physically, so its
// logical content — all the recovery invariants care about — is a
// single key→counter map.
type Store struct {
	L *odb.Layout

	mem      map[storeKey]int64 // active memtable: accumulated merge deltas
	durable  map[storeKey]int64 // merged content of every flushed run
	wal      []WALRecord
	lsn      uint64
	flushLSN uint64 // everything at or below this LSN is in durable
}

type storeKey struct {
	t   odb.TableID
	ord uint64
}

// WALRecord is one write-ahead log entry: a merge delta for a row
// counter.
type WALRecord struct {
	LSN   uint64
	Table odb.TableID
	Ord   uint64
	Delta int64
}

// NewStore builds an empty functional LSM store over layout l.
func NewStore(l *odb.Layout) *Store {
	return &Store{
		L:       l,
		mem:     make(map[storeKey]int64),
		durable: make(map[storeKey]int64),
	}
}

// LogLen returns the WAL length.
func (s *Store) LogLen() int { return len(s.wal) }

// AddCounter appends delta for row (t, ord): WAL first, then the
// memtable (write-ahead discipline).
func (s *Store) AddCounter(t odb.TableID, ord uint64, delta int64) {
	if ord >= s.L.Heap(t).Rows {
		panic("lsm: ordinal out of range")
	}
	s.lsn++
	s.wal = append(s.wal, WALRecord{LSN: s.lsn, Table: t, Ord: ord, Delta: delta})
	s.mem[storeKey{t, ord}] += delta
}

// Counter reads the merged value of row counter (t, ord): durable image
// plus the memtable's pending deltas.
func (s *Store) Counter(t odb.TableID, ord uint64) int64 {
	k := storeKey{t, ord}
	return s.durable[k] + s.mem[k]
}

// ApplyTxn executes the row-level effects of a transaction program. It
// accepts both OpMemWrite (LSM-planned programs) and OpWrite
// (B-tree-planned programs), so either engine's op streams replay.
func (s *Store) ApplyTxn(t *odb.Txn) {
	for i := range t.Ops {
		op := &t.Ops[i]
		if (op.Kind == odb.OpMemWrite || op.Kind == odb.OpWrite) && op.Delta != 0 {
			s.AddCounter(op.Table, op.Ord, op.Delta)
		}
	}
}

// Flush seals the memtable into the durable image and advances the
// flush horizon — the LSM analogue of a checkpoint. Returns the number
// of keys flushed.
func (s *Store) Flush() int {
	n := len(s.mem)
	for k, d := range s.mem {
		s.durable[k] += d
	}
	s.mem = make(map[storeKey]int64)
	s.flushLSN = s.lsn
	return n
}

// Crash simulates an instant failure: the memtable — all dirty state —
// is destroyed. The durable image, the WAL and the flush horizon
// survive.
func (s *Store) Crash() {
	s.mem = make(map[storeKey]int64)
}

// Recover rebuilds the memtable by replaying the WAL suffix past the
// flush horizon, in LSN order, and returns the number of records
// applied. Recovery is idempotent: it always reconstructs the memtable
// from scratch, so repeated or redundant recoveries converge on the
// same state.
func (s *Store) Recover() int {
	s.mem = make(map[storeKey]int64)
	recs := make([]WALRecord, len(s.wal))
	copy(recs, s.wal)
	sort.Slice(recs, func(i, j int) bool { return recs[i].LSN < recs[j].LSN })
	applied := 0
	for _, r := range recs {
		if r.LSN <= s.flushLSN {
			continue
		}
		s.mem[storeKey{r.Table, r.Ord}] += r.Delta
		applied++
	}
	// The rebuilt memtable is exactly the pre-crash one, so the replayed
	// records are now redundant with it; a caller flushing here would
	// advance the horizon past them as usual.
	return applied
}
