package storage

import (
	"testing"

	"odbscale/internal/sim"
	"odbscale/internal/xrand"
)

func testArray(dataDisks int) (*Array, *sim.Engine) {
	eng := sim.New()
	cfg := DefaultConfig()
	cfg.DataDisks = dataDisks
	cfg.Jitter = 0 // deterministic service times for assertions
	return New(cfg, eng, xrand.New(1)), eng
}

func TestReadCompletes(t *testing.T) {
	a, eng := testArray(4)
	done := false
	a.Read(7, func() { done = true })
	for eng.Step() {
	}
	if !done {
		t.Fatal("read never completed")
	}
	s := a.StatsNow()
	if s.Reads != 1 {
		t.Fatalf("Reads = %d", s.Reads)
	}
	// Service = (AccessMS + TransferMS) * CyclesPerMS.
	cfg := DefaultConfig()
	want := (cfg.AccessMS + cfg.TransferMS) * cfg.CyclesPerMS
	if s.MeanReadLatency() != want {
		t.Fatalf("latency = %v, want %v", s.MeanReadLatency(), want)
	}
}

func TestQueueingDelay(t *testing.T) {
	a, eng := testArray(1) // single disk: second read queues behind first
	var completions []sim.Time
	for i := 0; i < 2; i++ {
		a.Read(0, func() { completions = append(completions, eng.Now()) })
	}
	for eng.Step() {
	}
	if len(completions) != 2 {
		t.Fatalf("completions = %v", completions)
	}
	if completions[1] != 2*completions[0] {
		t.Fatalf("no FCFS queueing: %v", completions)
	}
	s := a.StatsNow()
	// Second read's latency includes the wait: mean = (svc + 2*svc)/2.
	cfg := DefaultConfig()
	svc := (cfg.AccessMS + cfg.TransferMS) * cfg.CyclesPerMS
	if got, want := s.MeanReadLatency(), 1.5*svc; got != want {
		t.Fatalf("mean latency = %v, want %v", got, want)
	}
}

// TestBackgroundReadOccupiesDiskNotLatency pins the maintenance-read
// contract: a background read (compaction input) competes for the disk
// like any read — a foreground read behind it queues — but is counted
// in BgReads, not Reads, and contributes nothing to foreground read
// latency.
func TestBackgroundReadOccupiesDiskNotLatency(t *testing.T) {
	a, eng := testArray(1) // single disk: the foreground read must queue
	a.BackgroundRead(0)
	var done sim.Time
	a.Read(0, func() { done = eng.Now() })
	for eng.Step() {
	}
	cfg := DefaultConfig()
	svc := sim.Time((cfg.AccessMS + cfg.TransferMS) * cfg.CyclesPerMS)
	if done != 2*svc {
		t.Fatalf("foreground read completed at %v, want %v (queued behind background read)", done, 2*svc)
	}
	s := a.StatsNow()
	if s.BgReads != 1 || s.Reads != 1 {
		t.Fatalf("BgReads = %d, Reads = %d, want 1 and 1", s.BgReads, s.Reads)
	}
	// Foreground latency includes its queueing wait but never the
	// background read's own service.
	if got, want := s.MeanReadLatency(), 2*float64(svc); got != want {
		t.Fatalf("mean read latency = %v, want %v", got, want)
	}
	if got, want := s.BusyCycles, 2*float64(svc); got != want {
		t.Fatalf("BusyCycles = %v, want %v (background reads occupy the disk)", got, want)
	}
}

func TestStriping(t *testing.T) {
	a, eng := testArray(4)
	// Blocks 0..3 hit distinct disks, so all complete at the same time.
	var times []sim.Time
	for b := uint64(0); b < 4; b++ {
		a.Read(b, func() { times = append(times, eng.Now()) })
	}
	for eng.Step() {
	}
	for _, x := range times[1:] {
		if x != times[0] {
			t.Fatalf("striped reads serialized: %v", times)
		}
	}
}

func TestUtilizationAndSaturation(t *testing.T) {
	a, eng := testArray(2)
	a.ResetStats()
	for i := 0; i < 100; i++ {
		a.Read(uint64(i), nil)
	}
	for eng.Step() {
	}
	s := a.StatsNow()
	if u := s.Utilization(a.DataDisks()); u < 0.99 {
		t.Fatalf("utilization = %v, want ~1 under backlog", u)
	}
	if s.MaxQueue < 40 {
		t.Fatalf("MaxQueue = %d, want deep queues", s.MaxQueue)
	}
}

func TestWritesDoNotBlockReads(t *testing.T) {
	// Writes on other disks shouldn't delay a read on its own disk.
	a, eng := testArray(2)
	for i := 0; i < 10; i++ {
		a.Write(1) // all on disk 1
	}
	var readDone sim.Time
	a.Read(0, func() { readDone = eng.Now() })
	for eng.Step() {
	}
	cfg := DefaultConfig()
	if readDone != sim.Time((cfg.AccessMS+cfg.TransferMS)*cfg.CyclesPerMS) {
		t.Fatalf("read delayed by writes on other disk: %d", readDone)
	}
	if got := a.StatsNow().Writes; got != 10 {
		t.Fatalf("Writes = %d", got)
	}
}

func TestLogWriteDurability(t *testing.T) {
	a, eng := testArray(2)
	durable := false
	a.LogWrite(1, func() { durable = true })
	a.LogWrite(1, nil) // fire-and-forget on the other log device
	for eng.Step() {
	}
	if !durable {
		t.Fatal("log write callback never ran")
	}
	if got := a.StatsNow().LogWrites; got != 2 {
		t.Fatalf("LogWrites = %d", got)
	}
}

func TestLogRoundRobin(t *testing.T) {
	a, eng := testArray(2)
	// Two log writes to two devices complete simultaneously.
	var times []sim.Time
	a.LogWrite(1, func() { times = append(times, eng.Now()) })
	a.LogWrite(1, func() { times = append(times, eng.Now()) })
	for eng.Step() {
	}
	if len(times) != 2 || times[0] != times[1] {
		t.Fatalf("log devices not round-robin: %v", times)
	}
}

func TestResetStats(t *testing.T) {
	a, eng := testArray(2)
	a.Read(0, nil)
	for eng.Step() {
	}
	a.ResetStats()
	s := a.StatsNow()
	if s.Reads != 0 || s.BusyCycles != 0 {
		t.Fatalf("stats survived reset: %+v", s)
	}
}

func TestStatsZeroValues(t *testing.T) {
	var s Stats
	if s.MeanReadLatency() != 0 || s.Utilization(4) != 0 {
		t.Fatal("zero stats should report zeros")
	}
	s = Stats{BusyCycles: 100, Elapsed: 10}
	if s.Utilization(1) != 1 {
		t.Fatalf("over-busy utilization = %v, want clamped", s.Utilization(1))
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for zero disks")
		}
	}()
	cfg := DefaultConfig()
	cfg.DataDisks = 0
	New(cfg, sim.New(), xrand.New(1))
}

func TestJitterVariesServiceTimes(t *testing.T) {
	eng := sim.New()
	cfg := DefaultConfig()
	cfg.DataDisks = 1
	cfg.Jitter = 0.5
	a := New(cfg, eng, xrand.New(2))
	var times []sim.Time
	prev := sim.Time(0)
	for i := 0; i < 20; i++ {
		a.Read(0, func() {
			times = append(times, eng.Now()-prev)
			prev = eng.Now()
		})
	}
	for eng.Step() {
	}
	distinct := map[sim.Time]bool{}
	for _, d := range times {
		distinct[d] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("jittered service times look constant: %d distinct", len(distinct))
	}
}
