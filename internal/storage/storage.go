// Package storage models the disk subsystem: an array of independent
// disks with FCFS queues and a seek+transfer service-time model, striped
// data placement, and dedicated log devices. The array reproduces the
// paper's I/O regimes: negligible traffic for cached setups, latency that
// clients must mask in balanced setups, and throughput saturation that
// caps CPU utilization in I/O-bound setups (the 1200-warehouse point of
// Figure 2).
package storage

import (
	"odbscale/internal/qstats"
	"odbscale/internal/sim"
	"odbscale/internal/xrand"
)

// Config describes the disk array. Times are in milliseconds and are
// converted to CPU cycles with CyclesPerMS.
type Config struct {
	DataDisks int
	LogDisks  int
	AccessMS  float64 // average random-access positioning time per read
	// WriteMS is the positioning cost of an asynchronous data write: the
	// DB writer issues writes in batches sorted by disk position, so the
	// effective seek per write is far below a random read's.
	WriteMS     float64
	LogMS       float64 // average sequential log write time
	TransferMS  float64 // per-block transfer time
	CyclesPerMS float64
	Jitter      float64 // fractional exponential jitter on service times
}

// DefaultConfig models the paper's 26 Ultra320 SCSI drives at 1.6 GHz:
// 24 data disks plus 2 log devices.
func DefaultConfig() Config {
	return Config{
		DataDisks:   24,
		LogDisks:    2,
		AccessMS:    6.5,
		WriteMS:     2.2,
		LogMS:       0.6,
		TransferMS:  0.2,
		CyclesPerMS: 1.6e6,
		Jitter:      0.25,
	}
}

// Stats aggregates array behaviour over a measurement period.
type Stats struct {
	Reads          uint64
	Writes         uint64 // data writebacks
	BgReads        uint64 // background (maintenance) reads: compaction input
	LogWrites      uint64
	ReadLatencySum float64 // cycles, queue + service
	BusyCycles     float64 // summed across data disks
	Elapsed        float64
	MaxQueue       int
}

// MeanReadLatency returns the average read completion latency in cycles.
func (s Stats) MeanReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return s.ReadLatencySum / float64(s.Reads)
}

// Utilization returns mean data-disk utilization in [0, 1].
func (s Stats) Utilization(dataDisks int) float64 {
	if s.Elapsed <= 0 || dataDisks == 0 {
		return 0
	}
	u := s.BusyCycles / (s.Elapsed * float64(dataDisks))
	if u > 1 {
		return 1
	}
	return u
}

type disk struct {
	nextFree sim.Time
	queueLen int
}

// Array is the simulated disk array.
type Array struct {
	cfg   Config
	eng   *sim.Engine
	rng   *xrand.Rand
	data  []disk
	log   []disk
	logRR int

	stats   Stats
	resetAt sim.Time

	// Optional queueing-observatory stations: one for the data disks,
	// one for the log devices. FCFS makes wait and service known at
	// enqueue time, so each operation is a fused Visit.
	qsData *qstats.Station
	qsLog  *qstats.Station
}

// New builds an array attached to the simulation engine.
func New(cfg Config, eng *sim.Engine, rng *xrand.Rand) *Array {
	if cfg.DataDisks <= 0 || cfg.LogDisks <= 0 {
		panic("storage: need at least one data and one log disk")
	}
	return &Array{
		cfg:  cfg,
		eng:  eng,
		rng:  rng,
		data: make([]disk, cfg.DataDisks),
		log:  make([]disk, cfg.LogDisks),
	}
}

// SetStations attaches the observatory's disk and log stations.
func (a *Array) SetStations(data, log *qstats.Station) {
	a.qsData = data
	a.qsLog = log
}

func (a *Array) service(meanMS float64) sim.Time {
	ms := meanMS
	if a.cfg.Jitter > 0 {
		ms = meanMS*(1-a.cfg.Jitter) + a.rng.Exp(meanMS*a.cfg.Jitter)
	}
	return sim.Time(ms*a.cfg.CyclesPerMS + 0.5)
}

// enqueue schedules one operation on d and returns its completion time.
func (a *Array) enqueue(d *disk, svc sim.Time, busy bool) sim.Time {
	now := a.eng.Now()
	start := d.nextFree
	if start < now {
		start = now
	}
	complete := start + svc
	d.nextFree = complete
	d.queueLen++
	if d.queueLen > a.stats.MaxQueue {
		a.stats.MaxQueue = d.queueLen
	}
	if busy {
		a.stats.BusyCycles += float64(svc)
	}
	a.eng.At(complete, func() { d.queueLen-- })
	return complete
}

// Read issues a synchronous block read; done runs at completion time.
// The block's disk is chosen by striping on the block number.
func (a *Array) Read(block uint64, done func()) {
	d := &a.data[int(block)%len(a.data)]
	svc := a.service(a.cfg.AccessMS + a.cfg.TransferMS)
	complete := a.enqueue(d, svc, true)
	issued := a.eng.Now()
	a.stats.Reads++
	if a.qsData != nil {
		a.qsData.Visit(float64(complete-svc-issued), float64(svc))
	}
	a.eng.At(complete, func() {
		a.stats.ReadLatencySum += float64(complete - issued)
		if done != nil {
			done()
		}
	})
}

// BackgroundRead issues an asynchronous maintenance read (compaction
// input); no caller waits on it. It occupies the disk like any read but
// is counted separately and excluded from foreground read latency, so
// engine maintenance does not pollute the paper's read-latency metric.
func (a *Array) BackgroundRead(block uint64) {
	d := &a.data[int(block)%len(a.data)]
	svc := a.service(a.cfg.AccessMS + a.cfg.TransferMS)
	complete := a.enqueue(d, svc, true)
	a.stats.BgReads++
	if a.qsData != nil {
		// Background operations delay no transaction while they queue, so
		// only their service (resource consumption) lands in the station —
		// the posted-write discipline the bus station applies. Their queue
		// wait would otherwise swamp the foreground wait-demand ranking.
		a.qsData.Visit(0, float64(svc))
	}
	_ = complete
}

// Write issues an asynchronous data-block writeback (the DB writer's
// work); no caller waits on it.
func (a *Array) Write(block uint64) {
	d := &a.data[int(block)%len(a.data)]
	svc := a.service(a.cfg.WriteMS + a.cfg.TransferMS)
	complete := a.enqueue(d, svc, true)
	a.stats.Writes++
	if a.qsData != nil {
		// Posted like BackgroundRead: service only, no queue wait.
		a.qsData.Visit(0, float64(svc))
	}
	_ = complete
}

// LogWrite issues a sequential write of n blocks to the next log device;
// done (if non-nil) runs when the write is durable, for commits that wait.
func (a *Array) LogWrite(blocks int, done func()) {
	d := &a.log[a.logRR]
	a.logRR = (a.logRR + 1) % len(a.log)
	svc := a.service(a.cfg.LogMS + float64(blocks)*a.cfg.TransferMS)
	complete := a.enqueue(d, svc, false)
	a.stats.LogWrites++
	if a.qsLog != nil {
		a.qsLog.Visit(float64(complete-svc-a.eng.Now()), float64(svc))
	}
	if done != nil {
		a.eng.At(complete, done)
	} else {
		_ = complete
	}
}

// QueueDepth returns the current total outstanding operations on the data
// disks, a saturation signal.
func (a *Array) QueueDepth() int {
	n := 0
	for i := range a.data {
		n += a.data[i].queueLen
	}
	return n
}

// ResetStats starts a new measurement period.
func (a *Array) ResetStats() {
	a.stats = Stats{}
	a.resetAt = a.eng.Now()
}

// StatsNow returns statistics for the current measurement period.
func (a *Array) StatsNow() Stats {
	s := a.stats
	s.Elapsed = float64(a.eng.Now() - a.resetAt)
	return s
}

// DataDisks returns the number of data disks.
func (a *Array) DataDisks() int { return len(a.data) }
