package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"odbscale/internal/system"
)

// fakeUtil is the synthetic utilization surface the fake simulator
// exposes: non-decreasing in clients, non-increasing in warehouses at a
// fixed count (more I/O per client), and lower at higher processor
// counts — the regime the tuner assumes.
func fakeUtil(w, p, c int) float64 {
	need := float64(6*p) + float64(w)/10
	return math.Min(1, float64(c)/need)
}

// fakeTuned is the brute-force ground truth: the smallest count in
// [min, max] reaching target, or max when none does.
func fakeTuned(w, p, min, max int, target float64) int {
	for c := min; c <= max; c++ {
		if fakeUtil(w, p, c) >= target {
			return c
		}
	}
	return max
}

// runLog is a fake RunFunc that records every executed configuration.
type runLog struct {
	mu    sync.Mutex
	delay time.Duration
	cfgs  []system.Config
}

func (l *runLog) run(ctx context.Context, cfg system.Config) (system.Metrics, error) {
	if l.delay > 0 {
		select {
		case <-time.After(l.delay):
		case <-ctx.Done():
			return system.Metrics{}, ctx.Err()
		}
	} else if err := ctx.Err(); err != nil {
		return system.Metrics{}, err
	}
	l.mu.Lock()
	l.cfgs = append(l.cfgs, cfg)
	l.mu.Unlock()
	return system.Metrics{
		Warehouses: cfg.Warehouses,
		Clients:    cfg.Clients,
		Processors: cfg.Processors,
		Txns:       uint64(cfg.MeasureTxns),
		TPS:        float64(cfg.Warehouses),
		CPI:        2.5,
		CPUUtil:    fakeUtil(cfg.Warehouses, cfg.Processors, cfg.Clients),
	}, nil
}

func (l *runLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.cfgs)
}

// split separates the executed runs into measurement points and tuner
// probes by their measurement length.
func (l *runLog) split(measureTxns int) (points map[PointKey]int, probes map[probeKey]int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	points = make(map[PointKey]int)
	probes = make(map[probeKey]int)
	for _, cfg := range l.cfgs {
		if cfg.MeasureTxns == measureTxns {
			points[PointKey{W: cfg.Warehouses, P: cfg.Processors}]++
		} else {
			probes[probeKey{cfg.Warehouses, cfg.Processors, cfg.Clients}]++
		}
	}
	return points, probes
}

// recorder captures every observer event.
type recorder struct {
	mu         sync.Mutex
	started    []Point
	finished   []PointResult
	probes     []Probe
	summaries  []Summary
	onFinished func(successes int)
}

func (r *recorder) PointStarted(p Point) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.started = append(r.started, p)
}

func (r *recorder) PointFinished(p PointResult) {
	r.mu.Lock()
	r.finished = append(r.finished, p)
	n := 0
	for _, f := range r.finished {
		if f.Err == nil && !f.Resumed {
			n++
		}
	}
	cb := r.onFinished
	r.mu.Unlock()
	if cb != nil {
		cb(n)
	}
}

func (r *recorder) TunerProbe(p Probe) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.probes = append(r.probes, p)
}

func (r *recorder) CampaignDone(s Summary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.summaries = append(r.summaries, s)
}

// successes returns the point keys finished by an executed run.
func (r *recorder) successes() map[PointKey]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[PointKey]bool)
	for _, f := range r.finished {
		if f.Err == nil && !f.Resumed {
			out[PointKey{W: f.Warehouses, P: f.Processors}] = true
		}
	}
	return out
}

// resumed returns the point keys restored from the checkpoint.
func (r *recorder) resumed() map[PointKey]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[PointKey]bool)
	for _, f := range r.finished {
		if f.Resumed {
			out[PointKey{W: f.Warehouses, P: f.Processors}] = true
		}
	}
	return out
}

// executedProbes returns the probe keys that actually simulated.
func (r *recorder) executedProbes() map[probeKey]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[probeKey]bool)
	for _, p := range r.probes {
		if !p.Cached {
			out[probeKey{p.Warehouses, p.Processors, p.Clients}] = true
		}
	}
	return out
}

var (
	testWarehouses = []int{10, 40, 90, 160, 250, 360}
	testProcessors = []int{1, 2}
)

// testSpec returns a fake-simulator campaign: distinct MeasureTxns and
// TuneTxns let runLog.split classify the executed runs.
func testSpec() Spec {
	return Spec{
		Machine:     system.XeonQuad(),
		Tuning:      system.DefaultTuning(),
		Seed:        7,
		WarmupTxns:  10,
		MeasureTxns: 500,
		TuneTxns:    100,
		TargetUtil:  0.9,
		MinClients:  2,
		MaxClients:  64,
		AutoTune:    true,
		WarmStart:   true,
		Parallelism: 2,
		Warehouses:  append([]int(nil), testWarehouses...),
		Processors:  append([]int(nil), testProcessors...),
	}
}

func TestTuneAgainstBruteForce(t *testing.T) {
	const target = 0.9
	for _, w := range []int{5, 30, 80, 200, 420, 1000} {
		for _, p := range []int{1, 2, 4} {
			for _, b := range []Bounds{
				{Min: 2, Max: 64},
				{Min: 8, Max: 64},
				{Min: 1, Max: 48},
			} {
				b.Target = target
				want := fakeTuned(w, p, b.Min, b.Max, target)
				for _, start := range []int{b.Min, want - 1, want, want + 3, b.Max} {
					if start < b.Min || start > b.Max {
						continue
					}
					bb := b
					bb.Start = start
					asked := make(map[int]bool)
					got, err := Tune(func(c int) (float64, error) {
						if asked[c] {
							t.Fatalf("W=%d P=%d %+v: count %d probed twice", w, p, bb, c)
						}
						asked[c] = true
						return fakeUtil(w, p, c), nil
					}, bb)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("W=%d P=%d %+v: tuned %d, brute force %d", w, p, bb, got, want)
					}
				}
			}
		}
	}
}

func TestTuneIOBoundReturnsMax(t *testing.T) {
	got, err := Tune(func(c int) (float64, error) { return 0.5, nil }, Bounds{Min: 4, Max: 32, Start: 4, Target: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Fatalf("I/O-bound search returned %d, want Max=32", got)
	}
}

func TestTunePropagatesProbeError(t *testing.T) {
	boom := errors.New("boom")
	if _, err := Tune(func(int) (float64, error) { return 0, boom }, Bounds{Min: 2, Max: 8, Start: 2, Target: 0.9}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped probe error", err)
	}
}

func TestCampaignCoverageAndAccounting(t *testing.T) {
	spec := testSpec()
	rl := &runLog{}
	rec := &recorder{}
	spec.Observer = rec
	res, err := (&Runner{Spec: spec, RunFunc: rl.run}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	total := len(spec.Warehouses) * len(spec.Processors)
	if len(res.Points) != total {
		t.Fatalf("result has %d points, want %d", len(res.Points), total)
	}
	for _, p := range spec.Processors {
		series := res.Series(p)
		if len(series) != len(spec.Warehouses) {
			t.Fatalf("Series(%d) has %d points", p, len(series))
		}
		for i, m := range series {
			if m.Warehouses != spec.Warehouses[i] {
				t.Fatalf("Series(%d)[%d] = W%d, want axis order", p, i, m.Warehouses)
			}
			want := fakeTuned(m.Warehouses, p, spec.MinClients, spec.MaxClients, spec.TargetUtil)
			if m.Clients != want {
				t.Fatalf("W=%d P=%d tuned to %d clients, brute force %d", m.Warehouses, p, m.Clients, want)
			}
		}
	}

	points, probes := rl.split(spec.MeasureTxns)
	if len(points) != total {
		t.Fatalf("executed %d measurement points, want %d", len(points), total)
	}
	for k, n := range points {
		if n != 1 {
			t.Fatalf("point %+v measured %d times", k, n)
		}
	}
	for k, n := range probes {
		if n != 1 {
			t.Fatalf("probe %+v executed %d times — memo failed", k, n)
		}
	}

	sum := res.Summary
	if sum.Points != total || sum.PointsResumed != 0 {
		t.Fatalf("summary points = %d (%d resumed), want %d (0)", sum.Points, sum.PointsResumed, total)
	}
	if sum.Runs != rl.count() {
		t.Fatalf("summary counts %d runs, fake executed %d", sum.Runs, rl.count())
	}
	if exec := sum.Probes - sum.ProbesCached; exec != len(probes) {
		t.Fatalf("summary counts %d executed probes, fake saw %d", exec, len(probes))
	}
	if len(rec.started) != total || len(rec.finished) != total {
		t.Fatalf("observer saw %d started / %d finished", len(rec.started), len(rec.finished))
	}
	if len(rec.summaries) != 1 || rec.summaries[0].Err != nil {
		t.Fatalf("CampaignDone fired %d times (err=%v)", len(rec.summaries), rec.summaries[0].Err)
	}
}

func TestCampaignFixedAndHeuristicClients(t *testing.T) {
	spec := testSpec()
	spec.Clients = 9
	rl := &runLog{}
	res, err := (&Runner{Spec: spec, RunFunc: rl.run}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, probes := rl.split(spec.MeasureTxns)
	if len(probes) != 0 {
		t.Fatalf("fixed clients ran %d probes", len(probes))
	}
	for k, m := range res.Points {
		if m.Clients != 9 {
			t.Fatalf("point %+v ran with %d clients, want the pinned 9", k, m.Clients)
		}
	}

	spec = testSpec()
	spec.AutoTune = false
	rl = &runLog{}
	res, err = (&Runner{Spec: spec, RunFunc: rl.run}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, probes = rl.split(spec.MeasureTxns); len(probes) != 0 {
		t.Fatalf("heuristic mode ran %d probes", len(probes))
	}
	for k, m := range res.Points {
		if want := system.HeuristicClients(k.W, k.P); m.Clients != want {
			t.Fatalf("point %+v ran with %d clients, heuristic says %d", k, m.Clients, want)
		}
	}
}

func TestWarmStartSavesProbesSameResults(t *testing.T) {
	warm, cold := testSpec(), testSpec()
	cold.WarmStart = false
	rlWarm, rlCold := &runLog{}, &runLog{}
	resWarm, err := (&Runner{Spec: warm, RunFunc: rlWarm.run}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resCold, err := (&Runner{Spec: cold, RunFunc: rlCold.run}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Identical tuned counts: the warm start changes the search path, not
	// the minimal satisfying count it converges to.
	for k, m := range resCold.Points {
		if resWarm.Points[k].Clients != m.Clients {
			t.Fatalf("point %+v: warm tuned %d, cold tuned %d", k, resWarm.Points[k].Clients, m.Clients)
		}
	}
	if w, c := resWarm.Summary.Runs, resCold.Summary.Runs; w >= c {
		t.Fatalf("warm start executed %d runs, cold %d — expected strictly fewer", w, c)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	cp := &Checkpoint{
		Version: checkpointVersion,
		Spec:    Fingerprint{Machine: "xeon", Seed: 3, WarmupTxns: 10, MeasureTxns: 500, TuneTxns: 100, TargetUtil: 0.9, MinClients: 2, MaxClients: 64, AutoTune: true},
		Points: []CheckpointPoint{
			{W: 10, P: 1, C: 7, Metrics: system.Metrics{Warehouses: 10, Processors: 1, Clients: 7, Txns: 500, TPS: 123.5, CPI: 2.25, MPI: 0.004, CPUUtil: 0.93}},
			{W: 40, P: 2, C: 15, Metrics: system.Metrics{Warehouses: 40, Processors: 2, Clients: 15, Txns: 500, TPS: 210, CPI: 2.5, MPI: 0.006, CPUUtil: 0.91}},
		},
		Probes: []CheckpointProbe{{W: 10, P: 1, C: 2, Util: 0.3}, {W: 10, P: 1, C: 7, Util: 0.93}},
	}
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip diverged:\nwrote %+v\nread  %+v", cp, got)
	}

	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v", err)
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestCancelCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	total := len(testWarehouses) * len(testProcessors)

	// Phase 1: cancel the campaign after three successful points.
	spec := testSpec()
	spec.CheckpointPath = path
	rl1 := &runLog{delay: 2 * time.Millisecond}
	rec1 := &recorder{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec1.onFinished = func(successes int) {
		if successes == 3 {
			cancel()
		}
	}
	spec.Observer = rec1
	if _, err := (&Runner{Spec: spec, RunFunc: rl1.run}).Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	if len(rec1.summaries) != 1 || !errors.Is(rec1.summaries[0].Err, context.Canceled) {
		t.Fatal("CampaignDone must fire once with the failure")
	}

	// The checkpoint must hold exactly the successfully finished points.
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("checkpoint unreadable after cancellation: %v", err)
	}
	if cp.Spec != spec.fingerprint() {
		t.Fatalf("checkpoint fingerprint %+v does not match spec %+v", cp.Spec, spec.fingerprint())
	}
	done := rec1.successes()
	if len(cp.Points) != len(done) {
		t.Fatalf("checkpoint holds %d points, observer saw %d successes", len(cp.Points), len(done))
	}
	for _, pt := range cp.Points {
		if !done[PointKey{W: pt.W, P: pt.P}] {
			t.Fatalf("checkpoint point %+v never finished", pt)
		}
	}
	if len(done) < 3 || len(done) >= total {
		t.Fatalf("phase 1 finished %d of %d points — cancellation did not interrupt", len(done), total)
	}

	// Phase 2: resume. Completed points must come back from the
	// checkpoint, only the complement may execute, and no probe recorded
	// in phase 1 may simulate again.
	spec2 := testSpec()
	spec2.CheckpointPath = path
	spec2.Resume = true
	rl2 := &runLog{}
	rec2 := &recorder{}
	spec2.Observer = rec2
	res, err := (&Runner{Spec: spec2, RunFunc: rl2.run}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != total {
		t.Fatalf("resumed campaign has %d points, want %d", len(res.Points), total)
	}
	if got := rec2.resumed(); !reflect.DeepEqual(got, done) {
		t.Fatalf("resumed %v, checkpoint held %v", got, done)
	}
	points2, _ := rl2.split(spec2.MeasureTxns)
	if len(points2) != total-len(done) {
		t.Fatalf("resume executed %d points, want the %d incomplete ones", len(points2), total-len(done))
	}
	for k := range points2 {
		if done[k] {
			t.Fatalf("resume re-executed completed point %+v", k)
		}
	}
	p1, p2 := rec1.executedProbes(), rec2.executedProbes()
	for k := range p2 {
		if p1[k] {
			t.Fatalf("probe %+v simulated in both phases despite the checkpoint memo", k)
		}
	}
	if res.Summary.PointsResumed != len(done) {
		t.Fatalf("summary resumed %d, want %d", res.Summary.PointsResumed, len(done))
	}
	for k, m := range res.Points {
		want := fakeTuned(k.W, k.P, spec.MinClients, spec.MaxClients, spec.TargetUtil)
		if m.Clients != want {
			t.Fatalf("point %+v finished with %d clients, brute force %d", k, m.Clients, want)
		}
	}
}

func TestResumeFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	spec := testSpec()
	spec.CheckpointPath = path
	rl := &runLog{}
	if _, err := (&Runner{Spec: spec, RunFunc: rl.run}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	spec2 := testSpec()
	spec2.CheckpointPath = path
	spec2.Resume = true
	spec2.Seed = spec.Seed + 1
	if _, err := (&Runner{Spec: spec2, RunFunc: rl.run}).Run(context.Background()); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
}

func TestSpecValidation(t *testing.T) {
	spec := testSpec()
	spec.Warehouses = nil
	if _, err := Run(context.Background(), spec); err == nil {
		t.Fatal("empty axes accepted")
	}
	spec = testSpec()
	spec.MeasureTxns = 0
	if _, err := Run(context.Background(), spec); !errors.Is(err, system.ErrNoTxns) {
		t.Fatalf("err = %v, want ErrNoTxns", err)
	}
	spec = testSpec()
	spec.MaxClients = spec.MinClients - 1
	if _, err := Run(context.Background(), spec); err == nil {
		t.Fatal("inverted client range accepted")
	}
	spec = testSpec()
	spec.Resume = true // no CheckpointPath
	if _, err := Run(context.Background(), spec); err == nil {
		t.Fatal("Resume without CheckpointPath accepted")
	}
}

func TestObserversFanOut(t *testing.T) {
	spec := testSpec()
	spec.Warehouses = []int{10, 40}
	spec.Processors = []int{1}
	a, b := &recorder{}, &recorder{}
	spec.Observer = Observers(nil, a, nil, b)
	rl := &runLog{}
	if _, err := (&Runner{Spec: spec, RunFunc: rl.run}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(a.finished) != 2 || len(b.finished) != 2 {
		t.Fatalf("fanout delivered %d/%d finishes, want 2/2", len(a.finished), len(b.finished))
	}
	if len(a.summaries) != 1 || len(b.summaries) != 1 {
		t.Fatal("fanout lost CampaignDone")
	}
}

func TestProgressAndEventLogOutput(t *testing.T) {
	spec := testSpec()
	spec.Warehouses = []int{10, 40}
	spec.Processors = []int{1}
	var progressBuf, logBuf bytes.Buffer
	spec.Observer = Observers(
		NewProgress(&progressBuf, len(spec.Warehouses)),
		NewEventLog(&logBuf),
	)
	rl := &runLog{}
	res, err := (&Runner{Spec: spec, RunFunc: rl.run}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out := progressBuf.String(); !strings.Contains(out, "done in") || !strings.Contains(out, "2/2 points") {
		t.Fatalf("progress output missing summary:\n%s", out)
	}

	events := make(map[string]int)
	dec := json.NewDecoder(&logBuf)
	var lastSummary *Summary
	for dec.More() {
		var rec struct {
			Event   string          `json:"event"`
			Metrics *system.Metrics `json:"metrics"`
			Summary *Summary        `json:"summary"`
		}
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("event log is not JSON lines: %v", err)
		}
		events[rec.Event]++
		if rec.Event == "point_finished" && rec.Metrics == nil {
			t.Fatal("point_finished record lacks metrics")
		}
		if rec.Summary != nil {
			lastSummary = rec.Summary
		}
	}
	if events["point_started"] != 2 || events["point_finished"] != 2 || events["campaign_done"] != 1 {
		t.Fatalf("event counts: %v", events)
	}
	if events["tuner_probe"] == 0 {
		t.Fatal("no tuner_probe events for an auto-tuned campaign")
	}
	if lastSummary == nil || lastSummary.Runs != res.Summary.Runs {
		t.Fatalf("campaign_done summary = %+v, want runs %d", lastSummary, res.Summary.Runs)
	}
}

func TestRunAllOrderAndErrors(t *testing.T) {
	cfgs := make([]system.Config, 3)
	for i, w := range []int{10, 20, 30} {
		cfgs[i] = system.DefaultConfig(w, 8, 1)
		cfgs[i].WarmupTxns = 20
		cfgs[i].MeasureTxns = 40
	}
	ms, err := RunAll(context.Background(), 2, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if m.Warehouses != cfgs[i].Warehouses {
			t.Fatalf("result %d is W=%d, want input order", i, m.Warehouses)
		}
	}

	bad := append([]system.Config(nil), cfgs...)
	bad[1].Clients = 0
	_, err = RunAll(context.Background(), 2, bad)
	if !errors.Is(err, system.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	if !strings.Contains(err.Error(), "run 1") {
		t.Fatalf("error %q does not name the failing run", err)
	}
}

func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []system.Config{system.DefaultConfig(10, 8, 1)}
	cfgs[0].WarmupTxns = 20
	cfgs[0].MeasureTxns = 40
	if _, err := RunAll(ctx, 1, cfgs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCampaignDeterministic guards the parallel scheduler: two runs of
// the same spec must produce identical metrics for every point.
func TestCampaignDeterministic(t *testing.T) {
	run := func() *Result {
		rl := &runLog{delay: time.Millisecond}
		spec := testSpec()
		res, err := (&Runner{Spec: spec, RunFunc: rl.run}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Fatal("same spec produced different campaign results")
	}
}

func init() {
	// Guard against the fake losing the properties the tests rely on.
	for p := 1; p <= 4; p++ {
		prev := -1.0
		for c := 1; c <= 64; c++ {
			u := fakeUtil(100, p, c)
			if u < prev {
				panic(fmt.Sprintf("fakeUtil not monotone in clients at p=%d c=%d", p, c))
			}
			prev = u
		}
	}
}
