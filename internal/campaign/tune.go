package campaign

// Bounds frames one client-tuner search.
type Bounds struct {
	// Min and Max bound the client counts considered.
	Min, Max int
	// Start is the first count probed. A warm start (Start > Min, e.g.
	// the tuned count of the previous, smaller warehouse point) lets the
	// search confirm a plateau with a single probe instead of repeating
	// the exponential climb from Min.
	Start int
	// Target is the utilization the tuned configuration must reach.
	Target float64
}

// Tune finds the smallest client count in [Min, Max] whose probed
// utilization reaches Target, assuming utilization is non-decreasing in
// the client count (the paper's regime: more clients mask more disk
// latency). If even Max cannot reach the target — an I/O-bound setup —
// Max is returned as the best effort, matching the paper's treatment of
// its 1200-warehouse point.
//
// The search probes Start first. If Start satisfies the target it
// checks Start-1: a failure there proves Start minimal (a warm-started
// plateau point costs exactly two probes), while a pass binary-refines
// over [Min, Start-1]. If Start falls short it doubles upward from
// Start to bracket the target and binary-refines inside the bracket,
// exactly the exponential-plus-binary search of the paper's Table 1
// methodology. Probe results are expected to be memoized by the caller;
// Tune itself never asks for the same count twice.
func Tune(probe func(clients int) (float64, error), b Bounds) (int, error) {
	if b.Min < 1 {
		b.Min = 1
	}
	if b.Max < b.Min {
		b.Max = b.Min
	}
	start := b.Start
	if start < b.Min {
		start = b.Min
	}
	if start > b.Max {
		start = b.Max
	}

	refine := func(lo, hi int) (int, error) {
		// Invariant: hi satisfies the target, lo does not (lo may sit one
		// below Min as an unprobed sentinel).
		for lo+1 < hi {
			mid := (lo + hi) / 2
			u, err := probe(mid)
			if err != nil {
				return 0, err
			}
			if u >= b.Target {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi, nil
	}

	u, err := probe(start)
	if err != nil {
		return 0, err
	}
	if u >= b.Target {
		if start == b.Min {
			return start, nil
		}
		// One probe below Start decides between a plateau (Start is
		// minimal) and a refinement over what is left beneath it.
		below, err := probe(start - 1)
		if err != nil {
			return 0, err
		}
		if below < b.Target {
			return start, nil
		}
		return refine(b.Min-1, start-1)
	}
	// Exponential climb for an upper bound.
	lo, hi := start, start
	for hi < b.Max {
		lo = hi
		hi *= 2
		if hi > b.Max {
			hi = b.Max
		}
		if u, err = probe(hi); err != nil {
			return 0, err
		}
		if u >= b.Target {
			break
		}
	}
	if u < b.Target {
		return b.Max, nil // I/O bound: best effort
	}
	return refine(lo, hi)
}
