package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"odbscale/internal/system"
)

// FuzzCheckpointRoundTrip fuzzes the JSON checkpoint decode path with
// corrupted and truncated input. The resume contract is that a damaged
// checkpoint errors — it must never panic and never yield a checkpoint
// that cannot survive a save/load round trip.
func FuzzCheckpointRoundTrip(f *testing.F) {
	valid := Checkpoint{
		Version: checkpointVersion,
		Spec: Fingerprint{
			Machine: "stock", Seed: 42, WarmupTxns: 50, MeasureTxns: 100,
			TuneTxns: 50, TargetUtil: 0.9, MinClients: 1, MaxClients: 64, AutoTune: true,
		},
		Points: []CheckpointPoint{{W: 10, P: 4, C: 16, Metrics: system.Metrics{Warehouses: 10, Processors: 4, TPS: 1234.5}}},
		Probes: []CheckpointProbe{{W: 10, P: 4, C: 8, Util: 0.87}},
	}
	data, err := json.MarshalIndent(&valid, "", " ")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])                                    // truncated mid-object
	f.Add(data[:len(data)-2])                                    // missing closing brace
	f.Add([]byte(`{"version":99,"points":[],"probes":[]}`))      // future version
	f.Add([]byte(`{"version":1,"points":{"w":1}}`))              // wrong shape
	f.Add([]byte(`{`))                                           // malformed
	f.Add([]byte(``))                                            // empty file
	f.Add(bytes.Replace(data, []byte(`"w"`), []byte(`"w":`), 1)) // corrupted key
	f.Add(bytes.Replace(data, []byte(`42`), []byte(`4e999`), 1)) // numeric overflow

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "ck.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		cp, err := LoadCheckpoint(path) // must error on damage, never panic
		if err != nil {
			if cp != nil {
				t.Fatalf("LoadCheckpoint returned both a checkpoint and error %v", err)
			}
		} else {
			if cp.Version != checkpointVersion {
				t.Fatalf("accepted checkpoint version %d, want %d", cp.Version, checkpointVersion)
			}
			// Whatever decodes must survive a save/load round trip.
			out := filepath.Join(dir, "resaved.json")
			if err := cp.Save(out); err != nil {
				t.Fatalf("resaving a loaded checkpoint: %v", err)
			}
			again, err := LoadCheckpoint(out)
			if err != nil {
				t.Fatalf("reloading a resaved checkpoint: %v", err)
			}
			if again.Version != cp.Version || again.Spec != cp.Spec ||
				len(again.Points) != len(cp.Points) || len(again.Probes) != len(cp.Probes) {
				t.Fatalf("round trip changed the checkpoint: %+v vs %+v", again, cp)
			}
		}

		// The resume path wraps the same decode: it must also degrade to
		// an error (mismatched fingerprints included), never a panic.
		spec := &Spec{
			Machine: system.MachineConfig{Name: "stock"}, Seed: 42,
			WarmupTxns: 50, MeasureTxns: 100, TuneTxns: 50,
			TargetUtil: 0.9, MinClients: 1, MaxClients: 64, AutoTune: true,
			CheckpointPath: path, Resume: true,
			Warehouses: []int{10}, Processors: []int{4},
		}
		if _, err := newCKStore(spec); err != nil {
			t.Logf("resume rejected fuzzed checkpoint: %v", err)
		}
	})
}
