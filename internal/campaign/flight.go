package campaign

import (
	"fmt"
	"time"

	"odbscale/internal/clock"
	"odbscale/internal/telemetry"
)

// flightObserver mirrors campaign events into a CampaignRecorder's live
// progress, feeding the /progress and /metrics endpoints. It is the glue
// between the two packages: telemetry cannot import campaign, so the
// event translation lives here.
type flightObserver struct {
	cr *telemetry.CampaignRecorder
}

// NewFlightObserver returns an Observer that keeps cr's campaign
// progress current. The runner installs it automatically when
// Spec.Flight is set; it is exported for callers composing their own
// observer chains.
func NewFlightObserver(cr *telemetry.CampaignRecorder) Observer {
	return &flightObserver{cr: cr}
}

func (f *flightObserver) PointStarted(p Point) {
	f.cr.Event(func(cp *telemetry.CampaignProgress) {
		cp.LastEvent = fmt.Sprintf("measuring W=%d P=%d c=%d", p.Warehouses, p.Processors, p.Clients)
	})
}

func (f *flightObserver) PointFinished(p PointResult) {
	f.cr.Event(func(cp *telemetry.CampaignProgress) {
		cp.PointsDone++
		switch {
		case p.Err != nil:
			cp.PointsFailed++
			cp.Runs++
			cp.LastEvent = fmt.Sprintf("W=%d P=%d failed: %v", p.Warehouses, p.Processors, p.Err)
		case p.Resumed:
			cp.PointsResumed++
			cp.LastEvent = fmt.Sprintf("W=%d P=%d resumed from checkpoint", p.Warehouses, p.Processors)
		default:
			cp.Runs++
			cp.LastEvent = fmt.Sprintf("W=%d P=%d c=%d util=%.2f tps=%.0f",
				p.Warehouses, p.Processors, p.Clients, p.Metrics.CPUUtil, p.Metrics.TPS)
		}
	})
}

func (f *flightObserver) TunerProbe(p Probe) {
	f.cr.Event(func(cp *telemetry.CampaignProgress) {
		cp.Probes++
		if p.Cached {
			cp.ProbesCached++
		} else {
			cp.Runs++
		}
		cp.LastEvent = fmt.Sprintf("tuning W=%d P=%d: c=%d util=%.2f", p.Warehouses, p.Processors, p.Clients, p.Util)
	})
}

func (f *flightObserver) CampaignDone(s Summary) {
	f.cr.Event(func(cp *telemetry.CampaignProgress) {
		cp.Done = true
		if s.Err != nil {
			cp.Err = s.Err.Error()
		}
		cp.LastEvent = "campaign done"
	})
}

// manifestConfig is the JSON-serializable projection of a Spec — every
// run-defining knob, none of the live plumbing (observers, recorders).
func (s *Spec) manifestConfig() any {
	return struct {
		Machine     any     `json:"machine"`
		Tuning      any     `json:"tuning"`
		Seed        int64   `json:"seed"`
		WarmupTxns  int     `json:"warmup_txns"`
		MeasureTxns int     `json:"measure_txns"`
		TuneTxns    int     `json:"tune_txns"`
		TargetUtil  float64 `json:"target_util"`
		MinClients  int     `json:"min_clients"`
		MaxClients  int     `json:"max_clients"`
		AutoTune    bool    `json:"auto_tune"`
		Clients     int     `json:"clients"`
		WarmStart   bool    `json:"warm_start"`
		Parallelism int     `json:"parallelism"`
		Warehouses  []int   `json:"warehouses"`
		Processors  []int   `json:"processors"`
	}{
		Machine: s.Machine, Tuning: s.Tuning, Seed: s.Seed,
		WarmupTxns: s.WarmupTxns, MeasureTxns: s.MeasureTxns, TuneTxns: s.TuneTxns,
		TargetUtil: s.TargetUtil, MinClients: s.MinClients, MaxClients: s.MaxClients,
		AutoTune: s.AutoTune, Clients: s.Clients, WarmStart: s.WarmStart,
		Parallelism: s.Parallelism, Warehouses: s.Warehouses, Processors: s.Processors,
	}
}

// writeManifest emits the run manifest next to the checkpoint. Wall
// times flow through the runner's injected clock, keeping the package
// inside the determinism rule.
func (r *Runner) writeManifest(clk clock.Clock, started time.Time, notes string) error {
	spec := &r.Spec
	man := telemetry.NewManifest("odbscale-campaign", spec.Seed)
	man.CreatedAt = started.UTC().Format(time.RFC3339)
	man.Checkpoint = spec.CheckpointPath
	man.WallSeconds = clk.Since(started).Seconds()
	man.Notes = notes
	if err := man.SetConfig(spec.manifestConfig()); err != nil {
		return err
	}
	return man.Save(telemetry.ManifestPath(spec.CheckpointPath))
}
