package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"odbscale/internal/profile"
	"odbscale/internal/qstats"
	"odbscale/internal/system"
	"odbscale/internal/telemetry"
	"odbscale/internal/txtrace"
)

// fakeObserved emulates an observatory measurement run: a deterministic
// station report derived only from the configuration, so two campaigns
// covering the same points converge on identical per-point reports
// regardless of interruption.
type fakeObserved struct {
	mu    sync.Mutex
	delay time.Duration
	runs  int
}

func (f *fakeObserved) run(ctx context.Context, cfg system.Config, rec *telemetry.Recorder,
	col *profile.Collector, tr *txtrace.Tracer, qc *qstats.Collector) (system.Metrics, error) {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return system.Metrics{}, ctx.Err()
		}
	} else if err := ctx.Err(); err != nil {
		return system.Metrics{}, err
	}
	f.mu.Lock()
	f.runs++
	f.mu.Unlock()
	w := cfg.Warehouses
	if qc != nil {
		in := &qstats.Input{
			Meta:          qstats.Meta{Warehouses: w, Clients: cfg.Clients, Processors: cfg.Processors, Seed: cfg.Seed},
			ElapsedCycles: 1e9,
			CyclesPerMS:   1e6,
			Commits:       uint64(cfg.MeasureTxns),
		}
		in.Counts[qstats.Disk] = qstats.Counts{
			Arrivals: uint64(w), Completions: uint64(w),
			BusyCycles: float64(w) * 1e6, WaitCycles: float64(w) * 5e5,
		}
		in.Servers[qstats.Disk] = 4
		qc.Publish(qstats.Build(in))
	}
	return system.Metrics{
		Warehouses: w, Clients: cfg.Clients, Processors: cfg.Processors,
		Txns: uint64(cfg.MeasureTxns),
	}, nil
}

// TestQueueStatsKillResumeRestoresReports is the queue-stats store's
// crash-consistency guarantee: a campaign killed mid-flight and resumed
// with a fresh store must converge on exactly the per-point station
// reports of an uninterrupted campaign — completed points come back from
// the checkpoint, not from re-runs.
func TestQueueStatsKillResumeRestoresReports(t *testing.T) {
	total := len(testWarehouses) * len(testProcessors)
	specFor := func(path string) (Spec, *qstats.Store) {
		spec := testSpec()
		spec.AutoTune = false
		spec.Clients = 8
		spec.CheckpointPath = path
		st := qstats.NewStore()
		spec.QueueStats = st
		return spec, st
	}
	dir := t.TempDir()

	// Reference: uninterrupted campaign.
	specA, stA := specFor(filepath.Join(dir, "ckA.json"))
	fsA := &fakeObserved{}
	if _, err := (&Runner{Spec: specA, QStatsFunc: fsA.run}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Kill after three successful points.
	pathB := filepath.Join(dir, "ckB.json")
	specB, _ := specFor(pathB)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &recorder{onFinished: func(successes int) {
		if successes == 3 {
			cancel()
		}
	}}
	specB.Observer = obs
	fsB := &fakeObserved{delay: 2 * time.Millisecond}
	if _, err := (&Runner{Spec: specB, QStatsFunc: fsB.run}).Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	killed := len(obs.successes())
	if killed < 3 || killed >= total {
		t.Fatalf("kill finished %d of %d points — cancellation did not interrupt", killed, total)
	}

	// Resume against the same checkpoint with a fresh store.
	specC, stC := specFor(pathB)
	specC.Resume = true
	fsC := &fakeObserved{}
	res, err := (&Runner{Spec: specC, QStatsFunc: fsC.run}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PointsResumed != killed {
		t.Fatalf("resumed %d points, checkpoint held %d", res.Summary.PointsResumed, killed)
	}
	if fsC.runs != total-killed {
		t.Fatalf("resume executed %d runs, want the %d incomplete points", fsC.runs, total-killed)
	}

	// Per-point reports — restored ones included — must match exactly.
	keysA, keysC := stA.Keys(), stC.Keys()
	sort.Strings(keysA)
	sort.Strings(keysC)
	if !reflect.DeepEqual(keysA, keysC) {
		t.Fatalf("queue-stats store keys differ:\n%v\n%v", keysA, keysC)
	}
	if len(keysA) != total {
		t.Fatalf("store holds %d reports, want %d", len(keysA), total)
	}
	for _, k := range keysA {
		ra, rc := stA.Get(k), stC.Get(k)
		if !reflect.DeepEqual(ra, rc) {
			t.Errorf("report %q differs after kill/resume:\nuninterrupted %+v\nresumed       %+v", k, ra, rc)
		}
		if ra.Meta.Label != k {
			t.Errorf("report %q labeled %q, want the point name", k, ra.Meta.Label)
		}
		if ra.Bottleneck != "disk" {
			t.Errorf("report %q bottleneck %q, want disk", k, ra.Bottleneck)
		}
	}
}
