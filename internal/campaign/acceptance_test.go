package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"odbscale/internal/system"
)

// acceptanceSpec is the paper's full campaign — the standard warehouse
// axis times {1, 2, 4} processors with the ≥90% client tuner — shrunk to
// unit-test transaction counts.
func acceptanceSpec(path string) Spec {
	tun := system.DefaultTuning()
	tun.PrefillSampleTxns = 250
	return Spec{
		Machine:        system.XeonQuad(),
		Tuning:         tun,
		Seed:           1,
		WarmupTxns:     30,
		MeasureTxns:    60,
		TuneTxns:       40,
		TargetUtil:     0.90,
		MinClients:     8,
		MaxClients:     64,
		AutoTune:       true,
		WarmStart:      true,
		Parallelism:    2,
		Warehouses:     []int{10, 25, 50, 100, 150, 200, 300, 400, 500, 650, 800},
		Processors:     []int{1, 2, 4},
		CheckpointPath: path,
	}
}

// TestFullCampaignFewerRunsAndResume is the acceptance check for the
// campaign runner, on the real simulator:
//
//  1. A full StandardWarehouses × {1,2,4} auto-tuned campaign is killed
//     partway (context cancellation after six completed points), then
//     re-run with Resume. The resumed run must restore exactly the
//     checkpointed points, execute only the incomplete ones, and never
//     re-simulate a recorded tuner probe.
//  2. The campaign (interrupted + resumed, so every executed run is
//     counted) must perform strictly fewer simulator runs than the seed
//     path — the same sweep with the legacy cold-start search that
//     CollectSweeps used before the campaign runner (WarmStart off).
//
// Both counts come from the observer's event stream.
func TestFullCampaignFewerRunsAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	total := 11 * 3

	// Phase A: kill the campaign after six completed points.
	specA := acceptanceSpec(path)
	recA := &recorder{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	recA.onFinished = func(successes int) {
		if successes == 6 {
			cancel()
		}
	}
	specA.Observer = recA
	if _, err := Run(ctx, specA); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed campaign returned %v, want context.Canceled", err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("checkpoint unreadable after the kill: %v", err)
	}
	done := recA.successes()
	if len(cp.Points) != len(done) || len(done) >= total {
		t.Fatalf("checkpoint holds %d points, observer saw %d successes of %d total",
			len(cp.Points), len(done), total)
	}
	runsA := recA.summaries[0].Runs

	// Phase B: resume and finish. Only the complement may execute.
	specB := acceptanceSpec(path)
	specB.Resume = true
	recB := &recorder{}
	specB.Observer = recB
	res, err := Run(context.Background(), specB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != total {
		t.Fatalf("resumed campaign finished %d points, want %d", len(res.Points), total)
	}
	resumed := recB.resumed()
	if len(resumed) != len(done) {
		t.Fatalf("resume restored %d points, checkpoint held %d", len(resumed), len(done))
	}
	for k := range resumed {
		if !done[k] {
			t.Fatalf("resume restored %+v, which phase A never completed", k)
		}
	}
	for k := range recB.successes() {
		if done[k] {
			t.Fatalf("resume re-executed completed point %+v", k)
		}
	}
	if res.Summary.PointsResumed != len(done) {
		t.Fatalf("summary resumed %d points, want %d", res.Summary.PointsResumed, len(done))
	}
	pA, pB := recA.executedProbes(), recB.executedProbes()
	for k := range pB {
		if pA[k] {
			t.Fatalf("tuner probe %+v simulated in both phases despite the checkpoint memo", k)
		}
	}
	for _, p := range specB.Processors {
		if s := res.Series(p); len(s) != len(specB.Warehouses) {
			t.Fatalf("Series(%d) has %d points, want %d", p, len(s), len(specB.Warehouses))
		}
	}
	runsB := res.Summary.Runs

	// The observer's own accounting must agree with the summary.
	recB.mu.Lock()
	obsRuns := 0
	for _, f := range recB.finished {
		if !f.Resumed {
			obsRuns++
		}
	}
	for _, p := range recB.probes {
		if !p.Cached {
			obsRuns++
		}
	}
	recB.mu.Unlock()
	if obsRuns != runsB {
		t.Fatalf("observer counted %d runs, summary says %d", obsRuns, runsB)
	}

	// Phase C: the seed path — the identical sweep through the legacy
	// cold-start search (every point's tuner climbs from MinClients, no
	// cross-point warm start), as CollectSweeps ran it before the
	// campaign runner existed.
	specC := acceptanceSpec(filepath.Join(t.TempDir(), "seed.json"))
	specC.WarmStart = false
	recC := &recorder{}
	specC.Observer = recC
	resC, err := Run(context.Background(), specC)
	if err != nil {
		t.Fatal(err)
	}
	seedRuns := resC.Summary.Runs

	newRuns := runsA + runsB // every simulator run the campaign executed, kill included
	t.Logf("campaign runs: %d (killed: %d + resumed: %d); seed path runs: %d",
		newRuns, runsA, runsB, seedRuns)
	if newRuns >= seedRuns {
		t.Fatalf("campaign executed %d runs, seed path %d — want strictly fewer", newRuns, seedRuns)
	}

	// Same experiment, same answers: the warm-started campaign must land
	// on the same measurements wherever it tuned to the same count.
	for k, m := range resC.Points {
		got, ok := res.Points[k]
		if !ok {
			t.Fatalf("campaign missing point %+v", k)
		}
		if got.Clients == m.Clients && got.TPS != m.TPS {
			t.Fatalf("point %+v: same clients (%d) but TPS %v vs %v — determinism broken",
				k, got.Clients, got.TPS, m.TPS)
		}
	}
}
