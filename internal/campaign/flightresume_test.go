package campaign

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"odbscale/internal/odb"
	"odbscale/internal/profile"
	"odbscale/internal/system"
	"odbscale/internal/telemetry"
)

// fakeProfiled emulates a profiled measurement run: per-point flight
// data (latency spans and a cycle-attribution profile) derived only
// from the configuration, so two campaigns covering the same points
// must converge on identical merged data regardless of interruption.
type fakeProfiled struct {
	mu    sync.Mutex
	delay time.Duration
	runs  int
}

func (f *fakeProfiled) run(ctx context.Context, cfg system.Config, rec *telemetry.Recorder, col *profile.Collector) (system.Metrics, error) {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return system.Metrics{}, ctx.Err()
		}
	} else if err := ctx.Err(); err != nil {
		return system.Metrics{}, err
	}
	f.mu.Lock()
	f.runs++
	f.mu.Unlock()
	w := cfg.Warehouses
	if rec != nil {
		for i := 0; i < 10; i++ {
			rec.ObserveSpan("NewOrder", uint64(w*100+i*7))
			rec.ObserveSpan("Payment", uint64(w*50+i*3))
		}
	}
	if col != nil {
		col.SetMeta(profile.Meta{Warehouses: w, Clients: cfg.Clients, Processors: cfg.Processors, Scale: 1})
		col.AddChunk(profile.User,
			[]profile.Share{
				{Kind: profile.KindOf(odb.NewOrder), Phase: odb.PhaseBTree, Instr: uint64(w) * 1000},
				{Kind: profile.KindOf(odb.Payment), Phase: odb.PhaseBuffer, Instr: 500},
			},
			uint64(w)*1000+500, float64(w)*2500.25, profile.Events{L3Miss: uint64(w), BusLatency: float64(w) * 3})
		col.AddChunk(profile.OS,
			[]profile.Share{{Kind: profile.KindKernel, Phase: odb.PhaseSched, Instr: 200}},
			200, 900, profile.Events{Mispred: 4})
		col.Finalize(float64(w)/10, 10)
	}
	return system.Metrics{
		Warehouses: w, Clients: cfg.Clients, Processors: cfg.Processors,
		Txns: uint64(cfg.MeasureTxns),
	}, nil
}

// TestFlightKillResumeMergesIdentically is the flight observer's
// crash-consistency guarantee: a campaign killed mid-flight and resumed
// with fresh recorder and profile store must converge on exactly the
// merged histograms and per-point profiles of an uninterrupted run —
// completed points come back from the checkpoint, not from re-runs.
func TestFlightKillResumeMergesIdentically(t *testing.T) {
	total := len(testWarehouses) * len(testProcessors)
	specFor := func(path string) (Spec, *telemetry.CampaignRecorder, *profile.Store) {
		spec := testSpec()
		spec.AutoTune = false
		spec.Clients = 8
		spec.CheckpointPath = path
		fl := telemetry.NewCampaignRecorder(telemetry.Config{})
		spec.Flight = fl
		st := profile.NewStore()
		spec.Profiles = st
		return spec, fl, st
	}
	dir := t.TempDir()

	// Reference: uninterrupted campaign.
	specA, flA, stA := specFor(filepath.Join(dir, "ckA.json"))
	fpA := &fakeProfiled{}
	if _, err := (&Runner{Spec: specA, ProfiledFunc: fpA.run}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Kill after three successful points.
	pathB := filepath.Join(dir, "ckB.json")
	specB, _, _ := specFor(pathB)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &recorder{onFinished: func(successes int) {
		if successes == 3 {
			cancel()
		}
	}}
	specB.Observer = obs
	fpB := &fakeProfiled{delay: 2 * time.Millisecond}
	if _, err := (&Runner{Spec: specB, ProfiledFunc: fpB.run}).Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	killed := len(obs.successes())
	if killed < 3 || killed >= total {
		t.Fatalf("kill finished %d of %d points — cancellation did not interrupt", killed, total)
	}

	// Resume against the same checkpoint with a fresh recorder and store.
	specC, flC, stC := specFor(pathB)
	specC.Resume = true
	fpC := &fakeProfiled{}
	res, err := (&Runner{Spec: specC, ProfiledFunc: fpC.run}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PointsResumed != killed {
		t.Fatalf("resumed %d points, checkpoint held %d", res.Summary.PointsResumed, killed)
	}
	if fpC.runs != total-killed {
		t.Fatalf("resume executed %d runs, want the %d incomplete points", fpC.runs, total-killed)
	}

	// The flight observer's progress must account for every point.
	prog := flC.Progress()
	if prog.PointsDone != total || prog.PointsResumed != killed || !prog.Done {
		t.Errorf("progress = %+v, want done=%d resumed=%d", prog, total, killed)
	}

	// Merged latency histograms must be bit-identical to the
	// uninterrupted campaign's.
	ha, hc := flA.MergedHistograms(), flC.MergedHistograms()
	if len(ha) == 0 || len(ha) != len(hc) {
		t.Fatalf("histogram sets differ: %d vs %d", len(ha), len(hc))
	}
	for name, h := range ha {
		other := hc[name]
		if other == nil || !bytes.Equal(h.Encode(), other.Encode()) {
			t.Errorf("histogram %q differs after kill/resume", name)
		}
	}

	// Per-point profiles — restored ones included — must match exactly.
	keysA, keysC := stA.Keys(), stC.Keys()
	sort.Strings(keysA)
	sort.Strings(keysC)
	if !reflect.DeepEqual(keysA, keysC) {
		t.Fatalf("profile keys differ:\n%v\n%v", keysA, keysC)
	}
	if len(keysA) != total {
		t.Fatalf("store holds %d profiles, want %d", len(keysA), total)
	}
	for _, k := range keysA {
		pa, pc := stA.Get(k), stC.Get(k)
		if !reflect.DeepEqual(pa.Meta, pc.Meta) || !reflect.DeepEqual(pa.Frames, pc.Frames) {
			t.Errorf("profile %q differs after kill/resume:\n%+v\n%+v", k, pa, pc)
		}
	}
}
