package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"odbscale/internal/system"
)

// Point identifies one measurement configuration of a campaign.
type Point struct {
	Warehouses int
	Processors int
	Clients    int
}

// PointResult is delivered when a measurement point finishes or is
// restored from the checkpoint.
type PointResult struct {
	Point
	Metrics system.Metrics
	Elapsed time.Duration // wall time of the simulation run; zero when resumed
	Resumed bool          // restored from the checkpoint, not re-simulated
	Err     error
}

// Probe is one client-tuner utilization measurement.
type Probe struct {
	Warehouses int
	Processors int
	Clients    int
	Util       float64
	Elapsed    time.Duration
	Cached     bool // served from the probe memo or checkpoint without a run
}

// Summary closes a campaign.
type Summary struct {
	Points        int           `json:"points"`         // points finished, including resumed ones
	PointsResumed int           `json:"points_resumed"` //
	Probes        int           `json:"probes"`         // tuner probes, including cached ones
	ProbesCached  int           `json:"probes_cached"`  //
	Runs          int           `json:"runs"`           // simulator runs actually executed
	Elapsed       time.Duration `json:"elapsed_ns"`     //
	Err           error         `json:"-"`              // first failure, nil on success
}

// Observer receives campaign progress events. The runner serializes all
// calls on a single mutex, so implementations need no locking; they
// should also return quickly, since they run on the measurement path.
type Observer interface {
	// PointStarted fires when a point's measurement run is submitted to
	// the worker pool (after tuning, if any).
	PointStarted(Point)
	// PointFinished fires when a point's metrics are available — from a
	// completed run, or from the checkpoint on resume.
	PointFinished(PointResult)
	// TunerProbe fires for every utilization probe the client tuner
	// consults, whether simulated or served from the memo.
	TunerProbe(Probe)
	// CampaignDone fires exactly once, after the last event.
	CampaignDone(Summary)
}

// noop is the Observer used when the spec leaves Observer nil.
type noop struct{}

func (noop) PointStarted(Point)        {}
func (noop) PointFinished(PointResult) {}
func (noop) TunerProbe(Probe)          {}
func (noop) CampaignDone(Summary)      {}

// multi fans events out to several observers in order.
type multi []Observer

// Observers combines observers into one that delivers every event to
// each, in argument order. Nil entries are skipped.
func Observers(obs ...Observer) Observer {
	var m multi
	for _, o := range obs {
		if o != nil {
			m = append(m, o)
		}
	}
	return m
}

func (m multi) PointStarted(p Point) {
	for _, o := range m {
		o.PointStarted(p)
	}
}
func (m multi) PointFinished(p PointResult) {
	for _, o := range m {
		o.PointFinished(p)
	}
}
func (m multi) TunerProbe(p Probe) {
	for _, o := range m {
		o.TunerProbe(p)
	}
}
func (m multi) CampaignDone(s Summary) {
	for _, o := range m {
		o.CampaignDone(s)
	}
}

// progress renders a single live status line, suitable for stderr.
type progress struct {
	w     io.Writer
	total int
	done  int
	runs  int
	width int
}

// NewProgress returns an observer that keeps one carriage-return
// updated status line on w showing points finished out of totalPoints,
// runs executed, and the latest activity. CampaignDone replaces the
// line with a final summary and a newline.
func NewProgress(w io.Writer, totalPoints int) Observer {
	return &progress{w: w, total: totalPoints}
}

func (pr *progress) line(activity string) {
	s := fmt.Sprintf("campaign %d/%d points · %d runs · %s", pr.done, pr.total, pr.runs, activity)
	if pad := pr.width - len(s); pad > 0 {
		s += fmt.Sprintf("%*s", pad, "")
	}
	pr.width = len(s)
	fmt.Fprintf(pr.w, "\r%s", s)
}

func (pr *progress) PointStarted(p Point) {
	pr.line(fmt.Sprintf("measuring W=%d P=%d c=%d", p.Warehouses, p.Processors, p.Clients))
}

func (pr *progress) PointFinished(p PointResult) {
	pr.done++
	switch {
	case p.Err != nil:
		pr.runs++
		pr.line(fmt.Sprintf("W=%d P=%d failed: %v", p.Warehouses, p.Processors, p.Err))
	case p.Resumed:
		pr.line(fmt.Sprintf("W=%d P=%d resumed from checkpoint", p.Warehouses, p.Processors))
	default:
		pr.runs++
		pr.line(fmt.Sprintf("W=%d P=%d c=%d util=%.2f tps=%.0f (%.1fs)",
			p.Warehouses, p.Processors, p.Clients, p.Metrics.CPUUtil, p.Metrics.TPS,
			p.Elapsed.Seconds()))
	}
}

func (pr *progress) TunerProbe(p Probe) {
	if !p.Cached {
		pr.runs++
	}
	pr.line(fmt.Sprintf("tuning W=%d P=%d: c=%d util=%.2f", p.Warehouses, p.Processors, p.Clients, p.Util))
}

func (pr *progress) CampaignDone(s Summary) {
	status := "done"
	if s.Err != nil {
		status = fmt.Sprintf("stopped: %v", s.Err)
	}
	pr.line(fmt.Sprintf("%s in %.1fs · %d probes (%d cached) · %d resumed",
		status, s.Elapsed.Seconds(), s.Probes, s.ProbesCached, s.PointsResumed))
	fmt.Fprintln(pr.w)
}

// eventLog writes one JSON object per event — a machine-readable
// campaign journal.
type eventLog struct {
	enc *json.Encoder
}

// logRecord is the wire format of the event log.
type logRecord struct {
	Event      string          `json:"event"`
	Warehouses int             `json:"w,omitempty"`
	Processors int             `json:"p,omitempty"`
	Clients    int             `json:"c,omitempty"`
	Util       *float64        `json:"util,omitempty"`
	ElapsedMS  float64         `json:"elapsed_ms,omitempty"`
	Cached     bool            `json:"cached,omitempty"`
	Resumed    bool            `json:"resumed,omitempty"`
	Err        string          `json:"err,omitempty"`
	Metrics    *system.Metrics `json:"metrics,omitempty"`
	Summary    *Summary        `json:"summary,omitempty"`
}

// NewEventLog returns an observer that appends one JSON line per event
// to w: point_started, point_finished (with full metrics), tuner_probe
// and campaign_done records.
func NewEventLog(w io.Writer) Observer {
	return &eventLog{enc: json.NewEncoder(w)}
}

func (l *eventLog) PointStarted(p Point) {
	l.enc.Encode(logRecord{Event: "point_started",
		Warehouses: p.Warehouses, Processors: p.Processors, Clients: p.Clients})
}

func (l *eventLog) PointFinished(p PointResult) {
	rec := logRecord{Event: "point_finished",
		Warehouses: p.Warehouses, Processors: p.Processors, Clients: p.Clients,
		ElapsedMS: float64(p.Elapsed) / float64(time.Millisecond), Resumed: p.Resumed}
	if p.Err != nil {
		rec.Err = p.Err.Error()
	} else {
		m := p.Metrics
		rec.Metrics = &m
		util := m.CPUUtil
		rec.Util = &util
	}
	l.enc.Encode(rec)
}

func (l *eventLog) TunerProbe(p Probe) {
	util := p.Util
	l.enc.Encode(logRecord{Event: "tuner_probe",
		Warehouses: p.Warehouses, Processors: p.Processors, Clients: p.Clients,
		Util: &util, ElapsedMS: float64(p.Elapsed) / float64(time.Millisecond), Cached: p.Cached})
}

func (l *eventLog) CampaignDone(s Summary) {
	rec := logRecord{Event: "campaign_done", Summary: &s}
	if s.Err != nil {
		rec.Err = s.Err.Error()
	}
	l.enc.Encode(rec)
}
