package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"odbscale/internal/odb"
	"odbscale/internal/profile"
	"odbscale/internal/sim"
	"odbscale/internal/system"
	"odbscale/internal/telemetry"
	"odbscale/internal/txtrace"
)

// fakeSpanned emulates a span-traced measurement run: a deterministic
// set of transaction traces derived only from the configuration, so two
// campaigns covering the same points converge on identical per-point
// dumps regardless of interruption.
type fakeSpanned struct {
	mu    sync.Mutex
	delay time.Duration
	runs  int
}

func (f *fakeSpanned) run(ctx context.Context, cfg system.Config, rec *telemetry.Recorder,
	col *profile.Collector, tr *txtrace.Tracer) (system.Metrics, error) {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return system.Metrics{}, ctx.Err()
		}
	} else if err := ctx.Err(); err != nil {
		return system.Metrics{}, err
	}
	f.mu.Lock()
	f.runs++
	f.mu.Unlock()
	w := cfg.Warehouses
	if tr != nil {
		tr.SetMeta(txtrace.Meta{Warehouses: w, Clients: cfg.Clients, Processors: cfg.Processors,
			Seed: cfg.Seed, FreqHz: cfg.Machine.FreqHz})
		ps := tr.NewProcState(0)
		for i := 0; i < 10; i++ {
			start := sim.Time(i * 10000)
			lat := sim.Time(w*100 + i*37)
			ps.Begin(odb.NewOrder, start)
			ps.AddInstr(odb.PhaseBTree, uint64(w))
			ps.EndChunk(start, lat, uint64(w))
			tr.End(ps, start+lat, true)
		}
	}
	return system.Metrics{
		Warehouses: w, Clients: cfg.Clients, Processors: cfg.Processors,
		Txns: uint64(cfg.MeasureTxns),
	}, nil
}

// TestSpansKillResumeRestoresDumps is the span store's crash-consistency
// guarantee: a campaign killed mid-flight and resumed with a fresh span
// store must converge on exactly the per-point trace dumps of an
// uninterrupted campaign — completed points come back from the
// checkpoint, not from re-runs.
func TestSpansKillResumeRestoresDumps(t *testing.T) {
	total := len(testWarehouses) * len(testProcessors)
	specFor := func(path string) (Spec, *txtrace.Store) {
		spec := testSpec()
		spec.AutoTune = false
		spec.Clients = 8
		spec.CheckpointPath = path
		st := txtrace.NewStore(txtrace.Config{HeadEvery: 2, TailK: 2})
		spec.Spans = st
		return spec, st
	}
	dir := t.TempDir()

	// Reference: uninterrupted campaign.
	specA, stA := specFor(filepath.Join(dir, "ckA.json"))
	fsA := &fakeSpanned{}
	if _, err := (&Runner{Spec: specA, SpannedFunc: fsA.run}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Kill after three successful points.
	pathB := filepath.Join(dir, "ckB.json")
	specB, _ := specFor(pathB)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &recorder{onFinished: func(successes int) {
		if successes == 3 {
			cancel()
		}
	}}
	specB.Observer = obs
	fsB := &fakeSpanned{delay: 2 * time.Millisecond}
	if _, err := (&Runner{Spec: specB, SpannedFunc: fsB.run}).Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	killed := len(obs.successes())
	if killed < 3 || killed >= total {
		t.Fatalf("kill finished %d of %d points — cancellation did not interrupt", killed, total)
	}

	// Resume against the same checkpoint with a fresh store.
	specC, stC := specFor(pathB)
	specC.Resume = true
	fsC := &fakeSpanned{}
	res, err := (&Runner{Spec: specC, SpannedFunc: fsC.run}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PointsResumed != killed {
		t.Fatalf("resumed %d points, checkpoint held %d", res.Summary.PointsResumed, killed)
	}
	if fsC.runs != total-killed {
		t.Fatalf("resume executed %d runs, want the %d incomplete points", fsC.runs, total-killed)
	}

	// Per-point dumps — restored ones included — must match exactly.
	keysA, keysC := stA.Keys(), stC.Keys()
	sort.Strings(keysA)
	sort.Strings(keysC)
	if !reflect.DeepEqual(keysA, keysC) {
		t.Fatalf("span store keys differ:\n%v\n%v", keysA, keysC)
	}
	if len(keysA) != total {
		t.Fatalf("store holds %d dumps, want %d", len(keysA), total)
	}
	for _, k := range keysA {
		da, dc := stA.Get(k), stC.Get(k)
		if !reflect.DeepEqual(da, dc) {
			t.Errorf("dump %q differs after kill/resume:\nuninterrupted %+v\nresumed       %+v", k, da, dc)
		}
		if da.Meta.Label != k {
			t.Errorf("dump %q labeled %q, want the point name", k, da.Meta.Label)
		}
		if len(da.Traces) == 0 {
			t.Errorf("dump %q retained no traces", k)
		}
	}
}
