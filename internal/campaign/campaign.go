// Package campaign schedules measurement campaigns — the warehouse ×
// processor sweeps with per-point ≥90%-utilization client tuning behind
// the paper's Table 1 and Figures 2-16 — as one context-aware run.
//
// A single bounded worker pool executes every simulator run in the
// campaign: the measurement points of all sweeps and the client tuner's
// utilization probes. Tuning for one processor configuration walks the
// warehouse axis in order, warm-starting each search at the previous
// point's tuned count and memoizing every probe, while finished points
// measure concurrently. Completed work persists to a JSON checkpoint,
// so an interrupted campaign resumes where it left off, and a pluggable
// Observer streams progress events (PointStarted, PointFinished,
// TunerProbe, CampaignDone) for live CLIs and machine-readable logs.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"odbscale/internal/clock"
	"odbscale/internal/profile"
	"odbscale/internal/qstats"
	"odbscale/internal/system"
	"odbscale/internal/telemetry"
	"odbscale/internal/txtrace"
)

// Spec describes one campaign: the platform and measurement lengths,
// the client-tuning policy, the sweep axes, and the operational knobs
// (parallelism, checkpointing, observation).
type Spec struct {
	Machine system.MachineConfig
	Tuning  system.Tuning
	Seed    int64

	// Engine names the storage engine every run executes on (see
	// internal/engine's registry); empty means the default B-tree.
	Engine string

	WarmupTxns  int
	MeasureTxns int
	// TuneTxns is the (shorter) measurement length of tuner probes.
	TuneTxns int

	// TargetUtil is the CPU utilization the client tuner must reach
	// (the paper keeps every configuration above 90%).
	TargetUtil float64
	MinClients int
	MaxClients int

	// AutoTune enables the client tuner; otherwise HeuristicClients
	// picks each point's client count.
	AutoTune bool
	// Clients, when positive, pins every point to a fixed client count,
	// overriding both the tuner and the heuristic.
	Clients int
	// WarmStart floors each point's tuner search at the tuned count of
	// the preceding smaller-warehouse point on the same processor lane —
	// the paper's Table 1 trend (tuned clients never shrink as
	// warehouses grow) made algorithmic. A plateau point then costs two
	// confirming probes instead of a full exponential climb from
	// MinClients. Disable it to reproduce the exact legacy search.
	WarmStart bool

	// Parallelism bounds concurrent simulator runs (0 = GOMAXPROCS).
	Parallelism int

	// Warehouses and Processors are the sweep axes; every (W, P) pair is
	// one measurement point. Warehouses should ascend when WarmStart is
	// on (the floor only carries forward to larger warehouse counts).
	Warehouses []int
	Processors []int

	// CheckpointPath, when set, persists completed points and probes
	// after each run; "" disables checkpointing.
	CheckpointPath string
	// Resume loads CheckpointPath (if it exists) and skips every point
	// already completed, re-using recorded tuner probes. Requires a
	// CheckpointPath; a missing file starts a fresh campaign.
	Resume bool

	// Observer receives progress events; nil means none.
	Observer Observer

	// Flight, when set, turns on the flight recorder: every measurement
	// run executes under system.Run with WithRecorder feeding a per-run telemetry
	// recorder, finished runs merge their latency histograms and retain
	// their timelines in Flight, and a flight observer keeps Flight's
	// campaign progress current for the live HTTP endpoints. When a
	// CheckpointPath is set, a run manifest is written next to it at
	// campaign start and again at completion.
	Flight *telemetry.CampaignRecorder

	// Profiles, when set, turns on the cycle-attribution profiler: every
	// measurement run executes under system.Run with WithProfiler and a fresh
	// collector (alongside the flight recorder when Flight is also set),
	// and each finished point's profile lands in Profiles under its
	// telemetry.PointName key. With a CheckpointPath the profile — and
	// the run's latency histograms — persist in the checkpoint, so a
	// resumed campaign restores them instead of losing them.
	Profiles *profile.Store

	// Spans, when set, turns on the per-transaction span tracer: every
	// measurement run executes under system.Run with WithSpans and a
	// fresh tracer built from the store's sampling configuration
	// (alongside the flight recorder and profiler when those are also
	// set), and each finished point's trace dump lands in Spans under
	// its telemetry.PointName key. With a CheckpointPath the dump
	// persists in the checkpoint and survives resume.
	Spans *txtrace.Store

	// QueueStats, when set, turns on the queueing observatory: every
	// measurement run executes under system.Run with WithQueueStats and
	// a fresh collector (alongside the other observers when set), and
	// each finished point's station report lands in QueueStats under its
	// telemetry.PointName key. With a CheckpointPath the report persists
	// in the checkpoint and survives resume.
	QueueStats *qstats.Store
}

// fingerprint reduces the spec to its run-defining parameters.
func (s *Spec) fingerprint() Fingerprint {
	return Fingerprint{
		Machine:     s.Machine.Name,
		Engine:      s.Engine,
		Seed:        s.Seed,
		WarmupTxns:  s.WarmupTxns,
		MeasureTxns: s.MeasureTxns,
		TuneTxns:    s.TuneTxns,
		TargetUtil:  s.TargetUtil,
		MinClients:  s.MinClients,
		MaxClients:  s.MaxClients,
		AutoTune:    s.AutoTune,
		Clients:     s.Clients,
	}
}

func (s *Spec) validate() error {
	if len(s.Warehouses) == 0 || len(s.Processors) == 0 {
		return fmt.Errorf("campaign: empty sweep axes (W=%v, P=%v)", s.Warehouses, s.Processors)
	}
	if s.MeasureTxns < 1 {
		return fmt.Errorf("campaign: %w", system.ErrNoTxns)
	}
	if s.AutoTune {
		if s.TuneTxns < 1 {
			return fmt.Errorf("campaign: AutoTune requires positive TuneTxns")
		}
		if s.MinClients < 1 || s.MaxClients < s.MinClients {
			return fmt.Errorf("campaign: bad client range [%d, %d]", s.MinClients, s.MaxClients)
		}
	}
	return nil
}

// config assembles the simulator configuration of one run.
func (s *Spec) config(w, c, p, txns int) system.Config {
	return system.Config{
		Warehouses:  w,
		Clients:     c,
		Processors:  p,
		Seed:        s.Seed,
		Engine:      s.Engine,
		Machine:     s.Machine,
		Tuning:      s.Tuning,
		Coherent:    true,
		WarmupTxns:  s.WarmupTxns,
		MeasureTxns: txns,
	}
}

// PointKey addresses one (warehouses, processors) measurement point.
type PointKey struct {
	W, P int
}

// Result holds a completed campaign.
type Result struct {
	Warehouses []int
	Processors []int
	Points     map[PointKey]system.Metrics
	Summary    Summary
}

// Metrics returns one point's measurement.
func (r *Result) Metrics(w, p int) (system.Metrics, bool) {
	m, ok := r.Points[PointKey{W: w, P: p}]
	return m, ok
}

// Series returns the metrics of one processor configuration in
// warehouse-axis order.
func (r *Result) Series(p int) []system.Metrics {
	out := make([]system.Metrics, 0, len(r.Warehouses))
	for _, w := range r.Warehouses {
		if m, ok := r.Points[PointKey{W: w, P: p}]; ok {
			out = append(out, m)
		}
	}
	return out
}

// RunFunc is the simulator entry point a Runner drives.
type RunFunc func(ctx context.Context, cfg system.Config) (system.Metrics, error)

// The default entry points all route through the one system.Run API,
// differing only in which observers they attach.
func defaultRun(ctx context.Context, cfg system.Config) (system.Metrics, error) {
	return system.Run(ctx, cfg)
}

func defaultFlightRun(ctx context.Context, cfg system.Config, rec *telemetry.Recorder) (system.Metrics, error) {
	return system.Run(ctx, cfg, system.WithRecorder(rec))
}

func defaultProfiledRun(ctx context.Context, cfg system.Config, rec *telemetry.Recorder, col *profile.Collector) (system.Metrics, error) {
	return system.Run(ctx, cfg, system.WithRecorder(rec), system.WithProfiler(col))
}

func defaultSpannedRun(ctx context.Context, cfg system.Config, rec *telemetry.Recorder,
	col *profile.Collector, tr *txtrace.Tracer) (system.Metrics, error) {
	opts := make([]system.Option, 0, 3)
	if rec != nil {
		opts = append(opts, system.WithRecorder(rec))
	}
	if col != nil {
		opts = append(opts, system.WithProfiler(col))
	}
	opts = append(opts, system.WithSpans(tr))
	return system.Run(ctx, cfg, opts...)
}

func defaultObservedRun(ctx context.Context, cfg system.Config, rec *telemetry.Recorder,
	col *profile.Collector, tr *txtrace.Tracer, qc *qstats.Collector) (system.Metrics, error) {
	opts := make([]system.Option, 0, 4)
	if rec != nil {
		opts = append(opts, system.WithRecorder(rec))
	}
	if col != nil {
		opts = append(opts, system.WithProfiler(col))
	}
	if tr != nil {
		opts = append(opts, system.WithSpans(tr))
	}
	opts = append(opts, system.WithQueueStats(qc))
	return system.Run(ctx, cfg, opts...)
}

// Runner executes campaigns. The zero value with a Spec is ready to
// use; RunFunc may be overridden to interpose on simulator runs (tests,
// caching layers).
type Runner struct {
	Spec    Spec
	RunFunc RunFunc // nil means system.Run

	// FlightFunc is the recorded-run entry point used for measurement
	// runs when Spec.Flight is set; nil means system.Run with
	// WithRecorder. Tests
	// interpose on it like RunFunc.
	FlightFunc func(ctx context.Context, cfg system.Config, rec *telemetry.Recorder) (system.Metrics, error)

	// ProfiledFunc is the profiled-run entry point used for measurement
	// runs when Spec.Profiles is set; nil means system.Run with
	// WithRecorder and WithProfiler. The
	// recorder argument is nil unless Spec.Flight is also set.
	ProfiledFunc func(ctx context.Context, cfg system.Config, rec *telemetry.Recorder, col *profile.Collector) (system.Metrics, error)

	// SpannedFunc is the span-traced entry point used for measurement
	// runs when Spec.Spans is set; nil means system.Run with WithSpans
	// (plus WithRecorder / WithProfiler for the non-nil observers). The
	// recorder is nil unless Spec.Flight is also set, the collector nil
	// unless Spec.Profiles is.
	SpannedFunc func(ctx context.Context, cfg system.Config, rec *telemetry.Recorder, col *profile.Collector, tr *txtrace.Tracer) (system.Metrics, error)

	// QStatsFunc is the observatory entry point used for measurement
	// runs when Spec.QueueStats is set; nil means system.Run with
	// WithQueueStats (plus WithRecorder / WithProfiler / WithSpans for
	// the non-nil observers). The recorder, collector and tracer are nil
	// unless Spec.Flight / Spec.Profiles / Spec.Spans are.
	QStatsFunc func(ctx context.Context, cfg system.Config, rec *telemetry.Recorder, col *profile.Collector, tr *txtrace.Tracer, qc *qstats.Collector) (system.Metrics, error)

	// Clock supplies the wall time behind the Elapsed fields of
	// progress events; nil means the real clock. Simulated results
	// never depend on it — the determinism lint rule keeps time.Now
	// out of this package, so observability timing must flow through
	// this injectable funnel.
	Clock clock.Clock
}

// clock resolves the runner's wall-clock source.
func (r *Runner) clock() clock.Clock {
	if r.Clock != nil {
		return r.Clock
	}
	return clock.Wall()
}

// Run executes the campaign described by spec. It is shorthand for
// (&Runner{Spec: spec}).Run(ctx).
func Run(ctx context.Context, spec Spec) (*Result, error) {
	return (&Runner{Spec: spec}).Run(ctx)
}

// pool bounds concurrent simulator runs.
type pool struct {
	sem chan struct{}
}

func newPool(parallelism int) *pool {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &pool{sem: make(chan struct{}, parallelism)}
}

// do executes fn inside the pool, honouring ctx while waiting for a
// slot and during the run itself.
func (pl *pool) do(ctx context.Context, fn func(context.Context) (system.Metrics, error)) (system.Metrics, error) {
	select {
	case pl.sem <- struct{}{}:
		defer func() { <-pl.sem }()
	case <-ctx.Done():
		return system.Metrics{}, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return system.Metrics{}, err
	}
	return fn(ctx)
}

// run executes one configuration inside the pool.
func (pl *pool) run(ctx context.Context, fn RunFunc, cfg system.Config) (system.Metrics, error) {
	return pl.do(ctx, func(ctx context.Context) (system.Metrics, error) { return fn(ctx, cfg) })
}

// emitter serializes observer delivery and keeps the summary counters.
type emitter struct {
	mu  sync.Mutex
	obs Observer
	sum Summary
}

func (e *emitter) pointStarted(p Point) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.obs.PointStarted(p)
}

func (e *emitter) pointFinished(p PointResult) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sum.Points++
	if p.Resumed {
		e.sum.PointsResumed++
	} else {
		e.sum.Runs++
	}
	e.obs.PointFinished(p)
}

func (e *emitter) tunerProbe(p Probe) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sum.Probes++
	if p.Cached {
		e.sum.ProbesCached++
	} else {
		e.sum.Runs++
	}
	e.obs.TunerProbe(p)
}

func (e *emitter) done(elapsed time.Duration, err error) Summary {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sum.Elapsed = elapsed
	e.sum.Err = err
	e.obs.CampaignDone(e.sum)
	return e.sum
}

// Run executes the campaign: every processor configuration tunes its
// warehouse points in axis order (probes flowing through the shared
// pool), and each point's measurement run is scheduled on the pool as
// soon as its client count is known. The first failure — including a
// context cancellation — stops scheduling, cancels in-flight waits, and
// is returned after in-flight runs drain; completed work remains in the
// checkpoint, so a rerun with Resume picks up from there.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	spec := &r.Spec
	if err := spec.validate(); err != nil {
		return nil, err
	}
	runFn := r.RunFunc
	if runFn == nil {
		runFn = defaultRun
	}
	obs := spec.Observer
	if obs == nil {
		obs = noop{}
	}
	if spec.Flight != nil {
		spec.Flight.SetTotalPoints(len(spec.Warehouses) * len(spec.Processors))
		obs = Observers(obs, NewFlightObserver(spec.Flight))
	}
	ck, err := newCKStore(spec)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	clk := r.clock()
	started := clk.Now()
	if spec.CheckpointPath != "" {
		if err := r.writeManifest(clk, started, "campaign started"); err != nil {
			return nil, fmt.Errorf("campaign: writing manifest: %w", err)
		}
	}
	em := &emitter{obs: obs}
	pl := newPool(spec.Parallelism)
	res := &Result{
		Warehouses: append([]int(nil), spec.Warehouses...),
		Processors: append([]int(nil), spec.Processors...),
		Points:     make(map[PointKey]system.Metrics),
	}

	var (
		failMu   sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		failMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		failMu.Unlock()
	}
	var resMu sync.Mutex
	record := func(k PointKey, m system.Metrics) {
		resMu.Lock()
		res.Points[k] = m
		resMu.Unlock()
	}

	var wg sync.WaitGroup
	for _, p := range spec.Processors {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r.lane(ctx, p, pl, ck, em, runFn, &wg, fail, record)
		}(p)
	}
	wg.Wait()

	sum := em.done(clk.Since(started), firstErr)
	if spec.CheckpointPath != "" {
		notes := fmt.Sprintf("points=%d (resumed %d) runs=%d probes=%d (cached %d) failed=%v",
			sum.Points, sum.PointsResumed, sum.Runs, sum.Probes, sum.ProbesCached, sum.Err != nil)
		if err := r.writeManifest(clk, started, notes); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("campaign: writing manifest: %w", err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	res.Summary = sum
	return res, nil
}

// lane walks one processor configuration along the warehouse axis:
// resume or tune each point sequentially (so warm starts and probe
// memoization see the previous point), then hand the measurement run to
// the pool and move on while it simulates.
func (r *Runner) lane(ctx context.Context, p int, pl *pool, ck *ckStore, em *emitter,
	runFn RunFunc, wg *sync.WaitGroup, fail func(error), record func(PointKey, system.Metrics)) {
	spec := &r.Spec
	clk := r.clock()
	prevW, floor := -1, spec.MinClients
	for _, w := range spec.Warehouses {
		if ctx.Err() != nil {
			fail(ctx.Err())
			return
		}
		key := PointKey{W: w, P: p}
		if pt, ok := ck.point(key); ok {
			if pt.Flight != nil {
				name := telemetry.PointName(w, p)
				if spec.Flight != nil && len(pt.Flight.Hists) > 0 {
					hists, err := decodeHists(pt.Flight.Hists)
					if err != nil {
						fail(fmt.Errorf("campaign: restoring W=%d P=%d: %w", w, p, err))
						return
					}
					spec.Flight.RestoreRun(name, hists)
				}
				if spec.Profiles != nil && pt.Flight.Profile != nil {
					spec.Profiles.Put(name, pt.Flight.Profile)
				}
				if spec.Spans != nil && pt.Flight.Spans != nil {
					spec.Spans.Put(name, pt.Flight.Spans)
				}
				if spec.QueueStats != nil && pt.Flight.QStats != nil {
					spec.QueueStats.Put(name, pt.Flight.QStats)
				}
			}
			em.pointFinished(PointResult{
				Point:   Point{Warehouses: w, Processors: p, Clients: pt.C},
				Metrics: pt.Metrics,
				Resumed: true,
			})
			record(key, pt.Metrics)
			if spec.WarmStart && w >= prevW && pt.C > floor {
				floor = pt.C
			}
			prevW = w
			continue
		}

		c := spec.Clients
		if c <= 0 {
			if spec.AutoTune {
				start := spec.MinClients
				if spec.WarmStart && w >= prevW {
					start = floor
				}
				tuned, err := r.tunePoint(ctx, pl, ck, em, runFn, w, p, start)
				if err != nil {
					fail(fmt.Errorf("campaign: tuning W=%d P=%d: %w", w, p, err))
					return
				}
				c = tuned
				if spec.WarmStart && w >= prevW && c > floor {
					floor = c
				}
			} else {
				c = system.HeuristicClients(w, p)
			}
		}
		prevW = w

		wg.Add(1)
		go func(w, p, c int) {
			defer wg.Done()
			point := Point{Warehouses: w, Processors: p, Clients: c}
			em.pointStarted(point)
			t0 := clk.Now()
			cfg := spec.config(w, c, p, spec.MeasureTxns)
			name := telemetry.PointName(w, p)
			var m system.Metrics
			var err error
			var rec *telemetry.Recorder
			var col *profile.Collector
			var tr *txtrace.Tracer
			var qc *qstats.Collector
			switch {
			case spec.QueueStats != nil:
				obsFn := r.QStatsFunc
				if obsFn == nil {
					obsFn = defaultObservedRun
				}
				if fl := spec.Flight; fl != nil {
					rec = fl.StartRun(name)
				}
				if spec.Profiles != nil {
					col = profile.NewCollector()
				}
				if spec.Spans != nil {
					tr = spec.Spans.NewTracer()
				}
				qc = qstats.NewCollector()
				m, err = pl.do(ctx, func(ctx context.Context) (system.Metrics, error) {
					return obsFn(ctx, cfg, rec, col, tr, qc)
				})
				if fl := spec.Flight; fl != nil {
					fl.FinishRun(name, err == nil)
				}
			case spec.Spans != nil:
				spanFn := r.SpannedFunc
				if spanFn == nil {
					spanFn = defaultSpannedRun
				}
				if fl := spec.Flight; fl != nil {
					rec = fl.StartRun(name)
				}
				if spec.Profiles != nil {
					col = profile.NewCollector()
				}
				tr = spec.Spans.NewTracer()
				m, err = pl.do(ctx, func(ctx context.Context) (system.Metrics, error) {
					return spanFn(ctx, cfg, rec, col, tr)
				})
				if fl := spec.Flight; fl != nil {
					fl.FinishRun(name, err == nil)
				}
			case spec.Profiles != nil:
				profFn := r.ProfiledFunc
				if profFn == nil {
					profFn = defaultProfiledRun
				}
				if fl := spec.Flight; fl != nil {
					rec = fl.StartRun(name)
				}
				col = profile.NewCollector()
				m, err = pl.do(ctx, func(ctx context.Context) (system.Metrics, error) {
					return profFn(ctx, cfg, rec, col)
				})
				if fl := spec.Flight; fl != nil {
					fl.FinishRun(name, err == nil)
				}
			case spec.Flight != nil:
				flightFn := r.FlightFunc
				if flightFn == nil {
					flightFn = defaultFlightRun
				}
				rec = spec.Flight.StartRun(name)
				m, err = pl.do(ctx, func(ctx context.Context) (system.Metrics, error) {
					return flightFn(ctx, cfg, rec)
				})
				spec.Flight.FinishRun(name, err == nil)
			default:
				m, err = pl.run(ctx, runFn, cfg)
			}
			elapsed := clk.Since(t0)
			if err != nil {
				em.pointFinished(PointResult{Point: point, Elapsed: elapsed, Err: err})
				fail(fmt.Errorf("campaign: W=%d P=%d: %w", w, p, err))
				return
			}
			// Persist the point's observability payload alongside its
			// metrics so a resumed campaign restores rather than loses it.
			var pf *PointFlight
			if rec != nil || col != nil || tr != nil || qc != nil {
				pf = &PointFlight{}
				if rec != nil {
					pf.Hists = encodeHists(rec.Histograms())
				}
				if col != nil {
					prof := col.Profile()
					prof.Meta.Label = name
					spec.Profiles.Put(name, prof)
					pf.Profile = prof
				}
				if tr != nil {
					d := tr.Dump()
					d.Meta.Label = name
					spec.Spans.Put(name, d)
					pf.Spans = d
				}
				if qc != nil {
					rep := qc.Report()
					if rep != nil {
						rep.Meta.Label = name
						spec.QueueStats.Put(name, rep)
						pf.QStats = rep
					}
				}
			}
			em.pointFinished(PointResult{Point: point, Metrics: m, Elapsed: elapsed})
			record(PointKey{W: w, P: p}, m)
			if err := ck.addPoint(w, p, c, m, pf); err != nil {
				fail(fmt.Errorf("campaign: checkpointing W=%d P=%d: %w", w, p, err))
			}
		}(w, p, c)
	}
}

// tunePoint finds the point's client count with the memoized,
// warm-started tuner search; every probe that is not already in the
// memo runs through the shared pool.
func (r *Runner) tunePoint(ctx context.Context, pl *pool, ck *ckStore, em *emitter,
	runFn RunFunc, w, p, start int) (int, error) {
	spec := &r.Spec
	clk := r.clock()
	probe := func(c int) (float64, error) {
		if u, ok := ck.probe(w, p, c); ok {
			em.tunerProbe(Probe{Warehouses: w, Processors: p, Clients: c, Util: u, Cached: true})
			return u, nil
		}
		t0 := clk.Now()
		m, err := pl.run(ctx, runFn, spec.config(w, c, p, spec.TuneTxns))
		if err != nil {
			return 0, err
		}
		u := m.CPUUtil
		em.tunerProbe(Probe{Warehouses: w, Processors: p, Clients: c, Util: u, Elapsed: clk.Since(t0)})
		if err := ck.addProbe(w, p, c, u); err != nil {
			return 0, err
		}
		return u, nil
	}
	return Tune(probe, Bounds{
		Min:    spec.MinClients,
		Max:    spec.MaxClients,
		Start:  start,
		Target: spec.TargetUtil,
	})
}

// RunAll executes the configurations through one bounded pool and
// returns their metrics in input order — the campaign scheduling
// substrate exposed for batch jobs like seeded replication. The first
// error cancels the remaining runs.
func RunAll(ctx context.Context, parallelism int, cfgs []system.Config) ([]system.Metrics, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	pl := newPool(parallelism)
	out := make([]system.Metrics, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg system.Config) {
			defer wg.Done()
			m, err := pl.run(ctx, defaultRun, cfg)
			out[i], errs[i] = m, err
			if err != nil {
				cancel()
			}
		}(i, cfg)
	}
	wg.Wait()
	// Prefer a real failure over the context.Canceled its cancellation
	// spread to the other runs.
	first := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if first < 0 || errors.Is(errs[first], context.Canceled) && !errors.Is(err, context.Canceled) {
			first = i
		}
	}
	if first >= 0 {
		return nil, fmt.Errorf("campaign: run %d (W=%d C=%d P=%d): %w",
			first, cfgs[first].Warehouses, cfgs[first].Clients, cfgs[first].Processors, errs[first])
	}
	return out, nil
}
