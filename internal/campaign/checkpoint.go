package campaign

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"odbscale/internal/profile"
	"odbscale/internal/qstats"
	"odbscale/internal/system"
	"odbscale/internal/telemetry"
	"odbscale/internal/txtrace"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// ErrCheckpointMismatch reports a resume against a checkpoint written
// by a campaign with different run-defining parameters.
var ErrCheckpointMismatch = errors.New("campaign: checkpoint does not match the spec")

// Fingerprint captures the parameters that define a run's result. Two
// campaigns with equal fingerprints measure identical configurations,
// so their checkpoints are interchangeable; the warehouse and processor
// axes are deliberately excluded so a resumed campaign may add points.
type Fingerprint struct {
	Machine     string  `json:"machine"`
	Engine      string  `json:"engine,omitempty"`
	Seed        int64   `json:"seed"`
	WarmupTxns  int     `json:"warmup_txns"`
	MeasureTxns int     `json:"measure_txns"`
	TuneTxns    int     `json:"tune_txns"`
	TargetUtil  float64 `json:"target_util"`
	MinClients  int     `json:"min_clients"`
	MaxClients  int     `json:"max_clients"`
	AutoTune    bool    `json:"auto_tune"`
	Clients     int     `json:"clients,omitempty"`
}

// CheckpointPoint is one completed measurement point.
type CheckpointPoint struct {
	W       int            `json:"w"`
	P       int            `json:"p"`
	C       int            `json:"c"`
	Metrics system.Metrics `json:"metrics"`
	// Flight is the point's persisted observability payload, present
	// when the campaign ran with the flight recorder or the profiler.
	// Old checkpoints without it still load.
	Flight *PointFlight `json:"flight,omitempty"`
}

// PointFlight persists a completed point's observability data so a
// resumed campaign restores it instead of losing it: the per-type
// latency histograms (base64 of the mergeable Histogram encoding), the
// point's cycle-attribution profile, and its span-trace dump.
type PointFlight struct {
	Hists   map[string]string `json:"hists,omitempty"`
	Profile *profile.Profile  `json:"profile,omitempty"`
	Spans   *txtrace.Dump     `json:"spans,omitempty"`
	QStats  *qstats.Report    `json:"qstats,omitempty"`
}

// encodeHists converts a run's histograms to the checkpoint wire form.
func encodeHists(hists map[string]*telemetry.Histogram) map[string]string {
	if len(hists) == 0 {
		return nil
	}
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]string, len(hists))
	for _, name := range names {
		out[name] = base64.StdEncoding.EncodeToString(hists[name].Encode())
	}
	return out
}

// decodeHists reverses encodeHists.
func decodeHists(enc map[string]string) (map[string]*telemetry.Histogram, error) {
	out := make(map[string]*telemetry.Histogram, len(enc))
	for name, s := range enc {
		data, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("campaign: histogram %q: %w", name, err)
		}
		h, err := telemetry.DecodeHistogram(data)
		if err != nil {
			return nil, fmt.Errorf("campaign: histogram %q: %w", name, err)
		}
		out[name] = h
	}
	return out, nil
}

// CheckpointProbe is one completed tuner probe.
type CheckpointProbe struct {
	W    int     `json:"w"`
	P    int     `json:"p"`
	C    int     `json:"c"`
	Util float64 `json:"util"`
}

// Checkpoint is the serialized state of a partially completed campaign:
// every finished measurement point and every tuner probe. A campaign
// resumed from it re-executes only what is missing.
type Checkpoint struct {
	Version int               `json:"version"`
	Spec    Fingerprint       `json:"spec"`
	Points  []CheckpointPoint `json:"points"`
	Probes  []CheckpointProbe `json:"probes"`
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("campaign: corrupt checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d",
			path, cp.Version, checkpointVersion)
	}
	return &cp, nil
}

// Save writes the checkpoint atomically (temp file + rename).
func (cp *Checkpoint) Save(path string) error {
	data, err := json.MarshalIndent(cp, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".campaign-ck-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

type probeKey struct{ w, p, c int }

// ckStore is the runner's shared memo: completed points and probes,
// persisted to the checkpoint path (when one is configured) after every
// addition.
type ckStore struct {
	mu     sync.Mutex
	path   string // "" keeps the store in memory only
	cp     Checkpoint
	points map[PointKey]CheckpointPoint
	probes map[probeKey]float64
}

// newCKStore builds the store for a campaign, loading the checkpoint
// file when the spec asks to resume.
func newCKStore(spec *Spec) (*ckStore, error) {
	s := &ckStore{
		path:   spec.CheckpointPath,
		cp:     Checkpoint{Version: checkpointVersion, Spec: spec.fingerprint()},
		points: make(map[PointKey]CheckpointPoint),
		probes: make(map[probeKey]float64),
	}
	if !spec.Resume {
		return s, nil
	}
	if s.path == "" {
		return nil, fmt.Errorf("campaign: Resume requires a CheckpointPath")
	}
	cp, err := LoadCheckpoint(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return s, nil // nothing to resume from: fresh campaign
	}
	if err != nil {
		return nil, err
	}
	if cp.Spec != s.cp.Spec {
		return nil, fmt.Errorf("%w: checkpoint %+v, spec %+v",
			ErrCheckpointMismatch, cp.Spec, s.cp.Spec)
	}
	s.cp = *cp
	for _, pt := range cp.Points {
		s.points[PointKey{W: pt.W, P: pt.P}] = pt
	}
	for _, pr := range cp.Probes {
		s.probes[probeKey{pr.W, pr.P, pr.C}] = pr.Util
	}
	return s, nil
}

func (s *ckStore) point(k PointKey) (CheckpointPoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pt, ok := s.points[k]
	return pt, ok
}

func (s *ckStore) probe(w, p, c int) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.probes[probeKey{w, p, c}]
	return u, ok
}

func (s *ckStore) addPoint(w, p, c int, m system.Metrics, fl *PointFlight) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pt := CheckpointPoint{W: w, P: p, C: c, Metrics: m, Flight: fl}
	s.points[PointKey{W: w, P: p}] = pt
	s.cp.Points = append(s.cp.Points, pt)
	return s.persistLocked()
}

func (s *ckStore) addProbe(w, p, c int, util float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes[probeKey{w, p, c}] = util
	s.cp.Probes = append(s.cp.Probes, CheckpointProbe{W: w, P: p, C: c, Util: util})
	return s.persistLocked()
}

func (s *ckStore) persistLocked() error {
	if s.path == "" {
		return nil
	}
	return s.cp.Save(s.path)
}
