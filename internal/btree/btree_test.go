package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"odbscale/internal/odb"
)

func TestEmpty(t *testing.T) {
	tr := New(4)
	if tr.Len() != 0 || tr.Height() != 1 || tr.Leaves() != 1 {
		t.Fatalf("empty tree: len=%d h=%d leaves=%d", tr.Len(), tr.Height(), tr.Leaves())
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("Get on empty tree succeeded")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGet(t *testing.T) {
	tr := New(4)
	for i := uint64(0); i < 1000; i++ {
		if tr.Insert(i*7%1000, i) {
			t.Fatalf("fresh key %d reported replaced", i*7%1000)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		k := i * 7 % 1000
		v, ok := tr.Get(k)
		if !ok || v*7%1000 != k {
			t.Fatalf("Get(%d) = %d, %v", k, v, ok)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplace(t *testing.T) {
	tr := New(4)
	tr.Insert(42, 1)
	if !tr.Insert(42, 2) {
		t.Fatal("overwrite not reported")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", tr.Len())
	}
	if v, _ := tr.Get(42); v != 2 {
		t.Fatalf("value = %d", v)
	}
}

func TestSequentialAndReverse(t *testing.T) {
	for name, gen := range map[string]func(i int) uint64{
		"ascending":  func(i int) uint64 { return uint64(i) },
		"descending": func(i int) uint64 { return uint64(10000 - i) },
	} {
		tr := New(8)
		for i := 0; i < 10000; i++ {
			tr.Insert(gen(i), uint64(i))
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Len() != 10000 {
			t.Fatalf("%s: Len = %d", name, tr.Len())
		}
	}
}

func TestRange(t *testing.T) {
	tr := New(5)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i*2, i) // even keys 0..198
	}
	var got []uint64
	tr.Range(11, 29, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{12, 14, 16, 18, 20, 22, 24, 26, 28}
	if len(got) != len(want) {
		t.Fatalf("Range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tr.Range(0, 198, func(k, v uint64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	// Empty range.
	tr.Range(13, 13, func(k, v uint64) bool {
		t.Fatalf("empty range visited %d", k)
		return false
	})
}

// Property: after any random insert sequence, the tree matches a map and
// validates structurally; range scans enumerate sorted keys.
func TestAgainstMapQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		degree := 3 + rng.Intn(14)
		tr := New(degree)
		ref := map[uint64]uint64{}
		for i := 0; i < 3000; i++ {
			k := uint64(rng.Intn(700))
			v := uint64(rng.Intn(1 << 30))
			wantReplace := func() bool { _, ok := ref[k]; return ok }()
			if tr.Insert(k, v) != wantReplace {
				return false
			}
			ref[k] = v
		}
		if tr.Len() != len(ref) {
			return false
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		for k, v := range ref {
			if got, ok := tr.Get(k); !ok || got != v {
				return false
			}
		}
		var keys []uint64
		tr.Range(0, ^uint64(0), func(k, v uint64) bool {
			keys = append(keys, k)
			return true
		})
		return len(keys) == len(ref) && sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(2)
}

// TestGeometricModelAgreement cross-validates the simulation's geometric
// index model against this operational tree: for the same entry count
// and shape parameters, the geometric model's height and leaf count must
// match the real structure within split-policy slack (real splits leave
// nodes half-full, so the operational tree uses up to 2x the minimal
// node count at the same height or one extra level).
func TestGeometricModelAgreement(t *testing.T) {
	for _, entries := range []uint64{1000, 30_000, 300_000} {
		const leafCap = 128
		geo := odb.NewBtree("x", entries, leafCap, leafCap)

		tr := New(leafCap)
		rng := rand.New(rand.NewSource(7))
		perm := rng.Perm(int(entries))
		for _, k := range perm {
			tr.Insert(uint64(k), 1)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if h := tr.Height(); h != geo.Height() && h != geo.Height()+1 {
			t.Fatalf("entries=%d: operational height %d vs geometric %d", entries, h, geo.Height())
		}
		minLeaves := (int(entries) + leafCap - 1) / leafCap
		if l := tr.Leaves(); l < minLeaves || l > 2*minLeaves+1 {
			t.Fatalf("entries=%d: %d leaves outside [%d, %d]", entries, l, minLeaves, 2*minLeaves+1)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New(128)
	for i := 0; i < b.N; i++ {
		tr.Insert(uint64(i*2654435761), uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New(128)
	for i := 0; i < 1_000_000; i++ {
		tr.Insert(uint64(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i % 1_000_000))
	}
}
