// Package btree implements an operational B+tree: an ordered uint64 →
// uint64 index with node splits, a linked leaf level and range scans.
//
// The simulation models indices geometrically (internal/odb's Btree
// computes which blocks a lookup touches from cardinality and fanout);
// this package is the operational counterpart — a real tree with the
// same shape parameters. The cross-validation test asserts that the
// geometric model's height and leaf counts match what an actual tree
// built with the same fanout produces, grounding the simulated access
// paths in a working structure.
package btree

import "fmt"

// Tree is a B+tree. Interior nodes hold separator keys and children;
// leaves hold key/value pairs and are chained for range scans. The zero
// value is not usable; call New.
type Tree struct {
	degree int // max children per interior node; max pairs per leaf
	root   *node
	first  *node // leftmost leaf
	size   int
	height int
}

type node struct {
	leaf bool
	keys []uint64
	vals []uint64 // leaves only
	kids []*node  // interior only
	next *node    // leaf chain
}

// New returns an empty tree with the given degree (≥ 3).
func New(degree int) *Tree {
	if degree < 3 {
		panic(fmt.Sprintf("btree: degree %d < 3", degree))
	}
	leaf := &node{leaf: true}
	return &Tree{degree: degree, root: leaf, first: leaf, height: 1}
}

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels including the leaf level.
func (t *Tree) Height() int { return t.height }

// findChild returns the index of the child of n that covers key k.
func findChild(n *node, k uint64) int {
	i := 0
	for i < len(n.keys) && k >= n.keys[i] {
		i++
	}
	return i
}

// findLeafSlot returns the position of k in leaf n, and whether present.
func findLeafSlot(n *node, k uint64) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && n.keys[lo] == k
}

// Get returns the value stored under k.
func (t *Tree) Get(k uint64) (uint64, bool) {
	n := t.root
	for !n.leaf {
		n = n.kids[findChild(n, k)]
	}
	if i, ok := findLeafSlot(n, k); ok {
		return n.vals[i], true
	}
	return 0, false
}

// Insert stores v under k, returning true if an existing value was
// replaced.
func (t *Tree) Insert(k, v uint64) bool {
	replaced, splitKey, sibling := t.insert(t.root, k, v)
	if sibling != nil {
		newRoot := &node{keys: []uint64{splitKey}, kids: []*node{t.root, sibling}}
		t.root = newRoot
		t.height++
	}
	if !replaced {
		t.size++
	}
	return replaced
}

// insert descends, splitting on the way back up. It returns whether the
// key existed, and, when the child overflowed, the separator key and new
// right sibling to install in the parent.
func (t *Tree) insert(n *node, k, v uint64) (replaced bool, splitKey uint64, sibling *node) {
	if n.leaf {
		i, ok := findLeafSlot(n, k)
		if ok {
			n.vals[i] = v
			return true, 0, nil
		}
		n.keys = append(n.keys, 0)
		n.vals = append(n.vals, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = k
		n.vals[i] = v
		if len(n.keys) <= t.degree {
			return false, 0, nil
		}
		// Split the leaf.
		mid := len(n.keys) / 2
		right := &node{leaf: true,
			keys: append([]uint64(nil), n.keys[mid:]...),
			vals: append([]uint64(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		n.next = right
		return false, right.keys[0], right
	}

	ci := findChild(n, k)
	replaced, sk, sib := t.insert(n.kids[ci], k, v)
	if sib == nil {
		return replaced, 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sk
	n.kids = append(n.kids, nil)
	copy(n.kids[ci+2:], n.kids[ci+1:])
	n.kids[ci+1] = sib
	if len(n.kids) <= t.degree {
		return replaced, 0, nil
	}
	// Split the interior node: the middle key moves up.
	midKey := len(n.keys) / 2
	up := n.keys[midKey]
	right := &node{
		keys: append([]uint64(nil), n.keys[midKey+1:]...),
		kids: append([]*node(nil), n.kids[midKey+1:]...),
	}
	n.keys = n.keys[:midKey:midKey]
	n.kids = n.kids[: midKey+1 : midKey+1]
	return replaced, up, right
}

// Range calls fn for every pair with lo <= key <= hi in ascending order,
// stopping early if fn returns false.
func (t *Tree) Range(lo, hi uint64, fn func(k, v uint64) bool) {
	n := t.root
	for !n.leaf {
		n = n.kids[findChild(n, lo)]
	}
	i, _ := findLeafSlot(n, lo)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Leaves returns the number of leaf nodes (the operational analogue of
// the geometric model's leaf-block count).
func (t *Tree) Leaves() int {
	n := 0
	for l := t.first; l != nil; l = l.next {
		n++
	}
	return n
}

// Validate checks the structural invariants: key ordering within and
// across nodes, uniform leaf depth, separator correctness and the leaf
// chain covering exactly the tree's pairs. It returns the first
// violation found.
func (t *Tree) Validate() error {
	depth := -1
	var walk func(n *node, d int, min, max uint64) error
	walk = func(n *node, d int, min, max uint64) error {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("btree: unordered keys at depth %d", d)
			}
		}
		if len(n.keys) > 0 {
			if n.keys[0] < min || n.keys[len(n.keys)-1] > max {
				return fmt.Errorf("btree: key outside separator range at depth %d", d)
			}
		}
		if n.leaf {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("btree: leaves at depths %d and %d", depth, d)
			}
			if len(n.keys) != len(n.vals) {
				return fmt.Errorf("btree: leaf keys/vals mismatch")
			}
			return nil
		}
		if len(n.kids) != len(n.keys)+1 {
			return fmt.Errorf("btree: interior with %d keys, %d kids", len(n.keys), len(n.kids))
		}
		for i, kid := range n.kids {
			lo, hi := min, max
			if i > 0 {
				lo = n.keys[i-1]
			}
			if i < len(n.keys) {
				hi = n.keys[i] - 1
			}
			if err := walk(kid, d+1, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, 0, ^uint64(0)); err != nil {
		return err
	}
	// The leaf chain must enumerate exactly size ascending keys.
	count := 0
	last := uint64(0)
	started := false
	for l := t.first; l != nil; l = l.next {
		for _, k := range l.keys {
			if started && k <= last {
				return fmt.Errorf("btree: leaf chain out of order at %d", k)
			}
			last, started = k, true
			count++
		}
	}
	if count != t.size {
		return fmt.Errorf("btree: chain has %d keys, size is %d", count, t.size)
	}
	return nil
}
