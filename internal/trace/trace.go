// Package trace captures the reference stream the workload synthesizer
// feeds into the cache hierarchy and replays it against alternative cache
// geometries — the classic trace-driven methodology of the memory-system
// studies the paper builds on (Barroso et al., Ranganathan et al.): record
// once on the detailed model, then sweep cache parameters offline without
// re-running the full system simulation.
//
// The on-disk format is a small header followed by fixed 10-byte records
// (cpu, kind, 8-byte address), written through a buffered writer; traces
// of a few million references are tens of megabytes.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"odbscale/internal/cache"
)

// Kind mirrors cache.Kind for storage.
type Kind = cache.Kind

// Record is one captured memory reference.
type Record struct {
	CPU  uint8
	Kind Kind
	Addr uint64
}

var magic = [6]byte{'O', 'D', 'B', 'T', 'R', '1'}

// Writer streams records to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count uint64
}

// NewWriter writes the header and returns a trace writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (t *Writer) Write(r Record) error {
	var buf [10]byte
	buf[0] = r.CPU
	buf[1] = byte(r.Kind)
	binary.LittleEndian.PutUint64(buf[2:], r.Addr)
	if _, err := t.w.Write(buf[:]); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.count }

// Flush drains the buffer; call before closing the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader iterates over a stored trace.
type Reader struct {
	r *bufio.Reader
	n uint64 // records returned so far
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, errors.New("trace: not an ODBTR1 trace")
	}
	return &Reader{r: br}, nil
}

// Next returns the next record; io.EOF ends the trace. Read failures
// mid-stream are wrapped with the failing record's index and byte
// offset, so a corrupt or truncated trace names the exact spot; a clean
// io.EOF at a record boundary passes through unwrapped.
func (t *Reader) Next() (Record, error) {
	var buf [10]byte
	if _, err := io.ReadFull(t.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, err
		}
		return Record{}, fmt.Errorf("trace: record %d (offset %d): %w", t.n, t.offset(), err)
	}
	t.n++
	return Record{
		CPU:  buf[0],
		Kind: Kind(buf[1]),
		Addr: binary.LittleEndian.Uint64(buf[2:]),
	}, nil
}

// offset returns the file position of the next record: the 6-byte
// header plus the fixed 10-byte records already consumed.
func (t *Reader) offset() uint64 { return uint64(len(magic)) + t.n*10 }

// ReplayStats summarizes one replay.
type ReplayStats struct {
	Refs       uint64
	TCMisses   uint64
	L2Misses   uint64
	L3Misses   uint64
	CoherMiss  uint64
	Writebacks uint64
}

// L3MissRatio returns L3 misses per reference.
func (s ReplayStats) L3MissRatio() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.L3Misses) / float64(s.Refs)
}

// Replay drives a trace through a cache domain. The domain's CPU count
// must cover every CPU id in the trace.
func Replay(r *Reader, domain *cache.Domain) (ReplayStats, error) {
	var s ReplayStats
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		if int(rec.CPU) >= len(domain.CPUs) {
			return s, fmt.Errorf("trace: record %d is for CPU %d but domain has %d", s.Refs, rec.CPU, len(domain.CPUs))
		}
		res := domain.Access(int(rec.CPU), cache.Addr(rec.Addr), rec.Kind)
		s.Refs++
		if res.TCMiss {
			s.TCMisses++
		}
		if res.L2Miss {
			s.L2Misses++
		}
		if res.L3Miss {
			s.L3Misses++
		}
		if res.Coherence {
			s.CoherMiss++
		}
		if res.Writeback {
			s.Writebacks++
		}
	}
}
