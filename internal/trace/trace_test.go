package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"odbscale/internal/bus"
	"odbscale/internal/cache"
	"odbscale/internal/workload"
	"odbscale/internal/xrand"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{CPU: 0, Kind: cache.Fetch, Addr: 0x1000},
		{CPU: 3, Kind: cache.Store, Addr: 0xdeadbeef},
		{CPU: 1, Kind: cache.Load, Addr: 1 << 40},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(cpu uint8, kind uint8, addr uint64) bool {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		rec := Record{CPU: cpu, Kind: Kind(kind % 3), Addr: addr}
		w.Write(rec)
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		return err == nil && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{Addr: 1})
	w.Write(Record{Addr: 2})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-3] // chop mid-record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("want truncation error, got %v", err)
	}
	// The error names the failing record, carries its byte offset, and
	// wraps the underlying cause for errors.Is chains.
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncation error does not wrap io.ErrUnexpectedEOF: %v", err)
	}
	for _, want := range []string{"record 1", "offset 16"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// captureTrace records the synthesizer's reference stream for some chunks.
func captureTrace(t *testing.T, n int) []byte {
	t.Helper()
	const scale = 64
	g := workload.ScaledGeometry(cache.XeonGeometry(1), scale)
	d := cache.NewDomain(g, 2, true)
	b := bus.New(bus.DefaultConfig(), scale)
	synth := workload.New(workload.DefaultConfig(scale), d, b, xrand.New(9))

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	synth.SetTap(func(cpu int, addr cache.Addr, kind cache.Kind) {
		if err := w.Write(Record{CPU: uint8(cpu), Kind: kind, Addr: uint64(addr)}); err != nil {
			t.Fatal(err)
		}
	})
	for i := 0; i < n; i++ {
		synth.Run(workload.ChunkSpec{CPU: i % 2, ProcID: i % 4, Instr: 100_000})
	}
	if w.Count() == 0 {
		t.Fatal("tap captured nothing")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReplayAgainstGeometries(t *testing.T) {
	data := captureTrace(t, 600)

	replay := func(l3 int) ReplayStats {
		g := workload.ScaledGeometry(cache.XeonGeometry(1), 64)
		g.L3Size = l3
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		s, err := Replay(r, cache.NewDomain(g, 2, true))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	small := replay((1 << 20) / 64) // scaled 1 MB
	big := replay((4 << 20) / 64)   // scaled 4 MB
	if small.Refs != big.Refs || small.Refs == 0 {
		t.Fatalf("replay lengths differ: %d vs %d", small.Refs, big.Refs)
	}
	if big.L3Misses >= small.L3Misses {
		t.Fatalf("bigger L3 missed more on same trace: %d >= %d", big.L3Misses, small.L3Misses)
	}
	if small.L3MissRatio() <= 0 {
		t.Fatal("no misses recorded")
	}
}

func TestReplayCPUOutOfRange(t *testing.T) {
	data := captureTrace(t, 50)
	g := workload.ScaledGeometry(cache.XeonGeometry(1), 64)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(r, cache.NewDomain(g, 1, true)); err == nil {
		t.Fatal("trace with CPU 1 replayed on a 1-CPU domain")
	}
}

func TestReplayDeterministic(t *testing.T) {
	data := captureTrace(t, 100)
	run := func() ReplayStats {
		g := workload.ScaledGeometry(cache.XeonGeometry(1), 64)
		r, _ := NewReader(bytes.NewReader(data))
		s, err := Replay(r, cache.NewDomain(g, 2, true))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if run() != run() {
		t.Fatal("replay not deterministic")
	}
}
