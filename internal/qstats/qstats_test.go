package qstats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// testInput builds a consistent input: a 1e9-cycle window at 1e6
// cycles/ms (1 second), 1000 commits, with hand-set accumulators.
func testInput() *Input {
	in := &Input{
		Meta:          Meta{Engine: "btree", Warehouses: 10, Clients: 8, Processors: 1},
		ElapsedCycles: 1e9,
		CyclesPerMS:   1e6,
		Commits:       1000,
	}
	in.Servers[CPU] = 1
	in.Servers[Bus] = 1
	in.Servers[Disk] = 4
	in.Servers[Log] = 1
	// Disk: 2000 visits, 0.5ms service each, 1ms wait each.
	in.Counts[Disk] = Counts{Arrivals: 2000, Completions: 2000, BusyCycles: 2000 * 0.5e6, WaitCycles: 2000 * 1e6}
	// Log: 1000 visits, 0.6ms service, no wait.
	in.Counts[Log] = Counts{Arrivals: 1000, Completions: 1000, BusyCycles: 1000 * 0.6e6}
	// Lock manager: 100 waits of 2ms (delay center, no service).
	in.Counts[LockMgr] = Counts{Arrivals: 100, Completions: 100, WaitCycles: 100 * 2e6}
	// CPU: busy 80% of the window.
	in.Counts[CPU] = Counts{Arrivals: 5000, Completions: 5000, BusyCycles: 0.8e9, WaitCycles: 0.1e9}
	return in
}

func TestBuildDerivations(t *testing.T) {
	r := Build(testInput())
	if r.ElapsedMS != 1000 {
		t.Fatalf("elapsed = %v ms, want 1000", r.ElapsedMS)
	}
	if r.TPS != 1000 {
		t.Fatalf("tps = %v, want 1000", r.TPS)
	}
	d := r.Stations[Disk]
	if got, want := d.Utilization, 2000*0.5e6/(1e9*4); math.Abs(got-want) > 1e-12 {
		t.Errorf("disk utilization = %v, want %v", got, want)
	}
	if got, want := d.ThroughputPerSec, 2000.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("disk throughput = %v, want %v", got, want)
	}
	if got, want := d.ServiceMS, 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("disk service = %v, want %v", got, want)
	}
	if got, want := d.WaitMS, 1.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("disk wait = %v, want %v", got, want)
	}
	if got, want := d.QueueLen, (2000*0.5e6+2000*1e6)/1e9; math.Abs(got-want) > 1e-12 {
		t.Errorf("disk queue length = %v, want %v", got, want)
	}
	if got, want := d.ServiceDemandMS, 2000*0.5/1000; math.Abs(got-want) > 1e-12 {
		t.Errorf("disk service demand = %v, want %v", got, want)
	}
	if got, want := d.WaitDemandMS, 2000*1.0/1000; math.Abs(got-want) > 1e-12 {
		t.Errorf("disk wait demand = %v, want %v", got, want)
	}
	lm := r.Stations[LockMgr]
	if lm.Servers != 0 || lm.Utilization != 0 {
		t.Errorf("lockmgr should be a delay center, got servers=%d util=%v", lm.Servers, lm.Utilization)
	}
	if got, want := lm.WaitMS, 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("lockmgr wait = %v, want %v", got, want)
	}
}

func TestOperationalLawResiduals(t *testing.T) {
	r := Build(testInput())
	for _, s := range r.Stations {
		if s.LittleResidual > 1e-9 {
			t.Errorf("%s: Little residual %v", s.Name, s.LittleResidual)
		}
		if s.UtilResidual > 1e-9 {
			t.Errorf("%s: utilization residual %v", s.Name, s.UtilResidual)
		}
	}
	if viol := r.Check(1e-6); len(viol) != 0 {
		t.Errorf("Check reported violations on a consistent input: %v", viol)
	}
}

func TestRankingExcludesDriverAndOrdersByWaitDemand(t *testing.T) {
	r := Build(testInput())
	for _, name := range r.Ranking {
		if name == "cpu" {
			t.Fatalf("driver station in ranking: %v", r.Ranking)
		}
	}
	// Disk wait demand 2.0 > lockmgr 0.2 > everything else 0.
	if len(r.Ranking) == 0 || r.Ranking[0] != "disk" {
		t.Fatalf("ranking = %v, want disk first", r.Ranking)
	}
	if r.Ranking[1] != "lockmgr" {
		t.Fatalf("ranking = %v, want lockmgr second", r.Ranking)
	}
	if r.Bottleneck != "disk" {
		t.Fatalf("bottleneck = %q, want disk", r.Bottleneck)
	}
	// The log device (U = 0.6) outsaturates the disk array (U = 0.25)
	// even though the disk imposes more queueing — the two verdicts are
	// deliberately independent.
	if r.Saturating != "log" {
		t.Fatalf("saturating = %q, want log", r.Saturating)
	}
	if want := 1 / 0.6; math.Abs(r.Headroom-want) > 1e-9 {
		t.Fatalf("headroom = %v, want %v", r.Headroom, want)
	}
}

func TestBottleneckEmptyWhenNothingQueues(t *testing.T) {
	in := &Input{ElapsedCycles: 1e9, CyclesPerMS: 1e6, Commits: 10}
	r := Build(in)
	if r.Bottleneck != "" {
		t.Fatalf("bottleneck = %q on an idle run, want empty", r.Bottleneck)
	}
	if r.Saturating != "" || r.Headroom != 0 {
		t.Fatalf("saturating = %q headroom = %v on an idle run", r.Saturating, r.Headroom)
	}
	if len(r.Ranking) != NumStations-1 {
		t.Fatalf("ranking has %d entries, want %d", len(r.Ranking), NumStations-1)
	}
}

func TestCheckFlagsViolations(t *testing.T) {
	r := Build(testInput())
	r.Stations[Disk].LittleResidual = 1e-3
	r.Stations[Log].Completions = r.Stations[Log].Arrivals + 1
	r.Stations[Bus].Utilization = 1.5
	viol := r.Check(1e-6)
	if len(viol) != 3 {
		t.Fatalf("Check found %d violations (%v), want 3", len(viol), viol)
	}
}

func TestStationAccumulationAllocFree(t *testing.T) {
	c := NewCollector()
	st := c.Station(Disk)
	allocs := testing.AllocsPerRun(1000, func() {
		st.Arrive()
		st.Complete(10, 20)
		st.Visit(1, 2)
	})
	if allocs != 0 {
		t.Fatalf("station accumulation allocates %v per op, want 0", allocs)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := Build(testInput())
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bottleneck != r.Bottleneck || back.Commits != r.Commits || len(back.Stations) != len(r.Stations) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, r)
	}
	if back.Stations[Disk].WaitDemandMS != r.Stations[Disk].WaitDemandMS {
		t.Fatalf("round trip lost wait demand")
	}
}

func TestWriteTextAndDiff(t *testing.T) {
	r := Build(testInput())
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"operational laws: OK", "bottleneck: disk", "lockmgr", "headroom"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}
	in2 := testInput()
	in2.Counts[LockMgr].WaitCycles = 100 * 30e6
	r2 := Build(in2)
	buf.Reset()
	if err := WriteDiff(&buf, r, r2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bottleneck: disk -> lockmgr") {
		t.Errorf("diff missing bottleneck shift:\n%s", buf.String())
	}
}

func TestCollectorPublishAndBottlenecks(t *testing.T) {
	c := NewCollector()
	var buf bytes.Buffer
	if err := c.WriteBottlenecks(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pending") {
		t.Fatalf("pre-publish payload = %q, want pending marker", buf.String())
	}
	c.Publish(Build(testInput()))
	buf.Reset()
	if err := c.WriteBottlenecks(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"bottleneck\":\"disk\"") {
		t.Fatalf("payload missing bottleneck: %s", buf.String())
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	c.Station(Bus).Visit(5, 7)
	c.ResetStations()
	if got := c.Counts()[Bus]; got != (Counts{}) {
		t.Fatalf("counts after reset = %+v, want zero", got)
	}
}

func TestStoreInsertionOrder(t *testing.T) {
	s := NewStore()
	s.Put("b", Build(testInput()))
	s.Put("a", Build(testInput()))
	s.Put("b", Build(testInput()))
	if got := s.Keys(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("keys = %v, want [b a]", got)
	}
	if s.Get("a") == nil || s.Get("missing") != nil {
		t.Fatal("Get misbehaved")
	}
	var buf bytes.Buffer
	if err := s.WriteBottlenecks(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"key\": \"b\"") {
		t.Fatalf("store payload missing key: %s", buf.String())
	}
}
