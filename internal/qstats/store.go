package qstats

import (
	"encoding/json"
	"io"
	"sync"
)

// Store collects per-point reports across a campaign, keyed by point
// name, in insertion order — the qstats sibling of profile.Store and
// txtrace.Store.
type Store struct {
	mu    sync.Mutex
	keys  []string
	byKey map[string]*Report
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{byKey: map[string]*Report{}} }

// Put stores a point's report, replacing any previous one.
func (s *Store) Put(key string, r *Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byKey[key]; !ok {
		s.keys = append(s.keys, key)
	}
	s.byKey[key] = r
}

// Get returns the report stored for key, or nil.
func (s *Store) Get(key string) *Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKey[key]
}

// Keys returns the stored point names in insertion order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.keys))
	copy(out, s.keys)
	return out
}

// WriteBottlenecks writes every stored report as one JSON array keyed
// by point name — the /bottlenecks payload when a campaign is being
// served.
func (s *Store) WriteBottlenecks(w io.Writer) error {
	s.mu.Lock()
	type entry struct {
		Key    string  `json:"key"`
		Report *Report `json:"report"`
	}
	entries := make([]entry, 0, len(s.keys))
	for _, k := range s.keys {
		entries = append(entries, entry{Key: k, Report: s.byKey[k]})
	}
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(entries)
}
