package qstats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Meta identifies the run a report describes.
type Meta struct {
	Label      string `json:"label,omitempty"`
	Engine     string `json:"engine,omitempty"`
	Warehouses int    `json:"warehouses,omitempty"`
	Clients    int    `json:"clients,omitempty"`
	Processors int    `json:"processors,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
}

// Background carries the absorbed maintenance counters the stations do
// not model as visits: the buffer cache's DB-writer and hit ledger,
// the lock manager's acquire/conflict counts, the engine's flush,
// compaction and stall counts, and the log-writer volume. They are
// read from the component statistics at report time, so they cost
// nothing on the hot path.
type Background struct {
	BufferGets    uint64 `json:"buffer_gets"`
	BufferHits    uint64 `json:"buffer_hits"`
	LockAcquires  uint64 `json:"lock_acquires"`
	LockConflicts uint64 `json:"lock_conflicts"`
	LogWrites     uint64 `json:"log_writes"`
	Flushes       uint64 `json:"flushes"`
	Compactions   uint64 `json:"compactions"`
	WriteStalls   uint64 `json:"write_stalls"`
}

// StationMetrics is one station's derived observatory row. Times are
// milliseconds of simulated time; demands are per committed
// transaction.
type StationMetrics struct {
	Name    string `json:"name"`
	Role    string `json:"role"`
	Servers int    `json:"servers"` // 0 = delay center

	Arrivals    uint64 `json:"arrivals"`
	Completions uint64 `json:"completions"`

	Utilization      float64 `json:"utilization"`        // busy/(T·m); 0 for delay centers
	ThroughputPerSec float64 `json:"throughput_per_sec"` // completions/T
	ServiceMS        float64 `json:"service_ms"`         // mean service per visit
	WaitMS           float64 `json:"wait_ms"`            // mean wait per visit
	ResidenceMS      float64 `json:"residence_ms"`       // mean wait+service per visit
	QueueLen         float64 `json:"queue_len"`          // time-averaged customers present

	ServiceDemandMS float64 `json:"service_demand_ms"` // busy per commit
	WaitDemandMS    float64 `json:"wait_demand_ms"`    // wait per commit (ranking key)

	// LittleResidual is |N − X·R| / N and UtilResidual is
	// |U − X·S/m| / U, both computed from the same accumulators through
	// different expression orders — the operational-law self-audit that
	// the bookkeeping is internally consistent. Float rounding keeps
	// them far below the 1e-6 tolerance unless an accumulator is fed
	// inconsistently.
	LittleResidual float64 `json:"little_residual"`
	UtilResidual   float64 `json:"util_residual"`
}

// Report is the observatory's derived output for one measurement
// window.
type Report struct {
	Meta      Meta    `json:"meta"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Commits   uint64  `json:"commits"`
	TPS       float64 `json:"tps"`

	Stations   []StationMetrics `json:"stations"`
	Background Background       `json:"background"`

	// Ranking lists the resource stations (the CPU driver excluded) by
	// falling wait demand per commit — the queueing delay each center
	// imposes on a transaction. Bottleneck is the top-ranked station
	// with nonzero wait demand; empty when nothing queues.
	Ranking    []string `json:"ranking"`
	Bottleneck string   `json:"bottleneck,omitempty"`

	// Saturating names the servered resource station with the highest
	// utilization; Headroom is 1/U for it — how far throughput can grow
	// before that hardware saturates. Zero utilization reports
	// headroom 0, meaning "no resource limit in sight".
	Saturating string  `json:"saturating,omitempty"`
	Headroom   float64 `json:"headroom,omitempty"`
}

// Input is everything Build needs: the raw station accumulators, the
// measurement window, the clock rate, the commit count and the
// absorbed background counters.
type Input struct {
	Meta          Meta
	ElapsedCycles float64
	CyclesPerMS   float64
	Commits       uint64
	Counts        [NumStations]Counts
	Servers       [NumStations]int
	Background    Background
}

// Build derives a report from raw accumulators. It runs on the
// simulation goroutine (flight ticks and run end), so it follows the
// hot-path allocation discipline: fixed-size slices filled by index,
// no escaping composite literals, no interface boxing.
func Build(in *Input) *Report {
	r := new(Report)
	r.Meta = in.Meta
	r.Background = in.Background
	r.Commits = in.Commits
	t := in.ElapsedCycles
	cpms := in.CyclesPerMS
	if cpms > 0 {
		r.ElapsedMS = t / cpms
	}
	if r.ElapsedMS > 0 {
		r.TPS = float64(in.Commits) / (r.ElapsedMS / 1e3)
	}

	stations := make([]StationMetrics, NumStations)
	for id := 0; id < NumStations; id++ {
		cn := in.Counts[id]
		sm := &stations[id]
		sm.Name = stationNames[id]
		sm.Role = Role(id)
		sm.Servers = in.Servers[id]
		sm.Arrivals = cn.Arrivals
		sm.Completions = cn.Completions

		comp := float64(cn.Completions)
		if t > 0 {
			sm.ThroughputPerSec = comp / (t / (cpms * 1e3))
			sm.QueueLen = (cn.BusyCycles + cn.WaitCycles) / t
		}
		if comp > 0 && cpms > 0 {
			sm.ServiceMS = cn.BusyCycles / comp / cpms
			sm.WaitMS = cn.WaitCycles / comp / cpms
			sm.ResidenceMS = (cn.BusyCycles + cn.WaitCycles) / comp / cpms
		}
		if in.Commits > 0 && cpms > 0 {
			sm.ServiceDemandMS = cn.BusyCycles / float64(in.Commits) / cpms
			sm.WaitDemandMS = cn.WaitCycles / float64(in.Commits) / cpms
		}
		if sm.Servers > 0 && t > 0 {
			sm.Utilization = cn.BusyCycles / (t * float64(sm.Servers))
		}

		// Little's law: N = X·R, both sides from the same accumulators
		// in different float orders.
		if t > 0 && comp > 0 {
			n := (cn.BusyCycles + cn.WaitCycles) / t
			xr := (comp / t) * ((cn.BusyCycles + cn.WaitCycles) / comp)
			if n > 0 {
				sm.LittleResidual = math.Abs(n-xr) / n
			}
		}
		// Utilization law: U = X·S/m, servered stations only.
		if sm.Servers > 0 && t > 0 && comp > 0 {
			u := cn.BusyCycles / (t * float64(sm.Servers))
			xs := (comp / t) * (cn.BusyCycles / comp) / float64(sm.Servers)
			if u > 0 {
				sm.UtilResidual = math.Abs(u-xs) / u
			}
		}
	}
	r.Stations = stations

	// Rank the resource stations by wait demand per commit: the
	// queueing delay a center imposes on a transaction. Ties (all-zero
	// cached regions) break by station order, keeping output
	// deterministic.
	var order [NumStations]int
	n := 0
	for id := 0; id < NumStations; id++ {
		if Role(id) == RoleResource {
			order[n] = id
			n++
		}
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && stations[order[j]].WaitDemandMS > stations[order[j-1]].WaitDemandMS; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	ranking := make([]string, n)
	for i := 0; i < n; i++ {
		ranking[i] = stationNames[order[i]]
	}
	r.Ranking = ranking
	if n > 0 && stations[order[0]].WaitDemandMS > 0 {
		r.Bottleneck = stations[order[0]].Name
	}

	// The saturating station: highest utilization among the servered
	// resource stations (bus, disks, log). Its 1/U is the headroom
	// before hardware saturation caps throughput.
	maxU := 0.0
	sat := -1
	for id := 0; id < NumStations; id++ {
		if Role(id) != RoleResource || in.Servers[id] <= 0 {
			continue
		}
		if u := stations[id].Utilization; u > maxU {
			maxU = u
			sat = id
		}
	}
	if sat >= 0 && maxU > 0 {
		r.Saturating = stationNames[sat]
		r.Headroom = 1 / maxU
	}
	return r
}

// Check audits the operational laws and accumulator invariants against
// tol (relative). It returns one description per violation; an empty
// slice means the bookkeeping is consistent.
func (r *Report) Check(tol float64) []string {
	var out []string
	for i := range r.Stations {
		s := &r.Stations[i]
		if s.LittleResidual > tol {
			out = append(out, fmt.Sprintf("%s: Little's law residual %.3g exceeds %.3g", s.Name, s.LittleResidual, tol))
		}
		if s.UtilResidual > tol {
			out = append(out, fmt.Sprintf("%s: utilization law residual %.3g exceeds %.3g", s.Name, s.UtilResidual, tol))
		}
		if s.Completions > s.Arrivals {
			out = append(out, fmt.Sprintf("%s: %d completions exceed %d arrivals", s.Name, s.Completions, s.Arrivals))
		}
		if s.Servers > 0 && s.Utilization > 1+tol {
			out = append(out, fmt.Sprintf("%s: utilization %.4f exceeds 1", s.Name, s.Utilization))
		}
	}
	return out
}

// WriteJSON renders the report as a JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// ReadReport decodes a report written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("qstats: decoding report: %w", err)
	}
	return &r, nil
}

// WriteText renders the observatory table: one row per station, the
// law-audit verdict, and the bottleneck/headroom summary.
func (r *Report) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}
	ew.printf("queueing observatory: %s W=%d C=%d P=%d  elapsed=%.1fms commits=%d tps=%.0f\n",
		engineLabel(r.Meta.Engine), r.Meta.Warehouses, r.Meta.Clients, r.Meta.Processors,
		r.ElapsedMS, r.Commits, r.TPS)
	ew.printf("%-10s %-8s %3s %8s %10s %9s %9s %8s %10s %10s\n",
		"station", "role", "m", "util", "X/s", "S ms", "W ms", "N", "Dsvc ms", "Dwait ms")
	for i := range r.Stations {
		s := &r.Stations[i]
		util := "-"
		if s.Servers > 0 {
			util = fmt.Sprintf("%.4f", s.Utilization)
		}
		ew.printf("%-10s %-8s %3d %8s %10.1f %9.4f %9.4f %8.3f %10.5f %10.5f\n",
			s.Name, s.Role, s.Servers, util, s.ThroughputPerSec,
			s.ServiceMS, s.WaitMS, s.QueueLen, s.ServiceDemandMS, s.WaitDemandMS)
	}
	if viol := r.Check(1e-6); len(viol) == 0 {
		ew.printf("operational laws: OK (N=X·R and U=X·S within 1e-6 at every station)\n")
	} else {
		for _, v := range viol {
			ew.printf("operational laws: VIOLATION %s\n", v)
		}
	}
	if r.Bottleneck != "" {
		ew.printf("bottleneck: %s (ranking: %s)\n", r.Bottleneck, joinNames(r.Ranking))
	} else {
		ew.printf("bottleneck: none (no station imposes queueing delay)\n")
	}
	if r.Saturating != "" {
		ew.printf("saturating: %s headroom=%.1fx\n", r.Saturating, r.Headroom)
	} else {
		ew.printf("saturating: none (all servered resources idle)\n")
	}
	return ew.err
}

// WriteDiff renders the per-station demand movement between two
// reports — the bottleneck-shift view across a knob change.
func WriteDiff(w io.Writer, a, b *Report) error {
	ew := &errWriter{w: w}
	ew.printf("qstats diff: %s -> %s\n", labelOf(a), labelOf(b))
	ew.printf("%-10s %12s %12s %12s   %12s %12s %12s\n",
		"station", "Dwait_a", "Dwait_b", "delta", "Dsvc_a", "Dsvc_b", "delta")
	for i := range a.Stations {
		sa := &a.Stations[i]
		var sb *StationMetrics
		for j := range b.Stations {
			if b.Stations[j].Name == sa.Name {
				sb = &b.Stations[j]
				break
			}
		}
		if sb == nil {
			continue
		}
		ew.printf("%-10s %12.5f %12.5f %+12.5f   %12.5f %12.5f %+12.5f\n",
			sa.Name, sa.WaitDemandMS, sb.WaitDemandMS, sb.WaitDemandMS-sa.WaitDemandMS,
			sa.ServiceDemandMS, sb.ServiceDemandMS, sb.ServiceDemandMS-sa.ServiceDemandMS)
	}
	ew.printf("bottleneck: %s -> %s\n", orNone(a.Bottleneck), orNone(b.Bottleneck))
	return ew.err
}

// errWriter remembers the first write error so call sites stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func engineLabel(name string) string {
	if name == "" {
		return "run"
	}
	return name
}

func labelOf(r *Report) string {
	if r.Meta.Label != "" {
		return r.Meta.Label
	}
	return fmt.Sprintf("%s-w%d-p%d", engineLabel(r.Meta.Engine), r.Meta.Warehouses, r.Meta.Processors)
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " > "
		}
		out += n
	}
	return out
}
