package qstats

import "io"

// WriteShiftTable renders the bottleneck-shift view of a warehouse
// sweep: one row per report in the given order, the per-commit wait
// demand of every resource station, and the named bottleneck and
// saturating resource. Reading down the warehouse axis shows where the
// primary bottleneck migrates across the cached→scaled pivot.
func WriteShiftTable(w io.Writer, reports []*Report) error {
	ew := &errWriter{w: w}
	if len(reports) > 0 {
		m := reports[0].Meta
		ew.printf("bottleneck shift vs W: %s P=%d (Dwait = wait ms per commit)\n",
			engineLabel(m.Engine), m.Processors)
	}
	ew.printf("%6s %5s %8s", "W", "C", "tps")
	for id := 0; id < NumStations; id++ {
		if Role(id) == RoleResource {
			ew.printf(" %10s", stationNames[id])
		}
	}
	ew.printf("  %-10s %-10s %8s\n", "bottleneck", "saturating", "headroom")
	for _, r := range reports {
		ew.printf("%6d %5d %8.0f", r.Meta.Warehouses, r.Meta.Clients, r.TPS)
		for i := range r.Stations {
			if r.Stations[i].Role == RoleResource {
				ew.printf(" %10.5f", r.Stations[i].WaitDemandMS)
			}
		}
		ew.printf("  %-10s %-10s %7.1fx\n", orNone(r.Bottleneck), orNone(r.Saturating), r.Headroom)
	}
	return ew.err
}
