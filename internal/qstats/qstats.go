// Package qstats is the queueing observatory: every shared service
// center in the simulation — the CPU run queues, the front-side bus,
// the data-disk and log-disk arrays, the lock manager, the buffer
// cache's busy-wait path and the storage engine's writer-throttle path
// — accumulates arrivals, completions, busy time and waiting time into
// a Station, and the observatory derives per-station utilization,
// throughput, mean service time, mean wait, mean queue length and
// service demand, checks the operational laws (Little's law N = X·R
// and the utilization law U = X·S) as a per-run self-audit of the
// simulator's own bookkeeping, and ranks stations to name the
// bottleneck and its headroom.
//
// The accumulators are strictly observational: stations never draw
// randomness and never schedule simulation events, so a run with
// qstats attached is bit-identical to one without (pinned in
// internal/system). All hot-path accumulation is inline arithmetic —
// no allocation, no locks — on the simulation goroutine; derived
// reports are published under a mutex so the live /bottlenecks
// endpoint can read them mid-run.
package qstats

import (
	"encoding/json"
	"io"
	"sync"
)

// Station identifiers. The set is fixed: every Collector carries one
// accumulator per identifier, and reports list them in this order.
const (
	CPU        = iota // scheduler episodes: run-queue wait + on-CPU cycles
	Bus               // FSB/IOQ transactions: queueing delay + occupancy
	Disk              // data-disk operations: FCFS queue wait + service
	Log               // log-device writes: FCFS queue wait + service
	LockMgr           // lock-manager queue: grant wait (delay center)
	BufferPool        // buffer busy waits (delay center)
	Engine            // engine writer throttles / write stalls (delay center)
	NumStations
)

// stationNames indexes the canonical station names.
var stationNames = [NumStations]string{
	"cpu", "bus", "disk", "log", "lockmgr", "bufferpool", "engine",
}

// StationName returns the canonical name of a station identifier.
func StationName(id int) string {
	if id < 0 || id >= NumStations {
		return "unknown"
	}
	return stationNames[id]
}

// RoleDriver marks the station that drives the closed system (the CPU:
// processes between waits are *using* it, so its wait is demand, not a
// resource holding throughput back); RoleResource marks everything
// else, the stations the bottleneck ranking considers.
const (
	RoleDriver   = "driver"
	RoleResource = "resource"
)

// Role returns the ranking role of a station identifier.
func Role(id int) string {
	if id == CPU {
		return RoleDriver
	}
	return RoleResource
}

// Station accumulates one service center's visit statistics. All times
// are CPU cycles. A visit is one customer's pass through the center:
// Arrive marks the entry, Complete folds in the measured wait and
// service once both are known (retro-dated sites call it at the next
// scheduling boundary), and Visit is the fused form for sites that
// know both at once. Single-writer: only the simulation goroutine
// touches a Station.
type Station struct {
	arrivals    uint64
	completions uint64
	busy        float64 // service cycles of completed visits
	waiting     float64 // wait cycles of completed visits
}

// Arrive records one customer entering the center.
func (s *Station) Arrive() { s.arrivals++ }

// Complete records one customer leaving the center after waiting wait
// cycles and holding a server for service cycles.
func (s *Station) Complete(wait, service float64) {
	s.completions++
	s.waiting += wait
	s.busy += service
}

// Visit records an arrival and its completion in one call, for sites
// where the queue discipline makes both known at arrival time (FCFS
// disk queues, the bus occupancy model).
func (s *Station) Visit(wait, service float64) {
	s.arrivals++
	s.completions++
	s.waiting += wait
	s.busy += service
}

// Counts is a snapshot of one station's raw accumulators.
type Counts struct {
	Arrivals    uint64
	Completions uint64
	BusyCycles  float64
	WaitCycles  float64
}

// Counts returns the station's current accumulators.
func (s *Station) Counts() Counts {
	return Counts{
		Arrivals:    s.arrivals,
		Completions: s.completions,
		BusyCycles:  s.busy,
		WaitCycles:  s.waiting,
	}
}

// reset zeroes the accumulators at measurement start.
func (s *Station) reset() {
	s.arrivals = 0
	s.completions = 0
	s.busy = 0
	s.waiting = 0
}

// Collector owns the station set for one run. The simulation side
// reaches the stations directly (single goroutine, no locks); derived
// reports are published under the mutex, so HTTP readers see a
// consistent snapshot while the run is still simulating.
type Collector struct {
	stations [NumStations]Station
	servers  [NumStations]int

	mu   sync.Mutex
	last *Report
}

// NewCollector returns an empty collector. The system layer binds the
// server counts (CPUs, disks) when the run starts.
func NewCollector() *Collector { return &Collector{} }

// Station returns the accumulator for one station identifier.
// Simulation-side only.
func (c *Collector) Station(id int) *Station { return &c.stations[id] }

// SetServers records how many servers a station has; 0 marks a delay
// center (no utilization law applies).
func (c *Collector) SetServers(id, n int) { c.servers[id] = n }

// Servers returns the per-station server counts.
func (c *Collector) Servers() [NumStations]int { return c.servers }

// ResetStations zeroes every station at measurement start.
// Simulation-side only.
func (c *Collector) ResetStations() {
	for i := range c.stations {
		c.stations[i].reset()
	}
}

// Counts snapshots every station's raw accumulators.
// Simulation-side only.
func (c *Collector) Counts() [NumStations]Counts {
	var out [NumStations]Counts
	for i := range c.stations {
		out[i] = c.stations[i].Counts()
	}
	return out
}

// Publish installs a derived report as the collector's current one.
// The simulation side calls it at every flight-recorder tick and once
// at run end.
func (c *Collector) Publish(r *Report) {
	c.mu.Lock()
	c.last = r
	c.mu.Unlock()
}

// Report returns the most recently published report, or nil before the
// first publication. Safe from any goroutine.
func (c *Collector) Report() *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// WriteBottlenecks renders the current report as a JSON document for
// the live /bottlenecks endpoint. Before the first publication it
// writes a pending marker instead.
func (c *Collector) WriteBottlenecks(w io.Writer) error {
	r := c.Report()
	if r == nil {
		_, err := io.WriteString(w, "{\"status\":\"pending\"}\n")
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(r)
}
